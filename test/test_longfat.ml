(* Long-fat-pipe TCP: RFC 1323 window scaling, NewReno recovery, and
   buffer autotuning — plus the flow-control and timer fixes that ride
   with them: the Linux zero-window persist probe, Karn's rule under
   reordering in both stacks, and the TIME_WAIT expiry purge on the
   Linux wall-clock path. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

(* Run [f] with the long-fat knobs set, restoring them afterwards so the
   rest of the suite keeps the seed-faithful defaults. *)
let with_longfat ?(wscale = true) ?(autotune = true) f =
  let ws = Cost.config.Cost.tcp_wscale and at = Cost.config.Cost.tcp_autotune in
  Cost.config.Cost.tcp_wscale <- wscale;
  Cost.config.Cost.tcp_autotune <- autotune;
  Fun.protect
    ~finally:(fun () ->
      Cost.config.Cost.tcp_wscale <- ws;
      Cost.config.Cost.tcp_autotune <- at)
    f

(* Position-dependent payload so any misordered or duplicated byte shows
   up as a content mismatch, not just a length error. *)
let pattern i = (i * 131) lxor (i lsr 8) land 0xff

let fresh_testbed ?latency_ns () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  Clientos.make_testbed ~models:("3c905", "tulip") ?latency_ns ()

(* One bulk transfer on the Linux stack; returns (byte_exact, client sock,
   stacks) so callers can pin estimator / flow-control internals. *)
let linux_transfer ?latency_ns ?netem ?(bytes = 128 * 1024) ?(rcv_stall_ns = 0) () =
  let tb = fresh_testbed ?latency_ns () in
  let sa = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  (match netem with Some em -> Wire.set_netem tb.Clientos.wire (Some em) | None -> ());
  let mism = ref 0 and received = ref 0 and done_flag = ref false in
  let client_sock = ref None in
  Clientos.spawn tb.Clientos.host_b ~name:"lf-srv" (fun () ->
      let ls = Linux_inet.socket sb in
      Linux_inet.bind sb ls ~port:6100;
      Linux_inet.listen sb ls ~backlog:1;
      let c = ok (Linux_inet.accept sb ls) in
      if rcv_stall_ns > 0 then Kclock.sleep_ns rcv_stall_ns;
      let buf = Bytes.create 8192 in
      let rec loop () =
        match ok (Linux_inet.recv sb c ~buf ~pos:0 ~len:8192) with
        | 0 ->
            Linux_inet.close sb c;
            done_flag := true
        | n ->
            for i = 0 to n - 1 do
              if Char.code (Bytes.get buf i) <> pattern (!received + i) then incr mism
            done;
            received := !received + n;
            loop ()
      in
      loop ());
  Clientos.spawn tb.Clientos.host_a ~name:"lf-cli" (fun () ->
      Kclock.sleep_ns 1_000_000;
      let s = Linux_inet.socket sa in
      client_sock := Some s;
      ok (Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:6100);
      let block = Bytes.create 8192 in
      let rec push sent =
        if sent < bytes then begin
          let n = min 8192 (bytes - sent) in
          for i = 0 to n - 1 do
            Bytes.set block i (Char.chr (pattern (sent + i)))
          done;
          ignore (ok (Linux_inet.send sa s ~buf:block ~pos:0 ~len:n));
          push (sent + n)
        end
      in
      push 0;
      Linux_inet.close sa s);
  Clientos.run tb ~until:(fun () -> !done_flag);
  let byte_exact = !done_flag && !mism = 0 && !received = bytes in
  (byte_exact, Option.get !client_sock, sa, sb)

(* Same shape on the BSD stack. *)
let bsd_transfer ?latency_ns ?netem ?(bytes = 128 * 1024) () =
  let tb = fresh_testbed ?latency_ns () in
  let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  (match netem with Some em -> Wire.set_netem tb.Clientos.wire (Some em) | None -> ());
  let mism = ref 0 and received = ref 0 and done_flag = ref false in
  let client_sock = ref None and server_sock = ref None in
  Clientos.spawn tb.Clientos.host_b ~name:"lf-srv" (fun () ->
      let ls = Bsd_socket.tcp_socket sb in
      ok (Bsd_socket.so_bind ls ~port:6101);
      ok (Bsd_socket.so_listen ls ~backlog:1);
      let c = ok (Bsd_socket.so_accept ls) in
      server_sock := Some c;
      let buf = Bytes.create 8192 in
      let rec loop () =
        match ok (Bsd_socket.so_recv c ~buf ~pos:0 ~len:8192) with
        | 0 ->
            ignore (Bsd_socket.so_close c);
            done_flag := true
        | n ->
            for i = 0 to n - 1 do
              if Char.code (Bytes.get buf i) <> pattern (!received + i) then incr mism
            done;
            received := !received + n;
            loop ()
      in
      loop ());
  Clientos.spawn tb.Clientos.host_a ~name:"lf-cli" (fun () ->
      Kclock.sleep_ns 1_000_000;
      let s = Bsd_socket.tcp_socket sa in
      client_sock := Some s;
      ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:6101);
      let block = Bytes.create 8192 in
      let rec push sent =
        if sent < bytes then begin
          let n = min 8192 (bytes - sent) in
          for i = 0 to n - 1 do
            Bytes.set block i (Char.chr (pattern (sent + i)))
          done;
          ignore (ok (Bsd_socket.so_send s ~buf:block ~pos:0 ~len:n));
          push (sent + n)
        end
      in
      push 0;
      ignore (Bsd_socket.so_close s));
  Clientos.run tb ~until:(fun () -> !done_flag);
  let byte_exact = !done_flag && !mism = 0 && !received = bytes in
  (byte_exact, Option.get !client_sock, Option.get !server_sock, sa, sb)

(* ------------------------------------------------------------------ *)
(* Zero-window deadlock: the receiver accepts and then sits on a full
   receive queue for 2.5 s of virtual time.  The seed Linux stack parks
   the sender in [send] forever — no persist timer, and nothing else ever
   speaks — so this test hangs the world (the run ends with the transfer
   incomplete).  With the persist timer the probes keep the conversation
   alive and the transfer completes byte-exact. *)

let test_zero_window_probe_recovers () =
  let byte_exact, _, sa, sb =
    linux_transfer ~bytes:(192 * 1024) ~rcv_stall_ns:2_500_000_000 ()
  in
  Alcotest.(check bool) "transfer completed byte-exact through the stall" true byte_exact;
  Alcotest.(check bool) "persist probes fired during the stall" true
    (sa.Linux_inet.persist_probes + sb.Linux_inet.persist_probes > 0)

(* The probe must not desynchronize sequence space: flags-off transfer with
   a stall plus loss still ends byte-exact, and the peer counts the probe
   bytes as duplicates rather than data. *)
let test_zero_window_probe_is_sequence_neutral () =
  let em = Netem.create ~seed:7 ~policy:{ Netem.default_policy with loss = 0.02 } () in
  let byte_exact, _, sa, sb =
    linux_transfer ~netem:em ~bytes:(128 * 1024) ~rcv_stall_ns:2_000_000_000 ()
  in
  Alcotest.(check bool) "byte-exact with stall + 2% loss" true byte_exact;
  Alcotest.(check bool) "probes fired" true (sa.Linux_inet.persist_probes > 0);
  Alcotest.(check bool) "peer dropped probe bytes as duplicates" true
    (sb.Linux_inet.rcvdup > 0)

(* ------------------------------------------------------------------ *)
(* Karn's rule under reordering: retransmissions happen (loss + delayed
   duplicates), yet the RTT estimators never ingest a sample spanning a
   retransmitted range.  An ambiguous sample would be measured against
   the ~300 ms RTO instead of the ~2 ms path RTT and blow the smoothed
   estimate up by two orders of magnitude — so pinning srtt to the path
   scale after the run pins the rule. *)

let karn_policy =
  { Netem.default_policy with
    loss = 0.03; reorder = 0.15; reorder_delay_ns = 5_000_000 }

let test_karn_reordering_linux () =
  with_longfat (fun () ->
      let em = Netem.create ~seed:11 ~policy:karn_policy () in
      let byte_exact, s, sa, _ =
        linux_transfer ~latency_ns:1_000_000 ~netem:em ~bytes:(256 * 1024) ()
      in
      Alcotest.(check bool) "byte-exact under loss + reordering" true byte_exact;
      Alcotest.(check bool) "retransmissions happened" true (sa.Linux_inet.rexmits > 0);
      Alcotest.(check bool) "srtt sampled at all" true (s.Linux_inet.srtt_ns > 0);
      (* Path RTT is ~2 ms (+5 ms reorder delay tail); an RTO-ambiguous
         sample is >= 300 ms. *)
      Alcotest.(check bool) "srtt stayed at path scale (no ambiguous sample)" true
        (s.Linux_inet.srtt_ns < 100_000_000))

let test_karn_reordering_bsd () =
  with_longfat (fun () ->
      let em = Netem.create ~seed:13 ~policy:karn_policy () in
      let byte_exact, s, _, sa, _ =
        bsd_transfer ~latency_ns:1_000_000 ~netem:em ~bytes:(256 * 1024) ()
      in
      Alcotest.(check bool) "byte-exact under loss + reordering" true byte_exact;
      let stats = sa.Bsd_socket.tcp.Tcp.stats in
      Alcotest.(check bool) "retransmissions happened" true
        (stats.Tcp.sndrexmitpack + stats.Tcp.fastrexmit > 0);
      (* t_srtt is in 500 ms slow-timer ticks << 3: a legitimate ~2 ms
         sample rounds to 0-1 ticks; an ambiguous RTO-scale sample is
         >= 2 ticks (16 after the shift). *)
      Alcotest.(check bool) "t_srtt stayed at path scale (no ambiguous sample)" true
        (s.Bsd_socket.pcb.Tcp.t_srtt lsr 3 <= 1))

(* ------------------------------------------------------------------ *)
(* TIME_WAIT expiry on the Linux wall-clock path: the active closer must
   sit in TIME_WAIT (still hashed, still demuxable) and then be detached
   by the 2 s one-shot — hash entry, last-sock cache, and socket list all
   purged. *)

let test_linux_time_wait_expiry_purges () =
  let tb = fresh_testbed () in
  let sa = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let client_sock = ref None and closed = ref false in
  Clientos.spawn tb.Clientos.host_b ~name:"tw-srv" (fun () ->
      let ls = Linux_inet.socket sb in
      Linux_inet.bind sb ls ~port:6102;
      Linux_inet.listen sb ls ~backlog:1;
      let c = ok (Linux_inet.accept sb ls) in
      let buf = Bytes.create 64 in
      let rec drain () = if ok (Linux_inet.recv sb c ~buf ~pos:0 ~len:64) > 0 then drain () in
      drain ();
      Linux_inet.close sb c;
      Linux_inet.close sb ls);
  Clientos.spawn tb.Clientos.host_a ~name:"tw-cli" (fun () ->
      Kclock.sleep_ns 1_000_000;
      let s = Linux_inet.socket sa in
      client_sock := Some s;
      ok (Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:6102);
      let msg = Bytes.of_string "bye" in
      ignore (ok (Linux_inet.send sa s ~buf:msg ~pos:0 ~len:3));
      (* Active close: FIN first, so this side owns the TIME_WAIT. *)
      Linux_inet.close sa s;
      closed := true);
  Clientos.run tb ~until:(fun () -> !closed);
  let s = Option.get !client_sock in
  (* Just after close the socket is in (or headed for) TIME_WAIT and must
     still be reachable: a delayed segment from the old incarnation has to
     demux to it, not spawn a RST-generating stranger. *)
  Clientos.run tb ~until:(fun () -> s.Linux_inet.state = Linux_inet.Time_wait);
  Alcotest.(check bool) "TIME_WAIT socket still hashed" true
    (Hashtbl.length sa.Linux_inet.sock_hash > 0);
  (* Run the world dry: the 2 s expiry is the last event standing. *)
  Clientos.run tb ~until:(fun () -> false);
  Alcotest.(check bool) "expiry closed the socket" true (s.Linux_inet.state = Linux_inet.Closed);
  Alcotest.(check int) "expiry purged the hash" 0 (Hashtbl.length sa.Linux_inet.sock_hash);
  Alcotest.(check bool) "expiry purged the last-sock cache" true
    (sa.Linux_inet.last_sock = None);
  Alcotest.(check bool) "expiry removed it from the socket list" true
    (not (List.memq s sa.Linux_inet.socks))

(* ------------------------------------------------------------------ *)
(* Byte-exactness across the RTT x loss grid with scaled windows +
   NewReno on, both stacks.  qcheck picks the corner; every corner must
   deliver the exact byte stream. *)

let prop_grid_byte_exact =
  QCheck.Test.make ~name:"longfat: byte-exact across RTT x loss grid, both stacks"
    ~count:10
    QCheck.(quad (oneofl [ 100; 1_000; 10_000 ]) (oneofl [ 0; 10; 30 ]) bool (int_range 1 1000))
    (fun (rtt_us, loss_pm, linux, seed) ->
      with_longfat (fun () ->
          let latency_ns = max 1_000 (rtt_us * 1000 / 2) in
          let netem =
            if loss_pm = 0 then None
            else
              Some
                (Netem.create ~seed
                   ~policy:
                     { Netem.default_policy with loss = float_of_int loss_pm /. 1000. }
                   ())
          in
          let byte_exact =
            if linux then
              let be, _, _, _ = linux_transfer ~latency_ns ?netem ~bytes:(96 * 1024) () in
              be
            else
              let be, _, _, _, _ = bsd_transfer ~latency_ns ?netem ~bytes:(96 * 1024) () in
              be
          in
          byte_exact))

(* ------------------------------------------------------------------ *)
(* Autotuning converges to the BDP: at 20 ms RTT on a 100 Mbit wire the
   bandwidth-delay product is 250 KB; starting from the seed defaults
   (32 KB / 48 KB) both stacks must grow their receive buffer past the
   BDP within one bulk transfer, and must not move at all with the knob
   off. *)

let test_autotune_converges_to_bdp () =
  let rtt_ns = 20_000_000 in
  let bdp = rtt_ns / 80 in
  (* Measure the receiver's buffer just before EOF, when the clump
     detector has had the whole transfer to react. *)
  let measure_linux () =
    with_longfat (fun () ->
        let tb = fresh_testbed ~latency_ns:(rtt_ns / 2) () in
        let sa = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
        let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
        let final = ref 0 and done_flag = ref false in
        let bytes = 4 * 1024 * 1024 in
        Clientos.spawn tb.Clientos.host_b ~name:"at-srv" (fun () ->
            let ls = Linux_inet.socket sb in
            Linux_inet.bind sb ls ~port:6103;
            Linux_inet.listen sb ls ~backlog:1;
            let c = ok (Linux_inet.accept sb ls) in
            let buf = Bytes.create 16384 in
            let rec loop () =
              match ok (Linux_inet.recv sb c ~buf ~pos:0 ~len:16384) with
              | 0 ->
                  final := c.Linux_inet.rcv_buf_max;
                  Linux_inet.close sb c;
                  done_flag := true
              | _ -> loop ()
            in
            loop ());
        Clientos.spawn tb.Clientos.host_a ~name:"at-cli" (fun () ->
            Kclock.sleep_ns 1_000_000;
            let s = Linux_inet.socket sa in
            ok (Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:6103);
            let block = Bytes.make 16384 'a' in
            let rec push sent =
              if sent < bytes then begin
                ignore (ok (Linux_inet.send sa s ~buf:block ~pos:0 ~len:16384));
                push (sent + 16384)
              end
            in
            push 0;
            Linux_inet.close sa s);
        Clientos.run tb ~until:(fun () -> !done_flag);
        !final)
  in
  let measure_bsd () =
    with_longfat (fun () ->
        let tb = fresh_testbed ~latency_ns:(rtt_ns / 2) () in
        let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
        let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
        let final = ref 0 and done_flag = ref false in
        let bytes = 4 * 1024 * 1024 in
        Clientos.spawn tb.Clientos.host_b ~name:"at-srv" (fun () ->
            let ls = Bsd_socket.tcp_socket sb in
            ok (Bsd_socket.so_bind ls ~port:6104);
            ok (Bsd_socket.so_listen ls ~backlog:1);
            let c = ok (Bsd_socket.so_accept ls) in
            let buf = Bytes.create 16384 in
            let rec loop () =
              match ok (Bsd_socket.so_recv c ~buf ~pos:0 ~len:16384) with
              | 0 ->
                  final := c.Bsd_socket.pcb.Tcp.rcv_buf.Sockbuf.sb_hiwat;
                  ignore (Bsd_socket.so_close c);
                  done_flag := true
              | _ -> loop ()
            in
            loop ());
        Clientos.spawn tb.Clientos.host_a ~name:"at-cli" (fun () ->
            Kclock.sleep_ns 1_000_000;
            let s = Bsd_socket.tcp_socket sa in
            ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:6104);
            let block = Bytes.make 16384 'a' in
            let rec push sent =
              if sent < bytes then begin
                ignore (ok (Bsd_socket.so_send s ~buf:block ~pos:0 ~len:16384));
                push (sent + 16384)
              end
            in
            push 0;
            ignore (Bsd_socket.so_close s));
        Clientos.run tb ~until:(fun () -> !done_flag);
        !final)
  in
  let lx = measure_linux () and fb = measure_bsd () in
  Alcotest.(check bool)
    (Printf.sprintf "linux receive buffer grew past the BDP (%d >= %d)" lx bdp)
    true (lx >= bdp);
  Alcotest.(check bool)
    (Printf.sprintf "bsd receive buffer grew past the BDP (%d >= %d)" fb bdp)
    true (fb >= bdp)

(* Jumbo frames: with tcp_mss raised to 9000 both stacks must negotiate
   the bigger segment on SYN (MSS option), carry it end to end, and a
   mixed pair must clamp to the smaller side's offer. *)
let test_jumbo_mss () =
  let saved = Cost.config.Cost.tcp_mss in
  Fun.protect
    ~finally:(fun () -> Cost.config.Cost.tcp_mss <- saved)
    (fun () ->
      Cost.config.Cost.tcp_mss <- 9000;
      with_longfat (fun () ->
          let byte_exact, s, _, _ = linux_transfer ~bytes:(512 * 1024) () in
          Alcotest.(check bool) "linux: byte-exact at MSS 9000" true byte_exact;
          Alcotest.(check int) "linux: negotiated jumbo segment" 9000 s.Linux_inet.smss;
          let byte_exact, s, _, _, _ = bsd_transfer ~bytes:(512 * 1024) () in
          Alcotest.(check bool) "bsd: byte-exact at MSS 9000" true byte_exact;
          Alcotest.(check int) "bsd: negotiated jumbo segment" 9000
            s.Bsd_socket.pcb.Tcp.t_maxseg))

(* Knob off: buffers must not move, even on a long-fat path. *)
let test_autotune_off_buffers_fixed () =
  let byte_exact, _, _, sb = linux_transfer ~latency_ns:10_000_000 ~bytes:(512 * 1024) () in
  Alcotest.(check bool) "flags-off transfer still byte-exact" true byte_exact;
  List.iter
    (fun s ->
      Alcotest.(check int) "linux rcv_buf_max untouched" Linux_inet.default_window
        s.Linux_inet.rcv_buf_max)
    sb.Linux_inet.socks

let suite =
  [ Alcotest.test_case "zero window: persist probe recovers the transfer" `Quick
      test_zero_window_probe_recovers;
    Alcotest.test_case "zero window: probe is sequence-neutral under loss" `Quick
      test_zero_window_probe_is_sequence_neutral;
    Alcotest.test_case "karn: no ambiguous RTT sample under reordering (linux)" `Quick
      test_karn_reordering_linux;
    Alcotest.test_case "karn: no ambiguous RTT sample under reordering (bsd)" `Quick
      test_karn_reordering_bsd;
    Alcotest.test_case "linux TIME_WAIT expiry purges hash, cache, socket list" `Quick
      test_linux_time_wait_expiry_purges;
    QCheck_alcotest.to_alcotest prop_grid_byte_exact;
    Alcotest.test_case "autotuning converges past the BDP in both stacks" `Quick
      test_autotune_converges_to_bdp;
    Alcotest.test_case "jumbo frames: MSS 9000 negotiated and byte-exact" `Quick
      test_jumbo_mss;
    Alcotest.test_case "autotuning off: buffers pinned to seed defaults" `Quick
      test_autotune_off_buffers_fixed ]
