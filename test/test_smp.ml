(* SMP: the multi-CPU machine semantics behind the sharded stacks — the
   real Smp library (cpu_number reports the executing CPU, per-CPU data
   genuinely shards, lock contention is charged and counted), RSS steering
   properties (keyed determinism, direction symmetry, spread), netisr
   ordering and overflow, the multi-queue RSS NIC, per-CPU counter-shard
   aggregation, and cross-CPU end-to-end transfers that must stay
   byte-exact at every CPU count, clean and under loss. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

let with_ncpus n f =
  let saved = Cost.config.Cost.ncpus in
  Cost.config.Cost.ncpus <- n;
  Fun.protect ~finally:(fun () -> Cost.config.Cost.ncpus <- saved) f

(* ------------------------------------------------------------------ *)
(* Smp: the stub lies are gone.                                        *)

let test_cpu_number () =
  let w = World.create () in
  let m = Machine.create ~name:"smp-cpu-pc" ~ncpus:4 w in
  let smp = Smp.init m in
  Alcotest.(check int) "machine's CPU count" 4 (Smp.num_cpus smp);
  Alcotest.(check int) "outside the machine: CPU 0" 0 (Smp.cpu_number smp);
  for c = 0 to 3 do
    Alcotest.(check int) "reports the CPU actually executing" c
      (Machine.run_on m ~cpu:c (fun () -> Smp.cpu_number smp))
  done

let test_percpu_shards () =
  let w = World.create () in
  let m = Machine.create ~name:"smp-pcpu-pc" ~ncpus:4 w in
  let smp = Smp.init m in
  let slots = Smp.percpu smp ~init:(fun _ -> ref 0) in
  for c = 0 to 3 do
    Machine.run_on m ~cpu:c (fun () ->
        for _ = 1 to c + 1 do
          incr (Smp.get smp slots)
        done)
  done;
  for c = 0 to 3 do
    Alcotest.(check int) "each CPU bumped only its own slot" (c + 1)
      !(Smp.get_for slots ~cpu:c)
  done

let test_trylock_failure_charged () =
  let w = World.create () in
  let m = Machine.create ~name:"smp-lock-pc" ~ncpus:2 w in
  Cost.reset_counters ();
  let l = Smp.spinlock ~name:"cross" () in
  Machine.run_on m ~cpu:0 (fun () -> Smp.spin_lock l);
  let t0 = Machine.cpu_now m ~cpu:1 in
  let got = Machine.run_on m ~cpu:1 (fun () -> Smp.spin_trylock l) in
  Alcotest.(check bool) "trylock on a lock held by CPU 0 fails" false got;
  Alcotest.(check bool) "the failure cost cycles (old stub: free)" true
    (Machine.cpu_now m ~cpu:1 > t0);
  Alcotest.(check int) "contention in the aggregate counter" 1
    Cost.counters.Cost.spin_contentions;
  Alcotest.(check int) "contention on the lock itself" 1 (Smp.spin_contentions l);
  Alcotest.(check int) "attributed to the contending CPU" 1
    (Cost.counters_for ~cpu:1).Cost.spin_contentions;
  Machine.run_on m ~cpu:0 (fun () -> Smp.spin_unlock l);
  Alcotest.(check bool) "succeeds once released" true
    (Machine.run_on m ~cpu:1 (fun () -> Smp.spin_trylock l));
  Machine.run_on m ~cpu:1 (fun () -> Smp.spin_unlock l);
  Alcotest.(check int) "clean acquisition adds no contention" 1
    Cost.counters.Cost.spin_contentions

(* ------------------------------------------------------------------ *)
(* RSS steering.                                                       *)

let some_flows n =
  List.init n (fun i ->
      ( Int32.of_int (0x0a000001 + (i * 7)),
        1024 + (i * 13 mod 50000),
        Int32.of_int (0x0a000002 + (i * 3)),
        80 + (i mod 7) ))

let hash_all flows =
  List.map
    (fun (a, pa, b, pb) ->
      Rss.flow_hash ~proto:6 ~addr_a:a ~port_a:pa ~addr_b:b ~port_b:pb)
    flows

let test_reboot_determinism () =
  Fun.protect ~finally:(fun () -> Rss.reboot ()) @@ fun () ->
  let flows = some_flows 200 in
  Rss.reboot ~seed:42 ();
  let h1 = hash_all flows in
  Rss.reboot ~seed:42 ();
  let h2 = hash_all flows in
  Alcotest.(check bool) "same seed after reboot: identical steering" true (h1 = h2);
  Rss.reboot ~seed:43 ();
  let h3 = hash_all flows in
  Alcotest.(check bool) "different secret: different steering" true (h1 <> h3)

let test_spread () =
  (* Sequential client ports from one address pair — the worst realistic
     skew — must still spread within 20% of ideal over 8 CPUs. *)
  let ncpus = 8 and flows = 4096 in
  let buckets = Array.make ncpus 0 in
  for i = 0 to flows - 1 do
    let c =
      Rss.cpu_of_flow ~ncpus ~proto:6 ~addr_a:(ip "10.0.0.2") ~port_a:80
        ~addr_b:(ip "10.0.0.1") ~port_b:(1024 + i)
    in
    buckets.(c) <- buckets.(c) + 1
  done;
  let ideal = flows / ncpus in
  Array.iteri
    (fun c n ->
      if abs (n - ideal) * 5 > ideal then
        Alcotest.failf "CPU %d got %d flows (ideal %d; spread over 20%%)" c n ideal)
    buckets

let put16 f off v =
  Bytes.set f off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set f (off + 1) (Char.chr (v land 0xff))

let put32 f off v =
  let v = Int32.to_int v land 0xffffffff in
  put16 f off (v lsr 16);
  put16 f (off + 2) (v land 0xffff)

let tcp_frame ~src ~dst ~sport ~dport =
  let f = Bytes.make 60 '\000' in
  put16 f 12 0x0800;
  Bytes.set f 14 '\x45';
  Bytes.set f 23 '\x06';
  put32 f 26 src;
  put32 f 30 dst;
  put16 f 34 sport;
  put16 f 36 dport;
  f

let test_frame_steering () =
  let src = ip "10.0.0.1" and dst = ip "10.0.0.2" in
  let by_flow =
    Rss.cpu_of_flow ~ncpus:8 ~proto:6 ~addr_a:src ~port_a:1234 ~addr_b:dst
      ~port_b:80
  in
  Alcotest.(check int) "frame parse agrees with the flow hash" by_flow
    (Rss.cpu_of_frame ~ncpus:8 (tcp_frame ~src ~dst ~sport:1234 ~dport:80));
  Alcotest.(check int) "the reply frame steers to the same CPU" by_flow
    (Rss.cpu_of_frame ~ncpus:8 (tcp_frame ~src:dst ~dst:src ~sport:80 ~dport:1234));
  Alcotest.(check int) "runt to CPU 0" 0 (Rss.cpu_of_frame ~ncpus:8 (Bytes.create 10));
  let arp = Bytes.make 60 '\000' in
  put16 arp 12 0x0806;
  Alcotest.(check int) "ARP to CPU 0" 0 (Rss.cpu_of_frame ~ncpus:8 arp);
  let frag = tcp_frame ~src ~dst ~sport:1234 ~dport:80 in
  put16 frag 20 0x2000 (* MF set: ports are not this fragment's *);
  Alcotest.(check int) "IP fragment to CPU 0" 0 (Rss.cpu_of_frame ~ncpus:8 frag)

let prop_direction_symmetry =
  QCheck.Test.make ~name:"rss: swapping the endpoints never changes the CPU"
    ~count:500
    QCheck.(
      quad (pair small_int small_int) (pair small_int small_int)
        (int_range 0 0xffff) (int_range 0 0xffff))
    (fun ((a_hi, a_lo), (b_hi, b_lo), pa, pb) ->
      let a = Int32.of_int ((a_hi lsl 16) lor a_lo) in
      let b = Int32.of_int ((b_hi lsl 16) lor b_lo) in
      List.for_all
        (fun ncpus ->
          Rss.cpu_of_flow ~ncpus ~proto:6 ~addr_a:a ~port_a:pa ~addr_b:b ~port_b:pb
          = Rss.cpu_of_flow ~ncpus ~proto:6 ~addr_a:b ~port_a:pb ~addr_b:a
              ~port_b:pa)
        [ 2; 4; 8 ])

(* ------------------------------------------------------------------ *)
(* Netisr: FIFO per CPU, direct dispatch on the home CPU, bounded.     *)

let test_netisr () =
  with_ncpus 2 @@ fun () ->
  let w = World.create () in
  let m = Machine.create ~name:"isr-pc" w in
  Cost.reset_counters ();
  let isr = Netisr.for_machine ~qmax:4 m in
  Machine.run_on m ~cpu:0 (fun () ->
      let ran = ref false in
      ignore (Netisr.dispatch isr ~cpu:0 (fun () -> ran := true));
      Alcotest.(check bool) "home CPU: direct dispatch, no queueing" true !ran);
  Alcotest.(check int) "direct dispatch not counted as a crossing" 0
    Cost.counters.Cost.netisr_queued;
  let order = ref [] in
  let accepted = ref 0 and dropped = ref 0 in
  Machine.run_on m ~cpu:0 (fun () ->
      for i = 1 to 6 do
        if
          Netisr.dispatch isr ~cpu:1 (fun () ->
              Alcotest.(check int) "runs on its home CPU" 1 (Machine.cpu m);
              order := i :: !order)
        then incr accepted
        else incr dropped
      done);
  World.run w;
  Alcotest.(check (list int)) "FIFO order on the home CPU" [ 1; 2; 3; 4 ]
    (List.rev !order);
  Alcotest.(check int) "bounded at qmax" 4 !accepted;
  Alcotest.(check int) "overflow dropped, not wedged" 2 !dropped;
  Alcotest.(check int) "crossings counted" 4 Cost.counters.Cost.netisr_queued;
  Alcotest.(check int) "drops counted" 2 Cost.counters.Cost.netisr_drops

(* ------------------------------------------------------------------ *)
(* The multi-queue RSS NIC: per-queue rings, per-queue vectors.        *)

let test_nic_rss_queues () =
  let w = World.create () in
  let wire = Wire.create w in
  let m = Machine.create ~name:"rssnic-pc" ~ncpus:2 w in
  Cost.reset_counters ();
  let mac = "\x02\x00\x00\x00\x00\x01" in
  let nic = Nic.create ~machine:m ~wire ~mac ~irq:9 () in
  Alcotest.(check int) "single queue by default" 1 (Nic.rx_queues nic);
  (* Classify by the frame's last byte; queue 1 interrupts on line 5,
     routed to CPU 1 — so that flow's receive work starts there. *)
  Nic.set_rss nic ~vectors:[| 9; 5 |]
    ~classify:(fun f -> Char.code (Bytes.get f (Bytes.length f - 1)));
  Alcotest.(check int) "two queues" 2 (Nic.rx_queues nic);
  let served_on = Array.make 2 (-1) in
  let handler q () =
    let rec drain () =
      match Nic.pop_rx_q nic ~q with
      | None -> ()
      | Some _ ->
          served_on.(q) <- Machine.cpu m;
          drain ()
    in
    drain ()
  in
  Machine.set_irq_handler m ~irq:9 (handler 0);
  Machine.set_irq_handler m ~irq:5 (handler 1);
  Machine.set_irq_affinity m ~irq:5 ~cpu:1;
  Machine.unmask_irq m ~irq:9;
  Machine.unmask_irq m ~irq:5;
  let sender = Wire.attach wire ~rx:(fun _ -> ()) in
  let frame tag =
    let f = Bytes.make 60 '\000' in
    Bytes.blit_string mac 0 f 0 6;
    Bytes.set f 59 (Char.chr tag);
    f
  in
  ignore (Wire.send wire sender (frame 0) ~at:0);
  ignore (Wire.send wire sender (frame 1) ~at:100_000);
  World.run w;
  Alcotest.(check int) "queue 0 drained on CPU 0" 0 served_on.(0);
  Alcotest.(check int) "queue 1's vector interrupted CPU 1" 1 served_on.(1);
  Alcotest.(check int) "hardware steering counted" 2 Cost.counters.Cost.rss_steered

(* ------------------------------------------------------------------ *)
(* End-to-end across CPU counts: ttcp, byte-exact, clean and lossy.    *)

let pattern pos = (pos * 131) land 0xff

let run_ttcp ?(loss = 0.0) ~ncpus ~blocks ~blocksize () =
  with_ncpus ncpus @@ fun () ->
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "fxp-sim") () in
  if loss > 0.0 then
    Wire.set_netem tb.Clientos.wire
      (Some (Netem.create ~seed:7 ~policy:{ Netem.default_policy with loss } ()));
  let server = tb.Clientos.host_b and chost = tb.Clientos.host_a in
  let sstack = Clientos.freebsd_host server ~ip:(ip "10.0.0.2") ~mask in
  let cstack = Clientos.freebsd_host chost ~ip:(ip "10.0.0.1") ~mask in
  let total = blocks * blocksize in
  let received = ref 0 and mismatches = ref 0 and finished = ref false in
  Clientos.spawn server ~cpu:0 ~name:"ttcp-srv" (fun () ->
      let ls = Bsd_socket.tcp_socket sstack in
      ok (Bsd_socket.so_bind ls ~port:6001);
      ok (Bsd_socket.so_listen ls ~backlog:2);
      let s = ok (Bsd_socket.so_accept ls) in
      let buf = Bytes.create 16384 in
      let rec loop () =
        match ok (Bsd_socket.so_recv s ~buf ~pos:0 ~len:16384) with
        | 0 ->
            finished := true;
            ignore (Bsd_socket.so_close s)
        | n ->
            for i = 0 to n - 1 do
              if Char.code (Bytes.get buf i) <> pattern (!received + i) then
                incr mismatches
            done;
            received := !received + n;
            loop ()
      in
      loop ());
  Clientos.spawn chost ~cpu:(ncpus - 1) ~name:"ttcp-cli" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let s = Bsd_socket.tcp_socket cstack in
      ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:6001);
      let block = Bytes.create blocksize in
      for b = 0 to blocks - 1 do
        for i = 0 to blocksize - 1 do
          Bytes.set block i (Char.chr (pattern ((b * blocksize) + i)))
        done;
        let rec push off =
          if off < blocksize then
            push (off + ok (Bsd_socket.so_send s ~buf:block ~pos:off ~len:(blocksize - off)))
        in
        push 0
      done;
      ignore (Bsd_socket.so_close s));
  Clientos.run tb ~until:(fun () -> !finished);
  Alcotest.(check int)
    (Printf.sprintf "ncpus=%d loss=%.2f: no corrupted bytes" ncpus loss)
    0 !mismatches;
  Alcotest.(check int)
    (Printf.sprintf "ncpus=%d loss=%.2f: every byte arrived" ncpus loss)
    total !received

let test_ttcp_cross_cpu () =
  List.iter (fun ncpus -> run_ttcp ~ncpus ~blocks:64 ~blocksize:4096 ()) [ 1; 2; 4 ];
  Alcotest.(check bool) "at 4 CPUs the NIC actually steered" true
    (Cost.counters.Cost.rss_steered > 0)

let test_ttcp_cross_cpu_lossy () =
  List.iter
    (fun ncpus -> run_ttcp ~loss:0.03 ~ncpus ~blocks:32 ~blocksize:4096 ())
    [ 1; 2; 4 ]

let sum_shards f =
  let s = ref 0 in
  for c = 0 to Cost.max_cpus - 1 do
    s := !s + f (Cost.counters_for ~cpu:c)
  done;
  !s

let test_shards_sum_to_aggregate () =
  (* Leaves the counters populated by a genuinely multi-CPU run. *)
  run_ttcp ~ncpus:4 ~blocks:32 ~blocksize:4096 ();
  let agg = Cost.counters in
  let pairs =
    [ "copies", agg.Cost.copies, sum_shards (fun c -> c.Cost.copies);
      "copied_bytes", agg.Cost.copied_bytes, sum_shards (fun c -> c.Cost.copied_bytes);
      "checksummed_bytes", agg.Cost.checksummed_bytes,
        sum_shards (fun c -> c.Cost.checksummed_bytes);
      "com_calls", agg.Cost.com_calls, sum_shards (fun c -> c.Cost.com_calls);
      "sg_xmits", agg.Cost.sg_xmits, sum_shards (fun c -> c.Cost.sg_xmits);
      "rss_steered", agg.Cost.rss_steered, sum_shards (fun c -> c.Cost.rss_steered);
      "netisr_queued", agg.Cost.netisr_queued,
        sum_shards (fun c -> c.Cost.netisr_queued);
      "spin_contentions", agg.Cost.spin_contentions,
        sum_shards (fun c -> c.Cost.spin_contentions) ]
  in
  List.iter
    (fun (name, total, shard_sum) ->
      Alcotest.(check int) (name ^ ": shards sum to the aggregate") total shard_sum)
    pairs;
  Alcotest.(check bool) "the run counted something" true (agg.Cost.copies > 0)

(* ------------------------------------------------------------------ *)
(* The sharded reactor httpd end-to-end, every response byte-exact.    *)

let index_of s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go 0

let run_httpd ?(loss = 0.0) ~ncpus ~clients () =
  with_ncpus ncpus @@ fun () ->
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "fxp-sim") () in
  if loss > 0.0 then
    Wire.set_netem tb.Clientos.wire
      (Some (Netem.create ~seed:11 ~policy:{ Netem.default_policy with loss } ()));
  let server = tb.Clientos.host_b and chost = tb.Clientos.host_a in
  let dev = Mem_blkio.make ~bytes:(1 lsl 20) () in
  let root = ok (Fs_glue.newfs dev) in
  let body = String.init 512 (fun i -> Char.chr (pattern i)) in
  let f = ok (root.Io_if.d_create "index.html") in
  (let b = Bytes.of_string body in
   let rec push off =
     if off < Bytes.length b then
       match
         f.Io_if.f_write ~buf:b ~pos:off ~offset:off ~amount:(Bytes.length b - off)
       with
       | Ok n -> push (off + n)
       | Error e -> Alcotest.failf "write: %s" (Error.to_string e)
   in
   push 0);
  let stack = Clientos.freebsd_host server ~ip:(ip "10.0.0.2") ~mask in
  let cstack = Clientos.freebsd_host chost ~ip:(ip "10.0.0.1") ~mask in
  let sock = Freebsd_glue.socket_com stack (Bsd_socket.tcp_socket stack) in
  let reactors = Array.init ncpus (fun _ -> Reactor.create ()) in
  let home (peer : Io_if.sockaddr) =
    Rss.cpu_of_flow ~ncpus ~proto:6 ~addr_a:(ip "10.0.0.2") ~port_a:80
      ~addr_b:peer.Io_if.sin_addr ~port_b:peer.Io_if.sin_port
  in
  let done_clients = ref 0 in
  let all_done () = !done_clients >= clients in
  Clientos.spawn server ~cpu:0 ~name:"httpd-accept" (fun () ->
      ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 80 });
      ok (sock.Io_if.so_listen ~backlog:64);
      ignore (Httpd.serve_reactor_sharded ~reactors ~home ~root ~sock ());
      Reactor.run reactors.(0) ~until:all_done);
  for c = 1 to ncpus - 1 do
    Clientos.spawn server ~cpu:c
      ~name:(Printf.sprintf "httpd-cpu%d" c)
      (fun () -> Reactor.run reactors.(c) ~until:all_done)
  done;
  let bad = ref 0 in
  for i = 0 to clients - 1 do
    Clientos.spawn chost ~cpu:(i mod ncpus)
      ~name:(Printf.sprintf "c%d" i)
      (fun () ->
        Kclock.sleep_ns (2_000_000 + (i * 50_000));
        let s = Bsd_socket.tcp_socket cstack in
        (match Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80 with
        | Error _ -> incr bad
        | Ok () ->
            let req = Bytes.of_string "GET /index.html HTTP/1.0\r\n\r\n" in
            let rec push off =
              if off < Bytes.length req then
                match
                  Bsd_socket.so_send s ~buf:req ~pos:off ~len:(Bytes.length req - off)
                with
                | Ok n -> push (off + n)
                | Error _ -> ()
            in
            push 0;
            let buf = Bytes.create 4096 in
            let acc = Buffer.create 1024 in
            let rec drain () =
              match Bsd_socket.so_recv s ~buf ~pos:0 ~len:4096 with
              | Ok 0 | Error _ -> ()
              | Ok n ->
                  Buffer.add_subbytes acc buf 0 n;
                  drain ()
            in
            drain ();
            let resp = Buffer.contents acc in
            let exact =
              String.length resp > 12
              && String.sub resp 0 12 = "HTTP/1.0 200"
              &&
              match index_of resp "\r\n\r\n" with
              | Some i -> String.sub resp (i + 4) (String.length resp - i - 4) = body
              | None -> false
            in
            if not exact then incr bad);
        ignore (Bsd_socket.so_close s);
        incr done_clients)
  done;
  Clientos.run tb ~until:all_done;
  Alcotest.(check int)
    (Printf.sprintf "ncpus=%d loss=%.2f: every response byte-exact" ncpus loss)
    0 !bad

let test_httpd_cross_cpu () =
  List.iter (fun ncpus -> run_httpd ~ncpus ~clients:16 ()) [ 1; 2; 4 ]

let test_httpd_cross_cpu_lossy () =
  List.iter (fun ncpus -> run_httpd ~loss:0.02 ~ncpus ~clients:8 ()) [ 1; 2; 4 ]

let suite =
  [ Alcotest.test_case "smp: cpu_number reports the executing CPU" `Quick
      test_cpu_number;
    Alcotest.test_case "smp: per-CPU data genuinely shards" `Quick
      test_percpu_shards;
    Alcotest.test_case "smp: trylock failure is charged and counted" `Quick
      test_trylock_failure_charged;
    Alcotest.test_case "rss: same secret, same steering (reboot)" `Quick
      test_reboot_determinism;
    Alcotest.test_case "rss: sequential ports spread within 20% over 8 CPUs"
      `Quick test_spread;
    Alcotest.test_case "rss: frame parsing agrees with the flow hash" `Quick
      test_frame_steering;
    QCheck_alcotest.to_alcotest prop_direction_symmetry;
    Alcotest.test_case "netisr: direct dispatch, FIFO, bounded" `Quick
      test_netisr;
    Alcotest.test_case "nic: multi-queue RSS interrupts the home CPU" `Quick
      test_nic_rss_queues;
    Alcotest.test_case "ttcp byte-exact at 1/2/4 CPUs" `Quick test_ttcp_cross_cpu;
    Alcotest.test_case "ttcp byte-exact at 1/2/4 CPUs under 3% loss" `Quick
      test_ttcp_cross_cpu_lossy;
    Alcotest.test_case "counter shards sum to the aggregate view" `Quick
      test_shards_sum_to_aggregate;
    Alcotest.test_case "sharded httpd byte-exact at 1/2/4 CPUs" `Quick
      test_httpd_cross_cpu;
    Alcotest.test_case "sharded httpd byte-exact at 1/2/4 CPUs under 2% loss"
      `Quick test_httpd_cross_cpu_lossy ]
