(* The PR-5 receive fast path: VJ header prediction, hashed PCB demux,
   and NAPI-style batched RX.  All three live behind Cost.config flags
   that default off, so every test here saves and restores them — the
   rest of the suite (and the committed Table 1/2 baselines) must keep
   seeing the unmodified slow paths.

   The load-bearing property is equivalence: with the flags on, the
   stacks must deliver byte-identical streams, including under loss and
   reordering where predicted segments interleave with retransmissions
   that must fall back to the full input path. *)

let ip = Oskit.ip_of_string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("fastpath: " ^ Error.to_string e)

(* Flip all three fast-path flags around [f], restoring the previous
   values on any exit (the test_sg with_sg_tx discipline). *)
let with_fast ?(batch = 8) f =
  let c = Cost.config in
  let fp = c.Cost.tcp_fastpath and ph = c.Cost.pcb_hash and rb = c.Cost.rx_batch in
  c.Cost.tcp_fastpath <- true;
  c.Cost.pcb_hash <- true;
  c.Cost.rx_batch <- batch;
  Fun.protect
    ~finally:(fun () ->
      c.Cost.tcp_fastpath <- fp;
      c.Cost.pcb_hash <- ph;
      c.Cost.rx_batch <- rb)
    f

(* ------------------------------------------------------------------ *)
(* Equivalence: flags on, transfers stay byte-exact under clean wire,
   loss, and reordering — for both the OSKit (COM-glued) and Linux
   senders.  The netem seed, loss rate, and reorder rate are generated;
   loss/reorder up to 3% forces the predicted/slow-path interleave. *)

let equivalence sender label =
  QCheck.Test.make ~count:5
    ~name:(label ^ ": fastpath byte-exact under loss+reorder")
    QCheck.(triple (int_bound 10_000) (int_bound 30) (int_bound 30))
    (fun (seed, loss_mil, reorder_mil) ->
      with_fast (fun () ->
          let em = Netem.create ~seed () in
          Netem.set_policy em
            { Netem.default_policy with
              loss = float_of_int loss_mil /. 1000.;
              reorder = float_of_int reorder_mil /. 1000.;
              reorder_delay_ns = 400_000 };
          let exact, _, _, _ =
            Test_netem.run_transfer ~netem:em ~sender ~blocks:16 ~blocksize:4096 ()
          in
          exact))

let equivalence_oskit = equivalence Test_netem.Oskit "oskit"
let equivalence_linux = equivalence Test_netem.Linux "linux"

(* Clean in-order transfer with the flags on: byte-exact, the predictor
   actually fires, and nothing falls back (the CI rttsmoke gate's
   property, pinned here at unit scale). *)
let test_clean_transfer_predicts () =
  with_fast (fun () ->
      let exact, _, _, _ =
        Test_netem.run_transfer ~sender:Test_netem.Oskit ~blocks:32 ~blocksize:4096 ()
      in
      Alcotest.(check bool) "byte-exact" true exact;
      Alcotest.(check bool) "prediction fired" true (Cost.counters.Cost.fastpath_hits > 0);
      Alcotest.(check int) "no fallbacks on a clean wire" 0
        Cost.counters.Cost.fastpath_fallbacks;
      Alcotest.(check bool) "batched RX observed" true (Cost.counters.Cost.rx_polls > 0))

(* ------------------------------------------------------------------ *)
(* PCB cache invalidation: when a connection dies (close, TIME_WAIT
   expiry, reset), the hash entry and the one-entry cache must both be
   purged — a stale cache would deliver a new connection's segments to
   a dead pcb. *)

let mask = ip "255.255.255.0"

let make_bsd_pair () =
  let w = World.create () in
  let wire = Wire.create w in
  let mk name mac ipaddr =
    let machine = Machine.create ~name w in
    let _kern = Kernel.create machine in
    let nic = Nic.create ~machine ~wire ~mac ~irq:9 () in
    let stack = Bsd_socket.create_stack machine ~hwaddr:(Nic.mac nic) ~name in
    Native_if.attach stack nic;
    Bsd_socket.ifconfig stack ~addr:(ip ipaddr) ~mask;
    machine, stack
  in
  let ma, sa = mk "fp-a" "\x02\x00\x00\x00\x00\xaa" "10.2.0.1" in
  let mb, sb = mk "fp-b" "\x02\x00\x00\x00\x00\xbb" "10.2.0.2" in
  w, ma, sa, mb, sb

let test_bsd_cache_invalidated_on_close () =
  with_fast (fun () ->
      Cost.reset_counters ();
      Mbuf.pool_reset ();
      let w, ma, sa, mb, sb = make_bsd_pair () in
      let ka = Thread.create_sched ma and kb = Thread.create_sched mb in
      Thread.install ka;
      Thread.install kb;
      let echoed = ref "" in
      Thread.spawn kb ~name:"fp-srv" (fun () ->
          let ls = Bsd_socket.tcp_socket sb in
          ok (Bsd_socket.so_bind ls ~port:7777);
          ok (Bsd_socket.so_listen ls ~backlog:1);
          let c = ok (Bsd_socket.so_accept ls) in
          let buf = Bytes.create 64 in
          let n = ok (Bsd_socket.so_recv c ~buf ~pos:0 ~len:64) in
          ignore (ok (Bsd_socket.so_send c ~buf ~pos:0 ~len:n));
          ignore (Bsd_socket.so_close c);
          ignore (Bsd_socket.so_close ls));
      Thread.spawn ka ~name:"fp-cli" (fun () ->
          let s = Bsd_socket.tcp_socket sa in
          ok (Bsd_socket.so_connect s ~dst:(ip "10.2.0.2") ~dport:7777);
          let msg = Bytes.of_string "ping" in
          ignore (ok (Bsd_socket.so_send s ~buf:msg ~pos:0 ~len:4));
          let buf = Bytes.create 64 in
          let n = ok (Bsd_socket.so_recv s ~buf ~pos:0 ~len:64) in
          echoed := Bytes.sub_string buf 0 n;
          ignore (Bsd_socket.so_close s));
      Machine.kick mb;
      Machine.kick ma;
      (* No ~until: run to event exhaustion — the TCP slow timer stops
         ticking once the last pcb (the client's TIME_WAIT) expires, so
         termination itself proves the teardown completed. *)
      World.run w;
      Alcotest.(check string) "echo delivered" "ping" !echoed;
      Alcotest.(check bool) "demux used the cache" true
        (Cost.counters.Cost.pcb_cache_hits > 0);
      Alcotest.(check int) "client hash purged" 0 (Hashtbl.length sa.Bsd_socket.tcp.Tcp.pcb_hash);
      Alcotest.(check int) "server hash purged" 0 (Hashtbl.length sb.Bsd_socket.tcp.Tcp.pcb_hash);
      Alcotest.(check bool) "client last-pcb cache purged" true
        (sa.Bsd_socket.tcp.Tcp.last_pcb = None);
      Alcotest.(check bool) "server last-pcb cache purged" true
        (sb.Bsd_socket.tcp.Tcp.last_pcb = None))

let test_linux_cache_invalidated_on_close () =
  with_fast (fun () ->
      Clientos.reset_globals ();
      Fdev.clear_drivers ();
      let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
      let sa = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
      let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
      let echoed = ref "" in
      Clientos.spawn tb.Clientos.host_b ~name:"fp-srv" (fun () ->
          let ls = Linux_inet.socket sb in
          Linux_inet.bind sb ls ~port:7777;
          Linux_inet.listen sb ls ~backlog:1;
          let c = ok (Linux_inet.accept sb ls) in
          let buf = Bytes.create 64 in
          let n = ok (Linux_inet.recv sb c ~buf ~pos:0 ~len:64) in
          ignore (ok (Linux_inet.send sb c ~buf ~pos:0 ~len:n));
          Linux_inet.close sb c;
          Linux_inet.close sb ls);
      Clientos.spawn tb.Clientos.host_a ~name:"fp-cli" (fun () ->
          Kclock.sleep_ns 1_000_000;
          let s = Linux_inet.socket sa in
          ok (Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:7777);
          let msg = Bytes.of_string "ping" in
          ignore (ok (Linux_inet.send sa s ~buf:msg ~pos:0 ~len:4));
          let buf = Bytes.create 64 in
          let n = ok (Linux_inet.recv sa s ~buf ~pos:0 ~len:64) in
          echoed := Bytes.sub_string buf 0 n;
          Linux_inet.close sa s);
      (* Run to exhaustion: the client's TIME_WAIT is a one-shot timer
         (2 s virtual) whose expiry detaches the last hashed socket. *)
      Clientos.run tb ~until:(fun () -> false);
      Alcotest.(check string) "echo delivered" "ping" !echoed;
      Alcotest.(check bool) "demux used the cache" true
        (Cost.counters.Cost.pcb_cache_hits > 0);
      Alcotest.(check int) "client hash purged" 0 (Hashtbl.length sa.Linux_inet.sock_hash);
      Alcotest.(check int) "server hash purged" 0 (Hashtbl.length sb.Linux_inet.sock_hash);
      Alcotest.(check bool) "client last-sock cache purged" true (sa.Linux_inet.last_sock = None);
      Alcotest.(check bool) "server last-sock cache purged" true (sb.Linux_inet.last_sock = None))

(* ------------------------------------------------------------------ *)
(* UDP rides the same hashed demux; a datagram for a closed port must
   still be counted and answered with ICMP port unreachable. *)

let test_udp_hash_demux_and_unreachable () =
  with_fast (fun () ->
      Cost.reset_counters ();
      Mbuf.pool_reset ();
      let w, ma, sa, _mb, sb = make_bsd_pair () in
      let pcb = Udp.create_pcb sb.Bsd_socket.udp in
      ok (Udp.bind sb.Bsd_socket.udp pcb ~port:7);
      Machine.run_in ma (fun () ->
          let upcb = Udp.create_pcb sa.Bsd_socket.udp in
          ignore (Udp.bind sa.Bsd_socket.udp upcb ~port:8);
          Udp.output sa.Bsd_socket.udp upcb ~dst:(ip "10.2.0.2") ~dport:7
            ~src:(Bytes.of_string "ping") ~src_pos:0 ~len:4;
          (* And one for a port nobody is listening on. *)
          Udp.output sa.Bsd_socket.udp upcb ~dst:(ip "10.2.0.2") ~dport:99
            ~src:(Bytes.of_string "none") ~src_pos:0 ~len:4);
      World.run w;
      Alcotest.(check int) "bound port delivered via hash" 1 (Queue.length pcb.Udp.rcv_q);
      Alcotest.(check int) "closed port counted" 1 sb.Bsd_socket.udp.Udp.noport;
      Alcotest.(check int) "port unreachable sent" 1 sb.Bsd_socket.udp.Udp.unreach_sent;
      Alcotest.(check bool) "hashed lookup exercised" true
        (Cost.counters.Cost.pcb_cache_hits + Cost.counters.Cost.pcb_cache_misses > 0))

(* Flags off, the hashed structures are still maintained but never
   consulted: no cache counters move. *)
let test_flags_off_cache_untouched () =
  Cost.reset_counters ();
  Mbuf.pool_reset ();
  let w, ma, sa, _mb, sb = make_bsd_pair () in
  let pcb = Udp.create_pcb sb.Bsd_socket.udp in
  ok (Udp.bind sb.Bsd_socket.udp pcb ~port:7);
  Machine.run_in ma (fun () ->
      let upcb = Udp.create_pcb sa.Bsd_socket.udp in
      ignore (Udp.bind sa.Bsd_socket.udp upcb ~port:8);
      Udp.output sa.Bsd_socket.udp upcb ~dst:(ip "10.2.0.2") ~dport:7
        ~src:(Bytes.of_string "ping") ~src_pos:0 ~len:4);
  World.run w;
  Alcotest.(check int) "delivered by the linear scan" 1 (Queue.length pcb.Udp.rcv_q);
  Alcotest.(check int) "no cache hits" 0 Cost.counters.Cost.pcb_cache_hits;
  Alcotest.(check int) "no cache misses" 0 Cost.counters.Cost.pcb_cache_misses

(* ------------------------------------------------------------------ *)
(* The NIC ring's burst interface: bounded, FIFO, and draining. *)

let test_nic_rx_burst () =
  let w = World.create () in
  let wire = Wire.create w in
  let ma = Machine.create ~name:"burst-a" w in
  let mb = Machine.create ~name:"burst-b" w in
  let _ = Kernel.create ma and _ = Kernel.create mb in
  let na = Nic.create ~machine:ma ~wire ~mac:"\x02\x00\x00\x00\x00\x01" ~irq:9 () in
  let nb = Nic.create ~machine:mb ~wire ~mac:"\x02\x00\x00\x00\x00\x02" ~irq:9 () in
  ignore na;
  (* No driver opens nb, so no interrupt handler drains it: the five
     frames pile up in the ring, as they would while the CPU is busy. *)
  Machine.run_in ma (fun () ->
      for i = 0 to 4 do
        let f = Bytes.make 64 (Char.chr (Char.code 'a' + i)) in
        Bytes.blit_string "\x02\x00\x00\x00\x00\x02" 0 f 0 6;
        Nic.transmit na f
      done);
  World.run w;
  Alcotest.(check int) "five frames pending" 5 (Nic.rx_pending nb);
  let tag frame = Bytes.get frame 6 in
  let burst = Nic.pop_rx_burst nb ~max:3 in
  Alcotest.(check int) "bounded by the budget" 3 (List.length burst);
  Alcotest.(check (list char)) "oldest first" [ 'a'; 'b'; 'c' ] (List.map tag burst);
  Alcotest.(check int) "two remain" 2 (Nic.rx_pending nb);
  let rest = Nic.pop_rx_burst nb ~max:16 in
  Alcotest.(check (list char)) "drains in order" [ 'd'; 'e' ] (List.map tag rest);
  Alcotest.(check int) "ring empty" 0 (Nic.rx_pending nb);
  Alcotest.(check (list char)) "empty burst" [] (List.map tag (Nic.pop_rx_burst nb ~max:4))

let suite =
  [ QCheck_alcotest.to_alcotest equivalence_oskit;
    QCheck_alcotest.to_alcotest equivalence_linux;
    Alcotest.test_case "clean transfer: predicts, no fallbacks" `Quick
      test_clean_transfer_predicts;
    Alcotest.test_case "bsd: pcb hash+cache purged on close" `Quick
      test_bsd_cache_invalidated_on_close;
    Alcotest.test_case "linux: sock hash+cache purged on close" `Quick
      test_linux_cache_invalidated_on_close;
    Alcotest.test_case "udp: hashed demux + port unreachable" `Quick
      test_udp_hash_demux_and_unreachable;
    Alcotest.test_case "flags off: cache counters untouched" `Quick
      test_flags_off_cache_untouched;
    Alcotest.test_case "nic: rx burst bounded, fifo, draining" `Quick test_nic_rx_burst ]
