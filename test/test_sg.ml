(* The scatter-gather send path (Cost.config.sg_tx): iovec checksums,
   nonlinear sk_buffs, the glue's zero-copy crossing, the recognition-query
   cache, the NIC gather engine, and a ttcp under loss with the path on. *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

let with_sg_tx v f =
  let saved = Cost.config.Cost.sg_tx in
  Cost.config.Cost.sg_tx <- v;
  Fun.protect ~finally:(fun () -> Cost.config.Cost.sg_tx <- saved) f

(* Cut [s] into fragments at [cuts] (sorted positions), each fragment
   carried in its own backing array at a nonzero offset so stale-offset
   bugs surface. *)
let frags_of_cuts s cuts =
  let n = String.length s in
  let edges = 0 :: List.sort compare cuts @ [ n ] in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.filter_map
    (fun (a, b) ->
      if b <= a then None
      else begin
        let pad = 3 + (a mod 5) in
        let backing = Bytes.make (pad + (b - a) + 2) '\xee' in
        Bytes.blit_string s a backing pad (b - a);
        Some (backing, pad, b - a)
      end)
    (pairs edges)

(* ---- iovec checksum == linear checksum (qcheck) ---- *)

let cksum_frags_equiv =
  QCheck.Test.make ~count:200 ~name:"cksum_frags == cksum_bytes over any split"
    QCheck.(
      pair (string_of_size Gen.(1 -- 200)) (small_list (int_bound 199)))
    (fun (s, cuts) ->
      let n = String.length s in
      let cuts = List.filter (fun c -> c > 0 && c < n) cuts in
      let flat = Bytes.of_string s in
      let expect = In_cksum.cksum_bytes flat ~off:0 ~len:n in
      let got = In_cksum.cksum_frags (frags_of_cuts s cuts) in
      expect = got)

let test_cksum_frags_odd_boundaries () =
  (* Odd-length fragments force the byte-swap carry across the seam. *)
  let s = "\x01\x02\x03\x04\x05\x06\x07" in
  let flat = Bytes.of_string s in
  let expect = In_cksum.cksum_bytes flat ~off:0 ~len:7 in
  List.iter
    (fun cuts ->
      Alcotest.(check int)
        (Printf.sprintf "cuts at [%s]" (String.concat ";" (List.map string_of_int cuts)))
        expect
        (In_cksum.cksum_frags (frags_of_cuts s cuts)))
    [ [ 1 ]; [ 3 ]; [ 1; 2 ]; [ 1; 2; 3; 4; 5; 6 ]; [ 5 ]; [ 2; 5 ] ];
  (* Empty fragments contribute nothing, wherever they fall. *)
  Alcotest.(check int) "empty fragment list" (In_cksum.finish 0) (In_cksum.cksum_frags [])

let test_cksum_frags_charges_once () =
  Cost.reset_counters ();
  let frags = frags_of_cuts (String.make 100 'c') [ 33; 67 ] in
  ignore (In_cksum.cksum_frags frags);
  Alcotest.(check int) "checksummed bytes counted" 100
    Cost.counters.Cost.checksummed_bytes

(* ---- nonlinear sk_buffs ---- *)

let test_skb_of_frags_linearize_roundtrip () =
  let s = "one-fragment+two-fragment+three" in
  let frags = frags_of_cuts s [ 4; 13; 26 ] in
  let skb = Skbuff.skb_of_frags frags in
  Alcotest.(check bool) "nonlinear" true (Skbuff.skb_is_nonlinear skb);
  Alcotest.(check int) "len is the fragment total" (String.length s) skb.Skbuff.len;
  Alcotest.(check int) "no tailroom on a nonlinear skb" 0 (Skbuff.skb_tailroom skb);
  let lin = Skbuff.skb_linearize skb in
  Alcotest.(check bool) "linearized" false (Skbuff.skb_is_nonlinear lin);
  Alcotest.(check string) "bytes preserved" s
    (Bytes.sub_string lin.Skbuff.skb_data lin.Skbuff.head lin.Skbuff.len);
  (* A linear skb linearizes to itself. *)
  Alcotest.(check bool) "linear identity" true (Skbuff.skb_linearize lin == lin)

let test_nonlinear_skb_bufio_read () =
  let s = "abcdefghij" in
  let skb = Skbuff.skb_of_frags (frags_of_cuts s [ 3; 7 ]) in
  let io = Linux_glue.bufio_of_skb skb in
  Alcotest.(check bool) "nonlinear skb does not map flat" true (io.Io_if.buf_map () = None);
  (match io.Io_if.buf_map_v () with
  | Some frags ->
      Alcotest.(check int) "maps as an iovec" (String.length s)
        (List.fold_left (fun a (_, _, l) -> a + l) 0 frags)
  | None -> Alcotest.fail "buf_map_v failed on a nonlinear skb");
  let buf = Bytes.make 6 '.' in
  (match io.Io_if.buf_read ~buf ~pos:0 ~offset:2 ~amount:6 with
  | Ok 6 -> ()
  | _ -> Alcotest.fail "buf_read failed");
  Alcotest.(check string) "read gathers across fragments" "cdefgh" (Bytes.to_string buf);
  Alcotest.(check bool) "write-through refused (loaned storage)" true
    (io.Io_if.buf_write ~buf ~pos:0 ~offset:0 ~amount:1 = Error Error.Notsup)

(* ---- the glue's SG arm ---- *)

let chain_of_strings parts =
  match parts with
  | [] -> invalid_arg "empty"
  | first :: rest ->
      let head = Mbuf.m_ext_wrap (Bytes.of_string first) ~off:0 ~len:(String.length first) in
      List.iter
        (fun s ->
          Mbuf.m_cat head (Mbuf.m_ext_wrap (Bytes.of_string s) ~off:0 ~len:(String.length s)))
        rest;
      head

let test_sg_arm_no_copy () =
  with_sg_tx true (fun () ->
      Cost.reset_counters ();
      let m = chain_of_strings [ "head-"; "cluster-one-"; "cluster-two" ] in
      let io = Freebsd_glue.bufio_of_mbuf m in
      let skb, copied = Linux_glue.skb_of_bufio io in
      Alcotest.(check bool) "no copy" false copied;
      Alcotest.(check bool) "crossed nonlinear" true (Skbuff.skb_is_nonlinear skb);
      Alcotest.(check int) "zero copies charged" 0 Cost.counters.Cost.copies;
      Alcotest.(check int) "nothing linearized" 0 Cost.counters.Cost.linearized_xmits;
      (* The fragments alias the chain's storage: zero-copy, provably. *)
      (match Skbuff.skb_fragments skb with
      | (b0, _, _) :: _ -> Alcotest.(check bool) "aliases mbuf data" true (b0 == m.Mbuf.m_data)
      | [] -> Alcotest.fail "no fragments"));
  (* Default config: the same chain is flattened (the Table 1 copy). *)
  with_sg_tx false (fun () ->
      Cost.reset_counters ();
      let m = chain_of_strings [ "head-"; "cluster-one-"; "cluster-two" ] in
      let _, copied = Linux_glue.skb_of_bufio (Freebsd_glue.bufio_of_mbuf m) in
      Alcotest.(check bool) "copied" true copied;
      Alcotest.(check int) "linearize counted" 1 Cost.counters.Cost.linearized_xmits;
      Alcotest.(check bool) "copy charged" true (Cost.counters.Cost.copies > 0))

let test_recognition_cache () =
  (* Foreign producer: one query on the first frame, none after. *)
  let cache = Linux_glue.fresh_recognition () in
  let m () = chain_of_strings [ "aa"; "bb" ] in
  Cost.reset_counters ();
  ignore (Linux_glue.skb_of_bufio ~cache (Freebsd_glue.bufio_of_mbuf (m ())));
  Alcotest.(check int) "first frame queries" 1 Cost.counters.Cost.com_calls;
  Alcotest.(check bool) "verdict cached" true (!cache = Some false);
  ignore (Linux_glue.skb_of_bufio ~cache (Freebsd_glue.bufio_of_mbuf (m ())));
  ignore (Linux_glue.skb_of_bufio ~cache (Freebsd_glue.bufio_of_mbuf (m ())));
  Alcotest.(check int) "steady state does not query" 1 Cost.counters.Cost.com_calls;
  (* Native producer: the query is what unwraps, so it stays per-frame —
     and keeps working. *)
  let cache = Linux_glue.fresh_recognition () in
  let skb = Skbuff.alloc_skb 32 in
  ignore (Skbuff.skb_put skb 4);
  let skb', copied = Linux_glue.skb_of_bufio ~cache (Linux_glue.bufio_of_skb skb) in
  Alcotest.(check bool) "own skb unwrapped through cache" true (skb' == skb);
  Alcotest.(check bool) "no copy" false copied;
  Alcotest.(check bool) "positive verdict cached" true (!cache = Some true)

let test_nic_gather_equals_linear () =
  (* transmit_v puts the same frame on the wire as a flattened transmit. *)
  let world = World.create () in
  let machine = Machine.create world in
  let wire = Wire.create world in
  let seen = ref [] in
  ignore (Wire.attach wire ~rx:(fun f -> seen := Bytes.to_string f :: !seen));
  let nic = Nic.create ~machine ~wire ~mac:"\x02\x00\x00\x00\x00\x01" ~irq:5 () in
  let s = String.make 6 '\xff' ^ "payload-payload-payload-payload-payload-payload-xyz" in
  Nic.transmit nic (Bytes.of_string s);
  Nic.transmit_v nic (frags_of_cuts s [ 6; 20; 21; 40 ]);
  World.run world;
  match !seen with
  | [ b; a ] -> Alcotest.(check string) "gathered frame == linear frame" a b
  | l -> Alcotest.failf "expected 2 frames, saw %d" (List.length l)

(* ---- the satellite fix: sector-aligned blkio writes go direct ---- *)

let test_blkio_aligned_write_no_copy () =
  Fdev.clear_drivers ();
  Linux_glue.reset ();
  let w = World.create () in
  let m = Machine.create ~name:"sg-ide" w in
  let sched = Thread.create_sched m in
  Thread.install sched;
  Bus.clear m;
  let disk = Disk.create ~machine:m ~sectors:4096 ~irq:14 () in
  Bus.register_hw m (Bus.Hw_disk { model = "QUANTUM-LPS540"; disk });
  Linux_glue.init_ide ();
  let osenv = Osenv.create m in
  ignore (Fdev.probe osenv);
  match Fdev.lookup osenv Io_if.blkio_iid with
  | [ bio ] ->
      let finished = ref false in
      Thread.spawn sched ~name:"aligned-writer" (fun () ->
          let ssize = bio.Io_if.getblocksize () in
          let span = 2 * ssize in
          (* The span sits at a nonzero position in the caller's buffer, so
             a dropped [pos] or [buf_pos] would corrupt the write. *)
          let buf = Bytes.create (3 * ssize) in
          for i = 0 to span - 1 do
            Bytes.set buf (ssize + i) (Char.chr ((i * 7) land 0xff))
          done;
          Cost.reset_counters ();
          let n =
            ok (bio.Io_if.bio_write ~buf ~pos:ssize ~offset:(4 * ssize) ~amount:span)
          in
          Alcotest.(check int) "wrote the span" span n;
          Alcotest.(check int) "aligned write: no CPU copy, no bounce buffer" 0
            Cost.counters.Cost.copies;
          let back = Bytes.create span in
          ignore (ok (bio.Io_if.bio_read ~buf:back ~pos:0 ~offset:(4 * ssize) ~amount:span));
          Alcotest.(check string) "round-trip through the platters"
            (Bytes.sub_string buf ssize span) (Bytes.to_string back);
          (* Unaligned writes still read-modify-write correctly. *)
          let msg = Bytes.of_string "unaligned-span" in
          ignore
            (ok
               (bio.Io_if.bio_write ~buf:msg ~pos:0 ~offset:((4 * ssize) + 7)
                  ~amount:(Bytes.length msg)));
          let back2 = Bytes.create (Bytes.length msg) in
          ignore
            (ok
               (bio.Io_if.bio_read ~buf:back2 ~pos:0 ~offset:((4 * ssize) + 7)
                  ~amount:(Bytes.length msg)));
          Alcotest.(check string) "unaligned rmw preserved" "unaligned-span"
            (Bytes.to_string back2);
          let head = Bytes.create 7 in
          ignore (ok (bio.Io_if.bio_read ~buf:head ~pos:0 ~offset:(4 * ssize) ~amount:7));
          Alcotest.(check string) "bytes before the unaligned span survived"
            (Bytes.sub_string buf ssize 7) (Bytes.to_string head);
          finished := true);
      Machine.kick m;
      World.run w ~until:(fun () -> !finished);
      Alcotest.(check bool) "completed" true !finished;
      Fdev.clear_drivers ()
  | l -> Alcotest.failf "expected 1 blkio device, found %d" (List.length l)

(* ---- end to end: ttcp with sg on, under loss, byte-exact ---- *)

let test_sg_ttcp_byte_exact_under_loss () =
  with_sg_tx true (fun () ->
      let em = Netem.create ~seed:7 ~policy:{ Netem.default_policy with loss = 0.03 } () in
      let byte_exact, _, _, tb =
        Test_netem.run_transfer ~netem:em ~sender:Test_netem.Oskit ~blocks:32
          ~blocksize:4096 ()
      in
      Alcotest.(check bool) "sg + 3% loss: byte-exact" true byte_exact;
      Alcotest.(check bool) "losses were real (frames dropped in transit)" true
        (Wire.frames_dropped tb.Clientos.wire > 0);
      Alcotest.(check int) "sg path carried the data" 0 Cost.counters.Cost.linearized_xmits;
      Alcotest.(check bool) "sg xmits happened" true (Cost.counters.Cost.sg_xmits > 0))

let suite =
  [ QCheck_alcotest.to_alcotest cksum_frags_equiv;
    Alcotest.test_case "iovec checksum: odd fragment boundaries" `Quick
      test_cksum_frags_odd_boundaries;
    Alcotest.test_case "iovec checksum: single charge" `Quick test_cksum_frags_charges_once;
    Alcotest.test_case "nonlinear skb: build + linearize round-trip" `Quick
      test_skb_of_frags_linearize_roundtrip;
    Alcotest.test_case "nonlinear skb: bufio read/map_v" `Quick test_nonlinear_skb_bufio_read;
    Alcotest.test_case "glue: sg arm crosses mbuf chain with no copy" `Quick
      test_sg_arm_no_copy;
    Alcotest.test_case "glue: recognition query cache" `Quick test_recognition_cache;
    Alcotest.test_case "nic: gather == linear on the wire" `Quick
      test_nic_gather_equals_linear;
    Alcotest.test_case "blkio: aligned write is direct, no copy" `Quick
      test_blkio_aligned_write_no_copy;
    Alcotest.test_case "ttcp --sg under 3% loss is byte-exact" `Quick
      test_sg_ttcp_byte_exact_under_loss ]
