(* The size-class allocator over the LMM (§6.2.10 layering), plus the
   shared-mbuf mutation guards and pool-recycling behaviour that ride on
   it: qcheck invariants, Memdebug layering, checksum parity across pooled
   chain boundaries. *)

let make_lmm ?(bytes = 1 lsl 20) () =
  let lmm = Lmm.create () in
  Lmm.add_region lmm ~min:0 ~size:bytes ~flags:0 ~pri:0;
  Lmm.add_free lmm ~addr:0 ~size:bytes;
  lmm

let test_basics () =
  let lmm = make_lmm () in
  let k = Kalloc.create lmm in
  let a = Option.get (Kalloc.alloc k ~size:100) in
  Alcotest.(check (option int)) "100B rounds to the 128B class" (Some 128)
    (Kalloc.usable_size k a);
  Alcotest.(check int) "one live block" 1 (Kalloc.live_blocks k);
  let b = Option.get (Kalloc.alloc k ~size:100) in
  Alcotest.(check bool) "distinct blocks" true (a <> b);
  Alcotest.(check bool) "no overlap" true (abs (a - b) >= 128);
  Kalloc.free k a;
  Kalloc.free k b;
  Alcotest.(check int) "all returned" 0 (Kalloc.live_blocks k);
  (* Large requests fall through to the LMM and are still freeable by
     address alone. *)
  let big = Option.get (Kalloc.alloc k ~size:10_000) in
  Alcotest.(check (option int)) "large tracked exactly" (Some 10_000)
    (Kalloc.usable_size k big);
  Kalloc.free k big

let test_hit_miss_stats () =
  let k = Kalloc.create (make_lmm ()) in
  let st = Kalloc.stats k 7 (* 128B class *) in
  let a = Option.get (Kalloc.alloc k ~size:128) in
  Alcotest.(check int) "first alloc is a miss" 1 st.Kalloc.misses;
  Alcotest.(check int) "one refill" 1 st.Kalloc.refills;
  let b = Option.get (Kalloc.alloc k ~size:128) in
  Alcotest.(check int) "second alloc hits the freelist" 1 st.Kalloc.hits;
  Kalloc.free k a;
  Kalloc.free k b;
  (* One empty slab stays cached (hysteresis): a tight loop at the slab
     boundary must not thrash the LMM. *)
  Alcotest.(check int) "no release while it is the only slab" 0 st.Kalloc.releases;
  Alcotest.(check int) "slab retained" 1 (Kalloc.slabs_held k);
  let c = Option.get (Kalloc.alloc k ~size:128) in
  Alcotest.(check int) "cached slab serves the next alloc" 2 st.Kalloc.hits;
  Kalloc.free k c

let test_release_restores_lmm () =
  let lmm = make_lmm () in
  let before = Lmm.avail lmm ~flags:0 in
  let k = Kalloc.create lmm in
  let addrs = List.init 200 (fun _ -> Option.get (Kalloc.alloc k ~size:64)) in
  Alcotest.(check bool) "slabs taken from the LMM" true
    (Lmm.avail lmm ~flags:0 < before);
  List.iter (Kalloc.free k) addrs;
  Kalloc.reap k;
  Alcotest.(check int) "reap hands every slab back" 0 (Kalloc.slabs_held k);
  Alcotest.(check int) "LMM availability fully restored" before (Lmm.avail lmm ~flags:0)

let test_free_validation () =
  let k = Kalloc.create (make_lmm ()) in
  let a = Option.get (Kalloc.alloc k ~size:32) in
  Kalloc.free k a;
  Alcotest.check_raises "double free detected"
    (Invalid_argument "Kalloc.free: double free") (fun () -> Kalloc.free k a);
  Alcotest.check_raises "foreign address rejected"
    (Invalid_argument "Kalloc.free: address not from this allocator") (fun () ->
      Kalloc.free k 0x7f000)

(* Memdebug layers over Kalloc exactly as over the raw LMM: the paper's
   "possibly layered on top of the OSKit's low-level one" composes both
   ways. *)
let test_memdebug_over_kalloc () =
  let ram = Physmem.create ~bytes:(1 lsl 20) in
  let lmm = make_lmm () in
  let k = Kalloc.create lmm in
  let md =
    Memdebug.create ~ram
      ~alloc:(fun size -> Kalloc.alloc k ~size)
      ~free:(fun ~addr ~size:_ -> Kalloc.free k addr)
  in
  let addr = Option.get (Memdebug.alloc md ~size:40 ~tag:"layered") in
  Alcotest.(check (option int)) "guarded block tracked" (Some 40) (Memdebug.size_of md addr);
  Alcotest.(check bool) "backing block is live in kalloc" true (Kalloc.live_blocks k > 0);
  Memdebug.free md addr;
  Alcotest.(check int) "released through both layers" 0 (Kalloc.live_blocks k)

let prop_no_overlap =
  QCheck.Test.make ~name:"kalloc: random alloc/free never hands out overlapping blocks"
    ~count:200
    QCheck.(list (pair (int_range 1 4096) bool))
    (fun ops ->
      let k = Kalloc.create (make_lmm ~bytes:(1 lsl 22) ()) in
      let live = Hashtbl.create 64 in
      List.iter
        (fun (size, do_free) ->
          if do_free && Hashtbl.length live > 0 then begin
            let victim = Hashtbl.fold (fun a _ _ -> Some a) live None in
            match victim with
            | Some a ->
                Kalloc.free k a;
                Hashtbl.remove live a
            | None -> ()
          end
          else
            match Kalloc.alloc k ~size with
            | None -> QCheck.Test.fail_report "arena exhausted"
            | Some a ->
                let len = Option.get (Kalloc.usable_size k a) in
                Hashtbl.iter
                  (fun a' len' ->
                    if a < a' + len' && a' < a + len then
                      QCheck.Test.fail_reportf "overlap: %#x+%d vs %#x+%d" a len a' len')
                  live;
                Hashtbl.replace live a len)
        ops;
      true)

let prop_avail_restored =
  QCheck.Test.make
    ~name:"kalloc: free-everything + reap restores the LMM byte for byte" ~count:100
    QCheck.(list (int_range 1 8192))
    (fun sizes ->
      let lmm = make_lmm ~bytes:(1 lsl 22) () in
      let before = Lmm.avail lmm ~flags:0 in
      let k = Kalloc.create lmm in
      let addrs = List.filter_map (fun size -> Kalloc.alloc k ~size) sizes in
      List.iter (Kalloc.free k) addrs;
      Kalloc.reap k;
      Lmm.avail lmm ~flags:0 = before && Kalloc.live_blocks k = 0)

(* ---- shared-mbuf mutation guards (the bugfixes) ---- *)

let test_m_write_ext_raises () =
  let backing = Bytes.make 512 'z' in
  let m = Mbuf.m_ext_wrap backing ~off:0 ~len:512 in
  Alcotest.check_raises "m_write on shared ext storage refuses"
    (Invalid_argument "m_write: external storage is shared") (fun () ->
      Mbuf.m_write m ~off:10 ~src:(Bytes.of_string "clobber") ~src_pos:0 ~len:7);
  Alcotest.(check char) "storage untouched" 'z' (Bytes.get backing 10);
  (* m_makewritable unshares the range; the write then lands in a private
     copy, never in the loaned bytes. *)
  Mbuf.m_makewritable m ~off:10 ~len:7;
  Mbuf.m_write m ~off:10 ~src:(Bytes.of_string "private") ~src_pos:0 ~len:7;
  Alcotest.(check char) "lender's bytes still untouched" 'z' (Bytes.get backing 10);
  Alcotest.(check string) "mbuf sees the write" "private"
    (Bytes.to_string (Mbuf.m_copydata m ~off:10 ~len:7))

let test_m_prepend_validates_first () =
  let m = Mbuf.m_gethdr () in
  ignore (Mbuf.m_put m 8);
  let allocated = !Mbuf.stats_allocated in
  let charged = ref 0 in
  (* Restore the machine-attribution sink afterwards — leaving it [None]
     would silently stop clock charging for every later suite. *)
  let saved = Cost.get_sink () in
  Cost.set_sink (Some (fun ns -> charged := !charged + ns));
  let raised =
    try
      ignore (Mbuf.m_prepend m 5000);
      false
    with Invalid_argument _ -> true
  in
  Cost.set_sink saved;
  Alcotest.(check bool) "oversized prepend rejected" true raised;
  Alcotest.(check int) "no mbuf allocated before validation" allocated
    !Mbuf.stats_allocated;
  Alcotest.(check int) "no cycles charged before validation" 0 !charged

let test_pool_reuse_and_sharing () =
  Mbuf.pool_reset ();
  let c = Mbuf.m_getclust () in
  let storage = c.Mbuf.m_data in
  c.Mbuf.m_len <- 64;
  (* A shared view (retransmit-style m_copym) pins the cluster: freeing
     one owner must NOT recycle storage the other still reads. *)
  let alias = Mbuf.m_copym c ~off:0 ~len:64 in
  Mbuf.m_free c;
  let c2 = Mbuf.m_getclust () in
  Alcotest.(check bool) "pinned cluster not recycled" true (c2.Mbuf.m_data != storage);
  Mbuf.m_freem alias;
  Mbuf.m_free c2;
  (* Last reference dropped: now the pool hands the same bytes back. *)
  let c3 = Mbuf.m_getclust () in
  Alcotest.(check bool) "released cluster recycled" true
    (c3.Mbuf.m_data == storage || c3.Mbuf.m_data == c2.Mbuf.m_data);
  Mbuf.m_free c3;
  Alcotest.check_raises "mbuf double free detected"
    (Invalid_argument "m_free: double free") (fun () -> Mbuf.m_free c3);
  Mbuf.pool_reset ()

(* Checksum parity: an mbuf boundary at an odd offset must fold exactly
   like flat storage (the donor's byte-swapped odd-boundary trick). *)
let test_cksum_odd_boundary_parity () =
  let flat = Bytes.init 13 (fun i -> Char.chr (17 * (i + 3) land 0xff)) in
  (* Split 7|6: the second fragment starts at an odd offset. *)
  let head = Mbuf.m_ext_wrap (Bytes.sub flat 0 7) ~off:0 ~len:7 in
  Mbuf.m_cat head (Mbuf.m_ext_wrap (Bytes.sub flat 7 6) ~off:0 ~len:6);
  Alcotest.(check int) "odd-boundary chain folds like flat bytes"
    (In_cksum.cksum_bytes flat ~off:0 ~len:13)
    (In_cksum.cksum_chain head ~off:0 ~len:13);
  (* And from an odd starting offset within the chain. *)
  Alcotest.(check int) "odd-offset range folds like flat bytes"
    (In_cksum.cksum_bytes flat ~off:3 ~len:9)
    (In_cksum.cksum_chain head ~off:3 ~len:9)

let suite =
  [ Alcotest.test_case "kalloc basics" `Quick test_basics;
    Alcotest.test_case "kalloc hit/miss stats + hysteresis" `Quick test_hit_miss_stats;
    Alcotest.test_case "kalloc reap restores the LMM" `Quick test_release_restores_lmm;
    Alcotest.test_case "kalloc free validation" `Quick test_free_validation;
    Alcotest.test_case "memdebug layered over kalloc" `Quick test_memdebug_over_kalloc;
    QCheck_alcotest.to_alcotest prop_no_overlap;
    QCheck_alcotest.to_alcotest prop_avail_restored;
    Alcotest.test_case "m_write guard on shared storage" `Quick test_m_write_ext_raises;
    Alcotest.test_case "m_prepend validates before allocating" `Quick
      test_m_prepend_validates_first;
    Alcotest.test_case "mbuf pool reuse honours sharing" `Quick test_pool_reuse_and_sharing;
    Alcotest.test_case "cksum parity at odd mbuf boundaries" `Quick
      test_cksum_odd_boundary_parity ]
