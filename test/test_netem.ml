(* The deterministic network emulator and the robustness it exists to
   exercise: seeded fault replay, partition windows, burst loss, targeted
   segment drops against all three stack configurations, checksum and
   duplicate-segment accounting, and the bounded/backoff ARP queues on
   both stacks. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

(* ------------------------------------------------------------------ *)
(* The emulator in isolation.                                          *)

let chaos_policy =
  { Netem.default_policy with
    loss = 0.1; corrupt = 0.1; duplicate = 0.1; reorder = 0.1;
    reorder_delay_ns = 40_000;
    ge =
      Some { Netem.p_good_bad = 0.2; p_bad_good = 0.4; loss_good = 0.0; loss_bad = 0.8 } }

let mk_frames n =
  List.init n (fun i ->
      Bytes.init (20 + ((i * 37) mod 1400)) (fun j -> Char.chr ((i + (3 * j)) land 0xff)))

let test_replay_determinism () =
  let run seed =
    let em = Netem.create ~seed ~policy:chaos_policy () in
    Netem.add_partition em ~from_ns:50_000 ~until_ns:60_000;
    let verdicts =
      List.mapi (fun i f -> Netem.judge em ~now:(i * 1_000) ~port:(i land 1) f)
        (mk_frames 300)
    in
    verdicts, Netem.counters em
  in
  let va, ca = run 123 in
  let vb, cb = run 123 in
  Alcotest.(check bool) "same seed: identical fault schedule" true (va = vb);
  Alcotest.(check bool) "same seed: identical counters" true (ca = cb);
  let vc, _ = run 124 in
  Alcotest.(check bool) "different seed: different schedule" true (va <> vc);
  (* The replayed schedule is non-trivial: every knob fired. *)
  Alcotest.(check bool) "loss happened" true (ca.Netem.lost > 0);
  Alcotest.(check bool) "burst loss happened" true (ca.Netem.burst_lost > 0);
  Alcotest.(check bool) "corruption happened" true (ca.Netem.corrupted > 0);
  Alcotest.(check bool) "duplication happened" true (ca.Netem.duplicated > 0);
  Alcotest.(check bool) "reordering happened" true (ca.Netem.reordered > 0);
  Alcotest.(check bool) "partition happened" true (ca.Netem.partitioned > 0)

let test_passthrough () =
  let em = Netem.create () in
  let frames = mk_frames 50 in
  List.iteri
    (fun i f ->
      match Netem.judge em ~now:(i * 10) ~port:0 f with
      | [ (f', 0) ] -> if not (f' == f) then Alcotest.fail "frame copied on clean path"
      | _ -> Alcotest.fail "clean frame not delivered exactly once, undelayed")
    frames;
  let c = Netem.counters em in
  Alcotest.(check int) "offered" 50 c.Netem.offered;
  Alcotest.(check int) "delivered" 50 c.Netem.delivered;
  Alcotest.(check int) "no faults on the clean path" 0
    (c.Netem.lost + c.Netem.burst_lost + c.Netem.filtered + c.Netem.partitioned
    + c.Netem.corrupted + c.Netem.duplicated + c.Netem.reordered)

let test_partition_window () =
  let em = Netem.create () in
  Netem.add_partition em ~from_ns:100 ~until_ns:200;
  let f = Bytes.make 60 'p' in
  Alcotest.(check bool) "before window: delivered" true
    (Netem.judge em ~now:50 ~port:0 f <> []);
  Alcotest.(check bool) "inside window: blackholed" true
    (Netem.judge em ~now:150 ~port:0 f = []);
  Alcotest.(check bool) "window end is exclusive" true
    (Netem.judge em ~now:200 ~port:0 f <> []);
  Alcotest.(check int) "partition counted" 1 (Netem.counters em).Netem.partitioned

let test_ge_burst_loss () =
  let em =
    Netem.create ~seed:9
      ~policy:
        { Netem.default_policy with
          ge =
            Some
              { Netem.p_good_bad = 0.2; p_bad_good = 0.5; loss_good = 0.0; loss_bad = 1.0 } }
      ()
  in
  let f = Bytes.make 100 'g' in
  for i = 0 to 399 do
    ignore (Netem.judge em ~now:i ~port:0 f)
  done;
  let c = Netem.counters em in
  Alcotest.(check bool) "bad state lost frames" true (c.Netem.burst_lost > 0);
  Alcotest.(check bool) "good state delivered frames" true (c.Netem.delivered > 0);
  Alcotest.(check int) "independent loss stayed off" 0 c.Netem.lost

let test_per_port_policy () =
  let em = Netem.create () in
  Netem.set_policy em ~port:1 { Netem.default_policy with loss = 1.0 };
  let f = Bytes.make 60 'd' in
  for i = 0 to 9 do
    Alcotest.(check bool) "port 0 stays clean" true (Netem.judge em ~now:i ~port:0 f <> []);
    Alcotest.(check bool) "port 1 loses everything" true
      (Netem.judge em ~now:i ~port:1 f = [])
  done

(* ------------------------------------------------------------------ *)
(* End-to-end: ttcp through the emulator, all three configurations.    *)

type config = Oskit | Freebsd | Linux

type sock = {
  send : bytes -> int -> int;
  recv : bytes -> int -> int;
  close : unit -> unit;
}

type stack_stats = {
  rexmits : unit -> int;
  badsum : unit -> int; (* IP + TCP checksum drops *)
  dups : unit -> int;
}

let bsd_stats (stack : Bsd_socket.stack) =
  let s = stack.Bsd_socket.tcp.Tcp.stats in
  { rexmits = (fun () -> s.Tcp.sndrexmitpack + s.Tcp.fastrexmit);
    badsum = (fun () -> stack.Bsd_socket.ip.Ip.badsum + s.Tcp.rcvbadsum);
    dups = (fun () -> s.Tcp.rcvdup) }

let linux_stats (stack : Linux_inet.stack) =
  { rexmits = (fun () -> stack.Linux_inet.rexmits);
    badsum = (fun () -> stack.Linux_inet.ipbadsum + stack.Linux_inet.tcpbadsum);
    dups = (fun () -> stack.Linux_inet.rcvdup) }

(* Prepare one host of the testbed in [config]; returns (serve, connect,
   stats) — the same role-neutral shape the benches use, so the three
   configurations interoperate freely on the shared wire. *)
let setup config host ~addr =
  match config with
  | Oskit ->
      let env, stack = Clientos.oskit_host host ~ip:addr ~mask in
      let serve ~port k =
        Clientos.spawn host ~name:"server" (fun () ->
            let fd = ok (Posix.socket env Io_if.Sock_stream) in
            ok (Posix.bind env fd { Io_if.sin_addr = addr; sin_port = port });
            ok (Posix.listen env fd ~backlog:2);
            let conn, _ = ok (Posix.accept env fd) in
            k
              { send = (fun b len -> ok (Posix.send env conn b ~pos:0 ~len));
                recv = (fun b len -> ok (Posix.recv env conn b ~pos:0 ~len));
                close = (fun () -> ignore (Posix.close env conn)) })
      in
      let connect ~dst ~port k =
        Clientos.spawn host ~name:"client" (fun () ->
            Kclock.sleep_ns 2_000_000;
            let fd = ok (Posix.socket env Io_if.Sock_stream) in
            ok (Posix.connect env fd { Io_if.sin_addr = dst; sin_port = port });
            k
              { send = (fun b len -> ok (Posix.send env fd b ~pos:0 ~len));
                recv = (fun b len -> ok (Posix.recv env fd b ~pos:0 ~len));
                close = (fun () -> ignore (Posix.shutdown env fd)) })
      in
      serve, connect, bsd_stats stack
  | Freebsd ->
      let stack = Clientos.freebsd_host host ~ip:addr ~mask in
      let of_tsock s =
        { send = (fun b len -> ok (Bsd_socket.so_send s ~buf:b ~pos:0 ~len));
          recv = (fun b len -> ok (Bsd_socket.so_recv s ~buf:b ~pos:0 ~len));
          close = (fun () -> ignore (Bsd_socket.so_close s)) }
      in
      let serve ~port k =
        Clientos.spawn host ~name:"server" (fun () ->
            let ls = Bsd_socket.tcp_socket stack in
            ok (Bsd_socket.so_bind ls ~port);
            ok (Bsd_socket.so_listen ls ~backlog:2);
            k (of_tsock (ok (Bsd_socket.so_accept ls))))
      in
      let connect ~dst ~port k =
        Clientos.spawn host ~name:"client" (fun () ->
            Kclock.sleep_ns 2_000_000;
            let s = Bsd_socket.tcp_socket stack in
            ok (Bsd_socket.so_connect s ~dst ~dport:port);
            k (of_tsock s))
      in
      serve, connect, bsd_stats stack
  | Linux ->
      let stack = Clientos.linux_host host ~ip:addr ~mask in
      let of_sock s =
        { send = (fun b len -> ok (Linux_inet.send stack s ~buf:b ~pos:0 ~len));
          recv = (fun b len -> ok (Linux_inet.recv stack s ~buf:b ~pos:0 ~len));
          close = (fun () -> Linux_inet.close stack s) }
      in
      let serve ~port k =
        Clientos.spawn host ~name:"server" (fun () ->
            let ls = Linux_inet.socket stack in
            Linux_inet.bind stack ls ~port;
            Linux_inet.listen stack ls ~backlog:2;
            k (of_sock (ok (Linux_inet.accept stack ls))))
      in
      let connect ~dst ~port k =
        Clientos.spawn host ~name:"client" (fun () ->
            Kclock.sleep_ns 2_000_000;
            let s = Linux_inet.socket stack in
            ok (Linux_inet.connect stack s ~dst ~dport:port);
            k (of_sock s))
      in
      serve, connect, linux_stats stack

(* Position-dependent payload: a duplicated, reordered, or damaged byte
   that leaked through TCP lands at the wrong offset and is caught. *)
let pattern pos = (pos * 131) land 0xff

(* ttcp from a [sender]-config host to a FreeBSD-native receiver under a
   fault plan; returns (byte_exact, sender_stats, receiver_stats, testbed). *)
let run_transfer ?netem ?fault ~sender ~blocks ~blocksize () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  (match netem with Some em -> Wire.set_netem tb.Clientos.wire (Some em) | None -> ());
  (match fault with
  | Some f -> Wire.set_fault_injector tb.Clientos.wire (Some f)
  | None -> ());
  let total = blocks * blocksize in
  let serve, _, rstats = setup Freebsd tb.Clientos.host_b ~addr:(ip "10.0.0.2") in
  let _, connect, sstats = setup sender tb.Clientos.host_a ~addr:(ip "10.0.0.1") in
  let recv_done = ref false and mismatches = ref 0 and received = ref 0 in
  serve ~port:6001 (fun s ->
      let buf = Bytes.create 16384 in
      let rec loop () =
        match s.recv buf 16384 with
        | 0 ->
            recv_done := true;
            s.close ()
        | n ->
            for i = 0 to n - 1 do
              if Char.code (Bytes.get buf i) <> pattern (!received + i) then incr mismatches
            done;
            received := !received + n;
            loop ()
      in
      loop ());
  connect ~dst:(ip "10.0.0.2") ~port:6001 (fun s ->
      let block = Bytes.create blocksize in
      for b = 0 to blocks - 1 do
        for i = 0 to blocksize - 1 do
          Bytes.set block i (Char.chr (pattern ((b * blocksize) + i)))
        done;
        if s.send block blocksize <> blocksize then Alcotest.fail "short send"
      done;
      s.close ());
  Clientos.run tb ~until:(fun () -> !recv_done);
  (!mismatches = 0 && !received = total), sstats, rstats, tb

(* Drop exactly one mid-flow data segment and one mid-flow ACK: the
   retransmission path must repair both without corrupting the stream. *)
let targeted_drop_test sender () =
  let big = ref 0 and small = ref 0 in
  let fault f =
    if Bytes.length f >= 1000 then begin
      incr big;
      !big = 8
    end
    else begin
      incr small;
      !small = 12
    end
  in
  let byte_exact, sstats, _, tb =
    run_transfer ~fault ~sender ~blocks:32 ~blocksize:4096 ()
  in
  Alcotest.(check bool) "delivery is byte-exact" true byte_exact;
  Alcotest.(check int) "exactly two frames dropped" 2 (Wire.frames_dropped tb.Clientos.wire);
  Alcotest.(check bool) "the lost data segment was retransmitted" true (sstats.rexmits () >= 1);
  Alcotest.(check int) "wire accounting: carried = delivered + dropped"
    (Wire.frames_carried tb.Clientos.wire)
    (Wire.frames_delivered tb.Clientos.wire + Wire.frames_dropped tb.Clientos.wire)

let test_corruption_detected () =
  let em =
    Netem.create ~seed:11
      ~policy:{ Netem.default_policy with corrupt = 0.05; corrupt_min_len = 1000 }
      ()
  in
  let byte_exact, _, rstats, _ =
    run_transfer ~netem:em ~sender:Freebsd ~blocks:32 ~blocksize:4096 ()
  in
  let c = Netem.counters em in
  Alcotest.(check bool) "frames were corrupted" true (c.Netem.corrupted >= 1);
  Alcotest.(check int) "every damaged frame caught by a checksum" c.Netem.corrupted
    (rstats.badsum ());
  Alcotest.(check bool) "stream survived byte-exact" true byte_exact

let test_duplicate_segments () =
  let em = Netem.create ~seed:5 ~policy:{ Netem.default_policy with duplicate = 0.1 } () in
  let byte_exact, _, rstats, tb =
    run_transfer ~netem:em ~sender:Freebsd ~blocks:16 ~blocksize:4096 ()
  in
  let c = Netem.counters em in
  Alcotest.(check bool) "duplicates injected" true (c.Netem.duplicated >= 1);
  Alcotest.(check bool) "receiver discarded repeated segments" true (rstats.dups () >= 1);
  Alcotest.(check bool) "stream survived byte-exact" true byte_exact;
  Alcotest.(check int) "wire accounting includes duplicate deliveries"
    (Wire.frames_carried tb.Clientos.wire + c.Netem.duplicated)
    (Wire.frames_delivered tb.Clientos.wire + Wire.frames_dropped tb.Clientos.wire)

(* ------------------------------------------------------------------ *)
(* ARP hardening.                                                      *)

(* Twenty packets for a host that does not exist: the pending queue holds
   16 (drop-head beyond that), requests back off 0.5 s -> 8 s, and when the
   retries are exhausted every queued waiter is failed so nothing leaks. *)
let test_arp_bounded_queue_and_give_up () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let drops = ref 0 and resolved = ref 0 in
  Clientos.spawn tb.Clientos.host_a (fun () ->
      for _ = 1 to 20 do
        Arp.resolve sa.Bsd_socket.arp (ip "10.0.0.99")
          ~on_drop:(fun () -> incr drops)
          (fun _ -> incr resolved)
      done);
  Clientos.run tb ~until:(fun () -> !drops >= 20);
  let a = sa.Bsd_socket.arp in
  Alcotest.(check int) "every waiter was failed, none leaked" 20 !drops;
  Alcotest.(check int) "none resolved" 0 !resolved;
  Alcotest.(check int) "queue overflow dropped the oldest four" 4 a.Arp.waiters_dropped;
  Alcotest.(check int) "one terminal resolution failure" 1 a.Arp.resolve_failures;
  Alcotest.(check int) "five requests: initial + four backoff retries" 5 a.Arp.requests_sent;
  Alcotest.(check bool) "gave up only after the full backoff schedule" true
    (World.now tb.Clientos.world >= 15_000_000_000)

(* A partition that swallows the first two ARP requests: the third (after
   0.5 s + 1 s of backoff) resolves, and the connection proceeds. *)
let test_arp_retry_recovers_after_partition () =
  let em = Netem.create ~seed:3 () in
  Netem.add_partition em ~from_ns:0 ~until_ns:1_200_000_000;
  let byte_exact, sstats, _, tb =
    run_transfer ~netem:em ~sender:Freebsd ~blocks:4 ~blocksize:1024 ()
  in
  ignore sstats;
  Alcotest.(check bool) "transfer completed byte-exact" true byte_exact;
  let c = Netem.counters em in
  Alcotest.(check bool) "the partition really ate frames" true (c.Netem.partitioned >= 2);
  (* The client ARPs for the server: request at ~2 ms and the 0.5 s retry
     both land in the partition; the 1.5 s retry gets through. *)
  Alcotest.(check bool) "resolution needed the backoff retries" true
    (Wire.frames_dropped tb.Clientos.wire >= 2)

(* The Linux stack's backstop: connecting to a host ARP can never resolve
   must end in Timedout — not an infinite retransmit loop — with the ARP
   give-up and the retransmit give-up both accounted. *)
let test_linux_unreachable_times_out () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c59x", "lance") () in
  let sa = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let result = ref None in
  Clientos.spawn tb.Clientos.host_a (fun () ->
      let s = Linux_inet.socket sa in
      result := Some (Linux_inet.connect sa s ~dst:(ip "10.0.0.77") ~dport:9));
  Clientos.run tb ~until:(fun () -> !result <> None);
  (match !result with
  | Some (Error Error.Timedout) -> ()
  | Some (Ok ()) -> Alcotest.fail "connect to unreachable host succeeded?"
  | Some (Error e) -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | None -> Alcotest.fail "no outcome");
  Alcotest.(check int) "arp abandoned the resolution" 1 sa.Linux_inet.arp_failures;
  Alcotest.(check int) "rexmt backstop reset the connection" 1 sa.Linux_inet.rexmt_give_ups

let suite =
  [ Alcotest.test_case "seeded replay determinism" `Quick test_replay_determinism;
    Alcotest.test_case "clean passthrough" `Quick test_passthrough;
    Alcotest.test_case "partition window" `Quick test_partition_window;
    Alcotest.test_case "gilbert-elliott burst loss" `Quick test_ge_burst_loss;
    Alcotest.test_case "per-port asymmetric policy" `Quick test_per_port_policy;
    Alcotest.test_case "targeted drop: freebsd sender" `Quick (targeted_drop_test Freebsd);
    Alcotest.test_case "targeted drop: oskit sender" `Quick (targeted_drop_test Oskit);
    Alcotest.test_case "targeted drop: linux sender" `Quick (targeted_drop_test Linux);
    Alcotest.test_case "corruption caught by checksums" `Quick test_corruption_detected;
    Alcotest.test_case "duplicate segments discarded" `Quick test_duplicate_segments;
    Alcotest.test_case "arp bounded queue and give-up" `Quick
      test_arp_bounded_queue_and_give_up;
    Alcotest.test_case "arp retry recovers after partition" `Quick
      test_arp_retry_recovers_after_partition;
    Alcotest.test_case "linux unreachable host times out" `Quick
      test_linux_unreachable_times_out ]
