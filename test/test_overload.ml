(* Overload survival: SYN-flood defense (per-listener syncache + stateless
   SYN cookies), memory-pressure backpressure (the deterministic
   allocation-failure injector and the Nomem audit behind it), the
   TIME_WAIT cap, error-response rate limiting, and the httpd's
   slow-client guards.  Everything is default-off, so the last test pins
   the flags-off world untouched and the rest turn one knob at a time. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

let fresh_testbed ?latency_ns () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  Clientos.make_testbed ~models:("3c905", "tulip") ?latency_ns ()

(* Set the overload knobs for [f], restoring the seed defaults after, and
   re-seed the allocation injector on both edges so no test leaks failure
   state into its neighbours.  Stacks built inside [f] see the knobs at
   creation time, which matters for the token buckets (they start full). *)
let with_overload ?(syn_defense = false) ?(syncache_size = 64) ?(tw_max = 0)
    ?(icmp_ratelimit = 0) ?(alloc_fail_prob = 0.0) ?(alloc_fail_seed = 1)
    ?(alloc_fail_burst = 1) ?(httpd_guard = false)
    ?(httpd_header_deadline_ns = 1_000_000_000) ?(httpd_max_header_bytes = 4096)
    ?(httpd_shed_hiwat = 0) f =
  let c = Cost.config in
  let saved =
    ( c.Cost.syn_defense, c.Cost.syncache_size, c.Cost.tw_max, c.Cost.icmp_ratelimit,
      c.Cost.alloc_fail_prob, c.Cost.alloc_fail_seed, c.Cost.alloc_fail_burst,
      ( c.Cost.httpd_guard, c.Cost.httpd_header_deadline_ns,
        c.Cost.httpd_max_header_bytes, c.Cost.httpd_shed_hiwat ) )
  in
  c.Cost.syn_defense <- syn_defense;
  c.Cost.syncache_size <- syncache_size;
  c.Cost.tw_max <- tw_max;
  c.Cost.icmp_ratelimit <- icmp_ratelimit;
  c.Cost.alloc_fail_prob <- alloc_fail_prob;
  c.Cost.alloc_fail_seed <- alloc_fail_seed;
  c.Cost.alloc_fail_burst <- alloc_fail_burst;
  c.Cost.httpd_guard <- httpd_guard;
  c.Cost.httpd_header_deadline_ns <- httpd_header_deadline_ns;
  c.Cost.httpd_max_header_bytes <- httpd_max_header_bytes;
  c.Cost.httpd_shed_hiwat <- httpd_shed_hiwat;
  Memfault.reset ();
  Fun.protect
    ~finally:(fun () ->
      let sd, sz, tw, rl, ap, asd, ab, (hg, hd, hm, hs) = saved in
      c.Cost.syn_defense <- sd;
      c.Cost.syncache_size <- sz;
      c.Cost.tw_max <- tw;
      c.Cost.icmp_ratelimit <- rl;
      c.Cost.alloc_fail_prob <- ap;
      c.Cost.alloc_fail_seed <- asd;
      c.Cost.alloc_fail_burst <- ab;
      c.Cost.httpd_guard <- hg;
      c.Cost.httpd_header_deadline_ns <- hd;
      c.Cost.httpd_max_header_bytes <- hm;
      c.Cost.httpd_shed_hiwat <- hs;
      Memfault.reset ())
    f

(* Craft one option-less TCP segment and push it out through [cstack]'s IP
   layer with an arbitrary (spoofable) source address — the attacker's
   view of the wire. *)
let send_raw_tcp cstack ~src ~sport ~dst ~dport ~seq ~ack ~flags =
  let m = Mbuf.m_gethdr () in
  ignore (Mbuf.m_put m 20);
  let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
  Bytes.set_uint16_be d o sport;
  Bytes.set_uint16_be d (o + 2) dport;
  Bytes.set_int32_be d (o + 4) (Int32.of_int (seq land 0xffffffff));
  Bytes.set_int32_be d (o + 8) (Int32.of_int (ack land 0xffffffff));
  Bytes.set d (o + 12) (Char.chr ((20 / 4) lsl 4));
  Bytes.set d (o + 13) (Char.chr flags);
  Bytes.set_uint16_be d (o + 14) 8192;
  Bytes.set_uint16_be d (o + 16) 0;
  Bytes.set_uint16_be d (o + 18) 0;
  let sum =
    In_cksum.cksum_chain m ~off:0 ~len:20
      ~init:(In_cksum.pseudo_header ~src ~dst ~proto:Ip.proto_tcp ~len:20)
  in
  Bytes.set_uint16_be d (o + 16) (if sum = 0 then 0xffff else sum);
  Ip.output cstack.Bsd_socket.ip ~proto:Ip.proto_tcp ~src ~dst m

(* ------------------------------------------------------------------ *)
(* SYN cookies: the ISS round-trips through check_cookie on both stacks
   and decodes to the right MSS class; a perturbed 4-tuple rejects.      *)

let cookie_rigs =
  lazy
    (let tb = fresh_testbed () in
     let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
     let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
     (sa.Bsd_socket.tcp, sb))

let prop_cookie_roundtrip =
  QCheck.Test.make ~name:"overload: SYN cookie round-trips on both stacks" ~count:100
    QCheck.(
      quad (int_bound 0x0fffffff) (int_range 1 65535) (int_range 1 65535)
        (int_range 0 20000))
    (fun (addr, rport, lport, mss) ->
      let bsd, lx = Lazy.force cookie_rigs in
      let raddr = Int32.of_int addr in
      let expect = Tcp.cookie_mss_classes.(Tcp.cookie_mss_class mss) in
      let bc = Tcp.syn_cookie bsd ~raddr ~rport ~lport ~mss in
      let lc = Linux_inet.syn_cookie lx ~raddr ~rport ~lport ~mss in
      Tcp.check_cookie bsd ~raddr ~rport ~lport ~iss:bc = Some expect
      && Linux_inet.check_cookie lx ~raddr ~rport ~lport ~iss:lc = Some expect
      (* the class never overshoots the peer's offer (below the smallest
         class it clamps up to 536, the protocol minimum) *)
      && expect <= max 536 mss
      (* a different remote port must not validate (2^-30 collision odds) *)
      && Tcp.check_cookie bsd ~raddr ~rport:(1 + (rport mod 65535)) ~lport ~iss:bc = None)

(* ------------------------------------------------------------------ *)
(* Syncache: bounded, oldest evicted first, and a closing listener frees
   every cached half-open handshake (satellite fix) — both stacks.       *)

let test_syncache_eviction_and_listener_close () =
  with_overload ~syn_defense:true ~syncache_size:4 (fun () ->
      let tb = fresh_testbed () in
      let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
      let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
      let bsd_srcs = ref [] and bsd_after_close = ref (-1) in
      let lx_srcs = ref [] and lx_after_close = ref (-1) in
      let done_flag = ref false in
      Clientos.spawn tb.Clientos.host_a ~name:"bsd-rig" (fun () ->
          let ls = Bsd_socket.tcp_socket sa in
          ok (Bsd_socket.so_bind ls ~port:80);
          ok (Bsd_socket.so_listen ls ~backlog:2);
          let pcb = ls.Bsd_socket.pcb in
          let tcp = sa.Bsd_socket.tcp in
          for i = 1 to 6 do
            Tcp.syncache_add tcp pcb
              ~src:(ip (Printf.sprintf "10.0.0.%d" (100 + i)))
              ~sport:4000 ~seq:(1000 * i) ~mss:(Some 1460)
          done;
          bsd_srcs :=
            List.map
              (fun e -> (Int32.to_int e.Tcp.sc_raddr land 0xff) - 100)
              pcb.Tcp.syn_cache;
          ignore (Bsd_socket.so_close ls);
          bsd_after_close := List.length pcb.Tcp.syn_cache);
      Clientos.spawn tb.Clientos.host_b ~name:"lx-rig" (fun () ->
          let ls = Linux_inet.socket sb in
          Linux_inet.bind sb ls ~port:80;
          Linux_inet.listen sb ls ~backlog:2;
          for i = 1 to 6 do
            Linux_inet.lx_syncache_add sb ls
              ~src:(ip (Printf.sprintf "10.0.0.%d" (100 + i)))
              ~sport:4000 ~seq:(1000 * i) ~mss:(Some 1460)
          done;
          lx_srcs :=
            List.map
              (fun e -> (Int32.to_int e.Linux_inet.lsc_raddr land 0xff) - 100)
              ls.Linux_inet.syn_cache;
          Linux_inet.close sb ls;
          lx_after_close := List.length ls.Linux_inet.syn_cache;
          done_flag := true);
      Clientos.run tb ~until:(fun () -> !done_flag);
      Alcotest.(check bool) "rigs ran" true !done_flag;
      (* Newest-first list capped at 4: the two oldest (1, 2) are gone. *)
      Alcotest.(check (list int)) "bsd: oldest evicted first" [ 6; 5; 4; 3 ] !bsd_srcs;
      Alcotest.(check (list int)) "linux: oldest evicted first" [ 6; 5; 4; 3 ] !lx_srcs;
      let st = sa.Bsd_socket.tcp.Tcp.stats in
      Alcotest.(check int) "bsd: all six cached" 6 st.Tcp.syncache_added;
      Alcotest.(check int) "bsd: close freed the cache" 0 !bsd_after_close;
      Alcotest.(check int) "bsd: evictions = 2 overflow + 4 at close" 6
        st.Tcp.syncache_evicted;
      Alcotest.(check int) "linux: all six cached" 6 sb.Linux_inet.syncache_added;
      Alcotest.(check int) "linux: close freed the cache" 0 !lx_after_close;
      Alcotest.(check int) "linux: evictions = 2 overflow + 4 at close" 6
        sb.Linux_inet.syncache_evicted)

(* ------------------------------------------------------------------ *)
(* The headline property: a 10x SYN flood from spoofed sources leaves a
   defended listener fully usable — every legitimate client connects and
   gets its echo back, on both stacks.                                   *)

let flood_then_legit ~linux () =
  with_overload ~syn_defense:true ~syncache_size:16 (fun () ->
      let tb = fresh_testbed () in
      let cstack = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
      let served = ref 0 and echoed = ref 0 and finished = ref 0 in
      let legit = 4 and flood = 40 in
      let counters =
        if linux then begin
          let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
          Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
              let ls = Linux_inet.socket sb in
              Linux_inet.bind sb ls ~port:7200;
              Linux_inet.listen sb ls ~backlog:4;
              for _ = 1 to legit do
                let c = ok (Linux_inet.accept sb ls) in
                let buf = Bytes.create 64 in
                let n = ok (Linux_inet.recv sb c ~buf ~pos:0 ~len:64) in
                ignore (ok (Linux_inet.send sb c ~buf ~pos:0 ~len:n));
                Linux_inet.close sb c;
                incr served
              done)
            ;
          fun () ->
            ( sb.Linux_inet.syncache_added,
              sb.Linux_inet.syncache_completed + sb.Linux_inet.syncookies_validated,
              sb.Linux_inet.listen_overflow )
        end
        else begin
          let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
          Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
              let ls = Bsd_socket.tcp_socket sb in
              ok (Bsd_socket.so_bind ls ~port:7200);
              ok (Bsd_socket.so_listen ls ~backlog:4);
              for _ = 1 to legit do
                let c = ok (Bsd_socket.so_accept ls) in
                let buf = Bytes.create 64 in
                let n = ok (Bsd_socket.so_recv c ~buf ~pos:0 ~len:64) in
                ignore (ok (Bsd_socket.so_send c ~buf ~pos:0 ~len:n));
                ignore (Bsd_socket.so_close c);
                incr served
              done);
          let st = sb.Bsd_socket.tcp.Tcp.stats in
          fun () ->
            ( st.Tcp.syncache_added,
              st.Tcp.syncache_completed + st.Tcp.syncookies_validated,
              st.Tcp.listen_overflow )
        end
      in
      (* The flood: 10x the legitimate load, every SYN from a different
         spoofed address, so the SYN-ACKs go to hosts that do not exist. *)
      Clientos.spawn tb.Clientos.host_a ~name:"flood" (fun () ->
          Kclock.sleep_ns 1_000_000;
          (* One SYN first, then a beat: resolves the attacker's ARP entry
             for the target so the burst below isn't throttled by the
             bounded ARP waiter queue (PR 2's drop-head bound). *)
          send_raw_tcp cstack ~src:(ip "10.0.0.99") ~sport:1999 ~dst:(ip "10.0.0.2")
            ~dport:7200 ~seq:1 ~ack:0 ~flags:Tcp.th_syn;
          Kclock.sleep_ns 500_000;
          for i = 0 to flood - 1 do
            send_raw_tcp cstack
              ~src:(ip (Printf.sprintf "10.0.0.%d" (100 + i)))
              ~sport:(2000 + i) ~dst:(ip "10.0.0.2") ~dport:7200 ~seq:(7 * i)
              ~ack:0 ~flags:Tcp.th_syn
          done);
      for i = 0 to legit - 1 do
        Clientos.spawn tb.Clientos.host_a ~name:(Printf.sprintf "legit%d" i) (fun () ->
            Kclock.sleep_ns (3_000_000 + (i * 500_000));
            let s = Bsd_socket.tcp_socket cstack in
            ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:7200);
            let msg = Bytes.of_string (Printf.sprintf "ping-%d" i) in
            ignore (ok (Bsd_socket.so_send s ~buf:msg ~pos:0 ~len:(Bytes.length msg)));
            let buf = Bytes.create 64 in
            (match Bsd_socket.so_recv s ~buf ~pos:0 ~len:64 with
            | Ok n when n > 0 && Bytes.sub buf 0 n = Bytes.sub msg 0 n -> incr echoed
            | _ -> ());
            ignore (Bsd_socket.so_close s);
            incr finished)
      done;
      Clientos.run tb ~until:(fun () -> !finished >= legit);
      let added, completed, overflow = counters () in
      Alcotest.(check int) "every legitimate client served" legit !served;
      Alcotest.(check int) "every echo byte-exact" legit !echoed;
      Alcotest.(check bool)
        (Printf.sprintf "flood landed in the syncache (%d added)" added)
        true
        (added >= flood);
      Alcotest.(check bool) "legit handshakes completed from cache or cookie" true
        (completed >= legit);
      Alcotest.(check int) "embryonic flood never overflowed the backlog" 0 overflow)

let test_flood_then_legit_bsd () = flood_then_legit ~linux:false ()
let test_flood_then_legit_linux () = flood_then_legit ~linux:true ()

(* ------------------------------------------------------------------ *)
(* Stateless completion: an ACK whose cookie checks out builds the
   connection with no cached state at all; a bogus ACK is rejected.      *)

let cookie_completion ~linux () =
  with_overload ~syn_defense:true (fun () ->
      let tb = fresh_testbed () in
      let cstack = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
      let accepted_port = ref 0 and done_flag = ref false in
      let raddr = ip "10.0.0.77" and rport = 5555 and lport = 7300 in
      let validated, rejected, cookie_of =
        if linux then begin
          let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
          Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
              let ls = Linux_inet.socket sb in
              Linux_inet.bind sb ls ~port:lport;
              Linux_inet.listen sb ls ~backlog:4;
              let c = ok (Linux_inet.accept sb ls) in
              accepted_port := c.Linux_inet.rport;
              done_flag := true);
          ( (fun () -> sb.Linux_inet.syncookies_validated),
            (fun () -> sb.Linux_inet.syncookies_rejected),
            fun () -> Linux_inet.syn_cookie sb ~raddr ~rport ~lport ~mss:1460 )
        end
        else begin
          let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
          Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
              let ls = Bsd_socket.tcp_socket sb in
              ok (Bsd_socket.so_bind ls ~port:lport);
              ok (Bsd_socket.so_listen ls ~backlog:4);
              let c = ok (Bsd_socket.so_accept ls) in
              accepted_port := c.Bsd_socket.pcb.Tcp.rport;
              done_flag := true);
          let st = sb.Bsd_socket.tcp.Tcp.stats in
          ( (fun () -> st.Tcp.syncookies_validated),
            (fun () -> st.Tcp.syncookies_rejected),
            fun () -> Tcp.syn_cookie sb.Bsd_socket.tcp ~raddr ~rport ~lport ~mss:1460 )
        end
      in
      (* The cookie the server would have answered with, recomputed from
         its secret — then echoed (+1) in a bare ACK, as if the SYN-ACK
         had been received by a client whose cache entry was long evicted. *)
      Clientos.spawn tb.Clientos.host_a ~name:"ack" (fun () ->
          Kclock.sleep_ns 1_000_000;
          let iss = cookie_of () in
          (* Bogus completion first (the run ends once the valid one is
             accepted): the hash cannot match, so it must be rejected. *)
          send_raw_tcp cstack ~src:(ip "10.0.0.78") ~sport:rport
            ~dst:(ip "10.0.0.2") ~dport:lport ~seq:99 ~ack:1234567
            ~flags:Tcp.th_ack;
          (* Then the valid one. *)
          send_raw_tcp cstack ~src:raddr ~sport:rport ~dst:(ip "10.0.0.2")
            ~dport:lport ~seq:424243 ~ack:(iss + 1) ~flags:Tcp.th_ack);
      Clientos.run tb ~until:(fun () -> !done_flag);
      Alcotest.(check bool) "cookie ACK produced an accepted connection" true !done_flag;
      Alcotest.(check int) "the accepted connection is the cookie's 4-tuple" rport
        !accepted_port;
      Alcotest.(check int) "exactly one cookie validated" 1 (validated ());
      Alcotest.(check bool) "the bogus ACK was rejected" true (rejected () >= 1))

let test_cookie_completion_bsd () = cookie_completion ~linux:false ()
let test_cookie_completion_linux () = cookie_completion ~linux:true ()

(* ------------------------------------------------------------------ *)
(* Error-response rate limiting: RSTs answering unclaimed segments and
   ICMP port unreachables both come out of a token bucket of depth
   [icmp_ratelimit], so a probe storm cannot amplify.                    *)

let test_rst_rate_limit_both_stacks () =
  with_overload ~icmp_ratelimit:3 (fun () ->
      let tb = fresh_testbed () in
      let cstack = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
      let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
      let done_flag = ref false in
      Clientos.spawn tb.Clientos.host_a ~name:"probe" (fun () ->
          Kclock.sleep_ns 1_000_000;
          for i = 0 to 9 do
            (* No listener anywhere near port 7400: every probe earns a
               RST — until the bucket runs dry. *)
            send_raw_tcp cstack ~src:(ip "10.0.0.1") ~sport:(3000 + i)
              ~dst:(ip "10.0.0.2") ~dport:7400 ~seq:(11 * i) ~ack:0
              ~flags:Tcp.th_syn;
            (* ... and the same storm back at the BSD host. *)
            send_raw_tcp cstack ~src:(ip "10.0.0.2") ~sport:(3000 + i)
              ~dst:(ip "10.0.0.1") ~dport:7400 ~seq:(11 * i) ~ack:0
              ~flags:Tcp.th_syn
          done;
          Kclock.sleep_ns 5_000_000;
          done_flag := true);
      Clientos.run tb ~until:(fun () -> !done_flag);
      Alcotest.(check int) "linux: bucket depth 3 lets 3 through, limits 7" 7
        sb.Linux_inet.rst_ratelimited;
      Alcotest.(check int) "bsd: bucket depth 3 lets 3 through, limits 7" 7
        cstack.Bsd_socket.tcp.Tcp.stats.Tcp.rst_ratelimited)

let test_udp_unreachable_rate_limit () =
  with_overload ~icmp_ratelimit:3 (fun () ->
      let tb = fresh_testbed () in
      let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
      let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
      let done_flag = ref false in
      Clientos.spawn tb.Clientos.host_a ~name:"probe" (fun () ->
          Kclock.sleep_ns 1_000_000;
          let s = Bsd_socket.udp_socket sa in
          let msg = Bytes.of_string "anyone home?" in
          for _ = 0 to 9 do
            ignore
              (Bsd_socket.uso_sendto s ~buf:msg ~pos:0 ~len:(Bytes.length msg)
                 ~dst:(ip "10.0.0.2") ~dport:7401)
          done;
          Kclock.sleep_ns 5_000_000;
          done_flag := true);
      Clientos.run tb ~until:(fun () -> !done_flag);
      let udp = sb.Bsd_socket.udp in
      Alcotest.(check int) "all ten probes missed demux" 10 udp.Udp.noport;
      Alcotest.(check int) "three unreachables sent" 3 udp.Udp.unreach_sent;
      Alcotest.(check int) "seven suppressed by the bucket" 7 udp.Udp.icmp_ratelimited)

(* ------------------------------------------------------------------ *)
(* TIME_WAIT cap: with tw_max = 2, five sequential active closes keep at
   most two sockets parked in TIME_WAIT — the oldest are reclaimed, and
   new connections keep working throughout.  Both stacks, client side
   (the active closer owns the TIME_WAIT).                               *)

let tw_cap ~linux () =
  with_overload ~tw_max:2 (fun () ->
      let tb = fresh_testbed () in
      let rounds = 5 in
      let served = ref 0 in
      let tw_now, reclaimed =
        if linux then begin
          let sa = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
          let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
          Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
              let ls = Linux_inet.socket sb in
              Linux_inet.bind sb ls ~port:7500;
              Linux_inet.listen sb ls ~backlog:2;
              for _ = 1 to rounds do
                let c = ok (Linux_inet.accept sb ls) in
                let buf = Bytes.create 16 in
                let rec drain () =
                  if ok (Linux_inet.recv sb c ~buf ~pos:0 ~len:16) > 0 then drain ()
                in
                drain ();
                Linux_inet.close sb c
              done);
          Clientos.spawn tb.Clientos.host_a ~name:"cli" (fun () ->
              Kclock.sleep_ns 1_000_000;
              for _ = 1 to rounds do
                let s = Linux_inet.socket sa in
                ok (Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:7500);
                let b = Bytes.of_string "x" in
                ignore (ok (Linux_inet.send sa s ~buf:b ~pos:0 ~len:1));
                (* Active close: this side owns the TIME_WAIT. *)
                Linux_inet.close sa s;
                Kclock.sleep_ns 2_000_000;
                incr served
              done);
          ( (fun () -> List.length sa.Linux_inet.tw_list),
            fun () -> sa.Linux_inet.time_wait_reclaimed )
        end
        else begin
          let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
          let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
          Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
              let ls = Bsd_socket.tcp_socket sb in
              ok (Bsd_socket.so_bind ls ~port:7500);
              ok (Bsd_socket.so_listen ls ~backlog:2);
              for _ = 1 to rounds do
                let c = ok (Bsd_socket.so_accept ls) in
                let buf = Bytes.create 16 in
                let rec drain () =
                  if ok (Bsd_socket.so_recv c ~buf ~pos:0 ~len:16) > 0 then drain ()
                in
                drain ();
                ignore (Bsd_socket.so_close c)
              done);
          Clientos.spawn tb.Clientos.host_a ~name:"cli" (fun () ->
              Kclock.sleep_ns 1_000_000;
              for _ = 1 to rounds do
                let s = Bsd_socket.tcp_socket sa in
                ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:7500);
                let b = Bytes.of_string "x" in
                ignore (ok (Bsd_socket.so_send s ~buf:b ~pos:0 ~len:1));
                ignore (Bsd_socket.so_close s);
                Kclock.sleep_ns 2_000_000;
                incr served
              done);
          ( (fun () -> List.length sa.Bsd_socket.tcp.Tcp.tw_list),
            fun () -> sa.Bsd_socket.tcp.Tcp.stats.Tcp.time_wait_reclaimed )
        end
      in
      Clientos.run tb ~until:(fun () -> !served >= rounds);
      Alcotest.(check int) "all five rounds completed" rounds !served;
      Alcotest.(check bool)
        (Printf.sprintf "at most tw_max sockets in TIME_WAIT (%d)" (tw_now ()))
        true
        (tw_now () <= 2);
      Alcotest.(check bool)
        (Printf.sprintf "the overflow was reclaimed (%d)" (reclaimed ()))
        true
        (reclaimed () >= rounds - 2 - 1))

let test_tw_cap_bsd () = tw_cap ~linux:false ()
let test_tw_cap_linux () = tw_cap ~linux:true ()

(* ------------------------------------------------------------------ *)
(* The allocation-failure soak: with the injector firing on 0.1%-1% of
   pooled allocations (in bursts of 2), a bulk transfer on either stack
   still completes byte-exact and no Nomem ever escapes as an exception
   (an escape would kill the spawned thread and the transfer would never
   finish).  The client code here is deliberately backpressure-honest:
   partial sends and Nomem errors are retried, the way a caller that
   receives ENOBUFS has to.                                              *)

let pattern i = (i * 131) lxor (i lsr 8) land 0xff

let soak_transfer ~linux ~prob ~burst ~seed ~bytes () =
  with_overload ~alloc_fail_prob:prob ~alloc_fail_burst:burst ~alloc_fail_seed:seed
    (fun () ->
      let tb = fresh_testbed () in
      let mism = ref 0 and received = ref 0 and done_flag = ref false in
      let send_all send buf len =
        let rec go off =
          if off < len then
            match send ~buf ~pos:off ~len:(len - off) with
            | Ok n when n > 0 -> go (off + n)
            | Ok _ -> Kclock.sleep_ns 1_000_000; go off
            | Error Error.Nomem -> Kclock.sleep_ns 5_000_000; go off
            | Error e -> Alcotest.failf "send failed: %s" (Error.to_string e)
        in
        go 0
      in
      let fill block sent n =
        for i = 0 to n - 1 do
          Bytes.set block i (Char.chr (pattern (sent + i)))
        done
      in
      if linux then begin
        let sa = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
        let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
        Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
            let ls = Linux_inet.socket sb in
            Linux_inet.bind sb ls ~port:7600;
            Linux_inet.listen sb ls ~backlog:2;
            let c = ok (Linux_inet.accept sb ls) in
            let buf = Bytes.create 4096 in
            let rec loop () =
              match ok (Linux_inet.recv sb c ~buf ~pos:0 ~len:4096) with
              | 0 -> Linux_inet.close sb c; done_flag := true
              | n ->
                  for i = 0 to n - 1 do
                    if Char.code (Bytes.get buf i) <> pattern (!received + i) then
                      incr mism
                  done;
                  received := !received + n;
                  loop ()
            in
            loop ());
        Clientos.spawn tb.Clientos.host_a ~name:"cli" (fun () ->
            Kclock.sleep_ns 1_000_000;
            (* connect can legitimately refuse with Nomem under injection:
               retry with a fresh socket, as a real caller would. *)
            let rec connect tries =
              let s = Linux_inet.socket sa in
              match Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:7600 with
              | Ok () -> s
              | Error _ when tries < 20 -> Kclock.sleep_ns 10_000_000; connect (tries + 1)
              | Error e -> Alcotest.failf "connect: %s" (Error.to_string e)
            in
            let s = connect 0 in
            let block = Bytes.create 4096 in
            let rec push sent =
              if sent < bytes then begin
                let n = min 4096 (bytes - sent) in
                fill block sent n;
                send_all (fun ~buf ~pos ~len -> Linux_inet.send sa s ~buf ~pos ~len)
                  block n;
                push (sent + n)
              end
            in
            push 0;
            Linux_inet.close sa s)
      end
      else begin
        let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
        let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
        Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
            let ls = Bsd_socket.tcp_socket sb in
            ok (Bsd_socket.so_bind ls ~port:7600);
            ok (Bsd_socket.so_listen ls ~backlog:2);
            let c = ok (Bsd_socket.so_accept ls) in
            let buf = Bytes.create 4096 in
            let rec loop () =
              match ok (Bsd_socket.so_recv c ~buf ~pos:0 ~len:4096) with
              | 0 -> ignore (Bsd_socket.so_close c); done_flag := true
              | n ->
                  for i = 0 to n - 1 do
                    if Char.code (Bytes.get buf i) <> pattern (!received + i) then
                      incr mism
                  done;
                  received := !received + n;
                  loop ()
            in
            loop ());
        Clientos.spawn tb.Clientos.host_a ~name:"cli" (fun () ->
            Kclock.sleep_ns 1_000_000;
            let rec connect tries =
              let s = Bsd_socket.tcp_socket sa in
              match Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:7600 with
              | Ok () -> s
              | Error _ when tries < 20 -> Kclock.sleep_ns 10_000_000; connect (tries + 1)
              | Error e -> Alcotest.failf "connect: %s" (Error.to_string e)
            in
            let s = connect 0 in
            let block = Bytes.create 4096 in
            let rec push sent =
              if sent < bytes then begin
                let n = min 4096 (bytes - sent) in
                fill block sent n;
                send_all (fun ~buf ~pos ~len -> Bsd_socket.so_send s ~buf ~pos ~len)
                  block n;
                push (sent + n)
              end
            in
            push 0;
            ignore (Bsd_socket.so_close s))
      end;
      Clientos.run tb ~until:(fun () -> !done_flag);
      Alcotest.(check bool) "transfer completed" true !done_flag;
      Alcotest.(check int) "no byte mismatches" 0 !mism;
      Alcotest.(check int) "every byte arrived" bytes !received;
      Alcotest.(check bool) "the injector was drawing verdicts" true
        (Memfault.draws () > 0);
      Memfault.failures ())

let test_alloc_soak () =
  (* At 0.1% a single 64KB run may legitimately draw no failure from its
     seed; what must hold is that every run is byte-exact and that the
     sweep as a whole injected real failures. *)
  let total =
    List.fold_left
      (fun acc (linux, prob, seed) ->
        acc + soak_transfer ~linux ~prob ~burst:2 ~seed ~bytes:(64 * 1024) ())
      0
      [ (false, 0.001, 42); (false, 0.01, 43); (true, 0.001, 44); (true, 0.01, 45) ]
  in
  Alcotest.(check bool) "the sweep injected failures" true (total > 0)

(* ------------------------------------------------------------------ *)
(* httpd slow-client guards (Cost.config.httpd_guard): a Slowloris that
   never finishes its headers is cut at the deadline, a client that
   drip-feeds unbounded header bytes is cut at the byte bound, and a
   well-behaved-but-slow client sails through both guards.               *)

let file_bytes = 1024

let make_root () =
  let dev = Mem_blkio.make ~bytes:(1 lsl 20) () in
  let root = ok (Fs_glue.newfs dev) in
  let f = ok (root.Io_if.d_create "index.html") in
  let body = Bytes.init file_bytes (fun i -> Char.chr (pattern i)) in
  let rec push off =
    if off < file_bytes then
      match f.Io_if.f_write ~buf:body ~pos:off ~offset:off ~amount:(file_bytes - off) with
      | Ok n -> push (off + n)
      | Error e -> Alcotest.failf "root write: %s" (Error.to_string e)
  in
  push 0;
  (root, Bytes.to_string body)

let httpd_rig ~until f =
  let tb = fresh_testbed () in
  let server = tb.Clientos.host_b and chost = tb.Clientos.host_a in
  let root, expect = make_root () in
  let stack = Clientos.freebsd_host server ~ip:(ip "10.0.0.2") ~mask in
  let sock = Freebsd_glue.socket_com stack (Bsd_socket.tcp_socket stack) in
  let cstack = Clientos.freebsd_host chost ~ip:(ip "10.0.0.1") ~mask in
  let server_stats = ref None in
  let reactor = Reactor.create () in
  Clientos.spawn server ~name:"httpd" (fun () ->
      ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 80 });
      ok (sock.Io_if.so_listen ~backlog:16);
      server_stats := Some (Httpd.serve_reactor ~reactor ~root ~sock ());
      Reactor.run reactor ~until);
  f tb chost cstack expect;
  Clientos.run tb ~until;
  Option.get !server_stats

(* Send [frag] fully over a blocking BSD socket. *)
let push_str s frag =
  let b = Bytes.of_string frag in
  let rec go off =
    if off < Bytes.length b then
      match Bsd_socket.so_send s ~buf:b ~pos:off ~len:(Bytes.length b - off) with
      | Ok n -> go (off + n)
      | Error _ -> ()
  in
  go 0

let drain_str s =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 2048 in
  let rec go () =
    match Bsd_socket.so_recv s ~buf ~pos:0 ~len:4096 with
    | Ok 0 | Error _ -> ()
    | Ok n -> Buffer.add_subbytes acc buf 0 n; go ()
  in
  go ();
  Buffer.contents acc

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_httpd_deadline_and_header_bound () =
  with_overload ~httpd_guard:true ~httpd_header_deadline_ns:50_000_000
    ~httpd_max_header_bytes:256 (fun () ->
      let slow_cut = ref false and over_cut = ref false and legit_200 = ref false in
      let all () = !slow_cut && !over_cut && !legit_200 in
      let st =
        httpd_rig ~until:all (fun _tb chost cstack expect ->
            (* Slowloris: the request line and then silence, holding the
               connection open until the server's deadline cuts it. *)
            Clientos.spawn chost ~name:"slowloris" (fun () ->
                Kclock.sleep_ns 3_000_000;
                let s = Bsd_socket.tcp_socket cstack in
                ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
                push_str s "GET /index.html HTTP/1.0\r\n";
                (* Never send the terminator: block in recv until the
                   deadline closes the connection under us. *)
                let got = drain_str s in
                if got = "" then slow_cut := true;
                ignore (Bsd_socket.so_close s));
            (* Drip-fed oversized headers: cut at the byte bound long
               before the deadline. *)
            Clientos.spawn chost ~name:"overflow" (fun () ->
                Kclock.sleep_ns 4_000_000;
                let s = Bsd_socket.tcp_socket cstack in
                ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
                push_str s "GET /index.html HTTP/1.0\r\n";
                for _ = 1 to 40 do
                  push_str s "X-Padding: aaaaaaaaaaaaaaaa\r\n"
                done;
                let got = drain_str s in
                if got = "" then over_cut := true;
                ignore (Bsd_socket.so_close s));
            (* Slow but legitimate: finishes inside the deadline and must
               be served byte-exact. *)
            Clientos.spawn chost ~name:"legit" (fun () ->
                Kclock.sleep_ns 5_000_000;
                let s = Bsd_socket.tcp_socket cstack in
                ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
                push_str s "GET /index.html HTTP/1.0\r\n";
                Kclock.sleep_ns 20_000_000;
                push_str s "\r\n";
                let resp = drain_str s in
                (match String.index_opt resp '\r' with _ -> ());
                let body_ok =
                  match
                    let rec find i =
                      if i + 4 > String.length resp then None
                      else if String.sub resp i 4 = "\r\n\r\n" then Some (i + 4)
                      else find (i + 1)
                    in
                    find 0
                  with
                  | Some i -> String.sub resp i (String.length resp - i) = expect
                  | None -> false
                in
                if starts_with ~prefix:"HTTP/1.0 200" resp && body_ok then
                  legit_200 := true;
                ignore (Bsd_socket.so_close s)))
      in
      Alcotest.(check bool) "slowloris was cut with no response" true !slow_cut;
      Alcotest.(check bool) "oversized headers were cut with no response" true !over_cut;
      Alcotest.(check bool) "slow-but-legit client got its 200 byte-exact" true !legit_200;
      Alcotest.(check int) "one deadline close" 1 st.Httpd.deadline_closed;
      Alcotest.(check int) "one header overflow" 1 st.Httpd.hdr_overflow;
      Alcotest.(check int) "nothing was shed" 0 st.Httpd.shed_503)

let test_httpd_shed_503 () =
  with_overload ~httpd_guard:true ~httpd_shed_hiwat:1 (fun () ->
      let got_200 = ref false and got_503 = ref false in
      let all () = !got_200 && !got_503 in
      let st =
        httpd_rig ~until:all (fun _tb chost cstack _expect ->
            (* The first client parks itself mid-request, holding [active]
               at the high-water mark... *)
            Clientos.spawn chost ~name:"holder" (fun () ->
                Kclock.sleep_ns 3_000_000;
                let s = Bsd_socket.tcp_socket cstack in
                ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
                push_str s "GET /index.html HTTP/1.0\r\n";
                Kclock.sleep_ns 30_000_000;
                push_str s "\r\n";
                let resp = drain_str s in
                if starts_with ~prefix:"HTTP/1.0 200" resp then got_200 := true;
                ignore (Bsd_socket.so_close s));
            (* ... so the second is answered 503 + Retry-After and closed
               instead of being parked behind it. *)
            Clientos.spawn chost ~name:"shed-me" (fun () ->
                Kclock.sleep_ns 10_000_000;
                let s = Bsd_socket.tcp_socket cstack in
                ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
                push_str s "GET /index.html HTTP/1.0\r\n\r\n";
                let resp = drain_str s in
                if starts_with ~prefix:"HTTP/1.0 503" resp && contains resp "Retry-After"
                then got_503 := true;
                ignore (Bsd_socket.so_close s)))
      in
      Alcotest.(check bool) "held connection still served" true !got_200;
      Alcotest.(check bool) "overload answered 503 + Retry-After" true !got_503;
      Alcotest.(check int) "one connection shed" 1 st.Httpd.shed_503;
      Alcotest.(check int) "no guard closes" 0
        (st.Httpd.deadline_closed + st.Httpd.hdr_overflow))

(* ------------------------------------------------------------------ *)
(* Flags off (the seed defaults): a live round trip on both stacks moves
   none of the new counters and draws nothing from the injector — the
   committed calibrated benches rest on this.                            *)

let test_flags_off_counters_untouched () =
  Memfault.reset ();
  let tb = fresh_testbed () in
  let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let served = ref false and echoed = ref false in
  Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
      let ls = Linux_inet.socket sb in
      Linux_inet.bind sb ls ~port:7700;
      Linux_inet.listen sb ls ~backlog:2;
      let c = ok (Linux_inet.accept sb ls) in
      let buf = Bytes.create 64 in
      let n = ok (Linux_inet.recv sb c ~buf ~pos:0 ~len:64) in
      ignore (ok (Linux_inet.send sb c ~buf ~pos:0 ~len:n));
      Linux_inet.close sb c;
      served := true);
  Clientos.spawn tb.Clientos.host_a ~name:"cli" (fun () ->
      Kclock.sleep_ns 1_000_000;
      let s = Bsd_socket.tcp_socket sa in
      ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:7700);
      let msg = Bytes.of_string "plain" in
      ignore (ok (Bsd_socket.so_send s ~buf:msg ~pos:0 ~len:5));
      let buf = Bytes.create 64 in
      (match Bsd_socket.so_recv s ~buf ~pos:0 ~len:64 with
      | Ok n when n > 0 -> echoed := true
      | _ -> ());
      ignore (Bsd_socket.so_close s));
  Clientos.run tb ~until:(fun () -> !served && !echoed);
  Alcotest.(check bool) "round trip completed" true (!served && !echoed);
  let st = sa.Bsd_socket.tcp.Tcp.stats in
  Alcotest.(check int) "bsd: no syncache activity" 0
    (st.Tcp.syncache_added + st.Tcp.syncache_evicted + st.Tcp.syncache_completed);
  Alcotest.(check int) "bsd: no cookie activity" 0
    (st.Tcp.syncookies_validated + st.Tcp.syncookies_rejected);
  Alcotest.(check int) "bsd: no TIME_WAIT reclaim" 0 st.Tcp.time_wait_reclaimed;
  Alcotest.(check int) "bsd: no nomem drops" 0 st.Tcp.nomem_drops;
  Alcotest.(check int) "bsd: no rate limiting" 0 st.Tcp.rst_ratelimited;
  Alcotest.(check int) "bsd udp: no rate limiting" 0 sa.Bsd_socket.udp.Udp.icmp_ratelimited;
  Alcotest.(check int) "linux: no syncache activity" 0
    (sb.Linux_inet.syncache_added + sb.Linux_inet.syncache_evicted
    + sb.Linux_inet.syncache_completed);
  Alcotest.(check int) "linux: no cookie activity" 0
    (sb.Linux_inet.syncookies_validated + sb.Linux_inet.syncookies_rejected);
  Alcotest.(check int) "linux: no TIME_WAIT reclaim" 0 sb.Linux_inet.time_wait_reclaimed;
  Alcotest.(check int) "linux: no nomem drops" 0 sb.Linux_inet.nomem_drops;
  Alcotest.(check int) "linux: no rate limiting" 0 sb.Linux_inet.rst_ratelimited;
  Alcotest.(check int) "injector: no draws, no failures" 0
    (Memfault.draws () + Memfault.failures ())

let suite =
  [ QCheck_alcotest.to_alcotest prop_cookie_roundtrip;
    Alcotest.test_case "syncache: bounded, oldest-first, freed on listener close"
      `Quick test_syncache_eviction_and_listener_close;
    Alcotest.test_case "10x SYN flood: every legit client served (bsd)" `Quick
      test_flood_then_legit_bsd;
    Alcotest.test_case "10x SYN flood: every legit client served (linux)" `Quick
      test_flood_then_legit_linux;
    Alcotest.test_case "SYN cookie completes statelessly, bogus ACK rejected (bsd)"
      `Quick test_cookie_completion_bsd;
    Alcotest.test_case "SYN cookie completes statelessly, bogus ACK rejected (linux)"
      `Quick test_cookie_completion_linux;
    Alcotest.test_case "RST generation is token-bucket limited, both stacks" `Quick
      test_rst_rate_limit_both_stacks;
    Alcotest.test_case "ICMP port unreachables are token-bucket limited" `Quick
      test_udp_unreachable_rate_limit;
    Alcotest.test_case "TIME_WAIT cap reclaims oldest-first (bsd)" `Quick
      test_tw_cap_bsd;
    Alcotest.test_case "TIME_WAIT cap reclaims oldest-first (linux)" `Quick
      test_tw_cap_linux;
    Alcotest.test_case "alloc-failure soak: byte-exact at 0.1%-1%, both stacks"
      `Quick test_alloc_soak;
    Alcotest.test_case "httpd guard: deadline and header bound cut attackers only"
      `Quick test_httpd_deadline_and_header_bound;
    Alcotest.test_case "httpd guard: 503 + Retry-After above the high-water mark"
      `Quick test_httpd_shed_503;
    Alcotest.test_case "flags off: new counters and injector untouched" `Quick
      test_flags_off_counters_untouched ]
