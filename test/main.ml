let () =
  Alcotest.run "oskit"
    [ "com", Test_com.suite;
      "machine", Test_machine.suite;
      "kern", Test_kern.suite;
      "lmm", Test_lmm.suite;
      "kalloc", Test_kalloc.suite;
      "amm", Test_amm.suite;
      "libc", Test_libc.suite;
      "memdebug", Test_memdebug.suite;
      "boot", Test_boot.suite;
      "fs", Test_fs.suite;
      "netparts", Test_netparts.suite;
      "net", Test_net.suite;
      "netem", Test_netem.suite;
      "sg", Test_sg.suite;
      "tcp-behavior", Test_tcp_behavior.suite;
      "misc", Test_misc.suite;
      "vm", Test_vm.suite;
      "chardev", Test_chardev.suite;
      "posix-net", Test_posix_net.suite;
      "fatfs", Test_fatfs.suite;
      "misc2", Test_misc2.suite;
      "advanced", Test_advanced.suite;
      "asyncio", Test_asyncio.suite;
      "fastpath", Test_fastpath.suite;
      "longfat", Test_longfat.suite;
      "overload", Test_overload.suite;
      "smp", Test_smp.suite;
      "event", Test_event.suite;
      "http11", Test_http11.suite ]
