(* The oskit_asyncio readiness interface, the reactor that drives it, and
   the non-blocking socket paths beneath it — on both protocol stacks.

   - readiness-vs-blocking equivalence: the same byte stream received
     through a reactor-driven non-blocking socket and through a parked
     blocking thread is byte-exact identical, on either stack;
   - spurious-wakeup safety and listener add/remove during a poll pass,
     against a synthetic asyncio object whose notifications the test
     controls directly;
   - accept + serve under netem loss (seeded);
   - the listen-backlog overflow counter on both stacks;
   - closing a listener fails parked accepters instead of leaking them;
   - basic Wouldblock behaviour of non-blocking accept/recv. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

type kind = Fb | Lx

let kind_name = function Fb -> "freebsd" | Lx -> "linux"

(* A COM listen socket (plus the stack's listen_overflow reader) on [host]
   for either stack — the same object the HTTP server component binds to. *)
let com_server kind host =
  match kind with
  | Fb ->
      let stack = Clientos.freebsd_host host ~ip:(ip "10.0.0.2") ~mask in
      ( Freebsd_glue.socket_com stack (Bsd_socket.tcp_socket stack),
        fun () -> stack.Bsd_socket.tcp.Tcp.stats.Tcp.listen_overflow )
  | Lx ->
      let stack = Clientos.linux_host host ~ip:(ip "10.0.0.2") ~mask in
      ( Linux_sock_com.socket_com stack (Linux_inet.socket stack),
        fun () -> stack.Linux_inet.listen_overflow )

let fresh_testbed () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  Clientos.make_testbed ~models:("3c905", "tulip") ()

let pattern pos = Char.chr ((pos * 131) land 0xff)

let aio_of (sock : Io_if.socket) =
  ok (Com.query sock.Io_if.so_unknown Io_if.asyncio_iid)

(* ------------------------------------------------------------------ *)
(* Readiness-vs-blocking equivalence.                                  *)

(* Push [len] pattern bytes from a native FreeBSD client into a one-shot
   sink on [kind]; the sink reads either with a blocking thread or with
   reactor-driven non-blocking recv.  Returns what the sink received. *)
let transfer kind ~via_reactor ~len =
  let tb = fresh_testbed () in
  let sock, _ = com_server kind tb.Clientos.host_b in
  let acc = Buffer.create len in
  let finished = ref false in
  Clientos.spawn tb.Clientos.host_b ~name:"sink" (fun () ->
      ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 7001 });
      ok (sock.Io_if.so_listen ~backlog:4);
      if not via_reactor then begin
        let c, _ = ok (sock.Io_if.so_accept ()) in
        let buf = Bytes.create 4096 in
        let rec drain () =
          match c.Io_if.so_recv ~buf ~pos:0 ~len:4096 with
          | Ok 0 | Error _ ->
              ignore (c.Io_if.so_close ());
              finished := true
          | Ok n ->
              Buffer.add_subbytes acc buf 0 n;
              drain ()
        in
        drain ()
      end
      else begin
        let r = Reactor.create () in
        ignore (sock.Io_if.so_setsockopt "nonblock" 1);
        ignore
          (Reactor.watch r (aio_of sock) ~mask:Io_if.aio_read (fun _ ->
               match sock.Io_if.so_accept () with
               | Error _ -> ()
               | Ok (c, _) ->
                   ignore (c.Io_if.so_setsockopt "nonblock" 1);
                   let buf = Bytes.create 4096 in
                   let wref = ref None in
                   let cb _ =
                     let rec drain () =
                       match c.Io_if.so_recv ~buf ~pos:0 ~len:4096 with
                       | Ok 0 | Error Error.Connreset ->
                           (match !wref with
                           | Some w -> Reactor.unwatch r w
                           | None -> ());
                           ignore (c.Io_if.so_close ());
                           finished := true
                       | Ok n ->
                           Buffer.add_subbytes acc buf 0 n;
                           drain ()
                       | Error Error.Wouldblock -> ()
                       | Error _ ->
                           (match !wref with
                           | Some w -> Reactor.unwatch r w
                           | None -> ());
                           finished := true
                     in
                     drain ()
                   in
                   wref := Some (Reactor.watch r (aio_of c) ~mask:Io_if.aio_read cb)));
        Reactor.run r ~until:(fun () -> !finished)
      end);
  let cstack = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  Clientos.spawn tb.Clientos.host_a ~name:"src" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let s = Bsd_socket.tcp_socket cstack in
      ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:7001);
      let chunk = 4096 in
      let buf = Bytes.create chunk in
      let sent = ref 0 in
      while !sent < len do
        let n = min chunk (len - !sent) in
        for i = 0 to n - 1 do
          Bytes.set buf i (pattern (!sent + i))
        done;
        let k = ok (Bsd_socket.so_send s ~buf ~pos:0 ~len:n) in
        sent := !sent + k
      done;
      ignore (Bsd_socket.so_close s));
  Clientos.run tb ~until:(fun () -> !finished);
  Buffer.contents acc

let test_equivalence () =
  let len = 48 * 1024 in
  let expect = String.init len pattern in
  List.iter
    (fun kind ->
      let blocking = transfer kind ~via_reactor:false ~len in
      let reactor = transfer kind ~via_reactor:true ~len in
      Alcotest.(check int)
        (kind_name kind ^ ": blocking sink got every byte")
        len (String.length blocking);
      Alcotest.(check bool) (kind_name kind ^ ": blocking byte-exact") true
        (blocking = expect);
      Alcotest.(check bool)
        (kind_name kind ^ ": reactor stream identical to blocking stream")
        true (reactor = blocking))
    [ Fb; Lx ]

(* ------------------------------------------------------------------ *)
(* Spurious wakeups and listener add/remove during a poll pass, driven
   through a synthetic asyncio object so the notifications are exact.    *)

type synthetic = {
  syn_aio : Io_if.asyncio;
  fire : int -> unit; (* set readiness to [mask] and notify matching subs *)
  nudge : unit -> unit; (* notify every sub WITHOUT changing readiness *)
  clear : unit -> unit;
}

let synthetic () =
  let subs = ref [] and next = ref 1 and ready = ref 0 in
  let aio =
    Io_if.asyncio_view
      ~unknown:(fun () -> Com.create (fun _ -> []))
      ~poll:(fun () -> !ready)
      ~add_listener:(fun ~mask f ->
        let id = !next in
        incr next;
        subs := (id, mask, f) :: !subs;
        id)
      ~remove_listener:(fun id -> subs := List.filter (fun (i, _, _) -> i <> id) !subs)
      ()
  in
  { syn_aio = aio;
    fire =
      (fun m ->
        ready := m;
        List.iter (fun (_, sm, f) -> if sm land m <> 0 then f m) !subs);
    nudge = (fun () -> List.iter (fun (_, _, f) -> f 0) !subs);
    clear = (fun () -> ready := 0) }

let test_spurious_and_churn () =
  let tb = fresh_testbed () in
  let a = synthetic () and b = synthetic () in
  let r = Reactor.create () in
  let hits_a = ref 0 and hits_b = ref 0 and stopped_hits = ref 0 in
  let done_ = ref false in
  Clientos.spawn tb.Clientos.host_a ~name:"reactor" (fun () ->
      (* Watch A; when A first fires it adds a watch on B from inside the
         callback; B's callback unwatches itself (remove during poll). *)
      let wb = ref None in
      let wa = ref None in
      wa :=
        Some
          (Reactor.watch r a.syn_aio ~mask:Io_if.aio_read (fun _ ->
               incr hits_a;
               a.clear ();
               if !wb = None then
                 wb :=
                   Some
                     (Reactor.watch r b.syn_aio ~mask:Io_if.aio_read (fun _ ->
                          incr hits_b;
                          b.clear ();
                          Reactor.unwatch r (Option.get !wb)))));
      (* A watch that is unwatched must never fire again, even if the
         object keeps notifying. *)
      let stopped = synthetic () in
      let ws =
        Reactor.watch r stopped.syn_aio ~mask:Io_if.aio_read (fun _ -> incr stopped_hits)
      in
      Reactor.unwatch r ws;
      ignore
        (Kclock.callout_after ~ns:1_000_000 (fun () ->
             (* Spurious: notification with no readiness behind it. *)
             a.nudge ();
             stopped.fire Io_if.aio_read));
      ignore (Kclock.callout_after ~ns:2_000_000 (fun () -> a.fire Io_if.aio_read));
      ignore (Kclock.callout_after ~ns:3_000_000 (fun () -> Reactor.kick r));
      ignore
        (Kclock.callout_after ~ns:4_000_000 (fun () ->
             b.fire Io_if.aio_read;
             (* B was already consumed and unwatched by its own callback
                the moment it fires; fire again to prove it stays dead. *)
             b.fire Io_if.aio_read));
      ignore (Kclock.callout_after ~ns:6_000_000 (fun () -> done_ := true; Reactor.kick r));
      Reactor.run r ~until:(fun () -> !done_));
  Clientos.run tb ~until:(fun () -> !done_);
  Alcotest.(check int) "A dispatched exactly once" 1 !hits_a;
  Alcotest.(check int) "B (added during a pass) dispatched exactly once" 1 !hits_b;
  Alcotest.(check int) "unwatched watch never fired" 0 !stopped_hits;
  let st = Reactor.stats r in
  Alcotest.(check bool) "the bare nudge was counted spurious, not dispatched" true
    (st.Reactor.spurious >= 1);
  Alcotest.(check int) "only A's and B's real events dispatched" 2 st.Reactor.dispatches;
  Alcotest.(check int) "B's watch removed itself; A's remains" 1 (Reactor.watch_count r)

(* ------------------------------------------------------------------ *)
(* Accept + serve through the reactor under injected loss.             *)

let test_accept_under_loss () =
  List.iter
    (fun (kind, loss, seed) ->
      let tb = fresh_testbed () in
      let em = Netem.create ~seed ~policy:{ Netem.default_policy with loss } () in
      Wire.set_netem tb.Clientos.wire (Some em);
      let sock, _ = com_server kind tb.Clientos.host_b in
      let served = ref 0 in
      let clients = 6 in
      Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
          ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 7002 });
          ok (sock.Io_if.so_listen ~backlog:8);
          let r = Reactor.create () in
          ignore (sock.Io_if.so_setsockopt "nonblock" 1);
          ignore
            (Reactor.watch r (aio_of sock) ~mask:Io_if.aio_read (fun _ ->
                 let rec drain () =
                   match sock.Io_if.so_accept () with
                   | Error _ -> ()
                   | Ok (c, _) ->
                       ignore (c.Io_if.so_setsockopt "nonblock" 1);
                       let buf = Bytes.create 64 in
                       let wref = ref None in
                       let cb _ =
                         match c.Io_if.so_recv ~buf ~pos:0 ~len:64 with
                         | Ok n when n > 0 ->
                             (* Echo, then close: one round trip each. *)
                             ignore (c.Io_if.so_send ~buf ~pos:0 ~len:n);
                             (match !wref with
                             | Some w -> Reactor.unwatch r w
                             | None -> ());
                             ignore (c.Io_if.so_close ());
                             incr served
                         | Ok _ | Error Error.Wouldblock -> ()
                         | Error _ ->
                             (match !wref with
                             | Some w -> Reactor.unwatch r w
                             | None -> ());
                             ignore (c.Io_if.so_close ())
                       in
                       wref := Some (Reactor.watch r (aio_of c) ~mask:Io_if.aio_read cb);
                       drain ()
                 in
                 drain ()));
          Reactor.run r ~until:(fun () -> !served >= clients));
      let cstack = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
      let replies = ref 0 and exact = ref 0 in
      for i = 0 to clients - 1 do
        Clientos.spawn tb.Clientos.host_a ~name:(Printf.sprintf "c%d" i) (fun () ->
            Kclock.sleep_ns (2_000_000 + (i * 300_000));
            let s = Bsd_socket.tcp_socket cstack in
            ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:7002);
            let msg = Bytes.of_string (Printf.sprintf "ping-%02d" i) in
            ignore (ok (Bsd_socket.so_send s ~buf:msg ~pos:0 ~len:(Bytes.length msg)));
            let buf = Bytes.create 64 in
            (match Bsd_socket.so_recv s ~buf ~pos:0 ~len:64 with
            | Ok n when n > 0 ->
                incr replies;
                if Bytes.sub buf 0 n = Bytes.sub msg 0 n then incr exact
            | _ -> ());
            ignore (Bsd_socket.so_close s))
      done;
      Clientos.run tb ~until:(fun () -> !replies >= clients);
      Alcotest.(check int)
        (Printf.sprintf "%s @%.0f%% loss: every client served" (kind_name kind)
           (loss *. 100.))
        clients !served;
      Alcotest.(check int) "every echo byte-exact" clients !exact)
    [ (Fb, 0.0, 5); (Fb, 0.01, 6); (Fb, 0.03, 7); (Lx, 0.03, 8) ]

(* ------------------------------------------------------------------ *)
(* Listen-queue overflow surfaces in the stack counter on both stacks. *)

let test_listen_overflow () =
  List.iter
    (fun kind ->
      let tb = fresh_testbed () in
      let sock, overflow = com_server kind tb.Clientos.host_b in
      let served = ref 0 in
      let clients = 8 in
      Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
          ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 7003 });
          ok (sock.Io_if.so_listen ~backlog:2);
          let r = Reactor.create () in
          ignore (sock.Io_if.so_setsockopt "nonblock" 1);
          ignore
            (Reactor.watch r (aio_of sock) ~mask:Io_if.aio_read (fun _ ->
                 let rec drain () =
                   match sock.Io_if.so_accept () with
                   | Error _ -> ()
                   | Ok (c, _) ->
                       ignore (c.Io_if.so_close ());
                       incr served;
                       drain ()
                 in
                 drain ()));
          Reactor.run r ~until:(fun () -> !served >= clients));
      let cstack = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
      let connected = ref 0 in
      (* ARP warm-up so the whole burst reaches the listener together. *)
      Clientos.spawn tb.Clientos.host_a ~name:"warm" (fun () ->
          Kclock.sleep_ns 1_000_000;
          let s = Bsd_socket.tcp_socket cstack in
          (match Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:7003 with
          | Ok () -> incr connected
          | Error _ -> ());
          ignore (Bsd_socket.so_close s));
      for i = 0 to clients - 1 do
        Clientos.spawn tb.Clientos.host_a ~name:(Printf.sprintf "c%d" i) (fun () ->
            Kclock.sleep_ns (4_000_000 + (i * 200));
            let s = Bsd_socket.tcp_socket cstack in
            (match Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:7003 with
            | Ok () -> incr connected
            | Error _ -> ());
            ignore (Bsd_socket.so_close s))
      done;
      Clientos.run tb ~until:(fun () -> !connected >= clients + 1);
      Alcotest.(check bool)
        (kind_name kind ^ ": SYNs beyond the backlog were counted as overflow")
        true
        (overflow () > 0);
      Alcotest.(check int)
        (kind_name kind ^ ": every client still connected after retransmit")
        (clients + 1) !connected)
    [ Fb; Lx ]

(* ------------------------------------------------------------------ *)
(* Closing a listening socket fails parked accepters (no leaked waiter,
   no hang) on both stacks.                                            *)

let test_close_wakes_accepters () =
  List.iter
    (fun kind ->
      let tb = fresh_testbed () in
      let sock, _ = com_server kind tb.Clientos.host_b in
      let outcome = ref `Pending in
      Clientos.spawn tb.Clientos.host_b ~name:"accepter" (fun () ->
          ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 7004 });
          ok (sock.Io_if.so_listen ~backlog:2);
          match sock.Io_if.so_accept () with
          | Ok _ -> outcome := `Accepted
          | Error _ -> outcome := `Failed);
      Clientos.spawn tb.Clientos.host_b ~name:"closer" (fun () ->
          Kclock.sleep_ns 5_000_000;
          ignore (sock.Io_if.so_close ()));
      Clientos.run tb ~until:(fun () -> !outcome <> `Pending);
      Alcotest.(check bool)
        (kind_name kind ^ ": parked accepter failed with an error, promptly")
        true
        (!outcome = `Failed && World.now tb.Clientos.world < 1_000_000_000))
    [ Fb; Lx ]

(* ------------------------------------------------------------------ *)
(* Non-blocking basics: Wouldblock instead of parking.                 *)

let test_nonblock_basics () =
  List.iter
    (fun kind ->
      let tb = fresh_testbed () in
      let sock, _ = com_server kind tb.Clientos.host_b in
      let checked = ref false in
      Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
          ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 7005 });
          ok (sock.Io_if.so_listen ~backlog:2);
          ignore (sock.Io_if.so_setsockopt "nonblock" 1);
          (* Nothing has connected yet: accept must refuse, not park. *)
          (match sock.Io_if.so_accept () with
          | Error Error.Wouldblock -> ()
          | Ok _ | Error _ -> Alcotest.fail "nonblock accept on empty queue");
          (* Wait (politely) for the client, then accept it. *)
          let rec await () =
            match sock.Io_if.so_accept () with
            | Error Error.Wouldblock ->
                Kclock.sleep_ns 500_000;
                await ()
            | other -> other
          in
          let c, _ = ok (await ()) in
          ignore (c.Io_if.so_setsockopt "nonblock" 1);
          let buf = Bytes.create 16 in
          (* The peer sent nothing: recv must refuse, not park. *)
          (match c.Io_if.so_recv ~buf ~pos:0 ~len:16 with
          | Error Error.Wouldblock -> ()
          | Ok _ | Error _ -> Alcotest.fail "nonblock recv on empty buffer");
          let aio = aio_of c in
          Alcotest.(check bool) "asyncio poll: writable, not readable" true
            (let m = aio.Io_if.aio_poll () in
             m land Io_if.aio_write <> 0 && m land Io_if.aio_read = 0);
          ignore (c.Io_if.so_close ());
          checked := true);
      let cstack = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
      Clientos.spawn tb.Clientos.host_a ~name:"c" (fun () ->
          Kclock.sleep_ns 2_000_000;
          let s = Bsd_socket.tcp_socket cstack in
          ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:7005);
          (* Connect only; send nothing. *)
          Kclock.sleep_ns 20_000_000;
          ignore (Bsd_socket.so_close s));
      Clientos.run tb ~until:(fun () -> !checked);
      Alcotest.(check bool) (kind_name kind ^ ": nonblock paths checked") true !checked)
    [ Fb; Lx ]

let suite =
  [ Alcotest.test_case "readiness-vs-blocking equivalence (both stacks)" `Quick
      test_equivalence;
    Alcotest.test_case "spurious wakeups + add/remove during poll" `Quick
      test_spurious_and_churn;
    Alcotest.test_case "reactor accept under netem loss 0-3%" `Quick
      test_accept_under_loss;
    Alcotest.test_case "listen backlog overflow counter (both stacks)" `Quick
      test_listen_overflow;
    Alcotest.test_case "listener close fails parked accepters" `Quick
      test_close_wakes_accepters;
    Alcotest.test_case "nonblocking accept/recv return Wouldblock" `Quick
      test_nonblock_basics ]
