(* The HTTP/1.1 keep-alive engine and the sendfile content path (PR 10):
   the O(bytes) request scanner under one-byte drips, keep-alive
   sequences byte-exact against N separate HTTP/1.0 connections,
   pipelined responses strictly in order, the idle timeout and the
   per-connection request cap, sendfile-vs-copy body byte-exactness
   across block boundaries (also under 2% loss), buffer-cache pin and
   eviction hardening, and the flags-off world untouched. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

(* ---- knob scoping: set the PR-10 knobs for [f], restore after ---- *)

let with_http11 ?(keepalive = true) ?(sendfile = false) ?(sg = false)
    ?(idle_ns = 5_000_000_000) ?(max_reqs = 0) ?(pipeline_max = 8) f =
  let c = Cost.config in
  let saved =
    ( c.Cost.http_keepalive, c.Cost.sendfile, c.Cost.sg_tx,
      c.Cost.http_idle_timeout_ns, c.Cost.http_max_reqs_per_conn,
      c.Cost.http_pipeline_max )
  in
  c.Cost.http_keepalive <- keepalive;
  c.Cost.sendfile <- sendfile;
  c.Cost.sg_tx <- sg;
  c.Cost.http_idle_timeout_ns <- idle_ns;
  c.Cost.http_max_reqs_per_conn <- max_reqs;
  c.Cost.http_pipeline_max <- pipeline_max;
  Fun.protect
    ~finally:(fun () ->
      let ka, sf, sgx, idle, mr, pm = saved in
      c.Cost.http_keepalive <- ka;
      c.Cost.sendfile <- sf;
      c.Cost.sg_tx <- sgx;
      c.Cost.http_idle_timeout_ns <- idle;
      c.Cost.http_max_reqs_per_conn <- mr;
      c.Cost.http_pipeline_max <- pm)
    f

(* ---- a server rig: FFS root with one pattern file per size ---- *)

let pattern ~file pos = ((pos * 131) + (file * 17)) land 0xff
let file_name i = Printf.sprintf "f%d.bin" i

let make_root sizes =
  let dev = Mem_blkio.make ~bytes:(4 * 1024 * 1024) () in
  let root = ok (Fs_glue.newfs dev) in
  let bodies =
    List.mapi
      (fun fi size ->
        let f = ok (root.Io_if.d_create (file_name fi)) in
        let body = Bytes.init size (fun i -> Char.chr (pattern ~file:fi i)) in
        let rec push off =
          if off < size then
            match f.Io_if.f_write ~buf:body ~pos:off ~offset:off ~amount:(size - off) with
            | Ok n -> push (off + n)
            | Error e -> Alcotest.failf "root write: %s" (Error.to_string e)
        in
        push 0;
        Bytes.to_string body)
      sizes
  in
  (root, Array.of_list bodies)

(* Serve [sizes] from host_b in [mode]; [f] drives clients on host_a and
   must eventually make [until] true. *)
let rig ?loss ?(mode = `Reactor) ~sizes ~until f =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  (match loss with
  | Some l ->
      Wire.set_netem tb.Clientos.wire
        (Some (Netem.create ~seed:29 ~policy:{ Netem.default_policy with loss = l } ()))
  | None -> ());
  let server = tb.Clientos.host_b and chost = tb.Clientos.host_a in
  let root, bodies = make_root sizes in
  let stack = Clientos.freebsd_host server ~ip:(ip "10.0.0.2") ~mask in
  let sock = Freebsd_glue.socket_com stack (Bsd_socket.tcp_socket stack) in
  let cstack = Clientos.freebsd_host chost ~ip:(ip "10.0.0.1") ~mask in
  let server_stats = ref None in
  let reactor = Reactor.create () in
  Clientos.spawn server ~name:"httpd" (fun () ->
      ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 80 });
      ok (sock.Io_if.so_listen ~backlog:16);
      match mode with
      | `Reactor ->
          server_stats := Some (Httpd.serve_reactor ~reactor ~root ~sock ());
          Reactor.run reactor ~until
      | `Threads ->
          server_stats :=
            Some
              (Httpd.serve_threaded
                 ~spawn:(fun g -> Clientos.spawn server g)
                 ~root ~sock ()));
  f chost cstack bodies;
  Clientos.run tb ~until;
  Option.get !server_stats

(* ---- client helpers ---- *)

let push_str s frag =
  let b = Bytes.of_string frag in
  let rec go off =
    if off < Bytes.length b then
      match Bsd_socket.so_send s ~buf:b ~pos:off ~len:(Bytes.length b - off) with
      | Ok n -> go (off + n)
      | Error _ -> ()
  in
  go 0

let index_of s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go 0

let content_length hdr =
  match index_of (String.lowercase_ascii hdr) "content-length:" with
  | None -> None
  | Some i -> (
      let rest = String.sub hdr (i + 15) (String.length hdr - i - 15) in
      let line =
        match String.index_opt rest '\r' with
        | Some j -> String.sub rest 0 j
        | None -> rest
      in
      int_of_string_opt (String.trim line))

(* A Content-Length framer over one connection: [framer s] returns a
   thunk that reads the next (header, body) pair, or None at EOF. *)
let framer s =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 4096 in
  let consumed = ref 0 in
  let rec fill need =
    if Buffer.length acc - !consumed >= need then true
    else
      match Bsd_socket.so_recv s ~buf ~pos:0 ~len:4096 with
      | Ok 0 | Error _ -> false
      | Ok n ->
          Buffer.add_subbytes acc buf 0 n;
          fill need
  in
  let avail () =
    String.sub (Buffer.contents acc) !consumed (Buffer.length acc - !consumed)
  in
  let rec hdr_end () =
    match index_of (avail ()) "\r\n\r\n" with
    | Some i -> Some i
    | None -> if fill (Buffer.length acc - !consumed + 1) then hdr_end () else None
  in
  fun () ->
    match hdr_end () with
    | None -> None
    | Some he -> (
        let hdr = String.sub (avail ()) 0 he in
        match content_length hdr with
        | None -> None
        | Some len ->
            if fill (he + 4 + len) then begin
              let body = String.sub (avail ()) (he + 4) len in
              consumed := !consumed + he + 4 + len;
              if Buffer.length acc - !consumed = 0 then begin
                Buffer.clear acc;
                consumed := 0
              end;
              Some (hdr, body)
            end
            else None)

let get_request fi = Printf.sprintf "GET /%s HTTP/1.1\r\nHost: b\r\n\r\n" (file_name fi)

let status_of hdr = if String.length hdr >= 12 then String.sub hdr 9 3 else "???"

let drain s =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 4096 in
  let rec go () =
    match Bsd_socket.so_recv s ~buf ~pos:0 ~len:4096 with
    | Ok 0 | Error _ -> ()
    | Ok n ->
        Buffer.add_subbytes acc buf 0 n;
        go ()
  in
  go ();
  Buffer.contents acc

(* ------------------------------------------------------------------ *)
(* The request scanner: one-byte drips cost one cursor step per byte
   (the PR-10 fix for the quadratic re-scan), split and back-to-back
   requests frame exactly, and "\n\r\n" alone never terminates.        *)

let test_scanner_drip () =
  let req = "GET /f0.bin HTTP/1.1\r\nHost: x\r\nX-Pad: abcdefgh\r\n\r\n" in
  let rb = Httpd.rb_create () in
  let n = String.length req in
  String.iteri
    (fun i c ->
      Httpd.rb_append rb (Bytes.make 1 c) 1;
      (* Resume cursor: every appended byte is examined exactly once —
         after a miss the scan cursor sits at the buffer end, never
         rewound by the next drip. *)
      if i < n - 1 then begin
        Alcotest.(check (option string))
          (Printf.sprintf "no request after %d bytes" (i + 1))
          None (Httpd.rb_next_request rb);
        Alcotest.(check int)
          (Printf.sprintf "cursor caught up at byte %d" (i + 1))
          rb.Httpd.rb_len rb.Httpd.rb_scan
      end)
    req;
  Alcotest.(check (option string)) "the final byte completes the request" (Some req)
    (Httpd.rb_next_request rb);
  Alcotest.(check (option string)) "and nothing is left" None (Httpd.rb_next_request rb)

let test_scanner_pipelined_and_terminators () =
  (* Two back-to-back requests in one append frame separately. *)
  let r1 = "GET /a HTTP/1.1\r\n\r\n" and r2 = "GET /b HTTP/1.1\n\n" in
  let rb = Httpd.rb_create () in
  let both = Bytes.of_string (r1 ^ r2) in
  Httpd.rb_append rb both (Bytes.length both);
  Alcotest.(check (option string)) "first request" (Some r1) (Httpd.rb_next_request rb);
  Alcotest.(check (option string)) "second request (bare-LF form)" (Some r2)
    (Httpd.rb_next_request rb);
  (* "\n\r\n" matches neither "\r\n\r\n" nor "\n\n" — exactly the old
     substring semantics. *)
  let rb2 = Httpd.rb_create () in
  let s = Bytes.of_string "GET /c HTTP/1.1\n\r\n" in
  Httpd.rb_append rb2 s (Bytes.length s);
  Alcotest.(check (option string)) "LF CR LF does not terminate" None
    (Httpd.rb_next_request rb2);
  (* A header bigger than the 512-byte initial buffer still frames. *)
  let big = "GET /d HTTP/1.1\r\nX-Pad: " ^ String.make 700 'a' ^ "\r\n\r\n" in
  let rb3 = Httpd.rb_create () in
  String.iter (fun c -> Httpd.rb_append rb3 (Bytes.make 1 c) 1) big;
  Alcotest.(check (option string)) "growth preserves the drip scan" (Some big)
    (Httpd.rb_next_request rb3)

(* ------------------------------------------------------------------ *)
(* Keep-alive sequence: the same GETs over one persistent connection
   return statuses and bodies byte-identical to N separate HTTP/1.0
   connections, in both serving shapes.                                 *)

let sizes3 = [ 1000; 4096; 300 ]

let keepalive_sequence mode =
  let reqs = [ 0; 1; 2; 0; 2 ] in
  let ka_results = ref [] and ka_done = ref false in
  let st =
    with_http11 (fun () ->
        rig ~mode ~sizes:sizes3
          ~until:(fun () -> !ka_done)
          (fun chost cstack _bodies ->
            Clientos.spawn chost ~name:"ka" (fun () ->
                Kclock.sleep_ns 3_000_000;
                let s = Bsd_socket.tcp_socket cstack in
                ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
                let next = framer s in
                List.iter
                  (fun fi ->
                    push_str s (get_request fi);
                    match next () with
                    | Some (hdr, body) ->
                        ka_results := (status_of hdr, body) :: !ka_results
                    | None -> ka_results := (("eof", "") :: !ka_results))
                  reqs;
                ignore (Bsd_socket.so_close s);
                ka_done := true)))
  in
  let h10_results = ref [] and h10_done = ref false in
  ignore
    (with_http11 ~keepalive:false (fun () ->
         rig ~sizes:sizes3
           ~until:(fun () -> !h10_done)
           (fun chost cstack _bodies ->
             Clientos.spawn chost ~name:"h10" (fun () ->
                 Kclock.sleep_ns 3_000_000;
                 List.iter
                   (fun fi ->
                     let s = Bsd_socket.tcp_socket cstack in
                     ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
                     push_str s
                       (Printf.sprintf "GET /%s HTTP/1.0\r\n\r\n" (file_name fi));
                     let resp = drain s in
                     let body =
                       match index_of resp "\r\n\r\n" with
                       | Some i -> String.sub resp (i + 4) (String.length resp - i - 4)
                       | None -> ""
                     in
                     h10_results := (status_of resp, body) :: !h10_results;
                     ignore (Bsd_socket.so_close s))
                   reqs;
                 h10_done := true))));
  Alcotest.(check (list (pair string string)))
    "keep-alive sequence matches N fresh HTTP/1.0 connections" !h10_results !ka_results;
  Alcotest.(check int) "one connection carried all requests" 1 st.Httpd.accepted;
  Alcotest.(check int) "every request after the first counted as reuse"
    (List.length reqs - 1) st.Httpd.reused

let test_keepalive_sequence_reactor () = keepalive_sequence `Reactor
let test_keepalive_sequence_threaded () = keepalive_sequence `Threads

(* ------------------------------------------------------------------ *)
(* Pipelining: a burst of requests sent before any response is read
   comes back strictly in request order.                                *)

let test_pipelined_in_order () =
  let order = [ 2; 0; 1; 2; 1; 0 ] in
  let got = ref [] and done_f = ref false in
  let st =
    with_http11 (fun () ->
        rig ~sizes:sizes3
          ~until:(fun () -> !done_f)
          (fun chost cstack _bodies ->
            Clientos.spawn chost ~name:"pipe" (fun () ->
                Kclock.sleep_ns 3_000_000;
                let s = Bsd_socket.tcp_socket cstack in
                ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
                let b = Buffer.create 256 in
                List.iter (fun fi -> Buffer.add_string b (get_request fi)) order;
                push_str s (Buffer.contents b);
                let next = framer s in
                List.iter
                  (fun _ ->
                    match next () with
                    | Some (_, body) -> got := body :: !got
                    | None -> ())
                  order;
                ignore (Bsd_socket.so_close s);
                done_f := true)))
  in
  let expect =
    List.map
      (fun fi ->
        String.init (List.nth sizes3 fi) (fun i -> Char.chr (pattern ~file:fi i)))
      order
  in
  Alcotest.(check (list string)) "responses in request order" expect (List.rev !got);
  Alcotest.(check bool) "server saw pipelined requests" true (st.Httpd.pipelined > 0)

(* ------------------------------------------------------------------ *)
(* Idle timeout: a connection left open past http_idle_timeout_ns is
   closed by the server and counted.                                    *)

let test_idle_timeout () =
  let eof = ref false and served = ref false in
  let st =
    with_http11 ~idle_ns:50_000_000 (fun () ->
        rig ~sizes:sizes3
          ~until:(fun () -> !eof)
          (fun chost cstack _bodies ->
            Clientos.spawn chost ~name:"idler" (fun () ->
                Kclock.sleep_ns 3_000_000;
                let s = Bsd_socket.tcp_socket cstack in
                ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
                push_str s (get_request 0);
                let next = framer s in
                (match next () with Some _ -> served := true | None -> ());
                (* Go idle: the next read must see the server's close,
                   not hang forever. *)
                (match next () with None -> eof := true | Some _ -> ());
                ignore (Bsd_socket.so_close s))))
  in
  Alcotest.(check bool) "the request before the idle gap was served" true !served;
  Alcotest.(check bool) "the idle connection saw EOF" true !eof;
  Alcotest.(check int) "one idle close counted" 1 st.Httpd.idle_closed;
  Alcotest.(check int) "not a protocol error" 0 st.Httpd.protocol_errors

(* ------------------------------------------------------------------ *)
(* Request cap: http_max_reqs_per_conn cuts the connection after N
   requests, advertising Connection: close on the last response.        *)

let test_max_reqs_cap () =
  let hdrs = ref [] and eof = ref false in
  let st =
    with_http11 ~max_reqs:2 (fun () ->
        rig ~sizes:sizes3
          ~until:(fun () -> !eof)
          (fun chost cstack _bodies ->
            Clientos.spawn chost ~name:"capped" (fun () ->
                Kclock.sleep_ns 3_000_000;
                let s = Bsd_socket.tcp_socket cstack in
                ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
                let next = framer s in
                for fi = 0 to 1 do
                  push_str s (get_request fi);
                  match next () with
                  | Some (hdr, _) -> hdrs := hdr :: !hdrs
                  | None -> ()
                done;
                (* The server hung up after the capped response. *)
                push_str s (get_request 2);
                (match next () with None -> eof := true | Some _ -> ());
                ignore (Bsd_socket.so_close s))))
  in
  (match !hdrs with
  | [ second; first ] ->
      Alcotest.(check bool) "first response keeps the connection" true
        (index_of (String.lowercase_ascii first) "connection: keep-alive" <> None);
      Alcotest.(check bool) "capped response advertises close" true
        (index_of (String.lowercase_ascii second) "connection: close" <> None)
  | l -> Alcotest.failf "expected 2 responses, got %d" (List.length l));
  Alcotest.(check bool) "request past the cap saw EOF" true !eof;
  Alcotest.(check int) "one connection capped" 1 st.Httpd.capped

(* ------------------------------------------------------------------ *)
(* Sendfile vs copy: for file sizes spanning block boundaries, the
   mapped zero-copy body is byte-identical to the copy-path body — with
   and without 2% loss on the wire.                                     *)

let fetch_one ~sendfile ~loss size =
  let body = ref None and done_f = ref false in
  let st =
    with_http11 ~sendfile ~sg:sendfile (fun () ->
        rig ?loss ~sizes:[ size ]
          ~until:(fun () -> !done_f)
          (fun chost cstack _bodies ->
            Clientos.spawn chost ~name:"fetch" (fun () ->
                Kclock.sleep_ns 3_000_000;
                let s = Bsd_socket.tcp_socket cstack in
                ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
                push_str s (get_request 0);
                (match framer s () with
                | Some (hdr, b) when status_of hdr = "200" -> body := Some b
                | _ -> ());
                ignore (Bsd_socket.so_close s);
                done_f := true)))
  in
  (!body, st)

let prop_sendfile_byte_exact =
  QCheck.Test.make ~name:"http11: sendfile body byte-exact across block edges (+loss)"
    ~count:10
    QCheck.(triple (int_bound 3) (int_range (-3) 3) bool)
    (fun (blocks, delta, lossy) ->
      let size = max 1 ((blocks * 4096) + delta) in
      let loss = if lossy then Some 0.02 else None in
      let expect = String.init size (fun i -> Char.chr (pattern ~file:0 i)) in
      let sf_body, sf_st = fetch_one ~sendfile:true ~loss size in
      let cp_body, cp_st = fetch_one ~sendfile:false ~loss size in
      sf_body = Some expect && cp_body = Some expect
      && sf_st.Httpd.sendfile_bodies = 1
      && sf_st.Httpd.sendfile_fallbacks = 0
      && sf_st.Httpd.body_bytes_copied = 0
      && cp_st.Httpd.sendfile_bodies = 0
      && cp_st.Httpd.body_bytes_copied = size)

(* ------------------------------------------------------------------ *)
(* Buffer-cache hardening: true-LRU eviction, pinned buffers are never
   victims, and an all-pinned cache grows instead of evicting.          *)

let test_buf_lru_and_pins () =
  let dev = Mem_blkio.make ~bytes:(1024 * 1024) () in
  let bc = Buf.create ~bsize:4096 ~max_bufs:4 dev in
  (* Fill: 0 1 2 3, all released. *)
  for i = 0 to 3 do
    Buf.brelse (Buf.bread bc i)
  done;
  (* Touch 0 so 1 becomes the true LRU, then fault 4: 1 must go. *)
  Buf.brelse (Buf.bread bc 0);
  Buf.brelse (Buf.bread bc 4);
  let s = Buf.cache_stats bc in
  Alcotest.(check int) "one eviction under pressure" 1 s.Buf.cs_evictions;
  Alcotest.(check int) "cache stays at max_bufs" 4 s.Buf.cs_cached;
  (* 0 survived (recently used): a re-read hits. *)
  let h0 = bc.Buf.hits in
  Buf.brelse (Buf.bread bc 0);
  Alcotest.(check int) "recently-used block survived" (h0 + 1) bc.Buf.hits;
  (* 1 was the victim: a re-read misses. *)
  let m0 = bc.Buf.misses in
  Buf.brelse (Buf.bread bc 1);
  Alcotest.(check int) "LRU block was the victim" (m0 + 1) bc.Buf.misses

let test_buf_pinned_never_evicted () =
  let dev = Mem_blkio.make ~bytes:(1024 * 1024) () in
  let bc = Buf.create ~bsize:4096 ~max_bufs:2 dev in
  let b0 = Buf.bread bc 0 in
  Buf.pin_held bc b0;
  (* Churn far past the cache size: the pinned block must survive. *)
  for i = 1 to 8 do
    Buf.brelse (Buf.bread bc i)
  done;
  let h0 = bc.Buf.hits in
  let again = Buf.bread bc 0 in
  Alcotest.(check int) "pinned block still resident" (h0 + 1) bc.Buf.hits;
  Alcotest.(check bool) "same buffer, refs intact" true (again == b0 && b0.Buf.b_refs = 2);
  Buf.brelse again;
  Buf.unpin bc b0;
  let s = Buf.cache_stats bc in
  Alcotest.(check (pair int int)) "pin/unpin accounted" (1, 1) (s.Buf.cs_pins, s.Buf.cs_unpins);
  Alcotest.(check bool) "evictions happened around the pin" true (s.Buf.cs_evictions > 0)

let test_buf_all_pinned_grows () =
  let dev = Mem_blkio.make ~bytes:(1024 * 1024) () in
  let bc = Buf.create ~bsize:4096 ~max_bufs:2 dev in
  (* Three blocks, all pinned: nothing is evictable, so the cache grows
     past max_bufs (BSD under wired pages) rather than stealing bytes
     that may be queued for DMA. *)
  let bs = List.init 3 (fun i -> Buf.bread bc i) in
  List.iter (fun b -> Buf.pin_held bc b) bs;
  let s = Buf.cache_stats bc in
  Alcotest.(check int) "no evictions with everything pinned" 0 s.Buf.cs_evictions;
  Alcotest.(check int) "cache grew past max_bufs" 3 s.Buf.cs_cached;
  List.iter (fun b -> Buf.unpin bc b) bs

(* ------------------------------------------------------------------ *)
(* Flags off: the stock HTTP/1.0 engine runs, and none of the new
   keep-alive/sendfile counters move.                                   *)

let test_flags_off_untouched () =
  let resp = ref "" and done_f = ref false in
  let st =
    rig ~sizes:sizes3
      ~until:(fun () -> !done_f)
      (fun chost cstack _bodies ->
        Clientos.spawn chost ~name:"v10" (fun () ->
            Kclock.sleep_ns 3_000_000;
            let s = Bsd_socket.tcp_socket cstack in
            ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80);
            push_str s "GET /f1.bin HTTP/1.0\r\n\r\n";
            resp := drain s;
            ignore (Bsd_socket.so_close s);
            done_f := true))
  in
  let expect = String.init 4096 (fun i -> Char.chr (pattern ~file:1 i)) in
  Alcotest.(check bool) "stock HTTP/1.0 close-per-request response" true
    (String.length !resp > 12
    && String.sub !resp 0 12 = "HTTP/1.0 200"
    &&
    match index_of !resp "\r\n\r\n" with
    | Some i -> String.sub !resp (i + 4) (String.length !resp - i - 4) = expect
    | None -> false);
  Alcotest.(check int) "no reuse counted" 0 st.Httpd.reused;
  Alcotest.(check int) "no pipelining counted" 0 st.Httpd.pipelined;
  Alcotest.(check int) "no idle closes" 0 st.Httpd.idle_closed;
  Alcotest.(check int) "no caps" 0 st.Httpd.capped;
  (* The rig's reset_globals zeroed the counters; the flags-off run must
     not have moved the new ones at all. *)
  Alcotest.(check int) "no sendfile bodies" 0 Cost.counters.Cost.sendfile_bodies;
  Alcotest.(check int) "no sendfile fallbacks" 0 Cost.counters.Cost.sendfile_fallbacks;
  Alcotest.(check int) "no counted body copies" 0 Cost.counters.Cost.http_body_copies

let suite =
  [ Alcotest.test_case "scanner: one-byte drips, cursor never rewinds" `Quick
      test_scanner_drip;
    Alcotest.test_case "scanner: pipelined framing, terminator semantics, growth"
      `Quick test_scanner_pipelined_and_terminators;
    Alcotest.test_case "keep-alive sequence == N fresh 1.0 connections (reactor)"
      `Quick test_keepalive_sequence_reactor;
    Alcotest.test_case "keep-alive sequence == N fresh 1.0 connections (threads)"
      `Quick test_keepalive_sequence_threaded;
    Alcotest.test_case "pipelined responses come back strictly in order" `Quick
      test_pipelined_in_order;
    Alcotest.test_case "idle timeout closes and is counted" `Quick test_idle_timeout;
    Alcotest.test_case "http_max_reqs_per_conn caps with Connection: close" `Quick
      test_max_reqs_cap;
    QCheck_alcotest.to_alcotest prop_sendfile_byte_exact;
    Alcotest.test_case "buf cache: true-LRU eviction" `Quick test_buf_lru_and_pins;
    Alcotest.test_case "buf cache: pinned buffers are never evicted" `Quick
      test_buf_pinned_never_evicted;
    Alcotest.test_case "buf cache: all-pinned cache grows, never steals" `Quick
      test_buf_all_pinned_grows;
    Alcotest.test_case "flags off: stock 1.0 engine, new counters untouched" `Quick
      test_flags_off_untouched ]
