(* The event core: hierarchical timing wheel against a reference
   scheduler, cascade boundaries, per-CPU wheel firing through Kwheel,
   kqueue trigger modes and coalescing, the World.cancel regression,
   and the flags-off discipline (legacy paths never touch the new
   counters). *)

let ok = function Ok v -> v | Result.Error _ -> Alcotest.fail "unexpected COM error"

(* ---- World.cancel: a cancelled event unlinks immediately ---- *)

let test_world_cancel () =
  let w = World.create () in
  let fired = ref [] in
  let e1 = World.at w 10 (fun () -> fired := 1 :: !fired) in
  let _e2 = World.at w 10 (fun () -> fired := 2 :: !fired) in
  let e3 = World.at w 20 (fun () -> fired := 3 :: !fired) in
  Alcotest.(check int) "three live events" 3 (World.pending w);
  World.cancel e1;
  World.cancel e3;
  World.cancel e3 (* idempotent *);
  Alcotest.(check int) "cancelled events unlink immediately, not at fire time" 1
    (World.pending w);
  World.run w;
  Alcotest.(check (list int)) "only the live event ran" [ 2 ] !fired

(* ---- timing wheel vs reference scheduler ----

   The model mirrors the documented contract exactly: an entry armed at
   wheel tick T for deadline D is due at tick max(ceil(D/g), T+1), and
   fires at the wheel time of that very tick.  Random interleavings of
   arm / cancel / advance must agree with the model at every step. *)

type model_entry = {
  due_tick : int;
  mutable m_fired : bool;
  mutable m_cancelled : bool;
  m_entry : Timewheel.entry;
}

let prop_wheel_model =
  QCheck.Test.make ~name:"timewheel: agrees with reference scheduler" ~count:200
    QCheck.(small_list (triple (int_range 0 2) (int_range 0 70_000) (int_range 1 700)))
    (fun ops ->
      let w = Timewheel.create ~now_ns:0 () in
      let g = Timewheel.granularity_ns w in
      let now = ref 0 and tick = ref 0 in
      let entries = ref [] in
      let contract_ok = ref true in
      List.iter
        (fun (k, x, y) ->
          match k with
          | 0 ->
              (* arm, mid-granule jitter to exercise the ceiling *)
              let deadline_ns = !now + (x * g) + (y * 917) in
              let due =
                let d =
                  if deadline_ns <= 0 then 0 else (deadline_ns + g - 1) / g
                in
                max d (!tick + 1)
              in
              let cell = ref None in
              let e =
                Timewheel.arm w ~deadline_ns (fun () ->
                    match !cell with
                    | None -> contract_ok := false
                    | Some me ->
                        if me.m_fired || me.m_cancelled then contract_ok := false;
                        me.m_fired <- true;
                        (* fires at exactly its due tick's wheel time *)
                        if Timewheel.now_ns w <> me.due_tick * g then
                          contract_ok := false)
              in
              let me =
                { due_tick = due; m_fired = false; m_cancelled = false; m_entry = e }
              in
              cell := Some me;
              entries := me :: !entries
          | 1 -> (
              (* cancel a live entry, if any *)
              let live =
                List.filter (fun me -> not (me.m_fired || me.m_cancelled)) !entries
              in
              match live with
              | [] -> ()
              | _ ->
                  let me = List.nth live (x mod List.length live) in
                  me.m_cancelled <- true;
                  Timewheel.cancel me.m_entry)
          | _ ->
              (* advance *)
              now := !now + (x * g) + y;
              tick := max !tick (!now / g);
              ignore (Timewheel.advance w ~now_ns:!now))
        ops;
      (* flush everything still armed *)
      now := !now + (80_000 * g);
      tick := max !tick (!now / g);
      ignore (Timewheel.advance w ~now_ns:!now);
      !contract_ok
      && List.for_all
           (fun me ->
             if me.m_cancelled then not me.m_fired
             else me.m_fired && me.due_tick <= !tick)
           !entries
      && Timewheel.armed w = 0)

(* ---- cascade boundaries: entries trickle down and fire exactly once ---- *)

let test_cascades () =
  let w = Timewheel.create ~now_ns:0 () in
  let g = Timewheel.granularity_ns w in
  (* Around the level-0/1 boundary, the level-1/2 boundary, and one
     entry deep in level 2: every tier of the cascade path. *)
  let ticks = [ 1; 255; 256; 257; 511; 65_535; 65_536; 65_537; 200_000 ] in
  let fires = ref [] in
  List.iter
    (fun tk ->
      ignore
        (Timewheel.arm w ~deadline_ns:(tk * g) (fun () ->
             fires := (tk, Timewheel.now_ns w) :: !fires)))
    ticks;
  ignore (Timewheel.advance w ~now_ns:(250_000 * g));
  Alcotest.(check int) "every entry fired once" (List.length ticks)
    (List.length !fires);
  List.iter
    (fun (tk, at) ->
      Alcotest.(check int) (Printf.sprintf "entry %d fired on its tick" tk) (tk * g) at)
    !fires;
  Alcotest.(check int) "nothing left armed" 0 (Timewheel.armed w);
  if (Timewheel.stats w).Timewheel.cascades = 0 then
    Alcotest.fail "no cascades happened: boundaries were not exercised"

(* ---- Kwheel: entries fire on their home CPU, earliest-deadline wins ---- *)

let test_kwheel_home_cpu () =
  let world = World.create () in
  let m = Machine.create ~ncpus:4 world in
  let kw = Kwheel.for_machine m in
  let fired_on = ref [] in
  let record tag () =
    let cpu = match Machine.current () with Some mm -> Machine.cpu mm | None -> -1 in
    fired_on := (tag, cpu, Machine.now m) :: !fired_on
  in
  (* A far entry first, then a near one on another CPU: the near one must
     not wait for the far driver event. *)
  ignore (Kwheel.after kw ~cpu:1 ~ns:1_000_000_000 (record "far"));
  ignore (Kwheel.after kw ~cpu:2 ~ns:5_000_000 (record "near"));
  World.run world;
  let near = List.assoc "near" (List.map (fun (t, c, n) -> (t, (c, n))) !fired_on)
  and far = List.assoc "far" (List.map (fun (t, c, n) -> (t, (c, n))) !fired_on) in
  Alcotest.(check int) "near entry fired on cpu 2" 2 (fst near);
  Alcotest.(check int) "far entry fired on cpu 1" 1 (fst far);
  if snd near < 5_000_000 || snd near >= 7_000_000 then
    Alcotest.failf "near entry fired at %d, outside [5ms, 5ms+2 granules)" (snd near);
  if snd far < 1_000_000_000 then Alcotest.fail "far entry fired early"

(* ---- kqueue: trigger modes, coalescing, spurious drops ---- *)

let test_kqueue_modes () =
  let kq = Kqueue.create () in
  let s = Test_asyncio.synthetic () in
  ok (Kqueue.add kq ~ident:7 ~aio:s.Test_asyncio.syn_aio ~filter:Io_if.aio_read ~flags:0);
  (* level: reported as long as the condition holds *)
  s.Test_asyncio.fire Io_if.aio_read;
  (match Kqueue.kevent kq ~max:8 with
  | [ ev ] ->
      Alcotest.(check int) "ident" 7 ev.Io_if.ke_ident;
      Alcotest.(check int) "filter" Io_if.aio_read ev.Io_if.ke_filter
  | evs -> Alcotest.failf "level: expected 1 event, got %d" (List.length evs));
  Alcotest.(check int) "level re-queued while still ready" 1 (Kqueue.depth kq);
  s.Test_asyncio.clear ();
  Alcotest.(check int) "consumed-before-dispatch dropped as spurious" 0
    (List.length (Kqueue.kevent kq ~max:8));
  (* coalescing: two notifications, one queue entry *)
  s.Test_asyncio.fire Io_if.aio_read;
  s.Test_asyncio.fire Io_if.aio_read;
  Alcotest.(check int) "coalesced to one entry" 1 (Kqueue.depth kq);
  Alcotest.(check int) "coalesce counted" 1 (Kqueue.stats kq).Kqueue.coalesced;
  s.Test_asyncio.clear ();
  ignore (Kqueue.kevent kq ~max:8);
  ok (Kqueue.delete kq ~ident:7 ~filter:Io_if.aio_read);
  Alcotest.(check int) "deleted" 0 (Kqueue.watches kq);
  (* edge: one report per notification, even while still ready *)
  let e = Test_asyncio.synthetic () in
  ok
    (Kqueue.add kq ~ident:8 ~aio:e.Test_asyncio.syn_aio ~filter:Io_if.aio_read
       ~flags:Io_if.ev_clear);
  e.Test_asyncio.fire Io_if.aio_read;
  Alcotest.(check int) "edge: delivered" 1 (List.length (Kqueue.kevent kq ~max:8));
  Alcotest.(check int) "edge: no re-queue while still ready" 0
    (List.length (Kqueue.kevent kq ~max:8));
  e.Test_asyncio.fire Io_if.aio_read;
  Alcotest.(check int) "edge: next notification delivers again" 1
    (List.length (Kqueue.kevent kq ~max:8));
  (* oneshot: auto-deleted after the first report *)
  let o = Test_asyncio.synthetic () in
  ok
    (Kqueue.add kq ~ident:9 ~aio:o.Test_asyncio.syn_aio ~filter:Io_if.aio_read
       ~flags:Io_if.ev_oneshot);
  o.Test_asyncio.fire Io_if.aio_read;
  Alcotest.(check int) "oneshot: delivered" 1 (List.length (Kqueue.kevent kq ~max:8));
  Alcotest.(check int) "oneshot: knote auto-deleted" 1 (Kqueue.watches kq);
  o.Test_asyncio.fire Io_if.aio_read;
  Alcotest.(check int) "oneshot: gone after delivery" 0
    (List.length (Kqueue.kevent kq ~max:8))

(* ---- reactor on the kqueue engine dispatches like the legacy one ---- *)

let test_reactor_kq_engine () =
  let saved = Cost.config.Cost.kq in
  Cost.config.Cost.kq <- true;
  Fun.protect ~finally:(fun () -> Cost.config.Cost.kq <- saved) @@ fun () ->
  let r = Reactor.create () in
  let s = Test_asyncio.synthetic () in
  let hits = ref 0 in
  let w =
    Reactor.watch r s.Test_asyncio.syn_aio ~mask:Io_if.aio_read (fun _ ->
        incr hits;
        s.Test_asyncio.clear ())
  in
  s.Test_asyncio.fire Io_if.aio_read;
  ignore (Reactor.step r);
  Alcotest.(check int) "dispatched through the ready queue" 1 !hits;
  Reactor.unwatch r w;
  s.Test_asyncio.fire Io_if.aio_read;
  Alcotest.(check int) "unwatch removed the knote" 0
    ((Reactor.stats r).Reactor.dispatches - 1)

(* ---- flags off: the new machinery stays cold ---- *)

let test_flags_off_counters () =
  Cost.reset_counters ();
  Alcotest.(check bool) "kq flag defaults off" false Cost.config.Cost.kq;
  Alcotest.(check bool) "wheel flag defaults off" false Cost.config.Cost.timer_wheel;
  (* legacy reactor pass *)
  let r = Reactor.create () in
  let s = Test_asyncio.synthetic () in
  let got = ref 0 in
  ignore
    (Reactor.watch r s.Test_asyncio.syn_aio ~mask:Io_if.aio_read (fun _ ->
         incr got;
         s.Test_asyncio.clear ()));
  s.Test_asyncio.fire Io_if.aio_read;
  ignore (Reactor.step r);
  Alcotest.(check int) "legacy dispatch ran" 1 !got;
  (* legacy timer path *)
  let world = World.create () in
  let m = Machine.create world in
  let ticked = ref false in
  ignore (Machine.after m 1_000 (fun () -> ticked := true));
  World.run world;
  Alcotest.(check bool) "legacy timer ran" true !ticked;
  let c = Cost.counters in
  Alcotest.(check int) "no kq posts" 0 c.Cost.kq_posted;
  Alcotest.(check int) "no kq coalesces" 0 c.Cost.kq_coalesced;
  Alcotest.(check int) "no wheel arms" 0 c.Cost.wheel_arms;
  Alcotest.(check int) "no wheel cancels" 0 c.Cost.wheel_cancels;
  Alcotest.(check int) "no wheel cascades" 0 c.Cost.wheel_cascades;
  Alcotest.(check int) "no wheel fires" 0 c.Cost.wheel_fires

let suite =
  [ Alcotest.test_case "World.cancel unlinks immediately" `Quick test_world_cancel;
    QCheck_alcotest.to_alcotest prop_wheel_model;
    Alcotest.test_case "timewheel cascade boundaries" `Quick test_cascades;
    Alcotest.test_case "kwheel fires on the home CPU" `Quick test_kwheel_home_cpu;
    Alcotest.test_case "kqueue level/edge/oneshot/coalesce" `Quick test_kqueue_modes;
    Alcotest.test_case "reactor kqueue engine" `Quick test_reactor_kq_engine;
    Alcotest.test_case "flags off: new counters untouched" `Quick
      test_flags_off_counters ]
