type t = {
  machine : Machine.t;
  sched : Thread.sched;
  traps : Trap.table;
  console : Serial.t;
  timer : Timer_dev.t;
}

let create ?(console_irq = 4) ?(timer_irq = 0) machine =
  let sched = Thread.create_sched machine in
  Thread.install sched;
  let traps = Trap.create machine in
  let console = Serial.create ~machine ~irq:console_irq () in
  let timer = Timer_dev.create ~machine ~irq:timer_irq in
  { machine; sched; traps; console; timer }

let machine t = t.machine
let sched t = t.sched
let traps t = t.traps
let console t = t.console
let timer t = t.timer

let spawn t ?cpu ?name f =
  let cpu = match cpu with Some c -> c | None -> Machine.cpu t.machine in
  (* Thread creation is free by default; the concurrency benches set
     [thread_spawn_cycles] to charge the stack carve-out to this kernel's
     clock. *)
  if Cost.config.Cost.thread_spawn_cycles > 0 then
    Machine.run_on t.machine ~cpu (fun () ->
        Cost.charge_cycles Cost.config.Cost.thread_spawn_cycles);
  Thread.spawn t.sched ~cpu ?name f;
  Machine.kick_on t.machine ~cpu

let console_putc t c =
  Machine.run_in t.machine (fun () -> Serial.write_byte t.console (Char.code c))

let console_output t = Serial.captured_output t.console

let start_clock ?(hz = 100) t =
  Timer_dev.set_periodic t.timer ~interval_ns:(1_000_000_000 / hz)

let clock_ticks t = Timer_dev.ticks t.timer
