type waker = unit -> unit

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : (waker -> unit) -> unit Effect.t

type sched = {
  machine : Machine.t;
  runqs : (unit -> unit) Queue.t array; (* one per CPU *)
  mutable live : int;
  running : bool array; (* per CPU *)
  current_name : string option array; (* per CPU *)
  mutable failures : (string * exn) list;
}

(* One scheduler per machine, found again through the current-machine
   context so [yield]/[suspend] need no explicit handle. *)
let scheds : (string, sched) Hashtbl.t = Hashtbl.create 8

let create_sched machine =
  let n = Machine.ncpus machine in
  let s =
    { machine;
      runqs = Array.init n (fun _ -> Queue.create ());
      live = 0;
      running = Array.make n false;
      current_name = Array.make n None;
      failures = [] }
  in
  Hashtbl.replace scheds (Machine.name machine) s;
  s

let self_sched () =
  match Machine.current () with
  | None -> None
  | Some m -> Hashtbl.find_opt scheds (Machine.name m)

let self_name () =
  Option.bind (self_sched ()) (fun s ->
      s.current_name.(Machine.cpu s.machine))

let self_cpu () =
  match self_sched () with None -> 0 | Some s -> Machine.cpu s.machine

let enqueue s ~cpu thunk = Queue.add thunk s.runqs.(cpu)

(* Drain the executing CPU's queue.  Threads homed on other CPUs run when
   their CPU's own kick/interrupt events fire. *)
let rec run s =
  let cpu = Machine.cpu s.machine in
  if not s.running.(cpu) then begin
    s.running.(cpu) <- true;
    let q = s.runqs.(cpu) in
    let rec loop () =
      match Queue.take_opt q with
      | None -> ()
      | Some thunk ->
          thunk ();
          loop ()
    in
    Fun.protect ~finally:(fun () -> s.running.(cpu) <- false) loop;
    (* Wakers that fired during the last thunk may have refilled the queue. *)
    if not (Queue.is_empty q) then run s
  end

let install s = Machine.set_run_hook s.machine (fun () -> run s)

(* [cpu] is the thread's home CPU: it runs, yields back, and wakes there. *)
let handler s ~cpu name =
  let open Effect.Deep in
  { retc = (fun () -> s.live <- s.live - 1);
    exnc =
      (fun e ->
        s.live <- s.live - 1;
        s.failures <- s.failures @ [ name, e ]);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                enqueue s ~cpu (fun () ->
                    s.current_name.(cpu) <- Some name;
                    continue k ()))
        | Suspend f ->
            Some
              (fun (k : (a, unit) continuation) ->
                let fired = ref false in
                let waker () =
                  if not !fired then begin
                    fired := true;
                    enqueue s ~cpu (fun () ->
                        s.current_name.(cpu) <- Some name;
                        continue k ());
                    (* If the wake came from outside the home CPU's
                       execution (a bare world event, or another CPU), get
                       that CPU's scheduler re-entered. *)
                    if not s.running.(cpu) then Machine.kick_on s.machine ~cpu
                  end
                in
                f waker)
        | _ -> None) }

let spawn s ?cpu ?(name = "thread") f =
  let cpu = match cpu with Some c -> c | None -> Machine.cpu s.machine in
  s.live <- s.live + 1;
  enqueue s ~cpu (fun () ->
      s.current_name.(cpu) <- Some name;
      Effect.Deep.match_with f () (handler s ~cpu name))

let yield () = Effect.perform Yield
let suspend f = Effect.perform (Suspend f)
let live s = s.live
let failures s = s.failures
