(** Base kernel environment on one machine (Section 3.2).

    [create] does for the simulated PC what the kernel support library does
    on the real one: set up a convenient execution environment — trap table
    with default handlers, a process-level scheduler installed as the
    machine's run hook, a console UART, and the interval timer — so that a
    client "main" is as easy to run as a hello-world C program.  Everything
    installed here can be overridden afterwards. *)

type t

val create : ?console_irq:int -> ?timer_irq:int -> Machine.t -> t

val machine : t -> Machine.t
val sched : t -> Thread.sched
val traps : t -> Trap.table
val console : t -> Serial.t
val timer : t -> Timer_dev.t

(** [spawn t ?cpu f] starts a process-level thread homed on CPU [cpu]
    (default: the caller's CPU) and kicks that CPU so the world will run
    it. *)
val spawn : t -> ?cpu:int -> ?name:string -> (unit -> unit) -> unit

(** Write to the console UART (the default [putchar] of the minimal C
    library is pointed here by the umbrella library). *)
val console_putc : t -> char -> unit

(** Console output captured so far (the UART is unconnected by default). *)
val console_output : t -> string

(** Start a periodic clock interrupt, e.g. for preemption accounting;
    [hz] default 100. *)
val start_clock : ?hz:int -> t -> unit

(** Clock ticks since [start_clock]. *)
val clock_ticks : t -> int
