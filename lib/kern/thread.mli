(** Cooperative process-level threads.

    The OSKit's encapsulated components assume the two-level blocking model
    of Section 4.7.4: many process-level threads of control, only one
    running at a time, context switches only at well-defined blocking
    points; interrupt-level activity runs to completion.  This module is the
    process level, built on OCaml effect handlers; the interrupt level is
    {!Machine}'s IRQ dispatch.

    A scheduler is per-machine: create one, install it as the machine's run
    hook (done by {!Kernel.create}), spawn threads, and drive the world. *)

type sched

val create_sched : Machine.t -> sched

(** [install s] makes [s] the machine's run hook, so interrupt-level wakeups
    get the process level running again. *)
val install : sched -> unit

(** [spawn s ?cpu ?name f] creates a runnable thread homed on CPU [cpu]
    (default: the CPU the caller executes on, or 0 from outside).  The
    thread runs, yields back, and wakes on its home CPU only.  Uncaught
    exceptions from [f] are recorded (see [failures]) and kill only that
    thread. *)
val spawn : sched -> ?cpu:int -> ?name:string -> (unit -> unit) -> unit

(** Cede the CPU to other runnable threads.  Must be called from a
    thread. *)
val yield : unit -> unit

(** A waker moves its suspended thread back to the run queue; calling it
    more than once is harmless. *)
type waker = unit -> unit

(** [suspend f] blocks the calling thread; [f] receives the waker and must
    arrange for it to be called (from interrupt level or another thread). *)
val suspend : (waker -> unit) -> unit

(** [run s] executes the calling CPU's runnable threads until none remain
    runnable there.  Normally invoked via the machine's run hook, not
    directly. *)
val run : sched -> unit

(** Number of threads not yet terminated. *)
val live : sched -> int

(** Exceptions that escaped threads, oldest first. *)
val failures : sched -> (string * exn) list

(** The scheduler of the machine currently executing, if installed. *)
val self_sched : unit -> sched option

(** Name of the running thread (for diagnostics and the "current process"
    emulation in glue code). *)
val self_name : unit -> string option

(** CPU the caller executes on (0 outside any machine). *)
val self_cpu : unit -> int
