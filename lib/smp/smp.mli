(** Multiprocessor support (the paper's [smp] library).

    Backed by the multi-CPU {!Machine}: logical CPU enumeration reports the
    CPU actually executing, per-CPU data genuinely shards, and spin locks
    contend across CPUs with bounded-spin cycle charges and contention
    accounting (per-lock and in [Cost.counters.spin_contentions]).  Lock
    discipline is fully exercised even though the process level is
    cooperatively scheduled — the paper's encapsulated components use
    exactly these locks to become usable in multiprocessor kernels
    (Section 4.7.4). *)

type t

(** [init machine ~ncpus] — [ncpus] logical CPUs (default: the machine's
    CPU count). *)
val init : ?ncpus:int -> Machine.t -> t

val num_cpus : t -> int

(** The CPU the caller runs on (per {!Machine.cpu}; 0 when the machine is
    not executing). *)
val cpu_number : t -> int

(** {2 Per-CPU data} *)

type 'a percpu

val percpu : t -> init:(int -> 'a) -> 'a percpu

(** [get t p] — the executing CPU's slot. *)
val get : t -> 'a percpu -> 'a

val get_for : 'a percpu -> cpu:int -> 'a

(** {2 Spin locks} *)

type spinlock

val spinlock : ?name:string -> unit -> spinlock

(** [spin_lock l] — charges one bus transaction uncontended.  Contended by
    another CPU it charges a bounded spin, counts the contention, and then
    raises: on the lockstep simulator the holder cannot release while the
    spinner burns (execution is serialized), so a spin that would not
    immediately clear is a deadlock.  Re-acquisition on the holding CPU
    raises immediately (self-deadlock). *)
val spin_lock : spinlock -> unit

val spin_unlock : spinlock -> unit

(** [spin_trylock l] — the failure path charges the read + failed CAS and
    counts a contention (it is not free, unlike the old stub). *)
val spin_trylock : spinlock -> bool

val spin_contentions : spinlock -> int

(** [with_spinlock l f] *)
val with_spinlock : spinlock -> (unit -> 'a) -> 'a

(** {2 Cross-CPU calls} *)

(** [broadcast t f] runs [f cpu] for every other CPU (the IPI analogue). *)
val broadcast : t -> (int -> unit) -> unit
