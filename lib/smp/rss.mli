(** RSS flow steering: a keyed, direction-symmetric 4-tuple hash mapping
    every frame of a flow to one fixed CPU, as NIC receive-side scaling
    does in hardware.

    Both directions of a connection hash identically (the mixer sees only
    order-independent combinations of the endpoints), so a flow's PCB,
    timers, and counters can live on exactly one CPU.  All pure
    computation — no cycle charges, no counters — so steering cannot
    perturb a calibrated run. *)

(** Reset the hash secret, as a reboot would.  Same [seed] (default: the
    fixed boot seed) => identical steering, so replays are deterministic. *)
val reboot : ?seed:int -> unit -> unit

(** Keyed symmetric hash of (proto, A, B); swapping endpoint A and B gives
    the same hash.  Non-negative. *)
val flow_hash :
  proto:int -> addr_a:int32 -> port_a:int -> addr_b:int32 -> port_b:int -> int

val cpu_of_hash : ncpus:int -> int -> int

val cpu_of_flow :
  ncpus:int ->
  proto:int ->
  addr_a:int32 ->
  port_a:int ->
  addr_b:int32 ->
  port_b:int ->
  int

(** [cpu_of_frame ~ncpus frame] steers a raw Ethernet frame: TCP/UDP over
    IPv4 by 4-tuple hash; ARP, ICMP, IP fragments, and runts to CPU 0. *)
val cpu_of_frame : ncpus:int -> Bytes.t -> int
