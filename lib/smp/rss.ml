(* Receive-side scaling: a keyed, direction-symmetric hash of the IP
   4-tuple, used to steer every frame of a flow to one fixed CPU.

   Symmetry matters: the server's (laddr, lport, raddr, rport) is the
   client's tuple reversed, and retransmissions, ACKs, and the app's
   replies must all land on the same protocol shard.  We feed the mixer
   only order-independent combinations (xor and sum) of the two endpoints,
   so swapping them cannot change the hash — the Toeplitz-with-symmetric-
   key trick, without carrying the Toeplitz matrix around.

   The secret is seeded, not random: a reboot with the same seed steers
   every tuple identically, which the deterministic replays (and the
   committed benches) rely on. *)

let default_seed = 0x5eed

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let derive seed = mix (Int64.logxor (Int64.of_int seed) 0x5851F42D4C957F2DL)

let secret = ref (derive default_seed)
let reboot ?(seed = default_seed) () = secret := derive seed

let flow_hash ~proto ~addr_a ~port_a ~addr_b ~port_b =
  let a = Int32.to_int addr_a land 0xffffffff in
  let b = Int32.to_int addr_b land 0xffffffff in
  let step h k = mix (Int64.add (Int64.logxor h (Int64.of_int k)) 0x9E3779B97F4A7C15L) in
  let h = !secret in
  let h = step h proto in
  let h = step h (a lxor b) in
  let h = step h (a + b) in
  let h = step h ((port_a lxor port_b) lor ((port_a + port_b) lsl 17)) in
  Int64.to_int (Int64.shift_right_logical h 2)

let cpu_of_hash ~ncpus h = if ncpus <= 1 then 0 else h mod ncpus

let cpu_of_flow ~ncpus ~proto ~addr_a ~port_a ~addr_b ~port_b =
  cpu_of_hash ~ncpus (flow_hash ~proto ~addr_a ~port_a ~addr_b ~port_b)

(* ---- steering straight off the wire ---- *)

let u8 f off = Char.code (Bytes.get f off)
let u16 f off = (u8 f off lsl 8) lor u8 f (off + 1)

let addr32 f off =
  Int32.logor
    (Int32.shift_left (Int32.of_int (u16 f off)) 16)
    (Int32.of_int (u16 f (off + 2)))

(* [cpu_of_frame ~ncpus frame] parses an Ethernet frame just far enough to
   steer it: TCP/UDP over IPv4 hashes its 4-tuple; everything else — ARP,
   ICMP, IP fragments (later fragments carry no ports), runts — goes to
   CPU 0, the default protocol CPU.  Pure computation, no cycle charge: a
   real NIC computes RSS in hardware as the frame DMAs in. *)
let cpu_of_frame ~ncpus frame =
  if ncpus <= 1 then 0
  else
    let len = Bytes.length frame in
    if len < 34 || u16 frame 12 <> 0x0800 then 0
    else
      let ihl = u8 frame 14 land 0xf in
      let proto = u8 frame (14 + 9) in
      let frag = u16 frame (14 + 6) in
      let l4 = 14 + (ihl * 4) in
      if
        (proto <> 6 && proto <> 17)
        || frag land 0x3fff <> 0 (* MF or nonzero offset *)
        || len < l4 + 4
      then 0
      else
        let addr_a = addr32 frame (14 + 12) in
        let addr_b = addr32 frame (14 + 16) in
        let port_a = u16 frame l4 in
        let port_b = u16 frame (l4 + 2) in
        cpu_of_flow ~ncpus ~proto ~addr_a ~port_a ~addr_b ~port_b
