(* DragonFly-style netisr: one protocol shard per CPU, fed by a bounded
   message queue.  A frame steered to the executing CPU is processed
   directly (DragonFly's "direct dispatch"), so at ncpus=1 every frame
   takes exactly the pre-SMP code path; a frame for another CPU is
   enqueued and a drain event — the per-CPU protocol thread — runs it on
   its home CPU at the steering CPU's local time.  Queues are FIFO per
   CPU, so per-flow ordering is preserved (a flow only ever targets one
   CPU); overflow drops the frame and counts it, like a software-interrupt
   queue overflow. *)

type t = {
  machine : Machine.t;
  qmax : int;
  queues : (unit -> unit) Queue.t array;
  scheduled : bool array;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 8

let for_machine ?qmax machine =
  match Hashtbl.find_opt registry (Machine.name machine) with
  | Some t when t.machine == machine -> t
  | _ ->
      let n = Machine.ncpus machine in
      let qmax =
        match qmax with Some q -> q | None -> Cost.config.Cost.netisr_qmax
      in
      let t =
        { machine;
          qmax;
          queues = Array.init n (fun _ -> Queue.create ());
          scheduled = Array.make n false }
      in
      Hashtbl.replace registry (Machine.name machine) t;
      t

let queue_len t ~cpu = Queue.length t.queues.(cpu)

(* [scheduled] stays set while the drain loop runs, so a frame the loop
   itself steers back to this CPU is picked up by the running loop instead
   of scheduling a second event. *)
let rec drain t cpu () =
  match Queue.take_opt t.queues.(cpu) with
  | None -> t.scheduled.(cpu) <- false
  | Some f ->
      f ();
      drain t cpu ()

let schedule_drain t cpu =
  if not t.scheduled.(cpu) then begin
    t.scheduled.(cpu) <- true;
    (* The drain fires no earlier than the steering CPU's local time — the
       frame cannot be processed before it was steered. *)
    ignore (Machine.at_on t.machine ~cpu (Machine.now t.machine) (drain t cpu))
  end

let dispatch t ~cpu f =
  if Machine.ncpus t.machine <= 1 then begin
    f ();
    true
  end
  else if
    cpu = Machine.cpu t.machine && Queue.is_empty t.queues.(cpu)
  then begin
    (* Direct dispatch: already on the home CPU with nothing queued ahead
       (the emptiness check keeps FIFO order if a drain is in progress). *)
    f ();
    true
  end
  else if Queue.length t.queues.(cpu) >= t.qmax then begin
    Cost.count_netisr_drop ();
    false
  end
  else begin
    Queue.add f t.queues.(cpu);
    Cost.count_netisr_queued ();
    schedule_drain t cpu;
    true
  end
