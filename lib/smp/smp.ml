type t = { machine : Machine.t; ncpus : int }

let init ?ncpus machine =
  let ncpus =
    match ncpus with Some n -> n | None -> Machine.ncpus machine
  in
  if ncpus < 1 then invalid_arg "Smp.init: ncpus";
  { machine; ncpus }

let num_cpus t = t.ncpus
let cpu_number t = Machine.cpu t.machine

(* The CPU of the caller, for lock bookkeeping: locks have no machine
   handle, so read the executing machine's context (CPU 0 outside any). *)
let executing_cpu () =
  match Machine.current () with Some m -> Machine.cpu m | None -> 0

type 'a percpu = 'a array

let percpu t ~init = Array.init t.ncpus init
let get t p = p.(cpu_number t)
let get_for p ~cpu = p.(cpu)

type spinlock = {
  name : string;
  mutable holder : int; (* CPU holding it, -1 = free *)
  mutable contentions : int;
}

let spinlock ?(name = "spinlock") () = { name; holder = -1; contentions = 0 }

let acquire_cycles = 20 (* uncontended: one locked bus transaction *)
let spin_round_cycles = 20 (* one read + failed CAS per spin round *)
let spin_rounds = 64 (* bounded spin before declaring deadlock *)

let spin_lock l =
  let me = executing_cpu () in
  if l.holder = me then begin
    (* Re-acquiring on the holder's own CPU can never clear — spinning
       would hang the simulation, so it is reported as the bug it is. *)
    l.contentions <- l.contentions + 1;
    invalid_arg ("Smp.spin_lock: deadlock on " ^ l.name)
  end
  else if l.holder >= 0 then begin
    (* Held by another CPU: a genuine contended spin.  Charge the bounded
       spin; on the lockstep simulator the holder cannot release while we
       burn it (execution is serialized), so exhausting the bound is a
       cross-CPU deadlock, not a wait. *)
    l.contentions <- l.contentions + 1;
    Cost.count_spin_contention ();
    Cost.charge_cycles (spin_rounds * spin_round_cycles);
    invalid_arg
      (Printf.sprintf "Smp.spin_lock: cpu%d spun out on %s held by cpu%d" me
         l.name l.holder)
  end
  else begin
    Cost.charge_cycles acquire_cycles;
    l.holder <- me
  end

let spin_unlock l =
  if l.holder < 0 then invalid_arg ("Smp.spin_unlock: not held: " ^ l.name);
  l.holder <- -1

let spin_trylock l =
  if l.holder >= 0 then begin
    (* The failure path is not free: the read and the failed CAS cost the
       same bus transaction the successful path pays. *)
    l.contentions <- l.contentions + 1;
    Cost.count_spin_contention ();
    Cost.charge_cycles spin_round_cycles;
    false
  end
  else begin
    Cost.charge_cycles acquire_cycles;
    l.holder <- executing_cpu ();
    true
  end

let spin_contentions l = l.contentions

let with_spinlock l f =
  spin_lock l;
  Fun.protect ~finally:(fun () -> spin_unlock l) f

let broadcast t f =
  for cpu = 1 to t.ncpus - 1 do
    f cpu
  done
