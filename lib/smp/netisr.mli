(** Netisr-style per-CPU protocol shards (after DragonFly BSD).

    One bounded message queue per CPU; {!dispatch} either runs the handler
    directly (already on the home CPU — at [ncpus = 1] this is every frame,
    reproducing the pre-SMP path exactly) or enqueues it and schedules a
    drain on the home CPU via a world event.  Queues are FIFO per CPU, so
    per-flow ordering is preserved; overflow drops and counts
    ([Cost.counters.netisr_drops]). *)

type t

(** The machine's netisr instance (created on first use; [qmax] defaults
    to [Cost.config.netisr_qmax]). *)
val for_machine : ?qmax:int -> Machine.t -> t

(** [dispatch t ~cpu f] runs [f] on CPU [cpu].  Returns [false] if the
    frame was dropped on queue overflow ([f] will never run). *)
val dispatch : t -> cpu:int -> (unit -> unit) -> bool

(** Frames steered to [cpu] but not yet processed. *)
val queue_len : t -> cpu:int -> int
