(* Hierarchical timing wheel (Varghese & Lauck), 4 levels x 256 slots at
   1 ms granularity: O(1) arm and cancel, O(entries due) advance.

   Level 0 spans 256 ticks; each higher level spans 256x the one below,
   so the four levels cover ~4.6 hours of virtual time at the default
   granularity — far past a 2MSL timer.  An entry files into the lowest
   level whose span contains its deadline; when the wheel's tick crosses
   a 256^l boundary, the matching level-l slot cascades: its entries
   re-file one level down (or fire, if due this very tick).

   The module is pure with respect to time: callers pass absolute
   nanoseconds in, and [advance] walks the tick counter forward, firing
   due entries.  Nothing here touches {!Machine} or {!World}, which is
   what lets the property tests drive arbitrary interleavings against a
   reference scheduler; {!Kwheel} couples instances to a machine's
   per-CPU clocks.

   Timing contract: an entry armed for deadline D fires at the first
   [advance ~now_ns] with [now_ns >= D], at a wheel time in
   [D, D + granularity); never early, at most one granule late (armed in
   the past: one granule after "now"). *)

type stats = {
  mutable arms : int;
  mutable cancels : int;
  mutable fires : int;
  mutable cascades : int;  (* entries re-filed from a higher level *)
}

type entry = {
  e_tick : int;  (* absolute tick at/after which this entry is due *)
  e_fn : unit -> unit;
  mutable e_node : entry Dlist.node option;  (* slot position; None once off-wheel *)
  mutable e_level : int;
  e_wheel : t;
}

and t = {
  granularity_ns : int;
  base_ns : int;  (* wheel time = base_ns + tick * granularity_ns *)
  mutable tick : int;
  slots : entry Dlist.t array array;  (* levels x 256 *)
  level_count : int array;  (* live entries per level, for empty-span skips *)
  mutable armed : int;
  stats : stats;
}

let levels = 4
let slot_bits = 8
let slots_per_level = 1 lsl slot_bits (* 256 *)
let slot_mask = slots_per_level - 1
let default_granularity_ns = 1_000_000 (* 1 ms *)

let create ?(granularity_ns = default_granularity_ns) ~now_ns () =
  { granularity_ns;
    base_ns = now_ns;
    tick = 0;
    slots =
      Array.init levels (fun _ ->
          Array.init slots_per_level (fun _ -> Dlist.create ()));
    level_count = Array.make levels 0;
    armed = 0;
    stats = { arms = 0; cancels = 0; fires = 0; cascades = 0 } }

let granularity_ns t = t.granularity_ns
let armed t = t.armed
let stats t = t.stats
let now_ns t = t.base_ns + (t.tick * t.granularity_ns)
let pending e = e.e_node <> None

(* File an entry into the lowest level whose span reaches its deadline.
   Slot index at level l is bits [8l, 8l+8) of the absolute deadline
   tick, so a slot's entries are exactly those due when the wheel next
   visits it. *)
let place t e =
  let delta = e.e_tick - t.tick in
  let level =
    if delta < slots_per_level then 0
    else if delta < slots_per_level * slots_per_level then 1
    else if delta < slots_per_level * slots_per_level * slots_per_level then 2
    else 3
  in
  let slot = (e.e_tick lsr (slot_bits * level)) land slot_mask in
  e.e_level <- level;
  e.e_node <- Some (Dlist.push_back t.slots.(level).(slot) e);
  t.level_count.(level) <- t.level_count.(level) + 1

let unlink e =
  match e.e_node with
  | None -> ()
  | Some node ->
      Dlist.remove node;
      e.e_node <- None;
      let t = e.e_wheel in
      t.level_count.(e.e_level) <- t.level_count.(e.e_level) - 1

let arm t ~deadline_ns fn =
  (* Ceiling division: the fire tick is the first whose wheel time is at
     or past the deadline, so quantization can only delay, never rush. *)
  let tick =
    let d = deadline_ns - t.base_ns in
    if d <= 0 then 0 else (d + t.granularity_ns - 1) / t.granularity_ns
  in
  let tick = max tick (t.tick + 1) in
  let e = { e_tick = tick; e_fn = fn; e_node = None; e_level = 0; e_wheel = t } in
  place t e;
  t.armed <- t.armed + 1;
  t.stats.arms <- t.stats.arms + 1;
  Cost.count_wheel_arm ();
  e

let cancel e =
  if pending e then begin
    unlink e;
    let t = e.e_wheel in
    t.armed <- t.armed - 1;
    t.stats.cancels <- t.stats.cancels + 1;
    Cost.count_wheel_cancel ()
  end

let cascade t level slot =
  let moved = Dlist.drain t.slots.(level).(slot) in
  List.iter
    (fun e ->
      e.e_node <- None;
      t.level_count.(level) <- t.level_count.(level) - 1;
      t.stats.cascades <- t.stats.cascades + 1;
      Cost.count_wheel_cascade ();
      place t e)
    moved

let fire_slot t slot fired =
  (* Entries in a level-0 slot are due exactly when the wheel visits it;
     the guard tolerates a (theoretically impossible) future entry by
     re-filing instead of firing early. *)
  let due = Dlist.drain t.slots.(0).(slot) in
  List.iter
    (fun e ->
      e.e_node <- None;
      t.level_count.(0) <- t.level_count.(0) - 1;
      if e.e_tick <= t.tick then begin
        t.armed <- t.armed - 1;
        t.stats.fires <- t.stats.fires + 1;
        Cost.count_wheel_fire ();
        incr fired;
        e.e_fn ()
      end
      else place t e)
    due

let tick_once t fired =
  t.tick <- t.tick + 1;
  (* Cascade highest level first so an entry can trickle down through
     several levels at a shared boundary. *)
  if t.tick land 0xffffff = 0 then
    cascade t 3 ((t.tick lsr 24) land slot_mask);
  if t.tick land 0xffff = 0 then cascade t 2 ((t.tick lsr 16) land slot_mask);
  if t.tick land 0xff = 0 then cascade t 1 ((t.tick lsr 8) land slot_mask);
  fire_slot t (t.tick land slot_mask) fired

let advance t ~now_ns =
  let target = (now_ns - t.base_ns) / t.granularity_ns in
  let fired = ref 0 in
  while t.tick < target do
    if t.armed = 0 then t.tick <- target
    else if t.level_count.(0) = 0 then begin
      (* Nothing can fire before the next cascade boundary; jump there.
         (Fire callbacks may have armed near entries, hence the re-check
         each iteration.) *)
      let boundary = ((t.tick lsr slot_bits) + 1) lsl slot_bits in
      t.tick <- min target (boundary - 1);
      if t.tick < target then tick_once t fired
    end
    else tick_once t fired
  done;
  !fired

(* Conservative earliest wakeup: the tick of the first occupied level-0
   slot, else the next cascade boundary (where higher-level entries may
   re-file into level 0 and the caller recomputes).  Never later than
   the true earliest deadline. *)
let next_deadline_ns t =
  if t.armed = 0 then None
  else begin
    let boundary = ((t.tick lsr slot_bits) + 1) lsl slot_bits in
    let fallback = Some (t.base_ns + (boundary * t.granularity_ns)) in
    if t.level_count.(0) = 0 then fallback
    else begin
      let found = ref None in
      let i = ref 1 in
      while !found = None && !i < slots_per_level do
        let slot = (t.tick + !i) land slot_mask in
        if not (Dlist.is_empty t.slots.(0).(slot)) then
          found := Some (t.base_ns + ((t.tick + !i) * t.granularity_ns));
        incr i
      done;
      match !found with Some _ as s -> s | None -> fallback
    end
  end
