(* Intrusive doubly-linked lists with O(1) append, remove, and length.

   Both halves of the event core live on these: kqueue ready queues (a
   firing connection enqueues itself in constant time) and timing-wheel
   slots (cancel unlinks in constant time, cascades splice whole slots).
   A node remembers its owner so [remove] needs no list argument and
   double-removal is a checked no-op. *)

type 'a node = {
  v : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : 'a t option;
}

and 'a t = {
  mutable first : 'a node option;
  mutable last : 'a node option;
  mutable length : int;
}

let create () = { first = None; last = None; length = 0 }
let length t = t.length
let is_empty t = t.length = 0
let value n = n.v
let linked n = n.owner <> None

let push_back t v =
  let n = { v; prev = t.last; next = None; owner = Some t } in
  (match t.last with None -> t.first <- Some n | Some l -> l.next <- Some n);
  t.last <- Some n;
  t.length <- t.length + 1;
  n

let remove n =
  match n.owner with
  | None -> ()
  | Some t ->
      (match n.prev with None -> t.first <- n.next | Some p -> p.next <- n.next);
      (match n.next with None -> t.last <- n.prev | Some s -> s.prev <- n.prev);
      n.prev <- None;
      n.next <- None;
      n.owner <- None;
      t.length <- t.length - 1

let pop_front t =
  match t.first with
  | None -> None
  | Some n ->
      remove n;
      Some n.v

(* Iterate over a snapshot-ish traversal: the callback may remove the
   current node (we read [next] first) but must not remove the next one. *)
let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
        let next = n.next in
        f n.v;
        go next
  in
  go t.first

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc

(* Unlink every node and hand the values over, front to back.  Used by
   wheel cascades: the slot must be empty before entries re-file, since
   re-filing may target the very slot being drained. *)
let drain t =
  let rec go acc =
    match pop_front t with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []
