(* The oskit_kqueue readiness aggregator: changelist + ready queue over
   asyncio sources, the scalable half of the event core.

   Each registered (ident, condition-bit) pair is a knote holding a COM
   listener on its source.  When the source's condition becomes true the
   listener enqueues the knote on the ready queue in O(1) (or coalesces
   into an already-queued entry); [kevent] pops only queued knotes.  The
   cost of a dispatch pass is therefore O(ready connections) no matter
   how many idle registrations exist — the reactor's old
   scan-every-watch pass was O(watches).

   Modes, per BSD: level-triggered (default) knotes re-enqueue while the
   condition holds; edge-triggered ([ev_clear]) knotes report once per
   activation; one-shot ([ev_oneshot]) knotes auto-delete after their
   first report.  Every dequeue re-polls the source, so a condition
   consumed between notification and dispatch is dropped as spurious
   rather than delivered stale. *)

type mode = Level | Edge | Oneshot

type stats = {
  mutable posted : int;  (* activations that enqueued a knote *)
  mutable coalesced : int;  (* activations absorbed by a queued knote *)
  mutable delivered : int;  (* kevents returned to callers *)
  mutable spurious : int;  (* dequeues whose condition had evaporated *)
}

type knote = {
  kn_ident : int;
  kn_filter : int;  (* exactly one aio_* bit *)
  kn_aio : Io_if.asyncio;
  kn_mode : mode;
  mutable kn_listener : Io_if.listener option;
  mutable kn_active : bool;
  mutable kn_node : knote Dlist.node option;
  kn_kq : t;
}

and t = {
  knotes : (int * int, knote) Hashtbl.t;  (* (ident, filter bit) *)
  ready : knote Dlist.t;
  mutable wakeup : unit -> unit;
  stats : stats;
}

let create ?(wakeup = fun () -> ()) () =
  { knotes = Hashtbl.create 64;
    ready = Dlist.create ();
    wakeup;
    stats = { posted = 0; coalesced = 0; delivered = 0; spurious = 0 } }

let set_wakeup t f = t.wakeup <- f
let depth t = Dlist.length t.ready
let watches t = Hashtbl.length t.knotes
let stats t = t.stats

let queued kn = kn.kn_node <> None

(* Notification-level entry: O(1), no polling, no blocking. *)
let enqueue kn =
  let t = kn.kn_kq in
  if kn.kn_active then
    if queued kn then begin
      t.stats.coalesced <- t.stats.coalesced + 1;
      Cost.count_kq_coalesced ()
    end
    else begin
      let was_empty = Dlist.is_empty t.ready in
      kn.kn_node <- Some (Dlist.push_back t.ready kn);
      t.stats.posted <- t.stats.posted + 1;
      Cost.count_kq_posted ();
      if was_empty then t.wakeup ()
    end

let filter_bits = [ Io_if.aio_read; Io_if.aio_write; Io_if.aio_exception ]

let delete_knote kn =
  kn.kn_active <- false;
  (match kn.kn_node with
  | Some node ->
      Dlist.remove node;
      kn.kn_node <- None
  | None -> ());
  (match kn.kn_listener with
  | Some l ->
      ignore (kn.kn_aio.Io_if.aio_remove_listener l);
      kn.kn_listener <- None
  | None -> ());
  Hashtbl.remove kn.kn_kq.knotes (kn.kn_ident, kn.kn_filter)

(* EV_ADD of one condition bit: replace any existing knote, register the
   listener, and enqueue immediately if the condition already holds (the
   registration-time mask closes the arm-vs-ready race). *)
let add_bit t ~ident ~aio ~bit ~mode =
  (match Hashtbl.find_opt t.knotes (ident, bit) with
  | Some old -> delete_knote old
  | None -> ());
  let kn =
    { kn_ident = ident;
      kn_filter = bit;
      kn_aio = aio;
      kn_mode = mode;
      kn_listener = None;
      kn_active = true;
      kn_node = None;
      kn_kq = t }
  in
  let l = Io_if.listener_create (fun () -> enqueue kn) in
  kn.kn_listener <- Some l;
  Hashtbl.replace t.knotes (ident, bit) kn;
  match aio.Io_if.aio_add_listener l bit with
  | Result.Error _ as e ->
      delete_knote kn;
      e
  | Ok initial ->
      if initial land bit <> 0 then enqueue kn;
      Ok initial

let mode_of_flags flags =
  if flags land Io_if.ev_oneshot <> 0 then Oneshot
  else if flags land Io_if.ev_clear <> 0 then Edge
  else Level

let add t ~ident ~aio ~filter ~flags =
  let mode = mode_of_flags flags in
  let bits = List.filter (fun b -> filter land b <> 0) filter_bits in
  if bits = [] then Result.Error Error.Inval
  else begin
    List.iter
      (fun bit -> ignore (add_bit t ~ident ~aio ~bit ~mode))
      bits;
    Ok ()
  end

let delete t ~ident ~filter =
  let bits = List.filter (fun b -> filter land b <> 0) filter_bits in
  let found = ref false in
  List.iter
    (fun bit ->
      match Hashtbl.find_opt t.knotes (ident, bit) with
      | Some kn ->
          found := true;
          delete_knote kn
      | None -> ())
    bits;
  if !found then Ok () else Result.Error Error.Inval

let data_of kn mask =
  if mask land Io_if.aio_read <> 0 then kn.kn_aio.Io_if.aio_readable () else 0

let flags_of_mode = function
  | Level -> 0
  | Edge -> Io_if.ev_clear
  | Oneshot -> Io_if.ev_oneshot

(* Drain up to [max] entries, never more than were queued at entry — a
   level-triggered knote re-enqueued by [relevel] waits for the next
   call, so one hot connection cannot spin the caller.

   [relevel]: when true (the COM default), a level knote still ready at
   drain time goes back on the queue so it keeps reporting.  The reactor
   passes false and calls {!relevel} after the handler has consumed the
   condition — same semantics, no spurious round trip. *)
let kevent ?(relevel = true) t ~max =
  let budget = min max (Dlist.length t.ready) in
  let rec go n acc =
    if n = 0 then List.rev acc
    else
      match Dlist.pop_front t.ready with
      | None -> List.rev acc
      | Some kn ->
          kn.kn_node <- None;
          if not kn.kn_active then go n acc
          else begin
            let m = kn.kn_aio.Io_if.aio_poll () land kn.kn_filter in
            if m = 0 && kn.kn_mode <> Edge then begin
              (* condition consumed before dispatch *)
              t.stats.spurious <- t.stats.spurious + 1;
              go (n - 1) acc
            end
            else begin
              let desc =
                { Io_if.ke_ident = kn.kn_ident;
                  ke_filter = kn.kn_filter;
                  ke_flags = flags_of_mode kn.kn_mode;
                  ke_data = data_of kn m }
              in
              t.stats.delivered <- t.stats.delivered + 1;
              (match kn.kn_mode with
              | Oneshot -> delete_knote kn
              | Level -> if relevel && m <> 0 then enqueue kn
              | Edge -> ());
              go (n - 1) (desc :: acc)
            end
          end
  in
  go budget []

(* Post-dispatch level re-arm: re-enqueue the (ident, filter) knotes
   whose condition still holds after the handler ran. *)
let relevel t ~ident ~filter =
  List.iter
    (fun bit ->
      if filter land bit <> 0 then
        match Hashtbl.find_opt t.knotes (ident, bit) with
        | Some kn when kn.kn_active && kn.kn_mode = Level ->
            if kn.kn_aio.Io_if.aio_poll () land bit <> 0 then enqueue kn
        | _ -> ())
    filter_bits

(* The COM face: an [oskit_kqueue] object over this queue. *)
let kqueue_view t =
  let rec view () =
    { Io_if.kq_unknown = unknown ();
      kq_add = (fun ~ident ~aio ~filter ~flags -> add t ~ident ~aio ~filter ~flags);
      kq_delete = (fun ~ident ~filter -> delete t ~ident ~filter);
      kq_kevent = (fun ~max -> kevent t ~max);
      kq_depth = (fun () -> depth t);
      kq_set_wakeup = (fun f -> set_wakeup t f) }
  and obj =
    lazy
      (Com.create (fun _self ->
           [ Iid.B (Io_if.kqueue_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()
