(* Per-CPU timing-wheel instances coupled to a machine's virtual clocks.

   One {!Timewheel} per CPU, each driven by a single lazily-(re)scheduled
   {!World} event at the wheel's conservative next deadline — so a
   machine with no armed timers schedules nothing at all, and a machine
   with thousands of armed timers still wakes only when something is due
   (or at a 256-tick cascade boundary).  Entries armed for CPU [c] fire
   on CPU [c]'s clock ({!Machine.at_on}), which is how a flow's
   retransmit timer runs on its RSS home CPU without cross-CPU traffic.

   [for_machine] memoizes one instance per machine (physical identity)
   so independent components — both network stacks, the httpd's header
   deadlines — share the same per-CPU wheels. *)

type t = {
  machine : Machine.t;
  wheels : Timewheel.t array;  (* one per CPU *)
  sched_ns : int array;  (* deadline of the pending driver event; max_int = none *)
  driver : World.event option array;
}

let attach machine =
  let n = Machine.ncpus machine in
  let now = Machine.now machine in
  { machine;
    wheels = Array.init n (fun _ -> Timewheel.create ~now_ns:now ());
    sched_ns = Array.make n max_int;
    driver = Array.make n None }

let ncpus t = Array.length t.wheels
let wheel t ~cpu = t.wheels.(cpu)

(* (Re)schedule the driver event for [cpu] if the wheel's next deadline
   moved earlier than what is already pending.  The driver advances the
   wheel to the machine's current time — firing every due entry on the
   owning CPU — then re-arms itself from the new next deadline. *)
let rec reschedule t cpu =
  let w = t.wheels.(cpu) in
  match Timewheel.next_deadline_ns w with
  | None -> ()
  | Some d ->
      if d < t.sched_ns.(cpu) then begin
        (match t.driver.(cpu) with
        | Some ev -> World.cancel ev
        | None -> ());
        t.sched_ns.(cpu) <- d;
        t.driver.(cpu) <-
          Some
            (Machine.at_on t.machine ~cpu d (fun () ->
                 t.sched_ns.(cpu) <- max_int;
                 t.driver.(cpu) <- None;
                 ignore (Timewheel.advance w ~now_ns:(Machine.now t.machine));
                 reschedule t cpu))
      end

let after t ~cpu ~ns fn =
  let w = t.wheels.(cpu) in
  let e = Timewheel.arm w ~deadline_ns:(Machine.now t.machine + ns) fn in
  reschedule t cpu;
  e

let cancel e = Timewheel.cancel e

(* Aggregate wheel statistics across the per-CPU instances. *)
let stats t =
  Array.fold_left
    (fun (a, c, f, k, armed) w ->
      let s = Timewheel.stats w in
      ( a + s.Timewheel.arms,
        c + s.Timewheel.cancels,
        f + s.Timewheel.fires,
        k + s.Timewheel.cascades,
        armed + Timewheel.armed w ))
    (0, 0, 0, 0, 0) t.wheels

(* One shared instance per machine, so stacks and the httpd on the same
   machine arm the same per-CPU wheels.  Keyed by physical identity; the
   registry only ever holds machines that armed a wheel timer, so its
   footprint is a handful of entries per process. *)
let registry : (Machine.t * t) list ref = ref []

let for_machine machine =
  match List.find_opt (fun (m, _) -> m == machine) !registry with
  | Some (_, t) -> t
  | None ->
      let t = attach machine in
      registry := (machine, t) :: !registry;
      t

(* Arm a timer on the current machine's current CPU — the wheel-backed
   replacement for {!Kclock.callout_after}. *)
let callout_after ~ns fn =
  match Machine.current () with
  | None -> invalid_arg "Kwheel.callout_after: no machine running"
  | Some m ->
      let t = for_machine m in
      after t ~cpu:(Machine.cpu m) ~ns fn
