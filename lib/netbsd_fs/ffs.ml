(* ENCAPSULATED LEGACY CODE — a 4.4BSD FFS-style file system (ufs/ffs),
 * structurally reduced but on-disk-real: a superblock, inode and block
 * bitmaps, a fixed inode table, and data blocks addressed through 12
 * direct pointers plus single and double indirect blocks.  Directories
 * are files of fixed-size entries.  All device access goes through the
 * buffer cache.
 *
 * Everything here is keyed by inode number; the glue (Fs_glue) wraps the
 * VFS-granularity operations in the OSKit's COM dir/file interfaces.
 *)

let bsize = 4096
let magic = 0x4F465331
let inode_size = 128
let inodes_per_block = bsize / inode_size
let ndirect = 12
let nindirect = bsize / 4 (* 1024 block pointers per indirect block *)
let dirent_size = 32
let max_name = 27
let root_ino = 2

type kind = K_free | K_file | K_dir

type inode = {
  ino : int;
  mutable i_kind : kind;
  mutable i_nlink : int;
  mutable i_size : int;
  i_direct : int array; (* ndirect entries *)
  mutable i_sind : int; (* single indirect block, 0 = none *)
  mutable i_dind : int; (* double indirect *)
}

type sb = {
  mutable nblocks : int;
  mutable ninodes : int;
  ibmap_start : int;
  ibmap_blocks : int;
  bbmap_start : int;
  bbmap_blocks : int;
  itab_start : int;
  itab_blocks : int;
  data_start : int;
}

type t = {
  bc : Buf.t;
  sb : sb;
  icache : (int, inode) Hashtbl.t;
  mutable allocated_blocks : int;
}

exception Fs_error of Error.t

let fail e = raise (Fs_error e)

(* ---- superblock encode/decode ---- *)

let sb_write t =
  let b = Buf.getblk_nofill t.bc 0 in
  let d = b.Buf.b_data in
  Bytes.fill d 0 bsize '\000';
  let w i v = Bytes.set_int32_le d (4 * i) (Int32.of_int v) in
  w 0 magic;
  w 1 t.sb.nblocks;
  w 2 t.sb.ninodes;
  w 3 t.sb.ibmap_start;
  w 4 t.sb.ibmap_blocks;
  w 5 t.sb.bbmap_start;
  w 6 t.sb.bbmap_blocks;
  w 7 t.sb.itab_start;
  w 8 t.sb.itab_blocks;
  w 9 t.sb.data_start;
  Buf.bwrite t.bc b;
  Buf.brelse b

let sb_read bc =
  let b = Buf.bread bc 0 in
  let d = b.Buf.b_data in
  let r i = Int32.to_int (Bytes.get_int32_le d (4 * i)) in
  let result =
    if r 0 <> magic then None
    else
      Some
        { nblocks = r 1; ninodes = r 2; ibmap_start = r 3; ibmap_blocks = r 4;
          bbmap_start = r 5; bbmap_blocks = r 6; itab_start = r 7; itab_blocks = r 8;
          data_start = r 9 }
  in
  Buf.brelse b;
  result

(* ---- bitmaps ---- *)

let bitmap_get t ~start idx =
  let blk = start + (idx / (bsize * 8)) in
  let bit = idx mod (bsize * 8) in
  let b = Buf.bread t.bc blk in
  let v = Char.code (Bytes.get b.Buf.b_data (bit / 8)) land (1 lsl (bit mod 8)) <> 0 in
  Buf.brelse b;
  v

let bitmap_set t ~start idx value =
  let blk = start + (idx / (bsize * 8)) in
  let bit = idx mod (bsize * 8) in
  let b = Buf.bread t.bc blk in
  let byte = Char.code (Bytes.get b.Buf.b_data (bit / 8)) in
  let byte' =
    if value then byte lor (1 lsl (bit mod 8)) else byte land lnot (1 lsl (bit mod 8))
  in
  Bytes.set b.Buf.b_data (bit / 8) (Char.chr byte');
  Buf.bdwrite b;
  Buf.brelse b

let bitmap_find_clear t ~start ~limit =
  let rec go i = if i >= limit then None else if bitmap_get t ~start i then go (i + 1) else Some i in
  go 0

(* ---- block allocation ---- *)

let zero_block t blk =
  let b = Buf.getblk_nofill t.bc blk in
  Bytes.fill b.Buf.b_data 0 bsize '\000';
  Buf.bdwrite b;
  Buf.brelse b

let balloc t =
  match
    bitmap_find_clear t ~start:t.sb.bbmap_start ~limit:(t.sb.nblocks - t.sb.data_start)
  with
  | None -> fail Error.Nospc
  | Some idx ->
      bitmap_set t ~start:t.sb.bbmap_start idx true;
      t.allocated_blocks <- t.allocated_blocks + 1;
      let blk = t.sb.data_start + idx in
      zero_block t blk;
      blk

let bfree t blk =
  if blk <> 0 then begin
    bitmap_set t ~start:t.sb.bbmap_start (blk - t.sb.data_start) false;
    t.allocated_blocks <- t.allocated_blocks - 1
  end

(* ---- inodes ---- *)

let inode_loc t ino =
  let blk = t.sb.itab_start + (ino / inodes_per_block) in
  let off = ino mod inodes_per_block * inode_size in
  blk, off

let iread t ino =
  let blk, off = inode_loc t ino in
  let b = Buf.bread t.bc blk in
  let d = b.Buf.b_data in
  let r i = Int32.to_int (Bytes.get_int32_le d (off + (4 * i))) in
  let kind = match Bytes.get_uint16_le d off with 1 -> K_file | 2 -> K_dir | _ -> K_free in
  let node =
    { ino;
      i_kind = kind;
      i_nlink = Bytes.get_uint16_le d (off + 2);
      i_size = r 1;
      i_direct = Array.init ndirect (fun i -> r (2 + i));
      i_sind = r (2 + ndirect);
      i_dind = r (3 + ndirect) }
  in
  Buf.brelse b;
  node

let iupdate t node =
  let blk, off = inode_loc t node.ino in
  let b = Buf.bread t.bc blk in
  let d = b.Buf.b_data in
  let w i v = Bytes.set_int32_le d (off + (4 * i)) (Int32.of_int v) in
  Bytes.set_uint16_le d off
    (match node.i_kind with K_free -> 0 | K_file -> 1 | K_dir -> 2);
  Bytes.set_uint16_le d (off + 2) node.i_nlink;
  w 1 node.i_size;
  Array.iteri (fun i v -> w (2 + i) v) node.i_direct;
  w (2 + ndirect) node.i_sind;
  w (3 + ndirect) node.i_dind;
  Buf.bdwrite b;
  Buf.brelse b

let iget t ino =
  if ino < 0 || ino >= t.sb.ninodes then fail Error.Inval;
  match Hashtbl.find_opt t.icache ino with
  | Some n -> n
  | None ->
      let n = iread t ino in
      Hashtbl.replace t.icache ino n;
      n

let ialloc t kind =
  match bitmap_find_clear t ~start:t.sb.ibmap_start ~limit:t.sb.ninodes with
  | None -> fail Error.Nospc
  | Some ino ->
      bitmap_set t ~start:t.sb.ibmap_start ino true;
      let node =
        { ino; i_kind = kind; i_nlink = 0; i_size = 0;
          i_direct = Array.make ndirect 0; i_sind = 0; i_dind = 0 }
      in
      Hashtbl.replace t.icache ino node;
      iupdate t node;
      node

(* ---- bmap: file block -> disk block ---- *)

let read_ptr t blk idx =
  let b = Buf.bread t.bc blk in
  let v = Int32.to_int (Bytes.get_int32_le b.Buf.b_data (4 * idx)) in
  Buf.brelse b;
  v

let write_ptr t blk idx v =
  let b = Buf.bread t.bc blk in
  Bytes.set_int32_le b.Buf.b_data (4 * idx) (Int32.of_int v);
  Buf.bdwrite b;
  Buf.brelse b

let rec bmap t node fblk ~alloc =
  if fblk < ndirect then begin
    let blk = node.i_direct.(fblk) in
    if blk <> 0 || not alloc then blk
    else begin
      let blk = balloc t in
      node.i_direct.(fblk) <- blk;
      iupdate t node;
      blk
    end
  end
  else if fblk < ndirect + nindirect then begin
    let idx = fblk - ndirect in
    if node.i_sind = 0 then
      if not alloc then 0
      else begin
        node.i_sind <- balloc t;
        iupdate t node;
        bmap t node fblk ~alloc
      end
    else begin
      let blk = read_ptr t node.i_sind idx in
      if blk <> 0 || not alloc then blk
      else begin
        let blk = balloc t in
        write_ptr t node.i_sind idx blk;
        blk
      end
    end
  end
  else begin
    let idx = fblk - ndirect - nindirect in
    if idx >= nindirect * nindirect then fail Error.Fbig;
    if node.i_dind = 0 then
      if not alloc then 0
      else begin
        node.i_dind <- balloc t;
        iupdate t node;
        bmap t node fblk ~alloc
      end
    else begin
      let l1 = idx / nindirect and l2 = idx mod nindirect in
      let mid = read_ptr t node.i_dind l1 in
      let mid =
        if mid <> 0 then mid
        else if not alloc then 0
        else begin
          let m = balloc t in
          write_ptr t node.i_dind l1 m;
          m
        end
      in
      if mid = 0 then 0
      else begin
        let blk = read_ptr t mid l2 in
        if blk <> 0 || not alloc then blk
        else begin
          let blk = balloc t in
          write_ptr t mid l2 blk;
          blk
        end
      end
    end
  end

(* ---- file read/write ---- *)

let read t node ~off ~len ~dst ~dst_pos =
  if off < 0 then fail Error.Inval;
  let len = max 0 (min len (node.i_size - off)) in
  let rec go off len dst_pos copied =
    if len = 0 then copied
    else begin
      let fblk = off / bsize and boff = off mod bsize in
      let n = min len (bsize - boff) in
      let blk = bmap t node fblk ~alloc:false in
      (if blk = 0 then Bytes.fill dst dst_pos n '\000' (* hole *)
       else begin
         let b = Buf.bread t.bc blk in
         Cost.charge_copy n;
         Bytes.blit b.Buf.b_data boff dst dst_pos n;
         Buf.brelse b
       end);
      go (off + n) (len - n) (dst_pos + n) (copied + n)
    end
  in
  go off len dst_pos 0

(* Map [off, off+len) (clamped to the file size) as pinned buffer-cache
   fragments — the fs half of the sendfile path.  Each fragment's backing
   block is faulted in through the ordinary bread path (so it hits or
   populates the cache like any read) and its reference is kept as the
   mapping's pin instead of being brelse'd; the caller releases each
   fragment exactly once, and may take further holds for bytes it keeps in
   flight.  Returns [None] if the range crosses a hole: loaning out the
   shared zero page would let an aliasing writer corrupt every hole in the
   fs, so holes take the copy path. *)
let map_blocks t node ~off ~len =
  if off < 0 then fail Error.Inval;
  let len = max 0 (min len (node.i_size - off)) in
  let release_all acc = List.iter (fun f -> f.Io_if.fr_release ()) acc in
  let rec go off len acc =
    if len = 0 then Some (List.rev acc)
    else begin
      let fblk = off / bsize and boff = off mod bsize in
      let n = min len (bsize - boff) in
      let blk = bmap t node fblk ~alloc:false in
      if blk = 0 then begin
        release_all acc;
        None
      end
      else begin
        let b = Buf.bread t.bc blk in
        (* bread's reference becomes the mapping's pin. *)
        Buf.pin_held t.bc b;
        let frag =
          { Io_if.fr_data = b.Buf.b_data; fr_off = boff; fr_len = n;
            fr_hold = (fun () -> Buf.pin t.bc b);
            fr_release = (fun () -> Buf.unpin t.bc b) }
        in
        go (off + n) (len - n) (frag :: acc)
      end
    end
  in
  go off len []

let write t node ~off ~len ~src ~src_pos =
  if off < 0 then fail Error.Inval;
  let rec go off len src_pos written =
    if len = 0 then written
    else begin
      let fblk = off / bsize and boff = off mod bsize in
      let n = min len (bsize - boff) in
      let blk = bmap t node fblk ~alloc:true in
      let whole = boff = 0 && n = bsize in
      let b = if whole then Buf.getblk_nofill t.bc blk else Buf.bread t.bc blk in
      Cost.charge_copy n;
      Bytes.blit src src_pos b.Buf.b_data boff n;
      Buf.bdwrite b;
      Buf.brelse b;
      go (off + n) (len - n) (src_pos + n) (written + n)
    end
  in
  let written = go off len src_pos 0 in
  if off + written > node.i_size then begin
    node.i_size <- off + written;
    iupdate t node
  end;
  written

(* Free all blocks past [size] and shrink. *)
let truncate t node size =
  if size < node.i_size then begin
    let keep_blocks = (size + bsize - 1) / bsize in
    let last_fblk = (node.i_size + bsize - 1) / bsize in
    for fblk = keep_blocks to last_fblk - 1 do
      let blk = bmap t node fblk ~alloc:false in
      if blk <> 0 then begin
        bfree t blk;
        (* Clear the pointer. *)
        if fblk < ndirect then node.i_direct.(fblk) <- 0
        else if fblk < ndirect + nindirect then
          write_ptr t node.i_sind (fblk - ndirect) 0
        else begin
          let idx = fblk - ndirect - nindirect in
          let mid = read_ptr t node.i_dind (idx / nindirect) in
          if mid <> 0 then write_ptr t mid (idx mod nindirect) 0
        end
      end
    done;
    (* Release indirect blocks that became useless. *)
    if keep_blocks <= ndirect && node.i_sind <> 0 then begin
      bfree t node.i_sind;
      node.i_sind <- 0
    end;
    if keep_blocks <= ndirect + nindirect && node.i_dind <> 0 then begin
      for l1 = 0 to nindirect - 1 do
        let mid = read_ptr t node.i_dind l1 in
        if mid <> 0 then bfree t mid
      done;
      bfree t node.i_dind;
      node.i_dind <- 0
    end
  end;
  node.i_size <- size;
  iupdate t node

let ifree t node =
  truncate t node 0;
  node.i_kind <- K_free;
  node.i_nlink <- 0;
  iupdate t node;
  bitmap_set t ~start:t.sb.ibmap_start node.ino false;
  Hashtbl.remove t.icache node.ino

(* ---- directories ---- *)

let dirent_count node = node.i_size / dirent_size

let dirent_read t node idx =
  let buf = Bytes.create dirent_size in
  let n = read t node ~off:(idx * dirent_size) ~len:dirent_size ~dst:buf ~dst_pos:0 in
  if n <> dirent_size then fail Error.Io;
  let ino = Int32.to_int (Bytes.get_int32_le buf 0) in
  let namelen = Char.code (Bytes.get buf 4) in
  if ino = 0 then None else Some (ino, Bytes.sub_string buf 5 (min namelen max_name))

let dirent_write t node idx ~ino ~name =
  let buf = Bytes.make dirent_size '\000' in
  Bytes.set_int32_le buf 0 (Int32.of_int ino);
  Bytes.set buf 4 (Char.chr (String.length name));
  Bytes.blit_string name 0 buf 5 (String.length name);
  ignore (write t node ~off:(idx * dirent_size) ~len:dirent_size ~src:buf ~src_pos:0)

let check_name name =
  if name = "" || String.length name > max_name || String.contains name '/' then
    fail Error.Nametoolong

let dir_lookup t dnode name =
  if dnode.i_kind <> K_dir then fail Error.Notdir;
  let n = dirent_count dnode in
  let rec go i =
    if i >= n then None
    else
      match dirent_read t dnode i with
      | Some (ino, nm) when nm = name -> Some (i, ino)
      | Some _ | None -> go (i + 1)
  in
  go 0

let dir_enter t dnode ~name ~ino =
  check_name name;
  if dir_lookup t dnode name <> None then fail Error.Exist;
  (* Reuse a hole if one exists. *)
  let n = dirent_count dnode in
  let rec find_slot i =
    if i >= n then n else match dirent_read t dnode i with None -> i | Some _ -> find_slot (i + 1)
  in
  dirent_write t dnode (find_slot 0) ~ino ~name

let dir_remove t dnode ~name =
  match dir_lookup t dnode name with
  | None -> fail Error.Noent
  | Some (idx, ino) ->
      dirent_write t dnode idx ~ino:0 ~name:"";
      ino

let dir_entries t dnode =
  if dnode.i_kind <> K_dir then fail Error.Notdir;
  let n = dirent_count dnode in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match dirent_read t dnode i with
      | Some (_, nm) when nm <> "." && nm <> ".." -> go (i + 1) (nm :: acc)
      | Some _ | None -> go (i + 1) acc
  in
  go 0 []

let dir_is_empty t dnode = dir_entries t dnode = []

(* ---- high-level operations (single path component, as the COM
   interface demands) ---- *)

let create_file t dnode ~name =
  check_name name;
  if dir_lookup t dnode name <> None then fail Error.Exist;
  let node = ialloc t K_file in
  node.i_nlink <- 1;
  iupdate t node;
  dir_enter t dnode ~name ~ino:node.ino;
  node

let make_dir t dnode ~name =
  check_name name;
  if dir_lookup t dnode name <> None then fail Error.Exist;
  let node = ialloc t K_dir in
  node.i_nlink <- 2;
  iupdate t node;
  dir_enter t node ~name:"." ~ino:node.ino;
  dir_enter t node ~name:".." ~ino:dnode.ino;
  dir_enter t dnode ~name ~ino:node.ino;
  dnode.i_nlink <- dnode.i_nlink + 1;
  iupdate t dnode;
  node

(* Hard link: a second name for an existing file inode. *)
let link t ~from_dir ~from_name ~to_dir ~to_name =
  check_name to_name;
  match dir_lookup t from_dir from_name with
  | None -> fail Error.Noent
  | Some (_, ino) ->
      let node = iget t ino in
      if node.i_kind = K_dir then fail Error.Isdir;
      if dir_lookup t to_dir to_name <> None then fail Error.Exist;
      dir_enter t to_dir ~name:to_name ~ino;
      node.i_nlink <- node.i_nlink + 1;
      iupdate t node

let unlink t dnode ~name =
  match dir_lookup t dnode name with
  | None -> fail Error.Noent
  | Some (_, ino) ->
      let node = iget t ino in
      if node.i_kind = K_dir then fail Error.Isdir;
      ignore (dir_remove t dnode ~name);
      node.i_nlink <- node.i_nlink - 1;
      if node.i_nlink <= 0 then ifree t node else iupdate t node

let remove_dir t dnode ~name =
  if name = "." || name = ".." then fail Error.Inval;
  match dir_lookup t dnode name with
  | None -> fail Error.Noent
  | Some (_, ino) ->
      let node = iget t ino in
      if node.i_kind <> K_dir then fail Error.Notdir;
      if not (dir_is_empty t node) then fail Error.Notempty;
      ignore (dir_remove t dnode ~name);
      dnode.i_nlink <- dnode.i_nlink - 1;
      iupdate t dnode;
      node.i_nlink <- 0;
      ifree t node

let rename t src_dir ~src_name dst_dir ~dst_name =
  check_name dst_name;
  match dir_lookup t src_dir src_name with
  | None -> fail Error.Noent
  | Some (_, ino) ->
      let node = iget t ino in
      (match dir_lookup t dst_dir dst_name with
      | Some (_, existing_ino) ->
          if existing_ino = ino then ()
          else begin
            let existing = iget t existing_ino in
            if existing.i_kind = K_dir then fail Error.Exist
            else unlink t dst_dir ~name:dst_name
          end
      | None -> ());
      if dir_lookup t dst_dir dst_name = None then dir_enter t dst_dir ~name:dst_name ~ino;
      ignore (dir_remove t src_dir ~name:src_name);
      if node.i_kind = K_dir && src_dir.ino <> dst_dir.ino then begin
        (* Fix "..". *)
        (match dir_lookup t node ".." with
        | Some (idx, _) -> dirent_write t node idx ~ino:dst_dir.ino ~name:".."
        | None -> ());
        src_dir.i_nlink <- src_dir.i_nlink - 1;
        dst_dir.i_nlink <- dst_dir.i_nlink + 1;
        iupdate t src_dir;
        iupdate t dst_dir
      end

(* ---- mkfs / mount ---- *)

let newfs dev =
  let bytes = dev.Io_if.getsize () in
  let nblocks = bytes / bsize in
  if nblocks < 16 then fail Error.Nospc;
  let ninodes = max 64 (nblocks / 8) in
  let ibmap_blocks = (ninodes + (bsize * 8) - 1) / (bsize * 8) in
  let itab_blocks = (ninodes + inodes_per_block - 1) / inodes_per_block in
  (* Rough: one bit per remaining block. *)
  let bbmap_blocks = (nblocks + (bsize * 8) - 1) / (bsize * 8) in
  let ibmap_start = 1 in
  let bbmap_start = ibmap_start + ibmap_blocks in
  let itab_start = bbmap_start + bbmap_blocks in
  let data_start = itab_start + itab_blocks in
  if data_start >= nblocks then fail Error.Nospc;
  let sb =
    { nblocks; ninodes; ibmap_start; ibmap_blocks; bbmap_start; bbmap_blocks; itab_start;
      itab_blocks; data_start }
  in
  let bc = Buf.create ~bsize dev in
  let t = { bc; sb; icache = Hashtbl.create 64; allocated_blocks = 0 } in
  (* Zero the metadata area. *)
  for blk = ibmap_start to data_start - 1 do
    zero_block t blk
  done;
  sb_write t;
  (* Reserve inodes 0..2 (0 = nil, 1 = reserved, 2 = root). *)
  bitmap_set t ~start:sb.ibmap_start 0 true;
  bitmap_set t ~start:sb.ibmap_start 1 true;
  bitmap_set t ~start:sb.ibmap_start root_ino true;
  let root =
    { ino = root_ino; i_kind = K_dir; i_nlink = 2; i_size = 0;
      i_direct = Array.make ndirect 0; i_sind = 0; i_dind = 0 }
  in
  Hashtbl.replace t.icache root_ino root;
  iupdate t root;
  dir_enter t root ~name:"." ~ino:root_ino;
  dir_enter t root ~name:".." ~ino:root_ino;
  Buf.sync bc;
  t

let mount dev =
  let bc = Buf.create ~bsize dev in
  match sb_read bc with
  | None -> fail Error.Inval
  | Some sb ->
      let t = { bc; sb; icache = Hashtbl.create 64; allocated_blocks = 0 } in
      (* Count allocated data blocks for statistics. *)
      let limit = sb.nblocks - sb.data_start in
      for i = 0 to limit - 1 do
        if bitmap_get t ~start:sb.bbmap_start i then
          t.allocated_blocks <- t.allocated_blocks + 1
      done;
      t

let sync t = Buf.sync t.bc
let root t = iget t root_ino
let free_blocks t = t.sb.nblocks - t.sb.data_start - t.allocated_blocks
