(* The entry discipline for every exported method: charge the boundary
   crossing, manufacture a current process for the encapsulated code (the
   NetBSD code checks permissions against one), translate Fs_error into
   error_t results. *)
let enter f =
  Cost.charge_glue_crossing ();
  match f () with
  | v -> Ok v
  | exception Ffs.Fs_error e -> Result.Error e
  | exception Error.Error e -> Result.Error e

let stat_of (node : Ffs.inode) =
  { Io_if.st_ino = node.Ffs.ino;
    st_size = node.Ffs.i_size;
    st_kind = (match node.Ffs.i_kind with Ffs.K_dir -> Io_if.Directory | _ -> Io_if.Regular);
    st_nlink = node.Ffs.i_nlink }

let rec file_of fs (node : Ffs.inode) : Io_if.file =
  let rec view () =
    { Io_if.f_unknown = unknown ();
      f_read =
        (fun ~buf ~pos ~offset ~amount ->
          enter (fun () -> Ffs.read fs node ~off:offset ~len:amount ~dst:buf ~dst_pos:pos));
      f_write =
        (fun ~buf ~pos ~offset ~amount ->
          enter (fun () -> Ffs.write fs node ~off:offset ~len:amount ~src:buf ~src_pos:pos));
      f_getstat = (fun () -> enter (fun () -> stat_of node));
      f_setsize = (fun size -> enter (fun () -> Ffs.truncate fs node size));
      f_sync = (fun () -> enter (fun () -> Ffs.sync fs)) }
  (* The sendfile face: expose the file's buffer-cache blocks as pinned
     fragments.  A hole in the range cannot be loaned out (the mapping
     would alias the shared zero fill), so it reports Notsup and the
     caller falls back on f_read. *)
  and fmap =
    lazy
      { Io_if.fm_unknown = unknown ();
        fm_map_blocks =
          (fun ~offset ~amount ->
            match enter (fun () -> Ffs.map_blocks fs node ~off:offset ~len:amount) with
            | Ok (Some frags) -> Ok frags
            | Ok None -> Result.Error Error.Notsup
            | Result.Error _ as e -> (e :> (Io_if.file_frag list, Error.t) result)) }
  and obj =
    lazy
      (Com.create (fun _ ->
           [ Iid.B (Io_if.file_iid, fun () -> view ());
             Iid.B (Io_if.filemap_iid, fun () -> Lazy.force fmap) ]))
  and unknown () = Lazy.force obj in
  view ()

and dir_of fs (node : Ffs.inode) : Io_if.dir =
  let node_if ino =
    let child = Ffs.iget fs ino in
    match child.Ffs.i_kind with
    | Ffs.K_dir -> Io_if.Node_dir (dir_of fs child)
    | Ffs.K_file | Ffs.K_free -> Io_if.Node_file (file_of fs child)
  in
  let rec view () =
    { Io_if.d_unknown = unknown ();
      d_getstat = (fun () -> enter (fun () -> stat_of node));
      d_lookup =
        (fun name ->
          enter (fun () ->
              match Ffs.dir_lookup fs node name with
              | Some (_, ino) -> node_if ino
              | None -> Error.fail Error.Noent));
      d_create = (fun name -> enter (fun () -> file_of fs (Ffs.create_file fs node ~name)));
      d_mkdir = (fun name -> enter (fun () -> dir_of fs (Ffs.make_dir fs node ~name)));
      d_unlink = (fun name -> enter (fun () -> Ffs.unlink fs node ~name));
      d_rmdir = (fun name -> enter (fun () -> Ffs.remove_dir fs node ~name));
      d_rename =
        (fun src_name dst_dir dst_name ->
          enter (fun () ->
              (* The destination must be one of ours; recover its inode
                 through stat — the COM interface hides the rest. *)
              match dst_dir.Io_if.d_getstat () with
              | Ok st ->
                  let dnode = Ffs.iget fs st.Io_if.st_ino in
                  Ffs.rename fs node ~src_name dnode ~dst_name
              | Result.Error e -> Error.fail e));
      d_readdir = (fun () -> enter (fun () -> Ffs.dir_entries fs node));
      d_sync = (fun () -> enter (fun () -> Ffs.sync fs)) }
  and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.dir_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()

(* The COM dir contract has no link method (the donor VFS exposed it via
   vnode ops the kit's public interface omits); offer it as a glue-level
   extension keyed by directory stat identities, like rename. *)
let link root ~from_dir ~from_name ~to_dir ~to_name =
  Cost.charge_glue_crossing ();
  match root with
  | fs -> (
      match
        ( (from_dir : Io_if.dir).Io_if.d_getstat (),
          (to_dir : Io_if.dir).Io_if.d_getstat () )
      with
      | Ok a, Ok b -> (
          match
            Error.to_result (fun () ->
                Ffs.link fs ~from_dir:(Ffs.iget fs a.Io_if.st_ino) ~from_name
                  ~to_dir:(Ffs.iget fs b.Io_if.st_ino) ~to_name)
          with
          | Ok () -> Ok ()
          | Result.Error e -> Result.Error e
          | exception Ffs.Fs_error e -> Result.Error e)
      | Result.Error e, _ | _, Result.Error e -> Result.Error e)

let newfs dev = enter (fun () -> Ffs.newfs dev) |> Result.map (fun fs -> dir_of fs (Ffs.root fs))
let mount dev = enter (fun () -> Ffs.mount dev) |> Result.map (fun fs -> dir_of fs (Ffs.root fs))

(* Variants that also return the file-system handle for glue-level
   extensions such as [link]. *)
let newfs_fs dev =
  enter (fun () -> Ffs.newfs dev) |> Result.map (fun fs -> fs, dir_of fs (Ffs.root fs))

let mount_fs dev =
  enter (fun () -> Ffs.mount dev) |> Result.map (fun fs -> fs, dir_of fs (Ffs.root fs))
let sync_all (root : Io_if.dir) = root.Io_if.d_sync ()
