(** GLUE — exports the NetBSD-derived file system as OSKit COM components
    (Section 3.8).

    [mount] hands back the root as an [Io_if.dir].  The exported interface
    is deliberately the donor's internal VFS granularity — [lookup] takes a
    single pathname component — which is what made the secure file server
    possible without touching the file system internals.  Every call
    crosses the encapsulation boundary (glue charge + manufactured current
    process, Section 4.7.5). *)

(** Files exported here also carry the {!Io_if.filemap} face (reached by
    [Com.query]): response-sized byte ranges map to pinned buffer-cache
    fragments for the zero-copy sendfile path, with [Error.Notsup] for
    ranges that cross a hole. *)

(** [newfs blkio] formats the device and returns its mounted root. *)
val newfs : Io_if.blkio -> (Io_if.dir, Error.t) result

(** [mount blkio] mounts an existing file system. *)
val mount : Io_if.blkio -> (Io_if.dir, Error.t) result

(** Flush delayed writes (the [d_sync]/[f_sync] methods do this too). *)
val sync_all : Io_if.dir -> (unit, Error.t) result

(** Variants returning the file-system handle alongside the root, for the
    glue-level extensions below. *)
val newfs_fs : Io_if.blkio -> (Ffs.t * Io_if.dir, Error.t) result

val mount_fs : Io_if.blkio -> (Ffs.t * Io_if.dir, Error.t) result

(** [link fs ~from_dir ~from_name ~to_dir ~to_name] — hard link, a
    glue-level extension (the public COM dir contract omits it); both
    directories must belong to [fs]. *)
val link :
  Ffs.t ->
  from_dir:Io_if.dir ->
  from_name:string ->
  to_dir:Io_if.dir ->
  to_name:string ->
  (unit, Error.t) result
