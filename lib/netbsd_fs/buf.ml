(* ENCAPSULATED LEGACY CODE — the 4.4BSD buffer cache (vfs_bio.c).
 *
 * bread/bwrite/bdwrite/brelse over a block device, with an LRU of clean
 * buffers, a hash on block number, and delayed writes flushed by sync.
 * The device below is reached through the OSKit blkio interface the glue
 * was handed at mount time — the run-time binding of Section 4.2.2.
 *
 * Pinning (PR 10): a buffer's [b_refs] doubles as its pin count.  The
 * sendfile path maps cache blocks straight into socket buffers, so a
 * block may stay referenced long after the fs call that faulted it in
 * returns — until the last transmitted byte is acknowledged.  Eviction
 * therefore (a) never touches a buffer with [b_refs > 0], and (b) picks
 * the true least-recently-used unreferenced buffer (oldest [b_lru_tick],
 * not hash-iteration order).  If everything is pinned the cache grows
 * past [max_bufs], as BSD's does under wired pages.
 *)

type buf = {
  b_blkno : int;
  b_data : bytes;
  mutable b_dirty : bool;
  mutable b_refs : int;
  mutable b_lru_tick : int;
}

type t = {
  dev : Io_if.blkio;
  bsize : int;
  cache : (int, buf) Hashtbl.t;
  max_bufs : int;
  mutable tick : int;
  mutable reads : int; (* device reads actually issued *)
  mutable writes : int;
  mutable hits : int;
  mutable misses : int; (* lookups that had to fault the block in *)
  mutable evictions : int; (* buffers pushed out under pressure *)
  mutable pins : int; (* sendfile pins taken (cumulative) *)
  mutable unpins : int; (* sendfile pins released (cumulative) *)
}

let create ?(max_bufs = 64) ~bsize dev =
  { dev; bsize; cache = Hashtbl.create 64; max_bufs; tick = 0; reads = 0; writes = 0;
    hits = 0; misses = 0; evictions = 0; pins = 0; unpins = 0 }

let device_read t blkno data =
  t.reads <- t.reads + 1;
  match
    t.dev.Io_if.bio_read ~buf:data ~pos:0 ~offset:(blkno * t.bsize) ~amount:t.bsize
  with
  | Ok n when n = t.bsize -> ()
  | Ok _ -> Error.fail Error.Io
  | Result.Error e -> Error.fail e

let device_write t blkno data =
  t.writes <- t.writes + 1;
  match
    t.dev.Io_if.bio_write ~buf:data ~pos:0 ~offset:(blkno * t.bsize) ~amount:t.bsize
  with
  | Ok n when n = t.bsize -> ()
  | Ok _ -> Error.fail Error.Io
  | Result.Error e -> Error.fail e

(* Evict the least recently used unreferenced buffer (writing it out first
   if it is dirty — BSD pushes delayed writes under pressure).  Referenced
   buffers — including sendfile pins — are never victims: their bytes may
   be queued for DMA right now. *)
let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun _ b ->
      if b.b_refs = 0 then
        match !victim with
        | Some v when v.b_lru_tick <= b.b_lru_tick -> ()
        | _ -> victim := Some b)
    t.cache;
  match !victim with
  | None -> () (* everything referenced: let the cache grow, as BSD does *)
  | Some b ->
      if b.b_dirty then device_write t b.b_blkno b.b_data;
      Hashtbl.remove t.cache b.b_blkno;
      t.evictions <- t.evictions + 1

let getblk t blkno ~fill =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.cache blkno with
  | Some b ->
      t.hits <- t.hits + 1;
      Cost.count_bufcache_hit ();
      b.b_refs <- b.b_refs + 1;
      b.b_lru_tick <- t.tick;
      b
  | None ->
      t.misses <- t.misses + 1;
      Cost.count_bufcache_miss ();
      if Hashtbl.length t.cache >= t.max_bufs then evict_one t;
      let data = Bytes.make t.bsize '\000' in
      if fill then device_read t blkno data;
      let b = { b_blkno = blkno; b_data = data; b_dirty = false; b_refs = 1; b_lru_tick = t.tick } in
      Hashtbl.replace t.cache blkno b;
      b

(* bread: a referenced buffer with the block's contents. *)
let bread t blkno = getblk t blkno ~fill:true

(* getblk-without-read: caller will overwrite the whole block. *)
let getblk_nofill t blkno = getblk t blkno ~fill:false

let brelse b = if b.b_refs > 0 then b.b_refs <- b.b_refs - 1

(* ---- sendfile pins ----
 *
 * The same reference count as bread/brelse, but accounted separately so
 * the cache stats show how much of the working set is wired by in-flight
 * transmits.  A mapping typically starts from a [bread] reference and
 * converts it with [pin_held]; every additional consumer takes [pin] and
 * each pin comes back through [unpin]. *)

let pin t b =
  b.b_refs <- b.b_refs + 1;
  t.pins <- t.pins + 1

(* Adopt an already-held reference (e.g. bread's) as a pin: counts the pin
   without re-referencing. *)
let pin_held t (_ : buf) = t.pins <- t.pins + 1

let unpin t b =
  if b.b_refs > 0 then b.b_refs <- b.b_refs - 1;
  t.unpins <- t.unpins + 1

(* bdwrite: mark dirty, write later. *)
let bdwrite b = b.b_dirty <- true

(* bwrite: write through now. *)
let bwrite t b =
  device_write t b.b_blkno b.b_data;
  b.b_dirty <- false

let sync t =
  let dirty = Hashtbl.fold (fun _ b acc -> if b.b_dirty then b :: acc else acc) t.cache [] in
  List.iter
    (fun b ->
      device_write t b.b_blkno b.b_data;
      b.b_dirty <- false)
    (List.sort (fun a b -> Int.compare a.b_blkno b.b_blkno) dirty)

let stats t = t.reads, t.writes, t.hits

type cache_stats = {
  cs_reads : int;
  cs_writes : int;
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;
  cs_pins : int;
  cs_unpins : int;
  cs_cached : int; (* buffers currently resident *)
  cs_pinned : int; (* buffers currently referenced (refs > 0) *)
}

let cache_stats t =
  let pinned = Hashtbl.fold (fun _ b acc -> if b.b_refs > 0 then acc + 1 else acc) t.cache 0 in
  { cs_reads = t.reads; cs_writes = t.writes; cs_hits = t.hits; cs_misses = t.misses;
    cs_evictions = t.evictions; cs_pins = t.pins; cs_unpins = t.unpins;
    cs_cached = Hashtbl.length t.cache; cs_pinned = pinned }
