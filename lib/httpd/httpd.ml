(* An HTTP static-file server component, in both serving shapes the
 * paper's substrate supports:
 *
 *  - [serve_reactor]: event-driven.  The listen socket and every
 *    connection run non-blocking behind oskit_asyncio watches on a
 *    {!Reactor}; one thread multiplexes all of them, and a connection's
 *    whole footprint is its small state record.
 *  - [serve_threaded]: thread-per-connection.  A blocking accept loop
 *    spawns a handler thread per connection, gated at [max_threads] —
 *    beyond the gate the accept queue fills and the stack's listen
 *    backlog starts dropping SYNs.
 *
 * Both serve the same files from an {!Io_if.dir} (the FFS/memfs path) and
 * speak to sockets only through the COM interfaces, so either protocol
 * stack works underneath.
 *
 * Protocol engines (selected by Cost.config.http_keepalive):
 *
 *  - flag off: HTTP/1.0, GET only, one request per connection,
 *    Connection: close — byte-identical to the original server, so the
 *    committed baselines replay exactly.
 *  - flag on: HTTP/1.1 persistent connections with bounded pipelining.
 *    Requests are parsed ahead (up to http_pipeline_max), responses go
 *    out strictly in order, every response carries Content-Length, idle
 *    connections are closed after http_idle_timeout_ns, and a connection
 *    is cut after http_max_reqs_per_conn requests (0 = unlimited).
 *
 * Body path (selected by Cost.config.sendfile, keep-alive mode only):
 * a 200 body is served zero-copy when the socket exports the
 * {!Io_if.sendv} face and the file the {!Io_if.filemap} face — the
 * file's buffer-cache blocks are loaned to the socket as pinned
 * fragments and ride the scatter-gather transmit path to the wire with
 * no body copy.  Anything that cannot map (Linux sockets, files with
 * holes, flag off) takes the counted copy fallback.
 *)

type stats = {
  mutable accepted : int;
  mutable requests : int;  (* well-formed requests parsed *)
  mutable responses : int;  (* 200s completed *)
  mutable not_found : int;
  mutable protocol_errors : int;  (* malformed request or EOF mid-request *)
  mutable shed : int;  (* reactor mode: accepted then dropped, over max_conns *)
  mutable bytes_out : int;
  mutable active : int;
  mutable peak_active : int;  (* high-water concurrent connections *)
  (* overload guards (Cost.config.httpd_guard) *)
  mutable shed_503 : int;  (* answered 503 + Retry-After over the high-water mark *)
  mutable deadline_closed : int;  (* closed: headers not done by the deadline *)
  mutable hdr_overflow : int;  (* closed: request headers over the byte bound *)
  (* keep-alive engine (Cost.config.http_keepalive) *)
  mutable reused : int;  (* requests served on an already-used connection *)
  mutable pipelined : int;  (* requests parsed while a response was still queued *)
  mutable idle_closed : int;  (* closed by the keep-alive idle timeout *)
  mutable capped : int;  (* connections cut by http_max_reqs_per_conn *)
  (* body path (Cost.config.sendfile) *)
  mutable sendfile_bodies : int;  (* bodies served from mapped cache blocks *)
  mutable sendfile_fallbacks : int;  (* sendfile wanted, had to copy *)
  mutable body_bytes_copied : int;  (* body bytes through the copy path (keep-alive mode) *)
}

let make_stats () =
  { accepted = 0; requests = 0; responses = 0; not_found = 0; protocol_errors = 0;
    shed = 0; bytes_out = 0; active = 0; peak_active = 0; shed_503 = 0;
    deadline_closed = 0; hdr_overflow = 0; reused = 0; pipelined = 0; idle_closed = 0;
    capped = 0; sendfile_bodies = 0; sendfile_fallbacks = 0; body_bytes_copied = 0 }

(* The per-connection memory the two serving modes pay — what the
   equal-memory comparison in bench/httpbench divides a RAM budget by.  A
   parked handler thread owns a kernel stack; a reactor connection owns a
   state record (socket, watch, request buffer). *)
let thread_stack_bytes = 32 * 1024
let conn_state_bytes = 2 * 1024

(* ---- request framing (shared by both modes and both engines) ----
 *
 * A request ends at the first "\r\n\r\n" or "\n\n".  The original server
 * re-ran a substring search over the whole buffer after every recv —
 * quadratic in the request size when headers arrive in drips.  The
 * scanner below keeps a resume cursor and looks at every received byte
 * exactly once, so framing is O(bytes received) however the bytes are
 * chopped; the terminator test looks {e backward} from the cursor, which
 * is why no rewind is ever needed. *)

type reqbuf = {
  mutable rb_data : bytes;
  mutable rb_len : int;  (* bytes received and not discarded *)
  mutable rb_start : int;  (* start of the current (unconsumed) request *)
  mutable rb_scan : int;  (* next byte the terminator scan will test *)
  mutable rb_found : bool;  (* one-shot mode: a terminator has been seen *)
}

let rb_create () =
  { rb_data = Bytes.create 512; rb_len = 0; rb_start = 0; rb_scan = 0; rb_found = false }

let rb_append rb src n =
  if rb.rb_start = rb.rb_len && rb.rb_start > 0 then begin
    (* Everything consumed: restart at the origin instead of growing. *)
    rb.rb_len <- 0;
    rb.rb_start <- 0;
    rb.rb_scan <- 0
  end;
  let need = rb.rb_len + n in
  if need > Bytes.length rb.rb_data then begin
    let cap = ref (2 * Bytes.length rb.rb_data) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let d = Bytes.create !cap in
    Bytes.blit rb.rb_data 0 d 0 rb.rb_len;
    rb.rb_data <- d
  end;
  Bytes.blit src 0 rb.rb_data rb.rb_len n;
  rb.rb_len <- rb.rb_len + n

(* Unconsumed bytes (the partial request still being received). *)
let rb_pending rb = rb.rb_len - rb.rb_start

(* Advance the cursor to the end of the first terminator at or after it,
   or to rb_len if none; never looks back before rb_start, so requests on
   a reused connection cannot fuse across a boundary. *)
let rb_find_term rb =
  let d = rb.rb_data in
  let rec go i =
    if i >= rb.rb_len then begin
      rb.rb_scan <- rb.rb_len;
      None
    end
    else if
      Bytes.get d i = '\n'
      && ((i - 1 >= rb.rb_start && Bytes.get d (i - 1) = '\n')
         || (i - 3 >= rb.rb_start
            && Bytes.get d (i - 1) = '\r'
            && Bytes.get d (i - 2) = '\n'
            && Bytes.get d (i - 3) = '\r'))
    then begin
      rb.rb_scan <- i + 1;
      Some i
    end
    else go (i + 1)
  in
  go (max rb.rb_scan rb.rb_start)

(* One-shot completeness (the HTTP/1.0 engine): has a terminator arrived?
   Latches, and matches the original [contains "\r\n\r\n" || contains
   "\n\n"] exactly — a terminator exists somewhere iff one {e ends}
   somewhere. *)
let rb_complete rb =
  rb.rb_found
  || (match rb_find_term rb with
     | Some _ ->
         rb.rb_found <- true;
         true
     | None -> false)

let rb_contents rb = Bytes.sub_string rb.rb_data 0 rb.rb_len

(* Consume and return the next framed request (keep-alive engine). *)
let rb_next_request rb =
  match rb_find_term rb with
  | None -> None
  | Some i ->
      let req = Bytes.sub_string rb.rb_data rb.rb_start (i + 1 - rb.rb_start) in
      rb.rb_start <- i + 1;
      rb.rb_scan <- i + 1;
      if rb.rb_start = rb.rb_len then begin
        rb.rb_len <- 0;
        rb.rb_start <- 0;
        rb.rb_scan <- 0
      end;
      Some req

(* Kept for compatibility (tests); one-shot, not incremental. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let request_complete s = contains s "\r\n\r\n" || contains s "\n\n"

(* First request line: "GET <path> [HTTP/1.x]". *)
let parse_request s =
  match String.index_opt s '\n' with
  | None -> None
  | Some i -> (
      let line = String.trim (String.sub s 0 i) in
      match String.split_on_char ' ' (String.trim line) with
      | "GET" :: path :: _ when path <> "" -> Some path
      | _ -> None)

(* Walk [path] one component at a time — the VFS-granularity lookup the
   interface insists on (and what lets an interposer check each step). *)
let resolve (root : Io_if.dir) path =
  let comps = List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' path) in
  if List.mem ".." comps then Result.Error Error.Acces
  else
    let rec walk node = function
      | [] -> Ok node
      | c :: rest -> (
          match node with
          | Io_if.Node_file _ -> Result.Error Error.Notdir
          | Io_if.Node_dir d -> Result.bind (d.Io_if.d_lookup c) (fun n -> walk n rest))
    in
    walk (Io_if.Node_dir root) comps

let read_file (f : Io_if.file) =
  match f.Io_if.f_getstat () with
  | Result.Error _ as e -> e
  | Ok st ->
      let buf = Bytes.create st.Io_if.st_size in
      let rec go off =
        if off >= Bytes.length buf then Ok buf
        else
          match f.Io_if.f_read ~buf ~pos:off ~offset:off ~amount:(Bytes.length buf - off) with
          | Ok 0 -> Ok (Bytes.sub buf 0 off)
          | Ok n -> go (off + n)
          | Result.Error _ as e -> e
      in
      go 0

let header ~status ~reason ~len =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nServer: oskit-httpd\r\nContent-Type: application/octet-stream\r\n\
     Content-Length: %d\r\nConnection: close\r\n\r\n"
    status reason len

(* Build the full response for a raw request; counts into [st].  The
   HTTP/1.0 one-request engine — byte-identical to the original server. *)
let respond st root raw =
  match parse_request raw with
  | None ->
      st.protocol_errors <- st.protocol_errors + 1;
      let body = Bytes.of_string "bad request\n" in
      Bytes.cat (Bytes.of_string (header ~status:400 ~reason:"Bad Request" ~len:(Bytes.length body))) body
  | Some path -> (
      st.requests <- st.requests + 1;
      match resolve root path with
      | Ok (Io_if.Node_file f) -> (
          match read_file f with
          | Ok body ->
              st.responses <- st.responses + 1;
              st.bytes_out <- st.bytes_out + Bytes.length body;
              Bytes.cat
                (Bytes.of_string (header ~status:200 ~reason:"OK" ~len:(Bytes.length body)))
                body
          | Result.Error _ ->
              st.not_found <- st.not_found + 1;
              let body = Bytes.of_string "io error\n" in
              Bytes.cat
                (Bytes.of_string (header ~status:500 ~reason:"Internal Server Error" ~len:(Bytes.length body)))
                body)
      | Ok (Io_if.Node_dir _) | Result.Error _ ->
          st.not_found <- st.not_found + 1;
          let body = Bytes.of_string "not found\n" in
          Bytes.cat
            (Bytes.of_string (header ~status:404 ~reason:"Not Found" ~len:(Bytes.length body)))
            body)

let aio_of (sock : Io_if.socket) =
  Cost.count_com_call ();
  match Com.query sock.Io_if.so_unknown Io_if.asyncio_iid with
  | Ok a -> a
  | Result.Error e -> Error.fail e

(* The optional COM faces of the zero-copy path: a socket that can accept
   loaned fragments, a file that can loan its cache blocks.  Either may be
   absent (the Linux stack exports no sendv; a memfs file no filemap) —
   absence simply means the copy fallback. *)
let sendv_of (sock : Io_if.socket) =
  Cost.count_com_call ();
  match Com.query sock.Io_if.so_unknown Io_if.sendv_iid with
  | Ok v -> Some v
  | Result.Error _ -> None

let filemap_of (f : Io_if.file) =
  Cost.count_com_call ();
  match Com.query f.Io_if.f_unknown Io_if.filemap_iid with
  | Ok v -> Some v
  | Result.Error _ -> None

(* Load shedding above the high-water mark (Cost.config.httpd_shed_hiwat):
   a well-formed refusal the client can act on, instead of a silent drop. *)
let resp_503 =
  "HTTP/1.0 503 Service Unavailable\r\nServer: oskit-httpd\r\nRetry-After: 1\r\n\
   Content-Length: 0\r\nConnection: close\r\n\r\n"

(* ---- the HTTP/1.1 keep-alive engine (Cost.config.http_keepalive) ---- *)

(* One queued response.  [rs_data] is the header (plus the body, when it
   went through the copy path); [rs_frags] is the mapped body for the
   sendfile path ([] = none).  The connection owns one release per
   fragment and drops them the moment the body is fully handed to the
   socket — the socket takes its own holds for bytes still in flight. *)
type resp = {
  rs_data : bytes;
  rs_frags : Io_if.file_frag list;
  rs_blen : int;  (* total mapped body bytes *)
  rs_close : bool;  (* close the connection after this response *)
  mutable rs_hsent : int;
  mutable rs_bsent : int;
  mutable rs_released : bool;
}

let release_resp r =
  if not r.rs_released then begin
    r.rs_released <- true;
    List.iter (fun f -> f.Io_if.fr_release ()) r.rs_frags
  end

let header_11 ~v11 ~status ~reason ~len ~keep =
  Printf.sprintf
    "HTTP/%s %d %s\r\nServer: oskit-httpd\r\nContent-Type: application/octet-stream\r\n\
     Content-Length: %d\r\nConnection: %s\r\n\r\n"
    (if v11 then "1.1" else "1.0")
    status reason len
    (if keep then "keep-alive" else "close")

(* Request line and the Connection header.  Returns
   (path option, spoke 1.1, asked close, asked keep-alive). *)
let parse_request_11 raw =
  match String.index_opt raw '\n' with
  | None -> (None, false, false, false)
  | Some i ->
      let line = String.trim (String.sub raw 0 i) in
      let toks = List.filter (fun s -> s <> "") (String.split_on_char ' ' line) in
      let path, v11 =
        match toks with
        | "GET" :: path :: rest ->
            ( Some path,
              match rest with
              | v :: _ -> String.length v >= 8 && String.sub v 0 8 = "HTTP/1.1"
              | [] -> false )
        | _ -> (None, false)
      in
      let conn = ref "" in
      List.iteri
        (fun idx l ->
          if idx > 0 then
            match String.index_opt l ':' with
            | Some j when String.lowercase_ascii (String.trim (String.sub l 0 j)) = "connection"
              ->
                conn :=
                  String.lowercase_ascii
                    (String.trim (String.sub l (j + 1) (String.length l - j - 1)))
            | Some _ | None -> ())
        (String.split_on_char '\n' raw);
      (path, v11, !conn = "close", !conn = "keep-alive")

(* Build one response for the keep-alive engine.  [sv] present means the
   socket can take loaned fragments; [force_close] is the per-connection
   request cap.  Counting mirrors [respond]; the new keep-alive/sendfile
   counters only move here, never on the flag-off paths. *)
let respond_11 st root ~(sv : Io_if.sendv option) ~force_close raw =
  let path, v11, asked_close, asked_keep = parse_request_11 raw in
  let keep = (if v11 then not asked_close else asked_keep) && not force_close in
  let copied ~status ~reason ~keep body =
    { rs_data =
        Bytes.cat (Bytes.of_string (header_11 ~v11 ~status ~reason ~len:(Bytes.length body) ~keep)) body;
      rs_frags = [];
      rs_blen = 0;
      rs_close = not keep;
      rs_hsent = 0;
      rs_bsent = 0;
      rs_released = true }
  in
  match path with
  | None ->
      st.protocol_errors <- st.protocol_errors + 1;
      copied ~status:400 ~reason:"Bad Request" ~keep:false (Bytes.of_string "bad request\n")
  | Some path -> (
      st.requests <- st.requests + 1;
      match resolve root path with
      | Ok (Io_if.Node_file f) -> (
          let mapped =
            if not Cost.config.Cost.sendfile then None
            else
              match sv with
              | None ->
                  Cost.count_sendfile_fallback ();
                  st.sendfile_fallbacks <- st.sendfile_fallbacks + 1;
                  None
              | Some _ -> (
                  match filemap_of f with
                  | None ->
                      Cost.count_sendfile_fallback ();
                      st.sendfile_fallbacks <- st.sendfile_fallbacks + 1;
                      None
                  | Some fm -> (
                      match f.Io_if.f_getstat () with
                      | Result.Error _ -> None (* the copy path reports the error *)
                      | Ok fst -> (
                          match
                            fm.Io_if.fm_map_blocks ~offset:0 ~amount:fst.Io_if.st_size
                          with
                          | Ok frags -> Some frags
                          | Result.Error _ ->
                              (* A hole (or an fs that cannot loan): copy. *)
                              Cost.count_sendfile_fallback ();
                              st.sendfile_fallbacks <- st.sendfile_fallbacks + 1;
                              None)))
          in
          match mapped with
          | Some frags ->
              let blen = Io_if.frags_length frags in
              Cost.count_sendfile_body ();
              st.sendfile_bodies <- st.sendfile_bodies + 1;
              st.responses <- st.responses + 1;
              st.bytes_out <- st.bytes_out + blen;
              (* The header rides as the leading fragment of the same
                 sendv call (sendfile(2)'s hdtr headers): one submission,
                 and a small response stays a single segment instead of a
                 header segment plus a body segment.  The header bytes
                 are fresh and never touched again, so loaning them needs
                 no pin. *)
              let hdr =
                Bytes.of_string (header_11 ~v11 ~status:200 ~reason:"OK" ~len:blen ~keep)
              in
              let hfrag =
                { Io_if.fr_data = hdr;
                  fr_off = 0;
                  fr_len = Bytes.length hdr;
                  fr_hold = (fun () -> ());
                  fr_release = (fun () -> ()) }
              in
              { rs_data = Bytes.create 0;
                rs_frags = hfrag :: frags;
                rs_blen = Bytes.length hdr + blen;
                rs_close = not keep;
                rs_hsent = 0;
                rs_bsent = 0;
                rs_released = false }
          | None -> (
              match read_file f with
              | Ok body ->
                  st.responses <- st.responses + 1;
                  st.bytes_out <- st.bytes_out + Bytes.length body;
                  Cost.count_http_body_copy (Bytes.length body);
                  st.body_bytes_copied <- st.body_bytes_copied + Bytes.length body;
                  copied ~status:200 ~reason:"OK" ~keep body
              | Result.Error _ ->
                  st.not_found <- st.not_found + 1;
                  copied ~status:500 ~reason:"Internal Server Error" ~keep
                    (Bytes.of_string "io error\n")))
      | Ok (Io_if.Node_dir _) | Result.Error _ ->
          st.not_found <- st.not_found + 1;
          copied ~status:404 ~reason:"Not Found" ~keep (Bytes.of_string "not found\n"))

(* ---- event-driven mode ---- *)

(* One accepted connection on [reactor]: the nonblocking read-request /
   write-response state machine.  Shared by the single-reactor mode and
   the per-CPU sharded mode (where [reactor] is the one pinned to the
   connection's RSS home CPU). *)
let reactor_conn_10 ~reactor st root (c : Io_if.socket) =
    st.accepted <- st.accepted + 1;
    st.active <- st.active + 1;
    if st.active > st.peak_active then st.peak_active <- st.active;
    ignore (c.Io_if.so_setsockopt "nonblock" 1);
    let caio = aio_of c in
    let rb = rb_create () in
    let scratch = Bytes.create 2048 in
    let resp = ref Bytes.empty in
    let off = ref 0 in
    let wref = ref None in
    let writing = ref false in
    let closed = ref false in
    (* Idempotent: the header-deadline callout can fire after the
       connection already finished (or was torn down twice by racing
       read/write errors); only the first close may touch the counts. *)
    let finish () =
      if not !closed then begin
        closed := true;
        (match !wref with Some w -> Reactor.unwatch reactor w | None -> ());
        ignore (c.Io_if.so_close ());
        st.active <- st.active - 1
      end
    in
    let on_writable () =
      let remaining = Bytes.length !resp - !off in
      if remaining = 0 then finish ()
      else
        match c.Io_if.so_send ~buf:!resp ~pos:!off ~len:remaining with
        | Ok n ->
            off := !off + n;
            if !off >= Bytes.length !resp then finish ()
        | Result.Error Error.Wouldblock -> ()
        | Result.Error _ -> finish ()
    in
    let on_readable () =
      match c.Io_if.so_recv ~buf:scratch ~pos:0 ~len:(Bytes.length scratch) with
      | Ok 0 ->
          (* EOF before the request terminator. *)
          st.protocol_errors <- st.protocol_errors + 1;
          finish ()
      | Ok n ->
          rb_append rb scratch n;
          if
            Cost.config.httpd_guard
            && rb.rb_len > Cost.config.httpd_max_header_bytes
            && not (rb_complete rb)
          then begin
            (* Unbounded drip-fed headers are the other half of the
               Slowloris hold: cap the buffer and cut the connection. *)
            st.hdr_overflow <- st.hdr_overflow + 1;
            finish ()
          end
          else if rb_complete rb then begin
            resp := respond st root (rb_contents rb);
            off := 0;
            writing := true;
            (match !wref with
            | Some w -> Reactor.rewatch reactor w ~mask:Io_if.aio_write
            | None -> ());
            (* The send buffer is almost certainly writable right now. *)
            on_writable ()
          end
      | Result.Error Error.Wouldblock -> ()
      | Result.Error _ ->
          st.protocol_errors <- st.protocol_errors + 1;
          finish ()
    in
    let cb _ready = if !writing then on_writable () else on_readable () in
    wref := Some (Reactor.watch reactor caio ~mask:Io_if.aio_read cb);
    if Cost.config.httpd_guard then
      (* Slowloris defense: the whole request header must arrive within the
         deadline, or the connection is cut — a parked half-request may not
         hold its state record indefinitely. *)
      let fire () =
        if (not !closed) && not !writing then begin
          st.deadline_closed <- st.deadline_closed + 1;
          finish ()
        end
      in
      let ns = Cost.config.httpd_header_deadline_ns in
      if Cost.config.Cost.timer_wheel then
        ignore (Kwheel.callout_after ~ns fire)
      else ignore (Kclock.callout_after ~ns fire)

(* The keep-alive connection: frame requests with the resume-cursor
   scanner, parse ahead up to http_pipeline_max, answer strictly in
   order, and stay open until the peer leaves, the idle timeout fires, or
   the request cap cuts us off.  Footprint stays O(1) per connection: the
   request buffer, the bounded response queue, one watch, one live
   callout. *)
let reactor_conn_11 ~reactor st root (c : Io_if.socket) =
  st.accepted <- st.accepted + 1;
  st.active <- st.active + 1;
  if st.active > st.peak_active then st.peak_active <- st.active;
  ignore (c.Io_if.so_setsockopt "nonblock" 1);
  let caio = aio_of c in
  let sv = if Cost.config.Cost.sendfile then sendv_of c else None in
  let pipeline_max = max 1 Cost.config.http_pipeline_max in
  let max_reqs = Cost.config.http_max_reqs_per_conn in
  let rb = rb_create () in
  let scratch = Bytes.create 2048 in
  let pending : resp Queue.t = Queue.create () in
  let reqs = ref 0 in
  let wref = ref None in
  let closed = ref false in
  let closing = ref false in (* a Connection: close response is queued *)
  let cur_mask = ref Io_if.aio_read in
  let idle_gen = ref 0 in
  let finish () =
    if not !closed then begin
      closed := true;
      (match !wref with Some w -> Reactor.unwatch reactor w | None -> ());
      (* Unsent mapped bodies still hold cache pins: drop them. *)
      Queue.iter release_resp pending;
      Queue.clear pending;
      ignore (c.Io_if.so_close ());
      st.active <- st.active - 1
    end
  in
  (* Idle reaper: one self-re-arming callout per connection.  [idle_gen]
     moves on every received byte; if a full period passes with no
     movement and nothing left to write, the connection is cut. *)
  let rec arm_idle () =
    let ns = Cost.config.http_idle_timeout_ns in
    if ns > 0 then begin
      let gen = !idle_gen in
      let fire () =
        if not !closed then begin
          if gen = !idle_gen && Queue.is_empty pending then begin
            st.idle_closed <- st.idle_closed + 1;
            finish ()
          end
          else arm_idle ()
        end
      in
      if Cost.config.Cost.timer_wheel then ignore (Kwheel.callout_after ~ns fire)
      else ignore (Kclock.callout_after ~ns fire)
    end
  in
  let rec update_mask () =
    if not !closed then begin
      let m =
        (if Queue.length pending < pipeline_max && not !closing then Io_if.aio_read else 0)
        lor (if not (Queue.is_empty pending) then Io_if.aio_write else 0)
      in
      let m = if m = 0 then Io_if.aio_read else m in
      if m <> !cur_mask then begin
        cur_mask := m;
        match !wref with Some w -> Reactor.rewatch reactor w ~mask:m | None -> ()
      end
    end
  and parse_loop () =
    if (not !closed) && (not !closing) && Queue.length pending < pipeline_max then
      match rb_next_request rb with
      | None -> ()
      | Some raw ->
          if not (Queue.is_empty pending) then st.pipelined <- st.pipelined + 1;
          incr reqs;
          if !reqs > 1 then st.reused <- st.reused + 1;
          let force_close = max_reqs > 0 && !reqs >= max_reqs in
          if force_close then st.capped <- st.capped + 1;
          let r = respond_11 st root ~sv ~force_close raw in
          Queue.push r pending;
          if r.rs_close then closing := true else parse_loop ()
  and on_writable () =
    if not !closed then
      match Queue.peek_opt pending with
      | None -> ()
      | Some r ->
          if r.rs_hsent < Bytes.length r.rs_data then (
            match
              c.Io_if.so_send ~buf:r.rs_data ~pos:r.rs_hsent
                ~len:(Bytes.length r.rs_data - r.rs_hsent)
            with
            | Ok n ->
                r.rs_hsent <- r.rs_hsent + n;
                if r.rs_hsent >= Bytes.length r.rs_data then on_writable ()
            | Result.Error Error.Wouldblock -> ()
            | Result.Error _ -> finish ())
          else if r.rs_bsent < r.rs_blen then (
            match sv with
            | None -> finish () (* unreachable: mapped bodies need the face *)
            | Some sv_ -> (
                match sv_.Io_if.sv_send_frags ~frags:r.rs_frags ~pos:r.rs_bsent with
                | Ok n ->
                    r.rs_bsent <- r.rs_bsent + n;
                    if r.rs_bsent >= r.rs_blen then begin
                      release_resp r;
                      complete_resp ()
                    end
                    else if n > 0 then on_writable ()
                | Result.Error Error.Wouldblock -> ()
                | Result.Error _ -> finish ()))
          else complete_resp ()
  and complete_resp () =
    match Queue.pop pending with
    | r ->
        release_resp r;
        if r.rs_close then finish ()
        else begin
          (* Below the parse-ahead cap again: frame what is buffered. *)
          parse_loop ();
          update_mask ();
          if not (Queue.is_empty pending) then on_writable ()
        end
    | exception Queue.Empty -> ()
  in
  let on_readable () =
    match c.Io_if.so_recv ~buf:scratch ~pos:0 ~len:(Bytes.length scratch) with
    | Ok 0 ->
        (* Peer departed.  Mid-request it is a protocol error; between
           requests it is how keep-alive connections normally end. *)
        if rb_pending rb > 0 then st.protocol_errors <- st.protocol_errors + 1;
        finish ()
    | Ok n ->
        incr idle_gen;
        rb_append rb scratch n;
        parse_loop ();
        if
          Cost.config.httpd_guard
          && (not !closing)
          && Queue.length pending < pipeline_max
          && rb_pending rb > Cost.config.httpd_max_header_bytes
        then begin
          (* No terminator within the byte bound: same drip-fed-header
             guard as the 1.0 engine. *)
          st.hdr_overflow <- st.hdr_overflow + 1;
          finish ()
        end
        else begin
          update_mask ();
          if not (Queue.is_empty pending) then on_writable ()
        end
    | Result.Error Error.Wouldblock -> ()
    | Result.Error _ ->
        if rb_pending rb > 0 then st.protocol_errors <- st.protocol_errors + 1;
        finish ()
  in
  let cb ready =
    if ready land Io_if.aio_read <> 0 && not !closed then on_readable ();
    if ready land Io_if.aio_write <> 0 && not !closed then on_writable ()
  in
  wref := Some (Reactor.watch reactor caio ~mask:Io_if.aio_read cb);
  arm_idle ()

let reactor_conn ~reactor st root c =
  if Cost.config.http_keepalive then reactor_conn_11 ~reactor st root c
  else reactor_conn_10 ~reactor st root c

(* The nonblocking accept loop, shared by both reactor modes: shed above
   the guard high-water mark or the memory budget, otherwise hand the
   connection (and its peer address) to [start]. *)
let accept_drain ~st ~max_conns ~(sock : Io_if.socket) ~start () =
  let rec go () =
    match sock.Io_if.so_accept () with
    | Ok (c, peer) ->
        if
          Cost.config.httpd_guard
          && Cost.config.httpd_shed_hiwat > 0
          && st.active >= Cost.config.httpd_shed_hiwat
        then begin
          (* Above the high-water mark: tell the client to come back
             (best-effort — the socket buffer of a fresh connection takes
             the whole response) instead of silently dropping it. *)
          st.shed_503 <- st.shed_503 + 1;
          let b = Bytes.of_string resp_503 in
          ignore (c.Io_if.so_send ~buf:b ~pos:0 ~len:(Bytes.length b));
          ignore (c.Io_if.so_close ())
        end
        else if st.active >= max_conns then begin
          (* Over budget: shed the connection rather than park it. *)
          st.shed <- st.shed + 1;
          ignore (c.Io_if.so_close ())
        end
        else start c peer;
        go ()
    | Result.Error Error.Wouldblock -> ()
    | Result.Error _ -> ()
  in
  go ()

(* Registers the listen watch and returns immediately; the caller drives
   the reactor loop.  [max_conns] is the memory budget's connection cap —
   at the cap new connections are accepted and immediately dropped
   (shed), which keeps the accept queue draining. *)
let serve_reactor ~reactor ~root ~(sock : Io_if.socket) ?(max_conns = max_int) () =
  let st = make_stats () in
  ignore (sock.Io_if.so_setsockopt "nonblock" 1);
  let start c _peer = reactor_conn ~reactor st root c in
  ignore
    (Reactor.watch reactor (aio_of sock) ~mask:Io_if.aio_read (fun _ ->
         accept_drain ~st ~max_conns ~sock ~start ()));
  st

(* SMP sharded serving: the acceptor lives on [reactors.(0)] (listen
   sockets accept on CPU 0), and each accepted connection migrates to the
   reactor of its flow's RSS home CPU — [home] maps the peer address to
   that CPU, and the caller drives [reactors.(i)] with a loop thread
   pinned to CPU [i].  From then on the connection's socket I/O, protocol
   work, and wakeups all stay on its home CPU; the shared [stats] record
   is bumped from whichever CPU runs the event (serialized virtual time
   makes that safe — it is the accept queue, not the counters, that needs
   the stack-side lock). *)
let serve_reactor_sharded ~reactors ~home ~root ~(sock : Io_if.socket)
    ?(max_conns = max_int) () =
  let st = make_stats () in
  ignore (sock.Io_if.so_setsockopt "nonblock" 1);
  let start c (peer : Io_if.sockaddr) =
    let cpu = home peer mod Array.length reactors in
    reactor_conn ~reactor:reactors.(cpu) st root c
  in
  ignore
    (Reactor.watch reactors.(0) (aio_of sock) ~mask:Io_if.aio_read (fun _ ->
         accept_drain ~st ~max_conns ~sock ~start ()));
  st

(* ---- thread-per-connection mode ---- *)

let handle_blocking_10 st root (c : Io_if.socket) =
  let scratch = Bytes.create 2048 in
  let rb = rb_create () in
  let rec read_req () =
    if rb_complete rb then true
    else if Cost.config.httpd_guard && rb.rb_len > Cost.config.httpd_max_header_bytes
    then begin
      st.hdr_overflow <- st.hdr_overflow + 1;
      false
    end
    else
      match c.Io_if.so_recv ~buf:scratch ~pos:0 ~len:(Bytes.length scratch) with
      | Ok 0 -> false
      | Ok n ->
          rb_append rb scratch n;
          read_req ()
      | Result.Error _ -> false
  in
  if read_req () then begin
    let resp = respond st root (rb_contents rb) in
    let rec push off =
      if off < Bytes.length resp then
        match c.Io_if.so_send ~buf:resp ~pos:off ~len:(Bytes.length resp - off) with
        | Ok n -> push (off + n)
        | Result.Error _ -> ()
    in
    push 0
  end
  else st.protocol_errors <- st.protocol_errors + 1;
  ignore (c.Io_if.so_close ())

(* Park the calling thread until [aio] reports a condition in [mask] or
   [ns] elapses (ns <= 0: no timeout).  Returns true when ready — the
   timed wait a keep-alive handler thread needs between requests, built
   from a COM listener racing a clock callout for one waker. *)
let wait_ready_or_timeout (aio : Io_if.asyncio) ~mask ~ns =
  if aio.Io_if.aio_poll () land mask <> 0 then true
  else begin
    let ready = ref false in
    let woke = ref false in
    let listener = ref None in
    Thread.suspend (fun waker ->
        let wake r () =
          if not !woke then begin
            woke := true;
            ready := r;
            waker ()
          end
        in
        let l = Io_if.listener_create (fun () -> wake true ()) in
        listener := Some l;
        (match aio.Io_if.aio_add_listener l mask with
        | Ok m when m land mask <> 0 -> wake true ()
        | Ok _ | Result.Error _ -> ());
        if ns > 0 then
          if Cost.config.Cost.timer_wheel then ignore (Kwheel.callout_after ~ns (wake false))
          else ignore (Kclock.callout_after ~ns (wake false)));
    (match !listener with
    | Some l -> ignore (aio.Io_if.aio_remove_listener l)
    | None -> ());
    !ready
  end

(* The keep-alive handler thread: same protocol engine as the reactor
   connection, serialized — frame, respond, write, repeat.  The socket is
   nonblocking so the idle wait can race the timeout; pipelined requests
   already buffered are answered back-to-back in arrival order. *)
let handle_blocking_11 st root (c : Io_if.socket) =
  ignore (c.Io_if.so_setsockopt "nonblock" 1);
  let caio = aio_of c in
  let sv = if Cost.config.Cost.sendfile then sendv_of c else None in
  let max_reqs = Cost.config.http_max_reqs_per_conn in
  let idle_ns = Cost.config.http_idle_timeout_ns in
  let rb = rb_create () in
  let scratch = Bytes.create 2048 in
  let reqs = ref 0 in
  let rec push_bytes buf off len =
    if len = 0 then true
    else
      match c.Io_if.so_send ~buf ~pos:off ~len with
      | Ok 0 | Result.Error Error.Wouldblock ->
          wait_ready_or_timeout caio ~mask:Io_if.aio_write ~ns:idle_ns
          && push_bytes buf off len
      | Ok n -> push_bytes buf (off + n) (len - n)
      | Result.Error _ -> false
  in
  let rec push_frags sv_ r pos =
    if pos >= r.rs_blen then true
    else
      match sv_.Io_if.sv_send_frags ~frags:r.rs_frags ~pos with
      | Ok 0 | Result.Error Error.Wouldblock ->
          wait_ready_or_timeout caio ~mask:Io_if.aio_write ~ns:idle_ns
          && push_frags sv_ r pos
      | Ok n -> push_frags sv_ r (pos + n)
      | Result.Error _ -> false
  in
  let send_resp r =
    let ok = push_bytes r.rs_data 0 (Bytes.length r.rs_data) in
    let ok =
      ok
      && (r.rs_blen = 0
         || match sv with Some sv_ -> push_frags sv_ r 0 | None -> false)
    in
    release_resp r;
    ok
  in
  let rec serve () =
    match rb_next_request rb with
    | Some raw ->
        incr reqs;
        if !reqs > 1 then st.reused <- st.reused + 1;
        if rb_pending rb > 0 then st.pipelined <- st.pipelined + 1;
        let force_close = max_reqs > 0 && !reqs >= max_reqs in
        if force_close then st.capped <- st.capped + 1;
        let r = respond_11 st root ~sv ~force_close raw in
        if send_resp r && not r.rs_close then serve ()
    | None ->
        if Cost.config.httpd_guard && rb_pending rb > Cost.config.httpd_max_header_bytes
        then st.hdr_overflow <- st.hdr_overflow + 1
        else (
          match c.Io_if.so_recv ~buf:scratch ~pos:0 ~len:(Bytes.length scratch) with
          | Ok 0 -> if rb_pending rb > 0 then st.protocol_errors <- st.protocol_errors + 1
          | Ok n ->
              rb_append rb scratch n;
              serve ()
          | Result.Error Error.Wouldblock ->
              if wait_ready_or_timeout caio ~mask:Io_if.aio_read ~ns:idle_ns then serve ()
              else st.idle_closed <- st.idle_closed + 1
          | Result.Error _ ->
              if rb_pending rb > 0 then st.protocol_errors <- st.protocol_errors + 1)
  in
  serve ();
  ignore (c.Io_if.so_close ())

let handle_blocking st root c =
  if Cost.config.http_keepalive then handle_blocking_11 st root c
  else handle_blocking_10 st root c

(* Spawns the blocking accept loop via [spawn] and returns immediately.
   At [max_threads] in-flight handlers the acceptor parks, the accept
   queue backs up, and the listen backlog does the dropping — exactly the
   thread-per-connection failure mode the reactor exists to avoid. *)
let serve_threaded ~spawn ~root ~(sock : Io_if.socket) ?(max_threads = max_int) () =
  let st = make_stats () in
  let gate = Sleep_record.create ~name:"httpd_gate" () in
  let rec loop () =
    if st.active >= max_threads then begin
      Sleep_record.sleep gate;
      loop ()
    end
    else
      match sock.Io_if.so_accept () with
      | Ok (c, _peer) ->
          st.accepted <- st.accepted + 1;
          st.active <- st.active + 1;
          if st.active > st.peak_active then st.peak_active <- st.active;
          spawn (fun () ->
              handle_blocking st root c;
              st.active <- st.active - 1;
              Sleep_record.wakeup gate);
          loop ()
      | Result.Error _ -> () (* listener closed: acceptor exits *)
  in
  spawn loop;
  st
