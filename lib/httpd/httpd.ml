(* An HTTP/1.0 static-file server component, in both serving shapes the
 * paper's substrate supports:
 *
 *  - [serve_reactor]: event-driven.  The listen socket and every
 *    connection run non-blocking behind oskit_asyncio watches on a
 *    {!Reactor}; one thread multiplexes all of them, and a connection's
 *    whole footprint is its small state record.
 *  - [serve_threaded]: thread-per-connection.  A blocking accept loop
 *    spawns a handler thread per connection, gated at [max_threads] —
 *    beyond the gate the accept queue fills and the stack's listen
 *    backlog starts dropping SYNs.
 *
 * Both serve the same files from an {!Io_if.dir} (the FFS/memfs path) and
 * speak to sockets only through the COM interfaces, so either protocol
 * stack works underneath.  GET only, one request per connection,
 * Connection: close — HTTP/1.0 without keep-alive.
 *)

type stats = {
  mutable accepted : int;
  mutable requests : int;  (* well-formed requests parsed *)
  mutable responses : int;  (* 200s completed *)
  mutable not_found : int;
  mutable protocol_errors : int;  (* malformed request or EOF mid-request *)
  mutable shed : int;  (* reactor mode: accepted then dropped, over max_conns *)
  mutable bytes_out : int;
  mutable active : int;
  mutable peak_active : int;  (* high-water concurrent connections *)
  (* overload guards (Cost.config.httpd_guard) *)
  mutable shed_503 : int;  (* answered 503 + Retry-After over the high-water mark *)
  mutable deadline_closed : int;  (* closed: headers not done by the deadline *)
  mutable hdr_overflow : int;  (* closed: request headers over the byte bound *)
}

let make_stats () =
  { accepted = 0; requests = 0; responses = 0; not_found = 0; protocol_errors = 0;
    shed = 0; bytes_out = 0; active = 0; peak_active = 0; shed_503 = 0;
    deadline_closed = 0; hdr_overflow = 0 }

(* The per-connection memory the two serving modes pay — what the
   equal-memory comparison in bench/httpbench divides a RAM budget by.  A
   parked handler thread owns a kernel stack; a reactor connection owns a
   state record (socket, watch, request buffer). *)
let thread_stack_bytes = 32 * 1024
let conn_state_bytes = 2 * 1024

(* ---- request/response machinery (shared by both modes) ---- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let request_complete s = contains s "\r\n\r\n" || contains s "\n\n"

(* First request line: "GET <path> [HTTP/1.x]". *)
let parse_request s =
  match String.index_opt s '\n' with
  | None -> None
  | Some i -> (
      let line = String.trim (String.sub s 0 i) in
      match String.split_on_char ' ' (String.trim line) with
      | "GET" :: path :: _ when path <> "" -> Some path
      | _ -> None)

(* Walk [path] one component at a time — the VFS-granularity lookup the
   interface insists on (and what lets an interposer check each step). *)
let resolve (root : Io_if.dir) path =
  let comps = List.filter (fun c -> c <> "" && c <> ".") (String.split_on_char '/' path) in
  if List.mem ".." comps then Result.Error Error.Acces
  else
    let rec walk node = function
      | [] -> Ok node
      | c :: rest -> (
          match node with
          | Io_if.Node_file _ -> Result.Error Error.Notdir
          | Io_if.Node_dir d -> Result.bind (d.Io_if.d_lookup c) (fun n -> walk n rest))
    in
    walk (Io_if.Node_dir root) comps

let read_file (f : Io_if.file) =
  match f.Io_if.f_getstat () with
  | Result.Error _ as e -> e
  | Ok st ->
      let buf = Bytes.create st.Io_if.st_size in
      let rec go off =
        if off >= Bytes.length buf then Ok buf
        else
          match f.Io_if.f_read ~buf ~pos:off ~offset:off ~amount:(Bytes.length buf - off) with
          | Ok 0 -> Ok (Bytes.sub buf 0 off)
          | Ok n -> go (off + n)
          | Result.Error _ as e -> e
      in
      go 0

let header ~status ~reason ~len =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nServer: oskit-httpd\r\nContent-Type: application/octet-stream\r\n\
     Content-Length: %d\r\nConnection: close\r\n\r\n"
    status reason len

(* Build the full response for a raw request; counts into [st]. *)
let respond st root raw =
  match parse_request raw with
  | None ->
      st.protocol_errors <- st.protocol_errors + 1;
      let body = Bytes.of_string "bad request\n" in
      Bytes.cat (Bytes.of_string (header ~status:400 ~reason:"Bad Request" ~len:(Bytes.length body))) body
  | Some path -> (
      st.requests <- st.requests + 1;
      match resolve root path with
      | Ok (Io_if.Node_file f) -> (
          match read_file f with
          | Ok body ->
              st.responses <- st.responses + 1;
              st.bytes_out <- st.bytes_out + Bytes.length body;
              Bytes.cat
                (Bytes.of_string (header ~status:200 ~reason:"OK" ~len:(Bytes.length body)))
                body
          | Result.Error _ ->
              st.not_found <- st.not_found + 1;
              let body = Bytes.of_string "io error\n" in
              Bytes.cat
                (Bytes.of_string (header ~status:500 ~reason:"Internal Server Error" ~len:(Bytes.length body)))
                body)
      | Ok (Io_if.Node_dir _) | Result.Error _ ->
          st.not_found <- st.not_found + 1;
          let body = Bytes.of_string "not found\n" in
          Bytes.cat
            (Bytes.of_string (header ~status:404 ~reason:"Not Found" ~len:(Bytes.length body)))
            body)

let aio_of (sock : Io_if.socket) =
  Cost.count_com_call ();
  match Com.query sock.Io_if.so_unknown Io_if.asyncio_iid with
  | Ok a -> a
  | Result.Error e -> Error.fail e

(* Load shedding above the high-water mark (Cost.config.httpd_shed_hiwat):
   a well-formed refusal the client can act on, instead of a silent drop. *)
let resp_503 =
  "HTTP/1.0 503 Service Unavailable\r\nServer: oskit-httpd\r\nRetry-After: 1\r\n\
   Content-Length: 0\r\nConnection: close\r\n\r\n"

(* ---- event-driven mode ---- *)

(* One accepted connection on [reactor]: the nonblocking read-request /
   write-response state machine.  Shared by the single-reactor mode and
   the per-CPU sharded mode (where [reactor] is the one pinned to the
   connection's RSS home CPU). *)
let reactor_conn ~reactor st root (c : Io_if.socket) =
    st.accepted <- st.accepted + 1;
    st.active <- st.active + 1;
    if st.active > st.peak_active then st.peak_active <- st.active;
    ignore (c.Io_if.so_setsockopt "nonblock" 1);
    let caio = aio_of c in
    let req = Buffer.create 256 in
    let scratch = Bytes.create 2048 in
    let resp = ref Bytes.empty in
    let off = ref 0 in
    let wref = ref None in
    let writing = ref false in
    let closed = ref false in
    (* Idempotent: the header-deadline callout can fire after the
       connection already finished (or was torn down twice by racing
       read/write errors); only the first close may touch the counts. *)
    let finish () =
      if not !closed then begin
        closed := true;
        (match !wref with Some w -> Reactor.unwatch reactor w | None -> ());
        ignore (c.Io_if.so_close ());
        st.active <- st.active - 1
      end
    in
    let on_writable () =
      let remaining = Bytes.length !resp - !off in
      if remaining = 0 then finish ()
      else
        match c.Io_if.so_send ~buf:!resp ~pos:!off ~len:remaining with
        | Ok n ->
            off := !off + n;
            if !off >= Bytes.length !resp then finish ()
        | Result.Error Error.Wouldblock -> ()
        | Result.Error _ -> finish ()
    in
    let on_readable () =
      match c.Io_if.so_recv ~buf:scratch ~pos:0 ~len:(Bytes.length scratch) with
      | Ok 0 ->
          (* EOF before the request terminator. *)
          st.protocol_errors <- st.protocol_errors + 1;
          finish ()
      | Ok n ->
          Buffer.add_subbytes req scratch 0 n;
          if
            Cost.config.httpd_guard
            && Buffer.length req > Cost.config.httpd_max_header_bytes
            && not (request_complete (Buffer.contents req))
          then begin
            (* Unbounded drip-fed headers are the other half of the
               Slowloris hold: cap the buffer and cut the connection. *)
            st.hdr_overflow <- st.hdr_overflow + 1;
            finish ()
          end
          else if request_complete (Buffer.contents req) then begin
            resp := respond st root (Buffer.contents req);
            off := 0;
            writing := true;
            (match !wref with
            | Some w -> Reactor.rewatch reactor w ~mask:Io_if.aio_write
            | None -> ());
            (* The send buffer is almost certainly writable right now. *)
            on_writable ()
          end
      | Result.Error Error.Wouldblock -> ()
      | Result.Error _ ->
          st.protocol_errors <- st.protocol_errors + 1;
          finish ()
    in
    let cb _ready = if !writing then on_writable () else on_readable () in
    wref := Some (Reactor.watch reactor caio ~mask:Io_if.aio_read cb);
    if Cost.config.httpd_guard then
      (* Slowloris defense: the whole request header must arrive within the
         deadline, or the connection is cut — a parked half-request may not
         hold its state record indefinitely. *)
      let fire () =
        if (not !closed) && not !writing then begin
          st.deadline_closed <- st.deadline_closed + 1;
          finish ()
        end
      in
      let ns = Cost.config.httpd_header_deadline_ns in
      if Cost.config.Cost.timer_wheel then
        ignore (Kwheel.callout_after ~ns fire)
      else ignore (Kclock.callout_after ~ns fire)

(* The nonblocking accept loop, shared by both reactor modes: shed above
   the guard high-water mark or the memory budget, otherwise hand the
   connection (and its peer address) to [start]. *)
let accept_drain ~st ~max_conns ~(sock : Io_if.socket) ~start () =
  let rec go () =
    match sock.Io_if.so_accept () with
    | Ok (c, peer) ->
        if
          Cost.config.httpd_guard
          && Cost.config.httpd_shed_hiwat > 0
          && st.active >= Cost.config.httpd_shed_hiwat
        then begin
          (* Above the high-water mark: tell the client to come back
             (best-effort — the socket buffer of a fresh connection takes
             the whole response) instead of silently dropping it. *)
          st.shed_503 <- st.shed_503 + 1;
          let b = Bytes.of_string resp_503 in
          ignore (c.Io_if.so_send ~buf:b ~pos:0 ~len:(Bytes.length b));
          ignore (c.Io_if.so_close ())
        end
        else if st.active >= max_conns then begin
          (* Over budget: shed the connection rather than park it. *)
          st.shed <- st.shed + 1;
          ignore (c.Io_if.so_close ())
        end
        else start c peer;
        go ()
    | Result.Error Error.Wouldblock -> ()
    | Result.Error _ -> ()
  in
  go ()

(* Registers the listen watch and returns immediately; the caller drives
   the reactor loop.  [max_conns] is the memory budget's connection cap —
   at the cap new connections are accepted and immediately dropped
   (shed), which keeps the accept queue draining. *)
let serve_reactor ~reactor ~root ~(sock : Io_if.socket) ?(max_conns = max_int) () =
  let st = make_stats () in
  ignore (sock.Io_if.so_setsockopt "nonblock" 1);
  let start c _peer = reactor_conn ~reactor st root c in
  ignore
    (Reactor.watch reactor (aio_of sock) ~mask:Io_if.aio_read (fun _ ->
         accept_drain ~st ~max_conns ~sock ~start ()));
  st

(* SMP sharded serving: the acceptor lives on [reactors.(0)] (listen
   sockets accept on CPU 0), and each accepted connection migrates to the
   reactor of its flow's RSS home CPU — [home] maps the peer address to
   that CPU, and the caller drives [reactors.(i)] with a loop thread
   pinned to CPU [i].  From then on the connection's socket I/O, protocol
   work, and wakeups all stay on its home CPU; the shared [stats] record
   is bumped from whichever CPU runs the event (serialized virtual time
   makes that safe — it is the accept queue, not the counters, that needs
   the stack-side lock). *)
let serve_reactor_sharded ~reactors ~home ~root ~(sock : Io_if.socket)
    ?(max_conns = max_int) () =
  let st = make_stats () in
  ignore (sock.Io_if.so_setsockopt "nonblock" 1);
  let start c (peer : Io_if.sockaddr) =
    let cpu = home peer mod Array.length reactors in
    reactor_conn ~reactor:reactors.(cpu) st root c
  in
  ignore
    (Reactor.watch reactors.(0) (aio_of sock) ~mask:Io_if.aio_read (fun _ ->
         accept_drain ~st ~max_conns ~sock ~start ()));
  st

(* ---- thread-per-connection mode ---- *)

let handle_blocking st root (c : Io_if.socket) =
  let scratch = Bytes.create 2048 in
  let req = Buffer.create 256 in
  let rec read_req () =
    if request_complete (Buffer.contents req) then true
    else if
      Cost.config.httpd_guard && Buffer.length req > Cost.config.httpd_max_header_bytes
    then begin
      st.hdr_overflow <- st.hdr_overflow + 1;
      false
    end
    else
      match c.Io_if.so_recv ~buf:scratch ~pos:0 ~len:(Bytes.length scratch) with
      | Ok 0 -> false
      | Ok n ->
          Buffer.add_subbytes req scratch 0 n;
          read_req ()
      | Result.Error _ -> false
  in
  if read_req () then begin
    let resp = respond st root (Buffer.contents req) in
    let rec push off =
      if off < Bytes.length resp then
        match c.Io_if.so_send ~buf:resp ~pos:off ~len:(Bytes.length resp - off) with
        | Ok n -> push (off + n)
        | Result.Error _ -> ()
    in
    push 0
  end
  else st.protocol_errors <- st.protocol_errors + 1;
  ignore (c.Io_if.so_close ())

(* Spawns the blocking accept loop via [spawn] and returns immediately.
   At [max_threads] in-flight handlers the acceptor parks, the accept
   queue backs up, and the listen backlog does the dropping — exactly the
   thread-per-connection failure mode the reactor exists to avoid. *)
let serve_threaded ~spawn ~root ~(sock : Io_if.socket) ?(max_threads = max_int) () =
  let st = make_stats () in
  let gate = Sleep_record.create ~name:"httpd_gate" () in
  let rec loop () =
    if st.active >= max_threads then begin
      Sleep_record.sleep gate;
      loop ()
    end
    else
      match sock.Io_if.so_accept () with
      | Ok (c, _peer) ->
          st.accepted <- st.accepted + 1;
          st.active <- st.active + 1;
          if st.active > st.peak_active then st.peak_active <- st.active;
          spawn (fun () ->
              handle_blocking st root c;
              st.active <- st.active - 1;
              Sleep_record.wakeup gate);
          loop ()
      | Result.Error _ -> () (* listener closed: acceptor exits *)
  in
  spawn loop;
  st
