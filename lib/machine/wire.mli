(** A shared Ethernet segment.

    Models the testbed's 100 Mbps link: frames occupy the medium for their
    serialization time (plus preamble and inter-frame gap, as on real
    Ethernet) and arrive at every other attached station after a propagation
    delay.  Contention is resolved by queueing: a frame offered while the
    medium is busy waits — bandwidth, not collisions, is what shaped the
    paper's numbers. *)

type t
type port

val create : ?bandwidth_bps:int -> ?latency_ns:int -> World.t -> t

(** [attach t ~rx] adds a station; [rx] is invoked (in no particular machine
    context) when a frame arrives.  Stations receive every frame except
    their own transmissions — address filtering is the NIC's job, as on a
    real hub. *)
val attach : t -> rx:(bytes -> unit) -> port

(** The wire-local identifier of a port — the key for per-direction
    [Netem] policies. *)
val port_id : port -> int

(** [send t port frame ~at] offers [frame] for transmission at sender-local
    time [at].  Returns the time the frame will finish arriving.  The
    sender always pays serialization — faults injected by the attached
    emulator drop, damage, duplicate, or delay the frame in transit, after
    the medium was occupied. *)
val send : t -> port -> bytes -> at:int -> int

(** [set_netem t em] composes a network emulator into delivery; [None]
    restores perfect delivery. *)
val set_netem : t -> Netem.t option -> unit

(** [set_fault_injector t f] — back-compat shim over [set_netem]: [f frame]
    returning true silently drops the frame in transit.  The predicate is
    called exactly once per offered frame, in send order. *)
val set_fault_injector : t -> (bytes -> bool) option -> unit

(** Frames discarded in transit (by any fault: filter, loss, burst,
    partition). *)
val frames_dropped : t -> int

(** Deliveries actually scheduled (duplicates count twice). *)
val frames_delivered : t -> int

(** Total frames ever offered (and serialized), lost or not. *)
val frames_carried : t -> int

(** Total payload bytes ever offered. *)
val bytes_carried : t -> int
