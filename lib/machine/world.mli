(** The discrete-event simulation world.

    Everything that happens "outside a CPU" — frames propagating on the
    wire, disk mechanisms completing, timer chips firing — is an event on a
    single virtual timeline measured in nanoseconds.  Machines run code
    against their own local clocks (see {!Machine}); the world orders and
    delivers the events that couple them. *)

type t

val create : unit -> t

(** Current virtual time in nanoseconds. *)
val now : t -> int

(** [at t time f] schedules [f] to run at [time] (clamped to [now] if in the
    past).  Events at equal times run in scheduling order.  Returns a handle
    for {!cancel}. *)
type event

val at : t -> int -> (unit -> unit) -> event

(** [after t dt f] is [at t (now t + dt) f]. *)
val after : t -> int -> (unit -> unit) -> event

(** [cancel ev] unlinks [ev] from its world's queue immediately: the
    closure is released and {!pending} no longer counts it.  Idempotent;
    cancelling an already-fired event is a no-op. *)
val cancel : event -> unit

(** [step t] pops and runs the earliest pending event, advancing [now];
    returns [false] if the queue was empty. *)
val step : t -> bool

(** [run t ~until] steps until the queue is empty, [until ()] is true, or
    the {!fuel} limit is hit. *)
val run : ?until:(unit -> bool) -> t -> unit

(** Number of live pending events (cancelled events are removed, not
    counted). *)
val pending : t -> int

(** Safety valve: [run] raises [Out_of_fuel] after this many events
    (default 200 million), so a livelocked simulation fails loudly. *)
exception Out_of_fuel

val set_fuel : t -> int -> unit
