(** Deterministic network emulation.

    A [Netem.t] decides the fate of every frame offered to the wire:
    deliver, drop (independent loss, Gilbert–Elliott burst loss, timed
    partition, or an arbitrary filter), corrupt a single payload bit,
    duplicate, or delay for reordering.  All probabilistic choices come
    from one explicit splitmix64 PRNG seeded at [create] and consumed in
    a fixed per-frame draw order, so a run with the same seed and the
    same offered-frame sequence replays its fault schedule exactly. *)

(** Gilbert–Elliott two-state burst-loss channel: per-frame transition
    probabilities between the good and bad states, and a loss probability
    in each. *)
type ge = {
  p_good_bad : float;
  p_bad_good : float;
  loss_good : float;
  loss_bad : float;
}

type policy = {
  loss : float;              (** independent per-frame loss probability *)
  ge : ge option;            (** burst-loss channel, composed after [loss] *)
  corrupt : float;           (** probability of flipping one payload bit *)
  corrupt_min_len : int;     (** only corrupt frames at least this long *)
  duplicate : float;         (** probability the frame arrives twice *)
  reorder : float;           (** probability of extra delivery delay *)
  reorder_delay_ns : int;    (** max extra delay drawn for reordered frames *)
  filter : (bytes -> bool) option;
                             (** arbitrary drop predicate, judged first *)
}

(** Everything off / pass-through. *)
val default_policy : policy

type counters = {
  mutable offered : int;
  mutable delivered : int;   (** scheduled deliveries, duplicates included *)
  mutable lost : int;
  mutable burst_lost : int;
  mutable filtered : int;
  mutable partitioned : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
}

type t

val create : ?seed:int -> ?policy:policy -> unit -> t

(** An emulator whose only effect is dropping frames the predicate
    matches — the shape of the wire's historical fault hook. *)
val of_filter : (bytes -> bool) -> t

(** [set_policy t ?port p] installs [p] for frames sent from wire port
    [port], or as the default for all ports when [port] is omitted.
    Per-direction asymmetry (lossy data path, clean ACK path) falls out
    of per-port policies. *)
val set_policy : t -> ?port:int -> policy -> unit

(** [add_partition t ~from_ns ~until_ns] blackholes every frame offered in
    the half-open window [from_ns, until_ns). *)
val add_partition : t -> from_ns:int -> until_ns:int -> unit

val counters : t -> counters

(** [judge t ~now ~port frame] returns the deliveries the frame earned:
    [] if dropped, one or two [(frame, extra_delay_ns)] pairs otherwise.
    Returned frames are private copies whenever they differ from the
    input.  Consumes PRNG draws in a fixed order regardless of outcome. *)
val judge : t -> now:int -> port:int -> bytes -> (bytes * int) list
