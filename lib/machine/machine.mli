(** One simulated PC, with one or more CPUs.

    A machine owns per-CPU cycle clocks, physical memory, and a 16-line
    interrupt controller with per-line CPU affinity.  OS code "runs on" a
    machine via {!run_in}/{!run_on}, which route {!Cost} charges to the
    executing CPU's clock.  Devices raise interrupts through {!raise_irq};
    handlers run at interrupt level, to completion, on the line's servicing
    CPU — exactly the execution model the OSKit's encapsulated components
    assume (Section 4.7.4).

    All CPUs advance in lockstep virtual time: each CPU's clock may run
    ahead of the world while it computes, and catches up to the world clock
    whenever a world event (interrupt, kick, timer) enters it.  The CPU
    count is fixed at {!create} from [Cost.config.ncpus] (default 1, which
    reproduces the single-CPU machine exactly). *)

type t

val create : ?name:string -> ?ram_bytes:int -> ?ncpus:int -> World.t -> t

val name : t -> string
val world : t -> World.t
val ram : t -> Physmem.t

(** Number of CPUs (fixed at creation). *)
val ncpus : t -> int

(** Local time of the executing CPU, ns.  Always >= the world time of the
    last event that CPU saw; may run ahead of the world while it
    computes. *)
val now : t -> int

(** [cpu_now t ~cpu] — local time of a specific CPU. *)
val cpu_now : t -> cpu:int -> int

(** [cpu_busy_ns t ~cpu] — total ns of work charged to that CPU (local
    time minus idle sync-forward): the utilization numerator. *)
val cpu_busy_ns : t -> cpu:int -> int

(** The CPU of [t] the caller executes on; 0 when [t] is not the executing
    machine (device models and the test harness act as CPU 0). *)
val cpu : t -> int

(** [run_in t f] executes [f] in this machine's context: cost charges
    advance [now t].  Enters on CPU 0 from outside; preserves the executing
    CPU when nested.  Reentrant across machines. *)
val run_in : t -> (unit -> 'a) -> 'a

(** [run_on t ~cpu f] executes [f] on a specific CPU of [t]: charges land
    on that CPU's clock.  Nestable, like {!run_in}. *)
val run_on : t -> cpu:int -> (unit -> 'a) -> 'a

(** The machine currently executing, if any. *)
val current : unit -> t option

(** {2 Interrupts} *)

val irq_lines : int (* 16, like the PC's cascaded 8259s *)

(** [set_irq_handler t ~irq f] installs the handler (replacing any).  The
    handler runs in machine context at interrupt level. *)
val set_irq_handler : t -> irq:int -> (unit -> unit) -> unit

(** [mask_irq] / [unmask_irq]: per-line enable, as on the PIC. *)
val mask_irq : t -> irq:int -> unit

val unmask_irq : t -> irq:int -> unit

(** [set_irq_affinity t ~irq ~cpu] routes a line to a CPU (IO-APIC style).
    Default: every line services on CPU 0. *)
val set_irq_affinity : t -> irq:int -> cpu:int -> unit

val irq_affinity : t -> irq:int -> int

(** Global interrupt flag (cli/sti).  Interrupts raised while disabled or
    masked are latched and delivered on enable/unmask. *)
val interrupts_enabled : t -> bool

val enable_interrupts : t -> unit
val disable_interrupts : t -> unit

(** [with_interrupts_disabled t f] — the critical-section idiom. *)
val with_interrupts_disabled : t -> (unit -> 'a) -> 'a

(** [raise_irq t ~irq] asserts the line.  Called by device models (from
    world events) or by software for testing.  Delivered on the line's
    servicing CPU (inline when that CPU is executing, else via a world
    event — the IPI analogue).  Charges interrupt entry cost when
    dispatching. *)
val raise_irq : t -> irq:int -> unit

(** {2 Hooks} *)

(** [set_run_hook t f]: [f] is the client kernel's "run runnable process-
    level work" entry; the machine invokes it after interrupt dispatch and
    when {!kick}ed.  Default: nothing. *)
val set_run_hook : t -> (unit -> unit) -> unit

(** Schedule the run hook to execute (via a world event) at the calling
    CPU's current local time. *)
val kick : t -> unit

(** [kick_on t ~cpu] — like {!kick}, but the run hook executes on a
    specific CPU (used to wake a thread homed there). *)
val kick_on : t -> cpu:int -> unit

(** {2 Time services} *)

(** [at t time f] runs [f] at interrupt level at local/world time [time],
    on the CPU that armed it (like a local-APIC timer). *)
val at : t -> int -> (unit -> unit) -> World.event

(** [at_on t ~cpu time f] — like {!at} on an explicit CPU. *)
val at_on : t -> cpu:int -> int -> (unit -> unit) -> World.event

(** [after t dt f] is [at t (now t + dt) f]. *)
val after : t -> int -> (unit -> unit) -> World.event
