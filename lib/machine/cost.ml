type config = {
  mutable cpu_hz : int;
  mutable copy_cycles_per_byte : int;
  mutable checksum_cycles_per_byte : int;
  mutable com_call_cycles : int;
  mutable glue_crossing_cycles : int;
  mutable irq_entry_cycles : int;
  mutable alloc_cycles : int;
  mutable pool_alloc_cycles : int;
  mutable linux_driver_pkt_cycles : int;
  mutable bsd_tcp_pkt_cycles : int;
  mutable linux_tcp_pkt_cycles : int;
  mutable socket_op_cycles : int;
  mutable thread_spawn_cycles : int;
  mutable sg_tx : bool;
  mutable tcp_fastpath : bool;
  mutable tcp_fastpath_cycles : int;
  mutable pcb_hash : bool;
  mutable rx_batch : int;
  mutable tcp_wscale : bool;
  mutable tcp_autotune : bool;
  mutable tcp_mss : int;
  mutable tcp_sockbuf_max : int;
  mutable syn_defense : bool;
  mutable syncache_size : int;
  mutable tw_max : int;
  mutable icmp_ratelimit : int;
  mutable alloc_fail_prob : float;
  mutable alloc_fail_seed : int;
  mutable alloc_fail_burst : int;
  mutable httpd_guard : bool;
  mutable httpd_header_deadline_ns : int;
  mutable httpd_max_header_bytes : int;
  mutable httpd_shed_hiwat : int;
  mutable ncpus : int;
  mutable netisr_qmax : int;
  mutable kq : bool;
  mutable timer_wheel : bool;
  mutable http_keepalive : bool;
  mutable http_idle_timeout_ns : int;
  mutable http_max_reqs_per_conn : int; (* 0 = unlimited *)
  mutable http_pipeline_max : int; (* parse-ahead bound per connection *)
  mutable sendfile : bool;
}

let max_cpus = 16

let defaults () =
  { cpu_hz = 200_000_000;
    copy_cycles_per_byte = 4;
    checksum_cycles_per_byte = 2;
    com_call_cycles = 40;
    glue_crossing_cycles = 1500;
    irq_entry_cycles = 400;
    alloc_cycles = 150;
    pool_alloc_cycles = 30;
    linux_driver_pkt_cycles = 2500;
    bsd_tcp_pkt_cycles = 4000;
    linux_tcp_pkt_cycles = 6000;
    socket_op_cycles = 500;
    thread_spawn_cycles = 0;
    sg_tx = false;
    tcp_fastpath = false;
    tcp_fastpath_cycles = 850;
    pcb_hash = false;
    rx_batch = 1;
    tcp_wscale = false;
    tcp_autotune = false;
    tcp_mss = 1460;
    tcp_sockbuf_max = 2 * 1024 * 1024;
    syn_defense = false;
    syncache_size = 64;
    tw_max = 0;
    icmp_ratelimit = 0;
    alloc_fail_prob = 0.0;
    alloc_fail_seed = 1;
    alloc_fail_burst = 1;
    httpd_guard = false;
    httpd_header_deadline_ns = 1_000_000_000;
    httpd_max_header_bytes = 4096;
    httpd_shed_hiwat = 0;
    ncpus = 1;
    netisr_qmax = 512;
    kq = false;
    timer_wheel = false;
    http_keepalive = false;
    http_idle_timeout_ns = 5_000_000_000;
    http_max_reqs_per_conn = 0;
    http_pipeline_max = 8;
    sendfile = false }

let config = defaults ()

let reset_config () =
  let d = defaults () in
  config.cpu_hz <- d.cpu_hz;
  config.copy_cycles_per_byte <- d.copy_cycles_per_byte;
  config.checksum_cycles_per_byte <- d.checksum_cycles_per_byte;
  config.com_call_cycles <- d.com_call_cycles;
  config.glue_crossing_cycles <- d.glue_crossing_cycles;
  config.irq_entry_cycles <- d.irq_entry_cycles;
  config.alloc_cycles <- d.alloc_cycles;
  config.pool_alloc_cycles <- d.pool_alloc_cycles;
  config.linux_driver_pkt_cycles <- d.linux_driver_pkt_cycles;
  config.bsd_tcp_pkt_cycles <- d.bsd_tcp_pkt_cycles;
  config.linux_tcp_pkt_cycles <- d.linux_tcp_pkt_cycles;
  config.socket_op_cycles <- d.socket_op_cycles;
  config.thread_spawn_cycles <- d.thread_spawn_cycles;
  config.sg_tx <- d.sg_tx;
  config.tcp_fastpath <- d.tcp_fastpath;
  config.tcp_fastpath_cycles <- d.tcp_fastpath_cycles;
  config.pcb_hash <- d.pcb_hash;
  config.rx_batch <- d.rx_batch;
  config.tcp_wscale <- d.tcp_wscale;
  config.tcp_autotune <- d.tcp_autotune;
  config.tcp_mss <- d.tcp_mss;
  config.tcp_sockbuf_max <- d.tcp_sockbuf_max;
  config.syn_defense <- d.syn_defense;
  config.syncache_size <- d.syncache_size;
  config.tw_max <- d.tw_max;
  config.icmp_ratelimit <- d.icmp_ratelimit;
  config.alloc_fail_prob <- d.alloc_fail_prob;
  config.alloc_fail_seed <- d.alloc_fail_seed;
  config.alloc_fail_burst <- d.alloc_fail_burst;
  config.httpd_guard <- d.httpd_guard;
  config.httpd_header_deadline_ns <- d.httpd_header_deadline_ns;
  config.httpd_max_header_bytes <- d.httpd_max_header_bytes;
  config.httpd_shed_hiwat <- d.httpd_shed_hiwat;
  config.ncpus <- d.ncpus;
  config.netisr_qmax <- d.netisr_qmax;
  config.kq <- d.kq;
  config.timer_wheel <- d.timer_wheel;
  config.http_keepalive <- d.http_keepalive;
  config.http_idle_timeout_ns <- d.http_idle_timeout_ns;
  config.http_max_reqs_per_conn <- d.http_max_reqs_per_conn;
  config.http_pipeline_max <- d.http_pipeline_max;
  config.sendfile <- d.sendfile

type counters = {
  mutable copies : int;
  mutable copied_bytes : int;
  mutable glue_crossings : int;
  mutable com_calls : int;
  mutable checksummed_bytes : int;
  mutable sg_xmits : int;
  mutable linearized_xmits : int;
  mutable fastpath_hits : int;
  mutable fastpath_fallbacks : int;
  mutable pcb_cache_hits : int;
  mutable pcb_cache_misses : int;
  mutable rx_polls : int;
  mutable rx_batched_frames : int;
  mutable spin_contentions : int;
  mutable netisr_queued : int;
  mutable netisr_drops : int;
  mutable rss_steered : int;
  mutable kq_posted : int;
  mutable kq_coalesced : int;
  mutable wheel_arms : int;
  mutable wheel_cancels : int;
  mutable wheel_cascades : int;
  mutable wheel_fires : int;
  mutable tick_visits : int;
  (* content path (PR 10): buffer-cache traffic and httpd body accounting *)
  mutable bufcache_hits : int;
  mutable bufcache_misses : int;
  mutable sendfile_bodies : int; (* response bodies served from mapped cache blocks *)
  mutable sendfile_fallbacks : int; (* sendfile wanted but fs/socket could not map: copied *)
  mutable http_body_copies : int; (* bodies built via the copy path while a knob is on *)
  mutable http_body_copied_bytes : int;
}

let make_counters () =
  { copies = 0; copied_bytes = 0; glue_crossings = 0; com_calls = 0;
    checksummed_bytes = 0; sg_xmits = 0; linearized_xmits = 0;
    fastpath_hits = 0; fastpath_fallbacks = 0;
    pcb_cache_hits = 0; pcb_cache_misses = 0;
    rx_polls = 0; rx_batched_frames = 0;
    spin_contentions = 0; netisr_queued = 0; netisr_drops = 0; rss_steered = 0;
    kq_posted = 0; kq_coalesced = 0;
    wheel_arms = 0; wheel_cancels = 0; wheel_cascades = 0; wheel_fires = 0;
    tick_visits = 0;
    bufcache_hits = 0; bufcache_misses = 0;
    sendfile_bodies = 0; sendfile_fallbacks = 0;
    http_body_copies = 0; http_body_copied_bytes = 0 }

(* [counters] is the aggregation view every existing test and bench reads;
   [shards.(cpu)] is the per-CPU split.  Every bump updates both, so the
   totals are identical at any ncpus and the shards always sum to them. *)
let counters = make_counters ()
let shards = Array.init max_cpus (fun _ -> make_counters ())

let clear_counters c =
  c.copies <- 0;
  c.copied_bytes <- 0;
  c.glue_crossings <- 0;
  c.com_calls <- 0;
  c.checksummed_bytes <- 0;
  c.sg_xmits <- 0;
  c.linearized_xmits <- 0;
  c.fastpath_hits <- 0;
  c.fastpath_fallbacks <- 0;
  c.pcb_cache_hits <- 0;
  c.pcb_cache_misses <- 0;
  c.rx_polls <- 0;
  c.rx_batched_frames <- 0;
  c.spin_contentions <- 0;
  c.netisr_queued <- 0;
  c.netisr_drops <- 0;
  c.rss_steered <- 0;
  c.kq_posted <- 0;
  c.kq_coalesced <- 0;
  c.wheel_arms <- 0;
  c.wheel_cancels <- 0;
  c.wheel_cascades <- 0;
  c.wheel_fires <- 0;
  c.tick_visits <- 0;
  c.bufcache_hits <- 0;
  c.bufcache_misses <- 0;
  c.sendfile_bodies <- 0;
  c.sendfile_fallbacks <- 0;
  c.http_body_copies <- 0;
  c.http_body_copied_bytes <- 0

let reset_counters () =
  clear_counters counters;
  Array.iter clear_counters shards

let sink : (int -> unit) option ref = ref None
let set_sink f = sink := f
let get_sink () = !sink
let has_sink () = Option.is_some !sink

(* Which CPU is executing, for counter attribution.  Installed by Machine
   alongside the charge sink; outside any machine context CPU 0 absorbs the
   bump (mirroring how charges outside a machine are dropped — the shard is
   still counted so the aggregation invariant holds). *)
let cpu_source : (unit -> int) option ref = ref None
let set_cpu_source f = cpu_source := f
let current_cpu () = match !cpu_source with Some f -> f () | None -> 0
let counters_for ~cpu = shards.(cpu)
let shard () = shards.(current_cpu ())

let charge_ns ns = match !sink with Some f -> f ns | None -> ()

(* 200 MHz = 5 ns per cycle; compute exactly to stay calibratable. *)
let cycles_to_ns c = c * 1_000_000_000 / config.cpu_hz
let charge_cycles c = charge_ns (cycles_to_ns c)

(* [bump f] applies the same increment to the aggregate record and to the
   executing CPU's shard. *)
let bump f =
  f counters;
  f (shard ())

let charge_copy n =
  bump (fun c ->
      c.copies <- c.copies + 1;
      c.copied_bytes <- c.copied_bytes + n);
  charge_cycles (n * config.copy_cycles_per_byte)

let charge_checksum n =
  bump (fun c -> c.checksummed_bytes <- c.checksummed_bytes + n);
  charge_cycles (n * config.checksum_cycles_per_byte)

let count_com_call () = bump (fun c -> c.com_calls <- c.com_calls + 1)
let count_sg_xmit () = bump (fun c -> c.sg_xmits <- c.sg_xmits + 1)
let count_linearized_xmit () =
  bump (fun c -> c.linearized_xmits <- c.linearized_xmits + 1)
let count_fastpath_hit () = bump (fun c -> c.fastpath_hits <- c.fastpath_hits + 1)
let count_fastpath_fallback () =
  bump (fun c -> c.fastpath_fallbacks <- c.fastpath_fallbacks + 1)
let count_pcb_cache_hit () = bump (fun c -> c.pcb_cache_hits <- c.pcb_cache_hits + 1)
let count_pcb_cache_miss () =
  bump (fun c -> c.pcb_cache_misses <- c.pcb_cache_misses + 1)
let count_rx_poll ~frames =
  bump (fun c ->
      c.rx_polls <- c.rx_polls + 1;
      c.rx_batched_frames <- c.rx_batched_frames + frames)

let count_spin_contention () =
  bump (fun c -> c.spin_contentions <- c.spin_contentions + 1)
let count_netisr_queued () = bump (fun c -> c.netisr_queued <- c.netisr_queued + 1)
let count_netisr_drop () = bump (fun c -> c.netisr_drops <- c.netisr_drops + 1)
let count_rss_steered () = bump (fun c -> c.rss_steered <- c.rss_steered + 1)
let count_kq_posted () = bump (fun c -> c.kq_posted <- c.kq_posted + 1)
let count_kq_coalesced () = bump (fun c -> c.kq_coalesced <- c.kq_coalesced + 1)
let count_wheel_arm () = bump (fun c -> c.wheel_arms <- c.wheel_arms + 1)
let count_wheel_cancel () = bump (fun c -> c.wheel_cancels <- c.wheel_cancels + 1)
let count_wheel_cascade () = bump (fun c -> c.wheel_cascades <- c.wheel_cascades + 1)
let count_wheel_fire () = bump (fun c -> c.wheel_fires <- c.wheel_fires + 1)
let count_tick_visit () = bump (fun c -> c.tick_visits <- c.tick_visits + 1)
let count_bufcache_hit () = bump (fun c -> c.bufcache_hits <- c.bufcache_hits + 1)
let count_bufcache_miss () = bump (fun c -> c.bufcache_misses <- c.bufcache_misses + 1)
let count_sendfile_body () = bump (fun c -> c.sendfile_bodies <- c.sendfile_bodies + 1)
let count_sendfile_fallback () =
  bump (fun c -> c.sendfile_fallbacks <- c.sendfile_fallbacks + 1)

(* The body went through the copy path while keep-alive/sendfile accounting
   was on: counted (not charged — the copy itself is charged where it
   happens) so benches can draw the bytes-copied-per-request curve. *)
let count_http_body_copy n =
  bump (fun c ->
      c.http_body_copies <- c.http_body_copies + 1;
      c.http_body_copied_bytes <- c.http_body_copied_bytes + n)

let charge_com_call () =
  bump (fun c -> c.com_calls <- c.com_calls + 1);
  charge_cycles config.com_call_cycles

let charge_glue_crossing () =
  bump (fun c -> c.glue_crossings <- c.glue_crossings + 1);
  charge_cycles config.glue_crossing_cycles

let charge_alloc () = charge_cycles config.alloc_cycles

let charge_pool_alloc () = charge_cycles config.pool_alloc_cycles
