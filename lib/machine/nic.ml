type mac = string

let broadcast = "\xff\xff\xff\xff\xff\xff"

(* Hardware receive-side scaling: the controller hashes each accepted
   frame into one of N RX queues, and each queue interrupts through its
   own MSI-X vector, so a flow's receive work starts on the CPU its vector
   is routed to.  [classify] models the on-card hash/indirection table the
   driver programs; it runs in the device, so it charges no CPU cycles. *)
type rss = {
  r_queues : bytes Queue.t array;
  r_vectors : int array; (* irq line raised by each queue *)
  r_classify : bytes -> int;
}

type t = {
  machine : Machine.t;
  wire : Wire.t;
  mac : mac;
  irq : int;
  rx_ring : int;
  rx_q : bytes Queue.t;
  mutable rss : rss option;
  mutable port : Wire.port option;
  mutable promisc : bool;
  mutable dropped : int;
  mutable tx : int;
  mutable rx : int;
}

let dst_of frame = if Bytes.length frame >= 6 then Bytes.sub_string frame 0 6 else ""

let create ~machine ~wire ~mac ~irq ?(rx_ring = 32) () =
  if String.length mac <> 6 then invalid_arg "Nic.create: mac must be 6 bytes";
  let t =
    { machine; wire; mac; irq; rx_ring; rx_q = Queue.create (); rss = None;
      port = None; promisc = false; dropped = 0; tx = 0; rx = 0 }
  in
  let rx frame =
    let dst = dst_of frame in
    if t.promisc || String.equal dst t.mac || String.equal dst broadcast then
      match t.rss with
      | None ->
          if Queue.length t.rx_q >= t.rx_ring then t.dropped <- t.dropped + 1
          else begin
            Queue.add frame t.rx_q;
            t.rx <- t.rx + 1;
            Machine.raise_irq t.machine ~irq:t.irq
          end
      | Some r ->
          let q = r.r_classify frame mod Array.length r.r_queues in
          if Queue.length r.r_queues.(q) >= t.rx_ring then
            t.dropped <- t.dropped + 1
          else begin
            Queue.add frame r.r_queues.(q);
            t.rx <- t.rx + 1;
            Cost.count_rss_steered ();
            Machine.raise_irq t.machine ~irq:r.r_vectors.(q)
          end
  in
  t.port <- Some (Wire.attach wire ~rx);
  t

(* [set_rss t ~vectors ~classify] programs the indirection table: queue [q]
   receives frames with [classify frame mod n = q] and interrupts on line
   [vectors.(q)].  Each queue has its own [rx_ring]-deep ring.  Clearing
   ([None]) restores the single-queue card. *)
let set_rss t ~vectors ~classify =
  if Array.length vectors = 0 then invalid_arg "Nic.set_rss: no queues";
  t.rss <-
    Some
      { r_queues = Array.init (Array.length vectors) (fun _ -> Queue.create ());
        r_vectors = Array.copy vectors;
        r_classify = classify }

let clear_rss t = t.rss <- None
let rx_queues t = match t.rss with None -> 1 | Some r -> Array.length r.r_queues

let mac t = t.mac
let irq t = t.irq

let min_frame = 60

let transmit t frame =
  let frame =
    if Bytes.length frame >= min_frame then frame
    else begin
      let padded = Bytes.make min_frame '\000' in
      Bytes.blit frame 0 padded 0 (Bytes.length frame);
      padded
    end
  in
  (* Bus-master DMA out of driver memory: cheaper than a CPU copy. *)
  Cost.charge_cycles (Bytes.length frame);
  t.tx <- t.tx + 1;
  let at = Machine.now t.machine in
  match t.port with
  | Some port -> ignore (Wire.send t.wire port frame ~at)
  | None -> assert false

(* Scatter-gather transmit: the controller walks an iovec of fragments,
   reading each in place — the one unavoidable gather on a zero-copy send
   path, and it happens here, in the DMA engine, at DMA rate (charged per
   byte by [transmit] above), not as a CPU memcpy.  The blit below is the
   simulated medium's bookkeeping, exactly like the [Bytes.sub] a linear
   transmit does in the driver. *)
let transmit_v t frags =
  let len = List.fold_left (fun a (_, _, n) -> a + n) 0 frags in
  let frame = Bytes.create len in
  let at = ref 0 in
  List.iter
    (fun (data, off, n) ->
      Bytes.blit data off frame !at n;
      at := !at + n)
    frags;
  Cost.count_sg_xmit ();
  transmit t frame

let pop_rx t = Queue.take_opt t.rx_q

(* [pop_rx_q t ~q] drains one RSS queue (queue 0 is the legacy ring when
   RSS is off, so single-queue drivers and multi-queue drivers share the
   accessor). *)
let pop_rx_q t ~q =
  match t.rss with
  | None -> if q = 0 then Queue.take_opt t.rx_q else None
  | Some r ->
      if q < 0 || q >= Array.length r.r_queues then None
      else Queue.take_opt r.r_queues.(q)

(* Bounded burst for a NAPI-style poll: up to [max] frames, oldest first. *)
let pop_rx_burst t ~max =
  let rec take n acc =
    if n >= max then List.rev acc
    else
      match Queue.take_opt t.rx_q with
      | None -> List.rev acc
      | Some frame -> take (n + 1) (frame :: acc)
  in
  take 0 []

let rx_pending t = Queue.length t.rx_q
let set_promiscuous t v = t.promisc <- v
let rx_dropped t = t.dropped
let tx_count t = t.tx
let rx_count t = t.rx
