(** The CPU cost model for the simulated testbed.

    The paper's evaluation ran on two Pentium Pro 200 MHz PCs connected by
    100 Mbps Ethernet.  We reproduce the *shape* of its results by charging
    virtual cycles for the operations that dominated on that hardware:
    memory copies, checksums, per-packet protocol and driver work, interrupt
    entry, and — the quantity the paper isolates — the glue-code overhead at
    each component boundary (Section 5: "the price we pay for modularity and
    separability").

    All charges accrue to the machine currently executing (see
    {!Machine.run_in}).  Outside any machine context charges are dropped:
    the same component code runs unchanged in "user mode" (Section 3.2
    notes most libraries are useful there too), where virtual time has no
    meaning. *)

type config = {
  mutable cpu_hz : int;  (** CPU frequency; default 200 MHz *)
  mutable copy_cycles_per_byte : int;  (** memcpy, cache-cold; default 4 *)
  mutable checksum_cycles_per_byte : int;  (** IP/TCP checksum; default 2 *)
  mutable com_call_cycles : int;
      (** one COM method dispatch (vtable indirection); default 40 *)
  mutable glue_crossing_cycles : int;
      (** one crossing of an encapsulation boundary: argument conversion,
          curproc manufacture, buffer re-wrapping; default 1500 *)
  mutable irq_entry_cycles : int;  (** interrupt entry+exit; default 400 *)
  mutable alloc_cycles : int;
      (** one general-purpose allocator round trip (LMM walk or malloc);
          default 150 *)
  mutable pool_alloc_cycles : int;
      (** one pooled (freelist-hit) allocation: a size-class or buffer-pool
          pop, no allocator walk; default 30 *)
  mutable linux_driver_pkt_cycles : int;
      (** Linux driver per-packet work (ring handling, device programming);
          default 2500 *)
  mutable bsd_tcp_pkt_cycles : int;
      (** FreeBSD TCP/IP per-segment protocol work; default 4000 *)
  mutable linux_tcp_pkt_cycles : int;
      (** Linux inet per-segment protocol work; default 6000 *)
  mutable socket_op_cycles : int;
      (** socket-layer entry (sosend/soreceive bookkeeping); default 500 *)
  mutable thread_spawn_cycles : int;
      (** creating a kernel thread (stack carve-out, queue insertion).
          Default 0 — free, so calibrated Table 1/2 runs are untouched;
          the httpd concurrency bench raises it to make thread-per-
          connection pay its real per-accept price. *)
  mutable sg_tx : bool;
      (** scatter-gather transmit across the mbuf->skbuff glue: when on, a
          discontiguous chain crosses the boundary as an iovec instead of
          being flattened into a fresh contiguous sk_buff.  Default [false]
          so the Table 1/2 shapes stay paper-faithful (OSKit send pays the
          flatten copy, as measured on the 1997 testbed). *)
  mutable tcp_fastpath : bool;
      (** Van Jacobson header prediction on the TCP receive side (both
          stacks): an in-order segment from the expected peer that carries
          no surprises pays {!field:tcp_fastpath_cycles} instead of the full
          per-segment protocol charge; anything else falls through to the
          general input path and pays the difference.  Default [false] so
          the Table 2 RTT stays paper-faithful (the 1997 snapshot in the
          OSKit predates the prediction fast path). *)
  mutable tcp_fastpath_cycles : int;
      (** Protocol cycles for a header-predicted segment: the one compare,
          the trivial ACK/append work, no general-case machinery.
          Default 850. *)
  mutable pcb_hash : bool;
      (** O(1) inbound demux: a 4-tuple hash table plus a one-entry
          last-PCB cache (BSD's [tcp_last_inpcb]) in place of the linear
          PCB scan, in TCP and UDP of both stacks.  Purely algorithmic —
          no cycle charge changes either way; the cache-hit/miss counters
          prove it is exercised.  Default [false]. *)
  mutable rx_batch : int;
      (** NAPI-style RX batching budget: how many pending frames one
          interrupt may carry from the driver to the stack through a
          single glue crossing.  [<= 1] reproduces today's
          frame-per-crossing behavior exactly; larger values amortize the
          crossing under load.  Default 1. *)
  mutable tcp_wscale : bool;
      (** RFC 1323 window scaling in both stacks: offer a wscale option on
          SYN/SYN-ACK, and when both ends offer, interpret window fields
          shifted by the negotiated scale, letting windows grow past the
          16-bit 65535-byte ceiling that caps long-fat-pipe throughput.
          Changes SYN wire bytes, so default [false] to keep the committed
          Table 1/2 baselines bit-identical. *)
  mutable tcp_autotune : bool;
      (** BDP-driven socket-buffer autotuning: grow a connection's send and
          receive buffers (doubling, capped at {!field:tcp_sockbuf_max})
          whenever the window — not the application or the path — is what
          is limiting transfer.  Only useful with
          {!field:tcp_wscale}; default [false]. *)
  mutable tcp_mss : int;
      (** The local maximum segment size both stacks advertise and clamp
          to; raise alongside {!Netif.t.if_mtu} for jumbo frames
          (9000-byte MTU => 8960 MSS).  Default 1460 (1500-byte
          Ethernet MTU minus 40 bytes of IP+TCP header). *)
  mutable tcp_sockbuf_max : int;
      (** Ceiling for autotuned socket buffers and the basis for the wscale
          each stack requests ([scale] is the smallest shift making this
          representable in a 16-bit window field).  Default 2 MB — covers
          the 100 Mbit x 50 ms = 625 KB bandwidth-delay product of the
          longfat bench's worst path with room for jumbo-frame rounding. *)
  mutable syn_defense : bool;
      (** SYN-flood defense in both stacks: half-open handshakes live in a
          compact per-listener syncache instead of full PCBs/socks, so
          embryonic connections stop counting against the accept backlog;
          when the cache overflows, completion falls back to stateless SYN
          cookies (the ISS encodes a 4-tuple hash + MSS class, validated on
          the completing ACK).  Changes the ISS the listener emits, so
          default [false] to keep the committed baselines bit-identical. *)
  mutable syncache_size : int;
      (** Per-listener syncache capacity; beyond it the oldest entry is
          evicted (its handshake can still finish via the cookie).
          Default 64. *)
  mutable tw_max : int;
      (** Cap on simultaneously held TIME_WAIT connections per stack;
          crossing it reclaims the oldest immediately instead of waiting
          2xMSL.  [0] (default) = unbounded, the donor behavior. *)
  mutable icmp_ratelimit : int;
      (** Token-bucket limit, in errors per second, on generated network
          errors (ICMP port unreachable in the BSD stack, the no-socket RST
          in the Linux stack); bucket depth equals the rate.  [0] (default)
          = unlimited, the donor behavior. *)
  mutable alloc_fail_prob : float;
      (** Memfault: probability that one pooled packet-buffer allocation
          ({!Bpool.get}) fails with [Memfault.Nomem].  Deterministic given
          {!field:alloc_fail_seed} and the allocation sequence.  Default 0.0
          = never. *)
  mutable alloc_fail_seed : int;  (** Memfault PRNG seed; default 1. *)
  mutable alloc_fail_burst : int;
      (** How many consecutive allocations fail once a failure triggers
          (kmem shortages come in runs, not singletons).  Default 1. *)
  mutable httpd_guard : bool;
      (** Slow-client hardening in the httpd: per-connection header
          deadlines ({!field:httpd_header_deadline_ns}), a bounded request
          header buffer ({!field:httpd_max_header_bytes}), and early 503
          shedding ({!field:httpd_shed_hiwat}).  Default [false] so the
          committed http/rtt baselines regenerate bit-identically. *)
  mutable httpd_header_deadline_ns : int;
      (** With {!field:httpd_guard}: how long a connection may take to
          deliver its full request header before being closed (408).
          Default 1 s. *)
  mutable httpd_max_header_bytes : int;
      (** With {!field:httpd_guard}: request-header bytes accepted before
          the connection is rejected (400).  Default 4096. *)
  mutable httpd_shed_hiwat : int;
      (** With {!field:httpd_guard}: active-connection high-water mark above
          which new connections are answered [503 Retry-After] and closed
          instead of admitted.  [0] = no shedding below [max_conns].
          Default 0. *)
  mutable ncpus : int;
      (** How many CPUs a {!Machine.create}d machine gets (each with its
          own cycle clock and run queue, advanced in lockstep virtual
          time), and therefore how many netisr protocol shards the network
          stacks run.  Default 1 — single-CPU, so every committed baseline
          regenerates bit-identically; the smp bench raises it. *)
  mutable netisr_qmax : int;
      (** Bound on each per-CPU netisr message queue (frames steered to a
          CPU but not yet processed); beyond it frames are dropped and
          counted ({!field:counters.netisr_drops}), like a software-interrupt
          queue overflow.  Default 512. *)
  mutable kq : bool;
      (** kqueue-backed reactor: {!Reactor.create} builds an
          {!Kqueue.t} and [step] drains its ready queue — O(ready
          connections) per pass instead of rescanning every watch.
          Purely algorithmic (no cycle-charge change), but dispatch
          order differs from the legacy registration-order scan, so
          default [false] keeps committed baselines bit-identical. *)
  mutable timer_wheel : bool;
      (** Hierarchical timing-wheel timers: TCP retransmit / persist /
          2MSL / delayed-ACK timers and httpd header deadlines become
          armed-only-when-pending entries on per-CPU wheels
          ({!Timewheel}), replacing the every-tick all-PCB walks.
          Fire times quantize to wheel granularity (1 ms) instead of
          tick boundaries (200/500 ms), so default [false] keeps
          committed baselines bit-identical. *)
  mutable http_keepalive : bool;
      (** HTTP/1.1 persistent connections in the httpd: per-request
          [Connection]/version parsing, bounded pipelining with strictly
          in-order responses, keep-alive idle timeouts and the
          [http_max_reqs_per_conn] guard.  Off, the httpd answers exactly
          the HTTP/1.0 close-per-request bytes of PR 4, so default [false]
          keeps the committed http baselines bit-identical. *)
  mutable http_idle_timeout_ns : int;
      (** With {!field:http_keepalive}: how long a persistent connection
          may sit idle between requests before the server closes it.
          Default 5 s. *)
  mutable http_max_reqs_per_conn : int;
      (** With {!field:http_keepalive}: requests served on one connection
          before the server answers [Connection: close] (a fairness /
          state-turnover guard).  [0] (default) = unlimited. *)
  mutable http_pipeline_max : int;
      (** With {!field:http_keepalive}: how many pipelined requests one
          connection may have parsed-ahead but not yet answered; beyond it
          the server stops parsing until responses drain (socket-buffer
          backpressure does the rest).  Default 8. *)
  mutable sendfile : bool;
      (** Zero-copy content path: the httpd maps response bodies straight
          from the file system's buffer-cache blocks ({!Io_if.filemap})
          into the socket's scatter send face ({!Io_if.sendv}), so body
          bytes are never copied between the cache and the wire on a
          stack that can alias loaned pages (FreeBSD mbufs; the OSKit
          config additionally needs {!field:sg_tx} to avoid the glue
          flatten).  When the fs cannot map (hole) or the socket has no
          sendv face (the Linux stack's contiguous sk_buffs — §5's copy),
          the httpd falls back to the counted copy path.  Default
          [false]. *)
}

(** Hard ceiling on {!field:config.ncpus} (shard arrays are sized to it). *)
val max_cpus : int

(** The live configuration; benches mutate it for ablations. *)
val config : config

(** Restore every field to its documented default. *)
val reset_config : unit -> unit

(** {2 Charging}

    Each function advances the current machine's clock. *)

val charge_cycles : int -> unit
val charge_ns : int -> unit

(** [charge_copy n] charges copying [n] bytes. *)
val charge_copy : int -> unit

(** [charge_checksum n] charges checksumming [n] bytes. *)
val charge_checksum : int -> unit

val charge_com_call : unit -> unit
val charge_glue_crossing : unit -> unit
val charge_alloc : unit -> unit

(** Pooled fast-path allocation (freelist hit). *)
val charge_pool_alloc : unit -> unit

val cycles_to_ns : int -> int

(** {2 Accounting}

    Benches also count events, to report e.g. copies-per-packet
    (Ablation B). *)

type counters = {
  mutable copies : int;
  mutable copied_bytes : int;
  mutable glue_crossings : int;
  mutable com_calls : int;
  mutable checksummed_bytes : int;  (** bytes passed through [charge_checksum] *)
  mutable sg_xmits : int;  (** frames DMA-gathered from an iovec (no CPU flatten) *)
  mutable linearized_xmits : int;  (** frames the glue had to flatten into one buffer *)
  mutable fastpath_hits : int;  (** segments taken by header prediction *)
  mutable fastpath_fallbacks : int;
      (** established-state segments that missed the prediction and paid
          the general input path (handshake/teardown segments are not
          counted: they are inherently slow-path) *)
  mutable pcb_cache_hits : int;  (** demux resolved by the one-entry PCB cache *)
  mutable pcb_cache_misses : int;  (** demux that fell to the hash (or scan) *)
  mutable rx_polls : int;  (** batched RX deliveries (one glue crossing each) *)
  mutable rx_batched_frames : int;
      (** frames carried by those deliveries; mean burst =
          rx_batched_frames / rx_polls *)
  mutable spin_contentions : int;
      (** spinlock acquisitions that found the lock held (cross-CPU
          contended spins and failed trylocks) *)
  mutable netisr_queued : int;  (** frames steered to another CPU's netisr queue *)
  mutable netisr_drops : int;  (** frames dropped because that queue was full *)
  mutable rss_steered : int;
      (** frames the NIC's hardware RSS classified into a multi-queue RX
          ring (each queue's MSI-X vector interrupts the flow's home CPU) *)
  mutable kq_posted : int;
      (** knote activations that enqueued onto a kqueue ready queue *)
  mutable kq_coalesced : int;
      (** knote activations absorbed by an already-queued entry *)
  mutable wheel_arms : int;  (** timing-wheel entries armed *)
  mutable wheel_cancels : int;  (** timing-wheel entries cancelled before firing *)
  mutable wheel_cascades : int;
      (** entries re-filed from a higher wheel level on a slot-wrap *)
  mutable wheel_fires : int;  (** timing-wheel entries fired *)
  mutable tick_visits : int;
      (** PCBs visited by the legacy periodic slow/fast tick walks (the
          work the wheel eliminates) *)
  mutable bufcache_hits : int;  (** buffer-cache lookups served without device I/O *)
  mutable bufcache_misses : int;  (** buffer-cache lookups that faulted a block in *)
  mutable sendfile_bodies : int;
      (** response bodies served zero-copy from mapped cache blocks *)
  mutable sendfile_fallbacks : int;
      (** bodies that wanted sendfile but had to copy (unmappable file or
          no socket sendv face) *)
  mutable http_body_copies : int;
      (** bodies built via the copy path while keep-alive/sendfile
          accounting was on *)
  mutable http_body_copied_bytes : int;  (** bytes those copies moved *)
}

(** The aggregation view: totals across all CPUs.  Every bump lands here
    {e and} in the executing CPU's shard, so tests written against these
    totals read the same numbers at any [ncpus]. *)
val counters : counters

(** [counters_for ~cpu] — the events attributed to one CPU.  Shards sum to
    {!counters} field-by-field. *)
val counters_for : cpu:int -> counters

val reset_counters : unit -> unit

(** {2 Event counting without a cycle charge}

    These bump the audit counters but advance no clock: the dispatch or
    gather they record is either already folded into another charge (glue
    crossings subsume the COM vtable hop) or costed elsewhere at DMA rate
    ({!Nic.transmit}).  Counter-only, so enabling the accounting cannot
    perturb a calibrated run. *)

val count_com_call : unit -> unit
val count_sg_xmit : unit -> unit
val count_linearized_xmit : unit -> unit
val count_fastpath_hit : unit -> unit
val count_fastpath_fallback : unit -> unit
val count_pcb_cache_hit : unit -> unit
val count_pcb_cache_miss : unit -> unit

(** [count_rx_poll ~frames] records one batched RX delivery of [frames]
    frames. *)
val count_rx_poll : frames:int -> unit

val count_spin_contention : unit -> unit
val count_netisr_queued : unit -> unit
val count_netisr_drop : unit -> unit
val count_rss_steered : unit -> unit
val count_kq_posted : unit -> unit
val count_kq_coalesced : unit -> unit
val count_wheel_arm : unit -> unit
val count_wheel_cancel : unit -> unit
val count_wheel_cascade : unit -> unit
val count_wheel_fire : unit -> unit
val count_tick_visit : unit -> unit
val count_bufcache_hit : unit -> unit
val count_bufcache_miss : unit -> unit
val count_sendfile_body : unit -> unit
val count_sendfile_fallback : unit -> unit

(** [count_http_body_copy n] records one copied response body of [n]
    bytes (the copy itself is charged where it happens). *)
val count_http_body_copy : int -> unit

(** {2 Context plumbing} *)

(** [set_sink f] installs the receiver of charged nanoseconds ([None] =
    no machine running).  Installed by {!Machine.run_in}; not for client
    use. *)
val set_sink : (int -> unit) option -> unit

(** The installed sink, so a test that temporarily replaces it can restore
    the machine attribution instead of clobbering it process-wide. *)
val get_sink : unit -> (int -> unit) option

(** Whether a machine context is installed. *)
val has_sink : unit -> bool

(** [set_cpu_source f] installs the reader of the executing CPU number, for
    per-CPU counter attribution.  Installed by {!Machine}; not for client
    use. *)
val set_cpu_source : (unit -> int) option -> unit

(** The executing CPU per the installed source; 0 outside any machine. *)
val current_cpu : unit -> int
