(* Deterministic network emulation for the simulated wire.

   The fault model is a composition of the classic netem/dummynet knobs:
   independent loss, Gilbert–Elliott burst loss, single-bit payload
   corruption, duplication, reordering via bounded extra delay, and timed
   partition windows.  Every probabilistic decision is drawn from an
   explicit splitmix64 PRNG seeded at creation, in a fixed per-frame draw
   order, so a run with the same seed and the same workload replays its
   fault schedule exactly. *)

type ge = {
  p_good_bad : float;
  p_bad_good : float;
  loss_good : float;
  loss_bad : float;
}

type policy = {
  loss : float;
  ge : ge option;
  corrupt : float;
  corrupt_min_len : int;
  duplicate : float;
  reorder : float;
  reorder_delay_ns : int;
  filter : (bytes -> bool) option;
}

let default_policy =
  { loss = 0.0; ge = None; corrupt = 0.0; corrupt_min_len = 0; duplicate = 0.0;
    reorder = 0.0; reorder_delay_ns = 0; filter = None }

type counters = {
  mutable offered : int;
  mutable delivered : int;
  mutable lost : int;
  mutable burst_lost : int;
  mutable filtered : int;
  mutable partitioned : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable reordered : int;
}

type t = {
  mutable prng : int64;
  mutable default_pol : policy;
  per_port : (int, policy) Hashtbl.t;
  mutable partitions : (int * int) list;
  mutable ge_bad : bool;
  c : counters;
}

let create ?(seed = 1) ?(policy = default_policy) () =
  { prng = Int64.logxor (Int64.of_int seed) 0x5851F42D4C957F2DL;
    default_pol = policy; per_port = Hashtbl.create 4; partitions = [];
    ge_bad = false;
    c =
      { offered = 0; delivered = 0; lost = 0; burst_lost = 0; filtered = 0;
        partitioned = 0; corrupted = 0; duplicated = 0; reordered = 0 } }

let of_filter pred =
  create ~seed:0 ~policy:{ default_policy with filter = Some pred } ()

let set_policy t ?port policy =
  match port with
  | None -> t.default_pol <- policy
  | Some id -> Hashtbl.replace t.per_port id policy

let add_partition t ~from_ns ~until_ns =
  t.partitions <- (from_ns, until_ns) :: t.partitions

let counters t = t.c

(* ---- splitmix64 ---- *)

let next_u64 t =
  let open Int64 in
  t.prng <- add t.prng 0x9E3779B97F4A7C15L;
  let z = t.prng in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let rand_float t =
  Int64.to_float (Int64.shift_right_logical (next_u64 t) 11)
  *. (1.0 /. 9007199254740992.0)

let rand_int t bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1) (Int64.of_int bound))

(* ---- the per-frame verdict ---- *)

(* Frames begin with a 14-byte Ethernet header.  Corruption is confined to
   the bytes past it: the simulated medium has no FCS, so damage to the
   link header would only misdeliver the frame silently — damage to the
   payload is what must exercise the stacks' own checksums. *)
let ether_hlen = 14

let judge t ~now ~port frame =
  t.c.offered <- t.c.offered + 1;
  let p =
    match Hashtbl.find_opt t.per_port port with
    | Some p -> p
    | None -> t.default_pol
  in
  let filtered = match p.filter with Some f -> f frame | None -> false in
  if filtered then begin
    t.c.filtered <- t.c.filtered + 1;
    []
  end
  else if List.exists (fun (a, b) -> now >= a && now < b) t.partitions then begin
    t.c.partitioned <- t.c.partitioned + 1;
    []
  end
  else begin
    (* Fixed draw order: the random stream consumed per frame does not
       depend on any outcome, so one policy's schedule never perturbs
       another knob's. *)
    let u_loss = rand_float t in
    let u_ge = rand_float t in
    let u_ge_loss = rand_float t in
    let u_corrupt = rand_float t in
    let u_dup = rand_float t in
    let u_reorder = rand_float t in
    let burst =
      match p.ge with
      | None -> false
      | Some g ->
          (if t.ge_bad then begin
             if u_ge < g.p_bad_good then t.ge_bad <- false
           end
           else if u_ge < g.p_good_bad then t.ge_bad <- true);
          u_ge_loss < (if t.ge_bad then g.loss_bad else g.loss_good)
    in
    if u_loss < p.loss then begin
      t.c.lost <- t.c.lost + 1;
      []
    end
    else if burst then begin
      t.c.burst_lost <- t.c.burst_lost + 1;
      []
    end
    else begin
      let len = Bytes.length frame in
      let frame =
        if u_corrupt < p.corrupt && len > ether_hlen && len >= p.corrupt_min_len
        then begin
          t.c.corrupted <- t.c.corrupted + 1;
          let f = Bytes.copy frame in
          let off = ether_hlen + rand_int t (len - ether_hlen) in
          let bit = rand_int t 8 in
          Bytes.set f off (Char.chr (Char.code (Bytes.get f off) lxor (1 lsl bit)));
          f
        end
        else frame
      in
      let delay =
        if p.reorder > 0.0 && p.reorder_delay_ns > 0 && u_reorder < p.reorder
        then begin
          t.c.reordered <- t.c.reordered + 1;
          1 + rand_int t p.reorder_delay_ns
        end
        else 0
      in
      let deliveries =
        if u_dup < p.duplicate then begin
          t.c.duplicated <- t.c.duplicated + 1;
          [ (frame, delay); (frame, delay + 1) ]
        end
        else [ (frame, delay) ]
      in
      t.c.delivered <- t.c.delivered + List.length deliveries;
      deliveries
    end
  end
