type port = { id : int; rx : bytes -> unit }

type t = {
  world : World.t;
  bandwidth_bps : int;
  latency_ns : int;
  mutable ports : port list;
  mutable next_id : int;
  mutable busy_until : int;
  mutable frames : int;
  mutable bytes : int;
  mutable netem : Netem.t option;
  mutable dropped : int;
  mutable delivered : int;
}

(* 100BASE-T framing overhead per frame: 8 B preamble + 4 B FCS + 12 B
   inter-frame gap. *)
let framing_bytes = 24

let create ?(bandwidth_bps = 100_000_000) ?(latency_ns = 1_000) world =
  { world; bandwidth_bps; latency_ns; ports = []; next_id = 0; busy_until = 0;
    frames = 0; bytes = 0; netem = None; dropped = 0; delivered = 0 }

let attach t ~rx =
  let p = { id = t.next_id; rx } in
  t.next_id <- t.next_id + 1;
  t.ports <- p :: t.ports;
  p

let port_id p = p.id

let serialization_ns t len =
  (len + framing_bytes) * 8 * 1_000_000_000 / t.bandwidth_bps

let send t port frame ~at =
  (* The sender always serializes the frame onto the medium: loss happens
     in transit, so the medium is busy and the offered-traffic stats move
     whether or not anyone ends up hearing it. *)
  let start = max at t.busy_until in
  let finish = start + serialization_ns t (Bytes.length frame) in
  t.busy_until <- finish;
  t.frames <- t.frames + 1;
  t.bytes <- t.bytes + Bytes.length frame;
  let arrival = finish + t.latency_ns in
  let deliveries =
    match t.netem with
    | None -> [ (frame, 0) ]
    | Some em -> Netem.judge em ~now:start ~port:port.id frame
  in
  (match deliveries with
   | [] -> t.dropped <- t.dropped + 1
   | ds ->
       List.iter
         (fun (f, extra) ->
           t.delivered <- t.delivered + 1;
           let deliver () =
             let copy_for p = p.rx (Bytes.copy f) in
             List.iter (fun p -> if p.id <> port.id then copy_for p) t.ports
           in
           ignore (World.at t.world (arrival + extra) deliver))
         ds);
  arrival

let set_netem t em = t.netem <- em

let set_fault_injector t f =
  t.netem <- (match f with None -> None | Some pred -> Some (Netem.of_filter pred))

let frames_dropped t = t.dropped
let frames_delivered t = t.delivered
let frames_carried t = t.frames
let bytes_carried t = t.bytes
