let irq_lines = 16

type t = {
  name : string;
  world : World.t;
  ram : Physmem.t;
  ncpus : int;
  clocks : int array; (* per-CPU local time, ns *)
  busy : int array; (* per-CPU charged (non-idle) ns — utilization *)
  mutable cur_cpu : int; (* CPU executing (or last to execute) *)
  handlers : (unit -> unit) option array;
  affinity : int array; (* irq line -> servicing CPU *)
  aff_mask : int array; (* cpu -> bitmask of the lines it services *)
  mutable masked : int; (* bitmask: 1 = masked *)
  mutable pending : int;
  mutable enabled : bool;
  in_dispatch : bool array; (* per CPU *)
  mutable run_hook : unit -> unit;
  kick_queued : bool array; (* per CPU *)
}

let current_machine : t option ref = ref None

let () =
  (* All cost charges land on whichever machine — and CPU — is executing. *)
  Cost.set_sink
    (Some
       (fun ns ->
         match !current_machine with
         | Some m ->
             m.clocks.(m.cur_cpu) <- m.clocks.(m.cur_cpu) + ns;
             m.busy.(m.cur_cpu) <- m.busy.(m.cur_cpu) + ns
         | None -> ()));
  Cost.set_cpu_source
    (Some
       (fun () -> match !current_machine with Some m -> m.cur_cpu | None -> 0))

let create ?(name = "pc") ?(ram_bytes = 8 * 1024 * 1024) ?ncpus world =
  let ncpus = match ncpus with Some n -> n | None -> Cost.config.Cost.ncpus in
  if ncpus < 1 || ncpus > Cost.max_cpus then invalid_arg "Machine.create: ncpus";
  let aff_mask = Array.make ncpus 0 in
  (* Every line starts on CPU 0, like an unprogrammed IO-APIC. *)
  aff_mask.(0) <- (1 lsl irq_lines) - 1;
  { name;
    world;
    ram = Physmem.create ~bytes:ram_bytes;
    ncpus;
    clocks = Array.make ncpus 0;
    busy = Array.make ncpus 0;
    cur_cpu = 0;
    handlers = Array.make irq_lines None;
    affinity = Array.make irq_lines 0;
    aff_mask;
    masked = 0;
    pending = 0;
    enabled = true;
    in_dispatch = Array.make ncpus false;
    run_hook = (fun () -> ());
    kick_queued = Array.make ncpus false }

let name t = t.name
let world t = t.world
let ram t = t.ram
let ncpus t = t.ncpus
let now t = t.clocks.(t.cur_cpu)
let cpu_now t ~cpu = t.clocks.(cpu)
let cpu_busy_ns t ~cpu = t.busy.(cpu)

let is_current t = match !current_machine with Some m -> m == t | None -> false

(* The CPU of [t] the caller is executing on; 0 when [t] is not the
   executing machine (device models and the test harness act as CPU 0). *)
let cpu t = if is_current t then t.cur_cpu else 0

let check_cpu t cpu ctx =
  if cpu < 0 || cpu >= t.ncpus then invalid_arg (ctx ^ ": bad cpu")

let run_in_on t cpu f =
  let prev = !current_machine in
  let prev_cpu = t.cur_cpu in
  current_machine := Some t;
  t.cur_cpu <- cpu;
  Fun.protect
    ~finally:(fun () ->
      t.cur_cpu <- prev_cpu;
      current_machine := prev)
    f

let run_in t f = run_in_on t (cpu t) f

let run_on t ~cpu f =
  check_cpu t cpu "Machine.run_on";
  run_in_on t cpu f

let current () = !current_machine

let set_irq_handler t ~irq f =
  if irq < 0 || irq >= irq_lines then invalid_arg "set_irq_handler: bad irq";
  t.handlers.(irq) <- Some f

let bit irq = 1 lsl irq

let set_irq_affinity t ~irq ~cpu =
  if irq < 0 || irq >= irq_lines then invalid_arg "set_irq_affinity: bad irq";
  check_cpu t cpu "Machine.set_irq_affinity";
  t.affinity.(irq) <- cpu;
  Array.fill t.aff_mask 0 t.ncpus 0;
  for l = 0 to irq_lines - 1 do
    t.aff_mask.(t.affinity.(l)) <- t.aff_mask.(t.affinity.(l)) lor bit l
  done

let irq_affinity t ~irq = t.affinity.(irq)

(* Deliver every pending, unmasked line routed to the executing CPU while
   interrupts are enabled.  Runs with [current_machine = t]; handlers
   execute to completion, one at a time, lowest line first — PIC priority
   order.  Lines homed on other CPUs are untouched; their interrupts are
   delivered by their own world events. *)
let rec dispatch_pending t =
  let c = t.cur_cpu in
  let eligible () = t.pending land lnot t.masked land t.aff_mask.(c) in
  if t.enabled && (not t.in_dispatch.(c)) && eligible () <> 0 then begin
    t.in_dispatch.(c) <- true;
    let elig = eligible () in
    let rec find irq =
      if irq >= irq_lines then None
      else if elig land bit irq <> 0 then Some irq
      else find (irq + 1)
    in
    (match find 0 with
    | None -> ()
    | Some irq -> (
        t.pending <- t.pending land lnot (bit irq);
        Cost.charge_cycles Cost.config.irq_entry_cycles;
        match t.handlers.(irq) with Some f -> f () | None -> ()));
    t.in_dispatch.(c) <- false;
    dispatch_pending t
  end

let run_hook_and_drain t =
  dispatch_pending t;
  t.run_hook ();
  dispatch_pending t

let mask_irq t ~irq = t.masked <- t.masked lor bit irq

let unmask_irq t ~irq =
  t.masked <- t.masked land lnot (bit irq);
  if is_current t then dispatch_pending t

let interrupts_enabled t = t.enabled

let enable_interrupts t =
  t.enabled <- true;
  if is_current t then dispatch_pending t

let disable_interrupts t = t.enabled <- false

let with_interrupts_disabled t f =
  let was = t.enabled in
  t.enabled <- false;
  Fun.protect ~finally:(fun () -> if was then enable_interrupts t) f

(* Enter CPU [cpu] from a world event: its local clock catches up to the
   world (it can never run backwards — it may already be ahead from
   computing), then interrupt and process level run. *)
let enter_from_world t cpu f =
  t.clocks.(cpu) <- max t.clocks.(cpu) (World.now t.world);
  run_in_on t cpu f

let raise_irq t ~irq =
  if irq < 0 || irq >= irq_lines then invalid_arg "raise_irq: bad irq";
  t.pending <- t.pending lor bit irq;
  let target = t.affinity.(irq) in
  if is_current t then begin
    if target = t.cur_cpu then dispatch_pending t
    else
      (* Cross-CPU interrupt from software (an IPI): deliver via a world
         event no earlier than the raising CPU's local time. *)
      ignore
        (World.at t.world t.clocks.(t.cur_cpu) (fun () ->
             enter_from_world t target (fun () -> run_hook_and_drain t)))
  end
  else
    (* Raised from outside the machine (a world event): synchronise the
       servicing CPU's clock with the world and service the interrupt, then
       let the kernel's process level run. *)
    enter_from_world t target (fun () -> run_hook_and_drain t)

let set_run_hook t f = t.run_hook <- f

let kick_on t ~cpu =
  check_cpu t cpu "Machine.kick_on";
  if not t.kick_queued.(cpu) then begin
    t.kick_queued.(cpu) <- true;
    ignore
      (World.at t.world t.clocks.(cpu) (fun () ->
           t.kick_queued.(cpu) <- false;
           enter_from_world t cpu (fun () -> run_hook_and_drain t)))
  end

let kick t = kick_on t ~cpu:(cpu t)

let at_on t ~cpu time f =
  check_cpu t cpu "Machine.at_on";
  World.at t.world time (fun () ->
      enter_from_world t cpu (fun () ->
          f ();
          run_hook_and_drain t))

(* Events fire on the CPU that armed them, like a local-APIC timer. *)
let at t time f = at_on t ~cpu:(cpu t) time f
let after t dt f = at t (now t + dt) f
