(** A simulated Ethernet controller.

    Hardware-level model of the cards the paper's Linux drivers drove:
    a receive ring of bounded depth (overflow drops frames, as real NICs
    do), MAC/broadcast filtering with an optional promiscuous mode, and an
    interrupt per received frame.  The driver components in
    [lib/linux_dev] program against this. *)

type t

type mac = string
(** 6 bytes. *)

val broadcast : mac

(** [create ~machine ~wire ~mac ~irq ()] attaches a card to the segment. *)
val create :
  machine:Machine.t -> wire:Wire.t -> mac:mac -> irq:int -> ?rx_ring:int -> unit -> t

val mac : t -> mac
val irq : t -> int

(** {2 Hardware receive-side scaling}

    Multi-queue RX, as on fxp/e1000-class successors: [set_rss] programs
    the on-card hash ([classify], charged no CPU cycles — it runs in the
    device) and one MSI-X vector per queue; an accepted frame lands in
    ring [classify frame mod n] and raises [vectors.(q)], so with per-line
    affinity each flow interrupts its home CPU directly.  Each queue has
    its own [rx_ring]-deep ring; overflow drops count in {!rx_dropped}.
    Counts [Cost.counters.rss_steered] per classified frame.  With RSS off
    (the default, and after [clear_rss]) the card is the single-queue
    device it always was, bit for bit. *)

val set_rss : t -> vectors:int array -> classify:(bytes -> int) -> unit
val clear_rss : t -> unit

(** Number of RX queues (1 when RSS is off). *)
val rx_queues : t -> int

(** [transmit t frame] hands a fully-formed Ethernet frame to the card;
    DMA from driver memory is charged per byte at a fraction of memcpy
    cost.  Frames shorter than 60 bytes are padded, as the hardware does. *)
val transmit : t -> bytes -> unit

(** [transmit_v t frags] hands the card an ordered iovec of
    [(backing, off, len)] fragments; the controller gathers them in place
    (busmaster scatter-gather DMA, charged per byte at DMA rate like
    {!transmit}) and puts one frame on the wire.  Counts one
    [Cost.counters.sg_xmits].  Zero CPU copy for the caller. *)
val transmit_v : t -> (bytes * int * int) list -> unit

(** [pop_rx t] takes the oldest received frame off the ring, if any.  Used
    by the driver's interrupt handler. *)
val pop_rx : t -> bytes option

(** [pop_rx_q t ~q] takes the oldest frame off RSS queue [q] (queue 0 is
    the legacy ring when RSS is off). *)
val pop_rx_q : t -> q:int -> bytes option

(** [pop_rx_burst t ~max] takes up to [max] pending frames off the ring,
    oldest first — the bounded burst a NAPI-style poll drains per
    interrupt (Cost.config.rx_batch). *)
val pop_rx_burst : t -> max:int -> bytes list

val rx_pending : t -> int
val set_promiscuous : t -> bool -> unit

(** Frames dropped to ring overflow. *)
val rx_dropped : t -> int

(** Counters for tests/benches. *)
val tx_count : t -> int

val rx_count : t -> int
