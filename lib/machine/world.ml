module Key = struct
  type t = int * int (* time, seq *)

  let compare (t1, s1) (t2, s2) =
    match Int.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c
end

module Queue = Map.Make (Key)

(* An event carries a back-pointer to its world so [cancel] can unlink it
   from the queue immediately.  Cancelled callouts used to linger until
   their deadline — an early-cancelled 2MSL timer held its closure (and a
   map node) for minutes of virtual time, and [pending] counted the
   corpses. *)
type event = {
  time : int;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  owner : t;
}

and t = {
  mutable now : int;
  mutable queue : event Queue.t;
  mutable next_seq : int;
  mutable fuel : int;
}

exception Out_of_fuel

let create () = { now = 0; queue = Queue.empty; next_seq = 0; fuel = 200_000_000 }
let now t = t.now
let set_fuel t fuel = t.fuel <- fuel

let at t time action =
  let time = max time t.now in
  let ev = { time; seq = t.next_seq; action; cancelled = false; owner = t } in
  t.next_seq <- t.next_seq + 1;
  t.queue <- Queue.add (time, ev.seq) ev t.queue;
  ev

let after t dt action = at t (t.now + dt) action

let cancel ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    ev.owner.queue <- Queue.remove (ev.time, ev.seq) ev.owner.queue
  end

(* Live events only: cancellation removes the entry, so this is exact. *)
let pending t = Queue.cardinal t.queue

let step t =
  match Queue.min_binding_opt t.queue with
  | None -> false
  | Some (key, ev) ->
      t.queue <- Queue.remove key t.queue;
      t.now <- max t.now ev.time;
      if not ev.cancelled then ev.action ();
      true

let run ?(until = fun () -> false) t =
  let rec go fuel =
    if fuel = 0 then raise Out_of_fuel;
    if (not (until ())) && step t then go (fuel - 1)
  in
  go t.fuel
