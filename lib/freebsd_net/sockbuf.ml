(* ENCAPSULATED LEGACY CODE — the socket buffer (sys/socketvar.h, uipc_socket2.c).
 *
 * An mbuf chain with a byte count and a high-water mark.  The send buffer
 * holds unacknowledged + unsent data; TCP transmits from it by m_copym
 * (sharing clusters) and drops acknowledged bytes from the front.  The
 * receive path appends whole mbuf chains, so data that arrived zero-copy
 * stays zero-copy until soreceive copies it to the user.
 *)

type t = { mutable sb_mb : Mbuf.mbuf option; mutable sb_cc : int; mutable sb_hiwat : int }

let create ~hiwat = { sb_mb = None; sb_cc = 0; sb_hiwat = hiwat }
let space sb = max 0 (sb.sb_hiwat - sb.sb_cc)

(* Append raw bytes (the sosend path: one real copy, user -> cluster). *)
let sbappend_bytes sb ~src ~src_pos ~len =
  (match sb.sb_mb with
  | Some head -> Mbuf.m_append head ~src ~src_pos ~len
  | None ->
      let head = Mbuf.m_gethdr () in
      Mbuf.m_append head ~src ~src_pos ~len;
      sb.sb_mb <- Some head);
  sb.sb_cc <- sb.sb_cc + len

(* sbappend_bytes degraded for memory pressure: when the allocation-
   failure injector stops m_append mid-chain, account for whatever
   actually landed and report it, instead of leaving sb_cc short of the
   chain (which would corrupt the stream).  Returns bytes taken. *)
let sbappend_bytes_nomem sb ~src ~src_pos ~len =
  try
    sbappend_bytes sb ~src ~src_pos ~len;
    len
  with Memfault.Nomem ->
    let have = match sb.sb_mb with Some h -> Mbuf.m_length h | None -> 0 in
    let taken = have - sb.sb_cc in
    (match sb.sb_mb with Some h -> h.Mbuf.m_pkthdr_len <- have | None -> ());
    sb.sb_cc <- have;
    taken
let sbappend_chain sb m =
  let len = Mbuf.m_length m in
  (match sb.sb_mb with
  | Some head -> Mbuf.m_cat head m
  | None -> sb.sb_mb <- Some m);
  sb.sb_cc <- sb.sb_cc + len

(* Drop [n] bytes from the front (acknowledged data / consumed data). *)
let sbdrop sb n =
  let n = min n sb.sb_cc in
  (match sb.sb_mb with
  | None -> ()
  | Some head ->
      Mbuf.m_adj head n;
      if sb.sb_cc - n = 0 then begin
        Mbuf.m_freem head;
        sb.sb_mb <- None
      end
      else begin
        (* Shed — and retire — leading empty mbufs so the chain does not
           grow forever.  Detach before freeing so m_free releases just the
           one record. *)
        let rec strip m =
          if m.Mbuf.m_len = 0 then
            match m.Mbuf.m_next with
            | Some nx ->
                m.Mbuf.m_next <- None;
                Mbuf.m_free m;
                strip nx
            | None -> m
          else m
        in
        let head' = strip head in
        head'.Mbuf.m_pkthdr_len <- sb.sb_cc - n;
        sb.sb_mb <- Some head'
      end);
  sb.sb_cc <- sb.sb_cc - n

(* Copy a range out (soreceive's copy to the user buffer). *)
let copy_out sb ~off ~len ~dst ~dst_pos =
  match sb.sb_mb with
  | None -> invalid_arg "Sockbuf.copy_out: empty"
  | Some head -> Mbuf.m_copy_into head ~off ~len ~dst ~dst_pos

(* A shared-storage view of a range (tcp_output's m_copym). *)
let copy_range sb ~off ~len =
  match sb.sb_mb with
  | None -> invalid_arg "Sockbuf.copy_range: empty"
  | Some head -> Mbuf.m_copym head ~off ~len
