(* ENCAPSULATED LEGACY CODE — if_ethersubr.c: the BSD network-interface
 * layer.  An ifnet carries the interface addresses and the link to the
 * driver below; ether_output prepends the 14-byte header and hands the
 * frame down, ether_input strips it and dispatches on ethertype to the
 * protocols that registered above (ARP, IP).
 *)

let eth_hlen = 14
let ethertype_ip = 0x0800
let ethertype_arp = 0x0806
let ether_broadcast = "\xff\xff\xff\xff\xff\xff"

type ifnet = {
  if_name : string;
  mutable if_hwaddr : string; (* learned from the bound device *)
  mutable if_addr : int32; (* IP, host order *)
  mutable if_mask : int32;
  mutable if_mtu : int; (* payload above the ether header *)
  mutable if_xmit : Mbuf.mbuf -> unit; (* full frame to the driver *)
  mutable if_protos : (int * (Mbuf.mbuf -> unit)) list; (* ethertype -> input *)
  mutable if_ipackets : int;
  mutable if_opackets : int;
  mutable if_idrops : int; (* input frames dropped for want of an mbuf *)
}

let create ~name ~hwaddr =
  if String.length hwaddr <> 6 then invalid_arg "Netif.create: hwaddr";
  { if_name = name; if_hwaddr = hwaddr; if_addr = 0l; if_mask = 0l; if_mtu = 1500;
    if_xmit = (fun _ -> ()); if_protos = []; if_ipackets = 0; if_opackets = 0;
    if_idrops = 0 }

let set_proto_input ifp ~ethertype handler =
  ifp.if_protos <- (ethertype, handler) :: List.remove_assoc ethertype ifp.if_protos

let ifconfig ifp ~addr ~mask =
  ifp.if_addr <- addr;
  ifp.if_mask <- mask

let same_subnet ifp other =
  Int32.logand other ifp.if_mask = Int32.logand ifp.if_addr ifp.if_mask

(* ether_output: m is the payload (IP datagram / ARP message). *)
let ether_output ifp m ~dst_mac ~ethertype =
  let m = Mbuf.m_prepend m eth_hlen in
  let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
  Bytes.blit_string dst_mac 0 d o 6;
  Bytes.blit_string ifp.if_hwaddr 0 d (o + 6) 6;
  Bytes.set d (o + 12) (Char.chr (ethertype lsr 8));
  Bytes.set d (o + 13) (Char.chr (ethertype land 0xff));
  ifp.if_opackets <- ifp.if_opackets + 1;
  ifp.if_xmit m

(* ether_input: m is the full frame.  Consumes the chain: protocol inputs
   take ownership, drops retire it. *)
let ether_input_frame ifp m =
  if Mbuf.m_length m < eth_hlen then Mbuf.m_freem m (* runt frame *)
  else begin
    ifp.if_ipackets <- ifp.if_ipackets + 1;
    let m = Mbuf.m_pullup m eth_hlen in
    let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
    let ethertype = (Char.code (Bytes.get d (o + 12)) lsl 8) lor Char.code (Bytes.get d (o + 13)) in
    Mbuf.m_adj m eth_hlen;
    match List.assoc_opt ethertype ifp.if_protos with
    | Some input -> input m
    | None -> Mbuf.m_freem m (* unknown protocol: dropped, as in the donor *)
  end

(* This is the one receive entry for both the mbuf-native attachment and
   the COM glue, i.e. interrupt level: an allocation failure anywhere on
   the input path that nobody above converted must become a counted frame
   drop here, never an exception into the driver.  The chain is left to
   the GC — a pullup may already have consumed part of it. *)
let ether_input ifp m =
  try ether_input_frame ifp m
  with Memfault.Nomem -> ifp.if_idrops <- ifp.if_idrops + 1
