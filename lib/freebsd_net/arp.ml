(* ENCAPSULATED LEGACY CODE — if_ether.c: ARP.
 *
 * Resolution table keyed by IP; unresolved destinations hold a bounded
 * queue of waiting packets that is flushed when the reply arrives.  The
 * donor holds one packet and retries on a 5-minute rtimer; we keep a few
 * waiters, retry with exponential backoff, and give up after a handful of
 * tries — dropping (and freeing, via each waiter's [on_drop]) everything
 * still queued, as if_ether.c's arptfree path does.
 *)

type waiter = {
  deliver : string -> unit; (* continuation awaiting the MAC *)
  on_drop : unit -> unit;   (* called instead if resolution fails *)
}

type pending = {
  mutable waiters : waiter list; (* newest first *)
  mutable tries : int;
  mutable timer : World.event option;
}

type entry = Resolved of string | Pending of pending

type t = {
  ifp : Netif.ifnet;
  machine : Machine.t;
  table : (int32, entry) Hashtbl.t;
  mutable requests_sent : int;
  mutable replies_sent : int;
  mutable waiters_dropped : int;   (* queue overflow, drop-head *)
  mutable resolve_failures : int;  (* retries exhausted *)
}

let op_request = 1
let op_reply = 2
let arp_len = 28

(* Queue/retry limits.  Base interval doubles per try: 0.5 s, 1 s, 2 s... *)
let max_waiters = 16
let max_tries = 5
let retry_base_ns = 500_000_000

let put32 d o (v : int32) =
  Bytes.set d o (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff));
  Bytes.set d (o + 1) (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
  Bytes.set d (o + 2) (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
  Bytes.set d (o + 3) (Char.chr (Int32.to_int v land 0xff))

let get32 d o =
  let b i = Int32.of_int (Char.code (Bytes.get d (o + i))) in
  Int32.logor
    (Int32.shift_left (b 0) 24)
    (Int32.logor (Int32.shift_left (b 1) 16) (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))

(* Build ether/IP ARP message: hrd=1, pro=0x800, hln=6, pln=4. *)
let send_arp t ~op ~target_mac ~target_ip ~dst_mac =
  let m = Mbuf.m_gethdr () in
  let off = Mbuf.m_put m arp_len in
  let d = m.Mbuf.m_data in
  Bytes.set_uint16_be d off 1;
  Bytes.set_uint16_be d (off + 2) Netif.ethertype_ip;
  Bytes.set d (off + 4) '\006';
  Bytes.set d (off + 5) '\004';
  Bytes.set_uint16_be d (off + 6) op;
  Bytes.blit_string t.ifp.Netif.if_hwaddr 0 d (off + 8) 6;
  put32 d (off + 14) t.ifp.Netif.if_addr;
  Bytes.blit_string target_mac 0 d (off + 18) 6;
  put32 d (off + 24) target_ip;
  Netif.ether_output t.ifp m ~dst_mac ~ethertype:Netif.ethertype_arp

let arp_request t ip =
  t.requests_sent <- t.requests_sent + 1;
  (* A request lost to memory pressure is indistinguishable from one lost
     on the wire: the backoff timer re-sends.  Must not raise — the retry
     fires from a timer callback. *)
  try
    send_arp t ~op:op_request ~target_mac:"\000\000\000\000\000\000" ~target_ip:ip
      ~dst_mac:Netif.ether_broadcast
  with Memfault.Nomem -> ()

let cancel_timer p =
  match p.timer with
  | Some ev -> World.cancel ev; p.timer <- None
  | None -> ()

(* Retry with backoff; on exhaustion tear the entry down and fail every
   queued waiter so their mbufs are freed, not leaked. *)
let rec schedule_retry t ip p =
  let delay = retry_base_ns * (1 lsl (p.tries - 1)) in
  p.timer <-
    Some
      (Machine.after t.machine delay (fun () ->
           p.timer <- None;
           if p.tries >= max_tries then begin
             Hashtbl.remove t.table ip;
             t.resolve_failures <- t.resolve_failures + 1;
             List.iter (fun w -> w.on_drop ()) (List.rev p.waiters);
             p.waiters <- []
           end
           else begin
             p.tries <- p.tries + 1;
             arp_request t ip;
             schedule_retry t ip p
           end))

let arp_input t m =
  if Mbuf.m_length m < arp_len then Mbuf.m_freem m
  else begin
    let m = Mbuf.m_pullup m arp_len in
    let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
    let op = Bytes.get_uint16_be d (o + 6) in
    let sender_mac = Bytes.sub_string d (o + 8) 6 in
    let sender_ip = get32 d (o + 14) in
    let target_ip = get32 d (o + 24) in
    (* Learn the sender either way (donor behaviour). *)
    (match Hashtbl.find_opt t.table sender_ip with
    | Some (Pending p) ->
        cancel_timer p;
        Hashtbl.replace t.table sender_ip (Resolved sender_mac);
        List.iter (fun w -> w.deliver sender_mac) (List.rev p.waiters);
        p.waiters <- []
    | Some (Resolved _) | None -> Hashtbl.replace t.table sender_ip (Resolved sender_mac));
    if op = op_request && Int32.equal target_ip t.ifp.Netif.if_addr then begin
      t.replies_sent <- t.replies_sent + 1;
      send_arp t ~op:op_reply ~target_mac:sender_mac ~target_ip:sender_ip ~dst_mac:sender_mac
    end;
    Mbuf.m_freem m
  end

let attach ifp machine =
  let t =
    { ifp; machine; table = Hashtbl.create 16; requests_sent = 0;
      replies_sent = 0; waiters_dropped = 0; resolve_failures = 0 }
  in
  Netif.set_proto_input ifp ~ethertype:Netif.ethertype_arp
    (fun m -> try arp_input t m with Memfault.Nomem -> ());
  t

(* resolve: call [deliver mac] now if cached, else queue and broadcast.
   A full queue drops its oldest waiter (drop-head, like a device tx ring):
   the newest packet is the one the caller's retransmit machinery is least
   likely to have given up on. *)
let resolve t ip ?(on_drop = fun () -> ()) deliver =
  match Hashtbl.find_opt t.table ip with
  | Some (Resolved mac) -> deliver mac
  | Some (Pending p) ->
      if List.length p.waiters >= max_waiters then begin
        match List.rev p.waiters with
        | oldest :: rest ->
            t.waiters_dropped <- t.waiters_dropped + 1;
            oldest.on_drop ();
            p.waiters <- List.rev rest
        | [] -> ()
      end;
      p.waiters <- { deliver; on_drop } :: p.waiters
  | None ->
      let p = { waiters = [ { deliver; on_drop } ]; tries = 1; timer = None } in
      Hashtbl.replace t.table ip (Pending p);
      arp_request t ip;
      schedule_retry t ip p

(* Static entry (tests / point-to-point setups). *)
let add_static t ip mac = Hashtbl.replace t.table ip (Resolved mac)
let lookup t ip =
  match Hashtbl.find_opt t.table ip with Some (Resolved mac) -> Some mac | _ -> None
