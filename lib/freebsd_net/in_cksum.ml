(* ENCAPSULATED LEGACY CODE — the Internet checksum (in_cksum.c).
 *
 * 16-bit one's-complement sum over an mbuf chain, handling the odd-byte
 * boundary between mbufs exactly as the donor does.  Charged per byte: on
 * the testbed CPU this pass over the data was a visible part of per-packet
 * cost.
 *)

(* Add bytes [off, off+len) of [data] into the running 32-bit sum; [swapped]
   tracks an odd starting alignment across mbuf boundaries. *)
let sum_bytes data off len (sum, swapped) =
  let s = ref sum in
  let i = ref off in
  let remaining = ref len in
  let swapped = ref swapped in
  while !remaining > 0 do
    let byte = Char.code (Bytes.get data !i) in
    (* Even position contributes the high byte of a word. *)
    if !swapped then s := !s + byte else s := !s + (byte lsl 8);
    swapped := not !swapped;
    incr i;
    decr remaining
  done;
  !s, !swapped

let fold sum =
  let rec go s = if s > 0xffff then go ((s land 0xffff) + (s lsr 16)) else s in
  go sum

let finish sum = lnot (fold sum) land 0xffff

let cksum_bytes ?(init = 0) data ~off ~len =
  Cost.charge_checksum len;
  let sum, _ = sum_bytes data off len (init, false) in
  finish sum

(* Iovec checksum: one pass over an ordered (backing, off, len) fragment
   list, carrying the odd-byte alignment across fragment boundaries exactly
   as the donor carries it across mbufs.  This is the checksum-with-gather
   half of the scatter-gather send path: a chain (or a nonlinear sk_buff)
   is summed fragment by fragment in place, never flattened first. *)
let cksum_frags ?(init = 0) frags =
  let total = List.fold_left (fun a (_, _, len) -> a + len) 0 frags in
  Cost.charge_checksum total;
  let acc =
    List.fold_left (fun acc (data, off, len) -> sum_bytes data off len acc)
      (init, false) frags
  in
  finish (fst acc)

(* Checksum over a whole mbuf chain starting [off] bytes in, for [len]
   bytes, folded with an initial partial sum (the pseudo-header).  The
   chain's fragment view and the iovec summer do the work, so the TCP/UDP
   output paths exercise the same code the gather path does. *)
let cksum_chain ?(init = 0) m ~off ~len =
  cksum_frags ~init (Mbuf.m_fragments ~off ~len m)

(* Partial sum of the TCP/UDP pseudo header (not folded, not negated). *)
let pseudo_header ~src ~dst ~proto ~len =
  let hi32 v = Int32.to_int (Int32.shift_right_logical v 16) land 0xffff in
  let lo32 v = Int32.to_int v land 0xffff in
  hi32 src + lo32 src + hi32 dst + lo32 dst + proto + len
