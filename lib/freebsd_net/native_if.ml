(* The FreeBSD kernel's own mbuf-native Ethernet attachment — the Table 1/2
 * "FreeBSD" baseline.  An fxp-class busmaster with scatter-gather DMA:
 * outbound mbuf chains are handed to the card fragment by fragment (no CPU
 * flattening copy), inbound frames are loaned to the stack as external
 * mbuf storage (no copy).  There is deliberately NO glue here: this is the
 * monolithic configuration the OSKit numbers are compared against.
 *)

let attach stack nic =
  let machine = stack.Bsd_socket.machine in
  let ifp = stack.Bsd_socket.ifp in
  ifp.Netif.if_hwaddr <- Nic.mac nic;
  ifp.Netif.if_xmit <-
    (fun m ->
      Cost.charge_cycles Cost.config.linux_driver_pkt_cycles;
      (* Gather DMA: the controller reads each mbuf fragment in place,
         costed inside [Nic.transmit_v] at DMA rate — no CPU flatten. *)
      Nic.transmit_v nic (Mbuf.m_fragments m);
      (* The controller is done with the fragments; retire the chain
         (cluster storage shared with the socket buffer just drops a
         reference). *)
      Mbuf.m_freem m);
  let deliver frame () =
    Cost.charge_cycles Cost.config.linux_driver_pkt_cycles;
    let m = Mbuf.m_ext_wrap frame ~off:0 ~len:(Bytes.length frame) in
    Netif.ether_input ifp m
  in
  let ncpus = Machine.ncpus machine in
  if ncpus <= 1 then begin
    let rx_handler () =
      let rec drain () =
        match Nic.pop_rx nic with
        | None -> ()
        | Some frame ->
            deliver frame ();
            drain ()
      in
      drain ()
    in
    Machine.set_irq_handler machine ~irq:(Nic.irq nic) rx_handler;
    Machine.unmask_irq machine ~irq:(Nic.irq nic)
  end
  else begin
    (* Hardware RSS: program the card with one RX queue per CPU and the
       same symmetric flow hash the stack shards by, and route each
       queue's MSI-X vector to its CPU — so a flow's frames interrupt
       their home CPU directly and even interrupt entry lands there.
       Queue 0 keeps the card's legacy line; the other vectors borrow
       spare PIC lines (the testbed uses 0/4/9 for timer/serial/NIC and
       13/14 for disks).  The handler re-derives each frame's home CPU and
       hands it to the netisr, which direct-dispatches on a hit; frames
       the hardware couldn't steer to their home CPU (more CPUs than
       vectors, non-IP traffic) cross through the netisr queues instead
       of being misdelivered. *)
    let spares = [| 5; 6; 7; 8; 11; 12; 15 |] in
    let queues = min ncpus (1 + Array.length spares) in
    let vectors =
      Array.init queues (fun q -> if q = 0 then Nic.irq nic else spares.(q - 1))
    in
    Nic.set_rss nic ~vectors ~classify:(fun frame -> Rss.cpu_of_frame ~ncpus frame);
    let isr = Netisr.for_machine machine in
    Array.iteri
      (fun q line ->
        let handler () =
          let rec drain () =
            match Nic.pop_rx_q nic ~q with
            | None -> ()
            | Some frame ->
                let cpu = Rss.cpu_of_frame ~ncpus frame in
                ignore (Netisr.dispatch isr ~cpu (deliver frame));
                drain ()
          in
          drain ()
        in
        Machine.set_irq_handler machine ~irq:line handler;
        Machine.set_irq_affinity machine ~irq:line ~cpu:q;
        Machine.unmask_irq machine ~irq:line)
      vectors
  end
