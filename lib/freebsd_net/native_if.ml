(* The FreeBSD kernel's own mbuf-native Ethernet attachment — the Table 1/2
 * "FreeBSD" baseline.  An fxp-class busmaster with scatter-gather DMA:
 * outbound mbuf chains are handed to the card fragment by fragment (no CPU
 * flattening copy), inbound frames are loaned to the stack as external
 * mbuf storage (no copy).  There is deliberately NO glue here: this is the
 * monolithic configuration the OSKit numbers are compared against.
 *)

let attach stack nic =
  let machine = stack.Bsd_socket.machine in
  let ifp = stack.Bsd_socket.ifp in
  ifp.Netif.if_hwaddr <- Nic.mac nic;
  ifp.Netif.if_xmit <-
    (fun m ->
      Cost.charge_cycles Cost.config.linux_driver_pkt_cycles;
      (* Gather DMA: the controller reads each mbuf fragment in place,
         costed inside [Nic.transmit_v] at DMA rate — no CPU flatten. *)
      Nic.transmit_v nic (Mbuf.m_fragments m);
      (* The controller is done with the fragments; retire the chain
         (cluster storage shared with the socket buffer just drops a
         reference). *)
      Mbuf.m_freem m);
  let rx_handler () =
    let rec drain () =
      match Nic.pop_rx nic with
      | None -> ()
      | Some frame ->
          Cost.charge_cycles Cost.config.linux_driver_pkt_cycles;
          let m = Mbuf.m_ext_wrap frame ~off:0 ~len:(Bytes.length frame) in
          Netif.ether_input ifp m;
          drain ()
    in
    drain ()
  in
  Machine.set_irq_handler machine ~irq:(Nic.irq nic) rx_handler;
  Machine.unmask_irq machine ~irq:(Nic.irq nic)
