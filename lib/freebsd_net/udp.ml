(* ENCAPSULATED LEGACY CODE — udp_usrreq.c. *)

let udp_hlen = 8

type pcb = {
  mutable lport : int;
  mutable laddr : int32;
  mutable rport : int;
  mutable raddr : int32;
  rcv_q : (int32 * int * bytes) Queue.t; (* src ip, src port, payload *)
  mutable rcv_hiwat : int;
  mutable rcv_cc : int;
  mutable on_readable : unit -> unit;
  mutable dropped : int;
}

type t = {
  ip : Ip.t;
  mutable pcbs : pcb list;
  (* O(1) demux (Cost.config.pcb_hash), sharing the TCP scheme: exact
     4-tuple key for connected pcbs, (0, 0, lport) for wildcard binds.
     Rebuilt on bind/alloc/detach — the only places lport changes. *)
  pcb_hash : (int32 * int * int, pcb) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable badsum : int;    (* datagrams dropped on checksum failure *)
  mutable noport : int;    (* datagrams with no listening pcb *)
  mutable fulldrops : int; (* datagrams dropped at a full socket buffer *)
  mutable unreach_sent : int; (* demux misses answered with ICMP port unreachable *)
  mutable icmp_ratelimited : int; (* unreachables suppressed by the token bucket *)
  mutable nomem_drops : int; (* datagrams dropped for want of an mbuf *)
  (* token bucket for ICMP errors (Cost.config.icmp_ratelimit) *)
  mutable icmp_tokens : float;
  mutable icmp_tok_ts : int;
}

let hash_key p = (p.raddr, p.rport, p.lport)

let hash_add t p = if p.lport <> 0 then Hashtbl.replace t.pcb_hash (hash_key p) p

let hash_remove t p =
  match Hashtbl.find_opt t.pcb_hash (hash_key p) with
  | Some x when x == p -> Hashtbl.remove t.pcb_hash (hash_key p)
  | _ -> ()

(* A UDP scan must not become an amplification/CPU sink: ICMP errors pass
   a token bucket refilled at Cost.config.icmp_ratelimit per second
   (depth = rate; 0 = unlimited, the donor behavior). *)
let icmp_allowed t =
  let rate = Cost.config.icmp_ratelimit in
  if rate = 0 then true
  else begin
    let now = Machine.now t.ip.Ip.machine in
    let elapsed = now - t.icmp_tok_ts in
    t.icmp_tok_ts <- now;
    t.icmp_tokens <-
      Float.min (float_of_int rate)
        (t.icmp_tokens +. (float_of_int rate *. float_of_int elapsed /. 1e9));
    if t.icmp_tokens >= 1.0 then begin
      t.icmp_tokens <- t.icmp_tokens -. 1.0;
      true
    end
    else begin
      t.icmp_ratelimited <- t.icmp_ratelimited + 1;
      false
    end
  end

let attach ip =
  let t =
    { ip; pcbs = []; pcb_hash = Hashtbl.create 16; next_ephemeral = 49152;
      badsum = 0; noport = 0; fulldrops = 0; unreach_sent = 0;
      icmp_ratelimited = 0; nomem_drops = 0;
      icmp_tokens = float_of_int Cost.config.icmp_ratelimit; icmp_tok_ts = 0 }
  in
  let input ~src ~dst:_ m =
    (* Consumes m: the payload is copied out, so the chain is always freed. *)
    if Mbuf.m_length m < udp_hlen then Mbuf.m_freem m
    else begin
      let m = Mbuf.m_pullup m udp_hlen in
      let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
      let sport = Bytes.get_uint16_be d o in
      let dport = Bytes.get_uint16_be d (o + 2) in
      let ulen = Bytes.get_uint16_be d (o + 4) in
      let csum = Bytes.get_uint16_be d (o + 6) in
      if ulen <= Mbuf.m_length m then begin
        let sum_ok =
          csum = 0
          || In_cksum.cksum_chain m ~off:0 ~len:ulen
               ~init:(In_cksum.pseudo_header ~src ~dst:t.ip.Ip.ifp.Netif.if_addr
                        ~proto:Ip.proto_udp ~len:ulen)
             = 0
        in
        if not sum_ok then t.badsum <- t.badsum + 1
        else begin
          let demux () =
            if Cost.config.pcb_hash then begin
              (* Exact match first, then the wildcard bind. *)
              match Hashtbl.find_opt t.pcb_hash (src, sport, dport) with
              | Some _ as r ->
                  Cost.count_pcb_cache_hit ();
                  r
              | None ->
                  Cost.count_pcb_cache_miss ();
                  Hashtbl.find_opt t.pcb_hash (0l, 0, dport)
            end
            else
              List.find_opt
                (fun p ->
                  p.lport = dport
                  && (p.rport = 0 || (p.rport = sport && Int32.equal p.raddr src)))
                t.pcbs
          in
          match demux () with
          | None ->
              (* No listener: answer with ICMP port unreachable (the
                 donor's icmp_error), quoting the UDP header so the
                 sender can match the error to a socket. *)
              t.noport <- t.noport + 1;
              if icmp_allowed t then begin
                t.unreach_sent <- t.unreach_sent + 1;
                Icmp.send_port_unreach t.ip ~dst:src
                  ~payload:(Mbuf.m_copydata m ~off:0 ~len:(min udp_hlen (Mbuf.m_length m)))
              end
          | Some p ->
              let len = ulen - udp_hlen in
              if p.rcv_cc + len > p.rcv_hiwat then begin
                p.dropped <- p.dropped + 1;
                t.fulldrops <- t.fulldrops + 1
              end
              else begin
                let payload = Mbuf.m_copydata m ~off:udp_hlen ~len in
                Queue.add (src, sport, payload) p.rcv_q;
                p.rcv_cc <- p.rcv_cc + len;
                p.on_readable ()
              end
        end
      end;
      Mbuf.m_freem m
    end
  in
  let input ~src ~dst m =
    try input ~src ~dst m
    with Memfault.Nomem ->
      (* Allocation failures on the receive path (header pullup, the ICMP
         reply) degrade to a counted drop, never a crash. *)
      t.nomem_drops <- t.nomem_drops + 1
  in
  Ip.set_proto ip ~proto:Ip.proto_udp (fun ~src ~dst m -> input ~src ~dst m);
  t

let alloc_port t =
  let used p = List.exists (fun x -> x.lport = p) t.pcbs in
  let rec pick p = if used p then pick (p + 1) else p in
  let p = pick t.next_ephemeral in
  t.next_ephemeral <- p + 1;
  p

let create_pcb t =
  let p =
    { lport = 0; laddr = 0l; rport = 0; raddr = 0l; rcv_q = Queue.create ();
      rcv_hiwat = 64 * 1024; rcv_cc = 0; on_readable = (fun () -> ()); dropped = 0 }
  in
  t.pcbs <- p :: t.pcbs;
  p

let bind t pcb ~port =
  if List.exists (fun x -> x != pcb && x.lport = port) t.pcbs then
    Result.Error Error.Addrinuse
  else begin
    hash_remove t pcb;
    pcb.lport <- port;
    pcb.laddr <- t.ip.Ip.ifp.Netif.if_addr;
    hash_add t pcb;
    Ok ()
  end

let detach t pcb =
  t.pcbs <- List.filter (fun x -> x != pcb) t.pcbs;
  hash_remove t pcb

let rec output t pcb ~dst ~dport ~src ~src_pos ~len =
  if pcb.lport = 0 then begin
    pcb.lport <- alloc_port t;
    hash_add t pcb
  end;
  try output_dgram t pcb ~dst ~dport ~src ~src_pos ~len
  with Memfault.Nomem ->
    (* ENOBUFS to the caller: the socket layer surfaces it as an error
       result, the application's retry is the backpressure loop. *)
    t.nomem_drops <- t.nomem_drops + 1;
    raise (Error.Error Error.Nomem)

and output_dgram t pcb ~dst ~dport ~src ~src_pos ~len =
  let m = Mbuf.m_gethdr () in
  let off = Mbuf.m_put m udp_hlen in
  let d = m.Mbuf.m_data in
  let ulen = udp_hlen + len in
  Bytes.set_uint16_be d off pcb.lport;
  Bytes.set_uint16_be d (off + 2) dport;
  Bytes.set_uint16_be d (off + 4) ulen;
  Bytes.set_uint16_be d (off + 6) 0;
  if len > 0 then Mbuf.m_append m ~src ~src_pos ~len;
  let laddr = t.ip.Ip.ifp.Netif.if_addr in
  let sum =
    In_cksum.cksum_chain m ~off:0 ~len:ulen
      ~init:(In_cksum.pseudo_header ~src:laddr ~dst ~proto:Ip.proto_udp ~len:ulen)
  in
  Bytes.set_uint16_be d (off + 6) (if sum = 0 then 0xffff else sum);
  Ip.output t.ip ~proto:Ip.proto_udp ~src:laddr ~dst m

(* Take one datagram off the receive queue. *)
let recv pcb =
  match Queue.take_opt pcb.rcv_q with
  | None -> None
  | Some ((_, _, payload) as dgram) ->
      pcb.rcv_cc <- pcb.rcv_cc - Bytes.length payload;
      Some dgram
