(* ENCAPSULATED LEGACY CODE — ip_input.c / ip_output.c.
 *
 * IPv4 with header checksum, fragmentation on output when the datagram
 * exceeds the interface MTU, and reassembly on input (ipq queues keyed by
 * (src, dst, id, proto), dropped after a timeout as in the donor).
 * Transport protocols register input handlers; locally-addressed output is
 * looped back above the interface layer.
 *)

let ip_hlen = 20
let proto_icmp = 1
let proto_tcp = 6
let proto_udp = 17
let default_ttl = 64
let frag_ttl_ns = 30_000_000_000 (* 30 s reassembly lifetime *)

type frag = { frag_off : int; frag_more : bool; frag_data : Mbuf.mbuf }

type reass_q = {
  key : int32 * int32 * int * int; (* src, dst, id, proto *)
  mutable frags : frag list;
  mutable expires : int;
}

type t = {
  ifp : Netif.ifnet;
  arp : Arp.t;
  machine : Machine.t;
  mutable ip_id : int;
  mutable protos : (int * (src:int32 -> dst:int32 -> Mbuf.mbuf -> unit)) list;
  mutable reass : reass_q list;
  mutable ipackets : int;
  mutable opackets : int;
  mutable ofragments : int;
  mutable reassembled : int;
  mutable badsum : int;
  mutable noroute : int;       (* output dropped: destination off-subnet *)
  mutable reass_expired : int; (* fragments freed past the 30 s lifetime *)
  mutable arp_drops : int;     (* packets freed when ARP gave up on them *)
  mutable nomem_drops : int;   (* input datagrams dropped for want of an mbuf *)
}

let put32 = Arp.put32
let get32 = Arp.get32

let set_proto t ~proto handler =
  t.protos <- (proto, handler) :: List.remove_assoc proto t.protos

(* Build the 20-byte header in front of [m] and emit one (possibly
   already-fragmented) IP packet. *)
let emit t m ~proto ~src ~dst ~ttl ~id ~frag_off ~more_frags =
  let m = Mbuf.m_prepend m ip_hlen in
  let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
  let total = Mbuf.m_length m in
  Bytes.set d o '\x45';
  Bytes.set d (o + 1) '\000';
  Bytes.set_uint16_be d (o + 2) total;
  Bytes.set_uint16_be d (o + 4) id;
  Bytes.set_uint16_be d (o + 6) ((if more_frags then 0x2000 else 0) lor (frag_off lsr 3));
  Bytes.set d (o + 8) (Char.chr ttl);
  Bytes.set d (o + 9) (Char.chr proto);
  Bytes.set_uint16_be d (o + 10) 0;
  put32 d (o + 12) src;
  put32 d (o + 16) dst;
  let sum = In_cksum.cksum_bytes d ~off:o ~len:ip_hlen in
  Bytes.set_uint16_be d (o + 10) sum;
  t.opackets <- t.opackets + 1;
  (* Route: same subnet -> ARP; otherwise no route in this little world.
     Both failure paths count and free rather than raise — emit runs from
     timer events (TCP retransmit), where an exception would take down the
     whole simulation, not just this packet. *)
  if Netif.same_subnet t.ifp dst then
    Arp.resolve t.arp dst
      ~on_drop:(fun () ->
        t.arp_drops <- t.arp_drops + 1;
        Mbuf.m_freem m)
      (fun mac ->
        Netif.ether_output t.ifp m ~dst_mac:mac ~ethertype:Netif.ethertype_ip)
  else begin
    t.noroute <- t.noroute + 1;
    Mbuf.m_freem m
  end

let rec output t ~proto ~src ~dst ?(ttl = default_ttl) m =
  if Int32.equal dst t.ifp.Netif.if_addr then begin
    (* Local delivery: loop straight back up. *)
    match List.assoc_opt proto t.protos with
    | Some input ->
        t.ipackets <- t.ipackets + 1;
        input ~src ~dst m
    | None -> Mbuf.m_freem m
  end
  else begin
    let id = t.ip_id in
    t.ip_id <- (t.ip_id + 1) land 0xffff;
    let payload = Mbuf.m_length m in
    let max_payload = (t.ifp.Netif.if_mtu - ip_hlen) land lnot 7 in
    if payload + ip_hlen <= t.ifp.Netif.if_mtu then
      emit t m ~proto ~src ~dst ~ttl ~id ~frag_off:0 ~more_frags:false
    else begin
      (* Fragment: each piece carries a multiple of 8 bytes except the
         last. *)
      let rec pieces off =
        if off < payload then begin
          let n = min max_payload (payload - off) in
          let more = off + n < payload in
          let piece = Mbuf.m_copym m ~off ~len:n in
          t.ofragments <- t.ofragments + 1;
          emit t piece ~proto ~src ~dst ~ttl ~id ~frag_off:off ~more_frags:more;
          pieces (off + n)
        end
      in
      pieces 0;
      (* The pieces share the original's cluster storage; dropping the
         original just decrements those references. *)
      Mbuf.m_freem m
    end
  end

and input t m =
  if Mbuf.m_length m < ip_hlen then Mbuf.m_freem m
  else begin
    let m = Mbuf.m_pullup m ip_hlen in
    let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
    let ihl = (Char.code (Bytes.get d o) land 0xf) * 4 in
    let total = Bytes.get_uint16_be d (o + 2) in
    let id = Bytes.get_uint16_be d (o + 4) in
    let fword = Bytes.get_uint16_be d (o + 6) in
    let proto = Char.code (Bytes.get d (o + 9)) in
    let src = get32 d (o + 12) and dst = get32 d (o + 16) in
    if In_cksum.cksum_bytes d ~off:o ~len:ihl <> 0 then begin
      t.badsum <- t.badsum + 1;
      Mbuf.m_freem m
    end
    else if not (Int32.equal dst t.ifp.Netif.if_addr) then
      Mbuf.m_freem m (* not ours: drop *)
    else begin
      t.ipackets <- t.ipackets + 1;
      (* Trim link-layer padding beyond the IP total length. *)
      let excess = Mbuf.m_length m - total in
      if excess > 0 then Mbuf.m_adj m (-excess);
      Mbuf.m_adj m ihl;
      let more = fword land 0x2000 <> 0 in
      let frag_off = (fword land 0x1fff) lsl 3 in
      if (not more) && frag_off = 0 then deliver t ~proto ~src ~dst m
      else reass_insert t ~key:(src, dst, id, proto) ~frag_off ~more m
    end
  end

and deliver t ~proto ~src ~dst m =
  match List.assoc_opt proto t.protos with
  | Some input -> input ~src ~dst m
  | None -> Mbuf.m_freem m

and reass_insert t ~key ~frag_off ~more m =
  let now = Machine.now t.machine in
  let live, expired = List.partition (fun q -> q.expires > now) t.reass in
  List.iter
    (fun q ->
      List.iter
        (fun f ->
          t.reass_expired <- t.reass_expired + 1;
          Mbuf.m_freem f.frag_data)
        q.frags)
    expired;
  t.reass <- live;
  let q =
    match List.find_opt (fun q -> q.key = key) t.reass with
    | Some q -> q
    | None ->
        let q = { key; frags = []; expires = now + frag_ttl_ns } in
        t.reass <- q :: t.reass;
        q
  in
  q.frags <- { frag_off; frag_more = more; frag_data = m } :: q.frags;
  (* Complete when a no-more-fragments piece exists and the byte ranges
     cover [0, end) without gaps. *)
  let sorted = List.sort (fun a b -> Int.compare a.frag_off b.frag_off) q.frags in
  let rec covered expect = function
    | [] -> None
    | f :: rest ->
        if f.frag_off > expect then None
        else begin
          let e = f.frag_off + Mbuf.m_length f.frag_data in
          if f.frag_more then covered (max expect e) rest
          else if rest = [] then Some e
          else None
        end
  in
  match covered 0 sorted with
  | None -> ()
  | Some total ->
      t.reass <- List.filter (fun x -> x != q) t.reass;
      t.reassembled <- t.reassembled + 1;
      (* Splice the pieces into one chain (ranges may overlap; take the
         leading part of each). *)
      let buf = Bytes.create total in
      List.iter
        (fun f ->
          let len = min (Mbuf.m_length f.frag_data) (total - f.frag_off) in
          Mbuf.m_copy_into f.frag_data ~off:0 ~len ~dst:buf ~dst_pos:f.frag_off)
        sorted;
      List.iter (fun f -> Mbuf.m_freem f.frag_data) sorted;
      let whole = Mbuf.m_ext_wrap buf ~off:0 ~len:total in
      let src, dst, _, proto = key in
      deliver t ~proto ~src ~dst whole

let attach ifp arp machine =
  let t =
    { ifp; arp; machine; ip_id = 1; protos = []; reass = []; ipackets = 0; opackets = 0;
      ofragments = 0; reassembled = 0; badsum = 0; noroute = 0; reass_expired = 0;
      arp_drops = 0; nomem_drops = 0 }
  in
  Netif.set_proto_input ifp ~ethertype:Netif.ethertype_ip
    (fun m ->
      (* The header pullup can fail under the allocation injector; count
         the drop here so it never reaches the driver as an exception. *)
      try input t m with Memfault.Nomem -> t.nomem_drops <- t.nomem_drops + 1);
  t
