type stack = Bsd_socket.stack

(* Private recognition interface, mirroring the Linux glue's. *)
let mbuf_iid : Mbuf.mbuf Iid.t = Iid.declare "oskit.freebsd.mbuf"

let init machine =
  Bsd_socket.create_stack machine ~hwaddr:"\x00\x00\x00\x00\x00\x00" ~name:"fbsd0"

let ifconfig stack ~addr ~mask = Bsd_socket.ifconfig stack ~addr ~mask

(* ---- mbuf <-> bufio ---- *)

let bufio_of_mbuf m =
  let size () = Mbuf.m_length m in
  let rec view () =
    { Io_if.buf_unknown = unknown ();
      buf_size = size;
      buf_read =
        (fun ~buf ~pos ~offset ~amount ->
          let n = max 0 (min amount (size () - offset)) in
          if n > 0 then Mbuf.m_copy_into m ~off:offset ~len:n ~dst:buf ~dst_pos:pos;
          Ok n);
      buf_write =
        (fun ~buf ~pos ~offset ~amount ->
          let n = max 0 (min amount (size () - offset)) in
          if n > 0 then begin
            (* m_write refuses shared (ext) storage; un-share the touched
               range copy-on-write first. *)
            Mbuf.m_makewritable m ~off:offset ~len:n;
            Mbuf.m_write m ~off:offset ~src:buf ~src_pos:pos ~len:n
          end;
          Ok n);
      buf_map =
        (fun () ->
          (* Contiguous only when the chain is a single mbuf. *)
          match m.Mbuf.m_next with
          | None -> Some (m.Mbuf.m_data, m.Mbuf.m_off)
          | Some _ -> None);
      buf_map_v =
        (* Any chain maps as an iovec: each mbuf's data in place. *)
        (fun () -> Some (Mbuf.m_fragments m)) }
  and obj =
    lazy
      (Com.create (fun _ ->
           [ Iid.B (Io_if.bufio_iid, fun () -> view ());
             Iid.B (mbuf_iid, fun () -> m) ]))
  and unknown () = Lazy.force obj in
  view ()

let mbuf_of_bufio ?cache (io : Io_if.bufio) =
  let attempt =
    match cache with
    | Some { contents = Some false } -> Result.Error Error.No_interface
    | _ ->
        Cost.count_com_call ();
        Com.query io.Io_if.buf_unknown mbuf_iid
  in
  (match cache with
  | Some ({ contents = None } as c) ->
      c := Some (match attempt with Ok _ -> true | Result.Error _ -> false)
  | _ -> ());
  match attempt with
  | Ok m ->
      ignore (io.Io_if.buf_unknown.Com.release ());
      m, false
  | Result.Error _ -> (
      let n = io.Io_if.buf_size () in
      match io.Io_if.buf_map () with
      | Some (backing, start) ->
          (* Contiguous foreign data (e.g. an sk_buff): loan it as external
             mbuf storage — the zero-copy receive path. *)
          Mbuf.m_ext_wrap backing ~off:start ~len:n, false
      | None -> (
          let m = Mbuf.m_getclust () in
          if n > Mbuf.mclbytes then Error.fail Error.Msgsize;
          match io.Io_if.buf_read ~buf:m.Mbuf.m_data ~pos:0 ~offset:0 ~amount:n with
          | Ok k ->
              m.Mbuf.m_len <- k;
              m.Mbuf.m_pkthdr_len <- k;
              Cost.charge_copy k;
              m, true
          | Result.Error e -> Error.fail e))

(* ---- binding the stack to a COM etherdev ---- *)

let open_ether_if stack (ed : Io_if.etherdev) =
  let ifp = stack.Bsd_socket.ifp in
  (* The stack learns the device's station address. *)
  ifp.Netif.if_hwaddr <- ed.Io_if.ed_ethaddr ();
  let recv_netio =
    (* One recognition verdict per receive binding (see Linux_glue). *)
    let cache = ref None in
    let input_one io =
      let m, _copied = mbuf_of_bufio ~cache io in
      Netif.ether_input ifp m
    in
    let rec view () =
      { Io_if.nio_unknown = unknown ();
        push =
          (fun io ->
            Cost.charge_glue_crossing ();
            input_one io;
            Ok ());
        push_v =
          (fun ios ->
            (* The batched receive: one glue crossing amortized over the
               burst; per-frame unwrap and protocol input are unchanged. *)
            Cost.charge_glue_crossing ();
            Cost.count_rx_poll ~frames:(List.length ios);
            List.iter input_one ios;
            Ok ()) }
    and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.netio_iid, fun () -> view ()) ]))
    and unknown () = Lazy.force obj in
    view ()
  in
  match ed.Io_if.ed_open ~recv:recv_netio with
  | Result.Error _ as e -> e
  | Ok xmit ->
      ifp.Netif.if_xmit <-
        (* The crossing is charged by the driver's xmit netio.  The push is
           synchronous: once it returns the frame is on the wire (or
           dropped) and the chain can be retired. *)
        (fun m ->
          ignore (xmit.Io_if.push (bufio_of_mbuf m));
          Mbuf.m_freem m);
      Ok ()

(* ---- COM socket export ---- *)

let sockaddr_of (ip, port) = { Io_if.sin_addr = ip; sin_port = port }

let rec socket_com stack (s : Bsd_socket.tsock) : Io_if.socket =
  let enter f =
    (* Every socket call is an entry into the FreeBSD component. *)
    Cost.charge_glue_crossing ();
    f ()
  in
  let rec view () =
    { Io_if.so_unknown = unknown ();
      so_bind = (fun a -> enter (fun () -> Bsd_socket.so_bind s ~port:a.Io_if.sin_port));
      so_listen = (fun ~backlog -> enter (fun () -> Bsd_socket.so_listen s ~backlog));
      so_accept =
        (fun () ->
          enter (fun () ->
              match Bsd_socket.so_accept s with
              | Ok conn ->
                  let peer =
                    { Io_if.sin_addr = conn.Bsd_socket.pcb.Tcp.raddr;
                      sin_port = conn.Bsd_socket.pcb.Tcp.rport }
                  in
                  Ok (socket_com stack conn, peer)
              | Result.Error _ as e -> (e :> (Io_if.socket * Io_if.sockaddr, Error.t) result)));
      so_connect =
        (fun a ->
          enter (fun () -> Bsd_socket.so_connect s ~dst:a.Io_if.sin_addr ~dport:a.Io_if.sin_port));
      so_send = (fun ~buf ~pos ~len -> enter (fun () -> Bsd_socket.so_send s ~buf ~pos ~len));
      so_recv = (fun ~buf ~pos ~len -> enter (fun () -> Bsd_socket.so_recv s ~buf ~pos ~len));
      so_sendto = (fun ~buf:_ ~pos:_ ~len:_ ~dst:_ -> Result.Error Error.Notsup);
      so_recvfrom = (fun ~buf:_ ~pos:_ ~len:_ -> Result.Error Error.Notsup);
      so_getsockname =
        (fun () ->
          enter (fun () ->
              match Bsd_socket.so_sockname s with
              | Ok pair -> Ok (sockaddr_of pair)
              | Result.Error _ as e -> (e :> (Io_if.sockaddr, Error.t) result)));
      so_setsockopt =
        (fun name value ->
          enter (fun () ->
              match name with
              | "sndbuf" ->
                  Tcp.set_buffer_sizes s.Bsd_socket.pcb ~snd:value
                    ~rcv:s.Bsd_socket.pcb.Tcp.rcv_buf.Sockbuf.sb_hiwat;
                  Ok ()
              | "rcvbuf" ->
                  Tcp.set_buffer_sizes s.Bsd_socket.pcb
                    ~snd:s.Bsd_socket.pcb.Tcp.snd_buf.Sockbuf.sb_hiwat ~rcv:value;
                  Ok ()
              | "nonblock" ->
                  Bsd_socket.so_set_nonblock s (value <> 0);
                  Ok ()
              | _ -> Result.Error Error.Notsup));
      so_shutdown = (fun () -> enter (fun () -> Bsd_socket.so_shutdown s));
      so_close = (fun () -> enter (fun () -> Bsd_socket.so_close s)) }
  (* The readiness view of the same object.  Forced once (not per query),
     so every client shares one listener table; poll is a plain COM method
     dispatch, not a full component crossing — it reads state, converts no
     arguments and wraps no buffers. *)
  and aio =
    lazy
      (Io_if.asyncio_view ~unknown
         ~poll:(fun () ->
           Cost.charge_com_call ();
           Bsd_socket.so_readiness s)
         ~add_listener:(fun ~mask f ->
           Cost.charge_com_call ();
           Bsd_socket.so_add_listener s ~mask f)
         ~remove_listener:(fun id ->
           Cost.charge_com_call ();
           Bsd_socket.so_remove_listener s id)
         ~readable:(fun () -> Bsd_socket.so_readable_bytes s)
         ())
  (* The scatter-send face: loan mapped buffer-cache fragments into the
     send buffer with no copy.  BSD exports it because its mbufs can alias
     foreign storage; the Linux stack deliberately has no such face (its
     contiguous sk_buffs cannot — the Section 5 copy asymmetry), so a
     client that queries for it falls back on copying writes there. *)
  and sv =
    lazy
      { Io_if.sv_unknown = unknown ();
        sv_send_frags =
          (fun ~frags ~pos -> enter (fun () -> Bsd_socket.so_sendv s ~frags ~pos)) }
  and obj =
    lazy
      (Com.create (fun _ ->
           [ Iid.B (Io_if.socket_iid, fun () -> view ());
             Iid.B (Io_if.asyncio_iid, fun () -> Lazy.force aio);
             Iid.B (Io_if.sendv_iid, fun () -> Lazy.force sv) ]))
  and unknown () = Lazy.force obj in
  view ()

let udp_socket_com (s : Bsd_socket.usock) : Io_if.socket =
  let enter f =
    Cost.charge_glue_crossing ();
    f ()
  in
  let mutable_peer = ref None in
  let rec view () =
    { Io_if.so_unknown = unknown ();
      so_bind = (fun a -> enter (fun () -> Bsd_socket.uso_bind s ~port:a.Io_if.sin_port));
      so_listen = (fun ~backlog:_ -> Result.Error Error.Notsup);
      so_accept = (fun () -> Result.Error Error.Notsup);
      so_connect =
        (fun a ->
          mutable_peer := Some a;
          Ok ());
      so_send =
        (fun ~buf ~pos ~len ->
          match !mutable_peer with
          | Some a ->
              enter (fun () ->
                  Bsd_socket.uso_sendto s ~buf ~pos ~len ~dst:a.Io_if.sin_addr
                    ~dport:a.Io_if.sin_port)
          | None -> Result.Error Error.Notconn);
      so_recv =
        (fun ~buf ~pos ~len ->
          enter (fun () ->
              let _, _, payload = Bsd_socket.uso_recvfrom s in
              let n = min len (Bytes.length payload) in
              Cost.charge_copy n;
              Bytes.blit payload 0 buf pos n;
              Ok n));
      so_sendto =
        (fun ~buf ~pos ~len ~dst ->
          enter (fun () ->
              Bsd_socket.uso_sendto s ~buf ~pos ~len ~dst:dst.Io_if.sin_addr
                ~dport:dst.Io_if.sin_port));
      so_recvfrom =
        (fun ~buf ~pos ~len ->
          enter (fun () ->
              let src, sport, payload = Bsd_socket.uso_recvfrom s in
              let n = min len (Bytes.length payload) in
              Cost.charge_copy n;
              Bytes.blit payload 0 buf pos n;
              Ok (n, { Io_if.sin_addr = src; sin_port = sport })));
      so_getsockname =
        (fun () ->
          Ok { Io_if.sin_addr = s.Bsd_socket.upcb.Udp.laddr; sin_port = s.Bsd_socket.upcb.Udp.lport });
      so_setsockopt = (fun _ _ -> Result.Error Error.Notsup);
      so_shutdown = (fun () -> Ok ());
      so_close = (fun () -> enter (fun () -> Bsd_socket.uso_close s)) }
  and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.socket_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()

let socket_factory stack : Io_if.socket_factory =
  let rec view () =
    { Io_if.sf_unknown = unknown ();
      sf_create =
        (fun typ ->
          Cost.charge_glue_crossing ();
          match typ with
          | Io_if.Sock_stream -> Ok (socket_com stack (Bsd_socket.tcp_socket stack))
          | Io_if.Sock_dgram -> Ok (udp_socket_com (Bsd_socket.udp_socket stack))) }
  and obj =
    lazy (Com.create (fun _ -> [ Iid.B (Io_if.socket_factory_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()
