(* ENCAPSULATED LEGACY CODE — uipc_socket.c: the blocking socket layer.
 *
 * sosend/soreceive/soconnect/soaccept over the TCP and UDP protocol
 * blocks.  Blocking (sbwait) and wakeup (sowakeup) go through the donor's
 * event-hash sleep/wakeup retained inside this component (Bsd_sleep,
 * Section 4.7.6); the only client-OS service underneath is the sleep
 * record.  Wait channels are the addresses of the socket buffers in the
 * donor; here, small unique integers per socket.
 *)

type stack = {
  machine : Machine.t;
  ifp : Netif.ifnet;
  arp : Arp.t;
  ip : Ip.t;
  icmp : Icmp.t;
  udp : Udp.t;
  tcp : Tcp.t;
  sleepq : Bsd_sleep.t; (* the component's event hash *)
  mutable next_chan : int;
}

let create_stack machine ~hwaddr ~name =
  let ifp = Netif.create ~name ~hwaddr in
  (* A jumbo MSS only makes sense on a link framed for it: grow the MTU so
     TCP segments of [tcp_mss] never hit the IP fragmenter (default 1460
     leaves the classic Ethernet 1500). *)
  ifp.Netif.if_mtu <-
    max ifp.Netif.if_mtu (Cost.config.Cost.tcp_mss + Ip.ip_hlen + Tcp.tcp_hlen);
  let arp = Arp.attach ifp machine in
  let ip = Ip.attach ifp arp machine in
  let icmp = Icmp.attach ip in
  let udp = Udp.attach ip in
  let tcp = Tcp.attach ip machine in
  { machine; ifp; arp; ip; icmp; udp; tcp; sleepq = Bsd_sleep.create (); next_chan = 0 }

let alloc_chan st =
  st.next_chan <- st.next_chan + 3;
  st.next_chan

let ifconfig stack ~addr ~mask = Netif.ifconfig stack.ifp ~addr ~mask

(* ---- TCP stream sockets ---- *)

(* A readiness listener: the socket-side half of oskit_asyncio.  [rl_fn]
   runs at wakeup level whenever a condition in [rl_mask] is true after a
   protocol event — spurious calls allowed, blocking not. *)
type ready_listener = { rl_id : int; rl_mask : int; rl_fn : int -> unit }

type tsock = {
  st : stack;
  pcb : Tcp.tcpcb;
  chan : int; (* rd = chan, wr = chan+1, cn = chan+2 *)
  mutable nonblock : bool;
  mutable listeners : ready_listener list;
  mutable next_lid : int;
}

(* The donor idiom: sbwait sleeps on the buffer's channel; sowakeup wakes
   every sleeper on it.  Wakeups on an empty channel are naturally lost
   here (as in BSD), so every sleep below sits in a re-checking loop. *)
let sbwait s which = Bsd_sleep.tsleep s.st.sleepq ~channel:(s.chan + which)
let sowakeup st chan which = Bsd_sleep.wakeup st.sleepq ~channel:(chan + which)

(* Current readiness, an [Io_if.aio_*] bitmask.  Mirrors what the blocking
   entry points below would do without sleeping: readable = soreceive or
   soaccept returns immediately, writable = sosend can take at least one
   byte, exception = a pending so_error. *)
let so_readiness s =
  let pcb = s.pcb in
  let rd =
    if pcb.Tcp.t_state = Tcp.Listen then not (Queue.is_empty pcb.Tcp.accept_q)
    else
      pcb.Tcp.rcv_buf.Sockbuf.sb_cc > 0 || pcb.Tcp.rcv_fin
      || pcb.Tcp.t_state = Tcp.Closed
  in
  let wr =
    match pcb.Tcp.t_state with
    | Tcp.Established | Tcp.Close_wait -> Sockbuf.space pcb.Tcp.snd_buf > 0
    | Tcp.Closed -> true
    | _ -> false
  in
  let ex = pcb.Tcp.so_error <> None in
  (if rd then Io_if.aio_read else 0)
  lor (if wr then Io_if.aio_write else 0)
  lor if ex then Io_if.aio_exception else 0

let so_readable_bytes s = s.pcb.Tcp.rcv_buf.Sockbuf.sb_cc

(* No-op when nothing is registered, so the blocking-only paths that Table
   1/2 measures are untouched. *)
let notify_listeners s =
  match s.listeners with
  | [] -> ()
  | ls ->
      let ready = so_readiness s in
      List.iter (fun l -> if ready land l.rl_mask <> 0 then l.rl_fn ready) ls

let so_add_listener s ~mask f =
  let id = s.next_lid in
  s.next_lid <- id + 1;
  s.listeners <- s.listeners @ [ { rl_id = id; rl_mask = mask; rl_fn = f } ];
  id

let so_remove_listener s id =
  s.listeners <- List.filter (fun l -> l.rl_id <> id) s.listeners

let so_set_nonblock s v = s.nonblock <- v

let wrap_pcb st pcb =
  let s = { st; pcb; chan = alloc_chan st; nonblock = false; listeners = []; next_lid = 1 } in
  pcb.Tcp.on_readable <-
    (fun () ->
      sowakeup st s.chan 0;
      notify_listeners s);
  pcb.Tcp.on_writable <-
    (fun () ->
      sowakeup st s.chan 1;
      notify_listeners s);
  pcb.Tcp.on_state <-
    (fun () ->
      sowakeup st s.chan 2;
      sowakeup st s.chan 0;
      sowakeup st s.chan 1;
      notify_listeners s);
  s

let tcp_socket st = wrap_pcb st (Tcp.create_pcb st.tcp)

let so_bind s ~port = Tcp.usr_bind s.st.tcp s.pcb ~port
let so_listen s ~backlog = Tcp.usr_listen s.st.tcp s.pcb ~backlog

let so_accept s =
  if s.pcb.Tcp.t_state <> Tcp.Listen then Result.Error Error.Inval
  else begin
    let rec wait () =
      match
        Tcp.with_accept_lock s.st.tcp (fun () ->
            Queue.take_opt s.pcb.Tcp.accept_q)
      with
      | Some conn -> Ok (wrap_pcb s.st conn)
      | None ->
          if s.pcb.Tcp.t_state <> Tcp.Listen then Result.Error Error.Badf
          else if s.nonblock then Result.Error Error.Wouldblock
          else begin
            sbwait s 0;
            wait ()
          end
    in
    wait ()
  end

let so_connect s ~dst ~dport =
  match Tcp.usr_connect s.st.tcp s.pcb ~dst ~dport with
  | Result.Error _ as e -> e
  | Ok () ->
      let rec wait () =
        match s.pcb.Tcp.t_state with
        | Tcp.Established -> Ok ()
        | Tcp.Syn_sent | Tcp.Syn_received ->
            sbwait s 2;
            wait ()
        | _ -> Result.Error (Option.value s.pcb.Tcp.so_error ~default:Error.Connrefused)
      in
      wait ()

(* sosend: block until all bytes are accepted into the send buffer. *)
let so_send s ~buf ~pos ~len =
  let rec push sent =
    if sent >= len then Ok len
    else
      match Tcp.usr_send s.st.tcp s.pcb ~src:buf ~src_pos:(pos + sent) ~len:(len - sent) with
      | Result.Error e -> if sent > 0 then Ok sent else Result.Error e
      | Ok 0 -> (
          match s.pcb.Tcp.t_state with
          | Tcp.Closed -> Result.Error (Option.value s.pcb.Tcp.so_error ~default:Error.Pipe)
          | _ when s.nonblock ->
              if sent > 0 then Ok sent else Result.Error Error.Wouldblock
          | _ ->
              sbwait s 1;
              push sent)
      | Ok n -> push (sent + n)
  in
  push 0

(* sosend for mapped file fragments (the sendfile path): loan the
   fragments into the send buffer with no copy, blocking until the bytes
   from [pos] onward are all accepted.  Nonblocking sockets get partial
   progress or Wouldblock, like so_send. *)
let so_sendv s ~frags ~pos =
  let total = List.fold_left (fun a f -> a + f.Io_if.fr_len) 0 frags in
  let len = max 0 (total - pos) in
  let rec push sent =
    if sent >= len then Ok len
    else
      match Tcp.usr_sendv s.st.tcp s.pcb ~frags ~pos:(pos + sent) with
      | Result.Error e -> if sent > 0 then Ok sent else Result.Error e
      | Ok 0 -> (
          match s.pcb.Tcp.t_state with
          | Tcp.Closed -> Result.Error (Option.value s.pcb.Tcp.so_error ~default:Error.Pipe)
          | _ when s.nonblock ->
              if sent > 0 then Ok sent else Result.Error Error.Wouldblock
          | _ ->
              sbwait s 1;
              push sent)
      | Ok n -> push (sent + n)
  in
  push 0

(* soreceive: block until at least one byte (or EOF). *)
let so_recv s ~buf ~pos ~len =
  let rec wait () =
    let n = Tcp.usr_recv s.st.tcp s.pcb ~dst:buf ~dst_pos:pos ~len in
    if n > 0 then Ok n
    else if s.pcb.Tcp.rcv_fin then Ok 0
    else
      match s.pcb.Tcp.t_state with
      | Tcp.Closed -> (
          match s.pcb.Tcp.so_error with Some e -> Result.Error e | None -> Ok 0)
      | _ when s.nonblock -> Result.Error Error.Wouldblock
      | _ ->
          sbwait s 0;
          wait ()
  in
  if len = 0 then Ok 0 else wait ()

let so_close s =
  Tcp.usr_close s.st.tcp s.pcb;
  Ok ()

let so_shutdown s =
  Tcp.usr_close s.st.tcp s.pcb;
  Ok ()

let so_abort s =
  Tcp.usr_abort s.st.tcp s.pcb;
  Ok ()

let so_sockname s =
  Ok (s.st.ifp.Netif.if_addr, s.pcb.Tcp.lport)

(* ---- UDP datagram sockets ---- *)

type usock = { ust : stack; upcb : Udp.pcb; urd : Sleep_record.t }

let udp_socket st =
  let upcb = Udp.create_pcb st.udp in
  let s = { ust = st; upcb; urd = Sleep_record.create ~name:"udp_rcv" () } in
  upcb.Udp.on_readable <- (fun () -> Sleep_record.wakeup s.urd);
  s

let uso_bind s ~port = Udp.bind s.ust.udp s.upcb ~port

let uso_sendto s ~buf ~pos ~len ~dst ~dport =
  Cost.charge_cycles Cost.config.socket_op_cycles;
  match
    Error.to_result (fun () ->
        Udp.output s.ust.udp s.upcb ~dst ~dport ~src:buf ~src_pos:pos ~len)
  with
  | Ok () -> Ok len
  | Result.Error _ as e -> e

let uso_recvfrom s =
  Cost.charge_cycles Cost.config.socket_op_cycles;
  let rec wait () =
    match Udp.recv s.upcb with
    | Some dgram -> dgram
    | None ->
        Sleep_record.sleep s.urd;
        wait ()
  in
  wait ()

let uso_close s =
  Udp.detach s.ust.udp s.upcb;
  Ok ()

(* ---- per-layer drop accounting, netstat -s style ---- *)

let netstat st =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let ip = st.ip and tcp = st.tcp.Tcp.stats and udp = st.udp and arp = st.arp in
  line "ip:";
  line "  %d packets received" ip.Ip.ipackets;
  line "  %d packets sent" ip.Ip.opackets;
  line "  %d bad header checksums" ip.Ip.badsum;
  line "  %d packets dropped (no route)" ip.Ip.noroute;
  line "  %d fragments dropped after timeout" ip.Ip.reass_expired;
  line "  %d packets dropped (arp resolution failed)" ip.Ip.arp_drops;
  line "tcp:";
  line "  %d packets sent" tcp.Tcp.sndpack;
  line "  %d data packets retransmitted" tcp.Tcp.sndrexmitpack;
  line "  %d packets received" tcp.Tcp.rcvpack;
  line "  %d discarded for bad checksums" tcp.Tcp.rcvbadsum;
  line "  %d discarded for bad header lengths" tcp.Tcp.rcvshort;
  line "  %d duplicate packets" tcp.Tcp.rcvdup;
  line "  %d out-of-order packets" tcp.Tcp.rcvoo;
  line "  %d packets with data after window" tcp.Tcp.rcvafterwin;
  line "  %d listen queue overflows" tcp.Tcp.listen_overflow;
  line "  %d ack predictions ok" tcp.Tcp.predack;
  line "  %d data predictions ok" tcp.Tcp.preddat;
  line "  %d prediction fallbacks" tcp.Tcp.predfallback;
  line "  %d syncache entries added (%d evicted, %d completed)" tcp.Tcp.syncache_added
    tcp.Tcp.syncache_evicted tcp.Tcp.syncache_completed;
  line "  %d SYN cookies validated, %d rejected" tcp.Tcp.syncookies_validated
    tcp.Tcp.syncookies_rejected;
  line "  %d TIME_WAIT connections reclaimed" tcp.Tcp.time_wait_reclaimed;
  line "  %d drops for want of memory" tcp.Tcp.nomem_drops;
  line "  %d RSTs rate limited" tcp.Tcp.rst_ratelimited;
  line "udp:";
  line "  %d with bad checksum" udp.Udp.badsum;
  line "  %d dropped, no socket" udp.Udp.noport;
  line "  %d dropped, full socket buffer" udp.Udp.fulldrops;
  line "  %d port unreachables sent" udp.Udp.unreach_sent;
  line "  %d port unreachables rate limited" udp.Udp.icmp_ratelimited;
  line "  %d drops for want of memory" udp.Udp.nomem_drops;
  line "arp:";
  line "  %d requests sent" arp.Arp.requests_sent;
  line "  %d replies sent" arp.Arp.replies_sent;
  line "  %d waiters dropped (queue full)" arp.Arp.waiters_dropped;
  line "  %d resolutions abandoned (retries exhausted)" arp.Arp.resolve_failures;
  line "event:";
  line "  %d timer-wheel arms (%d cancels, %d fires, %d cascades)"
    Cost.counters.Cost.wheel_arms Cost.counters.Cost.wheel_cancels
    Cost.counters.Cost.wheel_fires Cost.counters.Cost.wheel_cascades;
  line "  %d kqueue events posted (%d coalesced)" Cost.counters.Cost.kq_posted
    Cost.counters.Cost.kq_coalesced;
  Buffer.contents b
