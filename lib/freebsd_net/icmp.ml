(* ENCAPSULATED LEGACY CODE — ip_icmp.c: echo request/reply plus a hook for
 * receiving replies (what ping-style diagnostics use), and the
 * destination-unreachable error UDP sends on a demux miss.
 *)

let type_echo_reply = 0
let type_unreach = 3
let code_port_unreach = 3
let type_echo = 8

type t = {
  ip : Ip.t;
  mutable echoes_answered : int;
  mutable on_echo_reply : ident:int -> seq:int -> payload:bytes -> unit;
}

let build ~typ ~code ~ident ~seq ~payload =
  let m = Mbuf.m_gethdr () in
  let off = Mbuf.m_put m 8 in
  let d = m.Mbuf.m_data in
  Bytes.set d off (Char.chr typ);
  Bytes.set d (off + 1) (Char.chr code);
  Bytes.set_uint16_be d (off + 2) 0;
  Bytes.set_uint16_be d (off + 4) ident;
  Bytes.set_uint16_be d (off + 6) seq;
  if Bytes.length payload > 0 then
    Mbuf.m_append m ~src:payload ~src_pos:0 ~len:(Bytes.length payload);
  let sum = In_cksum.cksum_chain m ~off:0 ~len:(Mbuf.m_length m) in
  Bytes.set_uint16_be d (off + 2) sum;
  m

let send_echo t ~dst ~ident ~seq ~payload =
  let m = build ~typ:type_echo ~code:0 ~ident ~seq ~payload in
  Ip.output t.ip ~proto:Ip.proto_icmp ~src:t.ip.Ip.ifp.Netif.if_addr ~dst m

(* Port unreachable (the donor's icmp_error): type 3 code 3, four unused
   bytes (build's zero ident/seq), then the leading bytes of the offending
   datagram so the sender can match it to a socket.  Takes [ip] directly —
   UDP calls this without holding an ICMP handle. *)
let send_port_unreach ip ~dst ~payload =
  let m = build ~typ:type_unreach ~code:code_port_unreach ~ident:0 ~seq:0 ~payload in
  Ip.output ip ~proto:Ip.proto_icmp ~src:ip.Ip.ifp.Netif.if_addr ~dst m

let input t ~src ~dst:_ m =
  (* Consumes m: payloads are copied out, replies are fresh chains. *)
  if Mbuf.m_length m < 8 then Mbuf.m_freem m
  else if In_cksum.cksum_chain m ~off:0 ~len:(Mbuf.m_length m) <> 0 then Mbuf.m_freem m
  else begin
    let m = Mbuf.m_pullup m 8 in
      let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
      let typ = Char.code (Bytes.get d o) in
      let ident = Bytes.get_uint16_be d (o + 4) in
      let seq = Bytes.get_uint16_be d (o + 6) in
      let payload_len = Mbuf.m_length m - 8 in
      if typ = type_echo then begin
        t.echoes_answered <- t.echoes_answered + 1;
        let payload =
          if payload_len > 0 then Mbuf.m_copydata m ~off:8 ~len:payload_len else Bytes.empty
        in
        let reply = build ~typ:type_echo_reply ~code:0 ~ident ~seq ~payload in
        Ip.output t.ip ~proto:Ip.proto_icmp ~src:t.ip.Ip.ifp.Netif.if_addr ~dst:src reply
      end
      else if typ = type_echo_reply then begin
        let payload =
          if payload_len > 0 then Mbuf.m_copydata m ~off:8 ~len:payload_len else Bytes.empty
        in
        t.on_echo_reply ~ident ~seq ~payload
      end;
      Mbuf.m_freem m
  end

let attach ip =
  let t = { ip; echoes_answered = 0; on_echo_reply = (fun ~ident:_ ~seq:_ ~payload:_ -> ()) } in
  Ip.set_proto ip ~proto:Ip.proto_icmp
    (fun ~src ~dst m ->
      (* ICMP is best-effort: under the allocation-failure injector a
         pullup or reply build just drops the message.  The chain is left
         to the GC — pullup may already have consumed part of it. *)
      try input t ~src ~dst m with Memfault.Nomem -> ());
  t
