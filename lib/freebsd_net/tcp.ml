(* ENCAPSULATED LEGACY CODE — tcp_input.c / tcp_output.c / tcp_timer.c /
 * tcp_subr.c, in the 4.4BSD shape: 32-bit modular sequence space, the
 * two-rate timer wheel (fast = delayed ACKs at 200 ms, slow = everything
 * else at 500 ms), Jacobson RTT estimation in BSD fixed point, slow start
 * and congestion avoidance, fast retransmit on three duplicate ACKs, a
 * per-connection reassembly queue, and send/receive socket buffers.
 *
 * Simplifications vs. the donor, documented per Section 4.5: no keepalive
 * probing, no TCP options beyond MSS, no urgent data.  None of these
 * affect the paper's measurements (bulk transfer and 1-byte latency on a
 * LAN).  Header prediction — absent from the 1997 snapshot this models —
 * exists behind Cost.config.tcp_fastpath (default off, so the measured
 * Table 2 shape is untouched), together with the hashed PCB demux behind
 * Cost.config.pcb_hash; see fastpath_pred/fastpath_input below.
 *)

let tcp_hlen = 20
let default_mss = 1460
let max_win = 65535
let slow_interval_ns = 500_000_000 (* PR_SLOWHZ = 2 *)
let fast_interval_ns = 200_000_000 (* delayed-ACK timer *)
let msl_ticks = 4 (* 2 s in slow ticks — MSL scaled for a LAN *)
let max_rxtshift = 12

(* --- 32-bit modular sequence arithmetic (the SEQ_LT macro family) --- *)

let m32 x = x land 0xffffffff

let seq_diff a b =
  let d = m32 (a - b) in
  if d >= 0x80000000 then d - 0x100000000 else d

let seq_lt a b = seq_diff a b < 0
let seq_leq a b = seq_diff a b <= 0
let seq_gt a b = seq_diff a b > 0
let seq_geq a b = seq_diff a b >= 0

(* --- header flags --- *)

let th_fin = 0x01
let th_syn = 0x02
let th_rst = 0x04
let th_push = 0x08
let th_ack = 0x10

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Last_ack
  | Time_wait

let state_name = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_received -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Closing -> "CLOSING"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"

type stats = {
  mutable sndpack : int;
  mutable sndrexmitpack : int;
  mutable rcvpack : int;
  mutable rcvdup : int;
  mutable rcvoo : int;
  mutable rcvbadsum : int;
  mutable rcvshort : int;    (* segments shorter than a TCP header *)
  mutable rcvafterwin : int; (* data wholly or partly beyond the window *)
  mutable delack : int;
  mutable fastrexmit : int;
  mutable drops : int;
  mutable accepts : int;
  mutable connects : int;
  mutable listen_overflow : int; (* SYNs dropped: listen queue full *)
  mutable predack : int;  (* header prediction: pure/piggyback ACK hits *)
  mutable preddat : int;  (* header prediction: in-order data hits *)
  mutable predfallback : int; (* established-state segments that missed *)
  mutable syncache_added : int;       (* half-open handshakes cached *)
  mutable syncache_evicted : int;     (* entries dropped oldest-first *)
  mutable syncache_completed : int;   (* handshakes finished from the cache *)
  mutable syncookies_validated : int; (* finished statelessly from the cookie *)
  mutable syncookies_rejected : int;  (* completing ACKs matching neither *)
  mutable time_wait_reclaimed : int;  (* TIME_WAIT reclaimed early (cap/pressure) *)
  mutable nomem_drops : int;          (* segments dropped for want of an mbuf *)
  mutable rst_ratelimited : int;      (* error RSTs suppressed by the token bucket *)
}

(* A syncache entry (Cost.config.syn_defense): the compact half-open
   handshake record a listener keeps instead of a full child pcb — a few
   words against the pcb's two socket buffers, so a SYN flood pins
   trivial memory and embryonic connections stop counting against the
   accept backlog. *)
type sc_entry = {
  sc_raddr : int32;
  sc_rport : int;
  sc_irs : int; (* the SYN's sequence number *)
  sc_iss : int; (* the cookie we answered with *)
  sc_mss : int; (* peer's clamped MSS offer *)
}

type tcpcb = {
  t_stack : t;
  mutable t_state : state;
  mutable laddr : int32;
  mutable lport : int;
  mutable raddr : int32;
  mutable rport : int;
  mutable t_maxseg : int;
  (* send sequence space *)
  mutable iss : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_max : int;
  mutable snd_wnd : int;
  mutable snd_wl1 : int;
  mutable snd_wl2 : int;
  mutable snd_cwnd : int;
  mutable snd_ssthresh : int;
  mutable snd_recover : int; (* NewReno: snd_max at fast-rexmit entry *)
  (* RFC 1323 window scaling (Cost.config.tcp_wscale): [snd_scale] shifts
     incoming window fields (the peer's offer), [rcv_scale] ours.  Both 0
     until a SYN exchange where each side carried the option. *)
  mutable snd_scale : int;
  mutable rcv_scale : int;
  mutable peer_wscale : int; (* scale the peer's SYN offered; -1 = none *)
  snd_buf : Sockbuf.t;
  mutable snd_fin_pending : bool;
  mutable fin_sent : bool;
  (* receive sequence space *)
  mutable irs : int;
  mutable rcv_nxt : int;
  mutable rcv_adv : int;
  rcv_buf : Sockbuf.t;
  mutable rcv_fin : bool;
  mutable reass : (int * Mbuf.mbuf) list;
  (* timers, slow ticks; 0 = disarmed.  With Cost.config.timer_wheel the
     counters stay as armed-indicators (every site still reads "= 0" for
     disarmed) but stop decrementing: the deadline lives in a per-CPU
     timing-wheel entry below and no periodic walk visits this pcb. *)
  mutable tm_rexmt : int;
  mutable tm_persist : int;
  mutable tm_2msl : int;
  (* wheel-mode entries, indexed by tw_rexmt/tw_persist/tw_2msl/tw_delack *)
  tw_ents : Timewheel.entry option array;
  (* RTT machinery, BSD fixed point *)
  mutable t_rtt : int;
  mutable t_rtt_ns : int; (* wheel mode: when the RTT clock started *)
  mutable t_rtseq : int;
  mutable t_srtt : int; (* << 3 *)
  mutable t_rttvar : int; (* << 2 *)
  mutable t_rxtcur : int;
  mutable t_rxtshift : int;
  (* ACK strategy *)
  mutable ack_now : bool;
  mutable delack_pending : bool;
  mutable t_dupacks : int;
  (* receive-buffer autotuning (Cost.config.tcp_autotune): a clump of
     back-to-back arrivals bounded by RTT-scale gaps is one window's worth
     of flight; a clump that fills the buffer means the window is the
     limiter. *)
  mutable rxclump_ts : int; (* ns of last in-order arrival; 0 = idle *)
  mutable rxclump_bytes : int;
  (* listen side *)
  accept_q : tcpcb Queue.t;
  mutable backlog : int;
  mutable listen_parent : tcpcb option;
  mutable syn_cache : sc_entry list; (* newest first; listeners only *)
  (* socket-layer callbacks *)
  mutable on_readable : unit -> unit;
  mutable on_writable : unit -> unit;
  mutable on_state : unit -> unit;
  mutable so_error : Error.t option;
  (* SMP: the RSS home of this flow — the one CPU its frames are steered
     to, its timers walk on, and its stats shard to.  Always 0 at
     ncpus=1. *)
  mutable home_cpu : int;
}

and t = {
  ip : Ip.t;
  machine : Machine.t;
  mutable pcbs : tcpcb list;
  (* O(1) demux (Cost.config.pcb_hash): connected pcbs keyed by
     (raddr, rport, lport), plus the donor's tcp_last_inpcb one-entry
     cache.  Maintained unconditionally so the flag can flip mid-run;
     listeners stay out (they are found by the lport-only fallback scan). *)
  pcb_hash : (int32 * int * int, tcpcb) Hashtbl.t;
  mutable last_pcb : tcpcb option;
  mutable next_ephemeral : int;
  mutable iss_source : int;
  mutable ticking : bool;
  (* TIME_WAIT pcbs oldest-first, for the tw_max cap and memory-pressure
     reclaim.  Maintained unconditionally (pure bookkeeping, no cycle
     charges) so the knob can flip mid-run. *)
  mutable tw_list : tcpcb list;
  cookie_secret : int;
  (* token bucket for error responses (Cost.config.icmp_ratelimit) *)
  mutable err_tokens : float;
  mutable err_tok_ts : int;
  (* [stats] is the aggregation view netstat and every existing test read;
     [stats_shards.(cpu)] is the per-CPU split (every bump updates both).
     One per machine CPU. *)
  stats : stats;
  stats_shards : stats array;
  (* The accept queue is the one cross-CPU structure: children complete
     their handshake on their RSS home CPU and park here; the application
     accepts on CPU 0.  Guarded by an honest spinlock when ncpus > 1 (the
     per-flow hot path takes no locks). *)
  accept_lock : Smp.spinlock;
}

let default_sb_size = 48 * 1024

(* ------------------------------------------------------------------ *)
(* pcb management                                                      *)

let create_pcb t =
  { t_stack = t; t_state = Closed; laddr = 0l; lport = 0; raddr = 0l; rport = 0;
    t_maxseg = Cost.config.tcp_mss; iss = 0; snd_una = 0; snd_nxt = 0; snd_max = 0;
    snd_wnd = 0;
    snd_wl1 = 0; snd_wl2 = 0; snd_cwnd = Cost.config.tcp_mss; snd_ssthresh = max_win;
    snd_recover = 0; snd_scale = 0; rcv_scale = 0; peer_wscale = -1;
    snd_buf = Sockbuf.create ~hiwat:default_sb_size; snd_fin_pending = false;
    fin_sent = false; irs = 0; rcv_nxt = 0; rcv_adv = 0;
    rcv_buf = Sockbuf.create ~hiwat:default_sb_size; rcv_fin = false; reass = [];
    tm_rexmt = 0; tm_persist = 0; tm_2msl = 0; tw_ents = Array.make 4 None;
    t_rtt = 0; t_rtt_ns = 0; t_rtseq = 0; t_srtt = 0;
    t_rttvar = 24; t_rxtcur = 2; t_rxtshift = 0; ack_now = false; delack_pending = false;
    t_dupacks = 0; rxclump_ts = 0; rxclump_bytes = 0;
    accept_q = Queue.create (); backlog = 0; listen_parent = None; syn_cache = [];
    on_readable = (fun () -> ()); on_writable = (fun () -> ());
    on_state = (fun () -> ()); so_error = None; home_cpu = 0 }

let rcv_window pcb = min (Sockbuf.space pcb.rcv_buf) (max_win lsl pcb.rcv_scale)

(* The scale we ask for on SYN: smallest shift that makes the largest
   buffer we could ever autotune to representable in the 16-bit field. *)
let request_r_scale () =
  let rec go s = if s < 14 && max_win lsl s < Cost.config.tcp_sockbuf_max then go (s + 1) else s in
  go 0

(* Both sides offered: windows are scaled from here on.  ssthresh starts
   effectively unbounded again, in the scaled range. *)
let setup_scaling pcb ~peer =
  pcb.peer_wscale <- min 14 peer;
  if Cost.config.tcp_wscale then begin
    pcb.snd_scale <- min 14 peer;
    pcb.rcv_scale <- request_r_scale ();
    pcb.snd_ssthresh <- max_win lsl pcb.snd_scale
  end

let hash_key pcb = (pcb.raddr, pcb.rport, pcb.lport)

let register t pcb =
  if not (List.memq pcb t.pcbs) then t.pcbs <- pcb :: t.pcbs;
  if pcb.t_state <> Listen then begin
    Hashtbl.replace t.pcb_hash (hash_key pcb) pcb;
    (* The flow's home CPU is fixed by the same symmetric hash the NIC
       steers with, so input, timers, and output for this pcb all meet on
       one CPU.  Listeners stay on CPU 0 (accepts happen there). *)
    pcb.home_cpu <-
      Rss.cpu_of_flow ~ncpus:(Machine.ncpus t.machine) ~proto:6
        ~addr_a:pcb.laddr ~port_a:pcb.lport ~addr_b:pcb.raddr ~port_b:pcb.rport
  end

(* Run [f] under the listener accept-queue lock when the machine is
   genuinely multiprocessor; single-CPU runs take today's lock-free path
   (and charge nothing). *)
let with_accept_lock t f =
  if Machine.ncpus t.machine > 1 then Smp.with_spinlock t.accept_lock f
  else f ()

let stats_for t ~cpu = t.stats_shards.(cpu)

(* Bump a statistic in the aggregate record and in the executing CPU's
   shard, so netstat totals are ncpus-invariant and the shards always sum
   to them. *)
let bump t f =
  f t.stats;
  f t.stats_shards.(Machine.cpu t.machine)

(* ------------------------------------------------------------------ *)
(* timing-wheel plumbing (Cost.config.timer_wheel)                     *)

(* Slot indices into pcb.tw_ents. *)
let tw_rexmt = 0

let tw_persist = 1
let tw_2msl = 2
let tw_delack = 3
let wheel_on () = Cost.config.timer_wheel

let tw_cancel pcb slot =
  match pcb.tw_ents.(slot) with
  | Some e ->
      pcb.tw_ents.(slot) <- None;
      Kwheel.cancel e
  | None -> ()

(* Arm one pcb timer [ns] out on the flow's RSS home CPU's wheel; the
   previous entry for the slot (if any) is cancelled first, so a slot
   holds at most one live deadline. *)
let tw_arm t pcb slot ~ns fire =
  tw_cancel pcb slot;
  let e =
    Kwheel.after (Kwheel.for_machine t.machine) ~cpu:pcb.home_cpu ~ns (fun () ->
        pcb.tw_ents.(slot) <- None;
        fire ())
  in
  pcb.tw_ents.(slot) <- Some e

let tw_cancel_all pcb =
  tw_cancel pcb tw_rexmt;
  tw_cancel pcb tw_persist;
  tw_cancel pcb tw_2msl;
  tw_cancel pcb tw_delack

let detach t pcb =
  tw_cancel_all pcb;
  (* With the sendfile knob on, a dying connection must retire its socket
     buffers: the send buffer may hold loaned ext mbufs whose on-free
     callbacks unpin buffer-cache blocks, and an abort (peer RST, rexmt
     give-up) is the one path where those bytes are never acked and
     dropped.  Gated on the knob because freeing recycles pooled storage
     and changes later Bpool hit/miss charges — flag-off runs must stay
     bit-identical to the committed baselines. *)
  if Cost.config.Cost.sendfile then begin
    Sockbuf.sbdrop pcb.snd_buf pcb.snd_buf.Sockbuf.sb_cc;
    Sockbuf.sbdrop pcb.rcv_buf pcb.rcv_buf.Sockbuf.sb_cc
  end;
  t.pcbs <- List.filter (fun x -> x != pcb) t.pcbs;
  if t.tw_list <> [] then t.tw_list <- List.filter (fun x -> x != pcb) t.tw_list;
  (match Hashtbl.find_opt t.pcb_hash (hash_key pcb) with
  | Some p when p == pcb -> Hashtbl.remove t.pcb_hash (hash_key pcb)
  | _ -> ());
  match t.last_pcb with Some p when p == pcb -> t.last_pcb <- None | _ -> ()

let next_iss t =
  t.iss_source <- m32 (t.iss_source + 64000);
  t.iss_source

let alloc_port t =
  let used p = List.exists (fun x -> x.lport = p) t.pcbs in
  let rec pick p = if used p then pick (p + 1) else p in
  let p = pick t.next_ephemeral in
  t.next_ephemeral <- p + 1;
  p

(* ------------------------------------------------------------------ *)
(* SYN cookies (Cost.config.syn_defense)                               *)

(* With the defense on, the ISS a listener answers with is always
   decodable: bits 1..0 index the MSS class table, bits 31..2 hash the
   4-tuple with a per-stack secret.  When the syncache has evicted (or
   never held) the half-open entry, the completing ACK alone — which
   echoes ISS+1 — carries enough to rebuild the connection. *)

let cookie_mss_classes = [| 536; 1160; 1460; 8960 |]

let cookie_mss_class mss =
  let rec go i best =
    if i >= Array.length cookie_mss_classes then best
    else if cookie_mss_classes.(i) <= mss then go (i + 1) i
    else best
  in
  go 1 0

let cookie_hash t ~raddr ~rport ~lport =
  let mix h k =
    let h = h lxor (m32 (k * 0x9e3779b1)) in
    let h = m32 ((h lxor (h lsr 15)) * 0x85ebca6b) in
    h lxor (h lsr 13)
  in
  let h = mix (t.cookie_secret land 0xffffffff) (Int32.to_int raddr land 0xffffffff) in
  let h = mix h rport in
  let h = mix h lport in
  h land 0x3fffffff

let syn_cookie t ~raddr ~rport ~lport ~mss =
  m32 ((cookie_hash t ~raddr ~rport ~lport lsl 2) lor cookie_mss_class mss)

(* The completing ACK acknowledges ISS+1.  Returns the MSS class the
   cookie recorded iff the hash checks out. *)
let check_cookie t ~raddr ~rport ~lport ~iss =
  if (iss lsr 2) land 0x3fffffff = cookie_hash t ~raddr ~rport ~lport then
    Some cookie_mss_classes.(iss land 3)
  else None

(* Memory pressure: give back the coldest protocol state first — every
   TIME_WAIT pcb (losing the 2xMSL guard under overload is the documented
   BSD tradeoff) and every cached half-open handshake (the cookie can
   still complete those statelessly). *)
let tcp_reclaim t =
  let tw = t.tw_list in
  t.tw_list <- [];
  List.iter
    (fun pcb ->
      if pcb.t_state = Time_wait then begin
        pcb.t_state <- Closed;
        pcb.tm_2msl <- 0;
        bump t (fun s -> s.time_wait_reclaimed <- s.time_wait_reclaimed + 1);
        detach t pcb;
        pcb.on_state ()
      end)
    tw;
  List.iter
    (fun pcb ->
      if pcb.syn_cache <> [] then begin
        bump t (fun s -> s.syncache_evicted <- s.syncache_evicted + List.length pcb.syn_cache);
        pcb.syn_cache <- []
      end)
    t.pcbs

(* Token bucket on generated error responses (the RST answering a segment
   no connection claims): depth and rate are Cost.config.icmp_ratelimit
   per second; 0 = unlimited, the donor behavior. *)
let err_allowed t =
  let rate = Cost.config.icmp_ratelimit in
  if rate = 0 then true
  else begin
    let now = Machine.now t.machine in
    let elapsed = now - t.err_tok_ts in
    t.err_tok_ts <- now;
    t.err_tokens <-
      Float.min (float_of_int rate)
        (t.err_tokens +. (float_of_int rate *. float_of_int elapsed /. 1e9));
    if t.err_tokens >= 1.0 then begin
      t.err_tokens <- t.err_tokens -. 1.0;
      true
    end
    else begin
      bump t (fun s -> s.rst_ratelimited <- s.rst_ratelimited + 1);
      false
    end
  end

(* ------------------------------------------------------------------ *)
(* timers: armed while any pcb exists, quiesce when none               *)

(* With the wheel on there is nothing periodic to start: each timer set
   below arms its own wheel entry, and an idle stack schedules no events
   at all. *)
let rec ensure_timers t =
  if (not (wheel_on ())) && not t.ticking then begin
    t.ticking <- true;
    let rec slow () =
      ignore
        (Machine.after t.machine slow_interval_ns (fun () ->
             if t.pcbs = [] then t.ticking <- false
             else begin
               slow_tick t;
               slow ()
             end))
    in
    let rec fast () =
      ignore
        (Machine.after t.machine fast_interval_ns (fun () ->
             if t.pcbs <> [] then begin
               fast_tick t;
               fast ()
             end))
    in
    slow ();
    fast ()
  end

(* ------------------------------------------------------------------ *)
(* segment emission                                                    *)

and emit_segment t pcb ~seq ~ack ~flags ~win ~payload ~mss_opt ~wscale =
  (* ENOBUFS on transmit behaves like a lost wire frame: count it, shed
     cold state, and let retransmission recover — an allocation failure
     on a timer or input path must never become an uncaught exception. *)
  try emit_segment_nomem t pcb ~seq ~ack ~flags ~win ~payload ~mss_opt ~wscale
  with Memfault.Nomem ->
    bump t (fun s -> s.nomem_drops <- s.nomem_drops + 1);
    tcp_reclaim t

and emit_segment_nomem t pcb ~seq ~ack ~flags ~win ~payload ~mss_opt ~wscale =
  let ws_len = match wscale with Some _ -> 4 | None -> 0 in
  let opt_len = (if mss_opt then 4 else 0) + ws_len in
  let hlen = tcp_hlen + opt_len in
  let m =
    match payload with
    | Some data -> Mbuf.m_prepend data hlen
    | None ->
        let m = Mbuf.m_gethdr () in
        ignore (Mbuf.m_put m hlen);
        m
  in
  let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
  Bytes.set_uint16_be d o pcb.lport;
  Bytes.set_uint16_be d (o + 2) pcb.rport;
  Bytes.set_int32_be d (o + 4) (Int32.of_int (m32 seq));
  Bytes.set_int32_be d (o + 8) (Int32.of_int (m32 ack));
  Bytes.set d (o + 12) (Char.chr ((hlen / 4) lsl 4));
  Bytes.set d (o + 13) (Char.chr flags);
  (* The window field is scaled except on SYN segments (RFC 1323: the
     shift applies only once both sides have offered). *)
  let wfield =
    if flags land th_syn <> 0 then min win max_win
    else min (win asr pcb.rcv_scale) max_win
  in
  Bytes.set_uint16_be d (o + 14) wfield;
  Bytes.set_uint16_be d (o + 16) 0;
  Bytes.set_uint16_be d (o + 18) 0;
  let opt_off = ref (o + 20) in
  if mss_opt then begin
    Bytes.set d !opt_off '\002';
    Bytes.set d (!opt_off + 1) '\004';
    Bytes.set_uint16_be d (!opt_off + 2) pcb.t_maxseg;
    opt_off := !opt_off + 4
  end;
  (match wscale with
  | Some s ->
      (* NOP pad + the 3-byte wscale option, the donor's layout. *)
      Bytes.set d !opt_off '\001';
      Bytes.set d (!opt_off + 1) '\003';
      Bytes.set d (!opt_off + 2) '\003';
      Bytes.set d (!opt_off + 3) (Char.chr (s land 0xff))
  | None -> ());
  let total = Mbuf.m_length m in
  let sum =
    In_cksum.cksum_chain m ~off:0 ~len:total
      ~init:
        (In_cksum.pseudo_header ~src:pcb.laddr ~dst:pcb.raddr ~proto:Ip.proto_tcp ~len:total)
  in
  Bytes.set_uint16_be d (o + 16) (if sum = 0 then 0xffff else sum);
  Cost.charge_cycles Cost.config.bsd_tcp_pkt_cycles;
  bump t (fun s -> s.sndpack <- s.sndpack + 1);
  Ip.output t.ip ~proto:Ip.proto_tcp ~src:pcb.laddr ~dst:pcb.raddr m

and send_rst t ~src ~dst ~sport ~dport ~seq ~ack ~had_ack =
  try send_rst_nomem t ~src ~dst ~sport ~dport ~seq ~ack ~had_ack
  with Memfault.Nomem ->
    bump t (fun s -> s.nomem_drops <- s.nomem_drops + 1);
    tcp_reclaim t

and send_rst_nomem t ~src ~dst ~sport ~dport ~seq ~ack ~had_ack =
  let m = Mbuf.m_gethdr () in
  ignore (Mbuf.m_put m tcp_hlen);
  let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
  let flags, rseq, rack = if had_ack then th_rst, ack, 0 else th_rst lor th_ack, 0, seq in
  Bytes.set_uint16_be d o dport;
  Bytes.set_uint16_be d (o + 2) sport;
  Bytes.set_int32_be d (o + 4) (Int32.of_int (m32 rseq));
  Bytes.set_int32_be d (o + 8) (Int32.of_int (m32 rack));
  Bytes.set d (o + 12) (Char.chr ((tcp_hlen / 4) lsl 4));
  Bytes.set d (o + 13) (Char.chr flags);
  Bytes.set_uint16_be d (o + 14) 0;
  Bytes.set_uint16_be d (o + 16) 0;
  Bytes.set_uint16_be d (o + 18) 0;
  let sum =
    In_cksum.cksum_chain m ~off:0 ~len:tcp_hlen
      ~init:(In_cksum.pseudo_header ~src:dst ~dst:src ~proto:Ip.proto_tcp ~len:tcp_hlen)
  in
  Bytes.set_uint16_be d (o + 16) (if sum = 0 then 0xffff else sum);
  Ip.output t.ip ~proto:Ip.proto_tcp ~src:dst ~dst:src m

(* A SYN-ACK on a listener's behalf with no child pcb behind it — the
   syncache/cookie path.  Crafted raw like send_rst, plus the MSS option.
   No wscale is ever offered here: a cookie cannot carry the negotiation,
   so defended passive connections stay unscaled (the real syncookie
   limitation). *)
and send_synack_raw t ~laddr ~lport ~raddr ~rport ~iss ~irs ~mss =
  try
    let hlen = tcp_hlen + 4 in
    let m = Mbuf.m_gethdr () in
    ignore (Mbuf.m_put m hlen);
    let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
    Bytes.set_uint16_be d o lport;
    Bytes.set_uint16_be d (o + 2) rport;
    Bytes.set_int32_be d (o + 4) (Int32.of_int (m32 iss));
    Bytes.set_int32_be d (o + 8) (Int32.of_int (m32 (irs + 1)));
    Bytes.set d (o + 12) (Char.chr ((hlen / 4) lsl 4));
    Bytes.set d (o + 13) (Char.chr (th_syn lor th_ack));
    Bytes.set_uint16_be d (o + 14) (min default_sb_size max_win);
    Bytes.set_uint16_be d (o + 16) 0;
    Bytes.set_uint16_be d (o + 18) 0;
    Bytes.set d (o + 20) '\002';
    Bytes.set d (o + 21) '\004';
    Bytes.set_uint16_be d (o + 22) mss;
    let sum =
      In_cksum.cksum_chain m ~off:0 ~len:hlen
        ~init:(In_cksum.pseudo_header ~src:laddr ~dst:raddr ~proto:Ip.proto_tcp ~len:hlen)
    in
    Bytes.set_uint16_be d (o + 16) (if sum = 0 then 0xffff else sum);
    Cost.charge_cycles Cost.config.bsd_tcp_pkt_cycles;
    bump t (fun s -> s.sndpack <- s.sndpack + 1);
    Ip.output t.ip ~proto:Ip.proto_tcp ~src:laddr ~dst:raddr m
  with Memfault.Nomem ->
    bump t (fun s -> s.nomem_drops <- s.nomem_drops + 1);
    tcp_reclaim t

(* ------------------------------------------------------------------ *)
(* tcp_output                                                          *)

and tcp_output t pcb =
  let sendable_state =
    match pcb.t_state with
    | Established | Close_wait | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait ->
        true
    | Syn_sent | Syn_received | Listen | Closed -> false
  in
  let off = seq_diff pcb.snd_nxt pcb.snd_una in
  let win = max (min pcb.snd_wnd pcb.snd_cwnd) 0 in
  let pending = pcb.snd_buf.Sockbuf.sb_cc - off in
  let len = if sendable_state && off >= 0 then max 0 (min pending (win - off)) else 0 in
  let len = min len pcb.t_maxseg in
  let all_data_sent = off + len >= pcb.snd_buf.Sockbuf.sb_cc in
  let send_fin =
    sendable_state && pcb.snd_fin_pending && all_data_sent
    && ((not pcb.fin_sent) || seq_lt pcb.snd_nxt pcb.snd_max)
  in
  let window_update =
    sendable_state
    && rcv_window pcb >= 2 * pcb.t_maxseg
    && seq_geq (m32 (pcb.rcv_nxt + rcv_window pcb)) (m32 (pcb.rcv_adv + (2 * pcb.t_maxseg)))
  in
  if (len > 0 && win > off) || send_fin || pcb.ack_now || window_update then begin
    let flags =
      (if sendable_state then th_ack else 0)
      lor (if send_fin then th_fin else 0)
      lor if len > 0 && all_data_sent then th_push else 0
    in
    let payload_ok, payload =
      if len > 0 then
        match Sockbuf.copy_range pcb.snd_buf ~off ~len with
        | p -> true, Some p
        | exception Memfault.Nomem ->
            (* No mbufs to clone the send window into: skip this round
               with the retransmit timer armed as the retry, and shed
               cold state so the retry finds room. *)
            bump t (fun s -> s.nomem_drops <- s.nomem_drops + 1);
            tcp_reclaim t;
            if pcb.tm_rexmt = 0 then set_rexmt t pcb pcb.t_rxtcur;
            false, None
      else true, None
    in
    if payload_ok then begin
      let wnd = rcv_window pcb in
      emit_segment t pcb ~seq:pcb.snd_nxt ~ack:pcb.rcv_nxt ~flags ~win:wnd ~payload
        ~mss_opt:false ~wscale:None;
      if seq_gt (m32 (pcb.rcv_nxt + wnd)) pcb.rcv_adv then pcb.rcv_adv <- m32 (pcb.rcv_nxt + wnd);
      pcb.ack_now <- false;
      set_delack t pcb false;
      if len > 0 || send_fin then begin
        (* Karn's rule: only time a transmission of *new* data.  After a
           retransmit snd_nxt trails snd_max; starting the clock there would
           let an ACK of the original transmission feed update_rtt an
           ambiguous (far too short) sample. *)
        if pcb.t_rtt = 0 && len > 0 && seq_geq pcb.snd_nxt pcb.snd_max then begin
          pcb.t_rtt <- 1;
          pcb.t_rtt_ns <- Machine.now t.machine;
          pcb.t_rtseq <- pcb.snd_nxt
        end;
        pcb.snd_nxt <- m32 (pcb.snd_nxt + len + if send_fin then 1 else 0);
        if send_fin then pcb.fin_sent <- true;
        if seq_gt pcb.snd_nxt pcb.snd_max then pcb.snd_max <- pcb.snd_nxt;
        if pcb.tm_rexmt = 0 then set_rexmt t pcb pcb.t_rxtcur
      end;
      if len > 0 && not all_data_sent then tcp_output t pcb
    end
  end
  else if
    sendable_state && pending > 0 && win <= off && pcb.tm_persist = 0 && pcb.tm_rexmt = 0
  then set_persist t pcb (max 2 pcb.t_rxtcur)

and send_syn t pcb ~with_ack =
  let flags = th_syn lor if with_ack then th_ack else 0 in
  (* Offer wscale on an active SYN whenever the knob is on; on a SYN-ACK
     only if the peer's SYN offered it (RFC 1323 negotiation). *)
  let wscale =
    if Cost.config.tcp_wscale && ((not with_ack) || pcb.peer_wscale >= 0) then
      Some (request_r_scale ())
    else None
  in
  emit_segment t pcb ~seq:pcb.iss ~ack:(if with_ack then pcb.rcv_nxt else 0) ~flags
    ~win:(min (rcv_window pcb) max_win) ~payload:None ~mss_opt:true ~wscale;
  pcb.snd_nxt <- m32 (pcb.iss + 1);
  if seq_gt pcb.snd_nxt pcb.snd_max then pcb.snd_max <- pcb.snd_nxt;
  if pcb.tm_rexmt = 0 then set_rexmt t pcb pcb.t_rxtcur

(* ------------------------------------------------------------------ *)
(* timers                                                              *)

and drop_connection t pcb err =
  pcb.t_state <- Closed;
  pcb.so_error <- Some err;
  bump t (fun s -> s.drops <- s.drops + 1);
  detach t pcb;
  pcb.on_state ();
  pcb.on_readable ();
  pcb.on_writable ()

and rexmt_timeout t pcb =
  pcb.t_rxtshift <- pcb.t_rxtshift + 1;
  if pcb.t_rxtshift > max_rxtshift then drop_connection t pcb Error.Timedout
  else begin
    bump t (fun s -> s.sndrexmitpack <- s.sndrexmitpack + 1);
    pcb.t_rxtcur <- min 128 (max 1 pcb.t_rxtcur * 2);
    let w = max (min pcb.snd_wnd pcb.snd_cwnd / 2) (2 * pcb.t_maxseg) in
    pcb.snd_ssthresh <- w;
    pcb.snd_cwnd <- pcb.t_maxseg;
    pcb.t_rtt <- 0;
    pcb.t_dupacks <- 0;
    pcb.snd_recover <- pcb.snd_max;
    (match pcb.t_state with
    | Syn_sent ->
        pcb.snd_nxt <- pcb.iss;
        send_syn t pcb ~with_ack:false
    | Syn_received ->
        pcb.snd_nxt <- pcb.iss;
        send_syn t pcb ~with_ack:true
    | _ ->
        pcb.snd_nxt <- pcb.snd_una;
        if pcb.fin_sent then pcb.fin_sent <- false;
        pcb.ack_now <- true;
        tcp_output t pcb);
    if pcb.t_state <> Closed && pcb.tm_rexmt = 0 then set_rexmt t pcb pcb.t_rxtcur
  end

and persist_timeout t pcb =
  let off = seq_diff pcb.snd_nxt pcb.snd_una in
  (try
     if pcb.snd_buf.Sockbuf.sb_cc > off then begin
       let payload = Sockbuf.copy_range pcb.snd_buf ~off ~len:1 in
       emit_segment t pcb ~seq:pcb.snd_nxt ~ack:pcb.rcv_nxt ~flags:th_ack ~win:(rcv_window pcb)
         ~payload:(Some payload) ~mss_opt:false ~wscale:None
     end
   with Memfault.Nomem ->
     (* The probe is skipped; the persist timer re-arms below anyway. *)
     bump t (fun s -> s.nomem_drops <- s.nomem_drops + 1);
     tcp_reclaim t);
  set_persist t pcb (min 128 (max 2 (pcb.t_rxtcur * 2)))

(* The timer setters.  Legacy: write the slow-tick counter and let the
   periodic walk age it.  Wheel: the counter becomes a pure armed flag
   (sites everywhere read "= 0" for disarmed) and the deadline is a wheel
   entry on the flow's home CPU — armed only while pending, O(1) to set
   and clear, visited by nobody until due. *)
and set_rexmt t pcb n =
  pcb.tm_rexmt <- n;
  if wheel_on () then
    if n <= 0 then tw_cancel pcb tw_rexmt
    else
      tw_arm t pcb tw_rexmt ~ns:(n * slow_interval_ns) (fun () ->
          if pcb.tm_rexmt > 0 && pcb.t_state <> Closed then begin
            pcb.tm_rexmt <- 0;
            rexmt_timeout t pcb
          end)

and set_persist t pcb n =
  pcb.tm_persist <- n;
  if wheel_on () then
    if n <= 0 then tw_cancel pcb tw_persist
    else
      tw_arm t pcb tw_persist ~ns:(n * slow_interval_ns) (fun () ->
          if pcb.tm_persist > 0 && pcb.t_state <> Closed then begin
            pcb.tm_persist <- 0;
            persist_timeout t pcb
          end)

and set_2msl t pcb n =
  pcb.tm_2msl <- n;
  if wheel_on () then
    if n <= 0 then tw_cancel pcb tw_2msl
    else
      tw_arm t pcb tw_2msl ~ns:(n * slow_interval_ns) (fun () ->
          if pcb.tm_2msl > 0 then begin
            pcb.tm_2msl <- 0;
            if pcb.t_state = Time_wait then begin
              pcb.t_state <- Closed;
              detach t pcb;
              pcb.on_state ()
            end
          end)

and set_delack t pcb on =
  pcb.delack_pending <- on;
  if wheel_on () then
    if not on then tw_cancel pcb tw_delack
    else if pcb.tw_ents.(tw_delack) = None then
      tw_arm t pcb tw_delack ~ns:fast_interval_ns (fun () ->
          if pcb.delack_pending then begin
            pcb.delack_pending <- false;
            pcb.ack_now <- true;
            bump t (fun s -> s.delack <- s.delack + 1);
            tcp_output t pcb
          end)

and slow_tick_pcb t pcb =
  Cost.count_tick_visit ();
  if pcb.t_rtt > 0 then pcb.t_rtt <- pcb.t_rtt + 1;
  let fire_rexmt = pcb.tm_rexmt = 1 in
  let fire_persist = pcb.tm_persist = 1 in
  let fire_2msl = pcb.tm_2msl = 1 in
  if pcb.tm_rexmt > 0 then pcb.tm_rexmt <- pcb.tm_rexmt - 1;
  if pcb.tm_persist > 0 then pcb.tm_persist <- pcb.tm_persist - 1;
  if pcb.tm_2msl > 0 then pcb.tm_2msl <- pcb.tm_2msl - 1;
  if fire_rexmt then rexmt_timeout t pcb;
  if fire_persist && pcb.t_state <> Closed then persist_timeout t pcb;
  if fire_2msl && pcb.t_state = Time_wait then begin
    pcb.t_state <- Closed;
    detach t pcb;
    pcb.on_state ()
  end

(* On a multiprocessor, each tick walks the pcbs one home CPU at a time,
   with the walk's charges (retransmissions, probes, delayed ACKs) landing
   on that CPU's clock — the per-CPU timer shards.  At ncpus=1 the walk is
   exactly the pre-SMP single pass. *)
and tick_by_home t pcbs per_pcb =
  let ncpus = Machine.ncpus t.machine in
  if ncpus <= 1 then List.iter (per_pcb t) pcbs
  else
    for cpu = 0 to ncpus - 1 do
      match List.filter (fun p -> p.home_cpu = cpu) pcbs with
      | [] -> ()
      | mine -> Machine.run_on t.machine ~cpu (fun () -> List.iter (per_pcb t) mine)
    done

and slow_tick t =
  if not (wheel_on ()) then
    tick_by_home t (List.filter (fun p -> p.t_state <> Listen) t.pcbs) slow_tick_pcb

and fast_tick_pcb t pcb =
  Cost.count_tick_visit ();
  if pcb.delack_pending then begin
    pcb.delack_pending <- false;
    pcb.ack_now <- true;
    bump t (fun s -> s.delack <- s.delack + 1);
    tcp_output t pcb
  end

and fast_tick t = if not (wheel_on ()) then tick_by_home t t.pcbs fast_tick_pcb

(* ------------------------------------------------------------------ *)
(* RTT estimation (Jacobson, BSD fixed point)                          *)

(* The Karn-filtered RTT sample, in slow-tick units.  Legacy mode ages
   [t_rtt] in the 500 ms walk; wheel mode has no walk, so the same
   quantity (1 at send time, +1 per elapsed tick interval) is derived
   from the virtual clock. *)
let rtt_sample t pcb =
  if wheel_on () then
    1 + (max 0 (Machine.now t.machine - pcb.t_rtt_ns) / slow_interval_ns)
  else pcb.t_rtt

let update_rtt pcb rtt =
  if pcb.t_srtt <> 0 then begin
    let delta = rtt - 1 - (pcb.t_srtt lsr 3) in
    pcb.t_srtt <- max 1 (pcb.t_srtt + delta);
    let delta = abs delta - (pcb.t_rttvar lsr 2) in
    pcb.t_rttvar <- max 1 (pcb.t_rttvar + delta)
  end
  else begin
    pcb.t_srtt <- rtt lsl 3;
    pcb.t_rttvar <- rtt lsl 1
  end;
  pcb.t_rtt <- 0;
  pcb.t_rxtshift <- 0;
  pcb.t_rxtcur <- max 1 (min 128 ((pcb.t_srtt lsr 3) + pcb.t_rttvar))

(* ------------------------------------------------------------------ *)
(* reassembly                                                          *)

let rec reass_deliver pcb =
  (* Entries the stream has advanced past are dead; shed (and retire) them
     or they block FIN processing forever. *)
  let live, dead =
    List.partition (fun (seq, m) -> seq_gt (m32 (seq + Mbuf.m_length m)) pcb.rcv_nxt) pcb.reass
  in
  List.iter (fun (_, m) -> Mbuf.m_freem m) dead;
  pcb.reass <- live;
  match
    List.find_opt
      (fun (seq, m) ->
        seq_leq seq pcb.rcv_nxt && seq_gt (m32 (seq + Mbuf.m_length m)) pcb.rcv_nxt)
      pcb.reass
  with
  | None -> ()
  | Some ((seq, m) as entry) ->
      pcb.reass <- List.filter (fun e -> e != entry) pcb.reass;
      let skip = seq_diff pcb.rcv_nxt seq in
      if skip > 0 then Mbuf.m_adj m skip;
      let len = Mbuf.m_length m in
      if len > 0 then begin
        Sockbuf.sbappend_chain pcb.rcv_buf m;
        pcb.rcv_nxt <- m32 (pcb.rcv_nxt + len)
      end
      else Mbuf.m_freem m;
      reass_deliver pcb

(* ------------------------------------------------------------------ *)
(* tcp_input                                                           *)

let find_pcb t ~src ~sport ~dport =
  let connected =
    if Cost.config.pcb_hash then begin
      (* tcp_last_inpcb first, then the 4-tuple hash. *)
      match t.last_pcb with
      | Some p
        when p.lport = dport && p.rport = sport && Int32.equal p.raddr src
             && p.t_state <> Listen ->
          Cost.count_pcb_cache_hit ();
          Some p
      | _ -> (
          Cost.count_pcb_cache_miss ();
          match Hashtbl.find_opt t.pcb_hash (src, sport, dport) with
          | Some p when p.t_state <> Listen ->
              t.last_pcb <- Some p;
              Some p
          | _ -> None)
    end
    else
      List.find_opt
        (fun p ->
          p.lport = dport && p.rport = sport && Int32.equal p.raddr src && p.t_state <> Listen)
        t.pcbs
  in
  match connected with
  | Some _ as r -> r
  | None -> List.find_opt (fun p -> p.lport = dport && p.t_state = Listen) t.pcbs

(* Embryonic connections (SYN_RCVD children of [pcb]) count against the
   listen backlog alongside the already-established, not-yet-accepted ones
   on the accept queue — the donor's so_qlen + so_q0len. *)
let listen_q_len t pcb =
  Queue.length pcb.accept_q
  + List.length
      (List.filter
         (fun p ->
           p.t_state = Syn_received
           && match p.listen_parent with Some x -> x == pcb | None -> false)
         t.pcbs)

(* Enter TIME_WAIT, maintaining the oldest-first list; with tw_max set,
   a connection-churn storm reclaims the oldest immediately instead of
   pinning 2xMSL of pcbs. *)
let enter_time_wait t pcb =
  pcb.t_state <- Time_wait;
  set_2msl t pcb (2 * msl_ticks);
  t.tw_list <- t.tw_list @ [ pcb ];
  let cap = Cost.config.tw_max in
  if cap > 0 then begin
    let live = List.filter (fun p -> p.t_state = Time_wait) t.tw_list in
    t.tw_list <- live;
    let excess = List.length live - cap in
    if excess > 0 then
      List.iteri
        (fun i victim ->
          if i < excess then begin
            victim.t_state <- Closed;
            victim.tm_2msl <- 0;
            bump t (fun s -> s.time_wait_reclaimed <- s.time_wait_reclaimed + 1);
            detach t victim;
            victim.on_state ()
          end)
        live
  end

(* Cache (or re-answer) a half-open handshake without creating a child
   pcb.  Over capacity the oldest entry is evicted — not killed: the
   cookie in its SYN-ACK still completes it statelessly. *)
let syncache_add t pcb ~src ~sport ~seq ~mss =
  let mss' = match mss with Some v -> min Cost.config.tcp_mss v | None -> default_mss in
  match
    List.find_opt
      (fun e -> e.sc_rport = sport && Int32.equal e.sc_raddr src)
      pcb.syn_cache
  with
  | Some e ->
      (* Retransmitted SYN: answer again from the cached entry. *)
      send_synack_raw t ~laddr:pcb.laddr ~lport:pcb.lport ~raddr:src ~rport:sport
        ~iss:e.sc_iss ~irs:e.sc_irs ~mss:e.sc_mss
  | None ->
      let iss = syn_cookie t ~raddr:src ~rport:sport ~lport:pcb.lport ~mss:mss' in
      let e = { sc_raddr = src; sc_rport = sport; sc_irs = seq; sc_iss = iss; sc_mss = mss' } in
      bump t (fun s -> s.syncache_added <- s.syncache_added + 1);
      let cache = e :: pcb.syn_cache in
      let cap = max 1 Cost.config.syncache_size in
      let n = List.length cache in
      if n > cap then begin
        bump t (fun s -> s.syncache_evicted <- s.syncache_evicted + (n - cap));
        pcb.syn_cache <- List.filteri (fun i _ -> i < cap) cache
      end
      else pcb.syn_cache <- cache;
      send_synack_raw t ~laddr:pcb.laddr ~lport:pcb.lport ~raddr:src ~rport:sport ~iss
        ~irs:seq ~mss:mss'

let enter_established t pcb =
  match pcb.listen_parent with
  | Some parent when parent.t_state <> Listen ->
      (* The listener closed while our handshake completed: nobody will
         ever accept us, so reset rather than leak an orphaned pcb. *)
      emit_segment t pcb ~seq:pcb.snd_nxt ~ack:pcb.rcv_nxt ~flags:(th_rst lor th_ack)
        ~win:0 ~payload:None ~mss_opt:false ~wscale:None;
      pcb.t_state <- Closed;
      bump t (fun s -> s.drops <- s.drops + 1);
      detach t pcb
  | parent_opt ->
      pcb.t_state <- Established;
      pcb.snd_cwnd <- 2 * pcb.t_maxseg;
      (match parent_opt with
      | Some parent ->
          bump t (fun s -> s.accepts <- s.accepts + 1);
          (* Park on the listener's queue: this runs on the child's home
             CPU while accepts drain from CPU 0, so it is the one hot-path-
             adjacent structure that genuinely needs the lock. *)
          with_accept_lock t (fun () -> Queue.add pcb parent.accept_q);
          parent.on_readable ()
      | None -> bump t (fun s -> s.connects <- s.connects + 1));
      pcb.on_state ();
      pcb.on_writable ()

(* Returns true if our FIN was acknowledged by [ack]. *)
let process_ack pcb ack =
  let acked = seq_diff ack pcb.snd_una in
  if acked <= 0 then false
  else begin
    pcb.t_dupacks <- 0;
    if pcb.t_rtt > 0 && seq_gt ack pcb.t_rtseq then
      update_rtt pcb (rtt_sample pcb.t_stack pcb);
    if pcb.snd_cwnd < pcb.snd_ssthresh then pcb.snd_cwnd <- pcb.snd_cwnd + pcb.t_maxseg
    else
      pcb.snd_cwnd <-
        min
          (max_win lsl max 2 pcb.snd_scale)
          (pcb.snd_cwnd + max 1 (pcb.t_maxseg * pcb.t_maxseg / pcb.snd_cwnd));
    let data_acked = min acked pcb.snd_buf.Sockbuf.sb_cc in
    let fin_acked = pcb.fin_sent && acked > data_acked in
    if data_acked > 0 then Sockbuf.sbdrop pcb.snd_buf data_acked;
    pcb.snd_una <- ack;
    if seq_lt pcb.snd_nxt pcb.snd_una then pcb.snd_nxt <- pcb.snd_una;
    set_rexmt pcb.t_stack pcb
      (if seq_geq pcb.snd_una pcb.snd_max then 0 else pcb.t_rxtcur);
    pcb.on_writable ();
    fin_acked
  end

let fast_retransmit t pcb =
  bump t (fun s -> s.fastrexmit <- s.fastrexmit + 1);
  let w = max (min pcb.snd_wnd pcb.snd_cwnd / 2) (2 * pcb.t_maxseg) in
  pcb.snd_ssthresh <- w;
  pcb.snd_recover <- pcb.snd_max;
  set_rexmt t pcb 0;
  pcb.t_rtt <- 0;
  let onxt = pcb.snd_nxt in
  pcb.snd_nxt <- pcb.snd_una;
  pcb.snd_cwnd <- pcb.t_maxseg;
  tcp_output t pcb;
  pcb.snd_cwnd <- w + (3 * pcb.t_maxseg);
  if seq_gt onxt pcb.snd_nxt then pcb.snd_nxt <- onxt

(* NewReno partial ACK: the first hole is plugged but [ack] stops short of
   [snd_recover], so another segment from the same window is lost too.
   Retransmit the next one immediately, deflate cwnd by the amount acked,
   and stay in recovery — do not sample RTT (Karn: the range includes a
   retransmission) and do not reset the dup-ACK count. *)
let newreno_partial_ack t pcb ack =
  let acked = seq_diff ack pcb.snd_una in
  let onxt = pcb.snd_nxt in
  let ocwnd = pcb.snd_cwnd in
  set_rexmt t pcb 0;
  pcb.t_rtt <- 0;
  pcb.snd_nxt <- ack;
  pcb.snd_cwnd <- pcb.t_maxseg + acked;
  tcp_output t pcb;
  if seq_gt onxt pcb.snd_nxt then pcb.snd_nxt <- onxt;
  pcb.snd_cwnd <- max pcb.t_maxseg (ocwnd - acked + pcb.t_maxseg);
  let data_acked = min acked pcb.snd_buf.Sockbuf.sb_cc in
  if data_acked > 0 then Sockbuf.sbdrop pcb.snd_buf data_acked;
  pcb.snd_una <- ack;
  if seq_lt pcb.snd_nxt pcb.snd_una then pcb.snd_nxt <- pcb.snd_una;
  if pcb.tm_rexmt = 0 then set_rexmt t pcb pcb.t_rxtcur;
  pcb.on_writable ()

(* Receive-buffer autotuning (Cost.config.tcp_autotune).  Arrivals come in
   clumps of at most one window, separated by RTT-scale gaps when the flow
   is window-limited; a clump that covered most of the buffer means our
   advertised window was the limiter, so double it (capped).  A
   path-limited flow arrives smoothly — no gaps, no growth.  The 500 ms
   slow-tick srtt is far too coarse to size buffers at millisecond RTTs,
   so this stack infers the RTT structurally instead. *)
let autotune_gap_ns = 2_000_000

let autotune_rcv t pcb ~dlen =
  if Cost.config.tcp_autotune then begin
    let now = Machine.now t.machine in
    if pcb.rxclump_ts > 0 && now - pcb.rxclump_ts > autotune_gap_ns then begin
      if pcb.rxclump_bytes * 2 >= pcb.rcv_buf.Sockbuf.sb_hiwat then begin
        let cap = Cost.config.tcp_sockbuf_max in
        if pcb.rcv_buf.Sockbuf.sb_hiwat < cap then
          pcb.rcv_buf.Sockbuf.sb_hiwat <- min cap (2 * pcb.rcv_buf.Sockbuf.sb_hiwat)
      end;
      pcb.rxclump_bytes <- 0
    end;
    pcb.rxclump_ts <- now;
    pcb.rxclump_bytes <- pcb.rxclump_bytes + dlen
  end

(* Returns true when ownership of [data] was taken (appended to the receive
   buffer or parked in the reassembly queue); the caller frees it otherwise. *)
let rec segment_arrives t pcb ~src ~sport ~seq ~ack ~flags ~win ~mss ~wscale ~data =
  let dlen = Mbuf.m_length data in
  match pcb.t_state with
  | Closed -> false
  | Listen ->
      if flags land th_rst <> 0 then false
      else if flags land th_ack <> 0 then begin
        if Cost.config.syn_defense && flags land th_syn = 0 then
          (* The third packet of a defended handshake: no child pcb exists
             yet — complete from the syncache, or from the cookie. *)
          syncache_expand t pcb ~src ~sport ~seq ~ack ~flags ~win ~data
        else begin
          if err_allowed t then
            send_rst t ~src ~dst:pcb.laddr ~sport ~dport:pcb.lport ~seq ~ack ~had_ack:true;
          false
        end
      end
      else if flags land th_syn <> 0 then begin
        (if Cost.config.syn_defense then
           (* Embryonic state lives in the syncache, off the backlog. *)
           syncache_add t pcb ~src ~sport ~seq ~mss
         else if listen_q_len t pcb >= max 1 pcb.backlog then
          (* Queue overflow: drop the SYN on the floor (the peer will
             retransmit it) and count the drop. *)
          bump t (fun s -> s.listen_overflow <- s.listen_overflow + 1)
        else begin
          let conn = create_pcb t in
          conn.laddr <- pcb.laddr;
          conn.lport <- pcb.lport;
          conn.raddr <- src;
          conn.rport <- sport;
          conn.listen_parent <- Some pcb;
          (match mss with Some v -> conn.t_maxseg <- min Cost.config.tcp_mss v | None -> ());
          (match wscale with Some s -> setup_scaling conn ~peer:s | None -> ());
          conn.irs <- seq;
          conn.rcv_nxt <- m32 (seq + 1);
          conn.rcv_adv <- m32 (conn.rcv_nxt + rcv_window conn);
          conn.iss <- next_iss t;
          conn.snd_una <- conn.iss;
          conn.snd_nxt <- conn.iss;
          conn.snd_max <- conn.iss;
          conn.snd_wnd <- win;
          conn.t_state <- Syn_received;
          register t conn;
          ensure_timers t;
          send_syn t conn ~with_ack:true
        end);
        false
      end
      else false
  | Syn_sent ->
      let ack_ok =
        flags land th_ack <> 0 && seq_gt ack pcb.iss && seq_leq ack pcb.snd_max
      in
      (if flags land th_ack <> 0 && not ack_ok then begin
        if flags land th_rst = 0 then
          send_rst t ~src ~dst:pcb.laddr ~sport ~dport:pcb.lport ~seq ~ack ~had_ack:true
      end
      else if flags land th_rst <> 0 then begin
        if ack_ok then drop_connection t pcb Error.Connrefused
      end
      else if flags land th_syn <> 0 then begin
        (match mss with Some v -> pcb.t_maxseg <- min Cost.config.tcp_mss v | None -> ());
        (match wscale with Some s -> setup_scaling pcb ~peer:s | None -> ());
        pcb.irs <- seq;
        pcb.rcv_nxt <- m32 (seq + 1);
        pcb.rcv_adv <- m32 (pcb.rcv_nxt + rcv_window pcb);
        pcb.snd_wnd <- win;
        pcb.snd_wl1 <- seq;
        pcb.snd_wl2 <- ack;
        if ack_ok then begin
          pcb.snd_una <- ack;
          set_rexmt t pcb 0;
          pcb.t_rxtshift <- 0;
          enter_established t pcb;
          pcb.ack_now <- true;
          tcp_output t pcb
        end
        else begin
          (* Simultaneous open. *)
          pcb.t_state <- Syn_received;
          pcb.snd_nxt <- pcb.iss;
          send_syn t pcb ~with_ack:true
        end
      end);
      false
  | Syn_received | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack
  | Time_wait ->
      common_input t pcb ~src ~sport ~seq ~ack ~flags ~win ~data ~dlen

(* Returns true when [data] was stored (receive buffer / reassembly queue). *)
and common_input t pcb ~src ~sport ~seq ~ack ~flags ~win ~data ~dlen =
  ignore src;
  ignore sport;
  let stored = ref false in
  (if flags land th_rst <> 0 then begin
    if seq_geq seq pcb.rcv_nxt && seq_lt seq (m32 (pcb.rcv_nxt + max 1 (rcv_window pcb)))
    then drop_connection t pcb Error.Connreset
  end
  else begin
    (* Trim to the receive window. *)
    let seq = ref seq and dlen = ref dlen and fin = ref (flags land th_fin <> 0) in
    let dup = ref false in
    let todrop = seq_diff pcb.rcv_nxt !seq in
    if todrop > 0 then begin
      if todrop >= !dlen then begin
        (* Entirely duplicate data (or a pure old segment). *)
        if !dlen > 0 then begin
          bump t (fun s -> s.rcvdup <- s.rcvdup + 1);
          dup := true;
          pcb.ack_now <- true
        end;
        (* A retransmitted FIN we already consumed. *)
        if !fin && todrop > !dlen then fin := false;
        Mbuf.m_adj data !dlen;
        seq := m32 (!seq + !dlen);
        dlen := 0
      end
      else begin
        Mbuf.m_adj data todrop;
        seq := m32 (!seq + todrop);
        dlen := !dlen - todrop
      end
    end;
    let wnd = rcv_window pcb in
    let past = seq_diff (m32 (!seq + !dlen)) (m32 (pcb.rcv_nxt + wnd)) in
    if past > 0 && !dlen > 0 then begin
      bump t (fun s -> s.rcvafterwin <- s.rcvafterwin + 1);
      if past >= !dlen then begin
        (* Entirely beyond the window. *)
        pcb.ack_now <- true;
        Mbuf.m_adj data !dlen;
        dlen := 0;
        fin := false
      end
      else begin
        Mbuf.m_adj data (- past);
        dlen := !dlen - past;
        fin := false
      end
    end;
    (* ACK processing. *)
    let proceed = ref true in
    if flags land th_ack = 0 then proceed := false
    else begin
      (match pcb.t_state with
      | Syn_received ->
          if seq_gt ack pcb.snd_una && seq_leq ack pcb.snd_max then begin
            pcb.snd_una <- ack;
            set_rexmt t pcb 0;
            pcb.t_rxtshift <- 0;
            pcb.snd_wnd <- win;
            pcb.snd_wl1 <- !seq;
            pcb.snd_wl2 <- ack;
            enter_established t pcb
          end
          else begin
            send_rst t ~src ~dst:pcb.laddr ~sport ~dport:pcb.lport ~seq:!seq ~ack
              ~had_ack:true;
            proceed := false
          end
      | _ -> ());
      if !proceed && pcb.t_state <> Syn_received then begin
        if seq_leq ack pcb.snd_una then begin
          (* Old or duplicate ACK. *)
          if
            !dlen = 0 && win = pcb.snd_wnd
            && seq_lt pcb.snd_una pcb.snd_max
          then begin
            pcb.t_dupacks <- pcb.t_dupacks + 1;
            if pcb.t_dupacks = 3 then fast_retransmit t pcb
            else if pcb.t_dupacks > 3 then begin
              pcb.snd_cwnd <- pcb.snd_cwnd + pcb.t_maxseg;
              tcp_output t pcb
            end
          end
          else if !dlen = 0 then pcb.t_dupacks <- 0
        end
        else if seq_gt ack pcb.snd_max then pcb.ack_now <- true
        else if pcb.t_dupacks >= 3 && seq_lt ack pcb.snd_recover then
          newreno_partial_ack t pcb ack
        else begin
          (* A full ACK past snd_recover leaves fast recovery: deflate. *)
          if pcb.t_dupacks >= 3 then pcb.snd_cwnd <- min pcb.snd_cwnd pcb.snd_ssthresh;
          let fin_acked = process_ack pcb ack in
          match pcb.t_state with
          | Fin_wait_1 ->
              if fin_acked then begin
                pcb.t_state <- Fin_wait_2;
                pcb.on_state ()
              end
          | Closing ->
              if fin_acked then begin
                enter_time_wait t pcb;
                pcb.on_state ()
              end
          | Last_ack ->
              if fin_acked then begin
                pcb.t_state <- Closed;
                detach t pcb;
                pcb.on_state ()
              end
          | _ -> ()
        end
      end
    end;
    if !proceed && pcb.t_state <> Closed then begin
      (* Window update (donor's wl1/wl2 rules). *)
      if
        flags land th_ack <> 0
        && (seq_lt pcb.snd_wl1 !seq
           || (pcb.snd_wl1 = !seq && (seq_lt pcb.snd_wl2 ack || (pcb.snd_wl2 = ack && win > pcb.snd_wnd))))
      then begin
        pcb.snd_wnd <- win;
        pcb.snd_wl1 <- !seq;
        pcb.snd_wl2 <- ack;
        if win > 0 then set_persist t pcb 0;
        pcb.on_writable ()
      end;
      (* Data. *)
      if !dlen > 0 then begin
        if !seq = pcb.rcv_nxt && pcb.reass = [] then begin
          (* In order: append the arriving chain, zero-copy. *)
          autotune_rcv t pcb ~dlen:!dlen;
          Sockbuf.sbappend_chain pcb.rcv_buf data;
          stored := true;
          pcb.rcv_nxt <- m32 (pcb.rcv_nxt + !dlen);
          (* Every-other-segment ACK: delay the first, force on the
             second. *)
          if pcb.delack_pending then begin
            set_delack t pcb false;
            pcb.ack_now <- true
          end
          else set_delack t pcb true;
          pcb.on_readable ()
        end
        else begin
          bump t (fun s -> s.rcvoo <- s.rcvoo + 1);
          pcb.reass <- (!seq, data) :: pcb.reass;
          stored := true;
          let before = pcb.rcv_buf.Sockbuf.sb_cc in
          reass_deliver pcb;
          (* Wake the reader if the splice made bytes available, even when
             later out-of-order segments are still queued. *)
          if pcb.rcv_buf.Sockbuf.sb_cc > before then pcb.on_readable ();
          pcb.ack_now <- true
        end
      end
      else if !dup then pcb.ack_now <- true;
      (* FIN. *)
      if !fin && m32 (!seq + !dlen) = pcb.rcv_nxt && pcb.reass = [] then begin
        if not pcb.rcv_fin then begin
          pcb.rcv_fin <- true;
          pcb.rcv_nxt <- m32 (pcb.rcv_nxt + 1);
          pcb.ack_now <- true;
          pcb.on_readable ();
          match pcb.t_state with
          | Syn_received | Established ->
              pcb.t_state <- Close_wait;
              pcb.on_state ()
          | Fin_wait_1 ->
              (* Our FIN not yet acked: simultaneous close. *)
              pcb.t_state <- Closing;
              pcb.on_state ()
          | Fin_wait_2 ->
              enter_time_wait t pcb;
              pcb.on_state ()
          | Time_wait -> set_2msl t pcb (2 * msl_ticks)
          | Close_wait | Closing | Last_ack | Closed | Listen | Syn_sent -> ()
        end
        else pcb.ack_now <- true
      end;
      if pcb.ack_now || pcb.t_state <> Closed then tcp_output t pcb
    end
  end);
  !stored

(* The completing ACK of a defended handshake, arriving at the listener
   because no child pcb exists yet.  Restore the handshake from the
   syncache entry, or — if it was evicted — from the cookie the ACK
   echoes, then build the child and run this very segment through the
   normal machine so any data or FIN it carries is processed.  Returns
   true when [data] was stored. *)
and syncache_expand t pcb ~src ~sport ~seq ~ack ~flags ~win ~data =
  let entry =
    List.find_opt
      (fun e -> e.sc_rport = sport && Int32.equal e.sc_raddr src)
      pcb.syn_cache
  in
  let params =
    match entry with
    | Some e when ack = m32 (e.sc_iss + 1) && seq = m32 (e.sc_irs + 1) ->
        pcb.syn_cache <- List.filter (fun x -> x != e) pcb.syn_cache;
        bump t (fun s -> s.syncache_completed <- s.syncache_completed + 1);
        Some (e.sc_iss, e.sc_irs, e.sc_mss)
    | Some _ -> None (* cached, but the numbers don't line up: bogus *)
    | None -> (
        match check_cookie t ~raddr:src ~rport:sport ~lport:pcb.lport ~iss:(m32 (ack - 1)) with
        | Some mss ->
            bump t (fun s -> s.syncookies_validated <- s.syncookies_validated + 1);
            Some (m32 (ack - 1), m32 (seq - 1), mss)
        | None -> None)
  in
  match params with
  | None ->
      bump t (fun s -> s.syncookies_rejected <- s.syncookies_rejected + 1);
      if err_allowed t then
        send_rst t ~src ~dst:pcb.laddr ~sport ~dport:pcb.lport ~seq ~ack ~had_ack:true;
      false
  | Some (iss, irs, mss) ->
      if Queue.length pcb.accept_q >= max 1 pcb.backlog then begin
        (* Accept queue full: drop the ACK, not the handshake — the peer
           retransmits, and the cookie completes it once the queue
           drains. *)
        bump t (fun s -> s.listen_overflow <- s.listen_overflow + 1);
        false
      end
      else begin
        let conn = create_pcb t in
        conn.laddr <- pcb.laddr;
        conn.lport <- pcb.lport;
        conn.raddr <- src;
        conn.rport <- sport;
        conn.listen_parent <- Some pcb;
        conn.t_maxseg <- min Cost.config.tcp_mss mss;
        conn.irs <- irs;
        conn.rcv_nxt <- m32 (irs + 1);
        conn.rcv_adv <- m32 (conn.rcv_nxt + rcv_window conn);
        conn.iss <- iss;
        conn.snd_una <- iss;
        conn.snd_nxt <- m32 (iss + 1);
        conn.snd_max <- m32 (iss + 1);
        conn.t_state <- Syn_received;
        register t conn;
        ensure_timers t;
        segment_arrives t conn ~src ~sport ~seq ~ack ~flags ~win ~mss:None ~wscale:None ~data
      end

(* ------------------------------------------------------------------ *)
(* header prediction (Cost.config.tcp_fastpath)                        *)

(* The Van Jacobson one-compare test, broadened just enough for this
   testbed's traffic: an established-state segment with no SYN/FIN/RST,
   exactly in order, nothing queued for reassembly, nothing retransmitted
   in flight, an ACK inside [snd_una, snd_max], and either new data or a
   forward ACK (a pure duplicate/probe falls through so the dup-ack
   machinery sees it).  Everything admitted here is handled by
   [fastpath_input] with byte-for-byte the same protocol actions the
   general path would take — only the cycles charged differ. *)
let fastpath_pred pcb ~seq ~ack ~flags ~dlen =
  pcb.t_state = Established
  && flags land (th_syn lor th_fin lor th_rst) = 0
  && flags land th_ack <> 0
  && seq = pcb.rcv_nxt
  && pcb.reass = []
  && pcb.snd_nxt = pcb.snd_max
  && pcb.t_dupacks < 3
  && seq_geq ack pcb.snd_una
  && seq_leq ack pcb.snd_max
  && (seq_gt ack pcb.snd_una || dlen > 0)
  && dlen <= rcv_window pcb

(* Returns true when [data] was appended to the receive buffer.  Mirrors
   [common_input] restricted to the predicted case: ACK advance, the
   donor's wl1/wl2 window-update rule, in-order append with the
   every-other-segment delayed ACK, then tcp_output. *)
let fastpath_input t pcb ~seq ~ack ~win ~data ~dlen =
  if seq_gt ack pcb.snd_una then ignore (process_ack pcb ack);
  if
    seq_lt pcb.snd_wl1 seq
    || (pcb.snd_wl1 = seq
       && (seq_lt pcb.snd_wl2 ack || (pcb.snd_wl2 = ack && win > pcb.snd_wnd)))
  then begin
    pcb.snd_wnd <- win;
    pcb.snd_wl1 <- seq;
    pcb.snd_wl2 <- ack;
    if win > 0 then set_persist t pcb 0;
    pcb.on_writable ()
  end;
  let stored =
    if dlen > 0 then begin
      autotune_rcv t pcb ~dlen;
      Sockbuf.sbappend_chain pcb.rcv_buf data;
      pcb.rcv_nxt <- m32 (pcb.rcv_nxt + dlen);
      if pcb.delack_pending then begin
        set_delack t pcb false;
        pcb.ack_now <- true
      end
      else set_delack t pcb true;
      pcb.on_readable ();
      true
    end
    else false
  in
  tcp_output t pcb;
  stored

let rec input t ~src ~dst m =
  try input_segment t ~src ~dst m
  with Memfault.Nomem ->
    (* The only unguarded allocation on the input path is the header
       pullup, which fails before the chain is touched: drop the segment
       whole, as if the wire had lost it. *)
    bump t (fun s -> s.nomem_drops <- s.nomem_drops + 1);
    tcp_reclaim t;
    Mbuf.m_freem m

and input_segment t ~src ~dst m =
  let fast = Cost.config.tcp_fastpath in
  Cost.charge_cycles
    (if fast then Cost.config.tcp_fastpath_cycles else Cost.config.bsd_tcp_pkt_cycles);
  (* A segment that misses the prediction pays the balance of the general
     per-segment protocol cost, so the flags-off charge total is preserved
     exactly for every slow-path segment. *)
  let slowpath () =
    if fast then
      Cost.charge_cycles
        (max 0 (Cost.config.bsd_tcp_pkt_cycles - Cost.config.tcp_fastpath_cycles))
  in
  bump t (fun s -> s.rcvpack <- s.rcvpack + 1);
  let total = Mbuf.m_length m in
  if total < tcp_hlen then begin
    slowpath ();
    bump t (fun s -> s.rcvshort <- s.rcvshort + 1);
    Mbuf.m_freem m
  end
  else begin
    let sum =
      In_cksum.cksum_chain m ~off:0 ~len:total
        ~init:(In_cksum.pseudo_header ~src ~dst ~proto:Ip.proto_tcp ~len:total)
    in
    if sum <> 0 then begin
      slowpath ();
      bump t (fun s -> s.rcvbadsum <- s.rcvbadsum + 1);
      Mbuf.m_freem m
    end
    else begin
      let m = Mbuf.m_pullup m (min total 64) in
      let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
      let sport = Bytes.get_uint16_be d o in
      let dport = Bytes.get_uint16_be d (o + 2) in
      let seq = Int32.to_int (Bytes.get_int32_be d (o + 4)) land 0xffffffff in
      let ack = Int32.to_int (Bytes.get_int32_be d (o + 8)) land 0xffffffff in
      let hlen = (Char.code (Bytes.get d (o + 12)) lsr 4) * 4 in
      let flags = Char.code (Bytes.get d (o + 13)) in
      let win = Bytes.get_uint16_be d (o + 14) in
      let mss_opt = ref None in
      let wscale_opt = ref None in
      let rec scan_opts p =
        if p < hlen then begin
          let kind = Char.code (Bytes.get d (o + p)) in
          if kind = 0 then ()
          else if kind = 1 then scan_opts (p + 1)
          else begin
            let olen = if p + 1 < hlen then Char.code (Bytes.get d (o + p + 1)) else 2 in
            if kind = 2 && olen = 4 then mss_opt := Some (Bytes.get_uint16_be d (o + p + 2));
            if kind = 3 && olen = 3 then
              wscale_opt := Some (Char.code (Bytes.get d (o + p + 2)));
            scan_opts (p + max 2 olen)
          end
        end
      in
      scan_opts tcp_hlen;
      Mbuf.m_adj m hlen;
      match find_pcb t ~src ~sport ~dport with
      | None ->
          slowpath ();
          if flags land th_rst = 0 && err_allowed t then begin
            (* SYN and FIN occupy sequence space: the RST must acknowledge
               them or the peer will ignore it. *)
            let seg_len =
              Mbuf.m_length m
              + (if flags land th_syn <> 0 then 1 else 0)
              + if flags land th_fin <> 0 then 1 else 0
            in
            send_rst t ~src ~dst ~sport ~dport ~seq:(m32 (seq + seg_len)) ~ack
              ~had_ack:(flags land th_ack <> 0)
          end;
          Mbuf.m_freem m
      | Some pcb ->
          let dlen = Mbuf.m_length m in
          (* Past the handshake the 16-bit window field arrives shifted by
             the peer's negotiated scale; SYN windows are never scaled. *)
          let win = if flags land th_syn = 0 then win lsl pcb.snd_scale else win in
          if fast && fastpath_pred pcb ~seq ~ack ~flags ~dlen then begin
            Cost.count_fastpath_hit ();
            if dlen > 0 then bump t (fun s -> s.preddat <- s.preddat + 1)
            else bump t (fun s -> s.predack <- s.predack + 1);
            if not (fastpath_input t pcb ~seq ~ack ~win ~data:m ~dlen) then Mbuf.m_freem m
          end
          else begin
            slowpath ();
            (* Only established-state, no-control-flag segments count as
               prediction fallbacks; handshake and teardown segments are
               inherently general-path. *)
            if
              fast && pcb.t_state = Established
              && flags land (th_syn lor th_fin lor th_rst) = 0
            then begin
              Cost.count_fastpath_fallback ();
              bump t (fun s -> s.predfallback <- s.predfallback + 1)
            end;
            if
              not
                (segment_arrives t pcb ~src ~sport ~seq ~ack ~flags ~win ~mss:!mss_opt
                   ~wscale:!wscale_opt ~data:m)
            then Mbuf.m_freem m
          end
    end
  end

(* ------------------------------------------------------------------ *)
(* user requests (what the socket layer calls)                         *)

let make_stats () =
  { sndpack = 0; sndrexmitpack = 0; rcvpack = 0; rcvdup = 0; rcvoo = 0;
    rcvbadsum = 0; rcvshort = 0; rcvafterwin = 0; delack = 0; fastrexmit = 0;
    drops = 0; accepts = 0; connects = 0; listen_overflow = 0;
    predack = 0; preddat = 0; predfallback = 0;
    syncache_added = 0; syncache_evicted = 0; syncache_completed = 0;
    syncookies_validated = 0; syncookies_rejected = 0;
    time_wait_reclaimed = 0; nomem_drops = 0; rst_ratelimited = 0 }

let attach ip machine =
  let t =
    { ip; machine; pcbs = []; pcb_hash = Hashtbl.create 64; last_pcb = None;
      next_ephemeral = 1024; iss_source = 1;
      ticking = false; tw_list = []; cookie_secret = 0x6b8b4567;
      err_tokens = float_of_int Cost.config.icmp_ratelimit; err_tok_ts = 0;
      stats = make_stats ();
      stats_shards = Array.init (Machine.ncpus machine) (fun _ -> make_stats ());
      accept_lock = Smp.spinlock ~name:"tcp-accept" () }
  in
  Ip.set_proto ip ~proto:Ip.proto_tcp (fun ~src ~dst m -> input t ~src ~dst m);
  t

let usr_bind t pcb ~port =
  if List.exists (fun x -> x != pcb && x.lport = port && x.t_state = Listen) t.pcbs then
    Result.Error Error.Addrinuse
  else begin
    pcb.lport <- port;
    pcb.laddr <- t.ip.Ip.ifp.Netif.if_addr;
    Ok ()
  end

let usr_listen t pcb ~backlog =
  if pcb.lport = 0 then pcb.lport <- alloc_port t;
  if Int32.equal pcb.laddr 0l then pcb.laddr <- t.ip.Ip.ifp.Netif.if_addr;
  pcb.backlog <- max 1 backlog;
  pcb.t_state <- Listen;
  register t pcb;
  ensure_timers t;
  Ok ()

let usr_connect t pcb ~dst ~dport =
  if pcb.t_state <> Closed then Result.Error Error.Isconn
  else begin
    pcb.laddr <- t.ip.Ip.ifp.Netif.if_addr;
    if pcb.lport = 0 then pcb.lport <- alloc_port t;
    pcb.raddr <- dst;
    pcb.rport <- dport;
    pcb.iss <- next_iss t;
    pcb.snd_una <- pcb.iss;
    pcb.snd_nxt <- pcb.iss;
    pcb.snd_max <- pcb.iss;
    pcb.t_state <- Syn_sent;
    register t pcb;
    ensure_timers t;
    send_syn t pcb ~with_ack:false;
    Ok ()
  end

(* Append to the send buffer (as much as fits) and push; returns bytes
   accepted. *)
let usr_send t pcb ~src ~src_pos ~len =
  Cost.charge_cycles Cost.config.socket_op_cycles;
  match pcb.t_state with
  | Established | Close_wait ->
      (* Send-buffer autotuning: the network (peer window x cwnd) can carry
         more than we can buffer, so the buffer is the limiter — double it. *)
      if Cost.config.tcp_autotune then begin
        let cap = Cost.config.tcp_sockbuf_max in
        let net = min pcb.snd_wnd pcb.snd_cwnd in
        if 2 * net >= pcb.snd_buf.Sockbuf.sb_hiwat && pcb.snd_buf.Sockbuf.sb_hiwat < cap then
          pcb.snd_buf.Sockbuf.sb_hiwat <- min cap (2 * pcb.snd_buf.Sockbuf.sb_hiwat)
      end;
      let n = min len (Sockbuf.space pcb.snd_buf) in
      if n > 0 then begin
        let taken = Sockbuf.sbappend_bytes_nomem pcb.snd_buf ~src ~src_pos ~len:n in
        if taken < n then begin
          (* ENOBUFS backpressure: shed cold state, and kick the writer
             again shortly — with nothing in flight no ACK would ever
             arrive to unblock a sleeping sender. *)
          bump t (fun s -> s.nomem_drops <- s.nomem_drops + 1);
          tcp_reclaim t;
          ignore (Machine.after t.machine 10_000_000 (fun () -> pcb.on_writable ()))
        end;
        if taken > 0 then tcp_output t pcb;
        Ok taken
      end
      else Ok n
  | Closed | Listen -> Result.Error Error.Notconn
  | Syn_sent | Syn_received -> Ok 0 (* not yet connected: caller blocks *)
  | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait -> Result.Error Error.Pipe

(* Scatter append for the sendfile path: wrap the mapped fragments from
   stream offset [pos] as loaned ext mbufs — no data copy — and append as
   much as the send buffer accepts.  Each wrapped mbuf takes its own hold
   on the backing cache block and releases it when the last alias of the
   storage is freed, i.e. once the bytes are acked and dropped from the
   socket buffer (retransmit aliases made by m_copym share the reference,
   so a block stays pinned across recovery).  Returns bytes accepted. *)
let usr_sendv t pcb ~frags ~pos =
  Cost.charge_cycles Cost.config.socket_op_cycles;
  match pcb.t_state with
  | Established | Close_wait ->
      if Cost.config.tcp_autotune then begin
        let cap = Cost.config.tcp_sockbuf_max in
        let net = min pcb.snd_wnd pcb.snd_cwnd in
        if 2 * net >= pcb.snd_buf.Sockbuf.sb_hiwat && pcb.snd_buf.Sockbuf.sb_hiwat < cap then
          pcb.snd_buf.Sockbuf.sb_hiwat <- min cap (2 * pcb.snd_buf.Sockbuf.sb_hiwat)
      end;
      let total = List.fold_left (fun a f -> a + f.Io_if.fr_len) 0 frags in
      let n = min (max 0 (total - pos)) (Sockbuf.space pcb.snd_buf) in
      if n > 0 then begin
        let rec build fs skip need acc =
          if need = 0 then List.rev acc
          else
            match fs with
            | [] -> List.rev acc
            | f :: rest ->
                if skip >= f.Io_if.fr_len then build rest (skip - f.Io_if.fr_len) need acc
                else begin
                  let take = min need (f.Io_if.fr_len - skip) in
                  f.Io_if.fr_hold ();
                  let m =
                    Mbuf.m_ext_wrap_free f.Io_if.fr_data ~off:(f.Io_if.fr_off + skip)
                      ~len:take ~on_free:f.Io_if.fr_release
                  in
                  build rest 0 (need - take) (m :: acc)
                end
        in
        (match build frags pos n [] with
        | [] -> ()
        | first :: rest ->
            ignore
              (List.fold_left
                 (fun prev m ->
                   prev.Mbuf.m_next <- Some m;
                   m)
                 first rest);
            first.Mbuf.m_pkthdr_len <- Mbuf.m_length first;
            Sockbuf.sbappend_chain pcb.snd_buf first);
        tcp_output t pcb;
        Ok n
      end
      else Ok 0
  | Closed | Listen -> Result.Error Error.Notconn
  | Syn_sent | Syn_received -> Ok 0 (* not yet connected: caller blocks *)
  | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait -> Result.Error Error.Pipe

(* Copy out of the receive buffer; 0 = nothing available (caller blocks
   unless the peer has FINed). *)
let usr_recv t pcb ~dst ~dst_pos ~len =
  Cost.charge_cycles Cost.config.socket_op_cycles;
  let avail = pcb.rcv_buf.Sockbuf.sb_cc in
  let n = min len avail in
  if n > 0 then begin
    Sockbuf.copy_out pcb.rcv_buf ~off:0 ~len:n ~dst ~dst_pos;
    Sockbuf.sbdrop pcb.rcv_buf n;
    (* The window just opened: maybe send an update. *)
    tcp_output t pcb
  end;
  n

let usr_abort t pcb =
  (match pcb.t_state with
  | Established | Syn_received | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing | Last_ack ->
      emit_segment t pcb ~seq:pcb.snd_nxt ~ack:pcb.rcv_nxt ~flags:(th_rst lor th_ack)
        ~win:0 ~payload:None ~mss_opt:false ~wscale:None
  | Closed | Listen | Syn_sent | Time_wait -> ());
  pcb.t_state <- Closed;
  detach t pcb;
  pcb.on_state ()

let usr_close t pcb =
  match pcb.t_state with
  | Closed -> ()
  | Syn_sent ->
      pcb.t_state <- Closed;
      detach t pcb;
      pcb.on_state ()
  | Listen ->
      (* Closing a listener orphans its never-accepted children: reset the
         established ones parked on the accept queue and the embryonic ones
         still shaking hands, so neither side leaks a connection (the PR-2
         ARP on_drop discipline — fail waiters, don't strand them). *)
      pcb.t_state <- Closed;
      (* Half-open state cached for this listener dies with it: entries
         hold no segments, so dropping the list frees everything (the
         late-arriving ACK of a freed entry gets the no-listener RST). *)
      if pcb.syn_cache <> [] then begin
        bump t (fun s -> s.syncache_evicted <- s.syncache_evicted + List.length pcb.syn_cache);
        pcb.syn_cache <- []
      end;
      Queue.iter (fun conn -> if conn.t_state <> Closed then usr_abort t conn) pcb.accept_q;
      Queue.clear pcb.accept_q;
      List.iter
        (fun p ->
          if
            p.t_state = Syn_received
            && match p.listen_parent with Some x -> x == pcb | None -> false
          then usr_abort t p)
        t.pcbs;
      detach t pcb;
      pcb.on_state ()
  | Syn_received | Established ->
      pcb.snd_fin_pending <- true;
      pcb.t_state <- Fin_wait_1;
      pcb.on_state ();
      tcp_output t pcb
  | Close_wait ->
      pcb.snd_fin_pending <- true;
      pcb.t_state <- Last_ack;
      pcb.on_state ();
      tcp_output t pcb
  | Fin_wait_1 | Fin_wait_2 | Closing | Last_ack | Time_wait -> ()

let set_buffer_sizes pcb ~snd ~rcv =
  pcb.snd_buf.Sockbuf.sb_hiwat <- snd;
  pcb.rcv_buf.Sockbuf.sb_hiwat <- rcv
