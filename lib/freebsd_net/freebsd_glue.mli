(** GLUE — exports the encapsulated FreeBSD networking as OSKit COM
    components (Section 5).

    [init] is the paper's [oskit_freebsd_net_init]: it builds a stack
    instance and returns the socket-factory COM interface to register with
    the C library.  [open_ether_if] is [oskit_freebsd_net_open_ether_if]:
    it binds the stack to any [etherdev] — in the paper's headline
    configuration, a Linux driver — by exchanging [netio] callbacks.
    [ifconfig] completes the listing in Section 5.

    Buffer translation (Section 4.7.3): outbound mbuf chains are exported
    as [bufio] objects whose [map] succeeds only when the chain is a single
    contiguous run — multi-mbuf chains force the receiving component to
    copy (Table 1's send-path copy).  Inbound [bufio]s that map are wrapped
    as external-storage mbufs without copying (Table 1's receive-path
    parity with native FreeBSD). *)

type stack = Bsd_socket.stack

(** Build a stack for one machine.  [hwaddr] is used until a device is
    bound (it is replaced by the device's address at [open_ether_if]). *)
val init : Machine.t -> stack

(** Returns the socket factory to hand to
    [Posix.set_socket_factory]. *)
val socket_factory : stack -> Io_if.socket_factory

(** Bind the stack to an Ethernet device via COM netio exchange. *)
val open_ether_if : stack -> Io_if.etherdev -> (unit, Error.t) result

val ifconfig : stack -> addr:int32 -> mask:int32 -> unit

(** Export an mbuf chain as bufio (for tests and ablations). *)
val bufio_of_mbuf : Mbuf.mbuf -> Io_if.bufio

(** Import a bufio as an mbuf chain; snd of result is true if a copy was
    needed.  [cache] memoises the recognition-query verdict for one
    producer binding (see {!Linux_glue.skb_of_bufio}). *)
val mbuf_of_bufio : ?cache:bool option ref -> Io_if.bufio -> Mbuf.mbuf * bool

(** Wrap one already-connected TCP pcb wrapper as a COM socket (used by the
    factory for [accept]). *)
val socket_com : stack -> Bsd_socket.tsock -> Io_if.socket
