(* ENCAPSULATED LEGACY CODE — 4.4BSD/FreeBSD 2.1.5-style mbufs.
 *
 * The BSD network stack's packet buffer: small fixed-size mbufs chained
 * through m_next, with large payloads held in shared "clusters" (external
 * storage).  Packets are therefore frequently DIScontiguous — the property
 * whose mismatch with Linux's contiguous sk_buffs produces the extra copy
 * on the OSKit send path (Section 5).
 *
 * External storage is reference-shared by m_copym, as in the donor: a
 * retransmitted TCP segment aliases the socket buffer's clusters rather
 * than copying them.  Because the storage is shared, it is never written
 * through an mbuf: m_write refuses ext mbufs, and the one path that needs
 * to mutate a chain in place (the glue's bufio buf_write) goes through
 * m_makewritable first, which un-shares the storage copy-on-write.
 *
 * Storage is pooled (the donor's mbuf free list / MCLALLOC cache): m_get,
 * m_gethdr and m_getclust recycle retired buffers from fixed-size Bpools
 * instead of paying a fresh allocation per packet, and m_free/m_freem
 * return storage to the pools once the last reference drops.  Loaned
 * (m_ext_wrap) storage is foreign and is never recycled here.
 *)

let msize = 128 (* donor MSIZE *)
let mlen = msize - 20 (* data bytes in an ordinary mbuf *)
let mhlen = msize - 28 (* data bytes in a packet-header mbuf *)
let mclbytes = 2048 (* cluster size *)

(* Where an mbuf's backing storage came from, so m_free knows whether (and
   where) to recycle it. *)
type storage = Pool_small | Pool_clust | Foreign

type mbuf = {
  mutable m_next : mbuf option;
  mutable m_data : bytes; (* backing storage *)
  mutable m_off : int; (* start of valid data *)
  mutable m_len : int;
  mutable m_ext : bool; (* external (cluster or loaned) storage: shared, never written *)
  mutable m_pkthdr_len : int; (* total packet length; head mbuf only *)
  mutable m_store : storage;
  mutable m_refs : int ref; (* shared by every mbuf aliasing this storage *)
  mutable m_freed : bool;
  mutable m_on_free : (unit -> unit) option;
      (* Fired once, when the LAST alias of this storage is retired (the
         shared m_refs cell hits 0) — the TX-completion hook the sendfile
         path uses to unpin loaned buffer-cache blocks.  m_copym copies
         propagate it alongside m_refs, so retransmit aliases keep the
         block pinned until the final free. *)
}

let stats_allocated = ref 0
let stats_freed = ref 0

(* The donor's mbuf free list and cluster cache: retired storage is reused
   instead of allocated per packet. *)
let small_pool = Bpool.create ~size:msize ()
let clust_pool = Bpool.create ~size:mclbytes ()

let m_get () =
  incr stats_allocated;
  { m_next = None; m_data = Bpool.get small_pool; m_off = msize - mlen; m_len = 0;
    m_ext = false; m_pkthdr_len = 0; m_store = Pool_small; m_refs = ref 1;
    m_freed = false; m_on_free = None }

let m_gethdr () =
  let m = m_get () in
  m.m_off <- msize - mhlen;
  m

let m_getclust () =
  (* Two acquisitions, as in the donor's MGET + MCLGET: the mbuf header
     (always a freelist hit here) and the cluster (charged by the pool). *)
  Cost.charge_pool_alloc ();
  incr stats_allocated;
  { m_next = None; m_data = Bpool.get clust_pool; m_off = 0; m_len = 0; m_ext = true;
    m_pkthdr_len = 0; m_store = Pool_clust; m_refs = ref 1; m_freed = false;
    m_on_free = None }

(* MEXTADD: loan foreign storage to the chain with no copy — how received
   frames that arrive contiguous are mapped straight into the stack.  The
   loaned bytes are never recycled by this module. *)
let m_ext_wrap buf ~off ~len =
  Cost.charge_pool_alloc ();
  incr stats_allocated;
  { m_next = None; m_data = buf; m_off = off; m_len = len; m_ext = true;
    m_pkthdr_len = len; m_store = Foreign; m_refs = ref 1; m_freed = false;
    m_on_free = None }

(* m_ext_wrap with a free callback (MEXTADD's ext_free): [on_free] runs
   when the last alias of the loaned storage is retired.  The sendfile
   path wraps pinned buffer-cache fragments this way; on_free is the
   unpin, so the block stays wired exactly as long as any socket buffer,
   in-flight segment or retransmit alias still references it. *)
let m_ext_wrap_free buf ~off ~len ~on_free =
  let m = m_ext_wrap buf ~off ~len in
  m.m_on_free <- Some on_free;
  m

(* MFREE: retire one mbuf.  Its storage goes back to the owning pool when
   the last alias drops; the record itself is dead afterwards. *)
let m_free m =
  if m.m_freed then invalid_arg "m_free: double free";
  m.m_freed <- true;
  incr stats_freed;
  let r = m.m_refs in
  decr r;
  if !r = 0 then begin
    (match m.m_store with
    | Pool_small -> Bpool.put small_pool m.m_data
    | Pool_clust -> Bpool.put clust_pool m.m_data
    | Foreign -> ());
    match m.m_on_free with Some f -> f () | None -> ()
  end

let rec m_freem m =
  let next = m.m_next in
  m.m_next <- None;
  m_free m;
  match next with Some n -> m_freem n | None -> ()

let m_length m =
  let rec go acc = function None -> acc | Some x -> go (acc + x.m_len) x.m_next in
  go m.m_len m.m_next

let rec m_last m = match m.m_next with None -> m | Some n -> m_last n

let m_cat a b =
  (m_last a).m_next <- Some b;
  a.m_pkthdr_len <- m_length a

(* Headroom available for prepending in the first mbuf. *)
let m_leadingspace m = if m.m_ext then 0 else m.m_off

let m_tailspace m =
  (* Never write into external storage: it may be shared or loaned. *)
  if m.m_ext then 0 else Bytes.length m.m_data - m.m_off - m.m_len

(* Reserve [n] bytes at the tail of (the first mbuf of) a chain under
   construction, returning their offset within m_data. *)
let m_put m n =
  if m_tailspace m < n then invalid_arg "m_put: no space";
  let at = m.m_off + m.m_len in
  m.m_len <- m.m_len + n;
  m.m_pkthdr_len <- m.m_pkthdr_len + n;
  at

(* M_PREPEND: make room for [n] bytes of header in front. *)
let m_prepend m n =
  if m_leadingspace m >= n then begin
    m.m_off <- m.m_off - n;
    m.m_len <- m.m_len + n;
    m.m_pkthdr_len <- m.m_pkthdr_len + n;
    m
  end
  else begin
    (* Validate before allocating, or the failure path skews the cost
       accounting and the allocation counters. *)
    if n > mhlen then invalid_arg "m_prepend: header larger than MHLEN";
    let hdr = m_gethdr () in
    hdr.m_len <- n;
    hdr.m_next <- Some m;
    hdr.m_pkthdr_len <- n + m_length m;
    hdr
  end

(* m_adj: trim [n] bytes from the front (n > 0) or back (n < 0). *)
let m_adj m n =
  if n >= 0 then begin
    let rec front m n =
      if n > 0 then
        if m.m_len >= n then begin
          m.m_off <- m.m_off + n;
          m.m_len <- m.m_len - n
        end
        else begin
          let eat = m.m_len in
          m.m_off <- m.m_off + eat;
          m.m_len <- 0;
          match m.m_next with Some nx -> front nx (n - eat) | None -> ()
        end
    in
    front m n;
    m.m_pkthdr_len <- max 0 (m.m_pkthdr_len - n)
  end
  else begin
    let want = m_length m + n in
    let rec back m remaining =
      let keep = min m.m_len remaining in
      m.m_len <- keep;
      let remaining = remaining - keep in
      if remaining = 0 then begin
        (* The detached tail is dead: retire it. *)
        (match m.m_next with Some tail -> m_freem tail | None -> ());
        m.m_next <- None
      end
      else match m.m_next with Some nx -> back nx remaining | None -> ()
    in
    back m (max 0 want);
    m.m_pkthdr_len <- max 0 want
  end

(* m_copydata: copy a byte range out of a chain (a real copy, charged). *)
let m_copy_into m ~off ~len ~dst ~dst_pos =
  if len > 0 then Cost.charge_copy len;
  let rec go m off len dst_pos =
    if len > 0 then
      if off >= m.m_len then
        match m.m_next with
        | Some nx -> go nx (off - m.m_len) len dst_pos
        | None -> invalid_arg "m_copydata: chain too short"
      else begin
        let n = min len (m.m_len - off) in
        Bytes.blit m.m_data (m.m_off + off) dst dst_pos n;
        match m.m_next with
        | Some nx -> go nx 0 (len - n) (dst_pos + n)
        | None -> if len - n > 0 then invalid_arg "m_copydata: chain too short"
      end
  in
  go m off len dst_pos

let m_copydata m ~off ~len =
  let dst = Bytes.create len in
  m_copy_into m ~off ~len ~dst ~dst_pos:0;
  dst

(* Copy-on-write: give every mbuf overlapping [off, off+len) private,
   writable storage.  Shared cluster or loaned storage is replaced by an
   exact-size private copy (the old storage's reference drops; pooled
   storage recycles once the last alias is gone). *)
let m_makewritable m ~off ~len =
  let unshare x =
    if x.m_ext then begin
      Cost.charge_alloc ();
      Cost.charge_copy x.m_len;
      let priv = Bytes.create x.m_len in
      Bytes.blit x.m_data x.m_off priv 0 x.m_len;
      let r = x.m_refs in
      decr r;
      if !r = 0 then begin
        (match x.m_store with
        | Pool_small -> Bpool.put small_pool x.m_data
        | Pool_clust -> Bpool.put clust_pool x.m_data
        | Foreign -> ());
        match x.m_on_free with Some f -> f () | None -> ()
      end;
      x.m_data <- priv;
      x.m_off <- 0;
      x.m_ext <- false;
      x.m_store <- Foreign;
      x.m_refs <- ref 1;
      x.m_on_free <- None
    end
  in
  let rec go m off len =
    if len > 0 then
      if off >= m.m_len then
        match m.m_next with
        | Some nx -> go nx (off - m.m_len) len
        | None -> invalid_arg "m_makewritable: chain too short"
      else begin
        let n = min len (m.m_len - off) in
        unshare m;
        match m.m_next with
        | Some nx -> go nx 0 (len - n)
        | None -> if len - n > 0 then invalid_arg "m_makewritable: chain too short"
      end
  in
  go m off len

(* m_copyback-style write into a chain (must fit).  Refuses external
   storage: it is shared (m_copym aliases, loaned receive buffers) and a
   write here would corrupt data held elsewhere — callers that must mutate
   go through m_makewritable first. *)
let m_write m ~off ~src ~src_pos ~len =
  if len > 0 then Cost.charge_copy len;
  let rec go m off len src_pos =
    if len > 0 then
      if off >= m.m_len then
        match m.m_next with
        | Some nx -> go nx (off - m.m_len) len src_pos
        | None -> invalid_arg "m_write: chain too short"
      else begin
        if m.m_ext then invalid_arg "m_write: external storage is shared";
        let n = min len (m.m_len - off) in
        Bytes.blit src src_pos m.m_data (m.m_off + off) n;
        match m.m_next with
        | Some nx -> go nx 0 (len - n) (src_pos + n)
        | None -> if len - n > 0 then invalid_arg "m_write: chain too short"
      end
  in
  go m off len src_pos

(* m_copym: a new chain covering [off, off+len) of the original.  External
   storage is shared (no data copy); interior small-mbuf data is copied. *)
let m_copym m ~off ~len =
  if len <= 0 then invalid_arg "m_copym: empty range";
  (* Gather the (source mbuf, offset, length) segments covering the range,
     then share or copy each. *)
  let rec segments m off len acc =
    if len = 0 then List.rev acc
    else if off >= m.m_len then
      match m.m_next with
      | Some nx -> segments nx (off - m.m_len) len acc
      | None -> invalid_arg "m_copym: chain too short"
    else begin
      let n = min len (m.m_len - off) in
      let acc = (m, off, n) :: acc in
      if len = n then List.rev acc
      else
        match m.m_next with
        | Some nx -> segments nx 0 (len - n) acc
        | None -> invalid_arg "m_copym: chain too short"
    end
  in
  let piece_of (src, off, n) =
    if src.m_ext then begin
      (* Share the external storage: no data copy, one more reference. *)
      Cost.charge_pool_alloc ();
      incr stats_allocated;
      incr src.m_refs;
      { m_next = None; m_data = src.m_data; m_off = src.m_off + off; m_len = n;
        m_ext = true; m_pkthdr_len = 0; m_store = src.m_store; m_refs = src.m_refs;
        m_freed = false; m_on_free = src.m_on_free }
    end
    else begin
      let c = m_get () in
      Cost.charge_copy n;
      Bytes.blit src.m_data (src.m_off + off) c.m_data c.m_off n;
      c.m_len <- n;
      c
    end
  in
  let pieces = List.map piece_of (segments m off len []) in
  let rec link = function
    | [] -> assert false
    | [ last ] -> last
    | first :: rest ->
        first.m_next <- Some (link rest);
        first
  in
  let head = link pieces in
  head.m_pkthdr_len <- len;
  head

(* m_pullup: make the first [n] bytes contiguous in the head mbuf. *)
let m_pullup m n =
  if m.m_len >= n then m
  else begin
    if n > mclbytes then invalid_arg "m_pullup: request too large";
    let head = if n <= mhlen then m_gethdr () else m_getclust () in
    let data = m_copydata m ~off:0 ~len:n in
    Bytes.blit data 0 head.m_data head.m_off n;
    head.m_len <- n;
    head.m_pkthdr_len <- m_length m;
    (* Skip the pulled-up bytes in the old chain. *)
    m_adj m n;
    if m_length m > 0 then head.m_next <- Some m else m_freem m;
    head
  end

(* Append payload, filling tailspace then adding clusters. *)
let m_append m ~src ~src_pos ~len =
  Cost.charge_copy len;
  let rec go tail src_pos len =
    if len > 0 then begin
      let space = m_tailspace tail in
      if space > 0 && not tail.m_ext then begin
        let n = min space len in
        Bytes.blit src src_pos tail.m_data (tail.m_off + tail.m_len) n;
        tail.m_len <- tail.m_len + n;
        go tail (src_pos + n) (len - n)
      end
      else begin
        let c = m_getclust () in
        let n = min mclbytes len in
        Bytes.blit src src_pos c.m_data 0 n;
        c.m_len <- n;
        tail.m_next <- Some c;
        go c (src_pos + n) (len - n)
      end
    end
  in
  go (m_last m) src_pos len;
  m.m_pkthdr_len <- m_length m

(* The chain as an iovec: ordered (backing, off, len) fragments covering
   [off, off+len) with no copy.  This is the scatter-gather view a
   busmaster NIC (or the bufio buf_map_v contract) consumes directly —
   the paper's missing piece on the OSKit send path, where discontiguous
   chains were flattened instead.  Zero-length mbufs contribute nothing. *)
let m_fragments ?(off = 0) ?len m =
  let len = match len with Some l -> l | None -> m_length m - off in
  if len < 0 || off < 0 then invalid_arg "m_fragments: negative range";
  let rec go m off len acc =
    if len = 0 then List.rev acc
    else if off >= m.m_len then
      match m.m_next with
      | Some nx -> go nx (off - m.m_len) len acc
      | None -> invalid_arg "m_fragments: chain too short"
    else begin
      let n = min len (m.m_len - off) in
      let acc = (m.m_data, m.m_off + off, n) :: acc in
      if len = n then List.rev acc
      else
        match m.m_next with
        | Some nx -> go nx 0 (len - n) acc
        | None -> invalid_arg "m_fragments: chain too short"
    end
  in
  go m off len []

(* Number of mbufs in the chain (diagnostics; drives the contiguity check
   in the glue). *)
let m_count m =
  let rec go acc = function None -> acc | Some x -> go (acc + 1) x.m_next in
  go 1 m.m_next

(* Drop every cached buffer and zero the counters: independent simulations
   in one process must all start from a cold cache or virtual times drift
   between otherwise identical runs. *)
let pool_reset () =
  Bpool.drain small_pool;
  Bpool.drain clust_pool;
  Bpool.reset_stats small_pool;
  Bpool.reset_stats clust_pool;
  stats_allocated := 0;
  stats_freed := 0

(* Flatten a chain to plain bytes WITHOUT charging (diagnostic use only). *)
let m_to_bytes_uncharged m =
  let len = m_length m in
  let dst = Bytes.create len in
  let rec go m dst_pos =
    Bytes.blit m.m_data m.m_off dst dst_pos m.m_len;
    match m.m_next with Some nx -> go nx (dst_pos + m.m_len) | None -> ()
  in
  go m 0;
  dst
