(** The OSKit's common I/O interface definitions.

    These are the behavioural contracts through which components are bound
    together at run time (Sections 4.2.2, 4.4): block devices, packet
    buffers, network send/receive, character streams, sockets, and
    VFS-granularity files and directories.  Each interface is a record of
    closures — the OCaml spelling of the paper's [ops] function-pointer
    tables (Figure 2) — plus the [Com.unknown] of the exporting object so
    clients can navigate between views.

    Per Section 4.4.3 these contracts deliberately carry {e no} common
    buffer-management implementation: packets cross component boundaries as
    {!bufio} objects, and each component re-wraps them into its own internal
    representation (skbuffs, mbufs, ...) behind its glue code. *)

(** {1 Block I/O} — Figure 2 of the paper. *)

type blkio = {
  bio_unknown : Com.unknown;
  getblocksize : unit -> int;
  bio_read : buf:bytes -> pos:int -> offset:int -> amount:int -> (int, Error.t) result;
      (** returns bytes actually read; short only at end of device *)
  bio_write : buf:bytes -> pos:int -> offset:int -> amount:int -> (int, Error.t) result;
  getsize : unit -> int;
  setsize : int -> (unit, Error.t) result;
}

let blkio_iid : blkio Iid.t =
  Iid.make ~name:"oskit.blkio"
    (Guid.make 0x4aa7dfe1l 0x7c74 0x11cf "\xb5\x00\x08\x00\x09\x53\xad\xc2")

(** {1 Buffer I/O}

    The extension of [blkio] for data that may live in local memory
    (Section 4.4.2): [map] grants direct access when the implementor stores
    the requested range contiguously — this is what lets the receive path
    avoid copies — and fails harmlessly otherwise, in which case the caller
    falls back on [read]. *)

type bufio = {
  buf_unknown : Com.unknown;
  buf_size : unit -> int;
  buf_read : buf:bytes -> pos:int -> offset:int -> amount:int -> (int, Error.t) result;
  buf_write : buf:bytes -> pos:int -> offset:int -> amount:int -> (int, Error.t) result;
  buf_map : unit -> (bytes * int) option;
      (** [Some (backing, start)]: the object's bytes live at
          [backing[start .. start+size)] and may be read in place *)
  buf_map_v : unit -> (bytes * int * int) list option;
      (** Vectored mapping: [Some frags] exposes the object's bytes as an
          ordered iovec of [(backing, off, len)] fragments that may be read
          in place.  This is what lets a discontiguous producer (an mbuf
          chain) cross a component boundary without being flattened: the
          consumer gathers the fragments itself — typically straight into a
          NIC's scatter-gather DMA ring.  A contiguous object returns a
          single fragment; [None] means in-place access is not available at
          all and the caller falls back on [buf_read]. *)
}

let bufio_iid : bufio Iid.t = Iid.declare "oskit.bufio"

(** {1 Network I/O}

    Push-style packet exchange.  When the client opens a device it passes
    the [netio] on which it wants received packets pushed and gets back the
    [netio] on which to push packets for transmission (Section 5). *)

type netio = {
  nio_unknown : Com.unknown;
  push : bufio -> (unit, Error.t) result;
  push_v : bufio list -> (unit, Error.t) result;
      (** Vectored push: deliver a bounded burst of packets through ONE
          boundary crossing (the NAPI-style receive batch behind
          Cost.config.rx_batch).  Semantically identical to pushing each
          buffer in order; only the per-burst dispatch overhead differs. *)
}

let netio_iid : netio Iid.t = Iid.declare "oskit.netio"

(** {1 Ethernet devices} *)

type etherdev = {
  ed_unknown : Com.unknown;
  ed_ethaddr : unit -> string;  (** 6-byte MAC *)
  ed_open : recv:netio -> (netio, Error.t) result;
  ed_close : unit -> (unit, Error.t) result;
}

let etherdev_iid : etherdev Iid.t = Iid.declare "oskit.etherdev"

(** {1 Character devices} *)

type chario = {
  cio_unknown : Com.unknown;
  cio_read : buf:bytes -> pos:int -> amount:int -> (int, Error.t) result;
      (** blocking; 0 only at end of stream *)
  cio_write : buf:bytes -> pos:int -> amount:int -> (int, Error.t) result;
}

let chario_iid : chario Iid.t = Iid.declare "oskit.chario"

(** {1 Sockets} — the BSD socket contract the minimal C library binds file
    descriptors to. *)

type sockaddr = { sin_addr : int32; sin_port : int }

type sock_type = Sock_stream | Sock_dgram

type socket = {
  so_unknown : Com.unknown;
  so_bind : sockaddr -> (unit, Error.t) result;
  so_listen : backlog:int -> (unit, Error.t) result;
  so_accept : unit -> (socket * sockaddr, Error.t) result;
  so_connect : sockaddr -> (unit, Error.t) result;
  so_send : buf:bytes -> pos:int -> len:int -> (int, Error.t) result;
  so_recv : buf:bytes -> pos:int -> len:int -> (int, Error.t) result;
  so_sendto : buf:bytes -> pos:int -> len:int -> dst:sockaddr -> (int, Error.t) result;
  so_recvfrom : buf:bytes -> pos:int -> len:int -> (int * sockaddr, Error.t) result;
  so_getsockname : unit -> (sockaddr, Error.t) result;
  so_setsockopt : string -> int -> (unit, Error.t) result;
  so_shutdown : unit -> (unit, Error.t) result;
  so_close : unit -> (unit, Error.t) result;
}

let socket_iid : socket Iid.t = Iid.declare "oskit.socket"

(** {1 Asynchronous I/O}

    The readiness view of a stream object — the OSKit's [oskit_asyncio]
    contract.  Where {!socket} is the blocking BSD personality, this is the
    select/poll personality: [poll] reports which of the condition bits are
    currently true, and [add_listener] registers an {!listener} whose
    [notify] fires whenever a masked condition {e becomes} true.  Exported
    by the same COM object as the socket view, so a reactor can navigate
    from either stack's socket to its readiness hooks through
    [Com.query]. *)

(** Condition masks ([OSKIT_ASYNCIO_READABLE] & co.). *)
let aio_read = 1

let aio_write = 2
let aio_exception = 4

type listener = {
  ls_unknown : Com.unknown;
  ls_notify : unit -> unit;
      (** Called at notification level (possibly from interrupt context):
          must not block, and must tolerate spurious invocations — the
          object promises only that a poll is worthwhile, not that any
          specific condition still holds by the time the listener runs. *)
}

let listener_iid : listener Iid.t = Iid.declare "oskit.listener"

type asyncio = {
  aio_unknown : Com.unknown;
  aio_poll : unit -> int;  (** current readiness, an [aio_*] bitmask *)
  aio_add_listener : listener -> int -> (int, Error.t) result;
      (** [add_listener l mask] arranges for [l.ls_notify] whenever a
          condition in [mask] becomes true; returns the readiness mask at
          registration time so the caller cannot miss an edge that fired
          before the listener was in place. *)
  aio_remove_listener : listener -> (unit, Error.t) result;
  aio_readable : unit -> int;
      (** Bytes available to read without blocking (0 if unknown). *)
}

let asyncio_iid : asyncio Iid.t = Iid.declare "oskit.asyncio"

(** [listener_create notify] wraps a plain callback as a COM listener. *)
let listener_create notify =
  let rec view () = { ls_unknown = unknown (); ls_notify = notify }
  and obj = lazy (Com.create (fun _self -> [ Iid.B (listener_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()

(** [asyncio_view ~unknown ~poll ~add_listener ~remove_listener ()] builds
    an asyncio record over a stack's plain readiness hooks: [add_listener
    ~mask f] returns a registration id, [remove_listener id] drops it.
    Each call owns its own listener table, so build it {e once} per
    underlying object (not per COM query) and hand out the same record. *)
let asyncio_view ~unknown ~poll ~add_listener ~remove_listener
    ?(readable = fun () -> 0) () =
  let subs : (listener * int) list ref = ref [] in
  { aio_unknown = unknown ();
    aio_poll = poll;
    aio_add_listener =
      (fun l mask ->
        let id = add_listener ~mask (fun _ready -> l.ls_notify ()) in
        subs := (l, id) :: !subs;
        Ok (poll ()));
    aio_remove_listener =
      (fun l ->
        match List.partition (fun (x, _) -> x == l) !subs with
        | [], _ -> Result.Error Error.Inval
        | matches, rest ->
            subs := rest;
            List.iter (fun (_, id) -> remove_listener id) matches;
            Ok ());
    aio_readable = readable }

(** {1 Scalable readiness: the kqueue view}

    Where {!asyncio} is per-object (one poll, one listener table), this is
    the aggregating component: a changelist + ready-queue over many
    asyncio sources, the BSD [kqueue]/[kevent] shape.  A registered
    (ident, filter) pair is a {e knote}; the source's notification hook
    enqueues the knote on a ready queue in O(1), and [kq_kevent] returns
    only queued entries — O(ready), never O(registered).  Implemented by
    {!Kqueue} in [lib/event]; declared here so any component can hold one
    through COM navigation without depending on the event library. *)

(** Changelist action / mode flags ([EV_*]). *)
let ev_add = 1

let ev_delete = 2

let ev_oneshot = 4
(** report at most once, then auto-delete the knote *)

let ev_clear = 8
(** edge-triggered: report on notifications only, no level re-arm *)

type kevent_desc = {
  ke_ident : int;  (** caller-chosen identity (fd number, conn id, ...) *)
  ke_filter : int;  (** one [aio_*] condition bit *)
  ke_flags : int;  (** [ev_*] bits: mode on input, echo on output *)
  ke_data : int;  (** filter-specific: bytes readable for [aio_read] *)
}

type kqueue = {
  kq_unknown : Com.unknown;
  kq_add : ident:int -> aio:asyncio -> filter:int -> flags:int -> (unit, Error.t) result;
      (** Changelist [EV_ADD]: register a knote for each condition bit in
          [filter] over [aio]; re-adding an (ident, bit) replaces it. *)
  kq_delete : ident:int -> filter:int -> (unit, Error.t) result;
      (** Changelist [EV_DELETE] of the (ident, bit) knotes. *)
  kq_kevent : max:int -> kevent_desc list;
      (** Drain up to [max] ready entries (never more than were queued at
          entry, so a level-triggered source cannot spin the call).
          Returns only ready entries: empty list = nothing pending. *)
  kq_depth : unit -> int;  (** current ready-queue depth *)
  kq_set_wakeup : (unit -> unit) -> unit;
      (** Called (at notification level) when an empty ready queue goes
          non-empty — the reactor's "wake up and poll" hook. *)
}

let kqueue_iid : kqueue Iid.t = Iid.declare "oskit.kqueue"

(** The "socket factory" returned by a protocol stack's init and registered
    with the C library ([posix_set_socketcreator] in Section 5's listing). *)
type socket_factory = {
  sf_unknown : Com.unknown;
  sf_create : sock_type -> (socket, Error.t) result;
}

let socket_factory_iid : socket_factory Iid.t = Iid.declare "oskit.socket_factory"

(** {1 Files and directories}

    Deliberately VFS-granularity: [lookup] takes a {e single} path
    component, which is what let the secure file server of Section 3.8
    interpose permission checks without touching the file system's
    internals. *)

type kind = Regular | Directory

type stat = { st_ino : int; st_size : int; st_kind : kind; st_nlink : int }

type file = {
  f_unknown : Com.unknown;
  f_read : buf:bytes -> pos:int -> offset:int -> amount:int -> (int, Error.t) result;
  f_write : buf:bytes -> pos:int -> offset:int -> amount:int -> (int, Error.t) result;
  f_getstat : unit -> (stat, Error.t) result;
  f_setsize : int -> (unit, Error.t) result;
  f_sync : unit -> (unit, Error.t) result;
}

let file_iid : file Iid.t = Iid.declare "oskit.file"

type node = Node_file of file | Node_dir of dir

and dir = {
  d_unknown : Com.unknown;
  d_getstat : unit -> (stat, Error.t) result;
  d_lookup : string -> (node, Error.t) result;
  d_create : string -> (file, Error.t) result;
  d_mkdir : string -> (dir, Error.t) result;
  d_unlink : string -> (unit, Error.t) result;
  d_rmdir : string -> (unit, Error.t) result;
  d_rename : string -> dir -> string -> (unit, Error.t) result;
  d_readdir : unit -> (string list, Error.t) result;
  d_sync : unit -> (unit, Error.t) result;
}

let dir_iid : dir Iid.t = Iid.declare "oskit.dir"

(** {1 The sendfile content path: file block mapping + scatter send}

    Two optional faces that together give a zero-copy route from a file
    system's buffer cache to a protocol stack's transmit path.  A file may
    additionally export {!filemap}, exposing its bytes as pinned cache-block
    fragments; a socket may additionally export {!sendv}, accepting such
    fragments by reference.  Both are reached by [Com.query] from the
    primary face — a component that implements neither loses nothing, and
    callers fall back on the [f_read]/[so_send] copy path. *)

(** One mapped fragment: [fr_len] bytes at [fr_data[fr_off ..]], readable
    in place.  The mapping holds a pin (a buffer-cache reference) on the
    backing block; the block cannot be evicted or reused while pinned.
    [fr_hold] takes one more pin — a consumer that keeps the bytes beyond
    the mapping's lifetime (e.g. a socket buffer holding them until the
    peer acknowledges) takes its own hold and pairs it with its own
    [fr_release].  Every hold, including the mapping's original one, is
    returned with exactly one [fr_release]. *)
type file_frag = {
  fr_data : bytes;
  fr_off : int;
  fr_len : int;
  fr_hold : unit -> unit;
  fr_release : unit -> unit;
}

(** Total byte length of a fragment list. *)
let frags_length frags = List.fold_left (fun a f -> a + f.fr_len) 0 frags

(** Release every fragment of a mapping (the caller's original holds). *)
let frags_release frags = List.iter (fun f -> f.fr_release ()) frags

type filemap = {
  fm_unknown : Com.unknown;
  fm_map_blocks : offset:int -> amount:int -> (file_frag list, Error.t) result;
      (** Map [amount] bytes of the file starting at [offset] as cache-block
          fragments (short at end of file; partial head/tail blocks appear
          as partial fragments).  Each returned fragment is pinned; the
          caller owns one release per fragment.  Fails ([Error.Notsup])
          when the range cannot be mapped — e.g. it crosses a hole — and
          the caller must fall back on [f_read]. *)
}

let filemap_iid : filemap Iid.t = Iid.declare "oskit.filemap"

type sendv = {
  sv_unknown : Com.unknown;
  sv_send_frags : frags:file_frag list -> pos:int -> (int, Error.t) result;
      (** Scatter send: append the fragment bytes from stream offset [pos]
          (within the concatenated fragments) into the socket, by
          reference where the stack supports it.  Returns bytes accepted;
          blocking/nonblocking semantics follow the socket's [so_send].
          The callee takes its own holds ({!field:file_frag.fr_hold}) for
          whatever it keeps in flight — the caller's mapping pins remain
          the caller's to release. *)
}

let sendv_iid : sendv Iid.t = Iid.declare "oskit.sendv"

(** {1 Helpers} *)

(** [bufio_of_bytes b] wraps plain contiguous bytes — the trivial bufio
    every component can produce.  [map] succeeds. *)
let bufio_of_bytes b =
  let rec view () =
    { buf_unknown = unknown ();
      buf_size = (fun () -> Bytes.length b);
      buf_read =
        (fun ~buf ~pos ~offset ~amount ->
          let n = max 0 (min amount (Bytes.length b - offset)) in
          Bytes.blit b offset buf pos n;
          Ok n);
      buf_write =
        (fun ~buf ~pos ~offset ~amount ->
          let n = max 0 (min amount (Bytes.length b - offset)) in
          Bytes.blit buf pos b offset n;
          Ok n);
      buf_map = (fun () -> Some (b, 0));
      buf_map_v = (fun () -> Some [ (b, 0, Bytes.length b) ]) }
  and obj = lazy (Com.create (fun _self -> [ Iid.B (bufio_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()

(** [bufio_contents io] copies out the full contents (test/diagnostic aid;
    charges nothing). *)
let bufio_contents io =
  let n = io.buf_size () in
  match io.buf_map () with
  | Some (backing, start) -> Bytes.sub backing start n
  | None -> (
      let buf = Bytes.create n in
      match io.buf_read ~buf ~pos:0 ~offset:0 ~amount:n with
      | Ok k when k = n -> buf
      | Ok k -> Bytes.sub buf 0 k
      | Result.Error _ -> Bytes.empty)
