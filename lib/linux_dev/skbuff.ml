(* ENCAPSULATED LEGACY CODE — Linux 2.0.29 style (Section 4.7).
 *
 * This module reproduces Linux's internal network packet buffer, the
 * sk_buff, whose "implementation details are thoroughly known throughout"
 * the driver code (Section 4.7.3): a single contiguous data area with
 * headroom and tailroom, adjusted with reserve/put/push/pull.  It is used
 * by the encapsulated drivers in this library and by the Linux inet stack
 * baseline; nothing outside those components and their glue may see it.
 * The glue code translates between sk_buffs and the OSKit's bufio
 * interface without copying whenever the layout allows.
 *
 * Allocation is pooled by power-of-two size class, as the donor's
 * kmalloc bucket scheme behaves in steady state: alloc_skb rounds the
 * request up to a class and recycles retired buffers of that class, so a
 * running stack allocates nothing per packet.  kfree_skb (skb_free here)
 * retires the storage; wrapped buffers (skb_wrap, the glue's fake skbuffs)
 * are foreign and never recycled.
 *
 * (In the C OSKit this file would live under linux/src/, byte-identical to
 * the donor tree; here "unmodified" means we preserve the donor's
 * abstractions and API shape.)
 *)

type sk_buff = {
  skb_data : bytes; (* the contiguous allocation *)
  mutable head : int; (* start of valid data within skb_data *)
  mutable len : int; (* bytes of valid data *)
  mutable protocol : int; (* ethertype, set by eth_type_trans *)
  mutable dev_name : string;
  skb_pooled : bool; (* storage owned by the size-class pools below *)
  mutable skb_freed : bool;
  mutable link_ready : bool; (* ether header built: safe to hand to a NIC *)
  mutable skb_frags : (bytes * int * int) list;
      (* Nonlinear form (skb_shinfo frags, in the donor's later trees): when
         non-empty, the buffer's bytes are this ordered iovec of loaned
         (backing, off, len) fragments, [skb_data] holds nothing, and [len]
         is the fragments' total.  Only scatter-gather-aware consumers
         (hard_start_xmit's gather DMA) accept one; everything else calls
         [skb_linearize] first. *)
}

exception Skb_over_panic
(* Linux calls panic(); an exception is our machine check. *)

(* Power-of-two size classes, 64 B .. 4 KB — a full Ethernet frame plus the
   stack's slack fits in the 2 KB class. *)
let min_class_bits = 6
let max_class_bits = 12

let pools =
  Array.init
    (max_class_bits - min_class_bits + 1)
    (fun i -> Bpool.create ~size:(1 lsl (min_class_bits + i)) ())

let class_of_size size =
  let rec go bits = if 1 lsl bits >= size then bits else go (bits + 1) in
  go min_class_bits

let alloc_skb size =
  if size <= 1 lsl max_class_bits then
    let pool = pools.(class_of_size size - min_class_bits) in
    { skb_data = Bpool.get pool; head = 0; len = 0; protocol = 0; dev_name = "";
      skb_pooled = true; skb_freed = false; link_ready = false; skb_frags = [] }
  else begin
    Cost.charge_alloc ();
    { skb_data = Bytes.create size; head = 0; len = 0; protocol = 0; dev_name = "";
      skb_pooled = false; skb_freed = false; link_ready = false; skb_frags = [] }
  end

(* Wrap an existing buffer without copying (used by the glue's "fake
   skbuff" trick, Section 4.7.3, and by DMA completion). *)
let skb_wrap data =
  { skb_data = data; head = 0; len = Bytes.length data; protocol = 0; dev_name = "";
    skb_pooled = false; skb_freed = false; link_ready = false; skb_frags = [] }

(* Wrap an iovec of loaned fragments as a nonlinear sk_buff — no copy, no
   pool storage.  The fragments stay the lender's; they must outlive the
   (synchronous) transmit this buffer is built for. *)
let skb_of_frags frags =
  let frags = List.filter (fun (_, _, len) -> len > 0) frags in
  let total = List.fold_left (fun a (_, _, len) -> a + len) 0 frags in
  { skb_data = Bytes.empty; head = 0; len = total; protocol = 0; dev_name = "";
    skb_pooled = false; skb_freed = false; link_ready = false; skb_frags = frags }

let skb_is_nonlinear skb = skb.skb_frags <> []

(* The buffer as an iovec: its loaned fragments, or its one linear span. *)
let skb_fragments skb =
  if skb_is_nonlinear skb then skb.skb_frags
  else [ (skb.skb_data, skb.head, skb.len) ]

(* Make the data contiguous for a consumer that needs it that way: a real
   gather copy, charged.  Linear buffers pass through untouched, so calling
   this on the common path costs nothing. *)
let skb_linearize skb =
  if not (skb_is_nonlinear skb) then skb
  else begin
    if skb.skb_freed then invalid_arg "skb_linearize: freed";
    let lin = alloc_skb skb.len in
    Cost.charge_copy skb.len;
    let at = ref 0 in
    List.iter
      (fun (data, off, len) ->
        Bytes.blit data off lin.skb_data !at len;
        at := !at + len)
      skb.skb_frags;
    lin.len <- skb.len;
    lin.protocol <- skb.protocol;
    lin.dev_name <- skb.dev_name;
    lin.link_ready <- skb.link_ready;
    lin
  end

(* kfree_skb: retire the buffer to its size-class pool.  Foreign (wrapped)
   storage is the lender's; only the bookkeeping applies. *)
let skb_free skb =
  if skb.skb_freed then invalid_arg "skb_free: double free";
  skb.skb_freed <- true;
  if skb.skb_pooled then
    Bpool.put pools.(class_of_size (Bytes.length skb.skb_data) - min_class_bits)
      skb.skb_data

(* Drop every cached buffer and zero the pool counters: independent
   simulations in one process must start from a cold cache or virtual
   times drift between otherwise identical runs. *)
let pool_reset () =
  Array.iter
    (fun p ->
      Bpool.drain p;
      Bpool.reset_stats p)
    pools

let skb_headroom skb = skb.head

let skb_tailroom skb =
  if skb_is_nonlinear skb then 0
  else Bytes.length skb.skb_data - skb.head - skb.len

let skb_reserve skb n =
  if skb.len <> 0 || n > skb_tailroom skb then raise Skb_over_panic;
  skb.head <- skb.head + n

(* Append n bytes; returns the offset (within skb_data) of the new area. *)
let skb_put skb n =
  if n > skb_tailroom skb then raise Skb_over_panic;
  let at = skb.head + skb.len in
  skb.len <- skb.len + n;
  at

(* Prepend n bytes; returns the new start offset. *)
let skb_push skb n =
  if n > skb.head then raise Skb_over_panic;
  skb.head <- skb.head - n;
  skb.len <- skb.len + n;
  skb.head

(* Drop n bytes from the front; returns the new start offset. *)
let skb_pull skb n =
  if n > skb.len then raise Skb_over_panic;
  skb.head <- skb.head + n;
  skb.len <- skb.len - n;
  skb.head

let skb_trim skb n = if n < skb.len then skb.len <- n

(* Copy out the valid data (costed: this is a real memcpy). *)
let skb_copy_out skb =
  Cost.charge_copy skb.len;
  Bytes.sub skb.skb_data skb.head skb.len

(* Copy user/foreign data into the tail (memcpy_fromfs in the donor). *)
let skb_copy_in skb src src_pos n =
  let at = skb_put skb n in
  Cost.charge_copy n;
  Bytes.blit src src_pos skb.skb_data at n
