(* ENCAPSULATED LEGACY CODE — Linux 2.0.29-style Ethernet drivers.
 *
 * One driver core with the per-chip "personalities" of the donor tree's
 * fifty-odd drivers.  The code keeps Linux's structure: a `struct device'
 * with open/stop/hard_start_xmit entry points, an interrupt handler that
 * pulls frames off the card and feeds netif_rx, and eth_type_trans for
 * protocol demux.  Everything traffics in sk_buffs.
 *)

let eth_hlen = 14
let eth_p_ip = 0x0800
let eth_p_arp = 0x0806

type device = {
  name : string; (* eth0, eth1, ... *)
  model : string;
  hw : Nic.t;
  dev_addr : string; (* station MAC *)
  mutable opened : bool;
  mutable netif_rx : Skbuff.sk_buff -> unit; (* upcall into the stack *)
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable irq_requested : bool;
}

(* The chips this donor tree has drivers for; a probe matches the model
   string the "card" reports, as the ISA/PCI probe would. *)
let supported_models =
  [ "NE2000"; "3c509"; "3c59x"; "3c905"; "tulip"; "eepro100"; "lance"; "rtl8139";
    "smc-ultra"; "de4x5" ]

let nothing_rx (_ : Skbuff.sk_buff) = ()

let found : device list ref = ref []

(* eth_type_trans: strip the link header, note the protocol. *)
let eth_type_trans skb =
  let off = skb.Skbuff.head in
  let proto =
    (Char.code (Bytes.get skb.Skbuff.skb_data (off + 12)) lsl 8)
    lor Char.code (Bytes.get skb.Skbuff.skb_data (off + 13))
  in
  skb.Skbuff.protocol <- proto;
  proto

(* The receive interrupt: drain the ring, wrapping each DMA buffer in an
   sk_buff (the card DMAed it; no CPU copy). *)
let device_interrupt dev () =
  let rec drain () =
    match Nic.pop_rx dev.hw with
    | None -> ()
    | Some frame ->
        Cost.charge_cycles Cost.config.linux_driver_pkt_cycles;
        let skb = Skbuff.skb_wrap frame in
        skb.Skbuff.dev_name <- dev.name;
        ignore (eth_type_trans skb);
        dev.rx_packets <- dev.rx_packets + 1;
        dev.netif_rx skb;
        drain ()
  in
  drain ()

let probe_devices osenv =
  let machine = Osenv.machine osenv in
  let devices =
    List.filter_map
      (fun hw ->
        match hw with
        | Bus.Hw_nic { model; nic } when List.mem model supported_models ->
            Some
              { name = "eth" ^ string_of_int (List.length !found);
                model;
                hw = nic;
                dev_addr = Nic.mac nic;
                opened = false;
                netif_rx = nothing_rx;
                tx_packets = 0;
                rx_packets = 0;
                irq_requested = false }
        | Bus.Hw_nic _ | Bus.Hw_disk _ | Bus.Hw_serial _ -> None)
      (Bus.hardware machine)
  in
  found := !found @ devices;
  devices

let dev_open osenv dev ~rx =
  if dev.opened then Result.Error Error.Busy
  else begin
    dev.netif_rx <- rx;
    match Osenv.irq_request osenv ~irq:(Nic.irq dev.hw) ~handler:(device_interrupt dev) with
    | Ok () ->
        dev.irq_requested <- true;
        dev.opened <- true;
        Ok ()
    | Result.Error _ as e -> e
  end

let dev_stop osenv dev =
  if dev.opened then begin
    Osenv.irq_free osenv ~irq:(Nic.irq dev.hw);
    dev.opened <- false;
    dev.netif_rx <- nothing_rx
  end

(* hard_start_xmit: hand a fully-formed frame to the card. *)
let hard_start_xmit dev skb =
  if not dev.opened then Error.fail Error.Nodev;
  Cost.charge_cycles Cost.config.linux_driver_pkt_cycles;
  dev.tx_packets <- dev.tx_packets + 1;
  if Skbuff.skb_is_nonlinear skb then
    (* Nonlinear sk_buff: program the card's scatter-gather ring with the
       fragment list — the controller gathers in place, no CPU flatten. *)
    Nic.transmit_v dev.hw (Skbuff.skb_fragments skb)
  else begin
    (* The card DMAs straight out of the sk_buff's contiguous data. *)
    let frame = Bytes.sub skb.Skbuff.skb_data skb.Skbuff.head skb.Skbuff.len in
    Nic.transmit dev.hw frame
  end

(* Build the 14-byte header in the skb's headroom (eth_header). *)
let eth_header skb ~src ~dst ~proto =
  let off = Skbuff.skb_push skb eth_hlen in
  Bytes.blit_string dst 0 skb.Skbuff.skb_data off 6;
  Bytes.blit_string src 0 skb.Skbuff.skb_data (off + 6) 6;
  Bytes.set skb.Skbuff.skb_data (off + 12) (Char.chr (proto lsr 8));
  Bytes.set skb.Skbuff.skb_data (off + 13) (Char.chr (proto land 0xff));
  skb.Skbuff.link_ready <- true

(* Forget past probes (simulation restart). *)
let reset () = found := []
