(* ENCAPSULATED LEGACY CODE — Linux 2.0.29-style Ethernet drivers.
 *
 * One driver core with the per-chip "personalities" of the donor tree's
 * fifty-odd drivers.  The code keeps Linux's structure: a `struct device'
 * with open/stop/hard_start_xmit entry points, an interrupt handler that
 * pulls frames off the card and feeds netif_rx, and eth_type_trans for
 * protocol demux.  Everything traffics in sk_buffs.
 *)

let eth_hlen = 14
let eth_p_ip = 0x0800
let eth_p_arp = 0x0806

type device = {
  name : string; (* eth0, eth1, ... *)
  model : string;
  hw : Nic.t;
  dev_addr : string; (* station MAC *)
  mutable opened : bool;
  mutable netif_rx : Skbuff.sk_buff -> unit; (* upcall into the stack *)
  (* Vectored upcall for a batched poll (Cost.config.rx_batch > 1); the
     default falls back to per-frame netif_rx, so a client that never
     installs one sees today's behavior under any batch budget. *)
  mutable netif_rx_v : Skbuff.sk_buff list -> unit;
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable irq_requested : bool;
  mutable napi_scheduled : bool; (* poll pending; the line stays masked *)
}

(* The chips this donor tree has drivers for; a probe matches the model
   string the "card" reports, as the ISA/PCI probe would. *)
let supported_models =
  [ "NE2000"; "3c509"; "3c59x"; "3c905"; "tulip"; "eepro100"; "lance"; "rtl8139";
    "smc-ultra"; "de4x5" ]

let nothing_rx (_ : Skbuff.sk_buff) = ()
let nothing_rx_v (_ : Skbuff.sk_buff list) = ()

let found : device list ref = ref []

(* eth_type_trans: strip the link header, note the protocol. *)
let eth_type_trans skb =
  let off = skb.Skbuff.head in
  let proto =
    (Char.code (Bytes.get skb.Skbuff.skb_data (off + 12)) lsl 8)
    lor Char.code (Bytes.get skb.Skbuff.skb_data (off + 13))
  in
  skb.Skbuff.protocol <- proto;
  proto

(* Wrap one received DMA buffer in an sk_buff (the card DMAed it; no CPU
   copy).  The per-frame hardware work (ring handling, device programming)
   is charged per frame whatever the batch budget; the budget changes only
   how many frames ride one upcall into the stack. *)
let wrap_rx dev frame =
  Cost.charge_cycles Cost.config.linux_driver_pkt_cycles;
  let skb = Skbuff.skb_wrap frame in
  skb.Skbuff.dev_name <- dev.name;
  ignore (eth_type_trans skb);
  dev.rx_packets <- dev.rx_packets + 1;
  skb

(* Interrupt-mitigation window: a busy machine's local clock may run far
   ahead of wire time, and the poll must not wait out that whole lead —
   unbounded RX delay would stall ACK processing into the peers'
   retransmit timers.  The poll fires when the CPU frees up or when this
   timer expires, whichever is sooner, like a NIC's coalescing timer. *)
let napi_coalesce_ns = 100_000

(* The NAPI-style poll (Cost.config.rx_batch > 1): frames that arrived
   while the CPU was busy (or during the coalescing window) are already in
   the ring; hand them up [budget] at a time, each chunk ONE vectored
   upcall, until the ring is empty, then unmask and revert to interrupts.
   Draining fully before unmasking bounds ring occupancy — leaving frames
   behind for another window is how rings overflow and drops turn into
   peer retransmit timeouts.  This is exactly Linux's interrupt mitigation
   loop: under light load it degenerates to one interrupt, one frame, no
   added latency. *)
(* Group a burst by RSS home CPU, preserving arrival order within each
   group (a flow always maps to one CPU, so per-flow order is kept). *)
let group_by_cpu ~ncpus frames =
  let groups = ref [] in
  List.iter
    (fun frame ->
      let cpu = Rss.cpu_of_frame ~ncpus frame in
      match List.assoc_opt cpu !groups with
      | Some r -> r := frame :: !r
      | None -> groups := !groups @ [ (cpu, ref [ frame ]) ])
    frames;
  List.map (fun (cpu, r) -> (cpu, List.rev !r)) !groups

let napi_poll machine dev () =
  dev.napi_scheduled <- false;
  let budget = max 1 Cost.config.rx_batch in
  let ncpus = Machine.ncpus machine in
  let rec drain () =
    match Nic.pop_rx_burst dev.hw ~max:budget with
    | [] -> ()
    | frames ->
        if ncpus <= 1 then dev.netif_rx_v (List.map (wrap_rx dev) frames)
        else begin
          (* RSS: each home CPU gets its slice of the burst as one vectored
             upcall on that CPU, so the per-frame driver work, the glue
             crossing, and the protocol input all charge the home CPU. *)
          let isr = Netisr.for_machine machine in
          List.iter
            (fun (cpu, fs) ->
              ignore
                (Netisr.dispatch isr ~cpu (fun () ->
                     dev.netif_rx_v (List.map (wrap_rx dev) fs))))
            (group_by_cpu ~ncpus frames)
        end;
        drain ()
  in
  drain ();
  Machine.unmask_irq machine ~irq:(Nic.irq dev.hw)

let napi_schedule machine dev =
  if not dev.napi_scheduled then begin
    dev.napi_scheduled <- true;
    Machine.mask_irq machine ~irq:(Nic.irq dev.hw);
    let wnow = World.now (Machine.world machine) in
    let lead = max 0 (Machine.now machine - wnow) in
    ignore (Machine.at machine (wnow + min lead napi_coalesce_ns) (napi_poll machine dev))
  end

(* The receive interrupt: with the default budget, drain the ring frame by
   frame — one upcall each, today's exact behaviour.  With a batch budget,
   leave the frames in the ring and schedule the poll above. *)
let device_interrupt dev () =
  if Cost.config.rx_batch <= 1 then begin
    let steer =
      match Machine.current () with
      | Some machine when Machine.ncpus machine > 1 -> Some machine
      | _ -> None
    in
    let rec drain () =
      match Nic.pop_rx dev.hw with
      | None -> ()
      | Some frame ->
          (match steer with
          | None -> dev.netif_rx (wrap_rx dev frame)
          | Some machine ->
              let ncpus = Machine.ncpus machine in
              let cpu = Rss.cpu_of_frame ~ncpus frame in
              ignore
                (Netisr.dispatch (Netisr.for_machine machine) ~cpu (fun () ->
                     dev.netif_rx (wrap_rx dev frame))));
          drain ()
    in
    drain ()
  end
  else if Nic.rx_pending dev.hw > 0 then
    match Machine.current () with
    | Some machine -> napi_schedule machine dev
    | None -> ()

let probe_devices osenv =
  let machine = Osenv.machine osenv in
  let devices =
    List.filter_map
      (fun hw ->
        match hw with
        | Bus.Hw_nic { model; nic } when List.mem model supported_models ->
            Some
              { name = "eth" ^ string_of_int (List.length !found);
                model;
                hw = nic;
                dev_addr = Nic.mac nic;
                opened = false;
                netif_rx = nothing_rx;
                netif_rx_v = nothing_rx_v;
                napi_scheduled = false;
                tx_packets = 0;
                rx_packets = 0;
                irq_requested = false }
        | Bus.Hw_nic _ | Bus.Hw_disk _ | Bus.Hw_serial _ -> None)
      (Bus.hardware machine)
  in
  found := !found @ devices;
  devices

let dev_open osenv dev ~rx ?rx_v () =
  if dev.opened then Result.Error Error.Busy
  else begin
    dev.netif_rx <- rx;
    dev.netif_rx_v <-
      (match rx_v with Some f -> f | None -> fun skbs -> List.iter rx skbs);
    match Osenv.irq_request osenv ~irq:(Nic.irq dev.hw) ~handler:(device_interrupt dev) with
    | Ok () ->
        dev.irq_requested <- true;
        dev.opened <- true;
        Ok ()
    | Result.Error _ as e -> e
  end

let dev_stop osenv dev =
  if dev.opened then begin
    Osenv.irq_free osenv ~irq:(Nic.irq dev.hw);
    dev.opened <- false;
    dev.netif_rx <- nothing_rx;
    dev.netif_rx_v <- nothing_rx_v
  end

(* hard_start_xmit: hand a fully-formed frame to the card. *)
let hard_start_xmit dev skb =
  if not dev.opened then Error.fail Error.Nodev;
  Cost.charge_cycles Cost.config.linux_driver_pkt_cycles;
  dev.tx_packets <- dev.tx_packets + 1;
  if Skbuff.skb_is_nonlinear skb then
    (* Nonlinear sk_buff: program the card's scatter-gather ring with the
       fragment list — the controller gathers in place, no CPU flatten. *)
    Nic.transmit_v dev.hw (Skbuff.skb_fragments skb)
  else begin
    (* The card DMAs straight out of the sk_buff's contiguous data. *)
    let frame = Bytes.sub skb.Skbuff.skb_data skb.Skbuff.head skb.Skbuff.len in
    Nic.transmit dev.hw frame
  end

(* Build the 14-byte header in the skb's headroom (eth_header). *)
let eth_header skb ~src ~dst ~proto =
  let off = Skbuff.skb_push skb eth_hlen in
  Bytes.blit_string dst 0 skb.Skbuff.skb_data off 6;
  Bytes.blit_string src 0 skb.Skbuff.skb_data (off + 6) 6;
  Bytes.set skb.Skbuff.skb_data (off + 12) (Char.chr (proto lsr 8));
  Bytes.set skb.Skbuff.skb_data (off + 13) (Char.chr (proto land 0xff));
  skb.Skbuff.link_ready <- true

(* Forget past probes (simulation restart). *)
let reset () = found := []
