(* ENCAPSULATED LEGACY CODE — Linux-style IDE/SCSI block driver core.
 *
 * Keeps the donor structure: a per-drive request queue of `struct
 * request's, do_request starting the head of the queue on the hardware,
 * and an interrupt handler calling end_request, which wakes the sleeper.
 * Process-level callers block with the emulated sleep_on/wake_up.
 *)

type request = {
  cmd : [ `Read | `Write ];
  sector : int;
  nr_sectors : int;
  buffer : bytes; (* data read lands here / data to write comes from here *)
  buf_pos : int; (* offset of the request's span within [buffer] *)
  wait : Linux_emu.wait_queue;
  mutable errors : int;
  mutable completed : bool;
}

type drive = {
  name : string; (* hda, hdb, ... *)
  model : string;
  hw : Disk.t;
  queue : request Queue.t;
  mutable active : request option;
  mutable irq_requested : bool;
  mutable read_count : int;
  mutable write_count : int;
}

let supported_models = [ "WDC-AC2850"; "ST-3491A"; "QUANTUM-LPS540"; "AHA-1542"; "NCR-53c810" ]

let found : drive list ref = ref []

let probe_drives osenv =
  let machine = Osenv.machine osenv in
  let drives =
    List.filter_map
      (fun hw ->
        match hw with
        | Bus.Hw_disk { model; disk } when List.mem model supported_models ->
            Some
              { name = "hd" ^ String.make 1 (Char.chr (Char.code 'a' + List.length !found));
                model;
                hw = disk;
                queue = Queue.create ();
                active = None;
                irq_requested = false;
                read_count = 0;
                write_count = 0 }
        | Bus.Hw_disk _ | Bus.Hw_nic _ | Bus.Hw_serial _ -> None)
      (Bus.hardware machine)
  in
  found := !found @ drives;
  drives

(* Start the head of the queue on the controller. *)
let rec do_request drive =
  match drive.active with
  | Some _ -> ()
  | None -> (
      match Queue.take_opt drive.queue with
      | None -> ()
      | Some req ->
          drive.active <- Some req;
          let op =
            match req.cmd with
            | `Read -> Disk.Read { start = req.sector; count = req.nr_sectors }
            | `Write ->
                Disk.Write
                  { start = req.sector;
                    data =
                      Bytes.sub req.buffer req.buf_pos
                        (req.nr_sectors * Disk.sector_size drive.hw) }
          in
          ignore (Disk.submit drive.hw op))

and end_request drive ok data =
  match drive.active with
  | None -> ()
  | Some req ->
      drive.active <- None;
      if not ok then req.errors <- req.errors + 1
      else begin
        (match req.cmd with
        | `Read ->
            Cost.charge_copy (Bytes.length data);
            Bytes.blit data 0 req.buffer req.buf_pos (Bytes.length data)
        | `Write -> ());
        req.completed <- true
      end;
      Linux_emu.wake_up req.wait;
      do_request drive

let drive_interrupt drive () =
  let rec drain () =
    match Disk.take_completion drive.hw with
    | None -> ()
    | Some { Disk.result = Ok data; _ } ->
        end_request drive true data;
        drain ()
    | Some { Disk.result = Error _; _ } ->
        end_request drive false Bytes.empty;
        drain ()
  in
  drain ()

let attach osenv drive =
  if not drive.irq_requested then begin
    match
      Osenv.irq_request osenv ~irq:(Disk.irq drive.hw) ~handler:(drive_interrupt drive)
    with
    | Ok () -> drive.irq_requested <- true
    | Result.Error _ -> ()
  end

(* Blocking process-level entry: queue, start, sleep until completion. *)
let ide_rw drive cmd ~sector ~nr_sectors ~buffer ?(buf_pos = 0) () =
  let req =
    { cmd; sector; nr_sectors; buffer; buf_pos; wait = Linux_emu.wait_queue_head ();
      errors = 0; completed = false }
  in
  Queue.add req drive.queue;
  do_request drive;
  while not (req.completed || req.errors > 0) do
    Linux_emu.sleep_on req.wait
  done;
  (match cmd with
  | `Read -> drive.read_count <- drive.read_count + 1
  | `Write -> drive.write_count <- drive.write_count + 1);
  if req.errors > 0 then Error.fail Error.Io

let reset () = found := []
