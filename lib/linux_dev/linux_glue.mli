(** GLUE — exports the encapsulated Linux drivers as OSKit COM components.

    The thin layer of Section 4.7: translates the OSKit's public interfaces
    ([etherdev]/[netio]/[blkio]) into the imported code's internal ones, and
    the imported code's demands for low-level services into osenv calls.
    Packet buffers cross this boundary by the skbuff↔bufio rules of
    Section 4.7.3:

    - outbound sk_buffs are exported as [bufio] objects directly (one extra
      word, no copy);
    - inbound [bufio]s that are secretly our own sk_buffs are unwrapped by a
      private interface query (the "function table pointer check");
    - foreign [bufio]s that [map] (contiguous data) get a {e fake} sk_buff
      aliasing their bytes — still no copy;
    - anything else is read into a fresh sk_buff — the copy the Table 1
      send path pays when FreeBSD mbuf chains arrive here.

    Every crossing charges {!Cost.charge_glue_crossing}. *)

(** The paper's [fdev_linux_init_ethernet]: register the Linux Ethernet
    driver set with the device framework.  "Causing all supported drivers
    to be linked into the resulting application." *)
val init_ethernet : unit -> unit

(** Likewise for the block (IDE/SCSI) driver set. *)
val init_ide : unit -> unit

(** [bufio_of_skb skb] — export an sk_buff (receive path; no copy). *)
val bufio_of_skb : Skbuff.sk_buff -> Io_if.bufio

(** [skb_of_bufio ?cache io] — import a bufio for transmission per the
    rules above.  Returns the sk_buff and whether a copy was required.

    With {!Cost.config}[.sg_tx] set, a foreign bufio that exposes
    [buf_map_v] crosses as a {e nonlinear} sk_buff referencing the
    producer's fragments in place — no flatten copy; the driver hands the
    iovec to the card's scatter-gather DMA.

    [cache] memoises the private-interface recognition verdict for one
    producer binding: pass the same ref for every frame of a binding and
    only the first pays the COM dispatch on foreign producers
    ({!fresh_recognition}). *)
val skb_of_bufio : ?cache:bool option ref -> Io_if.bufio -> Skbuff.sk_buff * bool

(** A per-binding memo for [skb_of_bufio]'s recognition query. *)
val fresh_recognition : unit -> bool option ref

(** Direct (non-COM) access to the probed legacy devices, for the Linux
    inet baseline which links against this driver code natively. *)
val native_devices : Osenv.t -> Linux_eth_drv.device list

val native_open :
  Osenv.t -> Linux_eth_drv.device -> rx:(Skbuff.sk_buff -> unit) -> (unit, Error.t) result

(** Reset probe state (between simulations in one process). *)
val reset : unit -> unit
