(* The private interface by which this glue recognises its own buffers:
   querying it succeeds only on bufio objects this module exported. *)
let skbuff_iid : Skbuff.sk_buff Iid.t = Iid.declare "oskit.linux.skbuff"

let bufio_of_skb skb =
  let size () = skb.Skbuff.len in
  let rec view () =
    { Io_if.buf_unknown = unknown ();
      buf_size = size;
      buf_read =
        (fun ~buf ~pos ~offset ~amount ->
          let n = max 0 (min amount (size () - offset)) in
          Cost.charge_copy n;
          if Skbuff.skb_is_nonlinear skb then begin
            (* Walk the fragment list; [skip] bytes in, then gather [n]. *)
            let skip = ref offset and todo = ref n and at = ref pos in
            List.iter
              (fun (data, off, len) ->
                let drop = min !skip len in
                let take = min !todo (len - drop) in
                if take > 0 then begin
                  Bytes.blit data (off + drop) buf !at take;
                  at := !at + take;
                  todo := !todo - take
                end;
                skip := !skip - drop)
              skb.Skbuff.skb_frags
          end
          else Bytes.blit skb.Skbuff.skb_data (skb.Skbuff.head + offset) buf pos n;
          Ok n);
      buf_write =
        (fun ~buf ~pos ~offset ~amount ->
          if Skbuff.skb_is_nonlinear skb then
            (* Fragment storage is loaned: writing through would corrupt
               the lender's data (cf. Mbuf.m_write on ext storage). *)
            Result.Error Error.Notsup
          else begin
            let n = max 0 (min amount (size () - offset)) in
            Cost.charge_copy n;
            Bytes.blit buf pos skb.Skbuff.skb_data (skb.Skbuff.head + offset) n;
            Ok n
          end);
      buf_map =
        (fun () ->
          if Skbuff.skb_is_nonlinear skb then None
          else Some (skb.Skbuff.skb_data, skb.Skbuff.head));
      buf_map_v = (fun () -> Some (Skbuff.skb_fragments skb)) }
  and obj =
    lazy
      (Com.create (fun _ ->
           [ Iid.B (Io_if.bufio_iid, fun () -> view ());
             Iid.B (skbuff_iid, fun () -> skb) ]))
  and unknown () = Lazy.force obj in
  view ()

(* Per-binding memo of whether a peer's bufios carry our private skbuff
   interface.  The first frame pays the COM dispatch; once a producer is
   known to be foreign, later frames skip the (always-failing) query and
   go straight to the mapping fallbacks.  Safe because a recognition miss
   only ever costs the unwrap shortcut, never correctness: a native buffer
   arriving after a negative verdict still maps contiguously. *)
type recognition = bool option ref

let fresh_recognition () : recognition = ref None

let skb_of_bufio ?cache (io : Io_if.bufio) =
  let attempt =
    match cache with
    | Some { contents = Some false } -> Result.Error Error.No_interface
    | _ ->
        Cost.count_com_call ();
        Com.query io.Io_if.buf_unknown skbuff_iid
  in
  (match cache with
  | Some ({ contents = None } as c) ->
      c := Some (match attempt with Ok _ -> true | Result.Error _ -> false)
  | _ -> ());
  match attempt with
  | Ok skb ->
      (* One of ours: unwrap, no copy.  Drop the query's reference. *)
      ignore (io.Io_if.buf_unknown.Com.release ());
      skb, false
  | Result.Error _ -> (
      let n = io.Io_if.buf_size () in
      match io.Io_if.buf_map () with
      | Some (backing, start) ->
          (* Contiguous foreign data: fake sk_buff aliasing it.  Not
             pooled — the backing belongs to the lender. *)
          ( { Skbuff.skb_data = backing; head = start; len = n; protocol = 0;
              dev_name = ""; skb_pooled = false; skb_freed = false;
              link_ready = false; skb_frags = [] },
            false )
      | None -> (
          match if Cost.config.Cost.sg_tx then io.Io_if.buf_map_v () else None with
          | Some frags ->
              (* Scatter-gather: the chain crosses as an iovec; the only
                 remaining gather is the NIC's DMA.  The fragments stay the
                 producer's — the push below is synchronous, so they live
                 until the frame is on the wire. *)
              Skbuff.skb_of_frags frags, false
          | None -> (
              (* Discontiguous (e.g. an mbuf chain): allocate and copy. *)
              Cost.count_linearized_xmit ();
              let skb = Skbuff.alloc_skb n in
              ignore (Skbuff.skb_put skb n);
              match
                io.Io_if.buf_read ~buf:skb.Skbuff.skb_data ~pos:0 ~offset:0 ~amount:n
              with
              | Ok _ -> skb, true
              | Result.Error e -> Error.fail e)))

(* ---- etherdev COM objects ---- *)

let etherdev_of osenv (dev : Linux_eth_drv.device) : Com.unknown =
  let make_xmit_netio () =
    (* One recognition verdict per xmit binding: the first push pays the
       COM query, steady-state frames skip it (the paper's per-packet
       indirect-call overhead, hoisted). *)
    let cache = fresh_recognition () in
    let xmit_one io =
      let skb, copied = skb_of_bufio ~cache io in
      match Linux_eth_drv.hard_start_xmit dev skb with
      | () ->
          (* A copy made for this transmit is dead once the frame is
             on the wire; unwrapped/fake skbs belong to the caller. *)
          if copied then Skbuff.skb_free skb;
          Ok ()
      | exception Error.Error e -> Result.Error e
    in
    let rec view () =
      { Io_if.nio_unknown = unknown ();
        push =
          (fun io ->
            Cost.charge_glue_crossing ();
            xmit_one io);
        push_v =
          (fun ios ->
            (* One crossing carries the whole burst. *)
            Cost.charge_glue_crossing ();
            List.fold_left
              (fun acc io -> match acc with Ok () -> xmit_one io | e -> e)
              (Ok ()) ios) }
    and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.netio_iid, fun () -> view ()) ]))
    and unknown () = Lazy.force obj in
    view ()
  in
  let ed_open ~(recv : Io_if.netio) =
    let rx skb =
      (* Driver -> client: wrap the sk_buff and push upward.  The crossing
         itself is charged by the receiving component's netio. *)
      Linux_emu.with_current (fun () -> ignore (recv.Io_if.push (bufio_of_skb skb)))
    in
    let rx_v skbs =
      (* Batched poll: the whole burst rides one vectored push — the
         receiving netio charges one crossing for all of it. *)
      Linux_emu.with_current (fun () ->
          ignore (recv.Io_if.push_v (List.map bufio_of_skb skbs)))
    in
    match Linux_eth_drv.dev_open osenv dev ~rx ~rx_v () with
    | Ok () -> Ok (make_xmit_netio ())
    | Result.Error _ as e -> e
  in
  let rec view () =
    { Io_if.ed_unknown = unknown ();
      ed_ethaddr = (fun () -> dev.Linux_eth_drv.dev_addr);
      ed_open =
        (fun ~recv ->
          Cost.charge_glue_crossing ();
          Linux_emu.with_current (fun () -> ed_open ~recv));
      ed_close =
        (fun () ->
          Cost.charge_glue_crossing ();
          Linux_emu.with_current (fun () ->
              Linux_eth_drv.dev_stop osenv dev;
              Ok ())) }
  and obj =
    lazy (Com.create (fun _ -> [ Iid.B (Io_if.etherdev_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  unknown ()

(* ---- blkio COM objects over the IDE driver ---- *)

let blkio_of osenv (drive : Linux_ide_drv.drive) : Com.unknown =
  Linux_ide_drv.attach osenv drive;
  let ssize = Disk.sector_size drive.Linux_ide_drv.hw in
  let dev_bytes = Disk.sectors drive.Linux_ide_drv.hw * ssize in
  (* Byte-granularity access over the sector driver: whole-sector I/O with
     read-modify-write for unaligned writes, as buffer-cache-less clients
     expect from the raw blkio (Section 4.4.2: "raw, unbuffered"). *)
  let do_read ~buf ~pos ~offset ~amount =
    let amount = max 0 (min amount (dev_bytes - offset)) in
    if amount = 0 then Ok 0
    else begin
      let first = offset / ssize in
      let last = (offset + amount - 1) / ssize in
      let tmp = Bytes.create ((last - first + 1) * ssize) in
      Linux_ide_drv.ide_rw drive `Read ~sector:first ~nr_sectors:(last - first + 1)
        ~buffer:tmp ();
      Cost.charge_copy amount;
      Bytes.blit tmp (offset - (first * ssize)) buf pos amount;
      Ok amount
    end
  in
  let do_write ~buf ~pos ~offset ~amount =
    let amount = max 0 (min amount (dev_bytes - offset)) in
    if amount = 0 then Ok 0
    else begin
      let first = offset / ssize in
      let last = (offset + amount - 1) / ssize in
      if offset mod ssize = 0 && amount mod ssize = 0 then
        (* Fully sector-aligned: the controller DMAs straight from the
           caller's buffer — no bounce buffer, no pre-read, no CPU copy. *)
        Linux_ide_drv.ide_rw drive `Write ~sector:first
          ~nr_sectors:(last - first + 1) ~buffer:buf ~buf_pos:pos ()
      else begin
        (* Unaligned span: read-modify-write through a bounce buffer. *)
        let tmp = Bytes.create ((last - first + 1) * ssize) in
        Linux_ide_drv.ide_rw drive `Read ~sector:first ~nr_sectors:(last - first + 1)
          ~buffer:tmp ();
        Cost.charge_copy amount;
        Bytes.blit buf pos tmp (offset - (first * ssize)) amount;
        Linux_ide_drv.ide_rw drive `Write ~sector:first ~nr_sectors:(last - first + 1)
          ~buffer:tmp ()
      end;
      Ok amount
    end
  in
  let rec view () =
    { Io_if.bio_unknown = unknown ();
      getblocksize = (fun () -> ssize);
      bio_read =
        (fun ~buf ~pos ~offset ~amount ->
          Cost.charge_glue_crossing ();
          Linux_emu.with_current (fun () ->
              Error.to_result (fun () -> do_read ~buf ~pos ~offset ~amount) |> Result.join));
      bio_write =
        (fun ~buf ~pos ~offset ~amount ->
          Cost.charge_glue_crossing ();
          Linux_emu.with_current (fun () ->
              Error.to_result (fun () -> do_write ~buf ~pos ~offset ~amount) |> Result.join));
      getsize = (fun () -> dev_bytes);
      setsize = (fun _ -> Result.Error Error.Notsup) }
  and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.blkio_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  unknown ()

(* ---- fdev driver registration ---- *)

let init_ethernet () =
  Fdev.register_driver
    { Fdev.drv_name = "linux-ethernet";
      drv_origin = "linux-2.0.29";
      drv_probe =
        (fun osenv -> List.map (etherdev_of osenv) (Linux_eth_drv.probe_devices osenv)) }

let init_ide () =
  Fdev.register_driver
    { Fdev.drv_name = "linux-ide";
      drv_origin = "linux-2.0.29";
      drv_probe =
        (fun osenv -> List.map (blkio_of osenv) (Linux_ide_drv.probe_drives osenv)) }

let native_devices osenv = Linux_eth_drv.probe_devices osenv
let native_open osenv dev ~rx = Linux_eth_drv.dev_open osenv dev ~rx ()

let reset () =
  Linux_eth_drv.reset ();
  Linux_ide_drv.reset ()
