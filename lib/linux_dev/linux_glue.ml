(* The private interface by which this glue recognises its own buffers:
   querying it succeeds only on bufio objects this module exported. *)
let skbuff_iid : Skbuff.sk_buff Iid.t = Iid.declare "oskit.linux.skbuff"

let bufio_of_skb skb =
  let size () = skb.Skbuff.len in
  let rec view () =
    { Io_if.buf_unknown = unknown ();
      buf_size = size;
      buf_read =
        (fun ~buf ~pos ~offset ~amount ->
          let n = max 0 (min amount (size () - offset)) in
          Cost.charge_copy n;
          Bytes.blit skb.Skbuff.skb_data (skb.Skbuff.head + offset) buf pos n;
          Ok n);
      buf_write =
        (fun ~buf ~pos ~offset ~amount ->
          let n = max 0 (min amount (size () - offset)) in
          Cost.charge_copy n;
          Bytes.blit buf pos skb.Skbuff.skb_data (skb.Skbuff.head + offset) n;
          Ok n);
      buf_map = (fun () -> Some (skb.Skbuff.skb_data, skb.Skbuff.head)) }
  and obj =
    lazy
      (Com.create (fun _ ->
           [ Iid.B (Io_if.bufio_iid, fun () -> view ());
             Iid.B (skbuff_iid, fun () -> skb) ]))
  and unknown () = Lazy.force obj in
  view ()

let skb_of_bufio (io : Io_if.bufio) =
  match Com.query io.Io_if.buf_unknown skbuff_iid with
  | Ok skb ->
      (* One of ours: unwrap, no copy.  Drop the query's reference. *)
      ignore (io.Io_if.buf_unknown.Com.release ());
      skb, false
  | Result.Error _ -> (
      let n = io.Io_if.buf_size () in
      match io.Io_if.buf_map () with
      | Some (backing, start) ->
          (* Contiguous foreign data: fake sk_buff aliasing it.  Not
             pooled — the backing belongs to the lender. *)
          ( { Skbuff.skb_data = backing; head = start; len = n; protocol = 0;
              dev_name = ""; skb_pooled = false; skb_freed = false;
              link_ready = false },
            false )
      | None -> (
          (* Discontiguous (e.g. an mbuf chain): allocate and copy. *)
          let skb = Skbuff.alloc_skb n in
          ignore (Skbuff.skb_put skb n);
          match io.Io_if.buf_read ~buf:skb.Skbuff.skb_data ~pos:0 ~offset:0 ~amount:n with
          | Ok _ -> skb, true
          | Result.Error e -> Error.fail e))

(* ---- etherdev COM objects ---- *)

let etherdev_of osenv (dev : Linux_eth_drv.device) : Com.unknown =
  let make_xmit_netio () =
    let rec view () =
      { Io_if.nio_unknown = unknown ();
        push =
          (fun io ->
            Cost.charge_glue_crossing ();
            let skb, copied = skb_of_bufio io in
            match Linux_eth_drv.hard_start_xmit dev skb with
            | () ->
                (* A copy made for this transmit is dead once the frame is
                   on the wire; unwrapped/fake skbs belong to the caller. *)
                if copied then Skbuff.skb_free skb;
                Ok ()
            | exception Error.Error e -> Result.Error e) }
    and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.netio_iid, fun () -> view ()) ]))
    and unknown () = Lazy.force obj in
    view ()
  in
  let ed_open ~(recv : Io_if.netio) =
    let rx skb =
      (* Driver -> client: wrap the sk_buff and push upward.  The crossing
         itself is charged by the receiving component's netio. *)
      Linux_emu.with_current (fun () -> ignore (recv.Io_if.push (bufio_of_skb skb)))
    in
    match Linux_eth_drv.dev_open osenv dev ~rx with
    | Ok () -> Ok (make_xmit_netio ())
    | Result.Error _ as e -> e
  in
  let rec view () =
    { Io_if.ed_unknown = unknown ();
      ed_ethaddr = (fun () -> dev.Linux_eth_drv.dev_addr);
      ed_open =
        (fun ~recv ->
          Cost.charge_glue_crossing ();
          Linux_emu.with_current (fun () -> ed_open ~recv));
      ed_close =
        (fun () ->
          Cost.charge_glue_crossing ();
          Linux_emu.with_current (fun () ->
              Linux_eth_drv.dev_stop osenv dev;
              Ok ())) }
  and obj =
    lazy (Com.create (fun _ -> [ Iid.B (Io_if.etherdev_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  unknown ()

(* ---- blkio COM objects over the IDE driver ---- *)

let blkio_of osenv (drive : Linux_ide_drv.drive) : Com.unknown =
  Linux_ide_drv.attach osenv drive;
  let ssize = Disk.sector_size drive.Linux_ide_drv.hw in
  let dev_bytes = Disk.sectors drive.Linux_ide_drv.hw * ssize in
  (* Byte-granularity access over the sector driver: whole-sector I/O with
     read-modify-write for unaligned writes, as buffer-cache-less clients
     expect from the raw blkio (Section 4.4.2: "raw, unbuffered"). *)
  let do_read ~buf ~pos ~offset ~amount =
    let amount = max 0 (min amount (dev_bytes - offset)) in
    if amount = 0 then Ok 0
    else begin
      let first = offset / ssize in
      let last = (offset + amount - 1) / ssize in
      let tmp = Bytes.create ((last - first + 1) * ssize) in
      Linux_ide_drv.ide_rw drive `Read ~sector:first ~nr_sectors:(last - first + 1)
        ~buffer:tmp;
      Cost.charge_copy amount;
      Bytes.blit tmp (offset - (first * ssize)) buf pos amount;
      Ok amount
    end
  in
  let do_write ~buf ~pos ~offset ~amount =
    let amount = max 0 (min amount (dev_bytes - offset)) in
    if amount = 0 then Ok 0
    else begin
      let first = offset / ssize in
      let last = (offset + amount - 1) / ssize in
      let tmp = Bytes.create ((last - first + 1) * ssize) in
      let aligned = offset mod ssize = 0 && (offset + amount) mod ssize = 0 in
      if not aligned then
        Linux_ide_drv.ide_rw drive `Read ~sector:first ~nr_sectors:(last - first + 1)
          ~buffer:tmp;
      Cost.charge_copy amount;
      Bytes.blit buf pos tmp (offset - (first * ssize)) amount;
      Linux_ide_drv.ide_rw drive `Write ~sector:first ~nr_sectors:(last - first + 1)
        ~buffer:tmp;
      Ok amount
    end
  in
  let rec view () =
    { Io_if.bio_unknown = unknown ();
      getblocksize = (fun () -> ssize);
      bio_read =
        (fun ~buf ~pos ~offset ~amount ->
          Cost.charge_glue_crossing ();
          Linux_emu.with_current (fun () ->
              Error.to_result (fun () -> do_read ~buf ~pos ~offset ~amount) |> Result.join));
      bio_write =
        (fun ~buf ~pos ~offset ~amount ->
          Cost.charge_glue_crossing ();
          Linux_emu.with_current (fun () ->
              Error.to_result (fun () -> do_write ~buf ~pos ~offset ~amount) |> Result.join));
      getsize = (fun () -> dev_bytes);
      setsize = (fun _ -> Result.Error Error.Notsup) }
  and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.blkio_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  unknown ()

(* ---- fdev driver registration ---- *)

let init_ethernet () =
  Fdev.register_driver
    { Fdev.drv_name = "linux-ethernet";
      drv_origin = "linux-2.0.29";
      drv_probe =
        (fun osenv -> List.map (etherdev_of osenv) (Linux_eth_drv.probe_devices osenv)) }

let init_ide () =
  Fdev.register_driver
    { Fdev.drv_name = "linux-ide";
      drv_origin = "linux-2.0.29";
      drv_probe =
        (fun osenv -> List.map (blkio_of osenv) (Linux_ide_drv.probe_drives osenv)) }

let native_devices osenv = Linux_eth_drv.probe_devices osenv
let native_open osenv dev ~rx = Linux_eth_drv.dev_open osenv dev ~rx

let reset () =
  Linux_eth_drv.reset ();
  Linux_ide_drv.reset ()
