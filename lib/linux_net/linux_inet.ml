(* ENCAPSULATED LEGACY CODE — the Linux 2.0.29 inet stack, abridged: arp.c,
 * ip.c (no fragmentation — TCP at MSS 1460 never fragments on a local
 * Ethernet), tcp.c and the socket glue.  Everything traffics in contiguous
 * sk_buffs end to end — the property that makes the monolithic Linux rows
 * of Tables 1 and 2 behave differently from BSD.
 *
 * The TCP keeps Linux 2.0's observable behaviour on a LAN: one copy
 * user->skb on send, MSS-sized segments, an ACK for every data segment
 * (2.0 had no effective delayed-ACK coalescing), slow start with a coarse
 * retransmit timer, and no out-of-order queue to speak of.  It speaks
 * standard TCP on the wire and interoperates with the BSD stack.
 *)

let eth_hlen = 14
let ip_hlen = 20
let tcp_hlen = 20
let mss = 1460
let default_window = 32 * 1024
let rexmt_ns = 300_000_000
let time_wait_ns = 2_000_000_000

let th_fin = 0x01
let th_syn = 0x02
let th_rst = 0x04
let th_ack = 0x10

let m32 x = x land 0xffffffff

let seq_diff a b =
  let d = m32 (a - b) in
  if d >= 0x80000000 then d - 0x100000000 else d

let seq_lt a b = seq_diff a b < 0
let seq_gt a b = seq_diff a b > 0
let seq_geq a b = seq_diff a b >= 0

type tcp_state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_recv
  | Established
  | Fin_wait1
  | Fin_wait2
  | Close_wait
  | Last_ack
  | Time_wait

type rexmt_entry = { rx_seq : int; rx_end : int; rx_frame : Skbuff.sk_buff }

(* One cached half-open handshake (Cost.config.syn_defense): everything
   needed to answer the completing ACK without a sock existing yet. *)
type lsc_entry = {
  lsc_raddr : int32;
  lsc_rport : int;
  lsc_irs : int;
  lsc_iss : int;
  lsc_mss : int;
}

(* A readiness listener — the socket-side half of oskit_asyncio, mirroring
   Bsd_socket.ready_listener.  Runs at wakeup level; spurious calls
   allowed, blocking not. *)
type ready_listener = { rl_id : int; rl_mask : int; rl_fn : int -> unit }

type sock = {
  stack : stack;
  mutable state : tcp_state;
  (* RSS home CPU: where this flow's input, timers, and stat bumps run.
     Assigned when the 4-tuple is known (connect / SYN-child creation);
     always 0 at ncpus=1. *)
  mutable home_cpu : int;
  mutable lport : int;
  mutable rport : int;
  mutable raddr : int32;
  mutable iss : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_wnd : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable smss : int; (* per-connection MSS (Cost.config.tcp_mss, peer-clamped) *)
  (* RFC 1323 window scaling (Cost.config.tcp_wscale): [snd_scale] shifts
     incoming window fields, [rcv_scale] ours; 0 until negotiated. *)
  mutable snd_scale : int;
  mutable rcv_scale : int;
  mutable peer_wscale : int; (* scale the peer's SYN offered; -1 = none *)
  (* NewReno fast retransmit/recovery *)
  mutable dupacks : int;
  mutable recover : int; (* snd_nxt at recovery entry *)
  (* RTT estimation, Jacobson in nanoseconds (2.0 had none here: the
     stack retransmitted on a fixed coarse timer only) *)
  mutable srtt_ns : int;
  mutable rttvar_ns : int;
  mutable rto_ns : int;
  mutable rtt_seq : int; (* end seq of the timed segment *)
  mutable rtt_ts : int; (* ns at transmit; 0 = no sample in flight (Karn) *)
  mutable fin_queued : bool;
  mutable rexmt_q : rexmt_entry list; (* oldest first *)
  mutable rexmt_q_len : int; (* |rexmt_q|, kept so guards stay O(1) *)
  (* zero-window persist probing *)
  mutable persist_armed : bool;
  mutable persist_shift : int;
  (* receive side *)
  mutable rcv_nxt : int;
  mutable rcv_buf_max : int; (* receive-queue bound; autotuning grows it *)
  mutable adv_wnd : int; (* last window we advertised, post-scale *)
  (* receive-buffer autotuning clump detector (Cost.config.tcp_autotune) *)
  mutable rxclump_ts : int;
  mutable rxclump_bytes : int;
  rcv_q : Skbuff.sk_buff Queue.t; (* in-order payload skbs (data at head) *)
  mutable rcv_q_bytes : int;
  (* Out-of-order reassembly, kept only under Cost.config.tcp_wscale: 2.0
     dropped OOO segments, which at scaled windows turns every loss into a
     one-frame-per-RTT go-back-N replay of the whole window. *)
  mutable ooo_q : (int * Skbuff.sk_buff) list; (* (seq, payload), seq-sorted *)
  mutable ooo_bytes : int;
  mutable head_consumed : int;
  mutable peer_fin : bool;
  (* listen side *)
  backlog_q : sock Queue.t;
  mutable backlog : int;
  mutable parent : sock option;
  mutable syn_cache : lsc_entry list; (* newest first, bounded *)
  mutable err : Error.t option;
  sleep : Sleep_record.t;
  mutable rexmt_armed : bool;
  mutable rexmt_stamp : int; (* when the current queue head began waiting: set
     on the empty->non-empty queue transition, on snd_una advance, and on a
     retransmission.  The coarse timer checks it on fire so a fire armed long
     ago cannot retransmit a freshly sent (or freshly replaced) head. *)
  mutable rexmt_shift : int; (* backoff exponent; reset when an ACK advances *)
  mutable nb : bool; (* O_NONBLOCK *)
  mutable listeners : ready_listener list;
  mutable next_lid : int;
}

(* An unresolved ARP destination: bounded waiter queue, retry timer. *)
and arp_wait = {
  mutable aw_waiters : ((string -> unit) * (unit -> unit)) list; (* newest first *)
  mutable aw_tries : int;
  mutable aw_timer : World.event option;
}

and stack = {
  machine : Machine.t;
  mutable dev : Linux_eth_drv.device option;
  mutable my_ip : int32;
  mutable my_mask : int32;
  arp_cache : (int32, string) Hashtbl.t;
  arp_pending : (int32, arp_wait) Hashtbl.t;
  mutable socks : sock list;
  (* O(1) demux (Cost.config.pcb_hash): connected socks keyed by
     (raddr, rport, lport) plus a one-entry last-sock cache; listeners are
     found by the lport-only fallback scan.  Maintained unconditionally so
     the flag can flip mid-run. *)
  sock_hash : (int32 * int * int, sock) Hashtbl.t;
  mutable last_sock : sock option;
  mutable next_port : int;
  mutable next_iss : int;
  mutable ip_id : int;
  mutable segs_out : int;
  mutable segs_in : int;
  mutable rexmits : int;
  (* netstat-style drop accounting *)
  mutable ipbadsum : int;       (* IP header checksum failures *)
  mutable tcpbadsum : int;      (* TCP checksum failures *)
  mutable rcvdup : int;         (* data at or below rcv_nxt, dropped *)
  mutable rcvoo : int;          (* data beyond rcv_nxt (no OOO queue here) *)
  mutable rcvfull : int;        (* in-order data dropped: receive queue full *)
  mutable arp_waiters_dropped : int; (* pending queue overflow, drop-head *)
  mutable arp_failures : int;   (* resolutions abandoned after retries *)
  mutable rexmt_give_ups : int; (* connections reset by the rexmt backstop *)
  mutable persist_probes : int; (* zero-window probes sent by the persist timer *)
  mutable listen_overflow : int; (* SYNs dropped: listen queue full *)
  mutable predack : int;  (* header prediction: pure ACK hits *)
  mutable preddat : int;  (* header prediction: in-order data hits *)
  mutable predfallback : int; (* established-state segments that missed *)
  (* overload survival (Cost.config.syn_defense / tw_max / icmp_ratelimit) *)
  cookie_secret : int;
  mutable tw_list : sock list; (* Time_wait socks, oldest first *)
  mutable syncache_added : int;
  mutable syncache_evicted : int;
  mutable syncache_completed : int;
  mutable syncookies_validated : int;
  mutable syncookies_rejected : int;
  mutable time_wait_reclaimed : int;
  mutable nomem_drops : int;    (* segments/frames dropped for want of an skb *)
  mutable rst_ratelimited : int;
  mutable err_tokens : float;
  mutable err_tok_ts : int;
  (* Per-CPU shards of the per-segment counters (netstat sharding): every
     bump updates BOTH the flat aggregate field above — so existing readers
     see unchanged totals at any ncpus — and the executing CPU's shard; the
     shards always sum to the aggregate. *)
  shards : lshard array;
  (* The listen backlog is the one structure touched from two CPUs (SYN
     children enqueue on their home CPU, accept drains on the listener's);
     everything per-flow stays lock-free. *)
  lsk_accept_lock : Smp.spinlock;
}

and lshard = {
  mutable sh_segs_out : int;
  mutable sh_segs_in : int;
  mutable sh_rexmits : int;
  mutable sh_rcvdup : int;
  mutable sh_rcvoo : int;
  mutable sh_predack : int;
  mutable sh_preddat : int;
  mutable sh_predfallback : int;
}

let create machine =
  { machine; dev = None; my_ip = 0l; my_mask = 0l; arp_cache = Hashtbl.create 16;
    arp_pending = Hashtbl.create 4; socks = []; sock_hash = Hashtbl.create 64;
    last_sock = None; next_port = 1024; next_iss = 99000;
    ip_id = 1; segs_out = 0; segs_in = 0; rexmits = 0; ipbadsum = 0; tcpbadsum = 0;
    rcvdup = 0; rcvoo = 0; rcvfull = 0; arp_waiters_dropped = 0; arp_failures = 0;
    rexmt_give_ups = 0; persist_probes = 0; listen_overflow = 0; predack = 0;
    preddat = 0; predfallback = 0; cookie_secret = 0x327b23c6; tw_list = [];
    syncache_added = 0; syncache_evicted = 0; syncache_completed = 0;
    syncookies_validated = 0; syncookies_rejected = 0; time_wait_reclaimed = 0;
    nomem_drops = 0; rst_ratelimited = 0;
    err_tokens = float_of_int Cost.config.icmp_ratelimit; err_tok_ts = 0;
    shards =
      Array.init (Machine.ncpus machine) (fun _ ->
          { sh_segs_out = 0; sh_segs_in = 0; sh_rexmits = 0; sh_rcvdup = 0;
            sh_rcvoo = 0; sh_predack = 0; sh_preddat = 0; sh_predfallback = 0 });
    lsk_accept_lock = Smp.spinlock ~name:"inet-accept" () }

let shard t = t.shards.(Machine.cpu t.machine)

let with_accept_lock t f =
  if Machine.ncpus t.machine > 1 then Smp.with_spinlock t.lsk_accept_lock f
  else f ()

(* ---- hashed demux maintenance ---- *)

let sock_key s = (s.raddr, s.rport, s.lport)

(* Insert once the 4-tuple is known (connect, SYN-child creation).  This is
   also the moment the flow's RSS home CPU becomes computable; the software
   hash must agree with the frame-steering hash, and does because
   [Rss.flow_hash] is direction-symmetric. *)
let sock_hash_add t s =
  s.home_cpu <-
    Rss.cpu_of_flow ~ncpus:(Machine.ncpus t.machine) ~proto:6 ~addr_a:t.my_ip
      ~port_a:s.lport ~addr_b:s.raddr ~port_b:s.rport;
  Hashtbl.replace t.sock_hash (sock_key s) s

let sock_hash_remove t s =
  (match Hashtbl.find_opt t.sock_hash (sock_key s) with
  | Some x when x == s -> Hashtbl.remove t.sock_hash (sock_key s)
  | _ -> ());
  match t.last_sock with Some x when x == s -> t.last_sock <- None | _ -> ()

(* Arm a per-flow timer on the flow's home CPU, so the fire (retransmit,
   probe, TIME_WAIT reclaim) charges that CPU's clock.  At ncpus=1 this is
   exactly [Machine.after].  Under [Cost.config.timer_wheel] the entry goes
   on that CPU's hierarchical wheel instead of the raw event queue. *)
let after_home t s dt f =
  if Cost.config.Cost.timer_wheel then
    ignore
      (Kwheel.after (Kwheel.for_machine t.machine) ~cpu:s.home_cpu ~ns:dt f)
  else if Machine.ncpus t.machine <= 1 then ignore (Machine.after t.machine dt f)
  else
    ignore (Machine.at_on t.machine ~cpu:s.home_cpu (Machine.now t.machine + dt) f)

let ifconfig t ~addr ~mask =
  t.my_ip <- addr;
  t.my_mask <- mask

let dev_of t = match t.dev with Some d -> d | None -> Error.fail Error.Nodev

(* ---- byte helpers ---- *)

let put32be d o v =
  Bytes.set d o (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff));
  Bytes.set d (o + 1) (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
  Bytes.set d (o + 2) (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
  Bytes.set d (o + 3) (Char.chr (Int32.to_int v land 0xff))

let get32be d o =
  let b i = Int32.of_int (Char.code (Bytes.get d (o + i))) in
  Int32.logor
    (Int32.shift_left (b 0) 24)
    (Int32.logor (Int32.shift_left (b 1) 16) (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))

let cksum ?(init = 0) d ~off ~len =
  Cost.charge_checksum len;
  let sum = ref init in
  for i = 0 to len - 1 do
    let byte = Char.code (Bytes.get d (off + i)) in
    if i land 1 = 0 then sum := !sum + (byte lsl 8) else sum := !sum + byte
  done;
  let rec fold s = if s > 0xffff then fold ((s land 0xffff) + (s lsr 16)) else s in
  lnot (fold !sum) land 0xffff

let pseudo ~src ~dst ~proto ~len =
  let hi v = Int32.to_int (Int32.shift_right_logical v 16) land 0xffff in
  let lo v = Int32.to_int v land 0xffff in
  hi src + lo src + hi dst + lo dst + proto + len

(* ---- ARP ---- *)

let arp_output t ~op ~dst_mac ~target_mac ~target_ip =
  let dev = dev_of t in
  let skb = Skbuff.alloc_skb (eth_hlen + 28 + 16) in
  Skbuff.skb_reserve skb eth_hlen;
  let off = Skbuff.skb_put skb 28 in
  let d = skb.Skbuff.skb_data in
  Bytes.set_uint16_be d off 1;
  Bytes.set_uint16_be d (off + 2) 0x0800;
  Bytes.set d (off + 4) '\006';
  Bytes.set d (off + 5) '\004';
  Bytes.set_uint16_be d (off + 6) op;
  Bytes.blit_string dev.Linux_eth_drv.dev_addr 0 d (off + 8) 6;
  put32be d (off + 14) t.my_ip;
  Bytes.blit_string target_mac 0 d (off + 18) 6;
  put32be d (off + 24) target_ip;
  Linux_eth_drv.eth_header skb ~src:dev.Linux_eth_drv.dev_addr ~dst:dst_mac ~proto:0x0806;
  Linux_eth_drv.hard_start_xmit dev skb;
  (* The card has copied the frame out; retire the buffer. *)
  Skbuff.skb_free skb

let arp_request t ip =
  (* A request lost to memory pressure looks exactly like one lost on the
     wire; the backoff timer re-sends.  Must not raise — retries fire from
     a timer callback. *)
  try
    arp_output t ~op:1 ~dst_mac:"\xff\xff\xff\xff\xff\xff"
      ~target_mac:"\000\000\000\000\000\000" ~target_ip:ip
  with Memfault.Nomem -> ()

(* Pending-queue and retry limits, as in the FreeBSD side: a handful of
   waiters, request backoff doubling from 0.5 s, then give up and fail
   whatever is still queued. *)
let arp_max_waiters = 16
let arp_max_tries = 5
let arp_retry_base_ns = 500_000_000

let rec arp_schedule_retry t ip w =
  let delay = arp_retry_base_ns * (1 lsl (w.aw_tries - 1)) in
  w.aw_timer <-
    Some
      (Machine.after t.machine delay (fun () ->
           w.aw_timer <- None;
           if w.aw_tries >= arp_max_tries then begin
             Hashtbl.remove t.arp_pending ip;
             t.arp_failures <- t.arp_failures + 1;
             List.iter (fun (_, on_drop) -> on_drop ()) (List.rev w.aw_waiters);
             w.aw_waiters <- []
           end
           else begin
             w.aw_tries <- w.aw_tries + 1;
             arp_request t ip;
             arp_schedule_retry t ip w
           end))

let arp_resolve t ip ?(on_drop = fun () -> ()) k =
  match Hashtbl.find_opt t.arp_cache ip with
  | Some mac -> k mac
  | None -> (
      match Hashtbl.find_opt t.arp_pending ip with
      | Some w ->
          if List.length w.aw_waiters >= arp_max_waiters then begin
            match List.rev w.aw_waiters with
            | (_, oldest_drop) :: rest ->
                t.arp_waiters_dropped <- t.arp_waiters_dropped + 1;
                oldest_drop ();
                w.aw_waiters <- List.rev rest
            | [] -> ()
          end;
          w.aw_waiters <- (k, on_drop) :: w.aw_waiters
      | None ->
          let w = { aw_waiters = [ (k, on_drop) ]; aw_tries = 1; aw_timer = None } in
          Hashtbl.replace t.arp_pending ip w;
          arp_request t ip;
          arp_schedule_retry t ip w)

let arp_rcv t skb =
  let d = skb.Skbuff.skb_data and o = skb.Skbuff.head in
  if skb.Skbuff.len >= 28 then begin
    let op = Bytes.get_uint16_be d (o + 6) in
    let sender_mac = Bytes.sub_string d (o + 8) 6 in
    let sender_ip = get32be d (o + 14) in
    let target_ip = get32be d (o + 24) in
    Hashtbl.replace t.arp_cache sender_ip sender_mac;
    (match Hashtbl.find_opt t.arp_pending sender_ip with
    | Some w ->
        Hashtbl.remove t.arp_pending sender_ip;
        (match w.aw_timer with
        | Some ev -> World.cancel ev; w.aw_timer <- None
        | None -> ());
        List.iter (fun (k, _) -> k sender_mac) (List.rev w.aw_waiters)
    | None -> ());
    if op = 1 && Int32.equal target_ip t.my_ip then
      (* The reply is best-effort: the requester re-asks if it never comes. *)
      try arp_output t ~op:2 ~dst_mac:sender_mac ~target_mac:sender_mac ~target_ip:sender_ip
      with Memfault.Nomem -> ()
  end;
  Skbuff.skb_free skb

(* ---- IP ---- *)

(* [skb] carries the transport payload; push the IP header and transmit.
   [free_after] retires the buffer once the frame is on the wire — also
   when ARP defers the transmit into a continuation; frames kept for
   retransmission must not set it. *)
let ip_output t ?(free_after = false) ~proto ~dst skb =
  let off = Skbuff.skb_push skb ip_hlen in
  let d = skb.Skbuff.skb_data in
  Bytes.set d off '\x45';
  Bytes.set d (off + 1) '\000';
  Bytes.set_uint16_be d (off + 2) skb.Skbuff.len;
  Bytes.set_uint16_be d (off + 4) t.ip_id;
  t.ip_id <- (t.ip_id + 1) land 0xffff;
  Bytes.set_uint16_be d (off + 6) 0;
  Bytes.set d (off + 8) '\064';
  Bytes.set d (off + 9) (Char.chr proto);
  Bytes.set_uint16_be d (off + 10) 0;
  put32be d (off + 12) t.my_ip;
  put32be d (off + 16) dst;
  Bytes.set_uint16_be d (off + 10) (cksum d ~off ~len:ip_hlen);
  let dev = dev_of t in
  (* If ARP gives up, a fire-and-forget frame is freed here; a frame queued
     for retransmission stays owned by its socket's rexmt machinery (and is
     never handed to the device without a link header — see arm_rexmt). *)
  arp_resolve t dst
    ~on_drop:(fun () -> if free_after then Skbuff.skb_free skb)
    (fun mac ->
      Linux_eth_drv.eth_header skb ~src:dev.Linux_eth_drv.dev_addr ~dst:mac ~proto:0x0800;
      Linux_eth_drv.hard_start_xmit dev skb;
      if free_after then Skbuff.skb_free skb)

(* ---- TCP ---- *)

let next_iss t =
  t.next_iss <- m32 (t.next_iss + 64000);
  t.next_iss

let alloc_port t =
  let used p = List.exists (fun s -> s.lport = p) t.socks in
  let rec pick p = if used p then pick (p + 1) else p in
  let p = pick t.next_port in
  t.next_port <- p + 1;
  p

let inflight s = seq_diff s.snd_nxt s.snd_una

let rcv_window s = max 0 (s.rcv_buf_max - s.rcv_q_bytes)

let rexmt_max_shift = 6

(* The retransmission-queue bound: 64 whole frames, as 2.0 shipped — but a
   window-scaled connection needs the queue to cover the window or the
   guard, not the peer, becomes the throughput ceiling. *)
let rexmt_q_limit s =
  if s.snd_scale = 0 then 64
  else max 64 (2 * min s.cwnd s.snd_wnd / max 1 s.smss)

(* The scale we ask for on SYN: smallest shift that makes the largest
   buffer autotuning could reach representable in the 16-bit field. *)
let request_scale () =
  let rec go sc = if sc < 14 && 0xffff lsl sc < Cost.config.tcp_sockbuf_max then go (sc + 1) else sc in
  go 0

(* Peer offered wscale on its SYN; if the knob is on we offered (or will
   offer) too, so windows are scaled from the end of the handshake. *)
let setup_scaling s ~peer =
  s.peer_wscale <- min 14 peer;
  if Cost.config.tcp_wscale then begin
    s.snd_scale <- min 14 peer;
    s.rcv_scale <- request_scale ();
    s.ssthresh <- max s.ssthresh (0xffff lsl s.snd_scale)
  end

(* Current readiness, an [Io_if.aio_*] bitmask.  Mirrors what the blocking
   calls below would do without sleeping: readable = recv or accept
   returns immediately, writable = send can emit at least one segment,
   exception = a pending socket error. *)
let sock_readiness s =
  let rd =
    match s.state with
    | Listen -> not (Queue.is_empty s.backlog_q)
    | Closed -> true
    | _ -> s.rcv_q_bytes > 0 || s.peer_fin
  in
  let wr =
    match s.state with
    | Established | Close_wait ->
        inflight s < min s.cwnd s.snd_wnd && s.rexmt_q_len <= rexmt_q_limit s
    | Closed -> true
    | _ -> false
  in
  let ex = s.err <> None in
  (if rd then Io_if.aio_read else 0)
  lor (if wr then Io_if.aio_write else 0)
  lor if ex then Io_if.aio_exception else 0

let readable_bytes s = s.rcv_q_bytes

(* Every protocol event funnels through here: wake the blocking waiter and
   run any asyncio listeners.  The listener scan is a no-op when nothing is
   registered, so the blocking-only paths Table 1/2 measures are
   untouched. *)
let wake s =
  Sleep_record.wakeup s.sleep;
  match s.listeners with
  | [] -> ()
  | ls ->
      let ready = sock_readiness s in
      List.iter (fun l -> if ready land l.rl_mask <> 0 then l.rl_fn ready) ls

let add_listener s ~mask f =
  let id = s.next_lid in
  s.next_lid <- id + 1;
  s.listeners <- s.listeners @ [ { rl_id = id; rl_mask = mask; rl_fn = f } ];
  id

let remove_listener s id = s.listeners <- List.filter (fun l -> l.rl_id <> id) s.listeners
let set_nonblock s v = s.nb <- v

(* ---- SYN cookies / overload reclaim (Cost.config.syn_defense etc.) ----
   The same wire format as the FreeBSD stack (different secret): bits 1..0
   of the ISS index the MSS class table, bits 31..2 hash the 4-tuple, so
   a completing ACK can rebuild the connection after the syncache entry
   was evicted. *)

let cookie_mss_classes = [| 536; 1160; 1460; 8960 |]

let cookie_mss_class mss =
  let rec go i best =
    if i >= Array.length cookie_mss_classes then best
    else if cookie_mss_classes.(i) <= mss then go (i + 1) i
    else best
  in
  go 1 0

let cookie_hash t ~raddr ~rport ~lport =
  let mix h k =
    let h = h lxor (m32 (k * 0x9e3779b1)) in
    let h = m32 ((h lxor (h lsr 15)) * 0x85ebca6b) in
    h lxor (h lsr 13)
  in
  let h = mix (t.cookie_secret land 0xffffffff) (Int32.to_int raddr land 0xffffffff) in
  let h = mix h rport in
  let h = mix h lport in
  h land 0x3fffffff

let syn_cookie t ~raddr ~rport ~lport ~mss =
  m32 ((cookie_hash t ~raddr ~rport ~lport lsl 2) lor cookie_mss_class mss)

let check_cookie t ~raddr ~rport ~lport ~iss =
  if (iss lsr 2) land 0x3fffffff = cookie_hash t ~raddr ~rport ~lport then
    Some cookie_mss_classes.(iss land 3)
  else None

(* Retire one TIME_WAIT sock early (reclaim paths); its pending 2xMSL
   callback is a no-op once the state moved off Time_wait. *)
let lx_close_tw t s =
  if s.state = Time_wait then begin
    s.state <- Closed;
    t.time_wait_reclaimed <- t.time_wait_reclaimed + 1;
    t.socks <- List.filter (fun x -> x != s) t.socks;
    sock_hash_remove t s;
    wake s
  end

let lx_enter_time_wait t s =
  s.state <- Time_wait;
  t.tw_list <- t.tw_list @ [ s ]; (* oldest first *)
  if Cost.config.tw_max > 0 then begin
    t.tw_list <- List.filter (fun x -> x.state = Time_wait) t.tw_list;
    let excess = List.length t.tw_list - Cost.config.tw_max in
    if excess > 0 then begin
      List.iteri (fun i x -> if i < excess then lx_close_tw t x) t.tw_list;
      t.tw_list <- List.filter (fun x -> x.state = Time_wait) t.tw_list
    end
  end;
  ignore
    (after_home t s time_wait_ns (fun () ->
         if s.state = Time_wait then begin
           s.state <- Closed;
           t.socks <- List.filter (fun x -> x != s) t.socks;
           sock_hash_remove t s;
           t.tw_list <- List.filter (fun x -> x != s) t.tw_list
         end))

(* Memory pressure: shed the coldest protocol state — every TIME_WAIT
   sock and every cached half-open handshake (cookies still complete
   those statelessly). *)
let lx_reclaim t =
  let tw = t.tw_list in
  t.tw_list <- [];
  List.iter (fun s -> lx_close_tw t s) tw;
  List.iter
    (fun s ->
      if s.syn_cache <> [] then begin
        t.syncache_evicted <- t.syncache_evicted + List.length s.syn_cache;
        s.syn_cache <- []
      end)
    t.socks

(* Token bucket on generated error responses (the RST answering a segment
   no sock claims): rate and depth are Cost.config.icmp_ratelimit per
   second; 0 = unlimited, the donor behavior. *)
let lx_err_allowed t =
  let rate = Cost.config.icmp_ratelimit in
  if rate = 0 then true
  else begin
    let now = Machine.now t.machine in
    let elapsed = now - t.err_tok_ts in
    t.err_tok_ts <- now;
    t.err_tokens <-
      Float.min (float_of_int rate)
        (t.err_tokens +. (float_of_int rate *. float_of_int elapsed /. 1e9));
    if t.err_tokens >= 1.0 then begin
      t.err_tokens <- t.err_tokens -. 1.0;
      true
    end
    else begin
      t.rst_ratelimited <- t.rst_ratelimited + 1;
      false
    end
  end

(* Build one segment in a fresh contiguous skb.  [payload] is copied in
   (the send-path copy); the finished frame is kept for retransmission when
   [queue] is set.  Returns whether a frame actually went out: under the
   allocation-failure injector a refused skb is a counted drop — the same
   recovery story as a frame lost on the wire — and triggers a reclaim. *)
let rec tcp_xmit t s ~seq ~flags ~payload ~queue =
  let plen = match payload with Some (_, _, len) -> len | None -> 0 in
  (* SYN options — only with Cost.config.tcp_wscale, so the 2.0-faithful
     bare-header wire format (and the Table 1/2 baselines) is untouched by
     default.  A SYN-ACK offers wscale only if the peer's SYN did. *)
  let syn = flags land th_syn <> 0 in
  let emit_opts =
    syn && Cost.config.tcp_wscale
    && (flags land th_ack = 0 || s.peer_wscale >= 0)
  in
  let opt_len = if emit_opts then 8 else 0 in
  let hlen = tcp_hlen + opt_len in
  match Skbuff.alloc_skb (eth_hlen + ip_hlen + hlen + plen + 16) with
  | exception Memfault.Nomem ->
      t.nomem_drops <- t.nomem_drops + 1;
      lx_reclaim t;
      false
  | skb ->
  Cost.charge_cycles Cost.config.linux_tcp_pkt_cycles;
  t.segs_out <- t.segs_out + 1; (shard t).sh_segs_out <- (shard t).sh_segs_out + 1;
  Skbuff.skb_reserve skb (eth_hlen + ip_hlen);
  let off = Skbuff.skb_put skb (hlen + plen) in
  let d = skb.Skbuff.skb_data in
  Bytes.set_uint16_be d off s.lport;
  Bytes.set_uint16_be d (off + 2) s.rport;
  Bytes.set_int32_be d (off + 4) (Int32.of_int (m32 seq));
  Bytes.set_int32_be d (off + 8)
    (Int32.of_int (if flags land th_ack <> 0 then m32 s.rcv_nxt else 0));
  Bytes.set d (off + 12) (Char.chr ((hlen / 4) lsl 4));
  Bytes.set d (off + 13) (Char.chr flags);
  (* RFC 1323: the window field is scaled except on SYN segments. *)
  let wfield =
    if syn then min 0xffff (rcv_window s)
    else min 0xffff (rcv_window s asr s.rcv_scale)
  in
  Bytes.set_uint16_be d (off + 14) wfield;
  s.adv_wnd <- (if syn then wfield else wfield lsl s.rcv_scale);
  Bytes.set_uint16_be d (off + 16) 0;
  Bytes.set_uint16_be d (off + 18) 0;
  if emit_opts then begin
    (* MSS, then NOP + the 3-byte wscale option. *)
    Bytes.set d (off + 20) '\002';
    Bytes.set d (off + 21) '\004';
    Bytes.set_uint16_be d (off + 22) s.smss;
    Bytes.set d (off + 24) '\001';
    Bytes.set d (off + 25) '\003';
    Bytes.set d (off + 26) '\003';
    Bytes.set d (off + 27) (Char.chr (request_scale () land 0xff))
  end;
  (match payload with
  | Some (src, pos, len) ->
      Cost.charge_copy len;
      Bytes.blit src pos d (off + hlen) len
  | None -> ());
  let total = hlen + plen in
  Bytes.set_uint16_be d (off + 16)
    (cksum d ~off ~len:total
       ~init:(pseudo ~src:t.my_ip ~dst:s.raddr ~proto:6 ~len:total));
  let seg_bytes =
    (if flags land th_syn <> 0 then 1 else 0)
    + (if flags land th_fin <> 0 then 1 else 0)
    + plen
  in
  let queued = queue && seg_bytes > 0 in
  if queued then begin
    if s.rexmt_q = [] then s.rexmt_stamp <- Machine.now t.machine;
    s.rexmt_q <- s.rexmt_q @ [ { rx_seq = seq; rx_end = m32 (seq + seg_bytes); rx_frame = skb } ];
    s.rexmt_q_len <- s.rexmt_q_len + 1;
    (* Start an RTT sample on fresh data when none is in flight.  Only
       tcp_xmit sends first transmissions — every retransmit path resends
       the queued frame directly and discards the pending sample, so a
       sample can never cover a retransmitted range (Karn's rule). *)
    if s.rtt_ts = 0 then begin
      s.rtt_ts <- Machine.now t.machine;
      s.rtt_seq <- m32 (seq + seg_bytes)
    end
  end;
  (* Unqueued frames (pure ACKs, RSTs) die on the wire; queued ones are
     retired when the ACK covers them. *)
  ip_output t ~free_after:(not queued) ~proto:6 ~dst:s.raddr skb;
  arm_rexmt t s;
  true

(* Retransmission: resend the oldest unacked frame as-is.  The timer backs
   off exponentially (Linux 2.0's coarse doubling) and, after enough barren
   fires, gives the connection up — the backstop that stops a dead peer or
   an unresolvable ARP entry from retransmitting forever. *)
and arm_rexmt t s =
  if (not s.rexmt_armed) && s.rexmt_q <> [] then begin
    s.rexmt_armed <- true;
    let rec schedule delay =
      ignore
        (after_home t s delay (fun () ->
             match s.rexmt_q with
             | [] -> s.rexmt_armed <- false
             | entry :: _ ->
                 let full = s.rto_ns * (1 lsl min s.rexmt_shift rexmt_max_shift) in
                 let age = Machine.now t.machine - s.rexmt_stamp in
                 if age < full then
                   (* The head changed (or was sent) after this fire was
                      armed — it has not actually waited a full RTO.  Check
                      again when it will have. *)
                   schedule (full - age)
                 else if s.rexmt_shift >= rexmt_max_shift then begin
                   (* Give up: error the socket and free every queued frame. *)
                   s.rexmt_armed <- false;
                   t.rexmt_give_ups <- t.rexmt_give_ups + 1;
                   List.iter (fun e -> Skbuff.skb_free e.rx_frame) s.rexmt_q;
                   s.rexmt_q <- [];
                   s.rexmt_q_len <- 0;
                   s.err <- Some Error.Timedout;
                   s.state <- Closed;
                   t.socks <- List.filter (fun x -> x != s) t.socks;
                   sock_hash_remove t s;
                   wake s
                 end
                 else begin
                   t.rexmits <- t.rexmits + 1; (shard t).sh_rexmits <- (shard t).sh_rexmits + 1;
                   s.rexmt_shift <- s.rexmt_shift + 1;
                   s.ssthresh <- max (2 * s.smss) (min s.cwnd s.snd_wnd / 2);
                   s.cwnd <- s.smss;
                   (* Karn: a retransmission makes any pending RTT sample
                      ambiguous, and ends fast recovery. *)
                   s.rtt_ts <- 0;
                   s.dupacks <- 0;
                   s.rexmt_stamp <- Machine.now t.machine;
                   (* The queued frame carries IP+ether headers from its first
                      transmission — unless ARP never resolved, in which case
                      the header was never built and the frame must wait. *)
                   if entry.rx_frame.Skbuff.link_ready then
                     Linux_eth_drv.hard_start_xmit (dev_of t) entry.rx_frame;
                   schedule (s.rto_ns * (1 lsl min s.rexmt_shift rexmt_max_shift))
                 end))
    in
    schedule (s.rto_ns * (1 lsl min s.rexmt_shift rexmt_max_shift))
  end

(* Zero-window persist probing (the BSD stack's persist_timeout, ported):
   a sender parked in [send] with nothing in flight has no retransmit
   timer, so a lost window-update ACK would otherwise strand it forever.
   Probe with one byte *below* snd_una — both stacks drop it as a
   duplicate and answer with an ACK carrying the current window, so no
   sequence space is consumed and no state can desynchronize. *)
and arm_persist t s =
  if not s.persist_armed then begin
    s.persist_armed <- true;
    let delay = s.rto_ns * (1 lsl min s.persist_shift rexmt_max_shift) in
    ignore
      (after_home t s delay (fun () ->
           s.persist_armed <- false;
           let blocked =
             (match s.state with Established | Close_wait -> true | _ -> false)
             && s.rexmt_q_len = 0
             && min s.cwnd s.snd_wnd <= inflight s
           in
           if blocked then begin
             t.persist_probes <- t.persist_probes + 1;
             s.persist_shift <- min (s.persist_shift + 1) rexmt_max_shift;
             let probe = Bytes.make 1 '\000' in
             ignore
               (tcp_xmit t s ~seq:(m32 (s.snd_nxt - 1)) ~flags:th_ack
                  ~payload:(Some (probe, 0, 1)) ~queue:false);
             arm_persist t s
           end
           else s.persist_shift <- 0))
  end

let send_ack t s =
  (* A pure ACK refused by the allocator is recovered exactly like one
     lost on the wire: the peer retransmits. *)
  ignore (tcp_xmit t s ~seq:s.snd_nxt ~flags:th_ack ~payload:None ~queue:false)

let send_rst_for t ~src ~sport ~dport ~ack =
  (* A minimal unsocketed RST. *)
  let fake =
    { stack = t; state = Closed; home_cpu = 0; lport = dport; rport = sport; raddr = src; iss = 0;
      snd_una = ack; snd_nxt = ack; snd_wnd = 0; cwnd = mss; ssthresh = 0;
      smss = Cost.config.tcp_mss; snd_scale = 0; rcv_scale = 0; peer_wscale = -1;
      dupacks = 0; recover = 0; srtt_ns = 0; rttvar_ns = 0; rto_ns = rexmt_ns;
      rtt_seq = 0; rtt_ts = 0;
      fin_queued = false; rexmt_q = []; rexmt_q_len = 0; persist_armed = true;
      persist_shift = 0; rcv_nxt = 0; rcv_q = Queue.create ();
      rcv_q_bytes = 0; ooo_q = []; ooo_bytes = 0;
      rcv_buf_max = default_window; adv_wnd = 0;
      rxclump_ts = 0; rxclump_bytes = 0;
      head_consumed = 0; peer_fin = false; backlog_q = Queue.create ();
      backlog = 0; parent = None; syn_cache = []; err = None;
      sleep = Sleep_record.create ();
      rexmt_armed = true; rexmt_stamp = 0; rexmt_shift = 0; nb = false; listeners = []; next_lid = 1 }
  in
  ignore (tcp_xmit t fake ~seq:ack ~flags:th_rst ~payload:None ~queue:false)

let new_sock t =
  let s =
    { stack = t; state = Closed; home_cpu = 0; lport = 0; rport = 0; raddr = 0l; iss = 0; snd_una = 0;
      snd_nxt = 0; snd_wnd = default_window; cwnd = Cost.config.tcp_mss;
      ssthresh = 64 * 1024;
      smss = Cost.config.tcp_mss; snd_scale = 0; rcv_scale = 0; peer_wscale = -1;
      dupacks = 0; recover = 0; srtt_ns = 0; rttvar_ns = 0; rto_ns = rexmt_ns;
      rtt_seq = 0; rtt_ts = 0;
      fin_queued = false; rexmt_q = []; rexmt_q_len = 0; persist_armed = false;
      persist_shift = 0; rcv_nxt = 0; rcv_q = Queue.create ();
      rcv_q_bytes = 0; ooo_q = []; ooo_bytes = 0;
      rcv_buf_max = default_window; adv_wnd = default_window;
      rxclump_ts = 0; rxclump_bytes = 0;
      head_consumed = 0; peer_fin = false; backlog_q = Queue.create ();
      backlog = 0; parent = None; syn_cache = []; err = None;
      sleep = Sleep_record.create ~name:"lx_sock" ();
      rexmt_armed = false; rexmt_stamp = 0; rexmt_shift = 0; nb = false; listeners = []; next_lid = 1 }
  in
  t.socks <- s :: t.socks;
  s

let detach t s =
  t.socks <- List.filter (fun x -> x != s) t.socks;
  sock_hash_remove t s

let find_sock t ~src ~sport ~dport =
  let connected =
    if Cost.config.pcb_hash then begin
      match t.last_sock with
      | Some s
        when s.lport = dport && s.rport = sport && Int32.equal s.raddr src
             && s.state <> Listen ->
          Cost.count_pcb_cache_hit ();
          Some s
      | _ -> (
          Cost.count_pcb_cache_miss ();
          match Hashtbl.find_opt t.sock_hash (src, sport, dport) with
          | Some s when s.state <> Listen ->
              t.last_sock <- Some s;
              Some s
          | _ -> None)
    end
    else
      List.find_opt
        (fun s ->
          s.lport = dport && s.rport = sport && Int32.equal s.raddr src && s.state <> Listen)
        t.socks
  in
  match connected with
  | Some _ as r -> r
  | None -> List.find_opt (fun s -> s.lport = dport && s.state = Listen) t.socks

(* A SYN-ACK with no sock behind it (Cost.config.syn_defense): seq/ack and
   MSS come from the syncache entry or the cookie.  Never queued — losing
   it just means the client retransmits its SYN — and never offers wscale
   (the cookie has no room to remember the peer's scale). *)
let lx_send_synack t ~raddr ~rport ~lport ~iss ~irs ~mss =
  let fake =
    { stack = t; state = Syn_recv; home_cpu = 0; lport; rport; raddr; iss;
      snd_una = iss; snd_nxt = iss; snd_wnd = 0; cwnd = mss; ssthresh = 0;
      smss = mss; snd_scale = 0; rcv_scale = 0; peer_wscale = -1;
      dupacks = 0; recover = 0; srtt_ns = 0; rttvar_ns = 0; rto_ns = rexmt_ns;
      rtt_seq = 0; rtt_ts = 0;
      fin_queued = false; rexmt_q = []; rexmt_q_len = 0; persist_armed = true;
      persist_shift = 0; rcv_nxt = m32 (irs + 1); rcv_q = Queue.create ();
      rcv_q_bytes = 0; ooo_q = []; ooo_bytes = 0;
      rcv_buf_max = default_window; adv_wnd = 0;
      rxclump_ts = 0; rxclump_bytes = 0;
      head_consumed = 0; peer_fin = false; backlog_q = Queue.create ();
      backlog = 0; parent = None; syn_cache = []; err = None;
      sleep = Sleep_record.create ();
      rexmt_armed = true; rexmt_stamp = 0; rexmt_shift = 0; nb = false; listeners = []; next_lid = 1 }
  in
  ignore (tcp_xmit t fake ~seq:iss ~flags:(th_syn lor th_ack) ~payload:None ~queue:false)

(* A SYN under the defense: cache the handshake (bounded, oldest evicted)
   and answer with a cookie ISS.  No child sock exists until the ACK
   returns, so embryonic connections cost the listener nothing. *)
let lx_syncache_add t s ~src ~sport ~seq ~mss =
  let mss' = match mss with Some v -> min Cost.config.tcp_mss v | None -> Cost.config.tcp_mss in
  match
    List.find_opt
      (fun e -> Int32.equal e.lsc_raddr src && e.lsc_rport = sport)
      s.syn_cache
  with
  | Some e ->
      (* Retransmitted SYN: re-answer from the entry. *)
      lx_send_synack t ~raddr:src ~rport:sport ~lport:s.lport ~iss:e.lsc_iss
        ~irs:e.lsc_irs ~mss:e.lsc_mss
  | None ->
      let iss = syn_cookie t ~raddr:src ~rport:sport ~lport:s.lport ~mss:mss' in
      s.syn_cache <-
        { lsc_raddr = src; lsc_rport = sport; lsc_irs = seq; lsc_iss = iss;
          lsc_mss = mss' }
        :: s.syn_cache;
      t.syncache_added <- t.syncache_added + 1;
      let cap = max 1 Cost.config.syncache_size in
      if List.length s.syn_cache > cap then begin
        s.syn_cache <- List.filteri (fun i _ -> i < cap) s.syn_cache;
        t.syncache_evicted <- t.syncache_evicted + 1
      end;
      lx_send_synack t ~raddr:src ~rport:sport ~lport:s.lport ~iss ~irs:seq ~mss:mss'

(* The completing ACK: from the syncache entry if it survived, else by
   validating the cookie echoed in ack-1.  Only now is a sock created —
   directly Established, straight onto the accept backlog. *)
let lx_syncache_expand t s ~src ~sport ~seq ~ack ~win =
  let entry =
    List.find_opt
      (fun e -> Int32.equal e.lsc_raddr src && e.lsc_rport = sport)
      s.syn_cache
  in
  let params =
    match entry with
    | Some e when ack = m32 (e.lsc_iss + 1) && seq = m32 (e.lsc_irs + 1) ->
        s.syn_cache <- List.filter (fun x -> x != e) s.syn_cache;
        t.syncache_completed <- t.syncache_completed + 1;
        Some (e.lsc_iss, e.lsc_irs, e.lsc_mss)
    | Some _ -> None (* right 4-tuple, wrong numbers: bogus *)
    | None -> (
        match
          check_cookie t ~raddr:src ~rport:sport ~lport:s.lport ~iss:(m32 (ack - 1))
        with
        | Some mss ->
            t.syncookies_validated <- t.syncookies_validated + 1;
            Some (m32 (ack - 1), m32 (seq - 1), mss)
        | None -> None)
  in
  match params with
  | None ->
      t.syncookies_rejected <- t.syncookies_rejected + 1;
      if lx_err_allowed t then send_rst_for t ~src ~sport ~dport:s.lport ~ack
  | Some (iss, irs, mss) ->
      if Queue.length s.backlog_q >= max 1 s.backlog then
        (* Accept queue full: drop the ACK; the peer retransmits it and the
           cookie completes once there is room. *)
        t.listen_overflow <- t.listen_overflow + 1
      else begin
        let c = new_sock t in
        c.state <- Established;
        c.lport <- s.lport;
        c.rport <- sport;
        c.raddr <- src;
        sock_hash_add t c;
        c.parent <- Some s;
        c.iss <- iss;
        c.snd_una <- m32 (iss + 1);
        c.snd_nxt <- m32 (iss + 1);
        c.rcv_nxt <- m32 (irs + 1);
        c.smss <- mss;
        c.snd_wnd <- win;
        c.cwnd <- 2 * c.smss;
        with_accept_lock t (fun () -> Queue.add c s.backlog_q);
        wake s;
        wake c
      end

(* Retire every queued frame the ACK covers. *)
let drop_acked s ack =
  let acked, live = List.partition (fun e -> not (seq_gt e.rx_end ack)) s.rexmt_q in
  List.iter (fun e -> Skbuff.skb_free e.rx_frame) acked;
  s.rexmt_q <- live;
  s.rexmt_q_len <- s.rexmt_q_len - List.length acked

(* Resend the oldest unacked frame as-is — same mechanics as the RTO path.
   Karn: whatever RTT sample was pending is now ambiguous. *)
let retransmit_head t s =
  s.rtt_ts <- 0;
  match s.rexmt_q with
  | [] -> ()
  | e :: _ ->
      t.rexmits <- t.rexmits + 1; (shard t).sh_rexmits <- (shard t).sh_rexmits + 1;
      s.rexmt_stamp <- Machine.now t.machine;
      if e.rx_frame.Skbuff.link_ready then
        Linux_eth_drv.hard_start_xmit (dev_of t) e.rx_frame

(* Jacobson/Karels in nanoseconds; the RTO keeps 2.0's coarse 300 ms floor
   so the clean-path timer schedule is exactly the donor's. *)
let tcp_rtt_sample s m =
  if s.srtt_ns = 0 then begin
    s.srtt_ns <- m;
    s.rttvar_ns <- m / 2
  end
  else begin
    let err = m - s.srtt_ns in
    s.srtt_ns <- max 1 (s.srtt_ns + (err asr 3));
    s.rttvar_ns <- max 1 (s.rttvar_ns + ((abs err - s.rttvar_ns) asr 2))
  end;
  s.rto_ns <- max rexmt_ns (s.srtt_ns + (4 * s.rttvar_ns))

(* Drop acknowledged segments from the retransmission queue. *)
let ack_advance t s ack =
  if seq_gt ack s.snd_una then begin
    s.snd_una <- ack;
    drop_acked s ack;
    s.rexmt_shift <- 0;
    s.rexmt_stamp <- Machine.now t.machine;
    if s.cwnd < s.ssthresh then s.cwnd <- s.cwnd + s.smss
    else s.cwnd <- s.cwnd + max 1 (s.smss * s.smss / s.cwnd);
    ignore t;
    wake s
  end

(* An ACK that advances snd_una: sample the RTT (Karn-guarded), then either
   continue NewReno recovery on a partial ACK or leave it and grow cwnd. *)
let tcp_ack t s ack =
  if s.rtt_ts > 0 && seq_geq ack s.rtt_seq then begin
    tcp_rtt_sample s (Machine.now t.machine - s.rtt_ts);
    s.rtt_ts <- 0
  end;
  if s.dupacks >= 3 && seq_lt ack s.recover then begin
    (* NewReno partial ACK: the next segment of the same window is lost
       too — plug it now, deflate by the amount acked, stay in recovery. *)
    let acked = seq_diff ack s.snd_una in
    s.snd_una <- ack;
    drop_acked s ack;
    s.rexmt_shift <- 0;
    s.rexmt_stamp <- Machine.now t.machine;
    retransmit_head t s;
    s.cwnd <- max s.smss (s.cwnd - acked + s.smss);
    wake s
  end
  else begin
    (* A full ACK leaves fast recovery: deflate to ssthresh. *)
    if s.dupacks >= 3 then s.cwnd <- min s.cwnd s.ssthresh;
    s.dupacks <- 0;
    ack_advance t s ack
  end

(* Every ACK funnels through here (general path and fastpath alike):
   window update, dup-ACK counting with NewReno fast retransmit, and the
   zero-window-reopen wake that pairs with the persist timer. *)
let tcp_ack_in t s ~ack ~win ~dlen =
  let old_wnd = s.snd_wnd in
  s.snd_wnd <- win;
  if seq_gt ack s.snd_una then tcp_ack t s ack
  else if dlen = 0 && win = old_wnd && ack = s.snd_una && s.rexmt_q_len > 0 then begin
    s.dupacks <- s.dupacks + 1;
    if s.dupacks = 3 then begin
      s.ssthresh <- max (2 * s.smss) (min s.cwnd s.snd_wnd / 2);
      s.recover <- s.snd_nxt;
      retransmit_head t s;
      s.cwnd <- s.ssthresh + (3 * s.smss);
      wake s
    end
    else if s.dupacks > 3 then begin
      s.cwnd <- s.cwnd + s.smss;
      wake s
    end
  end;
  (* A pure window update acks nothing, so ack_advance never wakes the
     sender it reopens the window for — wake it here (narrowly, so the
     clean path is untouched: a wake with no sleeper is a no-op). *)
  if s.snd_wnd > old_wnd && old_wnd < s.smss then wake s

(* Header prediction (Cost.config.tcp_fastpath), the Linux analog: an
   established-state segment with no SYN/FIN/RST and an ACK, whose data —
   if any — is exactly in order and fits the receive queue.  Everything
   admitted is handled with byte-for-byte the same protocol actions the
   general Established arm would take; only the cycles charged differ.
   (Pure ACKs always qualify: 2.0's general arm treats every ACK alike.) *)
let fastpath_pred s ~seq ~flags ~dlen =
  s.state = Established
  && flags land (th_syn lor th_fin lor th_rst) = 0
  && flags land th_ack <> 0
  && (dlen = 0 || (seq = s.rcv_nxt && s.rcv_q_bytes + dlen <= s.rcv_buf_max))

(* Receive-buffer autotuning (Cost.config.tcp_autotune): arrivals come in
   clumps of at most one window, separated by RTT-scale gaps when the flow
   is window-limited; a clump that covered most of the buffer means our
   advertised window was the limiter, so double it (capped).  A
   path-limited flow arrives smoothly — no gaps, no growth. *)
let autotune_gap_ns = 2_000_000

let autotune_rcv t s ~dlen =
  if Cost.config.tcp_autotune then begin
    let now = Machine.now t.machine in
    if s.rxclump_ts > 0 && now - s.rxclump_ts > autotune_gap_ns then begin
      if s.rxclump_bytes * 2 >= s.rcv_buf_max then
        s.rcv_buf_max <- min Cost.config.tcp_sockbuf_max (2 * s.rcv_buf_max);
      s.rxclump_bytes <- 0
    end;
    s.rxclump_ts <- now;
    s.rxclump_bytes <- s.rxclump_bytes + dlen
  end

(* Out-of-order segment: hold it for reassembly (wscale mode only; the
   donor stack dropped these, go-back-N).  Returns whether the skb was
   stored.  Counters keep their netstat meaning: rcvoo/rcvdup/rcvfull
   count only segments actually dropped. *)
let ooo_insert t s ~seq skb =
  let dlen = skb.Skbuff.len in
  if not Cost.config.tcp_wscale then begin
    t.rcvoo <- t.rcvoo + 1; (shard t).sh_rcvoo <- (shard t).sh_rcvoo + 1;
    false
  end
  else if List.exists (fun (q, _) -> q = seq) s.ooo_q then begin
    t.rcvdup <- t.rcvdup + 1; (shard t).sh_rcvdup <- (shard t).sh_rcvdup + 1;
    false
  end
  else if s.ooo_bytes + dlen > s.rcv_buf_max then begin
    t.rcvfull <- t.rcvfull + 1;
    false
  end
  else begin
    let rec ins = function
      | [] -> [ (seq, skb) ]
      | (q, _) :: _ as l when seq_lt seq q -> (seq, skb) :: l
      | e :: rest -> e :: ins rest
    in
    s.ooo_q <- ins s.ooo_q;
    s.ooo_bytes <- s.ooo_bytes + dlen;
    true
  end

(* After an in-order append advanced rcv_nxt, pull now-contiguous segments
   out of the reassembly queue (a no-op when it is empty). *)
let rec ooo_drain s =
  match s.ooo_q with
  | (q, skb) :: rest when seq_geq s.rcv_nxt q ->
      s.ooo_q <- rest;
      let len = skb.Skbuff.len in
      s.ooo_bytes <- s.ooo_bytes - len;
      let past = seq_diff s.rcv_nxt q in
      if past >= len then Skbuff.skb_free skb
      else begin
        if past > 0 then ignore (Skbuff.skb_pull skb past);
        let n = skb.Skbuff.len in
        Queue.add skb s.rcv_q;
        s.rcv_q_bytes <- s.rcv_q_bytes + n;
        s.rcv_nxt <- m32 (s.rcv_nxt + n)
      end;
      ooo_drain s
  | _ -> ()

let tcp_rcv t skb ~src =
  let fast = Cost.config.tcp_fastpath in
  Cost.charge_cycles
    (if fast then Cost.config.tcp_fastpath_cycles else Cost.config.linux_tcp_pkt_cycles);
  (* A segment that misses the prediction pays the balance of the general
     per-segment protocol cost, preserving the flags-off charge total for
     every slow-path segment. *)
  let slowpath () =
    if fast then
      Cost.charge_cycles
        (max 0 (Cost.config.linux_tcp_pkt_cycles - Cost.config.tcp_fastpath_cycles))
  in
  t.segs_in <- t.segs_in + 1; (shard t).sh_segs_in <- (shard t).sh_segs_in + 1;
  let d = skb.Skbuff.skb_data and o = skb.Skbuff.head in
  (* The buffer is consumed here unless it lands on a receive queue. *)
  let stored = ref false in
  (if skb.Skbuff.len < tcp_hlen then slowpath ()
  else begin
    let total = skb.Skbuff.len in
    if
      cksum d ~off:o ~len:total ~init:(pseudo ~src ~dst:t.my_ip ~proto:6 ~len:total) <> 0
    then begin
      slowpath ();
      t.tcpbadsum <- t.tcpbadsum + 1
    end
    else begin
      let sport = Bytes.get_uint16_be d o in
      let dport = Bytes.get_uint16_be d (o + 2) in
      let seq = Int32.to_int (Bytes.get_int32_be d (o + 4)) land 0xffffffff in
      let ack = Int32.to_int (Bytes.get_int32_be d (o + 8)) land 0xffffffff in
      let hlen = (Char.code (Bytes.get d (o + 12)) lsr 4) * 4 in
      let flags = Char.code (Bytes.get d (o + 13)) in
      let win = Bytes.get_uint16_be d (o + 14) in
      (* TCP options (2.0 sent none; the BSD peer and our own wscale-mode
         SYNs do).  Parsed before the header is stripped. *)
      let mss_opt = ref None in
      let wscale_opt = ref None in
      let rec scan_opts p =
        if p < hlen then begin
          let kind = Char.code (Bytes.get d (o + p)) in
          if kind = 0 then ()
          else if kind = 1 then scan_opts (p + 1)
          else begin
            let olen = if p + 1 < hlen then Char.code (Bytes.get d (o + p + 1)) else 2 in
            if kind = 2 && olen = 4 then mss_opt := Some (Bytes.get_uint16_be d (o + p + 2));
            if kind = 3 && olen = 3 then
              wscale_opt := Some (Char.code (Bytes.get d (o + p + 2)));
            scan_opts (p + max 2 olen)
          end
        end
      in
      if hlen > tcp_hlen then scan_opts tcp_hlen;
      ignore (Skbuff.skb_pull skb hlen);
      let dlen = skb.Skbuff.len in
      match find_sock t ~src ~sport ~dport with
      | None ->
          slowpath ();
          (* The no-sock RST is this stack's generated-error path (it has
             no ICMP): a port scan must not turn the stack into a
             packet amplifier, so it shares the token bucket. *)
          if flags land th_rst = 0 && lx_err_allowed t then
            send_rst_for t ~src ~sport ~dport ~ack
      | Some s when fast && fastpath_pred s ~seq ~flags ~dlen ->
          (* Predicted: ACK bookkeeping plus the in-order append, exactly
             as the Established arm below would do them.  The prediction
             excludes SYN, so the window field is always scale-shifted. *)
          let win = win lsl s.snd_scale in
          Cost.count_fastpath_hit ();
          if dlen > 0 then begin
            t.preddat <- t.preddat + 1;
            (shard t).sh_preddat <- (shard t).sh_preddat + 1
          end
          else begin
            t.predack <- t.predack + 1;
            (shard t).sh_predack <- (shard t).sh_predack + 1
          end;
          tcp_ack_in t s ~ack ~win ~dlen;
          if dlen > 0 then begin
            autotune_rcv t s ~dlen;
            Queue.add skb s.rcv_q;
            stored := true;
            s.rcv_q_bytes <- s.rcv_q_bytes + dlen;
            s.rcv_nxt <- m32 (s.rcv_nxt + dlen);
            ooo_drain s;
            send_ack t s;
            wake s
          end
      | Some s -> (
          (* Past the handshake the 16-bit window field arrives shifted by
             the peer's negotiated scale; SYN windows are never scaled. *)
          let win = if flags land th_syn = 0 then win lsl s.snd_scale else win in
          slowpath ();
          (* Only established-state, no-control-flag segments count as
             prediction fallbacks; handshake and teardown segments are
             inherently general-path. *)
          if
            fast && s.state = Established
            && flags land (th_syn lor th_fin lor th_rst) = 0
          then begin
            Cost.count_fastpath_fallback ();
            t.predfallback <- t.predfallback + 1; (shard t).sh_predfallback <- (shard t).sh_predfallback + 1
          end;
          if flags land th_rst <> 0 then begin
            if s.state <> Listen then begin
              s.err <- Some Error.Connreset;
              s.state <- Closed;
              detach t s;
              wake s
            end
          end
          else
            match s.state with
            | Listen ->
                if Cost.config.syn_defense then begin
                  (* Half-open handshakes live in the syncache (or just in
                     the cookie), not as embryonic socks, so a flood cannot
                     pin the backlog. *)
                  if flags land th_syn <> 0 then
                    lx_syncache_add t s ~src ~sport ~seq ~mss:!mss_opt
                  else if flags land th_ack <> 0 then
                    lx_syncache_expand t s ~src ~sport ~seq ~ack ~win
                end
                else if flags land th_syn <> 0 then begin
                  (* Embryonic children count against the backlog alongside
                     the established-but-unaccepted ones. *)
                  let embryonic =
                    List.length
                      (List.filter
                         (fun c ->
                           c.state = Syn_recv
                           && match c.parent with Some p -> p == s | None -> false)
                         t.socks)
                  in
                  if Queue.length s.backlog_q + embryonic >= max 1 s.backlog then
                    (* Drop the SYN on the floor (the peer retransmits). *)
                    t.listen_overflow <- t.listen_overflow + 1
                  else begin
                  let c = new_sock t in
                  c.state <- Syn_recv;
                  c.lport <- s.lport;
                  c.rport <- sport;
                  c.raddr <- src;
                  sock_hash_add t c;
                  c.parent <- Some s;
                  c.rcv_nxt <- m32 (seq + 1);
                  c.iss <- next_iss t;
                  c.snd_una <- c.iss;
                  c.snd_nxt <- m32 (c.iss + 1);
                  c.snd_wnd <- win;
                  (* Peer options bind before the SYN-ACK goes out, so the
                     SYN-ACK's wscale offer and MSS reflect them. *)
                  (match !mss_opt with
                  | Some v -> c.smss <- min Cost.config.tcp_mss v
                  | None -> ());
                  (match !wscale_opt with
                  | Some sc -> setup_scaling c ~peer:sc
                  | None -> ());
                  if
                    not
                      (tcp_xmit t c ~seq:c.iss ~flags:(th_syn lor th_ack) ~payload:None
                         ~queue:true)
                  then begin
                    (* No skb for the SYN-ACK: forget the child quietly —
                       to the peer this is a lost SYN, and its retransmit
                       starts the handshake over. *)
                    c.state <- Closed;
                    detach t c
                  end
                  end
                end
            | Syn_sent ->
                if flags land th_syn <> 0 && flags land th_ack <> 0 && ack = s.snd_nxt
                then begin
                  s.rcv_nxt <- m32 (seq + 1);
                  (match !mss_opt with
                  | Some v -> s.smss <- min Cost.config.tcp_mss v
                  | None -> ());
                  (match !wscale_opt with
                  | Some sc -> setup_scaling s ~peer:sc
                  | None -> ());
                  s.snd_wnd <- win;
                  ack_advance t s ack;
                  s.state <- Established;
                  s.cwnd <- 2 * s.smss;
                  send_ack t s;
                  wake s
                end
            | Syn_recv ->
                if flags land th_syn <> 0 && flags land th_ack = 0 then
                  (* Retransmitted SYN: our SYN-ACK was lost — resend it now
                     rather than waiting out the coarse timer. *)
                  retransmit_head t s
                else if flags land th_ack <> 0 && ack = s.snd_nxt then begin
                  match s.parent with
                  | Some p when p.state <> Listen ->
                      (* The listener closed while our handshake completed:
                         nobody will ever accept us — reset, don't leak. *)
                      List.iter (fun e -> Skbuff.skb_free e.rx_frame) s.rexmt_q;
                      s.rexmt_q <- [];
                      s.rexmt_q_len <- 0;
                      s.state <- Closed;
                      detach t s;
                      ignore
                        (tcp_xmit t s ~seq:s.snd_nxt ~flags:th_rst ~payload:None
                           ~queue:false)
                  | parent_opt ->
                      s.state <- Established;
                      s.cwnd <- 2 * s.smss;
                      s.snd_wnd <- win;
                      ack_advance t s ack;
                      (match parent_opt with
                      | Some p ->
                          with_accept_lock t (fun () ->
                              Queue.add s p.backlog_q);
                          wake p
                      | None -> ());
                      wake s
                end
            | Established | Fin_wait1 | Fin_wait2 | Close_wait | Last_ack | Time_wait -> (
                if flags land th_ack <> 0 then begin
                  tcp_ack_in t s ~ack ~win ~dlen;
                  (* Our FIN acked? *)
                  if s.fin_queued && s.rexmt_q = [] && ack = s.snd_nxt then
                    match s.state with
                    | Fin_wait1 ->
                        s.state <- Fin_wait2;
                        wake s
                    | Last_ack ->
                        s.state <- Closed;
                        detach t s;
                        wake s
                    | _ -> ()
                end;
                (* Data. *)
                if dlen > 0 then begin
                  if seq = s.rcv_nxt && s.rcv_q_bytes + dlen <= s.rcv_buf_max then begin
                    autotune_rcv t s ~dlen;
                    Queue.add skb s.rcv_q;
                    stored := true;
                    s.rcv_q_bytes <- s.rcv_q_bytes + dlen;
                    s.rcv_nxt <- m32 (s.rcv_nxt + dlen);
                    ooo_drain s;
                    send_ack t s;
                    wake s
                  end
                  else if seq_gt seq s.rcv_nxt then begin
                    (* Beyond the hole: reassemble (wscale mode) or drop as
                       2.0 did; either way the dup-ACK goes out. *)
                    if ooo_insert t s ~seq skb then stored := true;
                    send_ack t s
                  end
                  else begin
                    (* Duplicate or no room: count which, dup-ACK, drop. *)
                    if seq_lt seq s.rcv_nxt then begin
                      t.rcvdup <- t.rcvdup + 1;
                      (shard t).sh_rcvdup <- (shard t).sh_rcvdup + 1
                    end
                    else t.rcvfull <- t.rcvfull + 1;
                    send_ack t s
                  end
                end;
                (* FIN. *)
                if flags land th_fin <> 0 && m32 (seq + dlen) = s.rcv_nxt then begin
                  if not s.peer_fin then begin
                    s.peer_fin <- true;
                    s.rcv_nxt <- m32 (s.rcv_nxt + 1);
                    send_ack t s;
                    (match s.state with
                    | Established -> s.state <- Close_wait
                    | Fin_wait1 | Fin_wait2 -> lx_enter_time_wait t s
                    | _ -> ());
                    wake s
                  end
                  else send_ack t s
                end)
            | Closed -> ())
    end
  end);
  if not !stored then Skbuff.skb_free skb

(* ---- input demux from the driver ---- *)

let ip_rcv t skb =
  let d = skb.Skbuff.skb_data and o = skb.Skbuff.head in
  if skb.Skbuff.len < ip_hlen then Skbuff.skb_free skb
  else begin
    let ihl = (Char.code (Bytes.get d o) land 0xf) * 4 in
    let total = Bytes.get_uint16_be d (o + 2) in
    let proto = Char.code (Bytes.get d (o + 9)) in
    let src = get32be d (o + 12) and dst = get32be d (o + 16) in
    if cksum d ~off:o ~len:ihl <> 0 then begin
      t.ipbadsum <- t.ipbadsum + 1;
      Skbuff.skb_free skb
    end
    else if not (Int32.equal dst t.my_ip) then Skbuff.skb_free skb
    else begin
      (* Trim link padding, strip the header. *)
      Skbuff.skb_trim skb total;
      ignore (Skbuff.skb_pull skb ihl);
      if proto = 6 then tcp_rcv t skb ~src else Skbuff.skb_free skb
    end
  end

let netif_rx t skb =
  ignore (Skbuff.skb_pull skb eth_hlen);
  (* Interrupt level: any allocation failure still unconverted on the input
     path must end here as a counted frame drop, not an exception into the
     driver.  The skb is left to the GC — it may be partially consumed. *)
  try
    match skb.Skbuff.protocol with
    | 0x0800 -> ip_rcv t skb
    | 0x0806 -> arp_rcv t skb
    | _ -> Skbuff.skb_free skb
  with Memfault.Nomem -> t.nomem_drops <- t.nomem_drops + 1

let attach_dev t osenv dev =
  t.dev <- Some dev;
  match Linux_eth_drv.dev_open osenv dev ~rx:(fun skb -> netif_rx t skb) () with
  | Ok () -> ()
  | Result.Error e -> Error.fail e

(* ---- blocking socket calls ---- *)

let socket t = new_sock t
let bind _t s ~port = s.lport <- port

let listen t s ~backlog =
  if s.lport = 0 then s.lport <- alloc_port t;
  s.backlog <- backlog;
  s.state <- Listen

let accept _t s =
  let t = s.stack in
  let rec wait () =
    match with_accept_lock t (fun () -> Queue.take_opt s.backlog_q) with
    | Some c -> Ok c
    | None ->
        if s.state <> Listen then Result.Error Error.Badf
        else if s.nb then Result.Error Error.Wouldblock
        else begin
          Sleep_record.sleep s.sleep;
          wait ()
        end
  in
  wait ()

let connect t s ~dst ~dport =
  if s.lport = 0 then s.lport <- alloc_port t;
  s.raddr <- dst;
  s.rport <- dport;
  sock_hash_add t s;
  s.iss <- next_iss t;
  s.snd_una <- s.iss;
  s.snd_nxt <- m32 (s.iss + 1);
  s.state <- Syn_sent;
  if not (tcp_xmit t s ~seq:s.iss ~flags:th_syn ~payload:None ~queue:true) then begin
    (* The SYN never left and nothing is queued to retransmit it: fail the
       connect with ENOBUFS instead of blocking forever. *)
    s.state <- Closed;
    s.err <- Some Error.Nomem;
    detach t s
  end;
  let rec wait () =
    match s.state with
    | Established -> Ok ()
    | Syn_sent ->
        Sleep_record.sleep s.sleep;
        wait ()
    | _ -> Result.Error (Option.value s.err ~default:Error.Connrefused)
  in
  wait ()

(* Blocking send of the whole buffer, MSS segment at a time. *)
let send t s ~buf ~pos ~len =
  let rec push sent =
    if sent >= len then Ok len
    else
      match s.state with
      | Established | Close_wait ->
          let window = min s.cwnd s.snd_wnd in
          if inflight s >= window || s.rexmt_q_len > rexmt_q_limit s then begin
            if s.nb then if sent > 0 then Ok sent else Result.Error Error.Wouldblock
            else begin
              arm_persist t s;
              Sleep_record.sleep s.sleep;
              push sent
            end
          end
          else begin
            let n = min s.smss (min (len - sent) (max 0 (window - inflight s))) in
            if n = 0 then begin
              if s.nb then if sent > 0 then Ok sent else Result.Error Error.Wouldblock
              else begin
                arm_persist t s;
                Sleep_record.sleep s.sleep;
                push sent
              end
            end
            else if
              tcp_xmit t s ~seq:s.snd_nxt ~flags:th_ack
                ~payload:(Some (buf, pos + sent, n))
                ~queue:true
            then begin
              s.snd_nxt <- m32 (s.snd_nxt + n);
              push (sent + n)
            end
            else begin
              (* No skb for the segment: snd_nxt did not advance, so the
                 stream is intact.  Report what went (or would-block) to a
                 non-blocking caller; park a blocking one, with a timed
                 kick — under pure memory pressure no ACK is coming to
                 wake it. *)
              if s.nb then if sent > 0 then Ok sent else Result.Error Error.Wouldblock
              else begin
                ignore (Machine.after t.machine 10_000_000 (fun () -> wake s));
                Sleep_record.sleep s.sleep;
                push sent
              end
            end
          end
      | Closed -> Result.Error (Option.value s.err ~default:Error.Pipe)
      | _ -> Result.Error Error.Pipe
  in
  push 0

(* Blocking receive of at least one byte (0 = EOF). *)
let recv t s ~buf ~pos ~len =
  let rec take taken =
    if taken >= len then taken
    else
      match Queue.peek_opt s.rcv_q with
      | None -> taken
      | Some skb ->
          let avail = skb.Skbuff.len - s.head_consumed in
          let n = min avail (len - taken) in
          Cost.charge_copy n;
          Bytes.blit skb.Skbuff.skb_data (skb.Skbuff.head + s.head_consumed) buf (pos + taken) n;
          s.head_consumed <- s.head_consumed + n;
          s.rcv_q_bytes <- s.rcv_q_bytes - n;
          if s.head_consumed >= skb.Skbuff.len then begin
            ignore (Queue.take s.rcv_q);
            Skbuff.skb_free skb;
            s.head_consumed <- 0
          end;
          take (taken + n)
  in
  let rec wait () =
    let n = take 0 in
    (* Window update: if the app drained a window the peer saw as (near)
       closed, tell it — 2.0 relied on the peer's probes alone, which is
       exactly the deadlock the persist timer papers over.  Silent on
       clean runs: adv_wnd only dips below an MSS when the receive queue
       actually filled. *)
    if n > 0 && s.state = Established && s.adv_wnd < s.smss
       && rcv_window s >= 2 * s.smss
    then send_ack t s;
    if n > 0 then Ok n
    else if s.peer_fin then Ok 0
    else
      match s.state with
      | Closed -> ( match s.err with Some e -> Result.Error e | None -> Ok 0)
      | _ when s.nb -> Result.Error Error.Wouldblock
      | _ ->
          Sleep_record.sleep s.sleep;
          wait ()
  in
  if len = 0 then Ok 0 else wait ()

(* Hard-reset a never-accepted child of a closing listener: free its
   retransmission frames, RST the peer, drop the sock. *)
let abort_orphan t c =
  if c.state <> Closed then begin
    List.iter (fun e -> Skbuff.skb_free e.rx_frame) c.rexmt_q;
    c.rexmt_q <- [];
    c.rexmt_q_len <- 0;
    c.err <- Some Error.Connreset;
    c.state <- Closed;
    detach t c;
    ignore (tcp_xmit t c ~seq:c.snd_nxt ~flags:th_rst ~payload:None ~queue:false);
    wake c
  end

let rec close t s =
  (* If the FIN's skb is refused, leave the state alone and retry shortly:
     to the application close is fire-and-forget, and nothing is queued
     that would retransmit the FIN for us. *)
  let send_fin next_state =
    if tcp_xmit t s ~seq:s.snd_nxt ~flags:(th_fin lor th_ack) ~payload:None ~queue:true
    then begin
      s.state <- next_state;
      s.fin_queued <- true;
      s.snd_nxt <- m32 (s.snd_nxt + 1)
    end
    else ignore (Machine.after t.machine 10_000_000 (fun () -> close t s))
  in
  match s.state with
  | Established | Syn_recv -> send_fin Fin_wait1
  | Close_wait -> send_fin Last_ack
  | Listen ->
      (* Reset the children nobody will ever accept — both the established
         ones parked on the backlog queue and the embryonic ones still
         shaking hands — and wake parked accepters so they fail with Badf
         instead of sleeping forever (the ARP on_drop discipline). *)
      s.state <- Closed;
      (* Cached half-open handshakes die with the listener (no frames are
         held for them — defended SYN-ACKs are never queued). *)
      if s.syn_cache <> [] then begin
        t.syncache_evicted <- t.syncache_evicted + List.length s.syn_cache;
        s.syn_cache <- []
      end;
      Queue.iter (fun c -> abort_orphan t c) s.backlog_q;
      Queue.clear s.backlog_q;
      List.iter
        (fun c ->
          if
            c.state = Syn_recv
            && match c.parent with Some p -> p == s | None -> false
          then abort_orphan t c)
        t.socks;
      detach t s;
      wake s
  | Syn_sent ->
      s.state <- Closed;
      detach t s;
      wake s
  | _ -> ()

(* ---- per-layer drop accounting, netstat -s style ---- *)

let netstat t =
  Printf.sprintf
    "ip:\n\
    \  %d bad header checksums\n\
     tcp:\n\
    \  %d segments sent\n\
    \  %d segments received\n\
    \  %d segments retransmitted\n\
    \  %d bad checksums\n\
    \  %d duplicate segments dropped\n\
    \  %d out-of-order segments dropped\n\
    \  %d segments dropped, full receive queue\n\
    \  %d listen queue overflows\n\
    \  %d connections timed out retransmitting\n\
    \  %d ack predictions ok\n\
    \  %d data predictions ok\n\
    \  %d prediction fallbacks\n\
    \  %d persist probes sent\n\
    \  %d syncache entries added (%d evicted, %d completed)\n\
    \  %d SYN cookies validated, %d rejected\n\
    \  %d TIME_WAIT connections reclaimed\n\
    \  %d drops for want of memory\n\
    \  %d RSTs rate limited\n\
     arp:\n\
    \  %d waiters dropped (queue full)\n\
    \  %d resolutions abandoned (retries exhausted)\n\
     event:\n\
    \  %d timer-wheel arms (%d cancels, %d fires, %d cascades)\n\
    \  %d kqueue events posted (%d coalesced)\n"
    t.ipbadsum t.segs_out t.segs_in t.rexmits t.tcpbadsum t.rcvdup t.rcvoo
    t.rcvfull t.listen_overflow t.rexmt_give_ups t.predack t.preddat t.predfallback
    t.persist_probes t.syncache_added t.syncache_evicted t.syncache_completed
    t.syncookies_validated t.syncookies_rejected t.time_wait_reclaimed
    t.nomem_drops t.rst_ratelimited t.arp_waiters_dropped t.arp_failures
    Cost.counters.Cost.wheel_arms Cost.counters.Cost.wheel_cancels
    Cost.counters.Cost.wheel_fires Cost.counters.Cost.wheel_cascades
    Cost.counters.Cost.kq_posted Cost.counters.Cost.kq_coalesced
