(* GLUE CODE — exports Linux inet sockets as OSKit COM components: the
 * oskit_socket contract plus the oskit_asyncio readiness view.  The mirror
 * image of Freebsd_glue.socket_com, which is the point: a reactor written
 * against the COM interfaces drives either stack without knowing which
 * one is underneath (Section 4.4's separability argument, extended to the
 * readiness path).
 *)

let rec socket_com (t : Linux_inet.stack) (s : Linux_inet.sock) : Io_if.socket =
  let enter f =
    (* Every socket call is an entry into the Linux component. *)
    Cost.charge_glue_crossing ();
    f ()
  in
  let rec view () =
    { Io_if.so_unknown = unknown ();
      so_bind =
        (fun a -> enter (fun () -> Ok (Linux_inet.bind t s ~port:a.Io_if.sin_port)));
      so_listen = (fun ~backlog -> enter (fun () -> Ok (Linux_inet.listen t s ~backlog)));
      so_accept =
        (fun () ->
          enter (fun () ->
              match Linux_inet.accept t s with
              | Ok c ->
                  let peer =
                    { Io_if.sin_addr = c.Linux_inet.raddr; sin_port = c.Linux_inet.rport }
                  in
                  Ok (socket_com t c, peer)
              | Result.Error _ as e -> (e :> (Io_if.socket * Io_if.sockaddr, Error.t) result)));
      so_connect =
        (fun a ->
          enter (fun () -> Linux_inet.connect t s ~dst:a.Io_if.sin_addr ~dport:a.Io_if.sin_port));
      so_send = (fun ~buf ~pos ~len -> enter (fun () -> Linux_inet.send t s ~buf ~pos ~len));
      so_recv = (fun ~buf ~pos ~len -> enter (fun () -> Linux_inet.recv t s ~buf ~pos ~len));
      so_sendto = (fun ~buf:_ ~pos:_ ~len:_ ~dst:_ -> Result.Error Error.Notsup);
      so_recvfrom = (fun ~buf:_ ~pos:_ ~len:_ -> Result.Error Error.Notsup);
      so_getsockname =
        (fun () -> Ok { Io_if.sin_addr = t.Linux_inet.my_ip; sin_port = s.Linux_inet.lport });
      so_setsockopt =
        (fun name value ->
          enter (fun () ->
              match name with
              | "nonblock" ->
                  Linux_inet.set_nonblock s (value <> 0);
                  Ok ()
              | _ -> Result.Error Error.Notsup));
      so_shutdown = (fun () -> enter (fun () -> Ok (Linux_inet.close t s)));
      so_close = (fun () -> enter (fun () -> Ok (Linux_inet.close t s))) }
  (* The readiness view of the same object — forced once so every client
     shares one listener table; poll is a COM method dispatch, not a full
     component crossing. *)
  and aio =
    lazy
      (Io_if.asyncio_view ~unknown
         ~poll:(fun () ->
           Cost.charge_com_call ();
           Linux_inet.sock_readiness s)
         ~add_listener:(fun ~mask f ->
           Cost.charge_com_call ();
           Linux_inet.add_listener s ~mask f)
         ~remove_listener:(fun id ->
           Cost.charge_com_call ();
           Linux_inet.remove_listener s id)
         ~readable:(fun () -> Linux_inet.readable_bytes s)
         ())
  and obj =
    lazy
      (Com.create (fun _ ->
           [ Iid.B (Io_if.socket_iid, fun () -> view ());
             Iid.B (Io_if.asyncio_iid, fun () -> Lazy.force aio) ]))
  and unknown () = Lazy.force obj in
  view ()

let socket_factory (t : Linux_inet.stack) : Io_if.socket_factory =
  let rec view () =
    { Io_if.sf_unknown = unknown ();
      sf_create =
        (fun typ ->
          Cost.charge_glue_crossing ();
          match typ with
          | Io_if.Sock_stream -> Ok (socket_com t (Linux_inet.socket t))
          | Io_if.Sock_dgram -> Result.Error Error.Notsup) }
  and obj =
    lazy (Com.create (fun _ -> [ Iid.B (Io_if.socket_factory_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()
