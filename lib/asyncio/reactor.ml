(* The select/poll reactor: one thread drives any number of readiness
 * sources through the oskit_asyncio COM interface.  Registration hangs a
 * COM listener on each object; notifications mark the watch pending and
 * wake the reactor's sleep record, and the loop then re-polls only the
 * pending watches (so a quiet connection costs nothing per pass) and runs
 * their callbacks.  Which protocol stack is behind an asyncio view is
 * invisible here — that is the whole point.
 *
 * Two races are load-bearing:
 *  - notify-vs-sleep: a listener can fire between the poll pass and the
 *    sleep.  Sleep_record's latch absorbs it (wakeup while nobody waits is
 *    remembered, and the next sleep consumes it instead of blocking).
 *  - register-vs-ready: the object may already be readable when the watch
 *    is created.  add_listener returns the readiness mask at registration,
 *    and a ready watch is marked pending immediately.
 *
 * Callbacks run at thread (process) level, never from the notification,
 * so they may block briefly, unwatch themselves, or add new watches; the
 * dispatch pass snapshots the pending set and re-checks w_active.
 *)

type watch = {
  w_id : int;
  w_aio : Io_if.asyncio;
  mutable w_mask : int;
  w_cb : int -> unit;
  w_listener : Io_if.listener;
  mutable w_active : bool;
  mutable w_pending : bool;
}

type stats = {
  mutable polls : int;  (* aio_poll calls issued by dispatch *)
  mutable dispatches : int;  (* callbacks run *)
  mutable sleeps : int;  (* times the loop blocked *)
  mutable spurious : int;  (* notifications that polled not-ready *)
}

type t = {
  mutable watches : watch list; (* registration order *)
  mutable next_id : int;
  sleep : Sleep_record.t;
  stats : stats;
}

let create () =
  { watches = [];
    next_id = 1;
    sleep = Sleep_record.create ~name:"reactor" ();
    stats = { polls = 0; dispatches = 0; sleeps = 0; spurious = 0 } }

let stats t = t.stats
let watch_count t = List.length t.watches

(* Wake the loop with no condition attached.  Callers use it to make the
   loop re-check [until]; the dispatch pass treats it as spurious. *)
let kick t = Sleep_record.wakeup t.sleep

let arm_if_ready t w = function
  | Ok ready when ready land w.w_mask <> 0 ->
      w.w_pending <- true;
      Sleep_record.wakeup t.sleep
  | Ok _ | Result.Error _ -> ()

(* [watch t aio ~mask cb] registers interest: [cb ready] runs from the
   reactor loop whenever a condition in [mask] is ready.  Level-triggered:
   a callback that leaves the object ready is dispatched again on the next
   pass, so it need not drain in one call. *)
let watch t aio ~mask cb =
  let id = t.next_id in
  t.next_id <- id + 1;
  let cell = ref None in
  let listener =
    Io_if.listener_create (fun () ->
        (match !cell with Some w when w.w_active -> w.w_pending <- true | _ -> ());
        Sleep_record.wakeup t.sleep)
  in
  let w =
    { w_id = id; w_aio = aio; w_mask = mask; w_cb = cb; w_listener = listener;
      w_active = true; w_pending = false }
  in
  cell := Some w;
  t.watches <- t.watches @ [ w ];
  arm_if_ready t w (aio.Io_if.aio_add_listener listener mask);
  w

let unwatch t w =
  if w.w_active then begin
    w.w_active <- false;
    w.w_pending <- false;
    t.watches <- List.filter (fun x -> x != w) t.watches;
    ignore (w.w_aio.Io_if.aio_remove_listener w.w_listener)
  end

(* Change the interest mask (a connection moving from reading the request
   to writing the response).  Re-registers the listener so the stack-side
   filter matches, and arms immediately if the new condition already
   holds. *)
let rewatch t w ~mask =
  if w.w_active then begin
    ignore (w.w_aio.Io_if.aio_remove_listener w.w_listener);
    w.w_mask <- mask;
    w.w_pending <- false;
    arm_if_ready t w (w.w_aio.Io_if.aio_add_listener w.w_listener mask)
  end

(* One pass: dispatch every pending watch, or block until a notification
   (or [kick]) arrives.  Returns the number of callbacks run. *)
let step t =
  match List.filter (fun w -> w.w_pending) t.watches with
  | [] ->
      t.stats.sleeps <- t.stats.sleeps + 1;
      Sleep_record.sleep t.sleep;
      0
  | pending ->
      let fired = ref 0 in
      List.iter
        (fun w ->
          w.w_pending <- false;
          if w.w_active then begin
            t.stats.polls <- t.stats.polls + 1;
            let ready = w.w_aio.Io_if.aio_poll () land w.w_mask in
            if ready = 0 then t.stats.spurious <- t.stats.spurious + 1
            else begin
              t.stats.dispatches <- t.stats.dispatches + 1;
              incr fired;
              w.w_cb ready;
              (* Level-triggered re-arm: still ready after the callback
                 means dispatch again next pass, not wait for an edge. *)
              if w.w_active && w.w_aio.Io_if.aio_poll () land w.w_mask <> 0 then
                w.w_pending <- true
            end
          end)
        pending;
      !fired

(* [run t ~until] loops until [until ()] holds.  [until] is re-checked
   after every pass; while the loop is blocked a notification, a [kick],
   or the optional [tick_ns] heartbeat (a simulated-clock callout) gets it
   moving again. *)
let run ?tick_ns t ~until =
  let stopped = ref false in
  (match tick_ns with
  | Some ns ->
      let rec tick () =
        ignore
          (Kclock.callout_after ~ns (fun () ->
               if not !stopped then begin
                 Sleep_record.wakeup t.sleep;
                 tick ()
               end))
      in
      tick ()
  | None -> ());
  let rec loop () =
    if not (until ()) then begin
      ignore (step t);
      loop ()
    end
  in
  Fun.protect ~finally:(fun () -> stopped := true) loop
