(* The select/poll reactor: one thread drives any number of readiness
 * sources through the oskit_asyncio COM interface.  Which protocol stack
 * is behind an asyncio view is invisible here — that is the whole point.
 *
 * Two dispatch engines share the public API:
 *
 *  - Legacy scan (default): registration hangs a COM listener on each
 *    object; notifications mark the watch pending and wake the sleep
 *    record, and each pass re-scans the watch list for pending entries —
 *    O(watches) per pass, dispatch in registration order.
 *
 *  - kqueue ([Cost.config.kq] at creation time): watches register knotes
 *    on a {!Kqueue.t}; a notification enqueues its knote on the ready
 *    queue in O(1) and each pass drains only queued entries — O(ready)
 *    per pass no matter how many idle watches exist.  Dispatch order is
 *    readiness order, which is why the engine is flag-gated: committed
 *    baselines replay the legacy order bit-identically.
 *
 * Two races are load-bearing in both engines:
 *  - notify-vs-sleep: a listener can fire between the poll pass and the
 *    sleep.  Sleep_record's latch absorbs it (wakeup while nobody waits is
 *    remembered, and the next sleep consumes it instead of blocking).
 *  - register-vs-ready: the object may already be readable when the watch
 *    is created.  add_listener returns the readiness mask at registration,
 *    and a ready watch is marked pending (or its knote enqueued)
 *    immediately.
 *
 * Callbacks run at thread (process) level, never from the notification,
 * so they may block briefly, unwatch themselves, or add new watches; the
 * dispatch pass snapshots the pending set and re-checks w_active.
 *)

type watch = {
  w_id : int;
  w_aio : Io_if.asyncio;
  mutable w_mask : int;
  w_cb : int -> unit;
  mutable w_listener : Io_if.listener option;  (* legacy engine only *)
  mutable w_active : bool;
  mutable w_pending : bool;  (* legacy engine only *)
  mutable w_node : watch Dlist.node option;  (* position in t.watches *)
}

type stats = {
  mutable polls : int;  (* aio_poll calls issued by dispatch *)
  mutable dispatches : int;  (* callbacks run *)
  mutable sleeps : int;  (* times the loop blocked *)
  mutable spurious : int;  (* notifications that polled not-ready *)
  mutable visits : int;
      (* watch-list entries examined (legacy) or knotes dequeued (kq):
         the per-pass work the kq engine makes O(ready) *)
}

type t = {
  watches : watch Dlist.t;  (* registration order *)
  by_id : (int, watch) Hashtbl.t;
  kq : Kqueue.t option;  (* Some = kqueue engine *)
  mutable next_id : int;
  sleep : Sleep_record.t;
  stats : stats;
}

let create () =
  let sleep = Sleep_record.create ~name:"reactor" () in
  let kq =
    if Cost.config.Cost.kq then
      Some (Kqueue.create ~wakeup:(fun () -> Sleep_record.wakeup sleep) ())
    else None
  in
  { watches = Dlist.create ();
    by_id = Hashtbl.create 64;
    kq;
    next_id = 1;
    sleep;
    stats = { polls = 0; dispatches = 0; sleeps = 0; spurious = 0; visits = 0 } }

let stats t = t.stats
let watch_count t = Dlist.length t.watches
let kqueue t = t.kq

(* Wake the loop with no condition attached.  Callers use it to make the
   loop re-check [until]; the dispatch pass treats it as spurious. *)
let kick t = Sleep_record.wakeup t.sleep

let arm_if_ready t w = function
  | Ok ready when ready land w.w_mask <> 0 ->
      w.w_pending <- true;
      Sleep_record.wakeup t.sleep
  | Ok _ | Result.Error _ -> ()

(* [watch t aio ~mask cb] registers interest: [cb ready] runs from the
   reactor loop whenever a condition in [mask] is ready.  Level-triggered:
   a callback that leaves the object ready is dispatched again on the next
   pass, so it need not drain in one call. *)
let watch t aio ~mask cb =
  let id = t.next_id in
  t.next_id <- id + 1;
  let w =
    { w_id = id; w_aio = aio; w_mask = mask; w_cb = cb; w_listener = None;
      w_active = true; w_pending = false; w_node = None }
  in
  w.w_node <- Some (Dlist.push_back t.watches w);
  Hashtbl.replace t.by_id id w;
  (match t.kq with
  | Some kq -> ignore (Kqueue.add kq ~ident:id ~aio ~filter:mask ~flags:0)
  | None ->
      let cell = ref None in
      let listener =
        Io_if.listener_create (fun () ->
            (match !cell with
            | Some w when w.w_active -> w.w_pending <- true
            | _ -> ());
            Sleep_record.wakeup t.sleep)
      in
      cell := Some w;
      w.w_listener <- Some listener;
      arm_if_ready t w (aio.Io_if.aio_add_listener listener mask));
  w

let unwatch t w =
  if w.w_active then begin
    w.w_active <- false;
    w.w_pending <- false;
    (match w.w_node with
    | Some node ->
        Dlist.remove node;
        w.w_node <- None
    | None -> ());
    Hashtbl.remove t.by_id w.w_id;
    match t.kq with
    | Some kq -> ignore (Kqueue.delete kq ~ident:w.w_id ~filter:w.w_mask)
    | None -> (
        match w.w_listener with
        | Some l -> ignore (w.w_aio.Io_if.aio_remove_listener l)
        | None -> ())
  end

(* Change the interest mask (a connection moving from reading the request
   to writing the response).  Re-registers so the stack-side filter
   matches, and arms immediately if the new condition already holds. *)
let rewatch t w ~mask =
  if w.w_active then begin
    match t.kq with
    | Some kq ->
        ignore (Kqueue.delete kq ~ident:w.w_id ~filter:w.w_mask);
        w.w_mask <- mask;
        ignore (Kqueue.add kq ~ident:w.w_id ~aio:w.w_aio ~filter:mask ~flags:0)
    | None ->
        (match w.w_listener with
        | Some l ->
            ignore (w.w_aio.Io_if.aio_remove_listener l);
            w.w_mask <- mask;
            w.w_pending <- false;
            arm_if_ready t w (w.w_aio.Io_if.aio_add_listener l mask)
        | None -> ())
  end

(* Legacy pass: scan the whole watch list for pending entries. *)
let step_scan t =
  t.stats.visits <- t.stats.visits + Dlist.length t.watches;
  let pending = List.filter (fun w -> w.w_pending) (Dlist.to_list t.watches) in
  match pending with
  | [] ->
      t.stats.sleeps <- t.stats.sleeps + 1;
      Sleep_record.sleep t.sleep;
      0
  | pending ->
      let fired = ref 0 in
      List.iter
        (fun w ->
          w.w_pending <- false;
          if w.w_active then begin
            t.stats.polls <- t.stats.polls + 1;
            let ready = w.w_aio.Io_if.aio_poll () land w.w_mask in
            if ready = 0 then t.stats.spurious <- t.stats.spurious + 1
            else begin
              t.stats.dispatches <- t.stats.dispatches + 1;
              incr fired;
              w.w_cb ready;
              (* Level-triggered re-arm: still ready after the callback
                 means dispatch again next pass, not wait for an edge. *)
              if w.w_active && w.w_aio.Io_if.aio_poll () land w.w_mask <> 0 then
                w.w_pending <- true
            end
          end)
        pending;
      !fired

(* kqueue pass: drain the ready queue — only queued knotes pay anything.
   The level re-arm runs after the callback ([Kqueue.relevel]), mirroring
   the legacy engine's post-callback re-poll. *)
let step_kq t kq =
  let ks = Kqueue.stats kq in
  let d0 = ks.Kqueue.delivered and sp0 = ks.Kqueue.spurious in
  let evs = Kqueue.kevent ~relevel:false kq ~max:max_int in
  let dequeued = ks.Kqueue.delivered - d0 + (ks.Kqueue.spurious - sp0) in
  t.stats.visits <- t.stats.visits + dequeued;
  t.stats.polls <- t.stats.polls + dequeued;
  t.stats.spurious <- t.stats.spurious + (ks.Kqueue.spurious - sp0);
  match evs with
  | [] ->
      t.stats.sleeps <- t.stats.sleeps + 1;
      Sleep_record.sleep t.sleep;
      0
  | evs ->
      let fired = ref 0 in
      List.iter
        (fun ev ->
          match Hashtbl.find_opt t.by_id ev.Io_if.ke_ident with
          | Some w when w.w_active ->
              t.stats.dispatches <- t.stats.dispatches + 1;
              incr fired;
              w.w_cb (ev.Io_if.ke_filter land w.w_mask);
              if w.w_active then
                Kqueue.relevel kq ~ident:w.w_id ~filter:ev.Io_if.ke_filter
          | Some _ | None -> ())
        evs;
      !fired

(* One pass: dispatch every pending watch, or block until a notification
   (or [kick]) arrives.  Returns the number of callbacks run. *)
let step t = match t.kq with Some kq -> step_kq t kq | None -> step_scan t

(* [run t ~until] loops until [until ()] holds.  [until] is re-checked
   after every pass; while the loop is blocked a notification, a [kick],
   or the optional [tick_ns] heartbeat (a simulated-clock callout) gets it
   moving again. *)
let run ?tick_ns t ~until =
  let stopped = ref false in
  (match tick_ns with
  | Some ns ->
      let rec tick () =
        ignore
          (Kclock.callout_after ~ns (fun () ->
               if not !stopped then begin
                 Sleep_record.wakeup t.sleep;
                 tick ()
               end))
      in
      tick ()
  | None -> ());
  let rec loop () =
    if not (until ()) then begin
      ignore (step t);
      loop ()
    end
  in
  Fun.protect ~finally:(fun () -> stopped := true) loop
