(* The §6.2.10 fix: a kmem-cache-style size-class allocator layered on the
 * LMM.  The paper's deficiency list says the LMM "is built for flexibility,
 * not common-case speed" — every alloc is a walk over the sorted free
 * lists.  This layer grabs page-aligned slabs from [Lmm.alloc_aligned],
 * carves each into naturally-aligned blocks of one power-of-two size
 * class, and serves the hot path from per-slab freelists: alloc and free
 * are O(1) list push/pop except when a slab must be refilled from (or
 * released back to) the LMM underneath.
 *
 * Because slabs are size-aligned, [free] recovers the owning slab from the
 * block address alone — like BSD's kmemusage table, but without reserving
 * a VA range the client never promised us.
 *)

let slab_bits = 12
let slab_size = 1 lsl slab_bits (* one 4 KB page per slab *)
let min_class = 4 (* 16-byte blocks *)
let max_class = 11 (* 2 KB blocks; larger requests fall through to the LMM *)

type class_stats = {
  mutable hits : int; (* allocs served from a freelist *)
  mutable misses : int; (* allocs that had to refill *)
  mutable refills : int; (* slabs taken from the LMM *)
  mutable releases : int; (* empty slabs returned to the LMM *)
  mutable frees : int;
  mutable live : int; (* blocks currently out *)
}

type slab = {
  base : int;
  cls : int; (* class index (block size = 1 lsl cls) *)
  mutable free_blocks : int list; (* O(1) push/pop *)
  mutable used : int;
  in_use : Bytes.t; (* bit per block: O(1) double-free detection *)
}

type t = {
  lmm : Lmm.t;
  flags : int;
  (* Per class: slabs with at least one free block.  The hot path only
     touches the head. *)
  partial : slab list array;
  slabs : (int, slab) Hashtbl.t; (* slab base -> slab *)
  stats : class_stats array;
  large : (int, int) Hashtbl.t; (* addr -> size for > 2 KB fallthroughs *)
  mutable large_allocs : int;
}

(* size -> class index, O(1) by table lookup (the hot path must not loop). *)
let class_table =
  let t = Array.make ((1 lsl max_class) + 1) min_class in
  for size = (1 lsl min_class) + 1 to 1 lsl max_class do
    let rec bits b = if 1 lsl b >= size then b else bits (b + 1) in
    t.(size) <- bits min_class
  done;
  t

let create ?(flags = 0) lmm =
  { lmm;
    flags;
    partial = Array.make (max_class + 1) [];
    slabs = Hashtbl.create 64;
    stats =
      Array.init (max_class + 1) (fun _ ->
          { hits = 0; misses = 0; refills = 0; releases = 0; frees = 0; live = 0 });
    large = Hashtbl.create 8;
    large_allocs = 0 }

let block_size_of_class c = 1 lsl c

let mark_block s addr v =
  let idx = (addr - s.base) lsr s.cls in
  let byte = Char.code (Bytes.get s.in_use (idx lsr 3)) in
  let bit = 1 lsl (idx land 7) in
  Bytes.set s.in_use (idx lsr 3) (Char.chr (if v then byte lor bit else byte land lnot bit))

let block_in_use s addr =
  let idx = (addr - s.base) lsr s.cls in
  Char.code (Bytes.get s.in_use (idx lsr 3)) land (1 lsl (idx land 7)) <> 0

(* Take a fresh page-aligned slab from the LMM and carve it. *)
let refill t c =
  match
    Lmm.alloc_aligned t.lmm ~size:slab_size ~flags:t.flags ~align_bits:slab_bits
      ~align_ofs:0
  with
  | None -> None
  | Some base ->
      let block = block_size_of_class c in
      let rec carve off acc =
        if off < 0 then acc else carve (off - block) ((base + off) :: acc)
      in
      let blocks = slab_size lsr c in
      let s =
        { base; cls = c; free_blocks = carve (slab_size - block) []; used = 0;
          in_use = Bytes.make ((blocks + 7) lsr 3) '\000' }
      in
      Hashtbl.replace t.slabs base s;
      t.partial.(c) <- s :: t.partial.(c);
      t.stats.(c).refills <- t.stats.(c).refills + 1;
      Some s

let alloc t ~size =
  if size <= 0 then invalid_arg "Kalloc.alloc: size";
  if size > 1 lsl max_class then begin
    (* Large: straight to the LMM (the paper's layering — the conventional
       allocator sits on top of, not instead of, the low-level one). *)
    Cost.charge_alloc ();
    match Lmm.alloc t.lmm ~size ~flags:t.flags with
    | None -> None
    | Some addr ->
        Hashtbl.replace t.large addr size;
        t.large_allocs <- t.large_allocs + 1;
        Some addr
  end
  else begin
    let c = class_table.(size) in
    let st = t.stats.(c) in
    let slab =
      match t.partial.(c) with
      | s :: _ ->
          st.hits <- st.hits + 1;
          Cost.charge_pool_alloc ();
          Some s
      | [] ->
          st.misses <- st.misses + 1;
          Cost.charge_alloc ();
          refill t c
    in
    match slab with
    | None -> None
    | Some s ->
        (match s.free_blocks with
        | addr :: rest ->
            s.free_blocks <- rest;
            s.used <- s.used + 1;
            st.live <- st.live + 1;
            mark_block s addr true;
            if rest = [] then
              t.partial.(c) <- List.filter (fun x -> x != s) t.partial.(c);
            Some addr
        | [] -> assert false (* a slab on the partial list has free blocks *))
  end

(* free takes no size: the slab (found by alignment) knows its class. *)
let free t addr =
  match Hashtbl.find_opt t.large addr with
  | Some size ->
      Hashtbl.remove t.large addr;
      Lmm.free t.lmm ~addr ~size
  | None -> (
      let base = addr land lnot (slab_size - 1) in
      match Hashtbl.find_opt t.slabs base with
      | None -> invalid_arg "Kalloc.free: address not from this allocator"
      | Some s ->
          if addr land (block_size_of_class s.cls - 1) <> 0 then
            invalid_arg "Kalloc.free: misaligned for its size class";
          if not (block_in_use s addr) then invalid_arg "Kalloc.free: double free";
          mark_block s addr false;
          let st = t.stats.(s.cls) in
          let was_full = s.free_blocks = [] in
          s.free_blocks <- addr :: s.free_blocks;
          s.used <- s.used - 1;
          st.frees <- st.frees + 1;
          st.live <- st.live - 1;
          if was_full then t.partial.(s.cls) <- s :: t.partial.(s.cls);
          (* Release empty slabs back to the LMM, keeping one per class so a
             tight alloc/free loop at a slab boundary does not thrash. *)
          if s.used = 0 && List.exists (fun x -> x != s) t.partial.(s.cls) then begin
            t.partial.(s.cls) <- List.filter (fun x -> x != s) t.partial.(s.cls);
            Hashtbl.remove t.slabs s.base;
            st.releases <- st.releases + 1;
            Lmm.free t.lmm ~addr:s.base ~size:slab_size
          end)

(* Return every empty slab to the LMM (even the cached one per class). *)
let reap t =
  Array.iteri
    (fun c slabs ->
      List.iter
        (fun s ->
          if s.used = 0 then begin
            t.partial.(c) <- List.filter (fun x -> x != s) t.partial.(c);
            Hashtbl.remove t.slabs s.base;
            t.stats.(c).releases <- t.stats.(c).releases + 1;
            Lmm.free t.lmm ~addr:s.base ~size:slab_size
          end)
        slabs)
    t.partial

let usable_size t addr =
  match Hashtbl.find_opt t.large addr with
  | Some size -> Some size
  | None ->
      Hashtbl.find_opt t.slabs (addr land lnot (slab_size - 1))
      |> Option.map (fun s -> block_size_of_class s.cls)

let stats t c =
  if c < min_class || c > max_class then invalid_arg "Kalloc.stats: class";
  t.stats.(c)

let live_blocks t =
  Array.fold_left (fun acc st -> acc + st.live) 0 t.stats + Hashtbl.length t.large

let slabs_held t = Hashtbl.length t.slabs

let pp fmt t =
  Format.fprintf fmt "@[<v>kalloc: %d slab(s) held, %d large alloc(s)" (slabs_held t)
    t.large_allocs;
  Array.iteri
    (fun c st ->
      if st.hits + st.misses > 0 then
        Format.fprintf fmt
          "@,  class %4dB: %d hits / %d misses, %d refills, %d releases, %d live"
          (block_size_of_class c) st.hits st.misses st.refills st.releases st.live)
    t.stats;
  Format.fprintf fmt "@]"
