(* Fixed-size [Bytes] pool for packet-buffer recycling.
 *
 * The simulated address-space side of pooling lives in [Kalloc]; this is
 * its OCaml-heap twin for the mbuf/skbuff hot paths, where the per-packet
 * cost is a [Bytes.create] (allocation + zeroing) per mbuf, cluster or
 * skbuff.  A pool keeps a bounded freelist of retired buffers of one fixed
 * size and hands them back O(1), so steady-state packet flow allocates
 * nothing.  Buffers are NOT cleared on [put]/[get] — exactly like a real
 * kmem cache, callers must not assume zeroed storage.
 *)

type t = {
  size : int;
  max_keep : int; (* freelist cap; beyond this, retired buffers drop to GC *)
  mutable free_list : bytes list;
  mutable kept : int;
  mutable hits : int; (* gets served from the freelist *)
  mutable misses : int; (* gets that had to Bytes.create *)
  mutable puts : int;
  mutable dropped : int; (* puts past the cap *)
}

let create ?(max_keep = 512) ~size () =
  if size <= 0 then invalid_arg "Bpool.create: size";
  if max_keep < 0 then invalid_arg "Bpool.create: max_keep";
  { size; max_keep; free_list = []; kept = 0; hits = 0; misses = 0; puts = 0;
    dropped = 0 }

let size t = t.size

let get t =
  (* The memory-pressure choke point: every pooled packet-buffer
     allocation in both stacks funnels through here, so one injector
     covers them all.  Fails before any charge — a refused allocation
     did no work. *)
  Memfault.check ();
  match t.free_list with
  | b :: rest ->
      t.free_list <- rest;
      t.kept <- t.kept - 1;
      t.hits <- t.hits + 1;
      Cost.charge_pool_alloc ();
      b
  | [] ->
      t.misses <- t.misses + 1;
      Cost.charge_alloc ();
      Bytes.create t.size

let put t b =
  if Bytes.length b <> t.size then invalid_arg "Bpool.put: wrong buffer size";
  t.puts <- t.puts + 1;
  if t.kept < t.max_keep then begin
    t.free_list <- b :: t.free_list;
    t.kept <- t.kept + 1
  end
  else t.dropped <- t.dropped + 1

let kept t = t.kept
let hits t = t.hits
let misses t = t.misses

let drain t =
  t.free_list <- [];
  t.kept <- 0

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.puts <- 0;
  t.dropped <- 0

let pp fmt t =
  Format.fprintf fmt "bpool %dB: %d kept, %d hits / %d misses, %d puts (%d dropped)"
    t.size t.kept t.hits t.misses t.puts t.dropped
