(* Deterministic allocation-failure injection for the packet-buffer pools.

   The netem idea applied to memory: every pooled allocation (Bpool.get)
   asks this module for a verdict first, drawn from an explicit splitmix64
   PRNG seeded from [Cost.config.alloc_fail_seed], so a run with the same
   seed and the same allocation sequence replays its failure schedule
   exactly.  A triggered failure can extend into a burst
   ([Cost.config.alloc_fail_burst]) — kmem shortages come in runs.

   With [Cost.config.alloc_fail_prob = 0.0] (the default) the verdict is a
   single float compare and no PRNG state is touched, so calibrated
   baseline runs are untouched. *)

exception Nomem

type t = {
  mutable prng : int64;
  mutable burst_left : int;
  mutable draws : int;
  mutable failures : int;
}

let state = { prng = 0L; burst_left = 0; draws = 0; failures = 0 }

let seed_prng seed = Int64.logxor (Int64.of_int seed) 0x5851F42D4C957F2DL

(* Re-seed from the live config and clear counters.  Benches and tests
   call this after setting the alloc_fail_* knobs. *)
let reset () =
  state.prng <- seed_prng Cost.config.Cost.alloc_fail_seed;
  state.burst_left <- 0;
  state.draws <- 0;
  state.failures <- 0

let () = reset ()

let next_u64 () =
  let open Int64 in
  state.prng <- add state.prng 0x9E3779B97F4A7C15L;
  let z = state.prng in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let rand_float () =
  Int64.to_float (Int64.shift_right_logical (next_u64 ()) 11)
  *. (1.0 /. 9007199254740992.0)

let should_fail () =
  let p = Cost.config.Cost.alloc_fail_prob in
  if p <= 0.0 then false
  else if state.burst_left > 0 then begin
    state.burst_left <- state.burst_left - 1;
    state.failures <- state.failures + 1;
    true
  end
  else begin
    state.draws <- state.draws + 1;
    if rand_float () < p then begin
      state.burst_left <- max 0 (Cost.config.Cost.alloc_fail_burst - 1);
      state.failures <- state.failures + 1;
      true
    end
    else false
  end

(* The choke point called from Bpool.get. *)
let check () = if should_fail () then raise Nomem

let draws () = state.draws
let failures () = state.failures
