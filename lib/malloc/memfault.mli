(** Deterministic seeded allocation-failure injection for {!Bpool}.

    Netem for memory: with [Cost.config.alloc_fail_prob > 0], each pooled
    packet-buffer allocation draws from a splitmix64 PRNG (seeded by
    [Cost.config.alloc_fail_seed]) and fails with {!Nomem} at that
    probability, optionally extending each trigger into a burst of
    [Cost.config.alloc_fail_burst] consecutive failures.  At the default
    probability 0.0 the check is one float compare and consumes no PRNG
    state, so calibrated baselines are untouched. *)

exception Nomem
(** Raised by {!check} (from inside {!Bpool.get}) when the injector fires.
    The stacks catch it at their allocation funnels and degrade: counted
    drop, [Error.Nomem] to the caller, or backpressure. *)

val reset : unit -> unit
(** Re-seed from the live [Cost.config] and zero the counters.  Call after
    changing any [alloc_fail_*] knob. *)

val check : unit -> unit
(** Draw one verdict; raises {!Nomem} on failure. *)

val should_fail : unit -> bool
(** Like {!check} but returns the verdict instead of raising. *)

val draws : unit -> int
(** Bernoulli draws taken (burst continuations not included). *)

val failures : unit -> int
(** Allocations failed, bursts included. *)
