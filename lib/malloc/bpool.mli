(** Fixed-size [Bytes] pool — the OCaml-heap companion to {!Kalloc}.

    Mbuf, cluster and skbuff storage is [Bytes] on the OCaml heap rather
    than simulated LMM memory; pooling those buffers removes the
    per-packet [Bytes.create] from the hot paths.  [get]/[put] are O(1);
    the freelist is capped so idle pools don't pin unbounded memory.

    Buffers are handed back dirty (not re-zeroed), like a real kmem
    cache: callers must fully initialise what they use. *)

type t

val create : ?max_keep:int -> size:int -> unit -> t
(** Pool of buffers of exactly [size] bytes, keeping at most [max_keep]
    (default 512) retired buffers. *)

val size : t -> int

val get : t -> bytes
(** Pop a retired buffer, or [Bytes.create size] if the pool is empty.
    Charges {!Cost.charge_pool_alloc} on a hit, {!Cost.charge_alloc} on a
    miss.  The returned buffer may hold stale contents.  Raises
    {!Memfault.Nomem} when the seeded allocation-failure injector fires
    (never at the default [alloc_fail_prob = 0.0]). *)

val put : t -> bytes -> unit
(** Retire a buffer to the pool (dropped to the GC past [max_keep]).
    Raises [Invalid_argument] if the buffer's size doesn't match; the
    caller must guarantee no live aliases remain. *)

val kept : t -> int
val hits : t -> int
val misses : t -> int
val drain : t -> unit
val reset_stats : t -> unit
val pp : Format.formatter -> t -> unit
