(** Size-class (kmem-cache style) allocator layered on the LMM.

    Addresses the §6.2.10 deficiency: the LMM's flexible O(n) first-fit is
    slow for small hot-path allocations.  [Kalloc] takes page-aligned 4 KB
    slabs from {!Lmm.alloc_aligned}, carves each into blocks of one
    power-of-two size class (16 B .. 2 KB), and serves alloc/free in O(1)
    from per-slab freelists.  Requests above 2 KB fall through to the LMM
    directly.  Empty slabs are returned to the LMM, keeping at most one
    cached per class so boundary alloc/free patterns don't thrash. *)

type t

type class_stats = {
  mutable hits : int;      (** allocs served from a freelist *)
  mutable misses : int;    (** allocs that refilled a slab from the LMM *)
  mutable refills : int;   (** slabs taken from the LMM *)
  mutable releases : int;  (** empty slabs returned to the LMM *)
  mutable frees : int;
  mutable live : int;      (** blocks currently allocated *)
}

val slab_size : int
(** Bytes per slab (4096). *)

val min_class : int
val max_class : int
(** Size-class indices: class [c] serves blocks of [1 lsl c] bytes,
    for [min_class] (4 → 16 B) through [max_class] (11 → 2048 B). *)

val create : ?flags:int -> Lmm.t -> t
(** [create lmm] layers a size-class allocator over [lmm].  [flags] is the
    LMM flags mask used for slab and large allocations (default 0). *)

val alloc : t -> size:int -> int option
(** [alloc t ~size] returns the address of a block of at least [size]
    bytes, or [None] if the LMM is exhausted.  Sizes ≤ 2 KB round up to a
    power-of-two class and are served O(1); larger sizes go straight to
    the LMM.  Charges {!Cost.charge_pool_alloc} on a freelist hit and
    {!Cost.charge_alloc} on a miss (slab refill) or large allocation.
    Raises [Invalid_argument] if [size <= 0]. *)

val free : t -> int -> unit
(** [free t addr] returns [addr] to its slab's freelist (the owning slab
    and class are recovered from the address — no size argument).  Raises
    [Invalid_argument] on addresses not allocated from [t], misaligned
    addresses, and double frees. *)

val reap : t -> unit
(** Return every empty slab to the LMM, including the one normally cached
    per class.  After [reap] on a quiescent allocator, [Lmm.avail] is
    restored to its pre-allocation value. *)

val usable_size : t -> int -> int option
(** Block size backing [addr] (class size, or exact size for large
    allocations); [None] if [addr] is unknown. *)

val stats : t -> int -> class_stats
(** Per-class counters; index by class ([min_class .. max_class]). *)

val live_blocks : t -> int
(** Total blocks (and large allocations) currently outstanding. *)

val slabs_held : t -> int
(** Slabs currently held from the LMM. *)

val pp : Format.formatter -> t -> unit
