(** Client-OS assembly recipes (Section 4.5's "recipes" made executable).

    These helpers wire components into the three network configurations the
    paper's evaluation compares, on a simulated two-PC testbed:

    - {!oskit_host}: the OSKit configuration of Section 5 — Linux drivers
      under the FreeBSD protocol stack, every boundary crossed through COM
      interfaces and glue code, POSIX sockets from the minimal C library.
      The body of [oskit_host] is the paper's initialization listing,
      line for line.
    - {!freebsd_host}: monolithic FreeBSD — same encapsulated stack code,
      bound natively to an mbuf-native driver, no COM, no glue.
    - {!linux_host}: monolithic Linux — the Linux inet stack over the same
      Linux drivers, skbuffs end to end.

    All three run identical TCP wire formats, so any pair can
    interoperate. *)

(** One simulated PC plus its kernel environment. *)
type host = {
  machine : Machine.t;
  kernel : Kernel.t;
  nic : Nic.t;
}

type testbed = {
  world : World.t;
  wire : Wire.t;
  host_a : host;
  host_b : host;
}

(** Build two PCs on one 100 Mbps segment.  [models] picks the NIC chip
    each "card" reports to probes (default ["3c905"], ["tulip"]).
    [bandwidth_bps]/[latency_ns] override the wire (defaults 100 Mbps,
    1 us) — the longfat bench stretches latency to emulate WAN RTTs. *)
val make_testbed :
  ?models:string * string ->
  ?ram_bytes:int ->
  ?bandwidth_bps:int ->
  ?latency_ns:int ->
  unit ->
  testbed

(** Add a simulated disk to a host's bus; returns the raw disk for image
    preparation. *)
val add_disk : host -> ?model:string -> ?sectors:int -> unit -> Disk.t

(** {2 Network configurations} *)

(** The OSKit configuration (paper Section 5).  Returns the POSIX
    environment with the socket factory registered, plus the underlying
    stack for diagnostics. *)
val oskit_host : host -> ip:int32 -> mask:int32 -> Posix.env * Freebsd_glue.stack

(** Monolithic FreeBSD baseline: use [Bsd_socket] calls directly on the
    returned stack. *)
val freebsd_host : host -> ip:int32 -> mask:int32 -> Bsd_socket.stack

(** Monolithic Linux baseline. *)
val linux_host : host -> ip:int32 -> mask:int32 -> Linux_inet.stack

(** [spawn host f] runs [f] as a process-level thread on the host; [cpu]
    pins it to that CPU (default: the spawning CPU). *)
val spawn : host -> ?cpu:int -> ?name:string -> (unit -> unit) -> unit

(** Run the world until [until] is true (checked between events), with a
    progress fuel bound. *)
val run : testbed -> until:(unit -> bool) -> unit

(** Reset cross-simulation global state (driver probe lists, cost
    counters — but not the cost configuration, which experiments own).
    Call between independent simulations in one process. *)
val reset_globals : unit -> unit
