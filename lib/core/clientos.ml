type host = { machine : Machine.t; kernel : Kernel.t; nic : Nic.t }
type testbed = { world : World.t; wire : Wire.t; host_a : host; host_b : host }

let mac_counter = ref 0

let fresh_mac () =
  incr mac_counter;
  let b = Bytes.make 6 '\000' in
  Bytes.set b 0 '\x02' (* locally administered *);
  Bytes.set_uint16_be b 4 !mac_counter;
  Bytes.to_string b

let make_host world wire ~name ~model ~ram_bytes =
  let machine = Machine.create ~name ~ram_bytes world in
  let kernel = Kernel.create machine in
  let nic = Nic.create ~machine ~wire ~mac:(fresh_mac ()) ~irq:9 () in
  (* A fresh machine must not inherit the bus inventory of an earlier
     simulation's machine that happened to share its name. *)
  Bus.clear machine;
  Bus.register_hw machine (Bus.Hw_nic { model; nic });
  { machine; kernel; nic }

let make_testbed ?(models = "3c905", "tulip") ?(ram_bytes = 8 * 1024 * 1024)
    ?bandwidth_bps ?latency_ns () =
  let world = World.create () in
  let wire = Wire.create ?bandwidth_bps ?latency_ns world in
  let model_a, model_b = models in
  let host_a = make_host world wire ~name:"pc-a" ~model:model_a ~ram_bytes in
  let host_b = make_host world wire ~name:"pc-b" ~model:model_b ~ram_bytes in
  { world; wire; host_a; host_b }

let disk_counter = ref 0

let add_disk host ?(model = "WDC-AC2850") ?(sectors = 65536) () =
  incr disk_counter;
  let disk = Disk.create ~machine:host.machine ~sectors ~irq:(13 + (!disk_counter mod 2)) () in
  Bus.register_hw host.machine (Bus.Hw_disk { model; disk });
  disk

(* The paper's Section 5 initialization listing, step for step:
     fdev_linux_init_ethernet();
     fdev_probe();
     oskit_freebsd_net_init(&sf);
     posix_set_socketcreator(sf);
     fdev_device_lookup(&fdev_ethernet_iid, &dev);
     oskit_freebsd_net_open_ether_if(dev[0], &eif);
     oskit_freebsd_net_ifconfig(eif, IPADDR, NETMASK);        *)
let oskit_host host ~ip ~mask =
  Machine.run_in host.machine (fun () ->
      Linux_glue.init_ethernet ();
      let osenv = Osenv.create host.machine in
      let _count = Fdev.probe osenv in
      let stack = Freebsd_glue.init host.machine in
      let sf = Freebsd_glue.socket_factory stack in
      let env = Posix.create_env () in
      Posix.set_socket_factory env (Some sf);
      Posix.set_time_source env (fun () -> Machine.now host.machine);
      Posix.set_sleeper env (fun ns -> Kclock.sleep_ns ns);
      match Fdev.lookup osenv Io_if.etherdev_iid with
      | [] -> failwith "oskit_host: no ethernet device found by probe"
      | dev :: _ ->
          (match Freebsd_glue.open_ether_if stack dev with
          | Ok () -> ()
          | Result.Error e -> failwith ("open_ether_if: " ^ Error.to_string e));
          Freebsd_glue.ifconfig stack ~addr:ip ~mask;
          env, stack)

let freebsd_host host ~ip ~mask =
  Machine.run_in host.machine (fun () ->
      let stack = Bsd_socket.create_stack host.machine ~hwaddr:(Nic.mac host.nic) ~name:"fxp0" in
      Native_if.attach stack host.nic;
      Bsd_socket.ifconfig stack ~addr:ip ~mask;
      stack)

let linux_host host ~ip ~mask =
  Machine.run_in host.machine (fun () ->
      let osenv = Osenv.create host.machine in
      let devices = Linux_glue.native_devices osenv in
      let dev =
        match devices with
        | d :: _ -> d
        | [] -> failwith "linux_host: no device probed"
      in
      let stack = Linux_inet.create host.machine in
      Linux_inet.attach_dev stack osenv dev;
      Linux_inet.ifconfig stack ~addr:ip ~mask;
      stack)

let spawn host ?cpu ?name f = Kernel.spawn host.kernel ?cpu ?name f
let run testbed ~until = World.run testbed.world ~until

let reset_globals () =
  Linux_glue.reset ();
  (* Warm buffer pools would make a repeated simulation cheaper than its
     first run; every run starts cold. *)
  Mbuf.pool_reset ();
  Skbuff.pool_reset ();
  (* Counters only: the cost *configuration* belongs to the experiment
     (ablations sweep it around individual runs). *)
  Cost.reset_counters ()
