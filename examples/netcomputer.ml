(* netcomputer — the Java/PC prototype of Section 6.1.4, reproduced with
   the kit's bytecode VM standing in for Kaffe.

   A diskless "network computer": the machine boots with its program as a
   MultiBoot boot module (bytecode, like Java/PC's .class files), the
   kernel support library brings the machine up, the OSKit configuration
   provides drivers + TCP/IP + POSIX, and the VM serves network requests
   from bytecode.  A second simulated PC plays the browser.

   Also demonstrated: the null-pointer catch via debug registers
   (Section 6.2.4) — the kernel trap handler fields the fault the VM's
   buggy second program triggers. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> failwith ("netcomputer: " ^ Error.to_string e)

(* The "application": an echo-with-banner server in VM assembly.  It
   receives a request into heap memory, prepends a banner, sends the
   response, and counts requests served in global 0. *)
let server_program =
  {|
; globals: 0 = requests served, 1 = bytes received
serve:
push 8192
push 4096
sys 4          ; recv into heap[8192], up to 4096 bytes
store 1        ; bytes received
load 1
jz finished    ; connection closed -> halt
load 0
push 1
add
store 0
push 8192
load 1
sys 3          ; send the bytes straight back
pop
jmp serve
finished:
load 0
halt
|}

(* A buggy program: dereferences "null" (address 0). *)
let buggy_program = {|
push 0
loadb
halt
|}

let () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("eepro100", "3c905") () in
  let nc = tb.Clientos.host_a (* the network computer *) in
  let browser = tb.Clientos.host_b in

  (* --- boot the network computer with its bytecode as a boot module --- *)
  let bytecode =
    match Vm.assemble server_program with
    | Ok code -> Vm.encode code
    | Error e -> failwith ("assembler: " ^ e)
  in
  let image = Loader.make_image ~payload:"netcomputer-kernel" in
  let loaded =
    Loader.load nc.Clientos.machine ~image ~cmdline:"netcomputer"
      ~modules:[ "app.ovm", Bytes.to_string bytecode ]
  in
  let env_nc, nc_stack = Clientos.oskit_host nc ~ip:(ip "10.0.0.1") ~mask in
  (* Mount the boot-module file system and load the program through POSIX,
     exactly as Java/PC loaded its class files (Section 6.2.2). *)
  let bootfs = Bootmod_fs.make (Machine.ram nc.Clientos.machine) loaded.Loader.info in
  Posix.set_root env_nc (Some bootfs);
  let env_browser, _ = Clientos.oskit_host browser ~ip:(ip "10.0.0.2") ~mask in

  let served = ref (-1) in
  let reply = ref "" in
  let http_body = ref "" in
  let http_done = ref false in
  let http_stats = ref None in

  (* --- second serving mode: the same boot-module FS, exported over HTTP
     by the event-driven httpd component.  The server binds to the oskit
     stack only through the COM socket + oskit_asyncio interfaces, so the
     network computer serves its own program image the way Java/PC served
     class files — no VM in the path this time. --- *)
  Clientos.spawn nc ~name:"httpd" (fun () ->
      let sock = Freebsd_glue.socket_com nc_stack (Bsd_socket.tcp_socket nc_stack) in
      ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.1"; sin_port = 8080 });
      ok (sock.Io_if.so_listen ~backlog:4);
      let r = Reactor.create () in
      http_stats := Some (Httpd.serve_reactor ~reactor:r ~root:bootfs ~sock ());
      Reactor.run r ~until:(fun () -> !http_done));

  Clientos.spawn nc ~name:"vm" (fun () ->
      (* Read the bytecode from the boot-module FS. *)
      let fd = ok (Posix.open_ env_nc "/app.ovm" Posix.o_rdonly) in
      let st = ok (Posix.fstat env_nc fd) in
      let program = Bytes.create st.Io_if.st_size in
      let n = ok (Posix.read env_nc fd program ~pos:0 ~len:st.Io_if.st_size) in
      assert (n = st.Io_if.st_size);
      ignore (Posix.close env_nc fd);
      let code = match Vm.decode program with Ok c -> c | Error e -> failwith e in

      (* Accept one connection; bind the VM's socket syscalls to it. *)
      let lfd = ok (Posix.socket env_nc Io_if.Sock_stream) in
      ok (Posix.bind env_nc lfd { Io_if.sin_addr = ip "10.0.0.1"; sin_port = 80 });
      ok (Posix.listen env_nc lfd ~backlog:2);
      let conn, _peer = ok (Posix.accept env_nc lfd) in
      let bindings =
        { Vm.putc = (fun c -> Kernel.console_putc nc.Clientos.kernel c);
          send =
            (fun b ~pos ~len ->
              (* VM heap -> network: the extra "Java heap" copy is what the
                 send syscall pays beyond the native path. *)
              match Posix.send env_nc conn b ~pos ~len with
              | Ok n ->
                  Cost.charge_copy n;
                  n
              | Error _ -> 0);
          recv =
            (fun b ~pos ~len ->
              match Posix.recv env_nc conn b ~pos ~len with
              | Ok n ->
                  Cost.charge_copy n;
                  n
              | Error _ -> 0);
          time_ns = (fun () -> Machine.now nc.Clientos.machine) }
      in
      let vm = Vm.create ~traps:(Kernel.traps nc.Clientos.kernel) ~bindings code in
      served := Vm.run vm;

      (* Now the buggy program: the null page is guarded by a breakpoint
         register; the kernel trap handler sees the fault. *)
      Trap.set_handler (Kernel.traps nc.Clientos.kernel) Trap.T_debug (fun f ->
          Kernel.console_putc nc.Clientos.kernel '!';
          ignore f;
          `Handled);
      let bug = match Vm.assemble buggy_program with Ok c -> c | Error e -> failwith e in
      let vm2 = Vm.create ~traps:(Kernel.traps nc.Clientos.kernel) ~bindings bug in
      (match Vm.run vm2 with
      | _ -> print_endline "BUG: null dereference not caught"
      | exception Vm.Null_pointer addr ->
          Printf.printf "null-pointer access at %#x caught via debug registers\n" addr));

  Clientos.spawn browser ~name:"browser" (fun () ->
      Kclock.sleep_ns 3_000_000;
      let fd = ok (Posix.socket env_browser Io_if.Sock_stream) in
      ok (Posix.connect env_browser fd { Io_if.sin_addr = ip "10.0.0.1"; sin_port = 80 });
      let req = Bytes.of_string "GET /index.html" in
      let _ = ok (Posix.send env_browser fd req ~pos:0 ~len:(Bytes.length req)) in
      let buf = Bytes.create 4096 in
      let n = ok (Posix.recv env_browser fd buf ~pos:0 ~len:4096) in
      reply := Bytes.sub_string buf 0 n;
      ok (Posix.shutdown env_browser fd);

      (* Phase 2: fetch the program image itself over HTTP from the
         reactor-driven server. *)
      let fd = ok (Posix.socket env_browser Io_if.Sock_stream) in
      ok (Posix.connect env_browser fd { Io_if.sin_addr = ip "10.0.0.1"; sin_port = 8080 });
      let req = Bytes.of_string "GET /app.ovm HTTP/1.0\r\n\r\n" in
      let _ = ok (Posix.send env_browser fd req ~pos:0 ~len:(Bytes.length req)) in
      let acc = Buffer.create 4096 in
      let rec drain () =
        match Posix.recv env_browser fd buf ~pos:0 ~len:4096 with
        | Ok 0 | Error _ -> ()
        | Ok n ->
            Buffer.add_subbytes acc buf 0 n;
            drain ()
      in
      drain ();
      ignore (Posix.close env_browser fd);
      let resp = Buffer.contents acc in
      (match String.index_opt resp '\r' with
      | Some _ -> (
          (* body starts after the blank line *)
          let rec find i =
            if i + 4 > String.length resp then None
            else if String.sub resp i 4 = "\r\n\r\n" then Some (i + 4)
            else find (i + 1)
          in
          match find 0 with
          | Some b -> http_body := String.sub resp b (String.length resp - b)
          | None -> ())
      | None -> ());
      http_done := true);

  Clientos.run tb ~until:(fun () -> !served >= 0 && !http_done);
  Printf.printf "network computer served %d request(s)\n" !served;
  Printf.printf "browser received: %S\n" !reply;
  (match !http_stats with
  | Some st ->
      Printf.printf "httpd served /app.ovm over oskit_asyncio: %d bytes, %s\n"
        st.Httpd.bytes_out
        (if !http_body = Bytes.to_string bytecode then "byte-exact" else "MISMATCH")
  | None -> ());
  Printf.printf "virtual time: %.2f ms\n"
    (float_of_int (World.now tb.Clientos.world) /. 1e6)
