(* rtcp — the latency benchmark of Section 5 / Table 2.

   Measures the time for a 1-byte TCP round trip (client sends one byte,
   server echoes it back) over N trips, in the same three configurations
   as ttcp.  Reports the mean (the paper's number) plus the p50/p95/p99
   tail — in virtual time the distribution is tight, so a fat tail is
   itself a finding.

   Usage: rtcp [config] [round_trips]   (defaults: oskit 200) *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> failwith ("rtcp: " ^ Error.to_string e)

let run_config config ~trips =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  let a = tb.Clientos.host_a and b = tb.Clientos.host_b in
  let samples = Array.make (max 1 trips) 0 in
  let finished = ref false in
  let one = Bytes.make 1 'R' in
  let echo_server recv send =
    let buf = Bytes.create 1 in
    let rec loop () =
      match recv buf with
      | 0 -> ()
      | _ ->
          ignore (send buf);
          loop ()
    in
    loop ()
  in
  let client recv send =
    Kclock.sleep_ns 2_000_000;
    (* Warm up: first trip pays ARP + slow start. *)
    ignore (send one);
    let buf = Bytes.create 1 in
    ignore (recv buf);
    for i = 0 to trips - 1 do
      let t0 = Machine.now a.Clientos.machine in
      ignore (send one);
      ignore (recv buf);
      samples.(i) <- Machine.now a.Clientos.machine - t0
    done;
    finished := true
  in
  (match config with
  | `Oskit ->
      let env_a, _ = Clientos.oskit_host a ~ip:(ip "10.0.0.1") ~mask in
      let env_b, _ = Clientos.oskit_host b ~ip:(ip "10.0.0.2") ~mask in
      Clientos.spawn b ~name:"rtcp-srv" (fun () ->
          let fd = ok (Posix.socket env_b Io_if.Sock_stream) in
          ok (Posix.bind env_b fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 5002 });
          ok (Posix.listen env_b fd ~backlog:1);
          let conn, _ = ok (Posix.accept env_b fd) in
          echo_server
            (fun buf -> ok (Posix.recv env_b conn buf ~pos:0 ~len:1))
            (fun buf -> ok (Posix.send env_b conn buf ~pos:0 ~len:1)));
      Clientos.spawn a ~name:"rtcp-cli" (fun () ->
          let fd = ok (Posix.socket env_a Io_if.Sock_stream) in
          ok (Posix.connect env_a fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 5002 });
          client
            (fun buf -> ok (Posix.recv env_a fd buf ~pos:0 ~len:1))
            (fun buf -> ok (Posix.send env_a fd buf ~pos:0 ~len:1)))
  | `Freebsd ->
      let sa = Clientos.freebsd_host a ~ip:(ip "10.0.0.1") ~mask in
      let sb = Clientos.freebsd_host b ~ip:(ip "10.0.0.2") ~mask in
      Clientos.spawn b ~name:"rtcp-srv" (fun () ->
          let ls = Bsd_socket.tcp_socket sb in
          ok (Bsd_socket.so_bind ls ~port:5002);
          ok (Bsd_socket.so_listen ls ~backlog:1);
          let conn = ok (Bsd_socket.so_accept ls) in
          echo_server
            (fun buf -> ok (Bsd_socket.so_recv conn ~buf ~pos:0 ~len:1))
            (fun buf -> ok (Bsd_socket.so_send conn ~buf ~pos:0 ~len:1)));
      Clientos.spawn a ~name:"rtcp-cli" (fun () ->
          let s = Bsd_socket.tcp_socket sa in
          ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:5002);
          client
            (fun buf -> ok (Bsd_socket.so_recv s ~buf ~pos:0 ~len:1))
            (fun buf -> ok (Bsd_socket.so_send s ~buf ~pos:0 ~len:1)))
  | `Linux ->
      let sa = Clientos.linux_host a ~ip:(ip "10.0.0.1") ~mask in
      let sb = Clientos.linux_host b ~ip:(ip "10.0.0.2") ~mask in
      Clientos.spawn b ~name:"rtcp-srv" (fun () ->
          let ls = Linux_inet.socket sb in
          Linux_inet.bind sb ls ~port:5002;
          Linux_inet.listen sb ls ~backlog:1;
          let conn = ok (Linux_inet.accept sb ls) in
          echo_server
            (fun buf -> ok (Linux_inet.recv sb conn ~buf ~pos:0 ~len:1))
            (fun buf -> ok (Linux_inet.send sb conn ~buf ~pos:0 ~len:1)));
      Clientos.spawn a ~name:"rtcp-cli" (fun () ->
          let s = Linux_inet.socket sa in
          ok (Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:5002);
          client
            (fun buf -> ok (Linux_inet.recv sa s ~buf ~pos:0 ~len:1))
            (fun buf -> ok (Linux_inet.send sa s ~buf ~pos:0 ~len:1))));
  Clientos.run tb ~until:(fun () -> !finished);
  samples

let config_of_string = function
  | "oskit" -> `Oskit
  | "freebsd" -> `Freebsd
  | "linux" -> `Linux
  | s -> failwith ("unknown config: " ^ s)

let name_of = function `Oskit -> "OSKit" | `Freebsd -> "FreeBSD" | `Linux -> "Linux"

let () =
  let config =
    if Array.length Sys.argv > 1 then config_of_string Sys.argv.(1) else `Oskit
  in
  let trips = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 200 in
  Printf.printf "rtcp: %s, %d one-byte round trips\n%!" (name_of config) trips;
  let samples = run_config config ~trips in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let us v = float_of_int v /. 1e3 in
  let pct p = us sorted.(min (n - 1) ((n - 1) * p / 100)) in
  let mean = us (Array.fold_left ( + ) 0 samples / max 1 trips) in
  Printf.printf "  round-trip time: %.1f usec mean\n" mean;
  Printf.printf "  p50 %.1f   p95 %.1f   p99 %.1f usec\n" (pct 50) (pct 95) (pct 99)
