#!/bin/sh
# Tier-1 gate: full build, test suites, and smoke runs of the allocator
# bench (tiny workload — we only check it runs and prints the speedup
# table), the chaos bench (fixed-seed lossy-link soak: ttcp through
# netem at 0–5% loss in all three configurations; the bench itself fails
# if any cell is not byte-exact), and the scatter-gather smoke (fixed
# seed; asserts sg send >= default send, zero flatten copies on the sg
# path, and byte-exactness with sg on under loss).
set -eux

dune build
dune runtest
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- alloc
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- chaos
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- sgsmoke
