#!/bin/sh
# Tier-1 gate: full build, test suites, and smoke runs of the allocator
# bench (tiny workload — we only check it runs and prints the speedup
# table) and the chaos bench (fixed-seed lossy-link soak: ttcp through
# netem at 0–5% loss in all three configurations; the bench itself fails
# if any cell is not byte-exact).
set -eux

dune build
dune runtest
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- alloc
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- chaos
