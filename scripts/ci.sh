#!/bin/sh
# Tier-1 gate: full build, test suites, and smoke runs of the allocator
# bench (tiny workload — we only check it runs and prints the speedup
# table), the chaos bench (fixed-seed lossy-link soak: ttcp through
# netem at 0–5% loss in all three configurations; the bench itself fails
# if any cell is not byte-exact), the scatter-gather smoke (fixed
# seed; asserts sg send >= default send, zero flatten copies on the sg
# path, and byte-exactness with sg on under loss), and the http smoke
# (64 concurrent clients against the httpd component on both stacks,
# both serving shapes; the bench fails on any protocol error, any
# non-byte-exact response, or reactor req/s below thread-per-connection),
# and the rtt smoke (receive fast path: flags-on transfers stay
# byte-exact under netem loss, the header-prediction run must strictly
# reduce mean RTT with zero fallbacks on a clean in-order wire, and
# batched RX must average more than one frame per poll under http load),
# and the longfat smoke (window scaling + NewReno + autotuning:
# byte-exact under 1% loss at 10 ms RTT in both stacks, scaled windows
# >= 5x the seed throughput at 50 ms, autotuned buffers >= 90% of manual
# BDP sizing, and the persist probe fires in a forced zero-window run),
# and the overload smoke (survival under deliberate abuse: with the SYN
# defense on, a 10x spoofed SYN flood must leave every legitimate client
# served at >= 70% of clean goodput on both stacks; a 1% injected
# allocation-failure soak must stay byte-exact with zero crashes; and
# the guarded httpd must reclaim Slowloris-parked connections by header
# deadline and still serve late legitimate clients),
# and the smp smoke (multi-CPU scale-out: the sharded reactor httpd at
# 1 and 4 CPUs under a 256-client burst; the bench fails on any
# non-byte-exact response, any netisr overflow drop, any spinlock
# contention on the per-flow hot path, 4-CPU req/s not strictly above
# 1-CPU, or steering that never fired),
# and the event smoke (the event core: kqueue dispatch work must stay
# flat as idle watches grow 100 -> 10000 while the legacy scan grows
# linearly; the timing wheel must fire zero timers early, none more
# than one granule late, and none missed, at O(due) work; and a full
# httpd transfer with both kq and timer_wheel on must stay byte-exact),
# and the file smoke (the HTTP/1.1 + sendfile content path: keep-alive
# req/s strictly above close-per-request at 64 clients, zero body bytes
# copied and zero fallbacks on warm-cache sendfile hits, every body
# byte-exact in both serving shapes, and the Linux rows carrying the
# counted copy fallback — that stack exports no sendv face).
# Finally, Table 1/2 and the rtt percentiles are regenerated (with
# --json, so the files are actually rewritten — without it the diff
# check was vacuous) with every long-fat, overload, smp, and event-core
# knob at its default — ncpus=1, kq and timer_wheel off — and must be
# bit-identical to the committed baselines: the SMP layer and the event
# core must cost nothing when off.
set -eux

dune build
dune runtest
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- alloc
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- chaos
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- sgsmoke
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- httpsmoke
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- rttsmoke
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- longfatsmoke
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- overloadsmoke
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- smpsmoke
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- eventsmoke
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- filesmoke
dune exec bench/main.exe -- table1 --sg --json
dune exec bench/main.exe -- table2 --json
dune exec bench/main.exe -- rtt --json
git diff --exit-code BENCH_table1.json BENCH_table2.json BENCH_rtt.json
