#!/bin/sh
# Tier-1 gate: full build, test suites, and a smoke run of the allocator
# bench (tiny workload — we only check it runs and prints the speedup
# table, not the absolute numbers).
set -eux

dune build
dune runtest
OSKIT_BENCH_BLOCKS=64 dune exec bench/main.exe -- alloc
