(* ttcp — the bandwidth benchmark of Section 5 / Table 1.

   Transmits N blocks of B bytes (paper: 131072 x 4096 = 512 MB) over TCP
   between two simulated PCs on a 100 Mbps segment, in one of three
   configurations:

     oskit    FreeBSD protocol stack over Linux drivers, all boundaries
              crossed through COM interfaces and glue (the paper's Fig. 3)
     freebsd  monolithic FreeBSD: same stack bound natively, no glue
     linux    monolithic Linux: the Linux inet stack over the same drivers

   Usage: ttcp [config] [blocks] [blocksize]
   Defaults: oskit 4096 4096 (16 MB — the paper's full 512 MB works too,
   it just takes a few wall-clock minutes of simulation; the bench harness
   uses a calibrated fraction). *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> failwith ("ttcp: " ^ Error.to_string e)

type result = {
  bytes : int;
  send_done_ns : int; (* sender-local elapsed, like ttcp's timer *)
  recv_done_ns : int;
  copies : int;
  glue_crossings : int;
}

(* The three configurations share one shape: a server thread that sinks
   bytes and a client thread that pushes [blocks] x [blocksize]. *)

let run_config config ~blocks ~blocksize =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let total = blocks * blocksize in
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  let a = tb.Clientos.host_a and b = tb.Clientos.host_b in
  let received = ref 0 in
  let done_recv = ref 0 in
  let done_send = ref 0 in
  let block = Bytes.make blocksize 'T' in
  let start_a = ref 0 in
  let sink recv =
    let buf = Bytes.create 16384 in
    let rec loop () =
      match recv buf 16384 with
      | 0 -> done_recv := Machine.now b.Clientos.machine
      | n ->
          received := !received + n;
          loop ()
    in
    loop ()
  in
  let push send close =
    Kclock.sleep_ns 2_000_000;
    start_a := Machine.now a.Clientos.machine;
    for _ = 1 to blocks do
      let sent = send block blocksize in
      if sent <> blocksize then failwith "short send"
    done;
    done_send := Machine.now a.Clientos.machine - !start_a;
    close ()
  in
  (match config with
  | `Oskit ->
      let env_a, _ = Clientos.oskit_host a ~ip:(ip "10.0.0.1") ~mask in
      let env_b, _ = Clientos.oskit_host b ~ip:(ip "10.0.0.2") ~mask in
      Clientos.spawn b ~name:"ttcp-r" (fun () ->
          let fd = ok (Posix.socket env_b Io_if.Sock_stream) in
          ok (Posix.bind env_b fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 5001 });
          ok (Posix.listen env_b fd ~backlog:1);
          let conn, _ = ok (Posix.accept env_b fd) in
          sink (fun buf len -> ok (Posix.recv env_b conn buf ~pos:0 ~len)));
      Clientos.spawn a ~name:"ttcp-t" (fun () ->
          let fd = ok (Posix.socket env_a Io_if.Sock_stream) in
          ok (Posix.connect env_a fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 5001 });
          push
            (fun buf len -> ok (Posix.send env_a fd buf ~pos:0 ~len))
            (fun () -> ignore (Posix.shutdown env_a fd)))
  | `Freebsd ->
      let sa = Clientos.freebsd_host a ~ip:(ip "10.0.0.1") ~mask in
      let sb = Clientos.freebsd_host b ~ip:(ip "10.0.0.2") ~mask in
      Clientos.spawn b ~name:"ttcp-r" (fun () ->
          let ls = Bsd_socket.tcp_socket sb in
          ok (Bsd_socket.so_bind ls ~port:5001);
          ok (Bsd_socket.so_listen ls ~backlog:1);
          let conn = ok (Bsd_socket.so_accept ls) in
          sink (fun buf len -> ok (Bsd_socket.so_recv conn ~buf ~pos:0 ~len)));
      Clientos.spawn a ~name:"ttcp-t" (fun () ->
          let s = Bsd_socket.tcp_socket sa in
          ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:5001);
          push
            (fun buf len -> ok (Bsd_socket.so_send s ~buf ~pos:0 ~len))
            (fun () -> ignore (Bsd_socket.so_close s)))
  | `Linux ->
      let sa = Clientos.linux_host a ~ip:(ip "10.0.0.1") ~mask in
      let sb = Clientos.linux_host b ~ip:(ip "10.0.0.2") ~mask in
      Clientos.spawn b ~name:"ttcp-r" (fun () ->
          let ls = Linux_inet.socket sb in
          Linux_inet.bind sb ls ~port:5001;
          Linux_inet.listen sb ls ~backlog:1;
          let conn = ok (Linux_inet.accept sb ls) in
          sink (fun buf len -> ok (Linux_inet.recv sb conn ~buf ~pos:0 ~len)));
      Clientos.spawn a ~name:"ttcp-t" (fun () ->
          let s = Linux_inet.socket sa in
          ok (Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:5001);
          push
            (fun buf len -> ok (Linux_inet.send sa s ~buf ~pos:0 ~len))
            (fun () -> Linux_inet.close sa s)));
  Cost.reset_counters ();
  Clientos.run tb ~until:(fun () -> !done_recv > 0);
  if !received <> total then
    failwith (Printf.sprintf "ttcp: received %d of %d" !received total);
  { bytes = total;
    send_done_ns = !done_send;
    recv_done_ns = !done_recv;
    copies = Cost.counters.Cost.copies;
    glue_crossings = Cost.counters.Cost.glue_crossings }

let mbit_per_s bytes ns = float_of_int bytes *. 8.0 /. float_of_int ns *. 1e3

let config_of_string = function
  | "oskit" -> `Oskit
  | "freebsd" -> `Freebsd
  | "linux" -> `Linux
  | s -> failwith ("unknown config: " ^ s ^ " (oskit|freebsd|linux)")

let name_of = function `Oskit -> "OSKit" | `Freebsd -> "FreeBSD" | `Linux -> "Linux"

let () =
  let config =
    if Array.length Sys.argv > 1 then config_of_string Sys.argv.(1) else `Oskit
  in
  let blocks = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4096 in
  let blocksize = if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 4096 in
  Printf.printf "ttcp: %s, %d blocks x %d bytes = %d MB over 100 Mbps Ethernet\n%!"
    (name_of config) blocks blocksize
    (blocks * blocksize / 1024 / 1024);
  let r = run_config config ~blocks ~blocksize in
  Printf.printf "  sender elapsed:   %8.1f ms -> %6.2f Mbit/s (send side)\n"
    (float_of_int r.send_done_ns /. 1e6)
    (mbit_per_s r.bytes r.send_done_ns);
  Printf.printf "  receiver done at: %8.1f ms -> %6.2f Mbit/s (end to end)\n"
    (float_of_int r.recv_done_ns /. 1e6)
    (mbit_per_s r.bytes r.recv_done_ns);
  Printf.printf "  data copies: %d   glue crossings: %d\n" r.copies r.glue_crossings
