(* minikernel — a Fluke-flavoured prototype kernel (Section 6.1.1).

   "The OSKit has also enhanced and accelerated our OS research by allowing
   us to quickly create several prototype kernels in order to explore ideas
   before investing the effort necessary to incorporate these ideas into
   the much larger primary development system."

   This prototype explores an IPC design: synchronous ports with
   capability-like handles, layered entirely on OSKit pieces — threads and
   sleep records from the kernel library, address spaces from AMM + page
   tables over LMM memory, program loading from exec + boot modules.  It
   runs three "user tasks" that talk through ports. *)

(* --- the experimental IPC layer (the "research" part) --- *)

type message = { sender : string; payload : string }

type port = {
  port_name : string;
  queue : message Queue.t;
  mutable capacity : int;
  recv_wait : Sleep_record.t;
  send_wait : Sleep_record.t;
}

let make_port ?(capacity = 4) name =
  { port_name = name; queue = Queue.create (); capacity;
    recv_wait = Sleep_record.create ~name:(name ^ ".recv") ();
    send_wait = Sleep_record.create ~name:(name ^ ".send") () }

(* Synchronous bounded send: blocks while the queue is full. *)
let port_send port msg =
  while Queue.length port.queue >= port.capacity do
    Sleep_record.sleep port.send_wait
  done;
  Queue.add msg port.queue;
  Sleep_record.wakeup port.recv_wait

let port_recv port =
  let rec wait () =
    match Queue.take_opt port.queue with
    | Some msg ->
        Sleep_record.wakeup port.send_wait;
        msg
    | None ->
        Sleep_record.sleep port.recv_wait;
        wait ()
  in
  wait ()

(* --- task address spaces from OSKit memory components --- *)

type task = { task_name : string; aspace : Amm.t; pt : Page_table.t }

let () =
  let world = World.create () in
  let machine = Machine.create ~name:"fluke-proto" world in
  let kernel = Kernel.create machine in
  let ram = Machine.ram machine in

  (* Boot with a user program as a boot module. *)
  let user_prog =
    Exec.pack
      { Exec.entry = 0x400000l; load_va = 0x400000l;
        text = String.make 8192 '\x90'; data = "initialised"; bss_size = 4096 }
  in
  let image = Loader.make_image ~payload:"minikernel" in
  let loaded =
    Loader.load machine ~image ~cmdline:"minikernel ipc-experiment"
      ~modules:[ "servers/init", Bytes.to_string user_prog ]
  in
  let lmm = Lmm.create () in
  Bootmem.populate lmm loaded ~ram_bytes:(Physmem.size ram);

  let alloc_page () =
    let a = Option.get (Lmm.alloc_page lmm ~flags:0) in
    Physmem.fill ram ~addr:a ~len:4096 0;
    a
  in
  let make_task name =
    { task_name = name;
      aspace = Amm.create ~lo:0x400000 ~hi:0x80000000 ~flags:Amm.free;
      pt = Page_table.create ~ram ~alloc_page }
  in

  (* Load the init server from its boot module into a task. *)
  let init_task = make_task "init" in
  let bootfs = Bootmod_fs.make ram loaded.Loader.info in
  let env = Posix.create_env () in
  Posix.set_root env (Some bootfs);
  Kernel.spawn kernel ~name:"loader" (fun () ->
      match Posix.lookup env "/servers/init" with
      | Ok (Io_if.Node_file f) ->
          let st = match f.Io_if.f_getstat () with Ok st -> st | Error _ -> assert false in
          let buf = Bytes.create st.Io_if.st_size in
          (match f.Io_if.f_read ~buf ~pos:0 ~offset:0 ~amount:st.Io_if.st_size with
          | Ok _ -> ()
          | Error _ -> assert false);
          (match Exec.parse buf with
          | Ok img ->
              (* Reserve the range in the task's address map, grab pages
                 from the LMM, load, map. *)
              let size = String.length img.Exec.text + String.length img.Exec.data + img.Exec.bss_size in
              Amm.set init_task.aspace ~addr:0x400000 ~size ~flags:Amm.allocated;
              let phys = Option.get (Lmm.alloc_aligned lmm ~size ~flags:0 ~align_bits:12 ~align_ofs:0) in
              let l = Exec.load ram img ~at:phys in
              Exec.map_into init_task.pt img l;
              Printf.printf "[loader] %s: mapped %d pages at 0x400000 (entry %#lx)\n"
                init_task.task_name
                (Page_table.mapped_pages init_task.pt)
                l.Exec.l_entry
          | Error _ -> assert false)
      | _ -> assert false);

  (* --- three tasks exercising the IPC design --- *)
  let name_service = make_port "name-service" in
  let reply_port = make_port "reply" in
  let log = ref [] in

  Kernel.spawn kernel ~name:"nameserver" (fun () ->
      (* Serve two requests, then exit. *)
      for _ = 1 to 2 do
        let req = port_recv name_service in
        log := Printf.sprintf "nameserver <- %s: %s" req.sender req.payload :: !log;
        port_send reply_port
          { sender = "nameserver"; payload = "resolved:" ^ req.payload }
      done);

  Kernel.spawn kernel ~name:"client-a" (fun () ->
      port_send name_service { sender = "client-a"; payload = "console" };
      let r = port_recv reply_port in
      log := Printf.sprintf "client-a <- %s" r.payload :: !log);

  Kernel.spawn kernel ~name:"client-b" (fun () ->
      Kclock.sleep_ns 1000;
      port_send name_service { sender = "client-b"; payload = "disk0" };
      let r = port_recv reply_port in
      log := Printf.sprintf "client-b <- %s" r.payload :: !log);

  World.run world;
  List.iter print_endline (List.rev !log);
  Printf.printf "address space of init: %d bytes allocated\n"
    (Amm.bytes_matching init_task.aspace ~flags:Amm.allocated ~mask:max_int);
  Printf.printf "free kernel memory: %d KB\n" (Lmm.avail lmm ~flags:0 / 1024);
  match Thread.failures (Kernel.sched kernel) with
  | [] -> print_endline "minikernel: all tasks completed"
  | l -> List.iter (fun (n, e) -> Printf.printf "task %s died: %s\n" n (Printexc.to_string e)) l
