(* Quickstart: the paper's claim that "a Hello World kernel is as simple as
   an ordinary Hello World application in C" (Section 3.2).

   A MultiBoot loader places the kernel and one boot module in simulated
   RAM; the kernel support library sets up the machine; the client OS is
   nothing but a [main] that uses the minimal C library.  printf works
   because the client provided a putchar — the whole override chain of
   Section 4.3.1 in action. *)

let () =
  let world = World.create () in
  let machine = Machine.create ~name:"quickstart-pc" world in
  let kernel = Kernel.create machine in

  (* The boot loader: kernel image + a boot module + command line. *)
  let image = Loader.make_image ~payload:"hello-kernel-text" in
  let loaded =
    Loader.load machine ~image ~cmdline:"hello --verbose"
      ~modules:[ "etc/motd", "Welcome to the OSKit reproduction!\n" ]
  in

  (* Boot-time memory setup: LMM primed from the loader's memory map. *)
  let lmm = Lmm.create () in
  Bootmem.populate lmm loaded ~ram_bytes:(Physmem.size (Machine.ram machine));

  (* The client OS provides putchar; printf follows. *)
  Ministdio.reset ();
  Ministdio.set_putchar (fun c -> Kernel.console_putc kernel c);

  (* The boot-module file system gives POSIX open/read immediately. *)
  let env = Posix.create_env () in
  Posix.set_root env (Some (Bootmod_fs.make (Machine.ram machine) loaded.Loader.info));

  (* main(), in the standard style. *)
  Kernel.spawn kernel ~name:"main" (fun () ->
      Ministdio.printf "Hello, World!\n" [];
      Ministdio.printf "cmdline: %s\n" [ Ministdio.Str loaded.Loader.info.Multiboot.cmdline ];
      Ministdio.printf "free memory: %d KB (%d KB DMA-capable)\n"
        [ Ministdio.Int (Lmm.avail lmm ~flags:0 / 1024);
          Ministdio.Int (Lmm.avail lmm ~flags:Lmm.flag_low_16mb / 1024) ];
      match Posix.open_ env "/etc/motd" Posix.o_rdonly with
      | Ok fd ->
          let buf = Bytes.create 256 in
          (match Posix.read env fd buf ~pos:0 ~len:256 with
          | Ok n -> Ministdio.printf "motd: %s" [ Ministdio.Str (Bytes.sub_string buf 0 n) ]
          | Error e -> Ministdio.printf "read failed: %s\n" [ Ministdio.Str (Error.to_string e) ]);
          ignore (Posix.close env fd)
      | Error e -> Ministdio.printf "open failed: %s\n" [ Ministdio.Str (Error.to_string e) ]);

  World.run world;
  print_string (Kernel.console_output kernel);
  Printf.printf "(kernel ran for %d virtual ns)\n" (Machine.now machine)
