(* debug_session — the source-level kernel debugging story of Section 3.5.

   "The OSKit's kernel support library includes a serial-line stub for the
   GNU debugger ... a small module that handles traps in the client OS
   environment and communicates over a serial line with GDB running on
   another machine."

   Two simulated PCs are connected null-modem: the target runs a client
   kernel whose trap handler enters the GDB stub; the "developer
   workstation" drives the stub with real remote-serial-protocol packets —
   reading registers, inspecting and patching target memory, setting a
   breakpoint, and resuming the kernel. *)

let () =
  let world = World.create () in
  let target = Machine.create ~name:"target-pc" world in
  let devbox = Machine.create ~name:"dev-pc" world in
  let tkernel = Kernel.create target in
  let _dkernel = Kernel.create devbox in

  (* Null-modem between the two machines. *)
  let t_serial = Serial.create ~machine:target ~irq:3 () in
  let d_serial = Serial.create ~machine:devbox ~irq:3 () in
  Serial.connect t_serial d_serial;

  (* Target side: the stub, fed from the serial IRQ; traps enter it. *)
  let stub =
    Gdb_stub.create ~ram:(Machine.ram target)
      ~send:(fun s -> Machine.run_in target (fun () -> Serial.write_string t_serial s))
  in
  let resumed = ref false in
  Machine.set_irq_handler target ~irq:3 (fun () ->
      let b = Buffer.create 16 in
      let rec drain () =
        match Serial.read_byte t_serial with
        | Some c ->
            Buffer.add_char b (Char.chr c);
            drain ()
        | None -> ()
      in
      drain ();
      match Gdb_stub.feed stub (Buffer.contents b) with
      | `Resume `Continue -> resumed := true
      | `Resume `Step | `Killed | `Stopped -> ());
  Machine.unmask_irq target ~irq:3;

  (* Something recognisable in target memory. *)
  Physmem.blit_from_bytes (Machine.ram target)
    ~src:(Bytes.of_string "kernel panic: NULL at line 42") ~src_pos:0 ~dst_addr:0x5000
    ~len:29;

  (* The client kernel hits a breakpoint trap and enters the stub. *)
  Kernel.spawn tkernel ~name:"client-os" (fun () ->
      print_endline "[target] kernel running...";
      let frame = Trap.make_frame ~eip:0x1234l Trap.T_breakpoint in
      frame.Trap.eax <- 0xdeadbeefl;
      frame.Trap.esp <- 0x9000l;
      print_endline "[target] int3 — entering the GDB stub";
      Gdb_stub.enter stub frame ~signal:5;
      (* Kernel is now "stopped": wait for the remote to continue us. *)
      while not !resumed do
        Kclock.sleep_ns 1_000_000
      done;
      print_endline "[target] resumed by the debugger");

  (* Developer side: a minimal GDB speaking the real protocol. *)
  let d_parser = Gdb_proto.create_parser () in
  let replies = Queue.create () in
  Machine.set_irq_handler devbox ~irq:3 (fun () ->
      let rec drain () =
        match Serial.read_byte d_serial with
        | Some c ->
            (match Gdb_proto.feed d_parser (Char.chr c) with
            | `Packet payload -> Queue.add payload replies
            | `None | `Ack | `Nak | `Bad -> ());
            drain ()
        | None -> ()
      in
      drain ());
  Machine.unmask_irq devbox ~irq:3;

  let dsched = Thread.create_sched devbox in
  Thread.install dsched;
  let send_cmd cmd =
    Machine.run_in devbox (fun () -> Serial.write_string d_serial (Gdb_proto.frame cmd))
  in
  let wait_reply () =
    let rec w () =
      match Queue.take_opt replies with
      | Some r -> r
      | None ->
          Kclock.sleep_ns 500_000;
          w ()
    in
    w ()
  in
  Thread.spawn dsched ~name:"gdb" (fun () ->
      (* Wait for the stop reply announcing the trap. *)
      let stop = wait_reply () in
      Printf.printf "[gdb] target stopped: %s\n" stop;
      send_cmd "g";
      let regs = wait_reply () in
      Printf.printf "[gdb] eax = 0x%s (little-endian wire: %s)\n"
        (let le = String.sub regs 0 8 in
         String.concat ""
           (List.rev [ String.sub le 0 2; String.sub le 2 2; String.sub le 4 2; String.sub le 6 2 ]))
        (String.sub regs 0 8);
      send_cmd "m5000,1d";
      let mem = wait_reply () in
      Printf.printf "[gdb] x/s 0x5000: %S\n" (Gdb_proto.string_of_hex mem);
      (* Patch the panic line number "42" (offset 0x1b) -> "13". *)
      send_cmd ("M501b,2:" ^ Gdb_proto.hex_of_string "13");
      Printf.printf "[gdb] patch reply: %s\n" (wait_reply ());
      send_cmd "Z0,1234,1";
      Printf.printf "[gdb] breakpoint set: %s\n" (wait_reply ());
      send_cmd "c";
      print_endline "[gdb] continue");
  Machine.kick devbox;

  World.run world ~until:(fun () -> !resumed);
  (* Let the target print its resumption message. *)
  World.run world ~until:(fun () -> World.pending world = 0);
  let probe = Bytes.create 29 in
  Physmem.blit_to_bytes (Machine.ram target) ~src_addr:0x5000 ~dst:probe ~dst_pos:0 ~len:29;
  Printf.printf "[target] memory after patch: %S\n" (Bytes.to_string probe);
  Printf.printf "[target] stub breakpoints: %s\n"
    (String.concat ", "
       (List.map (Printf.sprintf "%#lx") (Gdb_stub.breakpoints stub)))
