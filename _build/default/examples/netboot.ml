(* netboot — "specialized kernels to boot other kernels across the
   network" (Section 6.1.5).

   A boot server stores a MultiBoot kernel image in its NetBSD file system;
   a diskless client runs a tiny netboot kernel (OSKit configuration) that
   fetches the image over UDP, validates the MultiBoot header, and boots it
   on its own machine — demonstrating the loader, file system, network and
   POSIX components all bound into one small utility. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> failwith ("netboot: " ^ Error.to_string e)

let chunk = 1024

let () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("eepro100", "NE2000") () in
  let server = tb.Clientos.host_a and client = tb.Clientos.host_b in
  let env_s, _ = Clientos.oskit_host server ~ip:(ip "10.0.0.1") ~mask in
  let env_c, _ = Clientos.oskit_host client ~ip:(ip "10.0.0.2") ~mask in

  (* The server's disk: a file system holding the payload kernel. *)
  let payload_kernel =
    Loader.make_image ~payload:("PAYLOAD-KERNEL " ^ String.make 20000 'P')
  in
  let dev = Mem_blkio.make ~bytes:(2 * 1024 * 1024) () in
  let root = ok (Fs_glue.newfs dev) in
  Posix.set_root env_s (Some root);
  let fd = ok (Posix.open_ env_s "/vmunix" (Posix.o_creat lor Posix.o_rdwr)) in
  ignore (ok (Posix.write env_s fd payload_kernel ~pos:0 ~len:(Bytes.length payload_kernel)));
  ok (Posix.close env_s fd);

  (* Boot server: a trivial UDP protocol — request "get <path>", reply is a
     stream of <seq:u16><len:u16><data> datagrams, len 0 terminating. *)
  Clientos.spawn server ~name:"bootd" (fun () ->
      let sfd = ok (Posix.socket env_s Io_if.Sock_dgram) in
      ok (Posix.bind env_s sfd { Io_if.sin_addr = ip "10.0.0.1"; sin_port = 69 });
      let s = ok (Posix.socket_of_fd env_s sfd) in
      let buf = Bytes.create 512 in
      let n, peer = ok (s.Io_if.so_recvfrom ~buf ~pos:0 ~len:512) in
      let request = Bytes.sub_string buf 0 n in
      match String.split_on_char ' ' request with
      | [ "get"; path ] ->
          Printf.printf "[bootd] sending %s to %s\n%!" path (Oskit.string_of_ip peer.Io_if.sin_addr);
          let kfd = ok (Posix.open_ env_s path Posix.o_rdonly) in
          let data = Bytes.create chunk in
          let pkt = Bytes.create (chunk + 4) in
          let rec send_all seq =
            let n = ok (Posix.read env_s kfd data ~pos:0 ~len:chunk) in
            Bytes.set_uint16_le pkt 0 (seq land 0xffff);
            Bytes.set_uint16_le pkt 2 n;
            Bytes.blit data 0 pkt 4 n;
            ignore (ok (s.Io_if.so_sendto ~buf:pkt ~pos:0 ~len:(n + 4) ~dst:peer));
            if n > 0 then begin
              (* Pace the blast so the client's socket buffer keeps up (the
                 real protocol would ack per block). *)
              Kclock.sleep_ns 200_000;
              send_all (seq + 1)
            end
          in
          send_all 0;
          ok (Posix.close env_s kfd)
      | _ -> print_endline "[bootd] bad request");

  (* The netboot client. *)
  let booted = ref false in
  Clientos.spawn client ~name:"netboot" (fun () ->
      Kclock.sleep_ns 3_000_000;
      let fd = ok (Posix.socket env_c Io_if.Sock_dgram) in
      ok (Posix.bind env_c fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 2069 });
      let s = ok (Posix.socket_of_fd env_c fd) in
      let req = Bytes.of_string "get /vmunix" in
      ignore
        (ok
           (s.Io_if.so_sendto ~buf:req ~pos:0 ~len:(Bytes.length req)
              ~dst:{ Io_if.sin_addr = ip "10.0.0.1"; sin_port = 69 }));
      let image = Buffer.create 32768 in
      let pkt = Bytes.create (chunk + 4) in
      let rec fetch expected =
        let n, _ = ok (s.Io_if.so_recvfrom ~buf:pkt ~pos:0 ~len:(chunk + 4)) in
        if n < 4 then failwith "short packet";
        let seq = Bytes.get_uint16_le pkt 0 in
        let len = Bytes.get_uint16_le pkt 2 in
        if seq <> expected land 0xffff then failwith "out-of-order block";
        if len > 0 then begin
          Buffer.add_subbytes image pkt 4 len;
          fetch (expected + 1)
        end
      in
      fetch 0;
      let img = Buffer.to_bytes image in
      Printf.printf "[netboot] fetched %d bytes over UDP\n%!" (Bytes.length img);
      (* Validate and boot it on this machine. *)
      (match Loader.validate_image img with
      | Ok () -> print_endline "[netboot] MultiBoot header valid"
      | Error msg -> failwith msg);
      let loaded =
        Loader.load client.Clientos.machine ~image:img ~cmdline:"netbooted root=nfs"
          ~modules:[]
      in
      Printf.printf "[netboot] payload kernel loaded at %#x..%#x, cmdline %S\n%!"
        loaded.Loader.kernel_start loaded.Loader.kernel_end
        loaded.Loader.info.Multiboot.cmdline;
      (* Prove the bytes made it into client RAM intact. *)
      let probe = Bytes.create 14 in
      Physmem.blit_to_bytes
        (Machine.ram client.Clientos.machine)
        ~src_addr:(loaded.Loader.kernel_start + 12)
        ~dst:probe ~dst_pos:0 ~len:14;
      Printf.printf "[netboot] kernel text begins: %S\n" (Bytes.to_string probe);
      booted := true);

  Clientos.run tb ~until:(fun () -> !booted);
  Printf.printf "netboot complete in %.2f virtual ms\n"
    (float_of_int (World.now tb.Clientos.world) /. 1e6)
