examples/netcomputer.mli:
