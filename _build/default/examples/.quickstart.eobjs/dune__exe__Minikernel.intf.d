examples/minikernel.mli:
