examples/ttcp.ml: Array Bsd_socket Bytes Clientos Cost Error Fdev Io_if Kclock Linux_inet Machine Oskit Posix Printf Sys
