examples/secure_fs.ml: Buffer Bytes Com Error Fs_glue Hashtbl Iid Io_if Lazy List Mem_blkio Option Posix Printf Result String
