examples/netboot.ml: Buffer Bytes Clientos Error Fdev Fs_glue Io_if Kclock Loader Machine Mem_blkio Multiboot Oskit Physmem Posix Printf String World
