examples/quickstart.mli:
