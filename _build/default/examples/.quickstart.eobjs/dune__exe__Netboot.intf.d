examples/netboot.mli:
