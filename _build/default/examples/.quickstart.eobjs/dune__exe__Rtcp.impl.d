examples/rtcp.ml: Array Bsd_socket Bytes Clientos Error Fdev Io_if Kclock Linux_inet Machine Oskit Posix Printf Sys
