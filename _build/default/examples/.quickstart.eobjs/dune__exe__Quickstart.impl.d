examples/quickstart.ml: Bootmem Bootmod_fs Bytes Error Kernel Lmm Loader Machine Ministdio Multiboot Physmem Posix Printf World
