examples/secure_fs.mli:
