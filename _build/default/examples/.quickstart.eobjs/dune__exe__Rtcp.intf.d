examples/rtcp.mli:
