examples/debug_session.mli:
