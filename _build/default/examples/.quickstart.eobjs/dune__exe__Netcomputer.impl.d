examples/netcomputer.ml: Bootmod_fs Bytes Clientos Cost Error Fdev Io_if Kclock Kernel Loader Machine Oskit Posix Printf Trap Vm World
