examples/minikernel.ml: Amm Bootmem Bootmod_fs Bytes Exec Io_if Kclock Kernel List Lmm Loader Machine Option Page_table Physmem Posix Printexc Printf Queue Sleep_record String Thread World
