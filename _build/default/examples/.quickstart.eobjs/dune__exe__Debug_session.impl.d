examples/debug_session.ml: Buffer Bytes Char Gdb_proto Gdb_stub Kclock Kernel List Machine Physmem Printf Queue Serial String Thread Trap World
