examples/ttcp.mli:
