(* secure_fs — the highly secure file server of Section 3.8.

   "The OSKit file system's exported COM interfaces ... are of sufficiently
   fine granularity that we were able to leave untouched the internals of
   the OSKit file system.  For example, the OSKit interface accepts only
   single pathname components, allowing the security wrapping code to do
   appropriate permission checking."

   This example interposes a security wrapper between clients and the real
   NetBSD-derived file system: every [lookup]/[create]/[unlink]/... goes
   through a per-component mandatory access check against a label table.
   Because names arrive one component at a time, the wrapper cannot be
   bypassed with "../" tricks — the check happens at every step.  The
   wrapped objects are ordinary COM [dir]/[file] interfaces, so the
   unmodified POSIX layer runs on top of the wrapper. *)

type principal = { name : string; clearance : int }

let unclassified = 0
let secret = 1

(* The wrapper: a dir view that filters by label.  Labels attach to names
   created with [set_label]; everything else is unclassified. *)
let label_table : (string, int) Hashtbl.t = Hashtbl.create 16

let label_of name = Option.value (Hashtbl.find_opt label_table name) ~default:unclassified

let audit_log = Buffer.create 256

let audit principal op name allowed =
  Buffer.add_string audit_log
    (Printf.sprintf "%-6s %-8s %-16s %s\n" principal.name op name
       (if allowed then "PERMIT" else "DENY"))

let rec wrap_dir principal (inner : Io_if.dir) : Io_if.dir =
  let check op name =
    let allowed = label_of name <= principal.clearance in
    audit principal op name allowed;
    allowed
  in
  let wrap_node = function
    | Io_if.Node_dir d -> Io_if.Node_dir (wrap_dir principal d)
    | Io_if.Node_file f -> Io_if.Node_file f
  in
  let rec view () =
    { Io_if.d_unknown = unknown ();
      d_getstat = inner.Io_if.d_getstat;
      d_lookup =
        (fun name ->
          if check "lookup" name then Result.map wrap_node (inner.Io_if.d_lookup name)
          else Result.Error Error.Acces);
      d_create =
        (fun name ->
          if check "create" name then inner.Io_if.d_create name
          else Result.Error Error.Acces);
      d_mkdir =
        (fun name ->
          if check "mkdir" name then
            Result.map (wrap_dir principal) (inner.Io_if.d_mkdir name)
          else Result.Error Error.Acces);
      d_unlink =
        (fun name ->
          if check "unlink" name then inner.Io_if.d_unlink name
          else Result.Error Error.Acces);
      d_rmdir =
        (fun name ->
          if check "rmdir" name then inner.Io_if.d_rmdir name else Result.Error Error.Acces);
      d_rename =
        (fun src dst_dir dst_name ->
          if check "rename" src && check "rename" dst_name then
            inner.Io_if.d_rename src dst_dir dst_name
          else Result.Error Error.Acces);
      d_readdir =
        (fun () ->
          (* Directory listings are filtered: names above clearance do not
             exist as far as this principal can tell. *)
          Result.map
            (List.filter (fun name -> label_of name <= principal.clearance))
            (inner.Io_if.d_readdir ()));
      d_sync = inner.Io_if.d_sync }
  and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.dir_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()

let ok = function
  | Ok v -> v
  | Error e -> failwith ("secure_fs: " ^ Error.to_string e)

let expect_denied label = function
  | Error Error.Acces -> Printf.printf "  %-34s -> EACCES (as intended)\n" label
  | Ok _ -> Printf.printf "  %-34s -> PERMITTED (security hole!)\n" label
  | Error e -> Printf.printf "  %-34s -> %s\n" label (Error.to_string e)

let () =
  (* A real file system on a RAM disk, populated by an administrator. *)
  let dev = Mem_blkio.make ~bytes:(2 * 1024 * 1024) () in
  let real_root = ok (Fs_glue.newfs dev) in
  let admin_env = Posix.create_env () in
  Posix.set_root admin_env (Some real_root);
  let write_file env path content =
    let fd = ok (Posix.open_ env path (Posix.o_creat lor Posix.o_rdwr)) in
    let b = Bytes.of_string content in
    ignore (ok (Posix.write env fd b ~pos:0 ~len:(Bytes.length b)));
    ok (Posix.close env fd)
  in
  ok (Posix.mkdir admin_env "/pub");
  ok (Posix.mkdir admin_env "/vault");
  write_file admin_env "/pub/readme" "public information";
  write_file admin_env "/vault/launch-codes" "OSKIT-1997";
  Hashtbl.replace label_table "vault" secret;
  Hashtbl.replace label_table "launch-codes" secret;

  (* Two principals get POSIX environments over *wrapped* roots.  The file
     system internals are untouched; only the wrapper differs. *)
  let alice = { name = "alice"; clearance = secret } in
  let mallory = { name = "mallory"; clearance = unclassified } in
  let env_of principal =
    let env = Posix.create_env () in
    Posix.set_root env (Some (wrap_dir principal real_root));
    env
  in
  let env_alice = env_of alice and env_mallory = env_of mallory in

  Printf.printf "mallory (unclassified):\n";
  (match Posix.readdir env_mallory "/" with
  | Ok names -> Printf.printf "  sees in /: %s\n" (String.concat ", " (List.sort compare names))
  | Error e -> failwith (Error.to_string e));
  expect_denied "open /vault/launch-codes" (Posix.open_ env_mallory "/vault/launch-codes" Posix.o_rdonly);
  expect_denied "unlink /vault/launch-codes" (Posix.unlink env_mallory "/vault/launch-codes");
  expect_denied "creating file in /vault" (Posix.open_ env_mallory "/vault/dropper" (Posix.o_creat lor Posix.o_rdwr));
  (* The public file is fine. *)
  let fd = ok (Posix.open_ env_mallory "/pub/readme" Posix.o_rdonly) in
  let buf = Bytes.create 64 in
  let n = ok (Posix.read env_mallory fd buf ~pos:0 ~len:64) in
  Printf.printf "  reads /pub/readme: %S\n" (Bytes.sub_string buf 0 n);

  Printf.printf "alice (secret clearance):\n";
  (match Posix.readdir env_alice "/" with
  | Ok names -> Printf.printf "  sees in /: %s\n" (String.concat ", " (List.sort compare names))
  | Error e -> failwith (Error.to_string e));
  let fd = ok (Posix.open_ env_alice "/vault/launch-codes" Posix.o_rdonly) in
  let n = ok (Posix.read env_alice fd buf ~pos:0 ~len:64) in
  Printf.printf "  reads /vault/launch-codes: %S\n" (Bytes.sub_string buf 0 n);

  Printf.printf "\naudit log:\n%s" (Buffer.contents audit_log)
