(** Boot loaders.

    [load] is a compliant MultiBoot loader for the simulated machine: it
    places a kernel image and boot modules in extended memory, writes the
    info structure, and reports where everything landed.  The [via_*]
    adaptors reproduce the OSKit's tools for starting MultiBoot kernels
    from older environments (BSD/Linux boot blocks, MS-DOS): each wraps the
    image in that environment's format and then performs the same load. *)

(** A MultiBoot kernel image: header + payload, as flat bytes.  The payload
    stands in for the kernel text; the simulator never executes it, but the
    loader checks the header exactly as a real one would. *)
val make_image : payload:string -> bytes

(** [validate_image img] checks magic and checksum within the first 8 KB,
    per the specification. *)
val validate_image : bytes -> (unit, string) result

type loaded = {
  info_addr : int;  (** where the info structure was written *)
  info : Multiboot.info;
  kernel_start : int;
  kernel_end : int;
}

(** [load machine ~image ~cmdline ~modules] — modules are [(string, data)]
    pairs, placed page-aligned above the kernel.  Raises [Failure] if the
    image is not MultiBoot-compliant or memory is too small. *)
val load : Machine.t -> image:bytes -> cmdline:string -> modules:(string * string) list -> loaded

(** Chain-load adaptors (Section 3.1: "tools that allow these MultiBoot
    kernels to be loaded from older BSD and Linux boot loaders, and from
    MS-DOS").  Each wraps/unwraps its container format, then [load]s. *)

val wrap_bsd : bytes -> bytes

val wrap_linux : bytes -> bytes
val wrap_dos : bytes -> bytes

(** [load_wrapped] auto-detects the container, unwraps, and loads. *)
val load_wrapped :
  Machine.t -> image:bytes -> cmdline:string -> modules:(string * string) list -> loaded
