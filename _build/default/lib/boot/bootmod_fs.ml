(* A tiny immutable tree assembled from the module list, then wrapped in
   COM dir/file interfaces on demand. *)

type tree = Tfile of Multiboot.module_ | Tdir of (string * tree) list ref

let insert root path m =
  let rec go node = function
    | [] -> ()
    | [ leaf ] -> (
        match node with
        | Tdir entries -> entries := (leaf, Tfile m) :: List.remove_assoc leaf !entries
        | Tfile _ -> ())
    | comp :: rest -> (
        match node with
        | Tfile _ -> ()
        | Tdir entries -> (
            match List.assoc_opt comp !entries with
            | Some child -> go child rest
            | None ->
                let child = Tdir (ref []) in
                entries := (comp, child) :: !entries;
                go child rest))
  in
  go root path

let err_rofs _ = Result.Error Error.Rofs

let rec file_of ram m ino : Io_if.file =
  let size = m.Multiboot.mod_end - m.Multiboot.mod_start in
  let rec view () =
    { Io_if.f_unknown = unknown ();
      f_read =
        (fun ~buf ~pos ~offset ~amount ->
          if offset < 0 then Result.Error Error.Inval
          else begin
            let n = max 0 (min amount (size - offset)) in
            Physmem.blit_to_bytes ram ~src_addr:(m.Multiboot.mod_start + offset) ~dst:buf
              ~dst_pos:pos ~len:n;
            Cost.charge_copy n;
            Ok n
          end);
      f_write = (fun ~buf:_ ~pos:_ ~offset:_ ~amount:_ -> Result.Error Error.Rofs);
      f_getstat =
        (fun () -> Ok { Io_if.st_ino = ino; st_size = size; st_kind = Io_if.Regular; st_nlink = 1 });
      f_setsize = err_rofs;
      f_sync = (fun () -> Ok ()) }
  and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.file_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()

and dir_of ram entries ino : Io_if.dir =
  let node_of name child =
    match child with
    | Tfile m -> Io_if.Node_file (file_of ram m (Hashtbl.hash name))
    | Tdir sub -> Io_if.Node_dir (dir_of ram sub (Hashtbl.hash name))
  in
  let rec view () =
    { Io_if.d_unknown = unknown ();
      d_getstat =
        (fun () ->
          Ok
            { Io_if.st_ino = ino;
              st_size = List.length !entries;
              st_kind = Io_if.Directory;
              st_nlink = 1 });
      d_lookup =
        (fun name ->
          match List.assoc_opt name !entries with
          | Some child -> Ok (node_of name child)
          | None -> Result.Error Error.Noent);
      d_create = (fun _ -> Result.Error Error.Rofs);
      d_mkdir = (fun _ -> Result.Error Error.Rofs);
      d_unlink = err_rofs;
      d_rmdir = err_rofs;
      d_rename = (fun _ _ _ -> Result.Error Error.Rofs);
      d_readdir = (fun () -> Ok (List.rev_map fst !entries));
      d_sync = (fun () -> Ok ()) }
  and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.dir_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()

let make ram info =
  let root = Tdir (ref []) in
  List.iter
    (fun m ->
      let path =
        List.filter (fun c -> c <> "") (String.split_on_char '/' m.Multiboot.mod_string)
      in
      insert root path m)
    info.Multiboot.modules;
  match root with Tdir entries -> dir_of ram entries 2 | Tfile _ -> assert false
