(** The boot-module file system (Section 6.2.2).

    "A simple RAM-disk file system accessible immediately upon bootstrap
    through POSIX's standard open/close/read/write interfaces" — each boot
    module appears as a read-only file named by its user-defined string,
    backed directly by the physical memory the loader put it in (no copy).
    Fluke used it as the root for its first server; ML/OS loaded its heap
    image from it; Java/PC its class files. *)

(** [make ram info] builds the root directory.  Module strings containing
    ['/'] create intermediate directories. *)
val make : Physmem.t -> Multiboot.info -> Io_if.dir
