(** The MultiBoot standard (Section 3.1).

    The interface between boot loaders and OS kernels the OSKit co-designed:
    the loader places the kernel and any number of uninterpreted "boot
    module" files in physical memory and hands the kernel one info
    structure describing memory and the modules, each with an arbitrary
    user-defined string.

    The info structure has both an OCaml form and the on-RAM binary layout
    (a compliant subset of the real one), so the loader/kernel handoff
    crosses simulated memory exactly as it does on hardware. *)

type module_ = {
  mod_start : int;  (** first byte, physical *)
  mod_end : int;  (** one past last byte *)
  mod_string : string;  (** user-defined; conventionally a name or cmdline *)
}

type mmap_entry = { mm_base : int; mm_length : int; mm_available : bool }

type info = {
  mem_lower_kb : int;  (** conventional memory below 1 MB, KB *)
  mem_upper_kb : int;  (** extended memory above 1 MB, KB *)
  cmdline : string;
  modules : module_ list;
  mmap : mmap_entry list;
}

(** The header magic a MultiBoot kernel image carries. *)
val header_magic : int32

(** The register value a compliant loader passes to the kernel. *)
val boot_magic : int32

(** [encode ram info ~at] writes the binary info structure (and its string
    and module tables) starting at physical [at]; returns one past the last
    byte written. *)
val encode : Physmem.t -> info -> at:int -> int

(** [decode ram ~at] parses a structure previously written by a compliant
    loader. *)
val decode : Physmem.t -> at:int -> info

(** Ranges a kernel must not allocate over: the info structure itself is
    excluded by construction; this lists the modules' ranges. *)
val reserved_ranges : info -> (int * int) list
