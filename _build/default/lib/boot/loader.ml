let header_flags = 0x0

(* The MultiBoot header must appear 4-aligned within the first 8192 bytes
   of the image; we put it right at the front. *)
let make_image ~payload =
  let b = Bytes.create (12 + String.length payload) in
  Bytes.set_int32_le b 0 Multiboot.header_magic;
  Bytes.set_int32_le b 4 (Int32.of_int header_flags);
  Bytes.set_int32_le b 8
    (Int32.neg (Int32.add Multiboot.header_magic (Int32.of_int header_flags)));
  Bytes.blit_string payload 0 b 12 (String.length payload);
  b

let validate_image img =
  let limit = min (Bytes.length img - 12) 8192 in
  let rec scan off =
    if off > limit then Result.Error "no MultiBoot header in first 8KB"
    else if Bytes.get_int32_le img off = Multiboot.header_magic then begin
      let flags = Bytes.get_int32_le img (off + 4) in
      let checksum = Bytes.get_int32_le img (off + 8) in
      if Int32.add (Int32.add Multiboot.header_magic flags) checksum = 0l then Ok ()
      else Result.Error "bad MultiBoot header checksum"
    end
    else scan (off + 4)
  in
  if Bytes.length img < 12 then Result.Error "image too small" else scan 0

type loaded = {
  info_addr : int;
  info : Multiboot.info;
  kernel_start : int;
  kernel_end : int;
}

let page_up a = (a + 4095) land lnot 4095

let load machine ~image ~cmdline ~modules =
  (match validate_image image with
  | Ok () -> ()
  | Result.Error msg -> failwith ("boot loader: " ^ msg));
  let ram = Machine.ram machine in
  let total = Physmem.size ram in
  let kernel_start = 0x100000 (* 1 MB, the conventional load address *) in
  let kernel_end = kernel_start + Bytes.length image in
  if kernel_end >= total then failwith "boot loader: kernel does not fit";
  Physmem.blit_from_bytes ram ~src:image ~src_pos:0 ~dst_addr:kernel_start
    ~len:(Bytes.length image);
  (* Boot modules, page-aligned, above the kernel. *)
  let cursor = ref (page_up kernel_end) in
  let modules =
    List.map
      (fun (name, data) ->
        let start = !cursor in
        let len = String.length data in
        if start + len >= total then failwith "boot loader: module does not fit";
        Physmem.blit_from_bytes ram ~src:(Bytes.of_string data) ~src_pos:0 ~dst_addr:start
          ~len;
        cursor := page_up (start + len);
        { Multiboot.mod_start = start; mod_end = start + len; mod_string = name })
      modules
  in
  let info_addr = !cursor in
  let info =
    { Multiboot.mem_lower_kb = 640;
      mem_upper_kb = (total - 0x100000) / 1024;
      cmdline;
      modules;
      mmap =
        [ { Multiboot.mm_base = 0; mm_length = 640 * 1024; mm_available = true };
          { Multiboot.mm_base = 640 * 1024; mm_length = 0x100000 - (640 * 1024); mm_available = false };
          { Multiboot.mm_base = 0x100000; mm_length = total - 0x100000; mm_available = true } ] }
  in
  let _end = Multiboot.encode ram info ~at:info_addr in
  { info_addr; info; kernel_start; kernel_end }

(* Container formats for the chain-load adaptors: a recognisable magic
   prefix plus the payload length. *)

let wrap tag img =
  let b = Bytes.create (8 + Bytes.length img) in
  Bytes.blit_string tag 0 b 0 4;
  Bytes.set_int32_le b 4 (Int32.of_int (Bytes.length img));
  Bytes.blit img 0 b 8 (Bytes.length img);
  b

let wrap_bsd = wrap "BSDb"
let wrap_linux = wrap "LNXb"
let wrap_dos = wrap "DOSb"

let unwrap img =
  if Bytes.length img < 8 then None
  else
    let tag = Bytes.sub_string img 0 4 in
    if tag = "BSDb" || tag = "LNXb" || tag = "DOSb" then begin
      let len = Int32.to_int (Bytes.get_int32_le img 4) in
      if Bytes.length img >= 8 + len then Some (Bytes.sub img 8 len) else None
    end
    else None

let load_wrapped machine ~image ~cmdline ~modules =
  let image = match unwrap image with Some inner -> inner | None -> image in
  load machine ~image ~cmdline ~modules
