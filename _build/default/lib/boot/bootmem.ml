let add_standard_regions lmm ~ram_bytes =
  let low = Lmm.flag_low_1mb lor Lmm.flag_low_16mb in
  Lmm.add_region lmm ~min:0 ~size:Physmem.low_limit ~flags:low ~pri:0;
  if ram_bytes > Physmem.low_limit then
    Lmm.add_region lmm ~min:Physmem.low_limit
      ~size:(min ram_bytes Physmem.dma_limit - Physmem.low_limit)
      ~flags:Lmm.flag_low_16mb ~pri:1;
  if ram_bytes > Physmem.dma_limit then
    Lmm.add_region lmm ~min:Physmem.dma_limit ~size:(ram_bytes - Physmem.dma_limit) ~flags:0
      ~pri:2

(* Subtract each reserved interval from [base, limit), donating what is
   left. *)
let rec donate lmm ~base ~limit reserved =
  if base < limit then
    match
      List.filter (fun (lo, hi) -> lo < limit && hi > base) reserved
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    with
    | [] -> Lmm.add_free lmm ~addr:base ~size:(limit - base)
    | (lo, hi) :: _ ->
        if base < lo then Lmm.add_free lmm ~addr:base ~size:(lo - base);
        donate lmm ~base:(max base hi) ~limit reserved

let page_up a = (a + 4095) land lnot 4095

let populate lmm (loaded : Loader.loaded) ~ram_bytes =
  add_standard_regions lmm ~ram_bytes;
  let reserved =
    (loaded.kernel_start, page_up loaded.kernel_end)
    :: (loaded.info_addr, page_up (loaded.info_addr + 8192))
    :: List.map
         (fun (lo, hi) -> lo, page_up hi)
         (Multiboot.reserved_ranges loaded.info)
  in
  List.iter
    (fun e ->
      if e.Multiboot.mm_available then
        donate lmm ~base:e.Multiboot.mm_base
          ~limit:(min ram_bytes (e.Multiboot.mm_base + e.Multiboot.mm_length))
          reserved)
    loaded.info.Multiboot.mmap
