type module_ = { mod_start : int; mod_end : int; mod_string : string }
type mmap_entry = { mm_base : int; mm_length : int; mm_available : bool }

type info = {
  mem_lower_kb : int;
  mem_upper_kb : int;
  cmdline : string;
  modules : module_ list;
  mmap : mmap_entry list;
}

let header_magic = 0x1BADB002l
let boot_magic = 0x2BADB002l

(* Info-structure flag bits, per the specification. *)
let flag_mem = 0x1
let flag_cmdline = 0x4
let flag_mods = 0x8
let flag_mmap = 0x40

(* Field offsets within the fixed part, per the specification. *)
let off_flags = 0
let off_mem_lower = 4
let off_mem_upper = 8
let off_cmdline = 16
let off_mods_count = 20
let off_mods_addr = 24
let off_mmap_length = 44
let off_mmap_addr = 48
let fixed_size = 52

let put32 ram at v = Physmem.set32 ram at (Int32.of_int v)
let get32 ram at = Int32.to_int (Physmem.get32 ram at) land 0xffffffff

let put_cstring ram ~at s =
  Physmem.blit_from_bytes ram ~src:(Bytes.of_string s) ~src_pos:0 ~dst_addr:at
    ~len:(String.length s);
  Physmem.set8 ram (at + String.length s) 0;
  at + String.length s + 1

let get_cstring ram ~at =
  let b = Buffer.create 32 in
  let rec go a =
    let c = Physmem.get8 ram a in
    if c <> 0 then begin
      Buffer.add_char b (Char.chr c);
      go (a + 1)
    end
  in
  go at;
  Buffer.contents b

let encode ram info ~at =
  let flags = flag_mem lor flag_cmdline lor flag_mods lor flag_mmap in
  put32 ram (at + off_flags) flags;
  put32 ram (at + off_mem_lower) info.mem_lower_kb;
  put32 ram (at + off_mem_upper) info.mem_upper_kb;
  let cursor = at + fixed_size in
  (* Command line. *)
  put32 ram (at + off_cmdline) cursor;
  let cursor = put_cstring ram ~at:cursor info.cmdline in
  (* Module strings, remembering where each landed. *)
  let cursor, string_addrs =
    List.fold_left
      (fun (c, acc) m -> put_cstring ram ~at:c m.mod_string, c :: acc)
      (cursor, []) info.modules
  in
  let string_addrs = List.rev string_addrs in
  (* Module entry table, 16 bytes per entry, 4-aligned. *)
  let cursor = (cursor + 3) land lnot 3 in
  put32 ram (at + off_mods_count) (List.length info.modules);
  put32 ram (at + off_mods_addr) cursor;
  let cursor =
    List.fold_left2
      (fun c m saddr ->
        put32 ram c m.mod_start;
        put32 ram (c + 4) m.mod_end;
        put32 ram (c + 8) saddr;
        put32 ram (c + 12) 0;
        c + 16)
      cursor info.modules string_addrs
  in
  (* Memory map, 24 bytes per entry: size, base lo/hi, length lo/hi, type. *)
  put32 ram (at + off_mmap_length) (24 * List.length info.mmap);
  put32 ram (at + off_mmap_addr) cursor;
  List.fold_left
    (fun c e ->
      put32 ram c 20;
      put32 ram (c + 4) (e.mm_base land 0xffffffff);
      put32 ram (c + 8) (e.mm_base lsr 32);
      put32 ram (c + 12) (e.mm_length land 0xffffffff);
      put32 ram (c + 16) (e.mm_length lsr 32);
      put32 ram (c + 20) (if e.mm_available then 1 else 2);
      c + 24)
    cursor info.mmap

let decode ram ~at =
  let flags = get32 ram (at + off_flags) in
  let mem_lower_kb = if flags land flag_mem <> 0 then get32 ram (at + off_mem_lower) else 0 in
  let mem_upper_kb = if flags land flag_mem <> 0 then get32 ram (at + off_mem_upper) else 0 in
  let cmdline =
    if flags land flag_cmdline <> 0 then get_cstring ram ~at:(get32 ram (at + off_cmdline))
    else ""
  in
  let modules =
    if flags land flag_mods = 0 then []
    else begin
      let count = get32 ram (at + off_mods_count) in
      let base = get32 ram (at + off_mods_addr) in
      List.init count (fun i ->
          let e = base + (16 * i) in
          { mod_start = get32 ram e;
            mod_end = get32 ram (e + 4);
            mod_string = get_cstring ram ~at:(get32 ram (e + 8)) })
    end
  in
  let mmap =
    if flags land flag_mmap = 0 then []
    else begin
      let total = get32 ram (at + off_mmap_length) in
      let base = get32 ram (at + off_mmap_addr) in
      List.init (total / 24) (fun i ->
          let e = base + (24 * i) in
          { mm_base = get32 ram (e + 4) lor (get32 ram (e + 8) lsl 32);
            mm_length = get32 ram (e + 12) lor (get32 ram (e + 16) lsl 32);
            mm_available = get32 ram (e + 20) = 1 })
    end
  in
  { mem_lower_kb; mem_upper_kb; cmdline; modules; mmap }

let reserved_ranges info = List.map (fun m -> m.mod_start, m.mod_end) info.modules
