(** Boot-time memory setup.

    What the kernel support library does by default on entry (Section 3.2):
    take the loader's memory map, feed the available ranges to the LMM with
    the PC memory types declared, and reserve the kernel image, the info
    structure, and every boot module "so that the application can easily
    make use of them later on". *)

(** Declares the standard x86 regions on [lmm]: <1 MB (low+DMA flags,
    lowest priority), 1-16 MB (DMA flag), and >16 MB (highest priority). *)
val add_standard_regions : Lmm.t -> ram_bytes:int -> unit

(** [populate lmm loaded ~ram_bytes] = standard regions + all available
    memory from the memory map, minus the kernel, info structure and
    modules. *)
val populate : Lmm.t -> Loader.loaded -> ram_bytes:int -> unit
