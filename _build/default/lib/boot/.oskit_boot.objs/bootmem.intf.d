lib/boot/bootmem.mli: Lmm Loader
