lib/boot/multiboot.mli: Physmem
