lib/boot/bootmem.ml: Int List Lmm Loader Multiboot Physmem
