lib/boot/loader.mli: Machine Multiboot
