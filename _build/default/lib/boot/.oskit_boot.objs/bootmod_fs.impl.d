lib/boot/bootmod_fs.ml: Com Cost Error Hashtbl Iid Io_if Lazy List Multiboot Physmem Result String
