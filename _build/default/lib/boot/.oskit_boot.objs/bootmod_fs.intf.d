lib/boot/bootmod_fs.mli: Io_if Multiboot Physmem
