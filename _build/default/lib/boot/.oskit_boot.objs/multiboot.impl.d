lib/boot/multiboot.ml: Buffer Bytes Char Int32 List Physmem String
