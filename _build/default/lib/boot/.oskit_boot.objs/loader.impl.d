lib/boot/loader.ml: Bytes Int32 List Machine Multiboot Physmem Result String
