(** The List Memory Manager (Section 3.3).

    Manages allocation of physical (or virtual) address ranges with the PC's
    awkward constraints in mind: memory is organised into {e regions}, each
    carrying a client-defined flag mask (memory "type": below 1 MB, below
    16 MB for ISA DMA, ...) and a priority; allocations specify required
    flags, and size/alignment/address-range constraints.

    Following the kit's open-implementation philosophy (Section 4.6), the
    free list is walkable ({!find_free}, {!iter_free}) and regions are
    inspectable — clients are allowed to depend on this implementation.

    Addresses are plain integers; the LMM never touches the memory it
    manages, so it can equally manage [Physmem] addresses, virtual
    addresses, or any other numeric namespace. *)

type t

val create : unit -> t

(** Conventional x86 flag bits (clients may define their own). *)

val flag_low_1mb : int (* below 1 MB: real-mode / BIOS reachable *)
val flag_low_16mb : int (* below 16 MB: ISA DMA reachable *)

(** [add_region t ~min ~size ~flags ~pri] declares a region; does NOT make
    any of it allocatable (use [add_free]).  Regions must not overlap. *)
val add_region : t -> min:int -> size:int -> flags:int -> pri:int -> unit

(** [add_free t ~addr ~size] donates an address range, splitting it across
    the declared regions that contain it; parts covered by no region are
    dropped (mirroring the C LMM). *)
val add_free : t -> addr:int -> size:int -> unit

(** [alloc t ~size ~flags] returns the base of a block from the
    highest-priority region whose flags include all of [flags]. *)
val alloc : t -> size:int -> flags:int -> int option

(** [alloc_aligned t ~size ~flags ~align_bits ~align_ofs] additionally
    requires [(addr - align_ofs)] to be a multiple of [2^align_bits]. *)
val alloc_aligned : t -> size:int -> flags:int -> align_bits:int -> align_ofs:int -> int option

(** [alloc_gen] is the fully general allocator: alignment plus an inclusive
    address window [bounds_min, bounds_max]. *)
val alloc_gen :
  t ->
  size:int ->
  flags:int ->
  align_bits:int ->
  align_ofs:int ->
  bounds_min:int ->
  bounds_max:int ->
  int option

(** [alloc_page t ~flags] is a 4 KB-aligned 4 KB allocation. *)
val alloc_page : t -> flags:int -> int option

(** [free t ~addr ~size] returns a block.  Raises [Invalid_argument] if the
    range is not inside any region or overlaps memory that is already
    free (double free). *)
val free : t -> addr:int -> size:int -> unit

(** Total free bytes in regions whose flags include all of [flags]. *)
val avail : t -> flags:int -> int

(** [find_free t ~addr] returns the first free block at or after [addr] as
    [(base, size, region_flags)]. *)
val find_free : t -> addr:int -> (int * int * int) option

(** Walk every free block, ascending: [f ~addr ~size ~flags]. *)
val iter_free : t -> (addr:int -> size:int -> flags:int -> unit) -> unit

(** Diagnostic dump. *)
val pp : Format.formatter -> t -> unit
