type region = {
  min : int;
  size : int;
  flags : int;
  pri : int;
  mutable free : (int * int) list; (* (base, size), ascending, coalesced *)
}

type t = { mutable regions : region list (* sorted: pri desc, min asc *) }

let flag_low_1mb = 0x1
let flag_low_16mb = 0x2

let create () = { regions = [] }

let region_max r = r.min + r.size

let add_region t ~min ~size ~flags ~pri =
  if size <= 0 then invalid_arg "Lmm.add_region: size";
  let overlaps r = min < region_max r && r.min < min + size in
  if List.exists overlaps t.regions then invalid_arg "Lmm.add_region: overlapping regions";
  let r = { min; size; flags; pri; free = [] } in
  let before a b = a.pri > b.pri || (a.pri = b.pri && a.min < b.min) in
  let rec insert = function
    | [] -> [ r ]
    | x :: rest -> if before r x then r :: x :: rest else x :: insert rest
  in
  t.regions <- insert t.regions

(* Insert (base,size) into a region's free list, coalescing neighbours.
   Raises on overlap — that is a double free. *)
let insert_free r base size =
  let rec go = function
    | [] -> [ base, size ]
    | (b, s) :: rest ->
        if base + size < b then (base, size) :: (b, s) :: rest
        else if base + size = b then (base, size + s) :: rest
        else if b + s = base then go_merge b (s + size) rest
        else if base < b + s && b < base + size then
          invalid_arg "Lmm.free: range overlaps free memory (double free?)"
        else (b, s) :: go rest
  and go_merge b s = function
    | (b2, s2) :: rest when b + s = b2 -> (b, s + s2) :: rest
    | rest -> (b, s) :: rest
  in
  r.free <- go r.free

let add_free t ~addr ~size =
  List.iter
    (fun r ->
      let lo = max addr r.min and hi = min (addr + size) (region_max r) in
      if lo < hi then insert_free r lo (hi - lo))
    t.regions

(* First address >= base satisfying the alignment constraint. *)
let align_up base ~align_bits ~align_ofs =
  let align = 1 lsl align_bits in
  let rem = (base - align_ofs) land (align - 1) in
  if rem = 0 then base else base + align - rem

let carve r (b, s) addr size =
  (* Split the free block (b,s) around [addr, addr+size). *)
  let after_base = addr + size in
  let keep =
    (if addr > b then [ b, addr - b ] else [])
    @ if after_base < b + s then [ after_base, b + s - after_base ] else []
  in
  let rec replace = function
    | [] -> assert false
    | (b', _) :: rest when b' = b -> keep @ rest
    | x :: rest -> x :: replace rest
  in
  r.free <- replace r.free

let alloc_gen t ~size ~flags ~align_bits ~align_ofs ~bounds_min ~bounds_max =
  if size <= 0 then invalid_arg "Lmm.alloc: size";
  let try_region r =
    if r.flags land flags <> flags then None
    else
      List.find_map
        (fun (b, s) ->
          let base = max b bounds_min in
          let addr = align_up base ~align_bits ~align_ofs in
          if addr + size <= b + s && addr + size - 1 <= bounds_max && addr >= b then
            Some ((b, s), addr)
          else None)
        r.free
  in
  let rec search = function
    | [] -> None
    | r :: rest -> (
        match try_region r with
        | Some (block, addr) ->
            carve r block addr size;
            Some addr
        | None -> search rest)
  in
  search t.regions

let alloc t ~size ~flags =
  alloc_gen t ~size ~flags ~align_bits:0 ~align_ofs:0 ~bounds_min:0 ~bounds_max:max_int

let alloc_aligned t ~size ~flags ~align_bits ~align_ofs =
  alloc_gen t ~size ~flags ~align_bits ~align_ofs ~bounds_min:0 ~bounds_max:max_int

let alloc_page t ~flags =
  alloc_gen t ~size:4096 ~flags ~align_bits:12 ~align_ofs:0 ~bounds_min:0 ~bounds_max:max_int

let free t ~addr ~size =
  if size <= 0 then invalid_arg "Lmm.free: size";
  match
    List.find_opt (fun r -> addr >= r.min && addr + size <= region_max r) t.regions
  with
  | None -> invalid_arg "Lmm.free: range not inside any region"
  | Some r -> insert_free r addr size

let avail t ~flags =
  List.fold_left
    (fun acc r ->
      if r.flags land flags = flags then
        acc + List.fold_left (fun a (_, s) -> a + s) 0 r.free
      else acc)
    0 t.regions

let sorted_free t =
  let all =
    List.concat_map (fun r -> List.map (fun (b, s) -> b, s, r.flags) r.free) t.regions
  in
  List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) all

let find_free t ~addr =
  List.find_opt (fun (b, s, _) -> b + s > addr) (sorted_free t)
  |> Option.map (fun (b, s, f) -> max b addr, s - (max b addr - b), f)

let iter_free t f = List.iter (fun (addr, size, flags) -> f ~addr ~size ~flags) (sorted_free t)

let pp fmt t =
  Format.fprintf fmt "@[<v>lmm:";
  List.iter
    (fun r ->
      Format.fprintf fmt "@,  region %#x..%#x flags=%#x pri=%d" r.min (region_max r)
        r.flags r.pri;
      List.iter (fun (b, s) -> Format.fprintf fmt "@,    free %#x + %#x" b s) r.free)
    t.regions;
  Format.fprintf fmt "@]"
