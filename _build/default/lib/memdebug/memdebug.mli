(** The memory allocation debugging library (Section 3.5).

    "Tracks memory allocations and detects common errors such as buffer
    overruns and freeing already-freed memory ... it runs in the minimal
    kernel environment provided by the OSKit."

    Two layers are provided:

    {ol
    {- An {e address-space} checker wrapping any address-returning allocator
       (typically the LMM over simulated RAM): every block is bracketed with
       guard zones written with a fence pattern that is verified on [free]
       and on demand; block sizes are tracked so [free] needs no size
       argument; double frees and wild frees are detected; live blocks are
       enumerable for leak reports.}
    {- A drop-in set of hooks for the minimal C library's [malloc]
       ({!install_malloc_hooks}) that tracks double frees and leaks at the
       [bytes] level.}} *)

type t

(** Guard size on each side of every block, bytes. *)
val guard_size : int

(** The fence byte written into guards ([0xFD]). *)
val fence_byte : int

(** [create ~ram ~alloc ~free] wraps an underlying allocator.  [alloc]
    receives the padded size and returns a base address or [None]. *)
val create :
  ram:Physmem.t -> alloc:(int -> int option) -> free:(addr:int -> size:int -> unit) -> t

(** [alloc t ~size ~tag] returns the usable address (guards hidden).  The
    block body is poisoned with [0xA5]. *)
val alloc : t -> size:int -> tag:string -> int option

type fault =
  | Underrun of { addr : int; tag : string }
  | Overrun of { addr : int; tag : string }
  | Double_free of { addr : int }
  | Wild_free of { addr : int }

exception Fault of fault

val describe_fault : fault -> string

(** [free t addr] verifies both guards (raising [Fault] on corruption or
    bad address), poisons the body with [0xDD], and returns the block. *)
val free : t -> int -> unit

(** Size originally requested for a live block. *)
val size_of : t -> int -> int option

(** [check t] verifies the guards of every live block, returning all
    corrupted ones (does not raise). *)
val check : t -> fault list

(** Live (unfreed) blocks as [(addr, size, tag)], oldest first — the leak
    report. *)
val live : t -> (int * int * string) list

val live_bytes : t -> int

(** {2 C-library hook layer} *)

type malloc_tracker

(** Replaces the minimal C library's allocation hooks with tracking
    versions.  Double frees raise [Fault]. *)
val install_malloc_hooks : unit -> malloc_tracker

val malloc_live_blocks : malloc_tracker -> int

(** Restore the default hooks. *)
val remove_malloc_hooks : malloc_tracker -> unit
