let guard_size = 16
let fence_byte = 0xfd
let alloc_poison = 0xa5
let free_poison = 0xdd

type block = { base : int; size : int; tag : string; seq : int }

type t = {
  ram : Physmem.t;
  under_alloc : int -> int option;
  under_free : addr:int -> size:int -> unit;
  blocks : (int, block) Hashtbl.t; (* keyed by usable address *)
  mutable next_seq : int;
}

type fault =
  | Underrun of { addr : int; tag : string }
  | Overrun of { addr : int; tag : string }
  | Double_free of { addr : int }
  | Wild_free of { addr : int }

exception Fault of fault

let describe_fault = function
  | Underrun { addr; tag } -> Printf.sprintf "guard underrun before %#x (%s)" addr tag
  | Overrun { addr; tag } -> Printf.sprintf "guard overrun after %#x (%s)" addr tag
  | Double_free { addr } -> Printf.sprintf "double free of %#x" addr
  | Wild_free { addr } -> Printf.sprintf "free of never-allocated %#x" addr

let create ~ram ~alloc ~free =
  { ram; under_alloc = alloc; under_free = free; blocks = Hashtbl.create 64; next_seq = 0 }

let alloc t ~size ~tag =
  if size < 0 then invalid_arg "Memdebug.alloc: size";
  match t.under_alloc (size + (2 * guard_size)) with
  | None -> None
  | Some base ->
      let addr = base + guard_size in
      Physmem.fill t.ram ~addr:base ~len:guard_size fence_byte;
      Physmem.fill t.ram ~addr ~len:size alloc_poison;
      Physmem.fill t.ram ~addr:(addr + size) ~len:guard_size fence_byte;
      Hashtbl.replace t.blocks addr { base; size; tag; seq = t.next_seq };
      t.next_seq <- t.next_seq + 1;
      Some addr

let guard_intact t ~addr ~len =
  let rec go i = i >= len || (Physmem.get8 t.ram (addr + i) = fence_byte && go (i + 1)) in
  go 0

let check_block t b =
  let addr = b.base + guard_size in
  let faults = ref [] in
  if not (guard_intact t ~addr:b.base ~len:guard_size) then
    faults := Underrun { addr; tag = b.tag } :: !faults;
  if not (guard_intact t ~addr:(addr + b.size) ~len:guard_size) then
    faults := Overrun { addr; tag = b.tag } :: !faults;
  !faults

let free t addr =
  match Hashtbl.find_opt t.blocks addr with
  | None ->
      (* Distinguish a double free (we freed it and poisoned the body) from
         a wild pointer: the old guard may still be intact. *)
      let looks_freed =
        addr >= guard_size
        && (try Physmem.get8 t.ram addr = free_poison with Physmem.Fault _ -> false)
      in
      raise (Fault (if looks_freed then Double_free { addr } else Wild_free { addr }))
  | Some b -> (
      match check_block t b with
      | fault :: _ -> raise (Fault fault)
      | [] ->
          Physmem.fill t.ram ~addr ~len:b.size free_poison;
          Hashtbl.remove t.blocks addr;
          t.under_free ~addr:b.base ~size:(b.size + (2 * guard_size)))

let size_of t addr = Option.map (fun b -> b.size) (Hashtbl.find_opt t.blocks addr)

let sorted_blocks t =
  List.sort
    (fun a b -> Int.compare a.seq b.seq)
    (Hashtbl.fold (fun _ b acc -> b :: acc) t.blocks [])

let check t = List.concat_map (check_block t) (sorted_blocks t)
let live t = List.map (fun b -> b.base + guard_size, b.size, b.tag) (sorted_blocks t)
let live_bytes t = Hashtbl.fold (fun _ b acc -> acc + b.size) t.blocks 0

(* ---- bytes-level tracking for the C library hooks ---- *)

type malloc_tracker = { mutable live_list : bytes list }

let phys_mem_remove tracker b =
  let found = ref false in
  tracker.live_list <-
    List.filter
      (fun x ->
        if (not !found) && x == b then begin
          found := true;
          false
        end
        else true)
      tracker.live_list;
  !found

let install_malloc_hooks () =
  let tracker = { live_list = [] } in
  let alloc n =
    let b = Bytes.make n Malloc.poison in
    tracker.live_list <- b :: tracker.live_list;
    Malloc.stats.allocs <- Malloc.stats.allocs + 1;
    Malloc.stats.bytes_allocated <- Malloc.stats.bytes_allocated + n;
    b
  in
  let free b =
    if phys_mem_remove tracker b then Malloc.stats.frees <- Malloc.stats.frees + 1
    else raise (Fault (Double_free { addr = 0 }))
  in
  let realloc b n =
    let nb = alloc n in
    Bytes.blit b 0 nb 0 (min (Bytes.length b) n);
    free b;
    nb
  in
  Malloc.set_hooks ~alloc ~free ~realloc;
  tracker

let malloc_live_blocks tracker = List.length tracker.live_list
let remove_malloc_hooks _ = Malloc.reset_hooks ()
