(** The minimal POSIX environment (Sections 3.4, 6.2.1).

    Maps POSIX calls onto COM interfaces by associating file descriptors
    with references to COM objects; [socket] goes through a client-provided
    socket factory ([set_socket_factory] is the paper's
    [posix_set_socketcreator]).  "This C library code can be used with any
    protocol stack that provides these socket and socket factory
    interfaces."

    An environment is explicit (no hidden globals) because several client
    OSes — one per simulated machine — coexist in one simulation. *)

type env

val create_env : unit -> env

(** Install the root directory [open_] resolves against (e.g. the boot
    module file system, or a mounted NetBSD file system). *)
val set_root : env -> Io_if.dir option -> unit

val root : env -> Io_if.dir option

(** The paper's [posix_set_socketcreator]. *)
val set_socket_factory : env -> Io_if.socket_factory option -> unit

(** {2 Flags} *)

val o_rdonly : int
val o_wronly : int
val o_rdwr : int
val o_creat : int
val o_trunc : int
val o_append : int

(** {2 Path resolution}

    Paths are resolved one component at a time against the VFS-granularity
    [dir] interface; ["."] and [".."] are not interpreted by the library
    (the file system may expose them as entries). *)

val lookup : env -> string -> (Io_if.node, Error.t) result

(** {2 Descriptor calls} *)

val open_ : env -> string -> int -> (int, Error.t) result
val close : env -> int -> (unit, Error.t) result
val read : env -> int -> bytes -> pos:int -> len:int -> (int, Error.t) result
val write : env -> int -> bytes -> pos:int -> len:int -> (int, Error.t) result

val lseek : env -> int -> offset:int -> [ `Set | `Cur | `End ] -> (int, Error.t) result
val fstat : env -> int -> (Io_if.stat, Error.t) result
val stat : env -> string -> (Io_if.stat, Error.t) result
val unlink : env -> string -> (unit, Error.t) result
val mkdir : env -> string -> (unit, Error.t) result
val rmdir : env -> string -> (unit, Error.t) result
val readdir : env -> string -> (string list, Error.t) result

(** {2 Sockets} *)

val socket : env -> Io_if.sock_type -> (int, Error.t) result
val bind : env -> int -> Io_if.sockaddr -> (unit, Error.t) result
val listen : env -> int -> backlog:int -> (unit, Error.t) result

(** Returns the new connection's descriptor and peer address. *)
val accept : env -> int -> (int * Io_if.sockaddr, Error.t) result

val connect : env -> int -> Io_if.sockaddr -> (unit, Error.t) result
val send : env -> int -> bytes -> pos:int -> len:int -> (int, Error.t) result
val recv : env -> int -> bytes -> pos:int -> len:int -> (int, Error.t) result
val setsockopt : env -> int -> string -> int -> (unit, Error.t) result
val shutdown : env -> int -> (unit, Error.t) result

(** [with_socket env fd f] — narrow a descriptor back to its socket. *)
val socket_of_fd : env -> int -> (Io_if.socket, Error.t) result

(** Attach an externally-created object (e.g. a console chario as fds
    0-2). *)
val install_chario : env -> Io_if.chario -> int

(** Number of open descriptors. *)
val live_fds : env -> int

(** {2 The odds and ends ttcp needed} (Section 5)

    [getrusage] is "a simple getrusage based on the timers kept by" the
    simulation — virtual CPU time of the calling machine.  [signal] and
    [select] are the paper's deliberately degenerate implementations:
    "they are only used to handle exceptional conditions and can be
    implemented as null functions without affecting the results" —
    [select] reports every polled descriptor ready after sleeping any
    timeout; [signal] keeps a handler table that only [raise_signal]
    consults. *)

(** Install the clock [getrusage] reads (default: constant 0). *)
val set_time_source : env -> (unit -> int) -> unit

(** Install the blocking sleep [select]'s timeout uses (default: no-op). *)
val set_sleeper : env -> (int -> unit) -> unit

type rusage = { ru_time_ns : int }

val getrusage : env -> rusage

val signal : env -> int -> (int -> unit) option -> unit
val raise_signal : env -> int -> unit

(** Number of signals delivered to a handler so far. *)
val signals_handled : env -> int

val select :
  env -> read_fds:int list -> timeout_ns:int option -> (int list, Error.t) result
