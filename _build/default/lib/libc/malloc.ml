type stats = { mutable allocs : int; mutable frees : int; mutable bytes_allocated : int }

let stats = { allocs = 0; frees = 0; bytes_allocated = 0 }

let reset_stats () =
  stats.allocs <- 0;
  stats.frees <- 0;
  stats.bytes_allocated <- 0

let poison = '\xa5'

let default_alloc n =
  stats.allocs <- stats.allocs + 1;
  stats.bytes_allocated <- stats.bytes_allocated + n;
  Bytes.make n poison

let default_free _ = stats.frees <- stats.frees + 1

let default_realloc b n =
  let nb = default_alloc n in
  Bytes.blit b 0 nb 0 (min (Bytes.length b) n);
  default_free b;
  nb

type hooks = {
  mutable alloc : int -> bytes;
  mutable free : bytes -> unit;
  mutable realloc : bytes -> int -> bytes;
}

let hooks = { alloc = default_alloc; free = default_free; realloc = default_realloc }

let set_hooks ~alloc ~free ~realloc =
  hooks.alloc <- alloc;
  hooks.free <- free;
  hooks.realloc <- realloc

let reset_hooks () =
  hooks.alloc <- default_alloc;
  hooks.free <- default_free;
  hooks.realloc <- default_realloc

let malloc n =
  if n < 0 then invalid_arg "malloc: negative size";
  hooks.alloc n

let calloc n =
  let b = malloc n in
  Bytes.fill b 0 (Bytes.length b) '\000';
  b

let free b = hooks.free b
let realloc b n = hooks.realloc b n
