type fdesc =
  | Dfile of { file : Io_if.file; mutable off : int; append : bool }
  | Ddir of Io_if.dir
  | Dsock of Io_if.socket
  | Dchar of Io_if.chario

type env = {
  mutable root_dir : Io_if.dir option;
  mutable factory : Io_if.socket_factory option;
  fds : (int, fdesc) Hashtbl.t;
  mutable next_fd : int;
  (* Overridable services, Section 4.2.1 style: trivial defaults, replaced
     by the client OS when it has better answers. *)
  mutable time_source : unit -> int;
  mutable sleeper : int -> unit;
  signal_handlers : (int, int -> unit) Hashtbl.t;
  mutable signals_delivered : int;
}

let fd_limit = 256

let create_env () =
  { root_dir = None; factory = None; fds = Hashtbl.create 16; next_fd = 3;
    time_source = (fun () -> 0); sleeper = (fun _ -> ());
    signal_handlers = Hashtbl.create 4; signals_delivered = 0 }
let set_root env d = env.root_dir <- d
let root env = env.root_dir
let set_socket_factory env f = env.factory <- f

let o_rdonly = 0x0
let o_wronly = 0x1
let o_rdwr = 0x2
let o_creat = 0x40
let o_trunc = 0x200
let o_append = 0x400

let ( let* ) = Result.bind

let split_path path = List.filter (fun c -> c <> "") (String.split_on_char '/' path)

let lookup env path =
  match env.root_dir with
  | None -> Result.Error Error.Noent
  | Some root ->
      let rec walk node = function
        | [] -> Ok node
        | comp :: rest -> (
            match node with
            | Io_if.Node_file _ -> Result.Error Error.Notdir
            | Io_if.Node_dir d ->
                let* next = d.Io_if.d_lookup comp in
                walk next rest)
      in
      walk (Io_if.Node_dir root) (split_path path)

(* Resolve all but the last component, returning (dir, basename). *)
let lookup_parent env path =
  match split_path path with
  | [] -> Result.Error Error.Inval
  | comps -> (
      let rec split_last acc = function
        | [ last ] -> List.rev acc, last
        | x :: rest -> split_last (x :: acc) rest
        | [] -> assert false
      in
      let dirs, base = split_last [] comps in
      let* node = lookup env (String.concat "/" dirs) in
      match node with
      | Io_if.Node_dir d -> Ok (d, base)
      | Io_if.Node_file _ -> Result.Error Error.Notdir)

let alloc_fd env desc =
  if Hashtbl.length env.fds >= fd_limit then Result.Error Error.Mfile
  else begin
    let fd = env.next_fd in
    env.next_fd <- env.next_fd + 1;
    Hashtbl.replace env.fds fd desc;
    Ok fd
  end

let find_fd env fd =
  match Hashtbl.find_opt env.fds fd with Some d -> Ok d | None -> Result.Error Error.Badf

let open_ env path flags =
  let want_create = flags land o_creat <> 0 in
  let* node =
    match lookup env path with
    | Ok node -> Ok node
    | Result.Error Error.Noent when want_create ->
        let* parent, base = lookup_parent env path in
        let* file = parent.Io_if.d_create base in
        Ok (Io_if.Node_file file)
    | Result.Error _ as e -> e
  in
  match node with
  | Io_if.Node_dir d -> alloc_fd env (Ddir d)
  | Io_if.Node_file file ->
      let* () =
        if flags land o_trunc <> 0 then file.Io_if.f_setsize 0 else Ok ()
      in
      alloc_fd env (Dfile { file; off = 0; append = flags land o_append <> 0 })

let close env fd =
  let* desc = find_fd env fd in
  Hashtbl.remove env.fds fd;
  match desc with Dsock s -> s.Io_if.so_close () | Dfile _ | Ddir _ | Dchar _ -> Ok ()

let read env fd buf ~pos ~len =
  let* desc = find_fd env fd in
  match desc with
  | Dfile f ->
      let* n = f.file.Io_if.f_read ~buf ~pos ~offset:f.off ~amount:len in
      f.off <- f.off + n;
      Ok n
  | Dsock s -> s.Io_if.so_recv ~buf ~pos ~len
  | Dchar c -> c.Io_if.cio_read ~buf ~pos ~amount:len
  | Ddir _ -> Result.Error Error.Isdir

let write env fd buf ~pos ~len =
  let* desc = find_fd env fd in
  match desc with
  | Dfile f ->
      let* off =
        if not f.append then Ok f.off
        else
          let* st = f.file.Io_if.f_getstat () in
          Ok st.Io_if.st_size
      in
      let* n = f.file.Io_if.f_write ~buf ~pos ~offset:off ~amount:len in
      f.off <- off + n;
      Ok n
  | Dsock s -> s.Io_if.so_send ~buf ~pos ~len
  | Dchar c -> c.Io_if.cio_write ~buf ~pos ~amount:len
  | Ddir _ -> Result.Error Error.Isdir

let lseek env fd ~offset whence =
  let* desc = find_fd env fd in
  match desc with
  | Dfile f ->
      let* base =
        match whence with
        | `Set -> Ok 0
        | `Cur -> Ok f.off
        | `End ->
            let* st = f.file.Io_if.f_getstat () in
            Ok st.Io_if.st_size
      in
      let target = base + offset in
      if target < 0 then Result.Error Error.Inval
      else begin
        f.off <- target;
        Ok target
      end
  | Dsock _ | Dchar _ | Ddir _ -> Result.Error Error.Inval

let fstat env fd =
  let* desc = find_fd env fd in
  match desc with
  | Dfile f -> f.file.Io_if.f_getstat ()
  | Ddir d -> d.Io_if.d_getstat ()
  | Dsock _ | Dchar _ -> Result.Error Error.Inval

let stat env path =
  let* node = lookup env path in
  match node with
  | Io_if.Node_file f -> f.Io_if.f_getstat ()
  | Io_if.Node_dir d -> d.Io_if.d_getstat ()

let unlink env path =
  let* parent, base = lookup_parent env path in
  parent.Io_if.d_unlink base

let mkdir env path =
  let* parent, base = lookup_parent env path in
  let* _dir = parent.Io_if.d_mkdir base in
  Ok ()

let rmdir env path =
  let* parent, base = lookup_parent env path in
  parent.Io_if.d_rmdir base

let readdir env path =
  let* node = lookup env path in
  match node with
  | Io_if.Node_dir d -> d.Io_if.d_readdir ()
  | Io_if.Node_file _ -> Result.Error Error.Notdir

let socket env typ =
  match env.factory with
  | None -> Result.Error Error.Notsup
  | Some f ->
      let* sock = f.Io_if.sf_create typ in
      alloc_fd env (Dsock sock)

let socket_of_fd env fd =
  let* desc = find_fd env fd in
  match desc with
  | Dsock s -> Ok s
  | Dfile _ | Ddir _ | Dchar _ -> Result.Error Error.Notsup

let bind env fd addr =
  let* s = socket_of_fd env fd in
  s.Io_if.so_bind addr

let listen env fd ~backlog =
  let* s = socket_of_fd env fd in
  s.Io_if.so_listen ~backlog

let accept env fd =
  let* s = socket_of_fd env fd in
  let* conn, peer = s.Io_if.so_accept () in
  let* nfd = alloc_fd env (Dsock conn) in
  Ok (nfd, peer)

let connect env fd addr =
  let* s = socket_of_fd env fd in
  s.Io_if.so_connect addr

let send env fd buf ~pos ~len =
  let* s = socket_of_fd env fd in
  s.Io_if.so_send ~buf ~pos ~len

let recv env fd buf ~pos ~len =
  let* s = socket_of_fd env fd in
  s.Io_if.so_recv ~buf ~pos ~len

let setsockopt env fd name value =
  let* s = socket_of_fd env fd in
  s.Io_if.so_setsockopt name value

let shutdown env fd =
  let* s = socket_of_fd env fd in
  s.Io_if.so_shutdown ()

let install_chario env c =
  match alloc_fd env (Dchar c) with
  | Ok fd -> fd
  | Result.Error _ -> invalid_arg "Posix.install_chario: descriptor table full"

let live_fds env = Hashtbl.length env.fds

(* ---- Section 5 odds and ends ---- *)

let set_time_source env f = env.time_source <- f
let set_sleeper env f = env.sleeper <- f

type rusage = { ru_time_ns : int }

let getrusage env = { ru_time_ns = env.time_source () }

let signal env signo handler =
  match handler with
  | Some f -> Hashtbl.replace env.signal_handlers signo f
  | None -> Hashtbl.remove env.signal_handlers signo

let raise_signal env signo =
  match Hashtbl.find_opt env.signal_handlers signo with
  | Some f ->
      env.signals_delivered <- env.signals_delivered + 1;
      f signo
  | None -> ()

let signals_handled env = env.signals_delivered

let select env ~read_fds ~timeout_ns =
  (* Degenerate, per the paper: validate the descriptors, honour the
     timeout, report everything ready. *)
  let bad = List.filter (fun fd -> not (Hashtbl.mem env.fds fd)) read_fds in
  if bad <> [] then Result.Error Error.Badf
  else begin
    (match timeout_ns with Some ns when ns > 0 -> env.sleeper ns | Some _ | None -> ());
    Ok read_fds
  end
