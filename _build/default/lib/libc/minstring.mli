(** C string and memory operations over NUL-terminated byte buffers.

    The encapsulated legacy components and the example kernels traffic in
    C-style strings (fixed buffers, NUL terminators); these are the
    <string.h> semantics they expect, including the sharp edges (strncpy's
    padding, strcat's appended terminator). *)

(** [strlen b ~pos] — bytes before the first NUL at/after [pos].  Raises
    [Not_found] if there is no NUL. *)
val strlen : bytes -> pos:int -> int

(** [cstr s] makes a fresh NUL-terminated buffer from an OCaml string. *)
val cstr : string -> bytes

(** [of_cstr b ~pos] reads the NUL-terminated string at [pos]. *)
val of_cstr : bytes -> pos:int -> string

val strcpy : dst:bytes -> dst_pos:int -> src:bytes -> src_pos:int -> unit

(** [strncpy] copies at most [n] bytes and, like the C original, pads with
    NULs but does not guarantee termination. *)
val strncpy : dst:bytes -> dst_pos:int -> src:bytes -> src_pos:int -> n:int -> unit

val strcat : dst:bytes -> dst_pos:int -> src:bytes -> src_pos:int -> unit
val strcmp : bytes -> pos1:int -> bytes -> pos2:int -> int
val strncmp : bytes -> pos1:int -> bytes -> pos2:int -> n:int -> int

(** Index (relative to buffer start) of the first/last occurrence. *)
val strchr : bytes -> pos:int -> char -> int option

val strrchr : bytes -> pos:int -> char -> int option

(** [strstr hay ~pos needle] — index of first occurrence of [needle]. *)
val strstr : bytes -> pos:int -> string -> int option

val memcmp : bytes -> int -> bytes -> int -> int -> int
val memset : bytes -> pos:int -> len:int -> int -> unit

(** [memchr b ~pos ~len c] *)
val memchr : bytes -> pos:int -> len:int -> char -> int option

(** [strtol s ~pos ~base] parses leading whitespace, sign, optional 0x/0
    prefix when [base = 0]; returns the value and the index just past the
    digits (C's [endptr]). *)
val strtol : string -> pos:int -> base:int -> int * int
