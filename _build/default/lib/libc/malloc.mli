(** The minimal C library's memory allocation entry points.

    Like everything in this library, designed for replacement: the four
    operations are hooks with working defaults.  The defaults lean on the
    host's collector and only keep statistics; the [memdebug] library
    (Section 3.5) swaps in a checking allocator, and a client OS can point
    these at its own memory manager, exactly as Fluke and the language
    kernels did. *)

type stats = { mutable allocs : int; mutable frees : int; mutable bytes_allocated : int }

val stats : stats
val reset_stats : unit -> unit

(** New blocks are filled with this poison byte (default [0xA5]) so code
    that assumes zeroed memory fails fast; [calloc] zeroes. *)
val poison : char

val set_hooks :
  alloc:(int -> bytes) -> free:(bytes -> unit) -> realloc:(bytes -> int -> bytes) -> unit

val reset_hooks : unit -> unit

(** [malloc n] — a fresh block of [n] bytes (poisoned, not zeroed). *)
val malloc : int -> bytes

(** [calloc n] — zero-filled. *)
val calloc : int -> bytes

(** [free b] — with default hooks, statistics only. *)
val free : bytes -> unit

(** [realloc b n] — contents preserved up to [min (length b) n]. *)
val realloc : bytes -> int -> bytes
