(** Character classification (the <ctype.h> subset the kit's components
    need).  Locale-free by design — the minimal C library does not support
    locales (Section 3.4). *)

let isdigit c = c >= '0' && c <= '9'
let isupper c = c >= 'A' && c <= 'Z'
let islower c = c >= 'a' && c <= 'z'
let isalpha c = isupper c || islower c
let isalnum c = isalpha c || isdigit c
let isspace c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012' || c = '\011'
let isxdigit c = isdigit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let isprint c = c >= ' ' && c <= '~'
let ispunct c = isprint c && (not (isalnum c)) && c <> ' '
let toupper c = if islower c then Char.chr (Char.code c - 32) else c
let tolower c = if isupper c then Char.chr (Char.code c + 32) else c

(** Numeric value of a digit in bases up to 36, or [None]. *)
let digit_value c =
  if isdigit c then Some (Char.code c - Char.code '0')
  else if islower c then Some (Char.code c - Char.code 'a' + 10)
  else if isupper c then Some (Char.code c - Char.code 'A' + 10)
  else None
