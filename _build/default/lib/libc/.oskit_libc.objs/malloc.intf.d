lib/libc/malloc.mli:
