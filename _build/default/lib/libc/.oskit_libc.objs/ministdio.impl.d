lib/libc/ministdio.ml: Buffer Char Minctype String
