lib/libc/minstring.ml: Bytes Char Minctype Option String
