lib/libc/ministdio.mli:
