lib/libc/minctype.ml: Char
