lib/libc/posix.mli: Error Io_if
