lib/libc/malloc.ml: Bytes
