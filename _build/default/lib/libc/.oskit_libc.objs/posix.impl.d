lib/libc/posix.ml: Error Hashtbl Io_if List Result String
