lib/libc/minstring.mli:
