let strlen b ~pos =
  match Bytes.index_from_opt b pos '\000' with
  | Some i -> i - pos
  | None -> raise Not_found

let cstr s =
  let b = Bytes.create (String.length s + 1) in
  Bytes.blit_string s 0 b 0 (String.length s);
  Bytes.set b (String.length s) '\000';
  b

let of_cstr b ~pos = Bytes.sub_string b pos (strlen b ~pos)

let strcpy ~dst ~dst_pos ~src ~src_pos =
  let n = strlen src ~pos:src_pos in
  Bytes.blit src src_pos dst dst_pos (n + 1)

let strncpy ~dst ~dst_pos ~src ~src_pos ~n =
  let len = min n (try strlen src ~pos:src_pos with Not_found -> n) in
  Bytes.blit src src_pos dst dst_pos len;
  Bytes.fill dst (dst_pos + len) (n - len) '\000'

let strcat ~dst ~dst_pos ~src ~src_pos =
  let at = dst_pos + strlen dst ~pos:dst_pos in
  strcpy ~dst ~dst_pos:at ~src ~src_pos

let rec strcmp_from b1 p1 b2 p2 =
  let c1 = Char.code (Bytes.get b1 p1) and c2 = Char.code (Bytes.get b2 p2) in
  if c1 <> c2 then compare c1 c2
  else if c1 = 0 then 0
  else strcmp_from b1 (p1 + 1) b2 (p2 + 1)

let strcmp b1 ~pos1 b2 ~pos2 = strcmp_from b1 pos1 b2 pos2

let strncmp b1 ~pos1 b2 ~pos2 ~n =
  let rec go i =
    if i >= n then 0
    else
      let c1 = Char.code (Bytes.get b1 (pos1 + i))
      and c2 = Char.code (Bytes.get b2 (pos2 + i)) in
      if c1 <> c2 then compare c1 c2 else if c1 = 0 then 0 else go (i + 1)
  in
  go 0

let strchr b ~pos c =
  let limit = pos + strlen b ~pos in
  match Bytes.index_from_opt b pos c with Some i when i <= limit -> Some i | _ -> None

let strrchr b ~pos c =
  let limit = pos + strlen b ~pos in
  let rec go best i =
    if i > limit then best
    else go (if Bytes.get b i = c && i <= limit then Some i else best) (i + 1)
  in
  go None pos

let strstr hay ~pos needle =
  let hay_len = strlen hay ~pos in
  let n = String.length needle in
  if n = 0 then Some pos
  else begin
    let rec go i =
      if i + n > pos + hay_len then None
      else if Bytes.sub_string hay i n = needle then Some i
      else go (i + 1)
    in
    go pos
  end

let memcmp b1 p1 b2 p2 n =
  let rec go i =
    if i >= n then 0
    else
      let c = compare (Bytes.get b1 (p1 + i)) (Bytes.get b2 (p2 + i)) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let memset b ~pos ~len v = Bytes.fill b pos len (Char.chr (v land 0xff))

let memchr b ~pos ~len c =
  match Bytes.index_from_opt b pos c with
  | Some i when i < pos + len -> Some i
  | _ -> None

let strtol s ~pos ~base =
  let len = String.length s in
  let i = ref pos in
  while !i < len && Minctype.isspace s.[!i] do incr i done;
  let negative =
    if !i < len && (s.[!i] = '-' || s.[!i] = '+') then begin
      let neg = s.[!i] = '-' in
      incr i;
      neg
    end
    else false
  in
  let base =
    if base <> 0 then base
    else if !i + 1 < len && s.[!i] = '0' && (s.[!i + 1] = 'x' || s.[!i + 1] = 'X') then 16
    else if !i < len && s.[!i] = '0' then 8
    else 10
  in
  if
    base = 16 && !i + 1 < len && s.[!i] = '0'
    && (s.[!i + 1] = 'x' || s.[!i + 1] = 'X')
    && !i + 2 < len
    && Option.fold ~none:false ~some:(fun v -> v < 16) (Minctype.digit_value s.[!i + 2])
  then i := !i + 2;
  let value = ref 0 in
  let digits = ref 0 in
  let continue_ = ref true in
  while !continue_ && !i < len do
    match Minctype.digit_value s.[!i] with
    | Some v when v < base ->
        value := (!value * base) + v;
        incr digits;
        incr i
    | Some _ | None -> continue_ := false
  done;
  let v = if negative then - !value else !value in
  if !digits = 0 then 0, pos else v, !i
