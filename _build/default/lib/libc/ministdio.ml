type arg = Int of int | Str of string | Chr of char | Ptr of int

let capture = Buffer.create 256
let default_putchar c = Buffer.add_char capture c
let putchar_hook = ref default_putchar
let puts_raw_hook : (string -> unit) option ref = ref None

let set_putchar f = putchar_hook := f
let set_puts_raw f = puts_raw_hook := Some f

let reset () =
  putchar_hook := default_putchar;
  puts_raw_hook := None;
  Buffer.clear capture

let putchar c = !putchar_hook c

let puts_raw s =
  match !puts_raw_hook with Some f -> f s | None -> String.iter putchar s

let puts s =
  puts_raw s;
  putchar '\n'

let captured () = Buffer.contents capture
let clear_captured () = Buffer.clear capture

(* ---- the formatter ---- *)

type spec = {
  minus : bool;
  plus : bool;
  space : bool;
  zero : bool;
  hash : bool;
  width : int;
  precision : int option;
}

let u32 v = v land 0xffffffff

let digits_of value base upper =
  if value = 0 then "0"
  else begin
    let sym = if upper then "0123456789ABCDEF" else "0123456789abcdef" in
    let b = Buffer.create 16 in
    let rec go v = if v > 0 then begin go (v / base); Buffer.add_char b sym.[v mod base] end in
    go value;
    Buffer.contents b
  end

(* Assemble sign/prefix + zero-or-space padding + digits under C rules. *)
let pad_number spec ~sign ~prefix ~digits =
  let digits =
    match spec.precision with
    | Some p when String.length digits < p ->
        String.make (p - String.length digits) '0' ^ digits
    | _ -> digits
  in
  let body = sign ^ prefix ^ digits in
  let padding = max 0 (spec.width - String.length body) in
  if spec.minus then body ^ String.make padding ' '
  else if spec.zero && spec.precision = None then
    sign ^ prefix ^ String.make padding '0' ^ digits
  else String.make padding ' ' ^ body

let pad_string spec s =
  let s = match spec.precision with Some p -> String.sub s 0 (min p (String.length s)) | None -> s in
  let padding = max 0 (spec.width - String.length s) in
  if spec.minus then s ^ String.make padding ' ' else String.make padding ' ' ^ s

let format_signed spec v =
  let sign = if v < 0 then "-" else if spec.plus then "+" else if spec.space then " " else "" in
  pad_number spec ~sign ~prefix:"" ~digits:(digits_of (abs v) 10 false)

let format_unsigned spec v ~base ~upper =
  let v = u32 v in
  let prefix =
    if spec.hash && v <> 0 then
      match base with 16 -> if upper then "0X" else "0x" | 8 -> "0" | _ -> ""
    else ""
  in
  pad_number spec ~sign:"" ~prefix ~digits:(digits_of v base upper)

exception Out_of_args

let sprintf fmt args =
  let out = Buffer.create (String.length fmt + 32) in
  let args = ref args in
  let next_arg () =
    match !args with
    | [] -> raise Out_of_args
    | a :: rest ->
        args := rest;
        a
  in
  let next_int () =
    match next_arg () with
    | Int v -> v
    | Chr c -> Char.code c
    | Ptr v -> v
    | Str _ -> invalid_arg "printf: %d on a string argument"
  in
  let len = String.length fmt in
  let rec plain i =
    if i < len then
      if fmt.[i] = '%' then directive (i + 1)
      else begin
        Buffer.add_char out fmt.[i];
        plain (i + 1)
      end
  and directive i =
    let spec =
      ref { minus = false; plus = false; space = false; zero = false; hash = false;
            width = 0; precision = None }
    in
    let rec flags i =
      if i >= len then i
      else
        match fmt.[i] with
        | '-' -> spec := { !spec with minus = true }; flags (i + 1)
        | '+' -> spec := { !spec with plus = true }; flags (i + 1)
        | ' ' -> spec := { !spec with space = true }; flags (i + 1)
        | '0' -> spec := { !spec with zero = true }; flags (i + 1)
        | '#' -> spec := { !spec with hash = true }; flags (i + 1)
        | _ -> i
    in
    let rec number acc i =
      if i < len && Minctype.isdigit fmt.[i] then
        number ((acc * 10) + Char.code fmt.[i] - Char.code '0') (i + 1)
      else acc, i
    in
    let i = flags i in
    let i =
      if i < len && fmt.[i] = '*' then begin
        let w = next_int () in
        if w < 0 then spec := { !spec with minus = true; width = -w }
        else spec := { !spec with width = w };
        i + 1
      end
      else begin
        let w, i' = number 0 i in
        spec := { !spec with width = w };
        i'
      end
    in
    let i =
      if i < len && fmt.[i] = '.' then
        if i + 1 < len && fmt.[i + 1] = '*' then begin
          spec := { !spec with precision = Some (max 0 (next_int ())) };
          i + 2
        end
        else begin
          let p, i' = number 0 (i + 1) in
          spec := { !spec with precision = Some p };
          i'
        end
      else i
    in
    let rec skip_length i =
      if i < len && (fmt.[i] = 'l' || fmt.[i] = 'h' || fmt.[i] = 'z') then skip_length (i + 1)
      else i
    in
    let i = skip_length i in
    if i >= len then Buffer.add_char out '%'
    else begin
      let spec = !spec in
      (match fmt.[i] with
      | 'd' | 'i' -> Buffer.add_string out (format_signed spec (next_int ()))
      | 'u' -> Buffer.add_string out (format_unsigned spec (next_int ()) ~base:10 ~upper:false)
      | 'x' -> Buffer.add_string out (format_unsigned spec (next_int ()) ~base:16 ~upper:false)
      | 'X' -> Buffer.add_string out (format_unsigned spec (next_int ()) ~base:16 ~upper:true)
      | 'o' -> Buffer.add_string out (format_unsigned spec (next_int ()) ~base:8 ~upper:false)
      | 'c' -> (
          match next_arg () with
          | Chr c -> Buffer.add_string out (pad_string spec (String.make 1 c))
          | Int v -> Buffer.add_string out (pad_string spec (String.make 1 (Char.chr (v land 0xff))))
          | Str _ | Ptr _ -> invalid_arg "printf: %c argument")
      | 's' -> (
          match next_arg () with
          | Str s -> Buffer.add_string out (pad_string spec s)
          | Int _ | Chr _ | Ptr _ -> invalid_arg "printf: %s argument")
      | 'p' ->
          let v = match next_arg () with Ptr v | Int v -> v | _ -> invalid_arg "printf: %p" in
          Buffer.add_string out
            (pad_string spec (format_unsigned { spec with hash = true; width = 0 } v ~base:16 ~upper:false))
      | '%' -> Buffer.add_char out '%'
      | other ->
          Buffer.add_char out '%';
          Buffer.add_char out other);
      plain (i + 1)
    end
  in
  plain 0;
  Buffer.contents out

let printf fmt args = puts_raw (sprintf fmt args)

let snprintf ~size fmt args =
  let full = sprintf fmt args in
  let n = String.length full in
  if size <= 0 then "", n
  else if n < size then full, n
  else String.sub full 0 (size - 1), n
