(** Minimal standard I/O (Section 3.4, 4.3.1).

    Designed around minimizing dependencies rather than maximizing
    functionality: no buffering, no locales, no floating point.  The
    documented dependency chain is the paper's example of separability
    through overridable functions:

    - [printf] is implemented in terms of [puts_raw] and [putchar];
    - the default [puts_raw] is implemented only in terms of [putchar];

    so a client OS obtains formatted console output by providing nothing
    but a [putchar].  (In a standard C library this structure would be a
    bug; here it is the point.) *)

(** Arguments to the formatter (a C vararg stand-in). *)
type arg = Int of int | Str of string | Chr of char | Ptr of int

(** {2 The override chain} *)

(** Replace the bottom-level character output.  Default: append to the
    capture buffer (see {!captured}). *)
val set_putchar : (char -> unit) -> unit

(** Replace [puts_raw] wholesale (otherwise it loops over [putchar]). *)
val set_puts_raw : (string -> unit) -> unit

(** Restore both defaults and clear the capture buffer. *)
val reset : unit -> unit

val putchar : char -> unit

(** Unterminated string output (what [printf] emits through). *)
val puts_raw : string -> unit

(** C [puts]: the string, then a newline. *)
val puts : string -> unit

(** Everything the default [putchar] has captured. *)
val captured : unit -> string

val clear_captured : unit -> unit

(** {2 Formatting}

    Supported directives: [%d %i %u %x %X %o %c %s %p %%] with flags
    [- + 0 #] and space, numeric or [*] width, and [.precision].  Length
    modifiers [l]/[h] are accepted and ignored.  Unsigned and hex
    conversions use 32-bit wrap-around semantics, as the legacy code
    expects.  Unknown directives are printed literally, as most C libraries
    do. *)

val sprintf : string -> arg list -> string

(** [printf fmt args] formats and writes via [puts_raw]/[putchar]. *)
val printf : string -> arg list -> unit

(** [snprintf ~size fmt args] truncates to [size - 1] and reports the length
    that would have been written, like C99. *)
val snprintf : size:int -> string -> arg list -> string * int
