lib/freebsd_dev/freebsd_dev_glue.ml: Com Cost Fdev Freebsd_char_drv Iid Io_if Lazy List
