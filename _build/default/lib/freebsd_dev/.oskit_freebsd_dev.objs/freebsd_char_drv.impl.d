lib/freebsd_dev/freebsd_char_drv.ml: Bus Bytes Char Cost List Osenv Queue Serial Sleep_record
