(* GLUE — exports the encapsulated FreeBSD character drivers as OSKit
   chario COM objects and registers them with the device framework.  These
   drivers coexist with the Linux driver set in one kernel — the paper's
   point that "the FreeBSD drivers work alongside the Linux drivers
   without a problem" (Section 3.6). *)

let chario_of osenv (tty : Freebsd_char_drv.tty) : Com.unknown =
  Freebsd_char_drv.tty_open osenv tty;
  let rec view () =
    { Io_if.cio_unknown = unknown ();
      cio_read =
        (fun ~buf ~pos ~amount ->
          Cost.charge_glue_crossing ();
          Ok (Freebsd_char_drv.tty_read tty ~buf ~pos ~amount));
      cio_write =
        (fun ~buf ~pos ~amount ->
          Cost.charge_glue_crossing ();
          Ok (Freebsd_char_drv.tty_write tty ~buf ~pos ~amount)) }
  and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.chario_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  unknown ()

(* The paper's fdev_freebsd init entrypoint. *)
let init_char_devices () =
  Fdev.register_driver
    { Fdev.drv_name = "freebsd-char";
      drv_origin = "freebsd-2.1.5";
      drv_probe =
        (fun osenv -> List.map (chario_of osenv) (Freebsd_char_drv.probe_ttys osenv)) }

let reset = Freebsd_char_drv.reset
