(* ENCAPSULATED LEGACY CODE — FreeBSD 2.x character drivers (sio.c for the
 * 16550 serial ports, a syscons-style console), reduced to the tty core
 * the paper's eight imported drivers share: an input queue filled at
 * interrupt level (the donor's clists), blocking reads at process level
 * via the emulated sleep/wakeup, and optional canonical echoing on the
 * console.  Because of Section 4.7.2's symbol-prefix discipline these
 * live behind their own module namespace; the donor's `wakeup' here is
 * the FDEV_FREEBSD_wakeup of the paper, spelled as a module path.
 *)

let clist_limit = 256 (* donor TTYHOG-ish input limit *)

type tty = {
  t_name : string;
  t_model : string;
  hw : Serial.t;
  t_canq : int Queue.t; (* input clist *)
  t_rsel : Sleep_record.t; (* reader sleeping on input *)
  mutable t_echo : bool;
  mutable t_overflows : int;
  mutable opened : bool;
}

let supported_models =
  [ "sio-16550"; "sio-16450"; "cyclades"; "digiboard"; "rocketport"; "syscons"; "pcvt";
    "stallion" ]

let found : tty list ref = ref []

let rint tty () =
  (* Receive interrupt: drain the UART FIFO into the clist. *)
  let rec drain () =
    match Serial.read_byte tty.hw with
    | None -> ()
    | Some c ->
        if Queue.length tty.t_canq >= clist_limit then tty.t_overflows <- tty.t_overflows + 1
        else begin
          Queue.add c tty.t_canq;
          if tty.t_echo then Serial.write_byte tty.hw c
        end;
        Sleep_record.wakeup tty.t_rsel;
        drain ()
  in
  drain ()

let probe_ttys osenv =
  let machine = Osenv.machine osenv in
  let ttys =
    List.filter_map
      (fun hw ->
        match hw with
        | Bus.Hw_serial { model; serial } when List.mem model supported_models ->
            Some
              { t_name = "tty" ^ string_of_int (List.length !found);
                t_model = model;
                hw = serial;
                t_canq = Queue.create ();
                t_rsel = Sleep_record.create ~name:"ttyin" ();
                t_echo = false;
                t_overflows = 0;
                opened = false }
        | Bus.Hw_serial _ | Bus.Hw_nic _ | Bus.Hw_disk _ -> None)
      (Bus.hardware machine)
  in
  found := !found @ ttys;
  ttys

let tty_open osenv tty =
  if not tty.opened then begin
    match Osenv.irq_request osenv ~irq:4 ~handler:(rint tty) with
    | Ok () -> tty.opened <- true
    | Error _ ->
        (* Line already claimed (several ports share IRQ4 on the PC):
           chain off polling via a timeout, as the donor's shared-IRQ
           fallback does. *)
        let rec poll () =
          rint tty ();
          ignore (Osenv.timeout osenv ~ns:1_000_000 poll)
        in
        tty.opened <- true;
        poll ()
  end

(* Blocking read: at least one byte. *)
let tty_read tty ~buf ~pos ~amount =
  let rec take n =
    if n >= amount then n
    else
      match Queue.take_opt tty.t_canq with
      | Some c ->
          Bytes.set buf (pos + n) (Char.chr c);
          take (n + 1)
      | None -> n
  in
  let rec wait () =
    let n = take 0 in
    if n > 0 then n
    else begin
      Sleep_record.sleep tty.t_rsel;
      wait ()
    end
  in
  if amount = 0 then 0 else wait ()

let tty_write tty ~buf ~pos ~amount =
  Cost.charge_cycles (50 * amount) (* donor's per-char output path *);
  for i = 0 to amount - 1 do
    Serial.write_byte tty.hw (Char.code (Bytes.get buf (pos + i)))
  done;
  amount

let reset () = found := []
