type partition = {
  p_index : int;
  p_type : int;
  p_start : int;
  p_sectors : int;
  p_active : bool;
}

let sector = 512
let table_off = 446
let entry_size = 16

let ( let* ) = Result.bind

let read_sector0 dev =
  let buf = Bytes.create sector in
  let* n = dev.Io_if.bio_read ~buf ~pos:0 ~offset:0 ~amount:sector in
  if n <> sector then Result.Error Error.Io else Ok buf

let read_partitions dev =
  let* mbr = read_sector0 dev in
  if Bytes.get_uint16_le mbr 510 <> 0xAA55 then Result.Error Error.Inval
  else begin
    let entry i =
      let o = table_off + (i * entry_size) in
      let p_type = Char.code (Bytes.get mbr (o + 4)) in
      if p_type = 0 then None
      else
        Some
          { p_index = i;
            p_type;
            p_start = Int32.to_int (Bytes.get_int32_le mbr (o + 8)) land 0xffffffff;
            p_sectors = Int32.to_int (Bytes.get_int32_le mbr (o + 12)) land 0xffffffff;
            p_active = Char.code (Bytes.get mbr o) land 0x80 <> 0 }
    in
    Ok (List.filter_map entry [ 0; 1; 2; 3 ])
  end

let partition_blkio dev p =
  let base = p.p_start * sector in
  let size = p.p_sectors * sector in
  let clamp offset amount = max 0 (min amount (size - offset)) in
  let rec view () =
    { Io_if.bio_unknown = unknown ();
      getblocksize = dev.Io_if.getblocksize;
      bio_read =
        (fun ~buf ~pos ~offset ~amount ->
          if offset < 0 then Result.Error Error.Inval
          else dev.Io_if.bio_read ~buf ~pos ~offset:(base + offset) ~amount:(clamp offset amount));
      bio_write =
        (fun ~buf ~pos ~offset ~amount ->
          if offset < 0 then Result.Error Error.Inval
          else dev.Io_if.bio_write ~buf ~pos ~offset:(base + offset) ~amount:(clamp offset amount));
      getsize = (fun () -> size);
      setsize = (fun _ -> Result.Error Error.Notsup) }
  and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.blkio_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()

let write_label dev parts =
  if List.length parts > 4 then Result.Error Error.Inval
  else begin
    let mbr = Bytes.make sector '\000' in
    Bytes.set_uint16_le mbr 510 0xAA55;
    List.iteri
      (fun i (p_type, start, sectors) ->
        let o = table_off + (i * entry_size) in
        Bytes.set mbr o (if i = 0 then '\x80' else '\x00');
        Bytes.set mbr (o + 4) (Char.chr (p_type land 0xff));
        Bytes.set_int32_le mbr (o + 8) (Int32.of_int start);
        Bytes.set_int32_le mbr (o + 12) (Int32.of_int sectors))
      parts;
    let* n = dev.Io_if.bio_write ~buf:mbr ~pos:0 ~offset:0 ~amount:sector in
    if n <> sector then Result.Error Error.Io else Ok ()
  end
