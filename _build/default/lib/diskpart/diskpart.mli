(** Disk partition interpretation (the paper's [diskpart] library).

    Reads PC MBR partition tables from any [blkio] and returns each
    partition as a sub-[blkio] view, so a file system component can be
    bound to a partition exactly as it would be to a whole disk — run-time
    component binding again (Section 4.2.2). *)

type partition = {
  p_index : int;  (** 0-3, primary slot *)
  p_type : int;  (** system id byte, e.g. 0xA5 FreeBSD, 0x83 Linux *)
  p_start : int;  (** first sector, LBA *)
  p_sectors : int;
  p_active : bool;
}

(** [read_partitions dev] parses the MBR (sector 0).  Empty slots (type 0)
    are omitted. *)
val read_partitions : Io_if.blkio -> (partition list, Error.t) result

(** [partition_blkio dev p] — a [blkio] restricted to the partition, with
    offsets rebased. *)
val partition_blkio : Io_if.blkio -> partition -> Io_if.blkio

(** [write_label dev parts] writes an MBR describing [parts] (tests and
    image builders); entries beyond four are rejected. *)
val write_label : Io_if.blkio -> (int * int * int) list -> (unit, Error.t) result
(** each entry: (type, start_sector, sectors) *)
