(** The OSKit umbrella.

    The kit itself is just the set of libraries under [lib/]; this module
    carries the version banner and the few cross-library conveniences, and
    {!Clientos} packages the "recipes" of Section 4.5 — prebuilt
    assemblies of components for common client-OS shapes. *)

let version = "0.9.0"
let banner = "Flux OSKit (OCaml reproduction) " ^ version

(** Convert a dotted quad to the host-order int32 the stacks use. *)
let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let p x =
        let v = int_of_string x in
        if v < 0 || v > 255 then invalid_arg "ip_of_string";
        v
      in
      Int32.of_int ((p a lsl 24) lor (p b lsl 16) lor (p c lsl 8) lor p d)
  | _ -> invalid_arg "ip_of_string"

let string_of_ip ip =
  let v = Int32.to_int ip land 0xffffffff in
  Printf.sprintf "%d.%d.%d.%d" (v lsr 24) ((v lsr 16) land 0xff) ((v lsr 8) land 0xff)
    (v land 0xff)
