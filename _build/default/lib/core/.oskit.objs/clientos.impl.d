lib/core/clientos.ml: Bsd_socket Bus Bytes Cost Disk Error Fdev Freebsd_glue Io_if Kclock Kernel Linux_glue Linux_inet Machine Native_if Nic Osenv Posix Result Wire World
