lib/core/clientos.mli: Bsd_socket Disk Freebsd_glue Kernel Linux_inet Machine Nic Posix Wire World
