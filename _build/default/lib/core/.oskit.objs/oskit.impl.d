lib/core/oskit.ml: Int32 Printf String
