(* ENCAPSULATED LEGACY CODE — the Linux fs/msdos driver, abridged: a real
 * FAT16 on-disk format ("to support many diverse file system formats, such
 * as those of Windows 95, OS/2, and System V", Section 3.8).  Boot sector,
 * two FAT copies, a fixed root directory, 8.3 names, cluster chains.
 * Everything reaches the device through the blkio handed to mount — the
 * same run-time binding as the NetBSD component, so the two file systems
 * are interchangeable behind the COM dir/file interfaces.
 *)

let sector_size = 512
let dirent_size = 32
let attr_directory = 0x10
let fat_free = 0x0000
let fat_eoc = 0xfff8
let deleted_mark = '\xe5'

exception Fat_error of Error.t

let fail e = raise (Fat_error e)

type t = {
  dev : Io_if.blkio;
  sectors_per_cluster : int;
  reserved_sectors : int;
  nfats : int;
  sectors_per_fat : int;
  root_entries : int;
  total_sectors : int;
  mutable next_free_hint : int;
}

let cluster_bytes t = t.sectors_per_cluster * sector_size
let fat_start t = t.reserved_sectors
let root_start t = fat_start t + (t.nfats * t.sectors_per_fat)
let root_sectors t = t.root_entries * dirent_size / sector_size
let data_start t = root_start t + root_sectors t
let nclusters t = ((t.total_sectors - data_start t) / t.sectors_per_cluster) + 2

let read_sectors t ~start ~count =
  let buf = Bytes.create (count * sector_size) in
  match
    t.dev.Io_if.bio_read ~buf ~pos:0 ~offset:(start * sector_size)
      ~amount:(count * sector_size)
  with
  | Ok n when n = count * sector_size -> buf
  | Ok _ | Error _ -> fail Error.Io

let write_sectors t ~start buf =
  match
    t.dev.Io_if.bio_write ~buf ~pos:0 ~offset:(start * sector_size) ~amount:(Bytes.length buf)
  with
  | Ok n when n = Bytes.length buf -> ()
  | Ok _ | Error _ -> fail Error.Io

(* ---- FAT access (both copies kept in step, as the donor does) ---- *)

let fat_get t cluster =
  let off = cluster * 2 in
  let sector = fat_start t + (off / sector_size) in
  let b = read_sectors t ~start:sector ~count:1 in
  Bytes.get_uint16_le b (off mod sector_size)

let fat_set t cluster value =
  let off = cluster * 2 in
  for copy = 0 to t.nfats - 1 do
    let sector = fat_start t + (copy * t.sectors_per_fat) + (off / sector_size) in
    let b = read_sectors t ~start:sector ~count:1 in
    Bytes.set_uint16_le b (off mod sector_size) value;
    write_sectors t ~start:sector b
  done

let cluster_alloc t =
  let n = nclusters t in
  let rec scan tried c =
    if tried >= n - 2 then fail Error.Nospc
    else begin
      let c = if c >= n then 2 else c in
      if fat_get t c = fat_free then begin
        fat_set t c fat_eoc;
        t.next_free_hint <- c + 1;
        c
      end
      else scan (tried + 1) (c + 1)
    end
  in
  scan 0 (max 2 t.next_free_hint)

let cluster_sector t cluster = data_start t + ((cluster - 2) * t.sectors_per_cluster)

let read_cluster t cluster = read_sectors t ~start:(cluster_sector t cluster) ~count:t.sectors_per_cluster
let write_cluster t cluster buf = write_sectors t ~start:(cluster_sector t cluster) buf

(* Walk a chain to its [idx]th cluster, optionally growing it. *)
let rec chain_nth t ~head ~idx ~grow =
  if idx = 0 then head
  else begin
    let next = fat_get t head in
    if next >= fat_eoc || next = fat_free then
      if not grow then fail Error.Io
      else begin
        let fresh = cluster_alloc t in
        fat_set t head fresh;
        Bytes.make (cluster_bytes t) '\000' |> write_cluster t fresh;
        chain_nth t ~head:fresh ~idx:(idx - 1) ~grow
      end
    else chain_nth t ~head:next ~idx:(idx - 1) ~grow
  end

let chain_free t head =
  let rec go c =
    if c >= 2 && c < fat_eoc && c <> fat_free then begin
      let next = fat_get t c in
      fat_set t c fat_free;
      if next < fat_eoc then go next
    end
  in
  if head <> 0 then go head

(* ---- 8.3 names ---- *)

let to_83 name =
  if name = "" || String.length name > 12 then fail Error.Nametoolong;
  let base, ext =
    match String.index_opt name '.' with
    | Some i -> String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1)
    | None -> name, ""
  in
  if String.length base > 8 || String.length ext > 3 || base = "" then fail Error.Nametoolong;
  let pad s n = String.uppercase_ascii s ^ String.make (n - String.length s) ' ' in
  pad base 8 ^ pad ext 3

let of_83 raw =
  let base = String.trim (String.sub raw 0 8) in
  let ext = String.trim (String.sub raw 8 3) in
  if ext = "" then base else base ^ "." ^ ext

(* ---- directories ----
   A directory is either the fixed root area (cluster = 0 in our handle)
   or a cluster chain of dirents. *)

type dirent = {
  de_name : string; (* as displayed *)
  de_attr : int;
  de_cluster : int;
  de_size : int;
  de_slot : int; (* index within the directory *)
}

type dirh = Root | Chain of int (* head cluster *)

let dir_read_slot t dirh slot =
  if dirh = Root then begin
    if slot >= t.root_entries then None
    else begin
      let sector = root_start t + (slot * dirent_size / sector_size) in
      let b = read_sectors t ~start:sector ~count:1 in
      Some (Bytes.sub b (slot * dirent_size mod sector_size) dirent_size)
    end
  end
  else begin
    match dirh with
    | Chain head ->
        let per_cluster = cluster_bytes t / dirent_size in
        let cidx = slot / per_cluster in
        (* Count chain length first to avoid growing on read. *)
        let rec reachable c n = if n = 0 then true else begin
            let next = fat_get t c in
            if next >= fat_eoc || next = fat_free then false else reachable next (n - 1)
          end
        in
        if cidx > 0 && not (reachable head cidx) then None
        else begin
          let c = chain_nth t ~head ~idx:cidx ~grow:false in
          let b = read_cluster t c in
          Some (Bytes.sub b (slot mod per_cluster * dirent_size) dirent_size)
        end
    | Root -> assert false
  end

let dir_write_slot t dirh slot raw =
  if dirh = Root then begin
    if slot >= t.root_entries then fail Error.Nospc;
    let sector = root_start t + (slot * dirent_size / sector_size) in
    let b = read_sectors t ~start:sector ~count:1 in
    Bytes.blit raw 0 b (slot * dirent_size mod sector_size) dirent_size;
    write_sectors t ~start:sector b
  end
  else begin
    match dirh with
    | Chain head ->
        let per_cluster = cluster_bytes t / dirent_size in
        let c = chain_nth t ~head ~idx:(slot / per_cluster) ~grow:true in
        let b = read_cluster t c in
        Bytes.blit raw 0 b (slot mod per_cluster * dirent_size) dirent_size;
        write_cluster t c b
    | Root -> assert false
  end

let parse_dirent slot raw =
  let first = Bytes.get raw 0 in
  if first = '\000' then `End
  else if first = deleted_mark then `Deleted
  else
    `Entry
      { de_name = of_83 (Bytes.sub_string raw 0 11);
        de_attr = Char.code (Bytes.get raw 11);
        de_cluster = Bytes.get_uint16_le raw 26;
        de_size = Int32.to_int (Bytes.get_int32_le raw 28);
        de_slot = slot }

let render_dirent ~name83 ~attr ~cluster ~size =
  let raw = Bytes.make dirent_size '\000' in
  Bytes.blit_string name83 0 raw 0 11;
  Bytes.set raw 11 (Char.chr attr);
  Bytes.set_uint16_le raw 26 cluster;
  Bytes.set_int32_le raw 28 (Int32.of_int size);
  raw

let dir_iter t dirh f =
  let rec go slot =
    match dir_read_slot t dirh slot with
    | None -> ()
    | Some raw -> (
        match parse_dirent slot raw with
        | `End -> ()
        | `Deleted -> go (slot + 1)
        | `Entry e ->
            f e;
            go (slot + 1))
  in
  go 0

let dir_find t dirh name =
  let target = to_83 name in
  let result = ref None in
  (try
     dir_iter t dirh (fun e ->
         if to_83 e.de_name = target then begin
           result := Some e;
           raise Exit
         end)
   with Exit -> ());
  !result

let dir_free_slot t dirh =
  let rec go slot =
    match dir_read_slot t dirh slot with
    | None -> (
        (* Off the end: the fixed root is full; a chain directory grows on
           the write. *)
        match dirh with Root -> fail Error.Nospc | Chain _ -> slot)
    | Some raw -> (
        match parse_dirent slot raw with `End | `Deleted -> slot | `Entry _ -> go (slot + 1))
  in
  go 0

let dir_entries t dirh =
  let acc = ref [] in
  dir_iter t dirh (fun e -> if e.de_name <> "." && e.de_name <> ".." then acc := e :: !acc);
  List.rev !acc

(* ---- files ---- *)

let file_read t ~head ~size ~off ~len ~dst ~dst_pos =
  let len = max 0 (min len (size - off)) in
  let cb = cluster_bytes t in
  let rec go off len dst_pos copied =
    if len = 0 then copied
    else begin
      let c = chain_nth t ~head ~idx:(off / cb) ~grow:false in
      let b = read_cluster t c in
      let boff = off mod cb in
      let n = min len (cb - boff) in
      Cost.charge_copy n;
      Bytes.blit b boff dst dst_pos n;
      go (off + n) (len - n) (dst_pos + n) (copied + n)
    end
  in
  if head = 0 || len = 0 then 0 else go off len dst_pos 0

(* Returns the (possibly new) head cluster. *)
let file_write t ~head ~off ~len ~src ~src_pos =
  let cb = cluster_bytes t in
  let head = if head = 0 then begin
      let c = cluster_alloc t in
      write_cluster t c (Bytes.make cb '\000');
      c
    end
    else head
  in
  let rec go off len src_pos =
    if len > 0 then begin
      let c = chain_nth t ~head ~idx:(off / cb) ~grow:true in
      let b = read_cluster t c in
      let boff = off mod cb in
      let n = min len (cb - boff) in
      Cost.charge_copy n;
      Bytes.blit src src_pos b boff n;
      write_cluster t c b;
      go (off + n) (len - n) (src_pos + n)
    end
  in
  go off len src_pos;
  head

(* ---- mkfs / mount ---- *)

let mkfs dev =
  let bytes = dev.Io_if.getsize () in
  let total_sectors = min 65535 (bytes / sector_size) in
  if total_sectors < 64 then fail Error.Nospc;
  let sectors_per_cluster = 4 in
  let reserved_sectors = 1 in
  let nfats = 2 in
  let root_entries = 512 in
  (* Enough FAT sectors to cover the data area. *)
  let sectors_per_fat = ((total_sectors / sectors_per_cluster) + 2) * 2 / sector_size + 1 in
  let boot = Bytes.make sector_size '\000' in
  Bytes.blit_string "\xeb\x3c\x90OSKITFAT" 0 boot 0 11;
  Bytes.set_uint16_le boot 11 sector_size;
  Bytes.set boot 13 (Char.chr sectors_per_cluster);
  Bytes.set_uint16_le boot 14 reserved_sectors;
  Bytes.set boot 16 (Char.chr nfats);
  Bytes.set_uint16_le boot 17 root_entries;
  Bytes.set_uint16_le boot 19 total_sectors;
  Bytes.set boot 21 '\xf8';
  Bytes.set_uint16_le boot 22 sectors_per_fat;
  Bytes.set_uint16_le boot 510 0xaa55;
  let t =
    { dev; sectors_per_cluster; reserved_sectors; nfats; sectors_per_fat; root_entries;
      total_sectors; next_free_hint = 2 }
  in
  write_sectors t ~start:0 boot;
  (* Zero FATs and root. *)
  let zero = Bytes.make sector_size '\000' in
  for s = fat_start t to data_start t - 1 do
    write_sectors t ~start:s zero
  done;
  (* Media/EOC markers in FAT[0..1]. *)
  fat_set t 0 0xfff8;
  fat_set t 1 0xffff;
  t

let mount dev =
  let boot = Bytes.create sector_size in
  (match dev.Io_if.bio_read ~buf:boot ~pos:0 ~offset:0 ~amount:sector_size with
  | Ok n when n = sector_size -> ()
  | Ok _ | Error _ -> fail Error.Io);
  if Bytes.get_uint16_le boot 510 <> 0xaa55 then fail Error.Inval;
  let t =
    { dev;
      sectors_per_cluster = Char.code (Bytes.get boot 13);
      reserved_sectors = Bytes.get_uint16_le boot 14;
      nfats = Char.code (Bytes.get boot 16);
      sectors_per_fat = Bytes.get_uint16_le boot 22;
      root_entries = Bytes.get_uint16_le boot 17;
      total_sectors = Bytes.get_uint16_le boot 19;
      next_free_hint = 2 }
  in
  if t.sectors_per_cluster = 0 || t.nfats = 0 then fail Error.Inval;
  t

(* ---- name-space operations used by the glue ---- *)

let create_file t dirh name =
  if dir_find t dirh name <> None then fail Error.Exist;
  let slot = dir_free_slot t dirh in
  dir_write_slot t dirh slot (render_dirent ~name83:(to_83 name) ~attr:0 ~cluster:0 ~size:0);
  Option.get (dir_find t dirh name)

let update_entry t dirh (e : dirent) ~cluster ~size =
  dir_write_slot t dirh e.de_slot
    (render_dirent ~name83:(to_83 e.de_name) ~attr:e.de_attr ~cluster ~size)

let make_dir t dirh name =
  if dir_find t dirh name <> None then fail Error.Exist;
  let c = cluster_alloc t in
  write_cluster t c (Bytes.make (cluster_bytes t) '\000');
  let slot = dir_free_slot t dirh in
  dir_write_slot t dirh slot
    (render_dirent ~name83:(to_83 name) ~attr:attr_directory ~cluster:c ~size:0);
  Option.get (dir_find t dirh name)

let remove t dirh name ~want_dir =
  match dir_find t dirh name with
  | None -> fail Error.Noent
  | Some e ->
      let is_dir = e.de_attr land attr_directory <> 0 in
      if want_dir && not is_dir then fail Error.Notdir;
      if (not want_dir) && is_dir then fail Error.Isdir;
      if is_dir && dir_entries t (Chain e.de_cluster) <> [] then fail Error.Notempty;
      chain_free t e.de_cluster;
      (* Mark the slot deleted, donor-style. *)
      (match dir_read_slot t dirh e.de_slot with
      | Some raw ->
          Bytes.set raw 0 deleted_mark;
          dir_write_slot t dirh e.de_slot raw
      | None -> ())
