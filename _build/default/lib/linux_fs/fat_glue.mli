(** GLUE — exports the encapsulated Linux FAT16 driver through the same
    OSKit COM [dir]/[file] interfaces as the NetBSD file system, making the
    two interchangeable behind any client (the POSIX layer, the secure file
    server wrapper...).  This is the paper's "pick the best components from
    different sources" point applied to file systems (Sections 3.7–3.8). *)

(** [mkfs blkio] formats a FAT16 volume and returns its mounted root. *)
val mkfs : Io_if.blkio -> (Io_if.dir, Error.t) result

(** [mount blkio] mounts an existing FAT16 volume (boot-sector validated). *)
val mount : Io_if.blkio -> (Io_if.dir, Error.t) result
