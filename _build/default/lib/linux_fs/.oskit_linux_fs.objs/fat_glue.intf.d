lib/linux_fs/fat_glue.mli: Error Io_if
