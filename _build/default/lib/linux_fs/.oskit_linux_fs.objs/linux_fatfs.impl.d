lib/linux_fs/linux_fatfs.ml: Bytes Char Cost Error Int32 Io_if List Option String
