lib/linux_fs/fat_glue.ml: Bytes Com Cost Error Iid Io_if Lazy Linux_fatfs List Result
