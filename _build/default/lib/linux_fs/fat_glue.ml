(* Entry discipline as in the other encapsulated components: charge the
   crossing, translate Fat_error to error_t. *)
let enter f =
  Cost.charge_glue_crossing ();
  match f () with
  | v -> Ok v
  | exception Linux_fatfs.Fat_error e -> Result.Error e
  | exception Error.Error e -> Result.Error e

(* Private recognition interface so rename can tell our directories from
   foreign ones (cross-file-system rename is EXDEV, as in POSIX). *)
type dir_token = { tok_fs : Linux_fatfs.t; tok_dirh : Linux_fatfs.dirh }

let dirh_iid : dir_token Iid.t = Iid.declare "oskit.linuxfs.dirh"

let ino_of_dirh = function Linux_fatfs.Root -> 1 | Linux_fatfs.Chain c -> c + 0x10000

let find_entry t dirh name =
  match Linux_fatfs.dir_find t dirh name with
  | Some e -> e
  | None -> Linux_fatfs.fail Error.Noent

(* Zero-fill [from, to) of a file chain, growing it. *)
let zero_fill t ~head ~from ~upto =
  if upto > from then begin
    let z = Bytes.make (upto - from) '\000' in
    Linux_fatfs.file_write t ~head ~off:from ~len:(upto - from) ~src:z ~src_pos:0
  end
  else head

let rec file_of t dirh name : Io_if.file =
  let rec view () =
    { Io_if.f_unknown = unknown ();
      f_read =
        (fun ~buf ~pos ~offset ~amount ->
          enter (fun () ->
              let e = find_entry t dirh name in
              Linux_fatfs.file_read t ~head:e.Linux_fatfs.de_cluster
                ~size:e.Linux_fatfs.de_size ~off:offset ~len:amount ~dst:buf ~dst_pos:pos));
      f_write =
        (fun ~buf ~pos ~offset ~amount ->
          enter (fun () ->
              if offset < 0 then Linux_fatfs.fail Error.Inval;
              let e = find_entry t dirh name in
              let head = e.Linux_fatfs.de_cluster in
              (* Writing past EOF implies a zero-filled gap. *)
              let head =
                if offset > e.Linux_fatfs.de_size then
                  zero_fill t ~head ~from:e.Linux_fatfs.de_size ~upto:offset
                else head
              in
              let head =
                Linux_fatfs.file_write t ~head ~off:offset ~len:amount ~src:buf ~src_pos:pos
              in
              Linux_fatfs.update_entry t dirh e ~cluster:head
                ~size:(max e.Linux_fatfs.de_size (offset + amount));
              amount));
      f_getstat =
        (fun () ->
          enter (fun () ->
              let e = find_entry t dirh name in
              { Io_if.st_ino = e.Linux_fatfs.de_slot + ino_of_dirh dirh;
                st_size = e.Linux_fatfs.de_size;
                st_kind = Io_if.Regular;
                st_nlink = 1 }));
      f_setsize =
        (fun size ->
          enter (fun () ->
              if size < 0 then Linux_fatfs.fail Error.Inval;
              let e = find_entry t dirh name in
              if size = 0 then begin
                Linux_fatfs.chain_free t e.Linux_fatfs.de_cluster;
                Linux_fatfs.update_entry t dirh e ~cluster:0 ~size:0
              end
              else if size <= e.Linux_fatfs.de_size then
                (* Shrink: keep the chain, adjust the size (lazy, like the
                   donor; clusters past EOF are reclaimed on unlink). *)
                Linux_fatfs.update_entry t dirh e ~cluster:e.Linux_fatfs.de_cluster ~size
              else begin
                let head =
                  zero_fill t ~head:e.Linux_fatfs.de_cluster ~from:e.Linux_fatfs.de_size
                    ~upto:size
                in
                Linux_fatfs.update_entry t dirh e ~cluster:head ~size
              end));
      f_sync = (fun () -> Ok ()) }
  and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.file_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()

and dir_of t dirh : Io_if.dir =
  let rec view () =
    { Io_if.d_unknown = unknown ();
      d_getstat =
        (fun () ->
          enter (fun () ->
              { Io_if.st_ino = ino_of_dirh dirh;
                st_size = List.length (Linux_fatfs.dir_entries t dirh);
                st_kind = Io_if.Directory;
                st_nlink = 1 }));
      d_lookup =
        (fun name ->
          enter (fun () ->
              let e = find_entry t dirh name in
              if e.Linux_fatfs.de_attr land Linux_fatfs.attr_directory <> 0 then
                Io_if.Node_dir (dir_of t (Linux_fatfs.Chain e.Linux_fatfs.de_cluster))
              else Io_if.Node_file (file_of t dirh name)));
      d_create =
        (fun name ->
          enter (fun () ->
              ignore (Linux_fatfs.create_file t dirh name);
              file_of t dirh name));
      d_mkdir =
        (fun name ->
          enter (fun () ->
              let e = Linux_fatfs.make_dir t dirh name in
              dir_of t (Linux_fatfs.Chain e.Linux_fatfs.de_cluster)));
      d_unlink = (fun name -> enter (fun () -> Linux_fatfs.remove t dirh name ~want_dir:false));
      d_rmdir = (fun name -> enter (fun () -> Linux_fatfs.remove t dirh name ~want_dir:true));
      d_rename =
        (fun src_name dst_dir dst_name ->
          enter (fun () ->
              (* Only within the same FAT volume; foreign targets are
                 cross-device. *)
              match Com.query dst_dir.Io_if.d_unknown dirh_iid with
              | Result.Error _ -> Linux_fatfs.fail Error.Xdev
              | Ok tok ->
                  ignore (dst_dir.Io_if.d_unknown.Com.release ());
                  if tok.tok_fs != t then Linux_fatfs.fail Error.Xdev;
                  let e = find_entry t dirh src_name in
                  (match Linux_fatfs.dir_find t tok.tok_dirh dst_name with
                  | Some _ -> Linux_fatfs.remove t tok.tok_dirh dst_name ~want_dir:false
                  | None -> ());
                  let slot = Linux_fatfs.dir_free_slot t tok.tok_dirh in
                  Linux_fatfs.dir_write_slot t tok.tok_dirh slot
                    (Linux_fatfs.render_dirent ~name83:(Linux_fatfs.to_83 dst_name)
                       ~attr:e.Linux_fatfs.de_attr ~cluster:e.Linux_fatfs.de_cluster
                       ~size:e.Linux_fatfs.de_size);
                  (* Delete the old slot without freeing the chain. *)
                  (match Linux_fatfs.dir_read_slot t dirh e.Linux_fatfs.de_slot with
                  | Some raw ->
                      Bytes.set raw 0 Linux_fatfs.deleted_mark;
                      Linux_fatfs.dir_write_slot t dirh e.Linux_fatfs.de_slot raw
                  | None -> ())));
      d_readdir =
        (fun () ->
          enter (fun () ->
              List.map (fun e -> e.Linux_fatfs.de_name) (Linux_fatfs.dir_entries t dirh)));
      d_sync = (fun () -> Ok ()) }
  and obj =
    lazy
      (Com.create (fun _ ->
           [ Iid.B (Io_if.dir_iid, fun () -> view ());
             Iid.B (dirh_iid, fun () -> { tok_fs = t; tok_dirh = dirh }) ]))
  and unknown () = Lazy.force obj in
  view ()

let mkfs dev = enter (fun () -> Linux_fatfs.mkfs dev) |> Result.map (fun t -> dir_of t Linux_fatfs.Root)
let mount dev = enter (fun () -> Linux_fatfs.mount dev) |> Result.map (fun t -> dir_of t Linux_fatfs.Root)
