type image = {
  entry : int32;
  load_va : int32;
  text : string;
  data : string;
  bss_size : int;
}

let magic = 0x4F584631l (* "OXF1" *)
let header_size = 24

let pack img =
  let b = Bytes.create (header_size + String.length img.text + String.length img.data) in
  Bytes.set_int32_le b 0 magic;
  Bytes.set_int32_le b 4 img.entry;
  Bytes.set_int32_le b 8 img.load_va;
  Bytes.set_int32_le b 12 (Int32.of_int (String.length img.text));
  Bytes.set_int32_le b 16 (Int32.of_int (String.length img.data));
  Bytes.set_int32_le b 20 (Int32.of_int img.bss_size);
  Bytes.blit_string img.text 0 b header_size (String.length img.text);
  Bytes.blit_string img.data 0 b (header_size + String.length img.text)
    (String.length img.data);
  b

let parse b =
  if Bytes.length b < header_size then Result.Error Error.Inval
  else if Bytes.get_int32_le b 0 <> magic then Result.Error Error.Inval
  else begin
    let text_len = Int32.to_int (Bytes.get_int32_le b 12) in
    let data_len = Int32.to_int (Bytes.get_int32_le b 16) in
    let bss_size = Int32.to_int (Bytes.get_int32_le b 20) in
    if
      text_len < 0 || data_len < 0 || bss_size < 0
      || Bytes.length b < header_size + text_len + data_len
    then Result.Error Error.Inval
    else
      Ok
        { entry = Bytes.get_int32_le b 4;
          load_va = Bytes.get_int32_le b 8;
          text = Bytes.sub_string b header_size text_len;
          data = Bytes.sub_string b (header_size + text_len) data_len;
          bss_size }
  end

type loaded = { l_entry : int32; l_base : int; l_size : int }

let load ram img ~at =
  let text_len = String.length img.text and data_len = String.length img.data in
  Physmem.blit_from_bytes ram ~src:(Bytes.of_string img.text) ~src_pos:0 ~dst_addr:at
    ~len:text_len;
  Physmem.blit_from_bytes ram ~src:(Bytes.of_string img.data) ~src_pos:0
    ~dst_addr:(at + text_len) ~len:data_len;
  Physmem.fill ram ~addr:(at + text_len + data_len) ~len:img.bss_size 0;
  Cost.charge_copy (text_len + data_len);
  { l_entry = img.entry; l_base = at; l_size = text_len + data_len + img.bss_size }

let page = 4096
let page_down v = v land lnot (page - 1)
let page_up v = (v + page - 1) land lnot (page - 1)

let map_into pt img loaded =
  let va = Int32.to_int img.load_va land 0xffffffff in
  if va land (page - 1) <> 0 || loaded.l_base land (page - 1) <> 0 then
    invalid_arg "Exec.map_into: unaligned load";
  let text_pages = page_up (String.length img.text) / page in
  let total_pages = (page_up loaded.l_size / page) in
  for i = 0 to total_pages - 1 do
    let writable = i >= text_pages in
    Page_table.map pt
      ~va:(Int32.of_int (page_down va + (i * page)))
      ~pa:(loaded.l_base + (i * page))
      ~prot:{ Page_table.writable; user = true }
  done
