(** Program loading (the paper's [exec] library).

    A simple fixed executable format and a loader that places a program
    image into (simulated) physical memory and, optionally, maps it into a
    page table.  Fluke used this to load its first user-mode server from a
    boot module. *)

type image = {
  entry : int32;  (** entry point, virtual *)
  load_va : int32;  (** link/load address, virtual *)
  text : string;
  data : string;
  bss_size : int;
}

(** [pack img] serialises to the on-disk/boot-module format. *)
val pack : image -> bytes

(** [parse b] validates magic/lengths. *)
val parse : bytes -> (image, Error.t) result

type loaded = { l_entry : int32; l_base : int; l_size : int }

(** [load ram img ~at] copies text+data to physical [at], zeroes bss. *)
val load : Physmem.t -> image -> at:int -> loaded

(** [map pt loaded ~load_va] maps the loaded range at its virtual address:
    text read-only would need per-page protection granularity — we map text
    non-writable and data/bss writable, page-aligned. *)
val map_into : Page_table.t -> image -> loaded -> unit
