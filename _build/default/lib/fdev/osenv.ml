type t = {
  machine : Machine.t;
  devices : Registry.t;
  mutable alloc : size:int -> flags:int -> align_bits:int -> int option;
  mutable free : addr:int -> size:int -> unit;
  mutable irqs_taken : int list;
  mutable log_fn : string -> unit;
  log_buf : Buffer.t;
}

let create ?lmm machine =
  let lmm =
    match lmm with
    | Some l -> l
    | None ->
        let l = Lmm.create () in
        let ram = Physmem.size (Machine.ram machine) in
        Bootmem.add_standard_regions l ~ram_bytes:ram;
        (* Leave the low 2 MB for the kernel and boot data. *)
        Lmm.add_free l ~addr:0x200000 ~size:(ram - 0x200000);
        l
  in
  let log_buf = Buffer.create 128 in
  { machine;
    devices = Registry.create ();
    alloc =
      (fun ~size ~flags ~align_bits ->
        Cost.charge_alloc ();
        Lmm.alloc_aligned lmm ~size ~flags ~align_bits ~align_ofs:0);
    free = (fun ~addr ~size -> Lmm.free lmm ~addr ~size);
    irqs_taken = [];
    log_fn = (fun s -> Buffer.add_string log_buf (s ^ "\n"));
    log_buf }

let machine t = t.machine
let devices t = t.devices
let mem_alloc t ~size ~flags ~align_bits = t.alloc ~size ~flags ~align_bits
let mem_free t ~addr ~size = t.free ~addr ~size

let set_mem_hooks t ~alloc ~free =
  t.alloc <- alloc;
  t.free <- free

let irq_request t ~irq ~handler =
  if List.mem irq t.irqs_taken then Result.Error Error.Busy
  else begin
    Machine.set_irq_handler t.machine ~irq handler;
    Machine.unmask_irq t.machine ~irq;
    t.irqs_taken <- irq :: t.irqs_taken;
    Ok ()
  end

let irq_free t ~irq =
  Machine.mask_irq t.machine ~irq;
  t.irqs_taken <- List.filter (fun i -> i <> irq) t.irqs_taken

let timeout t ~ns f = Machine.after t.machine ns f
let untimeout = World.cancel
let log t s = t.log_fn s
let set_log t f = t.log_fn <- f
let log_output t = Buffer.contents t.log_buf
