type driver = {
  drv_name : string;
  drv_origin : string;
  drv_probe : Osenv.t -> Com.unknown list;
}

let drivers : driver list ref = ref []

let register_driver d =
  if not (List.exists (fun x -> x.drv_name = d.drv_name) !drivers) then
    drivers := !drivers @ [ d ]

let registered_drivers () = !drivers
let clear_drivers () = drivers := []

(* Any interface a probed device might export; [Registry.register] is keyed
   by GUID, so we register the object under each interface it answers to. *)
let known_iids () =
  [ Iid.B (Io_if.etherdev_iid, fun () -> assert false);
    Iid.B (Io_if.blkio_iid, fun () -> assert false);
    Iid.B (Io_if.chario_iid, fun () -> assert false) ]

let probe osenv =
  let registry = Osenv.devices osenv in
  let count = ref 0 in
  List.iter
    (fun d ->
      List.iter
        (fun obj ->
          incr count;
          List.iter
            (fun (Iid.B (iid, _)) ->
              match Com.query obj iid with
              | Ok _ ->
                  (* Drop the reference [query] took; the registry holds
                     its own. *)
                  ignore (obj.Com.release ());
                  Registry.register registry iid obj
              | Result.Error _ -> ())
            (known_iids ()))
        (d.drv_probe osenv))
    !drivers;
  !count

let lookup osenv iid = Registry.lookup (Osenv.devices osenv) iid
