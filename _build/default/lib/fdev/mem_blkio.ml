(* A blkio over plain memory — the RAM-disk every kit needs for tests and
   for clients that want a file system without a disk driver.  Charges
   copies like any other block device, but has no mechanical latency. *)

let make ?(block_size = 512) ~bytes () : Io_if.blkio =
  let store = Bytes.make bytes '\000' in
  let clamp offset amount = max 0 (min amount (bytes - offset)) in
  let rec view () =
    { Io_if.bio_unknown = unknown ();
      getblocksize = (fun () -> block_size);
      bio_read =
        (fun ~buf ~pos ~offset ~amount ->
          if offset < 0 then Result.Error Error.Inval
          else begin
            let n = clamp offset amount in
            Cost.charge_copy n;
            Bytes.blit store offset buf pos n;
            Ok n
          end);
      bio_write =
        (fun ~buf ~pos ~offset ~amount ->
          if offset < 0 then Result.Error Error.Inval
          else begin
            let n = clamp offset amount in
            Cost.charge_copy n;
            Bytes.blit buf pos store offset n;
            Ok n
          end);
      getsize = (fun () -> bytes);
      setsize = (fun _ -> Result.Error Error.Notsup) }
  and obj = lazy (Com.create (fun _ -> [ Iid.B (Io_if.blkio_iid, fun () -> view ()) ]))
  and unknown () = Lazy.force obj in
  view ()
