(** The driver-support environment ("osenv").

    Everything an encapsulated device driver needs from its surroundings,
    gathered behind overridable functions (Section 4.2.1): physical memory
    allocation (the paper's [fdev_mem_alloc], with DMA/alignment
    constraints), interrupt registration, timeouts, sleep records, and
    logging.  Defaults that "just work" are installed at creation — memory
    from an LMM primed over the machine's RAM — and any entry can be
    replaced by the client OS to take control. *)

type t

(** [create machine] builds an environment with default services.  If
    [lmm] is omitted, a private LMM is primed with the machine's RAM above
    2 MB (so defaults never collide with kernel/boot placement). *)
val create : ?lmm:Lmm.t -> Machine.t -> t

val machine : t -> Machine.t

(** The per-environment device table filled in by [Fdev.probe]. *)
val devices : t -> Registry.t

(** {2 Overridable services} *)

(** [mem_alloc t ~size ~flags ~align_bits] — physical memory for DMA
    buffers and descriptor rings.  [flags] are LMM flags (e.g.
    [Lmm.flag_low_16mb] for ISA DMA). *)
val mem_alloc : t -> size:int -> flags:int -> align_bits:int -> int option

val mem_free : t -> addr:int -> size:int -> unit
val set_mem_hooks :
  t ->
  alloc:(size:int -> flags:int -> align_bits:int -> int option) ->
  free:(addr:int -> size:int -> unit) ->
  unit

(** [irq_request t ~irq ~handler] — attach a hardware interrupt handler. *)
val irq_request : t -> irq:int -> handler:(unit -> unit) -> (unit, Error.t) result

val irq_free : t -> irq:int -> unit

(** One-shot callout, interrupt level. *)
val timeout : t -> ns:int -> (unit -> unit) -> World.event

val untimeout : World.event -> unit

(** Diagnostic log; default appends to an internal buffer. *)
val log : t -> string -> unit

val set_log : t -> (string -> unit) -> unit
val log_output : t -> string
