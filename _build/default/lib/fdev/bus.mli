(** The machine's hardware inventory.

    Probe routines need something to probe: example setups register the
    simulated controllers present on a machine here, and driver probe
    functions scan for models they recognise — the ISA/PCI walk of a real
    driver, reduced to its essence. *)

type hw =
  | Hw_nic of { model : string; nic : Nic.t }
  | Hw_disk of { model : string; disk : Disk.t }
  | Hw_serial of { model : string; serial : Serial.t }

val register_hw : Machine.t -> hw -> unit
val hardware : Machine.t -> hw list

(** Forget a machine's inventory (tests). *)
val clear : Machine.t -> unit
