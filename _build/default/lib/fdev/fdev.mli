(** The device-driver framework (Sections 3.6, 5).

    Drivers are component libraries: each is represented by "a single
    function entrypoint which is used to initialize and register the entire
    driver".  Initialization functions (e.g.
    [Linux_eth.init_ethernet ()]) register {e drivers}; [probe] then runs
    every registered driver against a machine's hardware inventory and
    fills the environment's device table with COM objects; [lookup] is the
    paper's [fdev_device_lookup]. *)

type driver = {
  drv_name : string;
  drv_origin : string;  (** which donor OS the encapsulated code came from *)
  drv_probe : Osenv.t -> Com.unknown list;
      (** detect supported hardware; return one device object per unit *)
}

(** Link a driver in (idempotent per [drv_name]). *)
val register_driver : driver -> unit

val registered_drivers : unit -> driver list

(** Unlink everything (tests). *)
val clear_drivers : unit -> unit

(** [probe osenv] runs every registered driver's probe and populates
    [Osenv.devices osenv]; returns the number of devices found. *)
val probe : Osenv.t -> int

(** [lookup osenv iid] — all probed devices exporting [iid]. *)
val lookup : Osenv.t -> 'a Iid.t -> 'a list
