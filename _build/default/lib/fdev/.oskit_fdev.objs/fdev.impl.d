lib/fdev/fdev.ml: Com Iid Io_if List Osenv Registry Result
