lib/fdev/bus.mli: Disk Machine Nic Serial
