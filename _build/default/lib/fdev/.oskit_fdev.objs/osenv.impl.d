lib/fdev/osenv.ml: Bootmem Buffer Cost Error List Lmm Machine Physmem Registry Result World
