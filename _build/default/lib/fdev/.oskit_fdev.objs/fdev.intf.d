lib/fdev/fdev.mli: Com Iid Osenv
