lib/fdev/mem_blkio.ml: Bytes Com Cost Error Iid Io_if Lazy Result
