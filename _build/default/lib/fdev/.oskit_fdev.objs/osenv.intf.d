lib/fdev/osenv.mli: Error Lmm Machine Registry World
