lib/fdev/bus.ml: Disk Hashtbl Machine Nic Serial
