type hw =
  | Hw_nic of { model : string; nic : Nic.t }
  | Hw_disk of { model : string; disk : Disk.t }
  | Hw_serial of { model : string; serial : Serial.t }

let table : (string, hw list ref) Hashtbl.t = Hashtbl.create 8

let slot machine =
  let key = Machine.name machine in
  match Hashtbl.find_opt table key with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace table key r;
      r

let register_hw machine hw =
  let r = slot machine in
  r := !r @ [ hw ]

let hardware machine = !(slot machine)
let clear machine = Hashtbl.remove table (Machine.name machine)
