(* ENCAPSULATED LEGACY CODE — the Internet checksum (in_cksum.c).
 *
 * 16-bit one's-complement sum over an mbuf chain, handling the odd-byte
 * boundary between mbufs exactly as the donor does.  Charged per byte: on
 * the testbed CPU this pass over the data was a visible part of per-packet
 * cost.
 *)

(* Add bytes [off, off+len) of [data] into the running 32-bit sum; [swapped]
   tracks an odd starting alignment across mbuf boundaries. *)
let sum_bytes data off len (sum, swapped) =
  let s = ref sum in
  let i = ref off in
  let remaining = ref len in
  let swapped = ref swapped in
  while !remaining > 0 do
    let byte = Char.code (Bytes.get data !i) in
    (* Even position contributes the high byte of a word. *)
    if !swapped then s := !s + byte else s := !s + (byte lsl 8);
    swapped := not !swapped;
    incr i;
    decr remaining
  done;
  !s, !swapped

let fold sum =
  let rec go s = if s > 0xffff then go ((s land 0xffff) + (s lsr 16)) else s in
  go sum

let finish sum = lnot (fold sum) land 0xffff

let cksum_bytes ?(init = 0) data ~off ~len =
  Cost.charge_checksum len;
  let sum, _ = sum_bytes data off len (init, false) in
  finish sum

(* Checksum over a whole mbuf chain starting [off] bytes in, for [len]
   bytes, folded with an initial partial sum (the pseudo-header). *)
let cksum_chain ?(init = 0) m ~off ~len =
  Cost.charge_checksum len;
  let rec go m off len acc =
    if len = 0 then acc
    else if off >= m.Mbuf.m_len then
      match m.Mbuf.m_next with
      | Some nx -> go nx (off - m.Mbuf.m_len) len acc
      | None -> invalid_arg "in_cksum: chain too short"
    else begin
      let n = min len (m.Mbuf.m_len - off) in
      let acc = sum_bytes m.Mbuf.m_data (m.Mbuf.m_off + off) n acc in
      if len = n then acc
      else
        match m.Mbuf.m_next with
        | Some nx -> go nx 0 (len - n) acc
        | None -> invalid_arg "in_cksum: chain too short"
    end
  in
  let sum, _ = go m off len (init, false) in
  finish sum

(* Partial sum of the TCP/UDP pseudo header (not folded, not negated). *)
let pseudo_header ~src ~dst ~proto ~len =
  let hi32 v = Int32.to_int (Int32.shift_right_logical v 16) land 0xffff in
  let lo32 v = Int32.to_int v land 0xffff in
  hi32 src + lo32 src + hi32 dst + lo32 dst + proto + len
