(* GLUE — the BSD sleep/wakeup emulation of Section 4.7.6.
 *
 * "The BSD sleep/wakeup mechanism uses a global hash table of 'events',
 * where an event is just an arbitrary 32-bit value; when wakeup is called
 * on a particular event, all processes waiting on that particular value
 * are woken.  In the encapsulated BSD-based OSKit components, we retain
 * BSD's original event hash table management code; however, the hash table
 * is now only used within that particular component, and instead of all
 * the scheduling-related fields in the emulated proc structure there is
 * now only a sleep record."
 *
 * One instance of this table lives inside each encapsulated BSD component;
 * the only client-OS service consumed is the sleep record. *)

let hash_buckets = 64

type waiter = { channel : int; record : Sleep_record.t }

type t = { table : waiter list array; mutable sleeps : int; mutable wakeups : int }

let create () = { table = Array.make hash_buckets []; sleeps = 0; wakeups = 0 }

let bucket chan = (chan lxor (chan lsr 8)) land (hash_buckets - 1)

(* tsleep(chan): block the current "process" until wakeup(chan). *)
let tsleep t ~channel =
  t.sleeps <- t.sleeps + 1;
  let w = { channel; record = Sleep_record.create ~name:"bsd.tsleep" () } in
  let b = bucket channel in
  t.table.(b) <- w :: t.table.(b);
  Sleep_record.sleep w.record;
  (* Our entry was removed by wakeup before the record fired; defensive
     sweep in case of a latched wake. *)
  t.table.(b) <- List.filter (fun x -> x != w) t.table.(b)

(* wakeup(chan): wake EVERY process sleeping on the channel. *)
let wakeup t ~channel =
  t.wakeups <- t.wakeups + 1;
  let b = bucket channel in
  let mine, others = List.partition (fun w -> w.channel = channel) t.table.(b) in
  t.table.(b) <- others;
  List.iter (fun w -> Sleep_record.wakeup w.record) (List.rev mine)

let waiters t ~channel =
  List.length (List.filter (fun w -> w.channel = channel) t.table.(bucket channel))

let stats t = t.sleeps, t.wakeups
