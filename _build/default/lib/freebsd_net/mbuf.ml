(* ENCAPSULATED LEGACY CODE — 4.4BSD/FreeBSD 2.1.5-style mbufs.
 *
 * The BSD network stack's packet buffer: small fixed-size mbufs chained
 * through m_next, with large payloads held in shared "clusters" (external
 * storage).  Packets are therefore frequently DIScontiguous — the property
 * whose mismatch with Linux's contiguous sk_buffs produces the extra copy
 * on the OSKit send path (Section 5).
 *
 * External storage is reference-shared by m_copym, as in the donor: a
 * retransmitted TCP segment aliases the socket buffer's clusters rather
 * than copying them.
 *)

let msize = 128 (* donor MSIZE *)
let mlen = msize - 20 (* data bytes in an ordinary mbuf *)
let mhlen = msize - 28 (* data bytes in a packet-header mbuf *)
let mclbytes = 2048 (* cluster size *)

type mbuf = {
  mutable m_next : mbuf option;
  mutable m_data : bytes; (* backing storage *)
  mutable m_off : int; (* start of valid data *)
  mutable m_len : int;
  mutable m_ext : bool; (* external (cluster or loaned) storage: shared, never written *)
  mutable m_pkthdr_len : int; (* total packet length; head mbuf only *)
}

let stats_allocated = ref 0

let m_get () =
  Cost.charge_alloc ();
  incr stats_allocated;
  { m_next = None; m_data = Bytes.create msize; m_off = msize - mlen; m_len = 0;
    m_ext = false; m_pkthdr_len = 0 }

let m_gethdr () =
  let m = m_get () in
  m.m_off <- msize - mhlen;
  m

let m_getclust () =
  Cost.charge_alloc ();
  Cost.charge_alloc ();
  incr stats_allocated;
  { m_next = None; m_data = Bytes.create mclbytes; m_off = 0; m_len = 0; m_ext = true;
    m_pkthdr_len = 0 }

(* MEXTADD: loan foreign storage to the chain with no copy — how received
   frames that arrive contiguous are mapped straight into the stack. *)
let m_ext_wrap buf ~off ~len =
  Cost.charge_alloc ();
  incr stats_allocated;
  { m_next = None; m_data = buf; m_off = off; m_len = len; m_ext = true; m_pkthdr_len = len }

let m_length m =
  let rec go acc = function None -> acc | Some x -> go (acc + x.m_len) x.m_next in
  go m.m_len m.m_next

let rec m_last m = match m.m_next with None -> m | Some n -> m_last n

let m_cat a b =
  (m_last a).m_next <- Some b;
  a.m_pkthdr_len <- m_length a

(* Headroom available for prepending in the first mbuf. *)
let m_leadingspace m = if m.m_ext then 0 else m.m_off

let m_tailspace m =
  (* Never write into external storage: it may be shared or loaned. *)
  if m.m_ext then 0 else Bytes.length m.m_data - m.m_off - m.m_len

(* Reserve [n] bytes at the tail of (the first mbuf of) a chain under
   construction, returning their offset within m_data. *)
let m_put m n =
  if m_tailspace m < n then invalid_arg "m_put: no space";
  let at = m.m_off + m.m_len in
  m.m_len <- m.m_len + n;
  m.m_pkthdr_len <- m.m_pkthdr_len + n;
  at

(* M_PREPEND: make room for [n] bytes of header in front. *)
let m_prepend m n =
  if m_leadingspace m >= n then begin
    m.m_off <- m.m_off - n;
    m.m_len <- m.m_len + n;
    m.m_pkthdr_len <- m.m_pkthdr_len + n;
    m
  end
  else begin
    let hdr = m_gethdr () in
    if n > mhlen then invalid_arg "m_prepend: header larger than MHLEN";
    hdr.m_len <- n;
    hdr.m_next <- Some m;
    hdr.m_pkthdr_len <- n + m_length m;
    hdr
  end

(* m_adj: trim [n] bytes from the front (n > 0) or back (n < 0). *)
let m_adj m n =
  if n >= 0 then begin
    let rec front m n =
      if n > 0 then
        if m.m_len >= n then begin
          m.m_off <- m.m_off + n;
          m.m_len <- m.m_len - n
        end
        else begin
          let eat = m.m_len in
          m.m_off <- m.m_off + eat;
          m.m_len <- 0;
          match m.m_next with Some nx -> front nx (n - eat) | None -> ()
        end
    in
    front m n;
    m.m_pkthdr_len <- max 0 (m.m_pkthdr_len - n)
  end
  else begin
    let want = m_length m + n in
    let rec back m remaining =
      let keep = min m.m_len remaining in
      m.m_len <- keep;
      let remaining = remaining - keep in
      if remaining = 0 then m.m_next <- None
      else match m.m_next with Some nx -> back nx remaining | None -> ()
    in
    back m (max 0 want);
    m.m_pkthdr_len <- max 0 want
  end

(* m_copydata: copy a byte range out of a chain (a real copy, charged). *)
let m_copy_into m ~off ~len ~dst ~dst_pos =
  if len > 0 then Cost.charge_copy len;
  let rec go m off len dst_pos =
    if len > 0 then
      if off >= m.m_len then
        match m.m_next with
        | Some nx -> go nx (off - m.m_len) len dst_pos
        | None -> invalid_arg "m_copydata: chain too short"
      else begin
        let n = min len (m.m_len - off) in
        Bytes.blit m.m_data (m.m_off + off) dst dst_pos n;
        match m.m_next with
        | Some nx -> go nx 0 (len - n) (dst_pos + n)
        | None -> if len - n > 0 then invalid_arg "m_copydata: chain too short"
      end
  in
  go m off len dst_pos

let m_copydata m ~off ~len =
  let dst = Bytes.create len in
  m_copy_into m ~off ~len ~dst ~dst_pos:0;
  dst

(* m_copyback-style write into a chain (must fit). *)
let m_write m ~off ~src ~src_pos ~len =
  if len > 0 then Cost.charge_copy len;
  let rec go m off len src_pos =
    if len > 0 then
      if off >= m.m_len then
        match m.m_next with
        | Some nx -> go nx (off - m.m_len) len src_pos
        | None -> invalid_arg "m_write: chain too short"
      else begin
        let n = min len (m.m_len - off) in
        Bytes.blit src src_pos m.m_data (m.m_off + off) n;
        match m.m_next with
        | Some nx -> go nx 0 (len - n) (src_pos + n)
        | None -> if len - n > 0 then invalid_arg "m_write: chain too short"
      end
  in
  go m off len src_pos

(* m_copym: a new chain covering [off, off+len) of the original.  External
   storage is shared (no data copy); interior small-mbuf data is copied. *)
let m_copym m ~off ~len =
  if len <= 0 then invalid_arg "m_copym: empty range";
  (* Gather the (source mbuf, offset, length) segments covering the range,
     then share or copy each. *)
  let rec segments m off len acc =
    if len = 0 then List.rev acc
    else if off >= m.m_len then
      match m.m_next with
      | Some nx -> segments nx (off - m.m_len) len acc
      | None -> invalid_arg "m_copym: chain too short"
    else begin
      let n = min len (m.m_len - off) in
      let acc = (m, off, n) :: acc in
      if len = n then List.rev acc
      else
        match m.m_next with
        | Some nx -> segments nx 0 (len - n) acc
        | None -> invalid_arg "m_copym: chain too short"
    end
  in
  let piece_of (src, off, n) =
    if src.m_ext then begin
      (* Share the external storage: no data copy. *)
      Cost.charge_alloc ();
      incr stats_allocated;
      { m_next = None; m_data = src.m_data; m_off = src.m_off + off; m_len = n;
        m_ext = true; m_pkthdr_len = 0 }
    end
    else begin
      let c = m_get () in
      Cost.charge_copy n;
      Bytes.blit src.m_data (src.m_off + off) c.m_data c.m_off n;
      c.m_len <- n;
      c
    end
  in
  let pieces = List.map piece_of (segments m off len []) in
  let rec link = function
    | [] -> assert false
    | [ last ] -> last
    | first :: rest ->
        first.m_next <- Some (link rest);
        first
  in
  let head = link pieces in
  head.m_pkthdr_len <- len;
  head

(* m_pullup: make the first [n] bytes contiguous in the head mbuf. *)
let m_pullup m n =
  if m.m_len >= n then m
  else begin
    if n > mclbytes then invalid_arg "m_pullup: request too large";
    let head = if n <= mhlen then m_gethdr () else m_getclust () in
    let data = m_copydata m ~off:0 ~len:n in
    Bytes.blit data 0 head.m_data head.m_off n;
    head.m_len <- n;
    head.m_pkthdr_len <- m_length m;
    (* Skip the pulled-up bytes in the old chain. *)
    m_adj m n;
    head.m_next <- (if m_length m > 0 then Some m else None);
    head
  end

(* Append payload, filling tailspace then adding clusters. *)
let m_append m ~src ~src_pos ~len =
  Cost.charge_copy len;
  let rec go tail src_pos len =
    if len > 0 then begin
      let space = m_tailspace tail in
      if space > 0 && not tail.m_ext then begin
        let n = min space len in
        Bytes.blit src src_pos tail.m_data (tail.m_off + tail.m_len) n;
        tail.m_len <- tail.m_len + n;
        go tail (src_pos + n) (len - n)
      end
      else begin
        let c = m_getclust () in
        let n = min mclbytes len in
        Bytes.blit src src_pos c.m_data 0 n;
        c.m_len <- n;
        tail.m_next <- Some c;
        go c (src_pos + n) (len - n)
      end
    end
  in
  go (m_last m) src_pos len;
  m.m_pkthdr_len <- m_length m

(* Number of mbufs in the chain (diagnostics; drives the contiguity check
   in the glue). *)
let m_count m =
  let rec go acc = function None -> acc | Some x -> go (acc + 1) x.m_next in
  go 1 m.m_next

(* Flatten a chain to plain bytes WITHOUT charging (diagnostic use only). *)
let m_to_bytes_uncharged m =
  let len = m_length m in
  let dst = Bytes.create len in
  let rec go m dst_pos =
    Bytes.blit m.m_data m.m_off dst dst_pos m.m_len;
    match m.m_next with Some nx -> go nx (dst_pos + m.m_len) | None -> ()
  in
  go m 0;
  dst
