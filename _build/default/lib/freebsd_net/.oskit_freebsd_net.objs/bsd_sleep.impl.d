lib/freebsd_net/bsd_sleep.ml: Array List Sleep_record
