lib/freebsd_net/in_cksum.ml: Bytes Char Cost Int32 Mbuf
