lib/freebsd_net/udp.ml: Bytes Error In_cksum Int32 Ip List Mbuf Netif Queue Result
