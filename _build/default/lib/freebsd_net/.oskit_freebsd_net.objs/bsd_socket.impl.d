lib/freebsd_net/bsd_socket.ml: Arp Bsd_sleep Cost Error Icmp Ip Machine Netif Option Queue Result Sleep_record Tcp Udp
