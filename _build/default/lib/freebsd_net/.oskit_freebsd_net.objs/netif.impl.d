lib/freebsd_net/netif.ml: Bytes Char Int32 List Mbuf String
