lib/freebsd_net/arp.ml: Bytes Char Hashtbl Int32 List Mbuf Netif
