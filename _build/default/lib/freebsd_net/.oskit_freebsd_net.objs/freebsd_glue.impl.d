lib/freebsd_net/freebsd_glue.ml: Bsd_socket Bytes Com Cost Error Iid Io_if Lazy Mbuf Netif Result Sockbuf Tcp Udp
