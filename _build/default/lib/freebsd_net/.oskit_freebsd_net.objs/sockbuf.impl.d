lib/freebsd_net/sockbuf.ml: Mbuf
