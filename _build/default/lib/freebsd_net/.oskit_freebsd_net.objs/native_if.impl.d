lib/freebsd_net/native_if.ml: Bsd_socket Bytes Cost Machine Mbuf Netif Nic
