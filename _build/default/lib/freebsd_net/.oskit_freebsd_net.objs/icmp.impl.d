lib/freebsd_net/icmp.ml: Bytes Char In_cksum Ip Mbuf Netif
