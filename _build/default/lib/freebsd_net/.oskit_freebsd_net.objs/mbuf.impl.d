lib/freebsd_net/mbuf.ml: Bytes Cost List
