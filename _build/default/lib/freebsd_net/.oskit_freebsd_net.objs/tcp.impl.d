lib/freebsd_net/tcp.ml: Bytes Char Cost Error In_cksum Int32 Ip List Machine Mbuf Netif Queue Result Sockbuf
