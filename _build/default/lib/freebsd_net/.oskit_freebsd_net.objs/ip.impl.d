lib/freebsd_net/ip.ml: Arp Bytes Char Error In_cksum Int Int32 List Machine Mbuf Netif
