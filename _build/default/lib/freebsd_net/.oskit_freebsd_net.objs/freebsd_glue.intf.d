lib/freebsd_net/freebsd_glue.mli: Bsd_socket Error Io_if Machine Mbuf
