type t = {
  lo : int;
  hi : int;
  mutable spans : (int * int * int) list; (* (start, end_exclusive, flags), ascending, exhaustive *)
}

let free = 0
let allocated = 1
let reserved = 2

let create ~lo ~hi ~flags =
  if hi <= lo then invalid_arg "Amm.create: empty interval";
  { lo; hi; spans = [ lo, hi, flags ] }

let lo t = t.lo
let hi t = t.hi

let get t addr =
  if addr < t.lo || addr >= t.hi then invalid_arg "Amm.get: out of range";
  let _, _, flags = List.find (fun (s, e, _) -> addr >= s && addr < e) t.spans in
  flags

let coalesce spans =
  let rec go = function
    | (s1, e1, f1) :: (s2, e2, f2) :: rest when e1 = s2 && f1 = f2 ->
        go ((s1, e2, f1) :: rest)
    | x :: rest -> x :: go rest
    | [] -> []
  in
  go spans

let check_range t addr size =
  if size < 0 || addr < t.lo || addr + size > t.hi then
    invalid_arg "Amm: range outside the map"

let modify t ~addr ~size f =
  check_range t addr size;
  if size > 0 then begin
    let a = addr and b = addr + size in
    let split (s, e, fl) =
      (* Pieces of one span after cutting at a and b; the middle piece gets
         its flags rewritten. *)
      let pieces = ref [] in
      let add s' e' fl' = if s' < e' then pieces := (s', e', fl') :: !pieces in
      add s (min e a) fl;
      add (max s a) (min e b) (f fl);
      add (max s b) e fl;
      List.rev !pieces
    in
    t.spans <- coalesce (List.concat_map split t.spans)
  end

let set t ~addr ~size ~flags = modify t ~addr ~size (fun _ -> flags)

let find_gen t ~size ~flags ~mask ?(align_bits = 0) ?(lower_bound = min_int) () =
  if size <= 0 then invalid_arg "Amm.find_gen: size";
  let align = 1 lsl align_bits in
  let align_up x = (x + align - 1) land lnot (align - 1) in
  (* Scan maximal runs of satisfying spans. *)
  let matches fl = fl land mask = flags in
  let rec scan spans =
    match spans with
    | [] -> None
    | (s, _, fl) :: _ when matches fl -> (
        (* Extend the run. *)
        let rec run_end = function
          | (_, e1, f1) :: ((s2, _, f2) :: _ as rest) when matches f1 && e1 = s2 && matches f2
            ->
            run_end rest
          | (_, e1, f1) :: _ when matches f1 -> e1
          | _ -> assert false
        in
        let e = run_end spans in
        let base = align_up (max s lower_bound) in
        if base + size <= e then Some base
        else
          match spans with
          | _ :: rest -> scan rest
          | [] -> None)
    | _ :: rest -> scan rest
  in
  scan t.spans

let allocate t ~size ?(align_bits = 0) () =
  match find_gen t ~size ~flags:free ~mask:max_int ~align_bits () with
  | None -> None
  | Some addr ->
      set t ~addr ~size ~flags:allocated;
      Some addr

let deallocate t ~addr ~size = set t ~addr ~size ~flags:free

let entries t = List.map (fun (s, e, f) -> s, e - s, f) t.spans
let iter t f = List.iter (fun (addr, size, flags) -> f ~addr ~size ~flags) (entries t)

let bytes_matching t ~flags ~mask =
  List.fold_left (fun acc (s, e, f) -> if f land mask = flags then acc + (e - s) else acc) 0 t.spans

let pp fmt t =
  Format.fprintf fmt "@[<v>amm [%#x, %#x):" t.lo t.hi;
  List.iter (fun (s, e, f) -> Format.fprintf fmt "@,  %#x..%#x flags=%#x" s e f) t.spans;
  Format.fprintf fmt "@]"
