(** The Address Map Manager (Section 3.3).

    Manages address spaces that need not map to real memory at all:
    process address spaces, paging partitions, free-block maps, IPC
    namespaces.  An AMM covers a fixed interval [\[lo, hi)] with
    non-overlapping, exhaustive entries, each carrying a client-defined
    attribute word; adjacent entries with equal attributes coalesce.

    Conventional attribute values {!free}, {!allocated} and {!reserved} are
    provided but nothing in the implementation depends on them. *)

type t

val free : int
val allocated : int
val reserved : int

(** [create ~lo ~hi ~flags] covers the whole interval with one entry. *)
val create : lo:int -> hi:int -> flags:int -> t

val lo : t -> int
val hi : t -> int

(** Attribute at one address.  Raises [Invalid_argument] outside
    [\[lo, hi)]. *)
val get : t -> int -> int

(** [set t ~addr ~size ~flags] rewrites the attributes of a range
    (splitting and merging entries as needed). *)
val set : t -> addr:int -> size:int -> flags:int -> unit

(** [modify t ~addr ~size f] maps each entry's attribute word through [f]
    over the given range. *)
val modify : t -> addr:int -> size:int -> (int -> int) -> unit

(** [find_gen t ~size ~flags ~mask ?align_bits ?lower_bound ()] returns the
    base of the first (lowest-addressed) aligned sub-range of at least
    [size] whose entries all satisfy [attr land mask = flags]. *)
val find_gen :
  t -> size:int -> flags:int -> mask:int -> ?align_bits:int -> ?lower_bound:int -> unit -> int option

(** [allocate t ~size] finds a {!free} range, marks it {!allocated}, and
    returns its base. *)
val allocate : t -> size:int -> ?align_bits:int -> unit -> int option

(** [deallocate t ~addr ~size] marks the range {!free}. *)
val deallocate : t -> addr:int -> size:int -> unit

(** Entries in ascending order as [(addr, size, flags)]. *)
val entries : t -> (int * int * int) list

val iter : t -> (addr:int -> size:int -> flags:int -> unit) -> unit

(** Total bytes whose attributes satisfy [attr land mask = flags]. *)
val bytes_matching : t -> flags:int -> mask:int -> int

val pp : Format.formatter -> t -> unit
