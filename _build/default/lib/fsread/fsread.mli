(** Minimal read-only file system interpretation (the paper's [fsread]).

    Boot loaders need to pull a kernel off a file system without dragging
    in the whole file system component; [fsread] walks the on-disk format
    directly — no buffer cache, no write paths, no COM objects — and hands
    back file contents.  Independent of [oskit_netbsd_fs] by design, but
    reads the same on-disk format. *)

(** [read_file dev path] resolves [path] ('/'-separated) from the root and
    returns the whole file. *)
val read_file : Io_if.blkio -> string -> (bytes, Error.t) result

(** [file_size dev path] *)
val file_size : Io_if.blkio -> string -> (int, Error.t) result

(** [list_dir dev path] *)
val list_dir : Io_if.blkio -> string -> (string list, Error.t) result
