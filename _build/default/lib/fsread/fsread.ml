(* Deliberately self-contained: this module re-interprets the on-disk
   format from first principles (as the OSKit's fsread re-implemented FFS
   reading) rather than linking the full file system component. *)

let bsize = 4096
let magic = 0x4F465331
let inode_size = 128
let ndirect = 12
let nindirect = bsize / 4
let dirent_size = 32
let root_ino = 2

let ( let* ) = Result.bind

let read_block dev blk =
  let buf = Bytes.create bsize in
  let* n = dev.Io_if.bio_read ~buf ~pos:0 ~offset:(blk * bsize) ~amount:bsize in
  if n <> bsize then Result.Error Error.Io else Ok buf

type sb = { itab_start : int }

let read_sb dev =
  let* b = read_block dev 0 in
  let r i = Int32.to_int (Bytes.get_int32_le b (4 * i)) in
  if r 0 <> magic then Result.Error Error.Inval else Ok { itab_start = r 7 }

type inode = { kind : int; size : int; direct : int array; sind : int; dind : int }

let read_inode dev sb ino =
  let ipb = bsize / inode_size in
  let* b = read_block dev (sb.itab_start + (ino / ipb)) in
  let off = ino mod ipb * inode_size in
  let r i = Int32.to_int (Bytes.get_int32_le b (off + (4 * i))) in
  Ok
    { kind = Bytes.get_uint16_le b off;
      size = r 1;
      direct = Array.init ndirect (fun i -> r (2 + i));
      sind = r (2 + ndirect);
      dind = r (3 + ndirect) }

let bmap dev node fblk =
  if fblk < ndirect then Ok node.direct.(fblk)
  else if fblk < ndirect + nindirect then begin
    if node.sind = 0 then Ok 0
    else
      let* ib = read_block dev node.sind in
      Ok (Int32.to_int (Bytes.get_int32_le ib (4 * (fblk - ndirect))))
  end
  else begin
    let idx = fblk - ndirect - nindirect in
    if node.dind = 0 then Ok 0
    else
      let* l1 = read_block dev node.dind in
      let mid = Int32.to_int (Bytes.get_int32_le l1 (4 * (idx / nindirect))) in
      if mid = 0 then Ok 0
      else
        let* l2 = read_block dev mid in
        Ok (Int32.to_int (Bytes.get_int32_le l2 (4 * (idx mod nindirect))))
  end

let read_contents dev node =
  let out = Bytes.make node.size '\000' in
  let nblocks = (node.size + bsize - 1) / bsize in
  let rec go fblk =
    if fblk >= nblocks then Ok out
    else
      let* blk = bmap dev node fblk in
      let n = min bsize (node.size - (fblk * bsize)) in
      if blk = 0 then go (fblk + 1) (* hole *)
      else
        let* b = read_block dev blk in
        Bytes.blit b 0 out (fblk * bsize) n;
        go (fblk + 1)
  in
  go 0

let dir_find dev node name =
  let* contents = read_contents dev node in
  let count = node.size / dirent_size in
  let rec go i =
    if i >= count then Result.Error Error.Noent
    else begin
      let o = i * dirent_size in
      let ino = Int32.to_int (Bytes.get_int32_le contents o) in
      let namelen = Char.code (Bytes.get contents (o + 4)) in
      if ino <> 0 && Bytes.sub_string contents (o + 5) namelen = name then Ok ino
      else go (i + 1)
    end
  in
  go 0

let resolve dev path =
  let* sb = read_sb dev in
  let comps = List.filter (fun c -> c <> "") (String.split_on_char '/' path) in
  let rec walk ino = function
    | [] -> Ok ino
    | comp :: rest ->
        let* node = read_inode dev sb ino in
        if node.kind <> 2 then Result.Error Error.Notdir
        else
          let* next = dir_find dev node comp in
          walk next rest
  in
  let* ino = walk root_ino comps in
  let* node = read_inode dev sb ino in
  Ok node

let read_file dev path =
  let* node = resolve dev path in
  if node.kind <> 1 then Result.Error Error.Isdir else read_contents dev node

let file_size dev path =
  let* node = resolve dev path in
  Ok node.size

let list_dir dev path =
  let* node = resolve dev path in
  if node.kind <> 2 then Result.Error Error.Notdir
  else
    let* contents = read_contents dev node in
    let count = node.size / dirent_size in
    let rec go i acc =
      if i >= count then Ok (List.rev acc)
      else begin
        let o = i * dirent_size in
        let ino = Int32.to_int (Bytes.get_int32_le contents o) in
        let namelen = Char.code (Bytes.get contents (o + 4)) in
        let name = Bytes.sub_string contents (o + 5) namelen in
        if ino <> 0 && name <> "." && name <> ".." then go (i + 1) (name :: acc)
        else go (i + 1) acc
      end
    in
    go 0 []
