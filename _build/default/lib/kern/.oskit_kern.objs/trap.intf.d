lib/kern/trap.mli: Machine
