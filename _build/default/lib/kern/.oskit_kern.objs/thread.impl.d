lib/kern/thread.ml: Effect Fun Hashtbl Machine Option Queue
