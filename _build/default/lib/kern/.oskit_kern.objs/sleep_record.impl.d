lib/kern/sleep_record.ml: Thread
