lib/kern/gdb_stub.ml: Bytes Gdb_proto Int32 List Physmem Printf String Trap
