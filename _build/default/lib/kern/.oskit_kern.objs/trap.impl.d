lib/kern/trap.ml: Array Cost Hashtbl Int32 List Machine
