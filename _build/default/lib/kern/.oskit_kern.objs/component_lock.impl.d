lib/kern/component_lock.ml: Fun Queue Thread
