lib/kern/kclock.ml: Machine Thread World
