lib/kern/kernel.mli: Machine Serial Thread Timer_dev Trap
