lib/kern/page_table.ml: Int32 Physmem Result
