lib/kern/gdb_proto.mli:
