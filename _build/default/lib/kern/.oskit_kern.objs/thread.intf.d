lib/kern/thread.mli: Machine
