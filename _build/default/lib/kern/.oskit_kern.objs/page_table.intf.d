lib/kern/page_table.mli: Physmem
