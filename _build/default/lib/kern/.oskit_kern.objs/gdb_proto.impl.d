lib/kern/gdb_proto.ml: Buffer Bytes Char Printf String
