lib/kern/kernel.ml: Char Machine Serial Thread Timer_dev Trap
