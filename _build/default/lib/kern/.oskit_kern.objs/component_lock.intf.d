lib/kern/component_lock.mli:
