lib/kern/gdb_stub.mli: Physmem Trap
