lib/kern/sleep_record.mli:
