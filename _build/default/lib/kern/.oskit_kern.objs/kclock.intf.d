lib/kern/kclock.mli:
