type t = { ram : Physmem.t; alloc_page : unit -> int; pdir : int }

type prot = { writable : bool; user : bool }
type translation = { pa : int; prot : prot }

let page_size = 4096
let pte_present = 0x1
let pte_write = 0x2
let pte_user = 0x4

let create ~ram ~alloc_page =
  let pdir = alloc_page () in
  if pdir land (page_size - 1) <> 0 then invalid_arg "Page_table: unaligned directory page";
  { ram; alloc_page; pdir }

let pdir_pa t = t.pdir
let va_to_int va = Int32.to_int va land 0xffffffff
let pdi va = va_to_int va lsr 22
let pti va = va_to_int va lsr 12 land 0x3ff

let check_aligned name a = if a land (page_size - 1) <> 0 then invalid_arg (name ^ ": unaligned")

let pde_addr t va = t.pdir + (4 * pdi va)

(* Read a 32-bit entry as a non-negative int. *)
let get_entry t addr = Int32.to_int (Physmem.get32 t.ram addr) land 0xffffffff

let table_of t va ~create_missing =
  let pde = get_entry t (pde_addr t va) in
  if pde land pte_present <> 0 then Some (pde land lnot (page_size - 1))
  else if not create_missing then None
  else begin
    let table = t.alloc_page () in
    check_aligned "Page_table.alloc_page" table;
    Physmem.set32 t.ram (pde_addr t va)
      (Int32.of_int (table lor pte_present lor pte_write lor pte_user));
    Some table
  end

let map t ~va ~pa ~prot =
  check_aligned "Page_table.map va" (va_to_int va);
  check_aligned "Page_table.map pa" pa;
  match table_of t va ~create_missing:true with
  | None -> assert false
  | Some table ->
      let bits =
        pte_present
        lor (if prot.writable then pte_write else 0)
        lor if prot.user then pte_user else 0
      in
      Physmem.set32 t.ram (table + (4 * pti va)) (Int32.of_int (pa lor bits))

let unmap t ~va =
  check_aligned "Page_table.unmap va" (va_to_int va);
  match table_of t va ~create_missing:false with
  | None -> ()
  | Some table -> Physmem.set32 t.ram (table + (4 * pti va)) 0l

let translate t va =
  match table_of t va ~create_missing:false with
  | None -> None
  | Some table ->
      let pte = get_entry t (table + (4 * pti va)) in
      if pte land pte_present = 0 then None
      else
        Some
          { pa = (pte land lnot (page_size - 1)) lor (va_to_int va land (page_size - 1));
            prot = { writable = pte land pte_write <> 0; user = pte land pte_user <> 0 } }

let fault_code ~present ~write ~user =
  Int32.of_int ((if present then 1 else 0) lor (if write then 2 else 0) lor if user then 4 else 0)

let access t ~va ~write ~user =
  match translate t va with
  | None -> Result.Error (fault_code ~present:false ~write ~user)
  | Some { pa; prot } ->
      if write && not prot.writable then Result.Error (fault_code ~present:true ~write ~user)
      else if user && not prot.user then Result.Error (fault_code ~present:true ~write ~user)
      else Ok pa

let map_range t ~va ~pa ~len ~prot =
  let pages = (len + page_size - 1) / page_size in
  for i = 0 to pages - 1 do
    map t
      ~va:(Int32.add va (Int32.of_int (i * page_size)))
      ~pa:(pa + (i * page_size))
      ~prot
  done

let mapped_pages t =
  let count = ref 0 in
  for d = 0 to 1023 do
    let pde = get_entry t (t.pdir + (4 * d)) in
    if pde land pte_present <> 0 then begin
      let table = pde land lnot (page_size - 1) in
      for i = 0 to 1023 do
        if get_entry t (table + (4 * i)) land pte_present <> 0 then incr count
      done
    end
  done;
  !count
