(** Sleep records — the OSKit's minimal blocking primitive (Section 4.7.6).

    "Like a condition variable except that only one thread of control can
    wait on it at a time."  The glue code in every encapsulated component
    emulates the donor OS's sleep/wakeup mechanism on top of this one
    abstraction, so it is the only synchronization service a client OS must
    supply.  Here the default implementation plugs into the kit's
    cooperative threads; a client OS can substitute its own via
    {!Osenv_sleep}-style overriding in [lib/fdev].

    A wakeup with no waiter is latched and consumed by the next sleep, which
    makes the usual legacy pattern (set condition at interrupt level, then
    wakeup; sleeper re-checks condition in a loop) race-free under the
    process/interrupt model. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

(** [sleep t] blocks the calling thread until [wakeup].  Raises
    [Invalid_argument] if another thread is already waiting. *)
val sleep : t -> unit

(** [wakeup t] unblocks the waiter, or latches if there is none.  Safe to
    call at interrupt level. *)
val wakeup : t -> unit

(** True if a thread is currently blocked on [t]. *)
val has_waiter : t -> bool
