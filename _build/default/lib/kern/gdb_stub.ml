type t = {
  ram : Physmem.t;
  send : string -> unit;
  parser_ : Gdb_proto.parser_;
  mutable frame : Trap.frame;
  mutable signal : int;
  mutable bps : int32 list;
}

let create ~ram ~send =
  { ram; send; parser_ = Gdb_proto.create_parser (); frame = Trap.make_frame Trap.T_breakpoint;
    signal = 5; bps = [] }

let regs t = t.frame

let reply t payload =
  t.send "+";
  t.send (Gdb_proto.frame payload)

let enter t frame ~signal =
  t.frame <- frame;
  t.signal <- signal;
  t.send (Gdb_proto.frame (Printf.sprintf "S%02x" signal))

(* i386 register order used by GDB: eax ecx edx ebx esp ebp esi edi eip
   eflags cs ss ds es fs gs. Segments are fixed flat-model selectors. *)
let reg_dump f =
  let open Trap in
  let segs = [ 0x10l; 0x18l; 0x18l; 0x18l; 0x18l; 0x18l ] in
  String.concat ""
    (List.map Gdb_proto.hex32_le
       ([ f.eax; f.ecx; f.edx; f.ebx; f.esp; f.ebp; f.esi; f.edi; f.eip; f.eflags ] @ segs))

let reg_load f hex =
  let open Trap in
  let word i = Gdb_proto.parse_hex32_le (String.sub hex (8 * i) 8) in
  f.eax <- word 0;
  f.ecx <- word 1;
  f.edx <- word 2;
  f.ebx <- word 3;
  f.esp <- word 4;
  f.ebp <- word 5;
  f.esi <- word 6;
  f.edi <- word 7;
  f.eip <- word 8;
  f.eflags <- word 9

let parse_addr_len spec =
  match String.split_on_char ',' spec with
  | [ a; l ] -> int_of_string ("0x" ^ a), int_of_string ("0x" ^ l)
  | _ -> invalid_arg "gdb: bad addr,len"

let read_mem t addr len =
  let buf = Bytes.create len in
  Physmem.blit_to_bytes t.ram ~src_addr:addr ~dst:buf ~dst_pos:0 ~len;
  Gdb_proto.hex_of_string (Bytes.to_string buf)

let write_mem t addr data =
  Physmem.blit_from_bytes t.ram ~src:(Bytes.of_string data) ~src_pos:0 ~dst_addr:addr
    ~len:(String.length data)

let handle t payload =
  let ok () = reply t "OK" in
  let err n = reply t (Printf.sprintf "E%02x" n) in
  if payload = "" then begin
    reply t "";
    `Stopped
  end
  else
    match payload.[0] with
    | '?' ->
        reply t (Printf.sprintf "S%02x" t.signal);
        `Stopped
    | 'g' ->
        reply t (reg_dump t.frame);
        `Stopped
    | 'G' ->
        (try
           reg_load t.frame (String.sub payload 1 (String.length payload - 1));
           ok ()
         with _ -> err 1);
        `Stopped
    | 'm' ->
        (try
           let addr, len = parse_addr_len (String.sub payload 1 (String.length payload - 1)) in
           reply t (read_mem t addr len)
         with _ -> err 1);
        `Stopped
    | 'M' ->
        (try
           match String.index_opt payload ':' with
           | None -> err 1
           | Some colon ->
               let addr, len = parse_addr_len (String.sub payload 1 (colon - 1)) in
               let data =
                 Gdb_proto.string_of_hex
                   (String.sub payload (colon + 1) (String.length payload - colon - 1))
               in
               if String.length data <> len then err 1
               else begin
                 write_mem t addr data;
                 ok ()
               end
         with _ -> err 1);
        `Stopped
    | 'Z' when String.length payload > 2 && payload.[1] = '0' ->
        (try
           let addr, _ = parse_addr_len (String.sub payload 3 (String.length payload - 3)) in
           let addr = Int32.of_int addr in
           if not (List.mem addr t.bps) then t.bps <- addr :: t.bps;
           ok ()
         with _ -> err 1);
        `Stopped
    | 'z' when String.length payload > 2 && payload.[1] = '0' ->
        (try
           let addr, _ = parse_addr_len (String.sub payload 3 (String.length payload - 3)) in
           let addr = Int32.of_int addr in
           t.bps <- List.filter (fun a -> not (Int32.equal a addr)) t.bps;
           ok ()
         with _ -> err 1);
        `Stopped
    | 'c' ->
        t.send "+";
        `Resume `Continue
    | 's' ->
        t.send "+";
        `Resume `Step
    | 'k' ->
        t.send "+";
        `Killed
    | _ ->
        (* Unsupported command: empty response, per the protocol. *)
        reply t "";
        `Stopped

let feed t bytes =
  let result = ref `Stopped in
  String.iter
    (fun c ->
      match Gdb_proto.feed t.parser_ c with
      | `Packet payload -> (
          match handle t payload with
          | `Stopped -> ()
          | (`Resume _ | `Killed) as r -> result := r)
      | `Bad -> t.send "-"
      | `None | `Ack | `Nak -> ())
    bytes;
  !result

let breakpoints t = List.sort Int32.compare t.bps
