type state = Idle | Latched | Waiting of Thread.waker

type t = { name : string; mutable state : state }

let create ?(name = "sleep") () = { name; state = Idle }
let name t = t.name

let sleep t =
  match t.state with
  | Latched -> t.state <- Idle
  | Waiting _ -> invalid_arg ("Sleep_record.sleep: already has a waiter: " ^ t.name)
  | Idle ->
      Thread.suspend (fun waker ->
          (* A wakeup may have raced in from interrupt level while we were
             suspending; consume it rather than blocking forever. *)
          match t.state with
          | Latched ->
              t.state <- Idle;
              waker ()
          | Idle -> t.state <- Waiting waker
          | Waiting _ -> assert false)

let wakeup t =
  match t.state with
  | Waiting waker ->
      t.state <- Idle;
      waker ()
  | Idle -> t.state <- Latched
  | Latched -> ()

let has_waiter t = match t.state with Waiting _ -> true | Idle | Latched -> false
