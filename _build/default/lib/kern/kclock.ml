let the_machine () =
  match Machine.current () with
  | Some m -> m
  | None -> invalid_arg "Kclock: no machine is executing"

let now_ns () = Machine.now (the_machine ())

let sleep_ns ns =
  let m = the_machine () in
  Thread.suspend (fun waker -> ignore (Machine.after m ns (fun () -> waker ())))

type callout = World.event

let callout_after ~ns f = Machine.after (the_machine ()) ns f
let callout_cancel = World.cancel
