(** Trap handling (Section 3.2, 6.2.4).

    The kernel support library installs a trap vector with default handlers;
    the client OS can override any entry, and overriders can fall back to
    the default ("install its own custom trap handlers written in ordinary C,
    which can still fall back to the default handler").  The trap frame
    layout is documented and shared with hardware interrupts — the fix the
    paper describes in Section 6.2.10.

    We also model the x86 debug registers: four breakpoint slots that fire
    [T_debug] when a matching address is touched via {!check_access} — the
    mechanism Java/PC used to catch null-pointer accesses cheaply. *)

type trapno =
  | T_divide
  | T_debug
  | T_breakpoint
  | T_overflow
  | T_bounds
  | T_invalid_opcode
  | T_no_device
  | T_double_fault
  | T_gpf
  | T_page_fault
  | T_alignment

val trapno_to_int : trapno -> int
val trapno_of_int : int -> trapno option

(** The documented trap frame: general registers, faulting address, error
    code, and program counter.  Same layout for traps and hardware
    interrupts. *)
type frame = {
  mutable eax : int32;
  mutable ebx : int32;
  mutable ecx : int32;
  mutable edx : int32;
  mutable esi : int32;
  mutable edi : int32;
  mutable ebp : int32;
  mutable esp : int32;
  mutable eip : int32;
  mutable eflags : int32;
  mutable cr2 : int32;  (** faulting linear address, page faults only *)
  mutable err : int32;
  trapno : trapno;
}

val make_frame : ?eip:int32 -> ?cr2:int32 -> ?err:int32 -> trapno -> frame

(** Per-machine trap table. *)
type table

val create : Machine.t -> table

(** Handlers return [`Handled] to resume or [`Unhandled] to fall through to
    the default handler (which records the trap as a panic). *)
val set_handler : table -> trapno -> (frame -> [ `Handled | `Unhandled ]) -> unit

(** Restore the default handler for [trapno]. *)
val clear_handler : table -> trapno -> unit

(** [deliver t frame] dispatches a trap.  Returns [`Handled] if some handler
    resumed it; otherwise records a panic and returns [`Panic]. *)
val deliver : table -> frame -> [ `Handled | `Panic ]

(** Unhandled-trap log, oldest first (the default handler's output). *)
val panics : table -> frame list

(** {2 Debug registers} *)

(** [set_breakpoint t ~slot ~addr ~len] arms DR[slot] (0-3) over
    [addr, addr+len). *)
val set_breakpoint : table -> slot:int -> addr:int32 -> len:int -> unit

val clear_breakpoint : table -> slot:int -> unit

(** [check_access t addr] delivers [T_debug] if a breakpoint covers [addr];
    returns whether execution may continue.  Called by memory-touching
    simulation layers (e.g. the bytecode VM). *)
val check_access : table -> int32 -> [ `Ok | `Trapped of [ `Handled | `Panic ] ]
