(** Kernel clock services.

    Thin process-level veneer over the machine's time: sleeping threads,
    one-shot callouts (the BSD [timeout]/[untimeout] the network stack's
    glue emulates), and a monotonic nanosecond clock. *)

(** Nanoseconds since boot on the current machine.  Must be called from
    machine context. *)
val now_ns : unit -> int

(** Block the calling thread for [ns] of virtual time. *)
val sleep_ns : int -> unit

type callout

(** [callout_after ~ns f] runs [f] at interrupt level after [ns]. *)
val callout_after : ns:int -> (unit -> unit) -> callout

val callout_cancel : callout -> unit
