(** Component-wide locks (Section 4.7.4).

    The encapsulated components are not thread-safe; a multithreaded client
    OS uses them by taking a lock around every entry into a component and
    releasing it whenever the component blocks back into the client.  This
    module supplies that lock, with the release-across-blocking behaviour
    packaged as {!with_lock_dropped}. *)

type t

val create : ?name:string -> unit -> t

(** Blocking acquire (FIFO).  Reentrant acquisition by the same component
    entry is a client bug and deadlocks, exactly as with the C original. *)
val acquire : t -> unit

val release : t -> unit
val locked : t -> bool

(** [with_lock t f] brackets [f] with acquire/release. *)
val with_lock : t -> (unit -> 'a) -> 'a

(** [with_lock_dropped t f] — for use *inside* a locked region, around a
    blocking call back into the client OS: releases, runs [f], reacquires. *)
val with_lock_dropped : t -> (unit -> 'a) -> 'a

(** Times the lock was contended (a thread had to wait); for the
    concurrency benches. *)
val contentions : t -> int
