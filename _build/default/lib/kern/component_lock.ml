type t = {
  name : string;
  mutable held : bool;
  waiters : Thread.waker Queue.t;
  mutable contentions : int;
}

let create ?(name = "lock") () =
  { name; held = false; waiters = Queue.create (); contentions = 0 }

let acquire t =
  if not t.held then t.held <- true
  else begin
    t.contentions <- t.contentions + 1;
    Thread.suspend (fun waker -> Queue.add waker t.waiters)
    (* Ownership is handed to us by [release] before the waker fires, so on
       resumption the lock is already ours. *)
  end

let release t =
  if not t.held then invalid_arg ("Component_lock.release: not held: " ^ t.name);
  match Queue.take_opt t.waiters with
  | Some waker -> waker () (* lock stays held; ownership transfers *)
  | None -> t.held <- false

let locked t = t.held

let with_lock t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

let with_lock_dropped t f =
  release t;
  Fun.protect ~finally:(fun () -> acquire t) f

let contentions t = t.contentions
