(** The serial-line GDB stub (Section 3.5).

    "A small module that handles traps in the client OS environment and
    communicates over a serial line with GDB running on another machine,
    using GDB's standard remote debugging protocol."  The stub exposes the
    machine's registers (a {!Trap.frame}) and physical memory to a remote
    debugger; it can be used even if the client OS performs its own trap
    handling, by delivering frames to {!enter} explicitly.

    Commands implemented: [?] halt reason, [g]/[G] register file, [m]/[M]
    memory, [c]/[s] resume, [Z0]/[z0] software breakpoints, [k] kill. *)

type t

val create : ram:Physmem.t -> send:(string -> unit) -> t

(** The frame the remote debugger sees and edits.  [enter] replaces it. *)
val regs : t -> Trap.frame

(** [enter t frame ~signal] records the stopped state and sends the stop
    reply (e.g. signal 5 = TRAP, 11 = SEGV). *)
val enter : t -> Trap.frame -> signal:int -> unit

(** [feed t bytes] processes input from the serial line; replies go through
    [send].  Returns [`Resume `Continue]/[`Resume `Step] when the debugger
    resumes the target, [`Killed] on [k], else [`Stopped]. *)
val feed : t -> string -> [ `Stopped | `Resume of [ `Continue | `Step ] | `Killed ]

(** Addresses with a software breakpoint set, ascending. *)
val breakpoints : t -> int32 list
