(** x86 two-level page tables, stored in simulated physical memory.

    The kernel support library "includes functions to create and manipulate
    x86 page tables" (Section 3.2) without hiding the machine-specific
    layout — this is the open-implementation point: the directory and table
    entries are real 32-bit words in RAM that the client OS may inspect or
    edit directly. *)

type t

(** [create ~ram ~alloc_page] ; [alloc_page] must return the physical
    address of a zeroed, page-aligned 4 KB page (typically LMM-backed). *)
val create : ram:Physmem.t -> alloc_page:(unit -> int) -> t

(** Physical address of the page directory (what you would load into CR3). *)
val pdir_pa : t -> int

type prot = { writable : bool; user : bool }

(** [map t ~va ~pa ~prot] maps one 4 KB page.  Addresses must be
    page-aligned. *)
val map : t -> va:int32 -> pa:int -> prot:prot -> unit

val unmap : t -> va:int32 -> unit

type translation = { pa : int; prot : prot }

(** [translate t va] walks the tables as the MMU would. *)
val translate : t -> int32 -> translation option

(** [access t ~va ~write ~user] is the full MMU check; on failure returns
    the page-fault error code (bit 0: present, bit 1: write, bit 2: user)
    suitable for a [T_page_fault] frame. *)
val access : t -> va:int32 -> write:bool -> user:bool -> (int, int32) result

(** Map a contiguous range (both addresses page-aligned, len any). *)
val map_range : t -> va:int32 -> pa:int -> len:int -> prot:prot -> unit

(** Number of 4 KB mappings present. *)
val mapped_pages : t -> int

val page_size : int
