let checksum payload =
  let sum = ref 0 in
  String.iter (fun c -> sum := (!sum + Char.code c) land 0xff) payload;
  !sum

let frame payload = Printf.sprintf "$%s#%02x" payload (checksum payload)

type state = Idle | Payload | Check1 | Check2
type parser_ = { buf : Buffer.t; mutable state : state; mutable c1 : char }

let create_parser () = { buf = Buffer.create 64; state = Idle; c1 = '0' }

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Gdb_proto: bad hex digit"

let feed p c =
  match p.state with
  | Idle -> (
      match c with
      | '$' ->
          Buffer.clear p.buf;
          p.state <- Payload;
          `None
      | '+' -> `Ack
      | '-' -> `Nak
      | _ -> `None)
  | Payload ->
      if c = '#' then begin
        p.state <- Check1;
        `None
      end
      else begin
        Buffer.add_char p.buf c;
        `None
      end
  | Check1 ->
      p.c1 <- c;
      p.state <- Check2;
      `None
  | Check2 ->
      p.state <- Idle;
      let payload = Buffer.contents p.buf in
      let declared = (16 * hex_digit p.c1) + hex_digit c in
      if declared = checksum payload then `Packet payload else `Bad

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  if String.length h mod 2 <> 0 then invalid_arg "Gdb_proto.string_of_hex";
  String.init (String.length h / 2) (fun i ->
      Char.chr ((16 * hex_digit h.[2 * i]) + hex_digit h.[(2 * i) + 1]))

let hex32_le v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 v;
  hex_of_string (Bytes.to_string b)

let parse_hex32_le h =
  let s = string_of_hex h in
  if String.length s <> 4 then invalid_arg "Gdb_proto.parse_hex32_le";
  Bytes.get_int32_le (Bytes.of_string s) 0
