(** GDB remote serial protocol framing (shared by stub and test client).

    Packets travel as ["$" ^ payload ^ "#" ^ 2-hex-digit checksum]; the
    receiver acknowledges with ["+"] (or ["-"] to request retransmission). *)

val checksum : string -> int

(** [frame payload] renders a full packet. *)
val frame : string -> string

(** Incremental de-framer. *)
type parser_

val create_parser : unit -> parser_

(** [feed p byte] consumes one byte; returns a decoded payload when a packet
    completes (checksum already verified — bad checksums yield [`Bad]). *)
val feed : parser_ -> char -> [ `None | `Packet of string | `Ack | `Nak | `Bad ]

val hex_of_string : string -> string
val string_of_hex : string -> string

(** 32-bit value to little-endian 8-digit hex, as GDB's i386 register
    packets want. *)
val hex32_le : int32 -> string

val parse_hex32_le : string -> int32
