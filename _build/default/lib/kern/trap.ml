type trapno =
  | T_divide
  | T_debug
  | T_breakpoint
  | T_overflow
  | T_bounds
  | T_invalid_opcode
  | T_no_device
  | T_double_fault
  | T_gpf
  | T_page_fault
  | T_alignment

let numbering =
  [ T_divide, 0; T_debug, 1; T_breakpoint, 3; T_overflow, 4; T_bounds, 5;
    T_invalid_opcode, 6; T_no_device, 7; T_double_fault, 8; T_gpf, 13;
    T_page_fault, 14; T_alignment, 17 ]

let trapno_to_int t = List.assoc t numbering
let trapno_of_int n = List.find_map (fun (t, i) -> if i = n then Some t else None) numbering

type frame = {
  mutable eax : int32;
  mutable ebx : int32;
  mutable ecx : int32;
  mutable edx : int32;
  mutable esi : int32;
  mutable edi : int32;
  mutable ebp : int32;
  mutable esp : int32;
  mutable eip : int32;
  mutable eflags : int32;
  mutable cr2 : int32;
  mutable err : int32;
  trapno : trapno;
}

let make_frame ?(eip = 0l) ?(cr2 = 0l) ?(err = 0l) trapno =
  { eax = 0l; ebx = 0l; ecx = 0l; edx = 0l; esi = 0l; edi = 0l; ebp = 0l;
    esp = 0l; eip; eflags = 0x202l; cr2; err; trapno }

type breakpoint = { addr : int32; len : int }

type table = {
  machine : Machine.t;
  handlers : (trapno, frame -> [ `Handled | `Unhandled ]) Hashtbl.t;
  mutable panic_log : frame list;
  breakpoints : breakpoint option array;
}

let create machine =
  { machine; handlers = Hashtbl.create 16; panic_log = []; breakpoints = Array.make 4 None }

let set_handler t trapno f = Hashtbl.replace t.handlers trapno f
let clear_handler t trapno = Hashtbl.remove t.handlers trapno

let deliver t frame =
  Cost.charge_cycles Cost.config.irq_entry_cycles;
  let fallthrough () =
    t.panic_log <- t.panic_log @ [ frame ];
    `Panic
  in
  match Hashtbl.find_opt t.handlers frame.trapno with
  | Some f -> ( match f frame with `Handled -> `Handled | `Unhandled -> fallthrough ())
  | None -> fallthrough ()

let panics t = t.panic_log

let set_breakpoint t ~slot ~addr ~len =
  if slot < 0 || slot > 3 then invalid_arg "Trap.set_breakpoint: slot";
  t.breakpoints.(slot) <- Some { addr; len }

let clear_breakpoint t ~slot =
  if slot < 0 || slot > 3 then invalid_arg "Trap.clear_breakpoint: slot";
  t.breakpoints.(slot) <- None

let covers bp a =
  let lo = Int32.to_int bp.addr land 0xffffffff in
  let x = Int32.to_int a land 0xffffffff in
  x >= lo && x < lo + bp.len

let check_access t addr =
  let hit = Array.exists (function Some bp -> covers bp addr | None -> false) t.breakpoints in
  if not hit then `Ok
  else begin
    let frame = make_frame ~cr2:addr T_debug in
    `Trapped (deliver t frame)
  end
