type waker = unit -> unit

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : (waker -> unit) -> unit Effect.t

type sched = {
  machine : Machine.t;
  runq : (unit -> unit) Queue.t;
  mutable live : int;
  mutable running : bool;
  mutable current_name : string option;
  mutable failures : (string * exn) list;
}

(* One scheduler per machine, found again through the current-machine
   context so [yield]/[suspend] need no explicit handle. *)
let scheds : (string, sched) Hashtbl.t = Hashtbl.create 8

let create_sched machine =
  let s =
    { machine; runq = Queue.create (); live = 0; running = false;
      current_name = None; failures = [] }
  in
  Hashtbl.replace scheds (Machine.name machine) s;
  s

let self_sched () =
  match Machine.current () with
  | None -> None
  | Some m -> Hashtbl.find_opt scheds (Machine.name m)

let self_name () = Option.bind (self_sched ()) (fun s -> s.current_name)

let enqueue s thunk = Queue.add thunk s.runq

let rec run s =
  if not s.running then begin
    s.running <- true;
    let rec loop () =
      match Queue.take_opt s.runq with
      | None -> ()
      | Some thunk ->
          thunk ();
          loop ()
    in
    Fun.protect ~finally:(fun () -> s.running <- false) loop;
    (* Wakers that fired during the last thunk may have refilled the queue. *)
    if not (Queue.is_empty s.runq) then run s
  end

let install s = Machine.set_run_hook s.machine (fun () -> run s)

let handler s name =
  let open Effect.Deep in
  { retc = (fun () -> s.live <- s.live - 1);
    exnc =
      (fun e ->
        s.live <- s.live - 1;
        s.failures <- s.failures @ [ name, e ]);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                enqueue s (fun () ->
                    s.current_name <- Some name;
                    continue k ()))
        | Suspend f ->
            Some
              (fun (k : (a, unit) continuation) ->
                let fired = ref false in
                let waker () =
                  if not !fired then begin
                    fired := true;
                    enqueue s (fun () ->
                        s.current_name <- Some name;
                        continue k ());
                    (* If the wake came from outside the machine's
                       execution (a bare world event), get the scheduler
                       re-entered. *)
                    if not s.running then Machine.kick s.machine
                  end
                in
                f waker)
        | _ -> None) }

let spawn s ?(name = "thread") f =
  s.live <- s.live + 1;
  enqueue s (fun () ->
      s.current_name <- Some name;
      Effect.Deep.match_with f () (handler s name))

let yield () = Effect.perform Yield
let suspend f = Effect.perform (Suspend f)
let live s = s.live
let failures s = s.failures
