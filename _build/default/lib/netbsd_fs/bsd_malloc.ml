(* GLUE — the BSD kernel malloc emulation of Section 4.7.7.
 *
 * BSD's in-kernel malloc guarantees three properties at once: (1) blocks
 * are naturally aligned to their size class, (2) power-of-two sizes waste
 * no space, and (3) the allocator tracks block sizes itself (free takes no
 * size).  The donor achieves this with a static per-page size table over a
 * reserved VA range — impossible in the OSKit, where components have no
 * say over the client's memory layout.  This module reproduces the paper's
 * "imperfect but practical" fix: layer the bucket allocator over whatever
 * pages the client's allocator returns, and grow the page-size table
 * dynamically so it always covers every address the allocator has ever
 * seen.  It degrades (table growth) if client pages are wildly scattered,
 * exactly as the paper warns.
 *)

let page_size = 4096
let min_bucket = 4 (* 16 bytes *)
let max_bucket = 12 (* one page *)

type t = {
  client_alloc : int -> int option; (* page-aligned pages from the client OS *)
  freelists : int list array; (* per-bucket free block addresses *)
  (* The kmemusage table: bucket index per page, over [table_base,
     table_base + 4096 * Array.length table). *)
  mutable table : int array;
  mutable table_base : int; (* in pages *)
  mutable pages_taken : int;
  mutable table_regrows : int;
}

let create ~client_alloc =
  { client_alloc;
    freelists = Array.make (max_bucket + 1) [];
    table = [||];
    table_base = 0;
    pages_taken = 0;
    table_regrows = 0 }

let bucket_of_size size =
  let rec go b = if 1 lsl b >= size then b else go (b + 1) in
  go min_bucket

(* Ensure the page table covers [page]; grow (re-allocating, as the paper
   describes) when the client hands us an address outside the current
   span. *)
let cover t page =
  if Array.length t.table = 0 then begin
    t.table <- Array.make 64 (-1);
    t.table_base <- page
  end
  else begin
    let lo = t.table_base and hi = t.table_base + Array.length t.table in
    if page < lo || page >= hi then begin
      let new_lo = min lo page and new_hi = max hi (page + 1) in
      (* Grow with slack so scattered pages do not regrow every time. *)
      let size = max (new_hi - new_lo) (2 * Array.length t.table) in
      let table = Array.make size (-1) in
      Array.blit t.table 0 table (lo - new_lo) (Array.length t.table);
      t.table <- table;
      t.table_base <- new_lo;
      t.table_regrows <- t.table_regrows + 1
    end
  end

let set_page_bucket t addr bucket =
  let page = addr / page_size in
  cover t page;
  t.table.(page - t.table_base) <- bucket

let page_bucket t addr =
  let page = addr / page_size in
  if
    Array.length t.table = 0 || page < t.table_base
    || page >= t.table_base + Array.length t.table
  then None
  else
    match t.table.(page - t.table_base) with -1 -> None | b -> Some b

let malloc t size =
  if size <= 0 || size > page_size then invalid_arg "Bsd_malloc.malloc: size";
  Cost.charge_alloc ();
  let b = bucket_of_size size in
  match t.freelists.(b) with
  | addr :: rest ->
      t.freelists.(b) <- rest;
      Some addr
  | [] -> (
      match t.client_alloc page_size with
      | None -> None
      | Some page_addr ->
          if page_addr mod page_size <> 0 then
            invalid_arg "Bsd_malloc: client returned an unaligned page";
          t.pages_taken <- t.pages_taken + 1;
          set_page_bucket t page_addr b;
          (* Carve the page into naturally-aligned blocks of this class. *)
          let block = 1 lsl b in
          let rec carve off acc =
            if off + block > page_size then acc
            else carve (off + block) ((page_addr + off) :: acc)
          in
          (match carve block [] with
          | blocks -> t.freelists.(b) <- List.rev blocks);
          Some page_addr)

(* free without a size argument: the table knows. *)
let free t addr =
  match page_bucket t addr with
  | None -> invalid_arg "Bsd_malloc.free: address never seen"
  | Some b ->
      if addr land ((1 lsl b) - 1) <> 0 then
        invalid_arg "Bsd_malloc.free: misaligned for its size class";
      t.freelists.(b) <- addr :: t.freelists.(b)

(* The paper's three properties, checkable. *)
let usable_size t addr = Option.map (fun b -> 1 lsl b) (page_bucket t addr)
let pages_taken t = t.pages_taken
let table_regrows t = t.table_regrows
