(* ENCAPSULATED LEGACY CODE — the 4.4BSD buffer cache (vfs_bio.c).
 *
 * bread/bwrite/bdwrite/brelse over a block device, with an LRU of clean
 * buffers, a hash on block number, and delayed writes flushed by sync.
 * The device below is reached through the OSKit blkio interface the glue
 * was handed at mount time — the run-time binding of Section 4.2.2.
 *)

type buf = {
  b_blkno : int;
  b_data : bytes;
  mutable b_dirty : bool;
  mutable b_refs : int;
  mutable b_lru_tick : int;
}

type t = {
  dev : Io_if.blkio;
  bsize : int;
  cache : (int, buf) Hashtbl.t;
  max_bufs : int;
  mutable tick : int;
  mutable reads : int; (* device reads actually issued *)
  mutable writes : int;
  mutable hits : int;
}

let create ?(max_bufs = 64) ~bsize dev =
  { dev; bsize; cache = Hashtbl.create 64; max_bufs; tick = 0; reads = 0; writes = 0;
    hits = 0 }

let device_read t blkno data =
  t.reads <- t.reads + 1;
  match
    t.dev.Io_if.bio_read ~buf:data ~pos:0 ~offset:(blkno * t.bsize) ~amount:t.bsize
  with
  | Ok n when n = t.bsize -> ()
  | Ok _ -> Error.fail Error.Io
  | Result.Error e -> Error.fail e

let device_write t blkno data =
  t.writes <- t.writes + 1;
  match
    t.dev.Io_if.bio_write ~buf:data ~pos:0 ~offset:(blkno * t.bsize) ~amount:t.bsize
  with
  | Ok n when n = t.bsize -> ()
  | Ok _ -> Error.fail Error.Io
  | Result.Error e -> Error.fail e

(* Evict the least recently used clean, unreferenced buffer (writing it if
   it is dirty — BSD pushes delayed writes under pressure). *)
let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun _ b ->
      if b.b_refs = 0 then
        match !victim with
        | Some v when v.b_lru_tick <= b.b_lru_tick -> ()
        | _ -> victim := Some b)
    t.cache;
  match !victim with
  | None -> () (* everything referenced: let the cache grow, as BSD does *)
  | Some b ->
      if b.b_dirty then device_write t b.b_blkno b.b_data;
      Hashtbl.remove t.cache b.b_blkno

let getblk t blkno ~fill =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.cache blkno with
  | Some b ->
      t.hits <- t.hits + 1;
      b.b_refs <- b.b_refs + 1;
      b.b_lru_tick <- t.tick;
      b
  | None ->
      if Hashtbl.length t.cache >= t.max_bufs then evict_one t;
      let data = Bytes.make t.bsize '\000' in
      if fill then device_read t blkno data;
      let b = { b_blkno = blkno; b_data = data; b_dirty = false; b_refs = 1; b_lru_tick = t.tick } in
      Hashtbl.replace t.cache blkno b;
      b

(* bread: a referenced buffer with the block's contents. *)
let bread t blkno = getblk t blkno ~fill:true

(* getblk-without-read: caller will overwrite the whole block. *)
let getblk_nofill t blkno = getblk t blkno ~fill:false

let brelse b = if b.b_refs > 0 then b.b_refs <- b.b_refs - 1

(* bdwrite: mark dirty, write later. *)
let bdwrite b = b.b_dirty <- true

(* bwrite: write through now. *)
let bwrite t b =
  device_write t b.b_blkno b.b_data;
  b.b_dirty <- false

let sync t =
  let dirty = Hashtbl.fold (fun _ b acc -> if b.b_dirty then b :: acc else acc) t.cache [] in
  List.iter
    (fun b ->
      device_write t b.b_blkno b.b_data;
      b.b_dirty <- false)
    (List.sort (fun a b -> Int.compare a.b_blkno b.b_blkno) dirty)

let stats t = t.reads, t.writes, t.hits
