lib/netbsd_fs/fs_glue.ml: Com Cost Error Ffs Iid Io_if Lazy Result
