lib/netbsd_fs/bsd_malloc.ml: Array Cost List Option
