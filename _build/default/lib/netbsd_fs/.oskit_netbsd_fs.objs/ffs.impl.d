lib/netbsd_fs/ffs.ml: Array Buf Bytes Char Cost Error Hashtbl Int32 Io_if List String
