lib/netbsd_fs/fs_glue.mli: Error Ffs Io_if
