lib/netbsd_fs/buf.ml: Bytes Error Hashtbl Int Io_if List Result
