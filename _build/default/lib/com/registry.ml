type entry = { guid : Guid.t; obj : Com.unknown }
type t = { mutable entries : entry list }

let create () = { entries = [] }

let register t iid obj =
  ignore (obj.Com.addref ());
  t.entries <- { guid = Iid.guid iid; obj } :: t.entries

let unregister t iid obj =
  let guid = Iid.guid iid in
  let rec remove = function
    | [] -> []
    | e :: rest ->
        if Guid.equal e.guid guid && e.obj == obj then (
          ignore (obj.Com.release ());
          rest)
        else e :: remove rest
  in
  t.entries <- remove t.entries

let lookup t iid =
  let guid = Iid.guid iid in
  List.filter_map
    (fun e ->
      if Guid.equal e.guid guid then
        match Com.query e.obj iid with Ok v -> Some v | Error _ -> None
      else None)
    t.entries

let lookup_first t iid = match lookup t iid with [] -> None | v :: _ -> Some v

let clear t =
  List.iter (fun e -> ignore (e.obj.Com.release ())) t.entries;
  t.entries <- []
