type unknown = {
  query : 'a. 'a Iid.t -> ('a, Error.t) result;
  addref : unit -> int;
  release : unit -> int;
}

exception Use_after_free of string

(* Hidden interface through which [refcount] reads the live count without
   perturbing it; never handed to clients. *)
let refcount_iid : (unit -> int) Iid.t = Iid.declare "oskit.internal.refcount"

type state = { mutable count : int; mutable bindings : Iid.binding list }

let create ?(on_last_release = fun () -> ()) bindings_of_self =
  let st = { count = 1; bindings = [] } in
  let check () = if st.count <= 0 then raise (Use_after_free "com object") in
  let addref () =
    check ();
    st.count <- st.count + 1;
    st.count
  in
  let release () =
    check ();
    st.count <- st.count - 1;
    if st.count = 0 then on_last_release ();
    st.count
  in
  let query (type a) (iid : a Iid.t) : (a, Error.t) result =
    match Iid.same_witness iid refcount_iid with
    | Some Iid.Eq -> Ok (fun () -> st.count)
    | None -> (
        check ();
        match Iid.lookup iid st.bindings with
        | Some view ->
            ignore (addref ());
            Ok view
        | None -> Result.Error Error.No_interface)
  in
  let self = { query; addref; release } in
  st.bindings <- bindings_of_self self;
  self

let query u iid = u.query iid

let refcount u = match u.query refcount_iid with Ok f -> f () | Error _ -> -1

let with_ref u f =
  ignore (u.addref ());
  Fun.protect ~finally:(fun () -> ignore (u.release ())) f
