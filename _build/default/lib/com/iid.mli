(** Typed interface identifiers.

    An ['a Iid.t] names a COM interface whose OCaml representation is the
    type ['a] (typically a record of closures — the direct analogue of the
    paper's function-pointer "ops" tables, Figure 2).  The GUID is the
    run-time identity used by [query]; the embedded type witness makes the
    downcast ("narrowing", Section 4.4.2) statically safe. *)

type 'a t

(** [make ~name guid] registers a fresh interface identity.  Each call
    creates a distinct witness: two [Iid.t] values are interchangeable only
    if they are the same value. *)
val make : name:string -> Guid.t -> 'a t

(** [declare name] is [make ~name (Guid.of_name name)] — the common case for
    interfaces native to this kit. *)
val declare : string -> 'a t

val guid : _ t -> Guid.t
val name : _ t -> string

(** [same_witness a b] is a type-equality proof when [a] and [b] are the same
    interface. *)
type (_, _) eq = Eq : ('a, 'a) eq

val same_witness : 'a t -> 'b t -> ('a, 'b) eq option

(** A packed (interface, provider) pair, used by objects to store the
    interfaces they export.  The provider is a thunk so that an interface
    record can capture the object that owns it (a necessarily cyclic
    structure). *)
type binding = B : 'a t * (unit -> 'a) -> binding

(** [lookup iid bindings] finds and forces the provider for [iid]. *)
val lookup : 'a t -> binding list -> 'a option
