type (_, _) eq = Eq : ('a, 'a) eq

type _ witness = ..

module type Witness = sig
  type a
  type _ witness += W : a witness
end

type 'a t = { guid : Guid.t; name : string; witness : (module Witness with type a = 'a) }

let make (type x) ~name guid : x t =
  let module M = struct
    type a = x
    type _ witness += W : a witness
  end in
  { guid; name; witness = (module M) }

let declare name = make ~name (Guid.of_name name)
let guid t = t.guid
let name t = t.name

let same_witness (type a b) (x : a t) (y : b t) : (a, b) eq option =
  let module X = (val x.witness) in
  let module Y = (val y.witness) in
  match X.W with Y.W -> Some Eq | _ -> None

type binding = B : 'a t * (unit -> 'a) -> binding

let rec lookup : type a. a t -> binding list -> a option =
 fun iid -> function
  | [] -> None
  | B (iid', provide) :: rest -> (
      match same_witness iid' iid with
      | Some Eq -> Some (provide ())
      | None -> lookup iid rest)
