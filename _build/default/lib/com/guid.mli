(** Globally Unique Identifiers in the DCE/COM 128-bit format.

    The OSKit identifies every COM interface by a GUID (Section 4.4.2 of the
    paper); interfaces can be defined independently with essentially no chance
    of collision.  This module provides the value type, well-known constant
    construction (mirroring the paper's [GUID(0x4aa7dfe1, ...)] macros), and a
    deterministic name-based generator used for interfaces defined inside this
    reproduction. *)

type t

(** [make d1 d2 d3 d4] builds a GUID from its four groups; [d4] must be
    exactly 8 bytes.  Raises [Invalid_argument] otherwise. *)
val make : int32 -> int -> int -> string -> t

(** [of_name s] deterministically derives a GUID from an interface name,
    standing in for the paper's "algorithmically generated DCE UUIDs". *)
val of_name : string -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Renders in the conventional [xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx]
    form. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
