(** The OSKit's object model: refcounted objects exporting COM interfaces.

    An object can export any number of interfaces (Section 4.4.2); each
    interface is one "view" with its own method table.  Given any interface,
    [query] on the owning object finds the others.  Refcounting follows COM
    rules: a successful [query] takes a reference which the caller must
    [release]. *)

(** A handle on an object's identity — the IUnknown view.  Every interface
    record defined in this kit embeds the [unknown] of the object exporting
    it, so clients can always navigate between views. *)
type unknown = {
  query : 'a. 'a Iid.t -> ('a, Error.t) result;
      (** [query iid] returns the requested view and takes a reference, or
          [Error No_interface]. *)
  addref : unit -> int;  (** take a reference; returns the new count *)
  release : unit -> int;  (** drop a reference; returns the new count *)
}

(** [create ?on_last_release bindings_of_self] builds an object with an
    initial refcount of 1.  [bindings_of_self] receives the object's own
    [unknown] so interface records can refer back to it; it is called once.
    [on_last_release] runs when the count reaches zero (the destructor). *)
val create : ?on_last_release:(unit -> unit) -> (unknown -> Iid.binding list) -> unknown

(** [query u iid] is [u.query iid]. *)
val query : unknown -> 'a Iid.t -> ('a, Error.t) result

(** [refcount u] reads the current count without touching it (testing aid —
    real COM deliberately hides this; we expose it per the kit's "open
    implementation" stance, Section 4.6). *)
val refcount : unknown -> int

(** [with_ref u f] runs [f ()] with a reference held, releasing it on the
    way out even on exception. *)
val with_ref : unknown -> (unit -> 'b) -> 'b

(** Raised by methods invoked after the refcount has reached zero; catching
    use-after-free bugs deterministically is part of the debugging story. *)
exception Use_after_free of string
