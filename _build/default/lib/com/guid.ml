type t = { d1 : int32; d2 : int; d3 : int; d4 : string }

let make d1 d2 d3 d4 =
  if String.length d4 <> 8 then invalid_arg "Guid.make: d4 must be 8 bytes";
  if d2 < 0 || d2 > 0xffff || d3 < 0 || d3 > 0xffff then
    invalid_arg "Guid.make: d2/d3 must be 16-bit";
  { d1; d2; d3; d4 }

(* FNV-1a, folded twice with different offsets, to derive 128 deterministic
   bits from a name.  Uniqueness within this code base is all we need. *)
let fnv1a ~offset s =
  let prime = 0x100000001b3L in
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let of_name name =
  let a = fnv1a ~offset:0xcbf29ce484222325L name in
  let b = fnv1a ~offset:0x84222325cbf29ce4L (name ^ "#oskit") in
  let d1 = Int64.to_int32 (Int64.shift_right_logical a 32) in
  let d2 = Int64.to_int (Int64.logand (Int64.shift_right_logical a 16) 0xffffL) in
  let d3 = Int64.to_int (Int64.logand a 0xffffL) in
  let d4 = Bytes.create 8 in
  for i = 0 to 7 do
    let byte =
      Int64.to_int (Int64.logand (Int64.shift_right_logical b (8 * (7 - i))) 0xffL)
    in
    Bytes.set d4 i (Char.chr byte)
  done;
  { d1; d2; d3; d4 = Bytes.to_string d4 }

let equal a b = a.d1 = b.d1 && a.d2 = b.d2 && a.d3 = b.d3 && String.equal a.d4 b.d4

let compare a b =
  match Int32.compare a.d1 b.d1 with
  | 0 -> (
      match Int.compare a.d2 b.d2 with
      | 0 -> ( match Int.compare a.d3 b.d3 with 0 -> String.compare a.d4 b.d4 | c -> c)
      | c -> c)
  | c -> c

let hash t = Hashtbl.hash (t.d1, t.d2, t.d3, t.d4)

let to_string t =
  let byte i = Char.code t.d4.[i] in
  Printf.sprintf "%08lx-%04x-%04x-%02x%02x-%02x%02x%02x%02x%02x%02x" t.d1 t.d2 t.d3
    (byte 0) (byte 1) (byte 2) (byte 3) (byte 4) (byte 5) (byte 6) (byte 7)

let pp fmt t = Format.pp_print_string fmt (to_string t)
