(** The OSKit [error_t] code space.

    Every fallible COM method in the paper returns an [error_t]; here methods
    return [('a, Error.t) result].  The codes mirror the POSIX subset the
    OSKit interfaces use, plus the COM-specific [No_interface] returned by
    [query] when an object does not implement the requested interface. *)

type t =
  | No_interface  (** COM E_NOINTERFACE: object lacks the queried interface *)
  | Inval  (** invalid argument *)
  | Nodev  (** no such device *)
  | Noent  (** no such file or directory *)
  | Exist  (** object already exists *)
  | Nomem  (** out of memory *)
  | Io  (** device-level I/O failure *)
  | Nospc  (** no space left on device *)
  | Notdir  (** path component is not a directory *)
  | Isdir  (** operation not valid on a directory *)
  | Notempty  (** directory not empty *)
  | Acces  (** permission denied *)
  | Badf  (** bad file descriptor *)
  | Mfile  (** descriptor table full *)
  | Pipe  (** broken connection *)
  | Again  (** resource temporarily unavailable *)
  | Wouldblock  (** non-blocking operation would block *)
  | Notconn  (** socket not connected *)
  | Isconn  (** socket already connected *)
  | Connrefused  (** connection refused by peer *)
  | Connreset  (** connection reset by peer *)
  | Timedout  (** operation timed out *)
  | Addrinuse  (** address already in use *)
  | Hostunreach  (** no route to host *)
  | Msgsize  (** message too large *)
  | Notsup  (** operation not supported by this component *)
  | Rofs  (** read-only file system *)
  | Xdev  (** cross-device link *)
  | Nametoolong  (** path component too long *)
  | Fbig  (** file too large *)
  | Srch  (** no such process *)
  | Intr  (** interrupted operation *)
  | Busy  (** resource busy *)
  | Range  (** result out of range *)
  | Proto  (** protocol error *)
  | Unknown of string  (** anything a donor OS reports that has no code *)

val equal : t -> t -> bool

(** Short upper-case name, e.g. ["EINVAL"]. *)
val to_string : t -> string

(** One-line human description. *)
val message : t -> string

val pp : Format.formatter -> t -> unit

(** [errno e] is the conventional numeric errno value, used where legacy code
    (or the minimal C library) traffics in integers. *)
val errno : t -> int

(** Inverse of [errno] for the codes above; unknown numbers map to
    [Unknown]. *)
val of_errno : int -> t

exception Error of t

(** [fail e] raises [Error e]; glue code uses it at legacy boundaries where
    the donor code signals errors by exception-like control flow. *)
val fail : t -> 'a

(** [to_result f] runs [f], catching [Error] into [Result.Error]. *)
val to_result : (unit -> 'a) -> ('a, t) result
