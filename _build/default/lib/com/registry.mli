(** A simple services database.

    The OSKit lets the client OS bind components together at run time
    (Section 4.2.2); a registry of (interface, object) pairs is the usual
    rendezvous.  [Fdev]'s device table is one instance; this generic one is
    available for client OSes and examples. *)

type t

val create : unit -> t

(** [register t iid obj] records that [obj] exports [iid].  Takes a
    reference on [obj]; dropped by [unregister] or [clear]. *)
val register : t -> _ Iid.t -> Com.unknown -> unit

(** [unregister t iid obj] removes one matching entry (by physical identity
    of [obj]); silently ignores absent entries. *)
val unregister : t -> _ Iid.t -> Com.unknown -> unit

(** [lookup t iid] returns all registered objects exporting [iid], most
    recently registered first, each already narrowed.  No references are
    transferred beyond those [query] takes. *)
val lookup : t -> 'a Iid.t -> 'a list

(** [lookup_first t iid] is the head of [lookup], if any. *)
val lookup_first : t -> 'a Iid.t -> 'a option

(** Drop every entry (releasing held references). *)
val clear : t -> unit
