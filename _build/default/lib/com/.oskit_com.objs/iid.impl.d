lib/com/iid.ml: Guid
