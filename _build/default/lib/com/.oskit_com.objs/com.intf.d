lib/com/com.mli: Error Iid
