lib/com/error.mli: Format
