lib/com/guid.ml: Bytes Char Format Hashtbl Int Int32 Int64 Printf String
