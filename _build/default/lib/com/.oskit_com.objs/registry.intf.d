lib/com/registry.mli: Com Iid
