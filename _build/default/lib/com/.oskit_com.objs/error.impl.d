lib/com/error.ml: Format List Printf Result String
