lib/com/iid.mli: Guid
