lib/com/io_if.ml: Bytes Com Error Guid Iid Lazy Result
