lib/com/registry.ml: Com Guid Iid List
