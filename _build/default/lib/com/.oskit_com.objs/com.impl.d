lib/com/com.ml: Error Fun Iid Result
