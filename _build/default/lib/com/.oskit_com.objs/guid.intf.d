lib/com/guid.mli: Format
