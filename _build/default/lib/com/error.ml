type t =
  | No_interface
  | Inval
  | Nodev
  | Noent
  | Exist
  | Nomem
  | Io
  | Nospc
  | Notdir
  | Isdir
  | Notempty
  | Acces
  | Badf
  | Mfile
  | Pipe
  | Again
  | Wouldblock
  | Notconn
  | Isconn
  | Connrefused
  | Connreset
  | Timedout
  | Addrinuse
  | Hostunreach
  | Msgsize
  | Notsup
  | Rofs
  | Xdev
  | Nametoolong
  | Fbig
  | Srch
  | Intr
  | Busy
  | Range
  | Proto
  | Unknown of string

let equal a b =
  match a, b with
  | Unknown x, Unknown y -> String.equal x y
  | a, b -> a = b

let table =
  [ No_interface, "E_NOINTERFACE", 1000, "no such interface";
    Inval, "EINVAL", 22, "invalid argument";
    Nodev, "ENODEV", 19, "no such device";
    Noent, "ENOENT", 2, "no such file or directory";
    Exist, "EEXIST", 17, "file exists";
    Nomem, "ENOMEM", 12, "out of memory";
    Io, "EIO", 5, "input/output error";
    Nospc, "ENOSPC", 28, "no space left on device";
    Notdir, "ENOTDIR", 20, "not a directory";
    Isdir, "EISDIR", 21, "is a directory";
    Notempty, "ENOTEMPTY", 39, "directory not empty";
    Acces, "EACCES", 13, "permission denied";
    Badf, "EBADF", 9, "bad file descriptor";
    Mfile, "EMFILE", 24, "too many open files";
    Pipe, "EPIPE", 32, "broken pipe";
    Again, "EAGAIN", 11, "resource temporarily unavailable";
    Wouldblock, "EWOULDBLOCK", 35, "operation would block";
    Notconn, "ENOTCONN", 107, "socket is not connected";
    Isconn, "EISCONN", 106, "socket is already connected";
    Connrefused, "ECONNREFUSED", 111, "connection refused";
    Connreset, "ECONNRESET", 104, "connection reset by peer";
    Timedout, "ETIMEDOUT", 110, "operation timed out";
    Addrinuse, "EADDRINUSE", 98, "address already in use";
    Hostunreach, "EHOSTUNREACH", 113, "no route to host";
    Msgsize, "EMSGSIZE", 90, "message too long";
    Notsup, "ENOTSUP", 95, "operation not supported";
    Rofs, "EROFS", 30, "read-only file system";
    Xdev, "EXDEV", 18, "cross-device link";
    Nametoolong, "ENAMETOOLONG", 36, "file name too long";
    Fbig, "EFBIG", 27, "file too large";
    Srch, "ESRCH", 3, "no such process";
    Intr, "EINTR", 4, "interrupted system call";
    Busy, "EBUSY", 16, "device or resource busy";
    Range, "ERANGE", 34, "result out of range";
    Proto, "EPROTO", 71, "protocol error" ]

let find_row e = List.find_opt (fun (code, _, _, _) -> code = e) table

let to_string = function
  | Unknown s -> "EUNKNOWN(" ^ s ^ ")"
  | e -> ( match find_row e with Some (_, name, _, _) -> name | None -> "E?")

let message = function
  | Unknown s -> s
  | e -> ( match find_row e with Some (_, _, _, msg) -> msg | None -> "unknown error")

let pp fmt e = Format.pp_print_string fmt (to_string e)

let errno = function
  | Unknown _ -> 5
  | e -> ( match find_row e with Some (_, _, n, _) -> n | None -> 5)

let of_errno n =
  match List.find_opt (fun (_, _, m, _) -> m = n) table with
  | Some (code, _, _, _) -> code
  | None -> Unknown (Printf.sprintf "errno %d" n)

exception Error of t

let fail e = raise (Error e)
let to_result f = try Ok (f ()) with Error e -> Result.Error e
