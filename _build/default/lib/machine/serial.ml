type t = {
  machine : Machine.t;
  irq : int;
  baud : int;
  rx_fifo : int Queue.t;
  out_buf : Buffer.t;
  mutable peer : t option;
  mutable line_free : int; (* local time when the tx line is next idle *)
}

let create ~machine ~irq ?(baud = 115200) () =
  { machine; irq; baud; rx_fifo = Queue.create (); out_buf = Buffer.create 256;
    peer = None; line_free = 0 }

let connect a b =
  a.peer <- Some b;
  b.peer <- Some a

let bit_ns t = 1_000_000_000 / t.baud
let byte_ns t = 10 * bit_ns t (* 8N1: start + 8 data + stop *)

let deliver dst b =
  Queue.add b dst.rx_fifo;
  Machine.raise_irq dst.machine ~irq:dst.irq

let write_byte t b =
  let b = b land 0xff in
  Cost.charge_cycles 20;
  match t.peer with
  | None -> Buffer.add_char t.out_buf (Char.chr b)
  | Some dst ->
      let start = max (Machine.now t.machine) t.line_free in
      let finish = start + byte_ns t in
      t.line_free <- finish;
      ignore (World.at (Machine.world t.machine) finish (fun () -> deliver dst b))

let write_string t s = String.iter (fun c -> write_byte t (Char.code c)) s
let read_byte t = Queue.take_opt t.rx_fifo
let input_pending t = Queue.length t.rx_fifo

let inject t s =
  String.iter (fun c -> Queue.add (Char.code c) t.rx_fifo) s;
  if String.length s > 0 then Machine.raise_irq t.machine ~irq:t.irq

let captured_output t = Buffer.contents t.out_buf
let clear_captured t = Buffer.clear t.out_buf
