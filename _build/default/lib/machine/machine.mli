(** One simulated PC.

    A machine owns a local CPU clock, physical memory, and a 16-line
    interrupt controller.  OS code "runs on" a machine via {!run_in}, which
    routes {!Cost} charges to the machine's clock.  Devices raise interrupts
    through {!raise_irq}; handlers run at interrupt level, to completion,
    exactly the execution model the OSKit's encapsulated components assume
    (Section 4.7.4). *)

type t

val create : ?name:string -> ?ram_bytes:int -> World.t -> t

val name : t -> string
val world : t -> World.t
val ram : t -> Physmem.t

(** Local CPU time, ns.  Always >= the world time of the last event this
    machine saw; may run ahead of the world while the machine computes. *)
val now : t -> int

(** [run_in t f] executes [f] in this machine's context: cost charges
    advance [now t].  Nestable; reentrant across machines. *)
val run_in : t -> (unit -> 'a) -> 'a

(** The machine currently executing, if any. *)
val current : unit -> t option

(** {2 Interrupts} *)

val irq_lines : int (* 16, like the PC's cascaded 8259s *)

(** [set_irq_handler t ~irq f] installs the handler (replacing any).  The
    handler runs in machine context at interrupt level. *)
val set_irq_handler : t -> irq:int -> (unit -> unit) -> unit

(** [mask_irq] / [unmask_irq]: per-line enable, as on the PIC. *)
val mask_irq : t -> irq:int -> unit

val unmask_irq : t -> irq:int -> unit

(** Global interrupt flag (cli/sti).  Interrupts raised while disabled or
    masked are latched and delivered on enable/unmask. *)
val interrupts_enabled : t -> bool

val enable_interrupts : t -> unit
val disable_interrupts : t -> unit

(** [with_interrupts_disabled t f] — the critical-section idiom. *)
val with_interrupts_disabled : t -> (unit -> 'a) -> 'a

(** [raise_irq t ~irq] asserts the line.  Called by device models (from
    world events) or by software for testing.  Charges interrupt entry cost
    when dispatching. *)
val raise_irq : t -> irq:int -> unit

(** {2 Hooks} *)

(** [set_run_hook t f]: [f] is the client kernel's "run runnable process-
    level work" entry; the machine invokes it after interrupt dispatch and
    when {!kick}ed.  Default: nothing. *)
val set_run_hook : t -> (unit -> unit) -> unit

(** Schedule the run hook to execute (via a world event) at the machine's
    current local time. *)
val kick : t -> unit

(** {2 Time services} *)

(** [at t time f] runs [f] at interrupt level at local/world time [time]. *)
val at : t -> int -> (unit -> unit) -> World.event

(** [after t dt f] is [at t (now t + dt) f]. *)
val after : t -> int -> (unit -> unit) -> World.event
