lib/machine/wire.ml: Bytes List World
