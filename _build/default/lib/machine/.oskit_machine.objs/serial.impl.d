lib/machine/serial.ml: Buffer Char Cost Machine Queue String World
