lib/machine/nic.ml: Bytes Cost Machine Queue String Wire
