lib/machine/cost.ml: Option
