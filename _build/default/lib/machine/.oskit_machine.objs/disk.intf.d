lib/machine/disk.mli: Error Machine
