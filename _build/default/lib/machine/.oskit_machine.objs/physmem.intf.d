lib/machine/physmem.mli:
