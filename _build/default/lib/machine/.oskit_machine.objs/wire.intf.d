lib/machine/wire.mli: World
