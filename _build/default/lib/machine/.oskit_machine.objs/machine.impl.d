lib/machine/machine.ml: Array Cost Fun Physmem World
