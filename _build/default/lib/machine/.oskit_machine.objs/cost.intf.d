lib/machine/cost.mli:
