lib/machine/nic.mli: Machine Wire
