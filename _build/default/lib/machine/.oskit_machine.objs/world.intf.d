lib/machine/world.mli:
