lib/machine/timer_dev.mli: Machine
