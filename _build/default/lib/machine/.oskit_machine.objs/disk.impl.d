lib/machine/disk.ml: Bytes Error Machine Queue
