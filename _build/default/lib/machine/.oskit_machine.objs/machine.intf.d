lib/machine/machine.mli: Physmem World
