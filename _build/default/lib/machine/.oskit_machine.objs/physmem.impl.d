lib/machine/physmem.ml: Bytes Char
