lib/machine/serial.mli: Machine
