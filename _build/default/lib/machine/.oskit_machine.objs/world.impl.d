lib/machine/world.ml: Int Map
