lib/machine/timer_dev.ml: Machine
