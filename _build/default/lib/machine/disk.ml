type op = Read of { start : int; count : int } | Write of { start : int; data : bytes }
type completion = { id : int; result : (bytes, Error.t) result }

type t = {
  machine : Machine.t;
  media : bytes;
  sector_size : int;
  sectors : int;
  irq : int;
  seek_ns : int;
  transfer_bps : int;
  queue : (int * op) Queue.t;
  done_q : completion Queue.t;
  mutable next_id : int;
  mutable busy : bool;
}

let create ~machine ~sectors ~irq ?(sector_size = 512) ?(seek_ns = 8_000_000)
    ?(transfer_bps = 10_000_000) () =
  { machine;
    media = Bytes.make (sectors * sector_size) '\000';
    sector_size;
    sectors;
    irq;
    seek_ns;
    transfer_bps;
    queue = Queue.create ();
    done_q = Queue.create ();
    next_id = 0;
    busy = false }

let sector_size t = t.sector_size
let sectors t = t.sectors
let irq t = t.irq

let valid t = function
  | Read { start; count } -> start >= 0 && count >= 0 && start + count <= t.sectors
  | Write { start; data } ->
      let len = Bytes.length data in
      len mod t.sector_size = 0 && start >= 0 && start + (len / t.sector_size) <= t.sectors

let service_ns t nbytes = t.seek_ns + (nbytes * 8 * 1_000_000_000 / t.transfer_bps)

let rec start_next t =
  match Queue.take_opt t.queue with
  | None -> t.busy <- false
  | Some (id, op) ->
      t.busy <- true;
      if not (valid t op) then begin
        Queue.add { id; result = Error Error.Inval } t.done_q;
        ignore
          (Machine.after t.machine 1_000 (fun () ->
               Machine.raise_irq t.machine ~irq:t.irq;
               start_next t))
      end
      else begin
        let nbytes =
          match op with
          | Read { count; _ } -> count * t.sector_size
          | Write { data; _ } -> Bytes.length data
        in
        let finish () =
          let result =
            match op with
            | Read { start; count } ->
                Ok (Bytes.sub t.media (start * t.sector_size) (count * t.sector_size))
            | Write { start; data } ->
                Bytes.blit data 0 t.media (start * t.sector_size) (Bytes.length data);
                Ok Bytes.empty
          in
          Queue.add { id; result } t.done_q;
          Machine.raise_irq t.machine ~irq:t.irq;
          start_next t
        in
        ignore (Machine.after t.machine (service_ns t nbytes) (fun () -> finish ()))
      end

let submit t op =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Queue.add (id, op) t.queue;
  if not t.busy then start_next t;
  id

let take_completion t = Queue.take_opt t.done_q

let read_raw t ~start ~count = Bytes.sub t.media (start * t.sector_size) (count * t.sector_size)

let write_raw t ~start data =
  if Bytes.length data mod t.sector_size <> 0 then invalid_arg "Disk.write_raw: partial sector";
  Bytes.blit data 0 t.media (start * t.sector_size) (Bytes.length data)
