type port = { id : int; rx : bytes -> unit }

type t = {
  world : World.t;
  bandwidth_bps : int;
  latency_ns : int;
  mutable ports : port list;
  mutable next_id : int;
  mutable busy_until : int;
  mutable frames : int;
  mutable bytes : int;
  mutable fault : (bytes -> bool) option;
  mutable dropped : int;
}

(* 100BASE-T framing overhead per frame: 8 B preamble + 4 B FCS + 12 B
   inter-frame gap. *)
let framing_bytes = 24

let create ?(bandwidth_bps = 100_000_000) ?(latency_ns = 1_000) world =
  { world; bandwidth_bps; latency_ns; ports = []; next_id = 0; busy_until = 0;
    frames = 0; bytes = 0; fault = None; dropped = 0 }

let attach t ~rx =
  let p = { id = t.next_id; rx } in
  t.next_id <- t.next_id + 1;
  t.ports <- p :: t.ports;
  p

let serialization_ns t len =
  (len + framing_bytes) * 8 * 1_000_000_000 / t.bandwidth_bps

let send t port frame ~at =
  let start = max at t.busy_until in
  let finish = start + serialization_ns t (Bytes.length frame) in
  t.busy_until <- finish;
  t.frames <- t.frames + 1;
  t.bytes <- t.bytes + Bytes.length frame;
  let arrival = finish + t.latency_ns in
  let lost = match t.fault with Some f -> f frame | None -> false in
  if lost then t.dropped <- t.dropped + 1
  else begin
    let deliver () =
      let copy_for p = p.rx (Bytes.copy frame) in
      List.iter (fun p -> if p.id <> port.id then copy_for p) t.ports
    in
    ignore (World.at t.world arrival deliver)
  end;
  arrival

let set_fault_injector t f = t.fault <- f
let frames_dropped t = t.dropped
let frames_carried t = t.frames
let bytes_carried t = t.bytes
