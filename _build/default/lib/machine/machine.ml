let irq_lines = 16

type t = {
  name : string;
  world : World.t;
  ram : Physmem.t;
  mutable now : int;
  handlers : (unit -> unit) option array;
  mutable masked : int; (* bitmask: 1 = masked *)
  mutable pending : int;
  mutable enabled : bool;
  mutable in_dispatch : bool;
  mutable run_hook : unit -> unit;
  mutable kick_queued : bool;
}

let current_machine : t option ref = ref None

let () =
  (* All cost charges land on whichever machine is executing. *)
  Cost.set_sink
    (Some
       (fun ns ->
         match !current_machine with
         | Some m -> m.now <- m.now + ns
         | None -> ()))

let create ?(name = "pc") ?(ram_bytes = 8 * 1024 * 1024) world =
  { name;
    world;
    ram = Physmem.create ~bytes:ram_bytes;
    now = 0;
    handlers = Array.make irq_lines None;
    masked = 0;
    pending = 0;
    enabled = true;
    in_dispatch = false;
    run_hook = (fun () -> ());
    kick_queued = false }

let name t = t.name
let world t = t.world
let ram t = t.ram
let now t = t.now

let run_in t f =
  let prev = !current_machine in
  current_machine := Some t;
  Fun.protect ~finally:(fun () -> current_machine := prev) f

let current () = !current_machine

let set_irq_handler t ~irq f =
  if irq < 0 || irq >= irq_lines then invalid_arg "set_irq_handler: bad irq";
  t.handlers.(irq) <- Some f

let bit irq = 1 lsl irq

(* Deliver every pending, unmasked line while interrupts are enabled.  Runs
   with [current_machine = t]; handlers execute to completion, one at a
   time, lowest line first — PIC priority order. *)
let rec dispatch_pending t =
  if t.enabled && (not t.in_dispatch) && t.pending land lnot t.masked <> 0 then begin
    t.in_dispatch <- true;
    let rec find irq =
      if irq >= irq_lines then None
      else if t.pending land bit irq <> 0 && t.masked land bit irq = 0 then Some irq
      else find (irq + 1)
    in
    (match find 0 with
    | None -> ()
    | Some irq -> (
        t.pending <- t.pending land lnot (bit irq);
        Cost.charge_cycles Cost.config.irq_entry_cycles;
        match t.handlers.(irq) with Some f -> f () | None -> ()));
    t.in_dispatch <- false;
    dispatch_pending t
  end

let run_hook_and_drain t =
  dispatch_pending t;
  t.run_hook ();
  dispatch_pending t

let mask_irq t ~irq = t.masked <- t.masked lor bit irq

let is_current t = match !current_machine with Some m -> m == t | None -> false

let unmask_irq t ~irq =
  t.masked <- t.masked land lnot (bit irq);
  if is_current t then dispatch_pending t

let interrupts_enabled t = t.enabled

let enable_interrupts t =
  t.enabled <- true;
  if is_current t then dispatch_pending t

let disable_interrupts t = t.enabled <- false

let with_interrupts_disabled t f =
  let was = t.enabled in
  t.enabled <- false;
  Fun.protect ~finally:(fun () -> if was then enable_interrupts t) f

let raise_irq t ~irq =
  if irq < 0 || irq >= irq_lines then invalid_arg "raise_irq: bad irq";
  t.pending <- t.pending lor bit irq;
  if is_current t then dispatch_pending t
  else begin
    (* Raised from outside the machine (a world event): synchronise the
       local clock with the world and service the interrupt, then let the
       kernel's process level run. *)
    t.now <- max t.now (World.now t.world);
    run_in t (fun () -> run_hook_and_drain t)
  end

let set_run_hook t f = t.run_hook <- f

let kick t =
  if not t.kick_queued then begin
    t.kick_queued <- true;
    ignore
      (World.at t.world t.now (fun () ->
           t.kick_queued <- false;
           t.now <- max t.now (World.now t.world);
           run_in t (fun () -> run_hook_and_drain t)))
  end

let at t time f =
  World.at t.world time (fun () ->
      t.now <- max t.now (World.now t.world);
      run_in t (fun () ->
          f ();
          run_hook_and_drain t))

let after t dt f = at t (t.now + dt) f
