(** Simulated physical memory.

    A flat byte array standing in for the PC's RAM.  The kernel-support and
    memory-manager components operate on *addresses into this array*, so page
    tables, boot-module placement, DMA windows and the LMM's physical-memory
    pools behave as they do on the real machine, including the PC quirks the
    paper calls out (the 16 MB ISA DMA limit, the sub-1 MB "low" region). *)

type t

(** [create ~bytes] makes a RAM of that many bytes (rounded up to 4 KB). *)
val create : bytes:int -> t

val size : t -> int

(** PC memory-type boundaries (Section 3.3). *)

val low_limit : int (* 1 MB: real-mode/BIOS reachable *)
val dma_limit : int (* 16 MB: ISA DMA reachable *)

val get8 : t -> int -> int
val set8 : t -> int -> int -> unit
val get16 : t -> int -> int
val set16 : t -> int -> int -> unit
val get32 : t -> int -> int32
val set32 : t -> int -> int32 -> unit

(** [blit_from_bytes t ~src ~dst_addr ~len] copies OCaml bytes into RAM. *)
val blit_from_bytes : t -> src:bytes -> src_pos:int -> dst_addr:int -> len:int -> unit

val blit_to_bytes : t -> src_addr:int -> dst:bytes -> dst_pos:int -> len:int -> unit

(** [fill t ~addr ~len byte] *)
val fill : t -> addr:int -> len:int -> int -> unit

(** Raised on any access outside [0, size). *)
exception Fault of int
