(** The programmable interval timer (i8254-style).

    One-shot or periodic interrupts at a programmed interval.  The kernel
    support library's clock services and the preemptive thread examples
    build on this. *)

type t

val create : machine:Machine.t -> irq:int -> t

(** [set_periodic t ~interval_ns] starts (or re-programs) periodic
    interrupts. *)
val set_periodic : t -> interval_ns:int -> unit

(** [set_oneshot t ~delay_ns] arms a single interrupt. *)
val set_oneshot : t -> delay_ns:int -> unit

val stop : t -> unit

(** Ticks delivered so far. *)
val ticks : t -> int
