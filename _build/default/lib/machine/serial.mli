(** A 16550-style serial port.

    Used for two things in the OSKit: the console, and the remote debugging
    line that carries GDB's remote serial protocol (Section 3.5).  A port
    can be connected to another port (null-modem, for the GDB stub tests) or
    left with its output accumulating in a capture buffer (console). *)

type t

val create : machine:Machine.t -> irq:int -> ?baud:int -> unit -> t

(** Cross-connect two ports; each byte written to one arrives at the other
    after its serialization time and raises the receiving side's IRQ. *)
val connect : t -> t -> unit

(** [write_byte t b] transmits a byte (blocking model: charges the UART
    programming cost; serialization happens in the background). *)
val write_byte : t -> int -> unit

val write_string : t -> string -> unit

(** [read_byte t] takes a byte from the receive FIFO, if any. *)
val read_byte : t -> int option

val input_pending : t -> int

(** [inject t s] pushes bytes into the receive FIFO from "outside" (e.g. a
    test pretending to be a human or a remote GDB), raising the IRQ. *)
val inject : t -> string -> unit

(** Everything ever written to an unconnected port, e.g. console output. *)
val captured_output : t -> string

val clear_captured : t -> unit
