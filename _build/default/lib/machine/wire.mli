(** A shared Ethernet segment.

    Models the testbed's 100 Mbps link: frames occupy the medium for their
    serialization time (plus preamble and inter-frame gap, as on real
    Ethernet) and arrive at every other attached station after a propagation
    delay.  Contention is resolved by queueing: a frame offered while the
    medium is busy waits — bandwidth, not collisions, is what shaped the
    paper's numbers. *)

type t
type port

val create : ?bandwidth_bps:int -> ?latency_ns:int -> World.t -> t

(** [attach t ~rx] adds a station; [rx] is invoked (in no particular machine
    context) when a frame arrives.  Stations receive every frame except
    their own transmissions — address filtering is the NIC's job, as on a
    real hub. *)
val attach : t -> rx:(bytes -> unit) -> port

(** [send t port frame ~at] offers [frame] for transmission at sender-local
    time [at].  Returns the time the frame will finish arriving. *)
val send : t -> port -> bytes -> at:int -> int

(** [set_fault_injector t f] — [f frame] returning true silently drops the
    frame in transit (test hook: lossy-segment experiments).  [None]
    restores perfect delivery. *)
val set_fault_injector : t -> (bytes -> bool) option -> unit

(** Frames dropped by the injector. *)
val frames_dropped : t -> int

(** Total frames ever carried. *)
val frames_carried : t -> int

(** Total payload bytes ever carried. *)
val bytes_carried : t -> int
