type mode = Off | Oneshot | Periodic of int

type t = {
  machine : Machine.t;
  irq : int;
  mutable mode : mode;
  mutable generation : int;
  mutable ticks : int;
}

let create ~machine ~irq = { machine; irq; mode = Off; generation = 0; ticks = 0 }

let rec arm t ~delay_ns ~generation =
  ignore
    (Machine.after t.machine delay_ns (fun () ->
         if t.generation = generation then begin
           t.ticks <- t.ticks + 1;
           Machine.raise_irq t.machine ~irq:t.irq;
           match t.mode with
           | Periodic interval -> arm t ~delay_ns:interval ~generation
           | Oneshot | Off -> t.mode <- Off
         end))

let set_periodic t ~interval_ns =
  if interval_ns <= 0 then invalid_arg "Timer_dev.set_periodic";
  t.generation <- t.generation + 1;
  t.mode <- Periodic interval_ns;
  arm t ~delay_ns:interval_ns ~generation:t.generation

let set_oneshot t ~delay_ns =
  if delay_ns < 0 then invalid_arg "Timer_dev.set_oneshot";
  t.generation <- t.generation + 1;
  t.mode <- Oneshot;
  arm t ~delay_ns ~generation:t.generation

let stop t =
  t.generation <- t.generation + 1;
  t.mode <- Off

let ticks t = t.ticks
