(** A simulated IDE-class disk.

    Sector-addressed storage with 1996-era mechanics: per-operation seek and
    rotational latency plus media-rate transfer, one operation in flight,
    completion signalled by interrupt.  The Linux-style block drivers in
    [lib/linux_dev] queue requests against this model. *)

type t

val create :
  machine:Machine.t ->
  sectors:int ->
  irq:int ->
  ?sector_size:int ->
  ?seek_ns:int ->
  ?transfer_bps:int ->
  unit ->
  t

val sector_size : t -> int
val sectors : t -> int
val irq : t -> int

type op = Read of { start : int; count : int } | Write of { start : int; data : bytes }

type completion = {
  id : int;
  result : (bytes, Error.t) result;
      (** read data for [Read]; [Bytes.empty] for [Write] *)
}

(** [submit t op] queues an operation; returns its id.  Completion raises
    the disk's IRQ; the handler collects it with [take_completion]. *)
val submit : t -> op -> int

val take_completion : t -> completion option

(** Synchronous backdoor for formatting images in tests and image builders
    (bypasses the mechanical model — no cost is charged). *)
val read_raw : t -> start:int -> count:int -> bytes

val write_raw : t -> start:int -> bytes -> unit
