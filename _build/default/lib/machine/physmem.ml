type t = { mem : bytes }

exception Fault of int

let page = 4096
let create ~bytes = { mem = Bytes.make ((bytes + page - 1) / page * page) '\000' }
let size t = Bytes.length t.mem
let low_limit = 0x100000
let dma_limit = 0x1000000

let check t addr len =
  if addr < 0 || len < 0 || addr + len > size t then raise (Fault addr)

let get8 t addr =
  check t addr 1;
  Char.code (Bytes.get t.mem addr)

let set8 t addr v =
  check t addr 1;
  Bytes.set t.mem addr (Char.chr (v land 0xff))

let get16 t addr =
  check t addr 2;
  Bytes.get_uint16_le t.mem addr

let set16 t addr v =
  check t addr 2;
  Bytes.set_uint16_le t.mem addr (v land 0xffff)

let get32 t addr =
  check t addr 4;
  Bytes.get_int32_le t.mem addr

let set32 t addr v =
  check t addr 4;
  Bytes.set_int32_le t.mem addr v

let blit_from_bytes t ~src ~src_pos ~dst_addr ~len =
  check t dst_addr len;
  Bytes.blit src src_pos t.mem dst_addr len

let blit_to_bytes t ~src_addr ~dst ~dst_pos ~len =
  check t src_addr len;
  Bytes.blit t.mem src_addr dst dst_pos len

let fill t ~addr ~len byte =
  check t addr len;
  Bytes.fill t.mem addr len (Char.chr (byte land 0xff))
